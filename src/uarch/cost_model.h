/**
 * @file
 * Timing cost model for the PIR simulator.
 *
 * The thunk costs are calibrated to the paper's Table 1 measurements
 * on an i7-8700K (clock ticks of overhead per call type): a retpoline
 * adds ~21 ticks to an indirect call, a return retpoline ~16 ticks to
 * a return, LVI-CFI ~9 ticks to a forward edge and ~11 to a backward
 * edge, and the combined fenced retpoline ~42 (forward) / ~32
 * (backward). Because every downstream experiment consumes these same
 * constants, relative results across defense configurations inherit
 * the paper's cost structure.
 */
#ifndef PIBE_UARCH_COST_MODEL_H_
#define PIBE_UARCH_COST_MODEL_H_

#include <cstdint>

#include "ir/module.h"

namespace pibe::uarch {

/** All tunable cycle costs and structure sizes of the simulator. */
struct CostParams
{
    // --- base instruction costs (cycles) ---
    uint32_t cost_simple = 1;   ///< ALU / frame access / sink.
    /**
     * Constants, register moves, and address materialization cost
     * nothing: immediates fold into their consumers and out-of-order
     * cores eliminate moves at rename. This matters for fidelity: an
     * ICP guard (funcaddr + cmp + condbr) must cost ~2 cycles like the
     * paper's cmp/jcc pair, and inlining's argument-binding moves must
     * be free like register-allocated arguments.
     */
    uint32_t cost_free = 0;
    uint32_t cost_mem = 2;      ///< Load/store (d-cache hit assumed).
    uint32_t cost_dcall = 1;    ///< Direct call issue cost.
    uint32_t cost_arg = 1;      ///< Per-argument marshalling cost.
    uint32_t cost_br = 1;       ///< Unconditional branch.

    // --- prediction outcomes ---
    uint32_t cost_ret_predicted = 1;
    uint32_t cost_ret_mispredict = 20;  ///< RSB miss -> pipeline flush.
    uint32_t cost_icall_predicted = 2;
    uint32_t cost_icall_mispredict = 17; ///< BTB miss -> pipeline flush.
    uint32_t cost_condbr_predicted = 1;
    uint32_t cost_condbr_mispredict = 15;

    // --- hardening thunk costs (Table 1 calibration) ---
    uint32_t cost_retpoline = 21;        ///< Forward retpoline.
    uint32_t cost_lvi_fwd = 9;           ///< LFENCE'd indirect thunk.
    uint32_t cost_fenced_retpoline = 42; ///< Listing 7 forward.
    uint32_t cost_ret_retpoline = 16;    ///< Return retpoline.
    uint32_t cost_lvi_ret = 11;          ///< pop+lfence+jmp.
    uint32_t cost_fenced_ret = 32;       ///< Listing 7 backward.

    // --- JumpSwitches runtime model (§8.2) ---
    uint32_t cost_js_check = 2;       ///< Per inline target compare.
    uint32_t cost_js_patch = 600;     ///< Live-patch stall (RCU sync).
    uint32_t js_max_inline_targets = 6;
    uint32_t js_learn_period = 4096;  ///< Relearn interval (execs).
    uint32_t js_learn_duration = 256; ///< Execs spent per learning bout.

    // --- external/declaration call model ---
    uint32_t cost_external = 25;

    // --- i-cache ---
    uint32_t icache_bytes = 32 * 1024;
    uint32_t icache_assoc = 8;
    uint32_t icache_line = 64;
    uint32_t icache_miss_penalty = 14;

    // --- predictors ---
    uint32_t btb_entries = 1024; ///< Direct-mapped BTB slots.
    uint32_t rsb_entries = 16;   ///< Hardware return stack depth.
    uint32_t pht_entries = 4096; ///< 2-bit counters.

    // --- eIBRS (§6.4) ---
    /**
     * Enhanced IBRS: hardware isolates branch predictions across
     * privilege levels, replacing retpolines at a small per-branch
     * cost. It does NOT isolate predictions within the kernel, so
     * attacks that train on kernel execution itself still work — the
     * paper's reason retpolines remain the recommended defense.
     */
    bool eibrs = false;
    uint32_t cost_eibrs_branch = 3; ///< Per unhardened indirect branch.

    // --- RSB refilling (§6.4) ---
    /**
     * The kernel's ad-hoc Ret2spec mitigation: stuff the RSB with
     * benign entries on every kernel entry. Defends against RSB state
     * poisoned *before* entry, but not against poisoning while kernel
     * code runs — which is why the paper argues return retpolines are
     * the comprehensive backward-edge defense.
     */
    bool rsb_refill_on_entry = false;
    uint32_t cost_rsb_refill = 32; ///< ~2 cycles per stuffed entry.

    /** Simulated clock in cycles per reported microsecond. */
    uint32_t cycles_per_us = 1000;
};

} // namespace pibe::uarch

#endif // PIBE_UARCH_COST_MODEL_H_
