/**
 * @file
 * Transient-execution attack engine (§2.2, §6, §8.6).
 *
 * The engine rides along with the simulator: before every indirect
 * branch or return it gets a chance to poison the predictors (the
 * attacker runs concurrently on a sibling context), and after the
 * branch resolves it computes the *speculative* target the pipeline
 * would have transiently executed. If that target is the attacker's
 * gadget, a gadget hit is recorded — the simulator's architectural
 * execution is never corrupted, mirroring how transient attacks leak
 * without affecting committed state.
 *
 * For unhardened branches the verdict is mechanistic: the poisoned
 * BTB/RSB entry actually flows through prediction. For thunked
 * branches, the verdict follows the defense semantics of §6:
 *
 *            |  SpectreV2  |  Ret2spec  |   LVI
 *  icall none        HIT          -         HIT
 *  retpoline         safe         -         HIT  (no fence, §6.3)
 *  lvi-cfi           HIT*         -         safe (*thunk's jmpq uses BTB)
 *  fenced-retpoline  safe         -         safe
 *  jump-switch       safe         -         HIT  (retpoline fallback)
 *  ret none           -          HIT        HIT
 *  return-retpoline   -          safe       HIT  (no fence)
 *  lvi-ret           HIT*        safe       safe (*jmpq uses BTB)
 *  fenced-ret        safe        safe       safe
 */
#ifndef PIBE_UARCH_SPECULATION_H_
#define PIBE_UARCH_SPECULATION_H_

#include <cstdint>

#include "ir/module.h"
#include "uarch/predictors.h"

namespace pibe::uarch {

/** The transient attack classes PIBE defends against. */
enum class AttackKind {
    kSpectreV2, ///< BTB poisoning of indirect branches.
    kRet2spec,  ///< RSB poisoning of returns.
    kLvi,       ///< Load value injection into branch-target loads.
};

/** Human-readable attack name. */
const char* attackKindName(AttackKind kind);

/** Is a forward edge with `scheme` transiently hijackable by `kind`? */
bool forwardSchemeVulnerable(AttackKind kind, ir::FwdScheme scheme);

/** Is a backward edge with `scheme` transiently hijackable by `kind`? */
bool returnSchemeVulnerable(AttackKind kind, ir::RetScheme scheme);

/**
 * Attack observer interface invoked by the simulator at each indirect
 * control transfer.
 */
class SpeculationObserver
{
  public:
    virtual ~SpeculationObserver() = default;

    /**
     * Called at each kernel entry (top-level Simulator::run), *before*
     * any RSB refill: an attacker that can only poison between kernel
     * invocations acts here (§6.4's userspace-to-kernel scenario).
     */
    virtual void
    onKernelEntry(Rsb& rsb)
    {
        (void)rsb;
    }

    /**
     * Called for each executed indirect call / indirect jump.
     * @param branch_addr Code address of the branch.
     * @param scheme Hardening scheme in effect.
     * @param actual_target_addr Resolved (architectural) target.
     * @param btb The live BTB (poisonable).
     */
    virtual void onIndirectBranch(uint64_t branch_addr,
                                  ir::FwdScheme scheme,
                                  uint64_t actual_target_addr,
                                  Btb& btb) = 0;

    /**
     * Called for each executed return.
     * @param ret_addr Code address of the return instruction.
     * @param scheme Hardening scheme in effect.
     * @param actual_return_addr Architectural return target.
     * @param rsb The live RSB (poisonable).
     */
    virtual void onReturn(uint64_t ret_addr, ir::RetScheme scheme,
                          uint64_t actual_return_addr, Rsb& rsb) = 0;
};

/**
 * A concrete attacker mounting one attack kind against a gadget
 * address, counting transient gadget hits.
 */
class TransientAttacker : public SpeculationObserver
{
  public:
    /**
     * When the attacker gets to poison predictor state (§6.4).
     * kContinuous models a sibling hyperthread re-poisoning during
     * kernel execution; kEntryOnly models a userspace attacker who can
     * only pollute state before the victim enters the kernel — the
     * scenario RSB refilling was designed for.
     */
    enum class Timing { kContinuous, kEntryOnly };

    /**
     * @param kind Attack class to mount.
     * @param gadget_addr Code address of the disclosure gadget the
     *        attacker wants transiently executed.
     * @param timing When predictor poisoning happens.
     */
    TransientAttacker(AttackKind kind, uint64_t gadget_addr,
                      Timing timing = Timing::kContinuous)
        : kind_(kind), gadget_addr_(gadget_addr), timing_(timing)
    {
    }

    /**
     * Model eIBRS on the victim: cross-privilege BTB training is
     * ineffective, so Spectre V2 poisoning only lands when the
     * attacker trains on kernel execution itself (`same_mode`).
     */
    void
    setEibrs(bool active, bool same_mode_training)
    {
        eibrs_ = active;
        same_mode_ = same_mode_training;
    }

    void onKernelEntry(Rsb& rsb) override;
    void onIndirectBranch(uint64_t branch_addr, ir::FwdScheme scheme,
                          uint64_t actual_target_addr, Btb& btb) override;
    void onReturn(uint64_t ret_addr, ir::RetScheme scheme,
                  uint64_t actual_return_addr, Rsb& rsb) override;

    /** Transient executions of the gadget observed so far. */
    uint64_t gadgetHits() const { return fwd_hits_ + ret_hits_; }
    uint64_t forwardHits() const { return fwd_hits_; }
    uint64_t returnHits() const { return ret_hits_; }

    /** Indirect branch / return events observed so far. */
    uint64_t eventsObserved() const { return fwd_events_ + ret_events_; }
    uint64_t forwardEvents() const { return fwd_events_; }
    uint64_t returnEvents() const { return ret_events_; }

    /** Gadget hits per observed event (0 when no events). */
    double
    hitRate() const
    {
        const uint64_t events = eventsObserved();
        return events == 0 ? 0.0
                           : static_cast<double>(gadgetHits()) /
                                 static_cast<double>(events);
    }

    /** Hits per forward-edge event (indirect calls/jumps). */
    double
    forwardHitRate() const
    {
        return fwd_events_ == 0
                   ? 0.0
                   : static_cast<double>(fwd_hits_) /
                         static_cast<double>(fwd_events_);
    }

    /** Hits per backward-edge event (returns). */
    double
    returnHitRate() const
    {
        return ret_events_ == 0
                   ? 0.0
                   : static_cast<double>(ret_hits_) /
                         static_cast<double>(ret_events_);
    }

  private:
    AttackKind kind_;
    uint64_t gadget_addr_;
    Timing timing_ = Timing::kContinuous;
    bool eibrs_ = false;
    bool same_mode_ = false;
    uint64_t fwd_hits_ = 0;
    uint64_t ret_hits_ = 0;
    uint64_t fwd_events_ = 0;
    uint64_t ret_events_ = 0;
};

} // namespace pibe::uarch

#endif // PIBE_UARCH_SPECULATION_H_
