#include "uarch/speculation.h"

namespace pibe::uarch {

const char*
attackKindName(AttackKind kind)
{
    switch (kind) {
      case AttackKind::kSpectreV2: return "spectre-v2";
      case AttackKind::kRet2spec:  return "ret2spec";
      case AttackKind::kLvi:       return "lvi";
    }
    return "?";
}

bool
forwardSchemeVulnerable(AttackKind kind, ir::FwdScheme scheme)
{
    using ir::FwdScheme;
    switch (kind) {
      case AttackKind::kSpectreV2:
        // The retpoline pins speculation to its capture loop; LVI-CFI's
        // thunk still ends in a BTB-predicted jmpq (§6.3).
        return scheme == FwdScheme::kNone || scheme == FwdScheme::kLviCfi;
      case AttackKind::kRet2spec:
        return false; // Forward edges do not consult the RSB.
      case AttackKind::kLvi:
        // Only LFENCE'd sequences order the target load before the
        // transfer; plain retpolines (and the JumpSwitch retpoline
        // fallback) do not (§6.2, §6.3).
        return scheme == FwdScheme::kNone ||
               scheme == FwdScheme::kRetpoline ||
               scheme == FwdScheme::kJumpSwitch;
    }
    return false;
}

bool
returnSchemeVulnerable(AttackKind kind, ir::RetScheme scheme)
{
    using ir::RetScheme;
    switch (kind) {
      case AttackKind::kSpectreV2:
        // Plain returns predict through the RSB, not the BTB; but the
        // LVI return thunk's jmpq *%rcx reintroduces a BTB-predicted
        // branch (§6.3).
        return scheme == RetScheme::kLviRet;
      case AttackKind::kRet2spec:
        return scheme == RetScheme::kNone;
      case AttackKind::kLvi:
        // The return-address load is unfenced in both the plain return
        // and Intel's return retpoline; only the fenced variants order
        // it (Listing 7).
        return scheme == RetScheme::kNone ||
               scheme == RetScheme::kReturnRetpoline;
    }
    return false;
}

void
TransientAttacker::onKernelEntry(Rsb& rsb)
{
    if (timing_ != Timing::kEntryOnly)
        return;
    // Pre-entry pollution: leave poisoned return predictions behind
    // before the victim enters the kernel (Ret2spec from userspace).
    if (kind_ == AttackKind::kRet2spec) {
        for (int i = 0; i < 16; ++i)
            rsb.push(gadget_addr_);
    }
}

void
TransientAttacker::onIndirectBranch(uint64_t branch_addr,
                                    ir::FwdScheme scheme,
                                    uint64_t actual_target_addr, Btb& btb)
{
    ++fwd_events_;
    if (kind_ == AttackKind::kSpectreV2) {
        // eIBRS partitions predictions by privilege: cross-privilege
        // training never reaches kernel-mode branches. Same-mode
        // training (mistraining aliasing kernel branches by invoking
        // kernel code, §6.4) bypasses the partition.
        if (eibrs_ && !same_mode_)
            return;
        // The attacker keeps the victim's BTB entry poisoned from an
        // aliasing context. An unprotected branch then transiently
        // dispatches through the poisoned prediction.
        btb.poison(branch_addr, gadget_addr_);
        if (scheme == ir::FwdScheme::kNone) {
            if (btb.predict(branch_addr) == gadget_addr_ &&
                actual_target_addr != gadget_addr_) {
                ++fwd_hits_;
            }
            return;
        }
    }
    if (forwardSchemeVulnerable(kind_, scheme))
        ++fwd_hits_;
}

void
TransientAttacker::onReturn(uint64_t ret_addr, ir::RetScheme scheme,
                            uint64_t actual_return_addr, Rsb& rsb)
{
    (void)ret_addr;
    ++ret_events_;
    if (kind_ == AttackKind::kRet2spec) {
        // Continuous attackers desynchronize the RSB as the victim
        // runs; entry-only attackers rely on their pre-entry pollution
        // still being there.
        if (timing_ == Timing::kContinuous)
            rsb.poisonTop(gadget_addr_);
        if (scheme == ir::RetScheme::kNone) {
            if (rsb.pop() == gadget_addr_ &&
                actual_return_addr != gadget_addr_) {
                ++ret_hits_;
            }
            // Note: we consumed the entry the simulator would have
            // popped; the simulator pops independently of us, so push
            // a placeholder back to keep fill levels consistent.
            rsb.push(actual_return_addr);
            return;
        }
    }
    if (returnSchemeVulnerable(kind_, scheme))
        ++ret_hits_;
}

} // namespace pibe::uarch
