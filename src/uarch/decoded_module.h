/**
 * @file
 * The pre-decoded execution image: everything the interpreter hot
 * loop used to recompute per instruction, computed once per module.
 *
 * Decoding flattens each function's blocks into one contiguous
 * DecodedInst stream and bakes in:
 *  - the instruction's byte address, encoded size, and the end
 *    address of its containing block (fetch ranges become two loads);
 *  - resolved callee ids with declaration flags (kCall) and a flat
 *    per-function table for dynamic targets (kICall);
 *  - branch targets as {code index, block start, block end} triples,
 *    so taken branches are a single indexed jump plus fetch;
 *  - switch dispatch lowered to either a dense table (contiguous case
 *    values) or a value-sorted array for binary search — replacing
 *    the O(cases) linear scan — while preserving the original
 *    first-match semantics for duplicate case values;
 *  - a dense JumpSwitch state index (site_id -> slot) replacing the
 *    hot-path unordered_map lookup;
 *  - call arguments as (offset, count) windows into one shared pool.
 *
 * A DecodedModule is immutable after construction and holds no
 * runtime state, so one instance can be shared by any number of
 * simulators (measureSuite shares one across a whole workload suite).
 * Decoding only reads the module and the layout; it does not depend
 * on CostParams, so the cache key is the module alone.
 *
 * The decoded program is an *encoding*, not a semantic change: every
 * address, cost, predictor index, and counter the interpreter derives
 * from it is bit-identical to what the original per-instruction
 * lookups produced (tests/test_differential.cc enforces this against
 * golden stats recorded before the rewrite).
 */
#ifndef PIBE_UARCH_DECODED_MODULE_H_
#define PIBE_UARCH_DECODED_MODULE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/layout.h"
#include "ir/module.h"

namespace pibe::uarch {

/** Sentinel for "no index" in decoded tables. */
constexpr uint32_t kNoIndex = 0xffffffffu;

/** A branch destination: where to continue and what to fetch. */
struct BlockTarget
{
    uint32_t code_index = kNoIndex; ///< First DecodedInst of the block.
    uint64_t start_addr = 0;        ///< Block start (fetch + BTB).
    uint64_t end_addr = 0;          ///< One past the block's last byte.
};

/** One switch case prepared for binary search (sorted by value). */
struct SwitchCase
{
    int64_t value = 0;
    uint32_t target = kNoIndex; ///< BlockTarget index.
};

/**
 * One flattened instruction. Field meaning depends on `op` exactly as
 * in ir::Instruction; everything else is precomputed decode output.
 */
struct DecodedInst
{
    // Hot fields first: the fetch/execute path of the simple opcodes
    // (const/move/binop/load/store) reads only the first 32 bytes.
    ir::Opcode op = ir::Opcode::kConst;
    ir::BinKind bin = ir::BinKind::kAdd;
    bool callee_is_decl = false; ///< kCall: callee has no body.
    bool switch_dense = false;   ///< kSwitch: dense-table dispatch.
    ir::FwdScheme fwd_scheme = ir::FwdScheme::kNone;
    ir::RetScheme ret_scheme = ir::RetScheme::kNone;

    ir::Reg dst = ir::kNoReg;
    ir::Reg a = ir::kNoReg;
    ir::Reg b = ir::kNoReg;
    int64_t imm = 0; ///< kSwitch dense mode: minimum case value.
    ir::GlobalId global = 0;
    uint32_t t0 = kNoIndex; ///< BlockTarget: kBr / kCondBr-true /
                            ///< kSwitch default.
    uint32_t t1 = kNoIndex; ///< BlockTarget: kCondBr-false.

    uint64_t addr = 0;      ///< Byte address of this instruction.
    uint64_t next_addr = 0; ///< addr + instByteSize (return address).
    uint64_t block_end = 0; ///< End of the containing block.

    ir::FuncId callee = ir::kInvalidFunc; ///< kCall / kFuncAddr.
    uint32_t args_begin = 0; ///< Into DecodedModule::argsPool().
    uint32_t args_count = 0;
    uint32_t sw_begin = 0; ///< Into switchCases() or denseTargets().
    uint32_t sw_count = 0;
    uint32_t js_slot = kNoIndex; ///< Dense JumpSwitch state slot.
    ir::SiteId site_id = ir::kNoSite;
};

/** Per-function decode results (indexed by FuncId). */
struct DecodedFunction
{
    bool is_declaration = true;
    uint32_t num_params = 0;
    uint32_t num_regs = 0;
    uint32_t frame_size = 0;
    BlockTarget entry; ///< Block 0: code index + fetch range.
    uint64_t base_addr = 0;
    const ir::Function* func = nullptr; ///< Names for diagnostics.
};

class DecodedModule
{
  public:
    /**
     * Bump when the decoded encoding could change observable stats;
     * hashed into measurement artifact digests so stale cached
     * measurements never alias a decode change.
     */
    static constexpr uint32_t kFormatVersion = 1;

    /** Decode `module` (which must outlive this object). */
    explicit DecodedModule(const ir::Module& module);

    const ir::Module& module() const { return module_; }
    const analysis::CodeLayout& layout() const { return layout_; }

    const DecodedFunction& func(ir::FuncId f) const
    {
        PIBE_ASSERT(f < funcs_.size(), "DecodedModule: bad FuncId");
        return funcs_[f];
    }
    size_t numFunctions() const { return funcs_.size(); }

    const std::vector<DecodedInst>& code() const { return code_; }
    const std::vector<BlockTarget>& targets() const { return targets_; }
    const std::vector<ir::Reg>& argsPool() const { return args_pool_; }
    const std::vector<SwitchCase>& switchCases() const
    {
        return switch_cases_;
    }
    const std::vector<uint32_t>& denseTargets() const
    {
        return dense_targets_;
    }

    /** Number of dense JumpSwitch state slots to allocate. */
    uint32_t numJsSlots() const { return num_js_slots_; }

    /** Dense slot of a JumpSwitch site id (kNoIndex if not one). */
    uint32_t
    jsSlotOf(ir::SiteId site) const
    {
        auto it = js_slot_of_site_.find(site);
        return it == js_slot_of_site_.end() ? kNoIndex : it->second;
    }

    /** Approximate bytes held by the decoded tables (profiling). */
    size_t decodedBytes() const;

  private:
    const ir::Module& module_;
    analysis::CodeLayout layout_;
    std::vector<DecodedFunction> funcs_;
    std::vector<DecodedInst> code_;
    std::vector<BlockTarget> targets_;
    std::vector<ir::Reg> args_pool_;
    std::vector<SwitchCase> switch_cases_;
    std::vector<uint32_t> dense_targets_; ///< BlockTarget index or
                                          ///< kNoIndex (= default).
    std::unordered_map<ir::SiteId, uint32_t> js_slot_of_site_;
    uint32_t num_js_slots_ = 0;
};

} // namespace pibe::uarch

#endif // PIBE_UARCH_DECODED_MODULE_H_
