/**
 * @file
 * The pre-decoded execution image: everything the interpreter hot
 * loop used to recompute per instruction, computed once per module.
 *
 * Decoding flattens each function's blocks into one contiguous
 * DecodedInst stream and bakes in:
 *  - the instruction's byte address, encoded size, and the end
 *    address of its containing block (fetch ranges become two loads);
 *  - resolved callee ids with declaration flags (kCall) and a flat
 *    per-function table for dynamic targets (kICall);
 *  - branch targets as {code index, block start, block end} triples,
 *    so taken branches are a single indexed jump plus fetch;
 *  - switch dispatch lowered to either a dense table (contiguous case
 *    values) or a value-sorted array for binary search — replacing
 *    the O(cases) linear scan — while preserving the original
 *    first-match semantics for duplicate case values;
 *  - a dense JumpSwitch state index (site_id -> slot) replacing the
 *    hot-path unordered_map lookup;
 *  - call arguments as (offset, count) windows into one shared pool.
 *
 * v3 adds decode-time superinstruction fusion and operand
 * specialization: instructions carry a DecodedOp (a superset of
 * ir::Opcode) instead of the IR opcode. Plain binops are specialized
 * per BinKind (no second dispatch on the operator), and the dominant
 * dynamic digrams — measured on the kernel syscall workload, where
 * const+binop and binop+const together are ~75% of all executed
 * instructions — are fused into single-dispatch superinstructions:
 * cmp+condbr, const+binop (const-folded immediate), binop+const,
 * move+binop, frameload+binop, and const/move/frameload+call (the
 * call argument-window setup). Fusion never crosses a block boundary,
 * so a branch can never land in the middle of a fused pair (branch
 * targets are block starts by construction), and the second slot of a
 * fused pair is left intact in the stream: code indices are
 * unchanged, and call-resume refetches keep reading the original
 * addr/block_end fields. The opcode and digram histogram gathered
 * during decode (decodeStats()) is the evidence the fusion set was
 * chosen from and the observability hook for future candidates.
 *
 * A DecodedModule is immutable after construction and holds no
 * runtime state, so one instance can be shared by any number of
 * simulators (measureSuite shares one across a whole workload suite).
 * Decoding only reads the module and the layout; it does not depend
 * on CostParams, so the cache key is the module alone.
 *
 * The decoded program is an *encoding*, not a semantic change: every
 * address, cost, predictor index, and counter the interpreter derives
 * from it is bit-identical to what the original per-instruction
 * lookups produced (tests/test_differential.cc enforces this against
 * golden stats recorded before the rewrite). Fused handlers execute
 * both original instructions' effects in original order and count
 * *original* instructions, never superinstructions.
 */
#ifndef PIBE_UARCH_DECODED_MODULE_H_
#define PIBE_UARCH_DECODED_MODULE_H_

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/layout.h"
#include "ir/module.h"

namespace pibe::uarch {

/** Sentinel for "no index" in decoded tables. */
constexpr uint32_t kNoIndex = 0xffffffffu;

/** Number of ir::Opcode values (histogram dimensions). */
constexpr size_t kNumIrOpcodes = 15;

/**
 * BinKinds that get their own specialized decoded opcodes. kDiv and
 * kRem are excluded: their zero-divisor side exit keeps them on the
 * generic evalBin path. Order defines the per-family opcode layout;
 * the six compare kinds come last so cmp+condbr fusion can test a
 * contiguous range.
 */
#define PIBE_SPEC_BIN_KINDS(X)                                        \
    X(Add) X(Sub) X(Mul) X(And) X(Or) X(Xor) X(Shl) X(Shr)            \
    X(Eq) X(Ne) X(Lt) X(Le) X(Gt) X(Ge)

/** The compare subset of PIBE_SPEC_BIN_KINDS (cmp+condbr fusion). */
#define PIBE_CMP_BIN_KINDS(X) X(Eq) X(Ne) X(Lt) X(Le) X(Gt) X(Ge)

/**
 * Decoded-stream opcodes: the 15 ir::Opcode values (same order, so
 * unspecialized instructions map by value), BinKind-specialized plain
 * binops, and the fused superinstructions. Every family occupies a
 * contiguous range so decode can select a variant by arithmetic.
 */
enum class DecodedOp : uint8_t {
    // 1:1 mirrors of ir::Opcode, in ir::Opcode order.
    kConst,
    kMove,
    kBinOp, ///< Generic fallback (kDiv/kRem or unspecialized).
    kFuncAddr,
    kLoad,
    kStore,
    kFrameLoad,
    kFrameStore,
    kCall,
    kICall,
    kRet,
    kBr,
    kCondBr,
    kSwitch,
    kSink,
// Specialized plain binops: dst = a <K> b, no operator dispatch.
#define PIBE_D(K) kBin##K,
    PIBE_SPEC_BIN_KINDS(PIBE_D)
#undef PIBE_D
// Fused cmp+condbr: dst = a <K> b; branch on the result.
#define PIBE_D(K) kCmpBr##K,
    PIBE_CMP_BIN_KINDS(PIBE_D)
#undef PIBE_D
// Fused const+binop, const value is operand a: c = imm; dst = imm<K>b.
#define PIBE_D(K) kConstBinA##K,
    PIBE_SPEC_BIN_KINDS(PIBE_D)
#undef PIBE_D
// Fused const+binop, const value is operand b: c = imm; dst = a<K>imm.
#define PIBE_D(K) kConstBinB##K,
    PIBE_SPEC_BIN_KINDS(PIBE_D)
#undef PIBE_D
// Fused binop+const: dst = a <K> b; then c = imm.
#define PIBE_D(K) kBinConst##K,
    PIBE_SPEC_BIN_KINDS(PIBE_D)
#undef PIBE_D
    kMoveBin,       ///< c = regs[imm]; dst = a <bin> b (generic bin).
    kFrameLoadBin,  ///< c = frame[imm]; dst = a <bin> b (generic bin).
    kConstCall,     ///< dst = imm; then the kCall at the next slot.
    kMoveCall,      ///< dst = regs[a]; then the kCall at the next slot.
    kFrameLoadCall, ///< dst = frame[imm]; then the next-slot kCall.
    kCount,
};

constexpr size_t kNumDecodedOps = static_cast<size_t>(DecodedOp::kCount);
constexpr size_t kNumSpecBinKinds = 14;
constexpr size_t kNumCmpBinKinds = 6;

static_assert(static_cast<int>(DecodedOp::kSink) ==
                  static_cast<int>(ir::Opcode::kSink),
              "DecodedOp must mirror ir::Opcode for the first 15 ops");
static_assert(static_cast<int>(DecodedOp::kBinGe) -
                      static_cast<int>(DecodedOp::kBinAdd) ==
                  kNumSpecBinKinds - 1,
              "specialized binop family must be contiguous");
static_assert(static_cast<int>(DecodedOp::kCmpBrGe) -
                      static_cast<int>(DecodedOp::kCmpBrEq) ==
                  kNumCmpBinKinds - 1,
              "cmp+condbr family must be contiguous");

/** The decoded opcode of an unspecialized, unfused IR instruction. */
constexpr DecodedOp
decodedOpOf(ir::Opcode op)
{
    return static_cast<DecodedOp>(op);
}

/**
 * Index of a BinKind within PIBE_SPEC_BIN_KINDS order, or -1 when the
 * kind has no specialized opcode (kDiv / kRem).
 */
constexpr int
specBinIndex(ir::BinKind k)
{
    switch (k) {
      case ir::BinKind::kAdd: return 0;
      case ir::BinKind::kSub: return 1;
      case ir::BinKind::kMul: return 2;
      case ir::BinKind::kAnd: return 3;
      case ir::BinKind::kOr:  return 4;
      case ir::BinKind::kXor: return 5;
      case ir::BinKind::kShl: return 6;
      case ir::BinKind::kShr: return 7;
      case ir::BinKind::kEq:  return 8;
      case ir::BinKind::kNe:  return 9;
      case ir::BinKind::kLt:  return 10;
      case ir::BinKind::kLe:  return 11;
      case ir::BinKind::kGt:  return 12;
      case ir::BinKind::kGe:  return 13;
      default: return -1;
    }
}

/** First compare kind's index within PIBE_SPEC_BIN_KINDS order. */
constexpr int kFirstCmpSpecIndex = 8;

/** Pick the opcode `spec_index` slots into a contiguous family. */
constexpr DecodedOp
familyOp(DecodedOp family_base, int spec_index)
{
    return static_cast<DecodedOp>(static_cast<int>(family_base) +
                                  spec_index);
}

/** True for superinstructions (two original instructions per slot). */
constexpr bool
isFusedOp(DecodedOp op)
{
    return op >= DecodedOp::kCmpBrEq && op < DecodedOp::kCount;
}

/**
 * The fused superinstruction families, for per-family decode-site and
 * dynamic-execution counters (RunStats::fused).
 */
enum class FusedFamily : uint8_t {
    kCmpBr,
    kConstBin,
    kBinConst,
    kMoveBin,
    kFrameLoadBin,
    kConstCall,
    kMoveCall,
    kFrameLoadCall,
    kCount,
};

constexpr size_t kNumFusedFamilies =
    static_cast<size_t>(FusedFamily::kCount);

const char* fusedFamilyName(FusedFamily family);

/**
 * Bytes DecodedModule(module) would hold, computed in one streaming
 * walk over the IR — no layout, no decoded tables, O(1) extra memory.
 * Matches DecodedModule::decodedBytes() exactly (same table-size
 * accounting, including the dense-vs-sorted switch dispatch choice),
 * so scale benchmarks can report projected simulator memory for
 * 10^6-instruction modules without paying the decode allocation.
 */
uint64_t estimateDecodedBytes(const ir::Module& module);

/** Family of a fused opcode (op must satisfy isFusedOp). */
constexpr FusedFamily
fusedFamilyOf(DecodedOp op)
{
    if (op >= DecodedOp::kCmpBrEq && op <= DecodedOp::kCmpBrGe)
        return FusedFamily::kCmpBr;
    if (op >= DecodedOp::kConstBinAAdd && op <= DecodedOp::kConstBinBGe)
        return FusedFamily::kConstBin;
    if (op >= DecodedOp::kBinConstAdd && op <= DecodedOp::kBinConstGe)
        return FusedFamily::kBinConst;
    switch (op) {
      case DecodedOp::kMoveBin: return FusedFamily::kMoveBin;
      case DecodedOp::kFrameLoadBin: return FusedFamily::kFrameLoadBin;
      case DecodedOp::kConstCall: return FusedFamily::kConstCall;
      case DecodedOp::kMoveCall: return FusedFamily::kMoveCall;
      case DecodedOp::kFrameLoadCall:
        return FusedFamily::kFrameLoadCall;
      default: return FusedFamily::kCount;
    }
}

/**
 * Static decode-time statistics: the opcode and intra-block digram
 * histogram the fusion set is selected from, and how many sites each
 * fusion rule actually rewrote. `pibe measure --decode-stats` reports
 * these (text + JSON) so fusion coverage is observable and future
 * superinstruction candidates are chosen from data.
 */
struct DecodeStats
{
    /** Static occurrence count per ir::Opcode. */
    std::array<uint64_t, kNumIrOpcodes> op_count{};
    /** digram[a][b]: adjacent (a then b) pairs within one block. */
    std::array<std::array<uint64_t, kNumIrOpcodes>, kNumIrOpcodes>
        digram{};
    /** Fusion sites rewritten, per superinstruction family. */
    std::array<uint64_t, kNumFusedFamilies> fused_sites{};
    /** Total fused pairs (sum of fused_sites). */
    uint64_t fused_pairs = 0;
};

/** A branch destination: where to continue and what to fetch. */
struct BlockTarget
{
    uint32_t code_index = kNoIndex; ///< First DecodedInst of the block.
    uint64_t start_addr = 0;        ///< Block start (fetch + BTB).
    uint64_t end_addr = 0;          ///< One past the block's last byte.
};

/** One switch case prepared for binary search (sorted by value). */
struct SwitchCase
{
    int64_t value = 0;
    uint32_t target = kNoIndex; ///< BlockTarget index.
};

/**
 * One flattened instruction — the *hot* half. Field meaning depends
 * on `op` exactly as in ir::Instruction for unfused opcodes; fused
 * opcodes pack both original instructions' operands (see the fusion
 * rules in decoded_module.cc). `addr` and `next_addr` are never
 * repurposed by fusion: call-resume refetches read them from whatever
 * slot the resume pc lands on.
 *
 * The struct is exactly one cache line and 64-byte aligned: every
 * field the frequent handlers (const/move/binop/mem/branch and all
 * fused families) touch sits in one line, the stream never straddles
 * lines, and pointer/index conversions (`inst - code`, `code + pc`)
 * compile to shifts instead of a divide/multiply by a non-power-of-2
 * stride. Everything only the rare opcodes need (call/switch operand
 * tables, profiling site ids, the resume-refetch block end) lives in
 * the parallel cold DecodedAux array, indexed by the same flat code
 * index.
 */
struct alignas(64) DecodedInst
{
    DecodedOp op = DecodedOp::kConst;
    ir::BinKind bin = ir::BinKind::kAdd;
    bool callee_is_decl = false; ///< kCall: callee has no body.
    bool switch_dense = false;   ///< kSwitch: dense-table dispatch.
    ir::FwdScheme fwd_scheme = ir::FwdScheme::kNone;
    ir::RetScheme ret_scheme = ir::RetScheme::kNone;

    ir::Reg dst = ir::kNoReg;
    ir::Reg a = ir::kNoReg;
    ir::Reg b = ir::kNoReg;
    /** Fused pairs: the other instruction's destination register
     *  (kNoReg when unused). */
    ir::Reg c = ir::kNoReg;
    int64_t imm = 0; ///< kSwitch dense mode: minimum case value.
                     ///< kMoveBin: the move's source register.

    uint64_t addr = 0;      ///< Byte address of this instruction.
    uint64_t next_addr = 0; ///< addr + instByteSize (return address;
                            ///< for kCmpBr* also the condbr's addr).

    uint32_t t0 = kNoIndex; ///< BlockTarget: kBr / kCondBr-true /
                            ///< kSwitch default / kCmpBr*-true.
    uint32_t t1 = kNoIndex; ///< BlockTarget: kCondBr/kCmpBr*-false.
    ir::GlobalId global = 0;
};

static_assert(sizeof(DecodedInst) == 64,
              "DecodedInst must stay one cache line; move new fields "
              "to DecodedAux");

/**
 * The cold half of a decoded instruction: operands of the rare
 * opcodes (kCall/kICall/kFuncAddr/kSwitch) plus profiling and
 * resume-refetch metadata, in a parallel array sharing the hot
 * stream's flat index. Keeping these out of DecodedInst is what lets
 * the hot slot fit one cache line; the rare handlers pay one extra
 * indexed load here.
 */
struct DecodedAux
{
    uint64_t block_end = 0; ///< End of the containing block.
    ir::FuncId callee = ir::kInvalidFunc; ///< kCall / kFuncAddr.
    uint32_t args_begin = 0; ///< Into DecodedModule::argsPool().
    uint32_t args_count = 0;
    uint32_t sw_begin = 0; ///< Into switchCases() or denseTargets().
    uint32_t sw_count = 0;
    uint32_t js_slot = kNoIndex; ///< Dense JumpSwitch state slot.
    ir::SiteId site_id = ir::kNoSite;
};

/** Per-function decode results (indexed by FuncId). */
struct DecodedFunction
{
    bool is_declaration = true;
    uint32_t num_params = 0;
    uint32_t num_regs = 0;
    uint32_t frame_size = 0;
    BlockTarget entry; ///< Block 0: code index + fetch range.
    uint64_t base_addr = 0;
    const ir::Function* func = nullptr; ///< Names for diagnostics.
};

class DecodedModule
{
  public:
    /**
     * Bump when the decoded encoding could change observable stats;
     * hashed into measurement artifact digests so stale cached
     * measurements never alias a decode change.
     * v2: DecodedOp specialization + superinstruction fusion (and the
     * fused-execution counters in RunStats/measurement artifacts).
     */
    static constexpr uint32_t kFormatVersion = 2;

    /**
     * Decode `module` (which must outlive this object). `fuse` turns
     * superinstruction fusion off for dispatch-cost experiments (the
     * microbench's per-digram harness); every production caller uses
     * the default.
     */
    explicit DecodedModule(const ir::Module& module, bool fuse = true);

    const ir::Module& module() const { return module_; }
    const analysis::CodeLayout& layout() const { return layout_; }

    const DecodedFunction& func(ir::FuncId f) const
    {
        PIBE_ASSERT(f < funcs_.size(), "DecodedModule: bad FuncId");
        return funcs_[f];
    }
    size_t numFunctions() const { return funcs_.size(); }

    const std::vector<DecodedInst>& code() const { return code_; }
    /** Cold per-instruction metadata, parallel to code(). */
    const std::vector<DecodedAux>& aux() const { return aux_; }
    const std::vector<BlockTarget>& targets() const { return targets_; }
    const std::vector<ir::Reg>& argsPool() const { return args_pool_; }
    const std::vector<SwitchCase>& switchCases() const
    {
        return switch_cases_;
    }
    const std::vector<uint32_t>& denseTargets() const
    {
        return dense_targets_;
    }

    /** Number of dense JumpSwitch state slots to allocate. */
    uint32_t numJsSlots() const { return num_js_slots_; }

    /** Dense slot of a JumpSwitch site id (kNoIndex if not one). */
    uint32_t
    jsSlotOf(ir::SiteId site) const
    {
        auto it = js_slot_of_site_.find(site);
        return it == js_slot_of_site_.end() ? kNoIndex : it->second;
    }

    /** Approximate bytes held by the decoded tables (profiling). */
    size_t decodedBytes() const;

    /** Opcode/digram histogram and fusion coverage of this decode. */
    const DecodeStats& decodeStats() const { return decode_stats_; }

  private:
    void fuseBlock(uint32_t begin, uint32_t end);

    const ir::Module& module_;
    analysis::CodeLayout layout_;
    std::vector<DecodedFunction> funcs_;
    std::vector<DecodedInst> code_;
    std::vector<DecodedAux> aux_; ///< Parallel to code_.
    std::vector<BlockTarget> targets_;
    std::vector<ir::Reg> args_pool_;
    std::vector<SwitchCase> switch_cases_;
    std::vector<uint32_t> dense_targets_; ///< BlockTarget index or
                                          ///< kNoIndex (= default).
    std::unordered_map<ir::SiteId, uint32_t> js_slot_of_site_;
    uint32_t num_js_slots_ = 0;
    DecodeStats decode_stats_;
};

} // namespace pibe::uarch

#endif // PIBE_UARCH_DECODED_MODULE_H_
