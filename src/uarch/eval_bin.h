/**
 * @file
 * Binary-operator evaluation shared by the decoded and reference
 * interpreter loops — one definition so the two paths cannot drift.
 */
#ifndef PIBE_UARCH_EVAL_BIN_H_
#define PIBE_UARCH_EVAL_BIN_H_

#include <cstdint>

#include "ir/module.h"
#include "support/logging.h"

namespace pibe::uarch {

/** Evaluate a binary operation the way the interpreter defines it. */
inline int64_t
evalBin(ir::BinKind kind, int64_t a, int64_t b)
{
    using ir::BinKind;
    const auto ua = static_cast<uint64_t>(a);
    const auto ub = static_cast<uint64_t>(b);
    switch (kind) {
      case BinKind::kAdd: return static_cast<int64_t>(ua + ub);
      case BinKind::kSub: return static_cast<int64_t>(ua - ub);
      case BinKind::kMul: return static_cast<int64_t>(ua * ub);
      case BinKind::kDiv:
        if (b == 0)
            PIBE_FATAL("division by zero in simulated code");
        return static_cast<int64_t>(ua / ub);
      case BinKind::kRem:
        if (b == 0)
            PIBE_FATAL("remainder by zero in simulated code");
        return static_cast<int64_t>(ua % ub);
      case BinKind::kAnd: return a & b;
      case BinKind::kOr:  return a | b;
      case BinKind::kXor: return a ^ b;
      case BinKind::kShl: return static_cast<int64_t>(ua << (ub & 63));
      case BinKind::kShr: return static_cast<int64_t>(ua >> (ub & 63));
      case BinKind::kEq:  return a == b;
      case BinKind::kNe:  return a != b;
      case BinKind::kLt:  return a < b;
      case BinKind::kLe:  return a <= b;
      case BinKind::kGt:  return a > b;
      case BinKind::kGe:  return a >= b;
    }
    PIBE_PANIC("unhandled BinKind");
}

} // namespace pibe::uarch

#endif // PIBE_UARCH_EVAL_BIN_H_
