/**
 * @file
 * Binary-operator evaluation shared by the decoded and reference
 * interpreter loops — one definition so the two paths cannot drift.
 */
#ifndef PIBE_UARCH_EVAL_BIN_H_
#define PIBE_UARCH_EVAL_BIN_H_

#include <cstdint>

#include "ir/module.h"
#include "support/logging.h"

namespace pibe::uarch {

/** Evaluate a binary operation the way the interpreter defines it. */
inline int64_t
evalBin(ir::BinKind kind, int64_t a, int64_t b)
{
    using ir::BinKind;
    const auto ua = static_cast<uint64_t>(a);
    const auto ub = static_cast<uint64_t>(b);
    switch (kind) {
      case BinKind::kAdd: return static_cast<int64_t>(ua + ub);
      case BinKind::kSub: return static_cast<int64_t>(ua - ub);
      case BinKind::kMul: return static_cast<int64_t>(ua * ub);
      case BinKind::kDiv:
        if (b == 0)
            PIBE_FATAL("division by zero in simulated code");
        return static_cast<int64_t>(ua / ub);
      case BinKind::kRem:
        if (b == 0)
            PIBE_FATAL("remainder by zero in simulated code");
        return static_cast<int64_t>(ua % ub);
      case BinKind::kAnd: return a & b;
      case BinKind::kOr:  return a | b;
      case BinKind::kXor: return a ^ b;
      case BinKind::kShl: return static_cast<int64_t>(ua << (ub & 63));
      case BinKind::kShr: return static_cast<int64_t>(ua >> (ub & 63));
      case BinKind::kEq:  return a == b;
      case BinKind::kNe:  return a != b;
      case BinKind::kLt:  return a < b;
      case BinKind::kLe:  return a <= b;
      case BinKind::kGt:  return a > b;
      case BinKind::kGe:  return a >= b;
    }
    PIBE_PANIC("unhandled BinKind");
}

/**
 * Compile-time-specialized variant for the decoded stream's
 * kind-specific opcodes: the operator is a template parameter, so a
 * specialized handler carries no second dispatch on the kind. kDiv
 * and kRem deliberately have no specialization — their zero-divisor
 * side exit stays on the generic evalBin path above (and the decoder
 * never emits a specialized opcode for them).
 *
 * Semantics are identical to evalBin by construction: unsigned
 * wraparound arithmetic, shift counts masked to 6 bits, comparisons
 * yielding 0/1.
 */
template <ir::BinKind K>
inline int64_t
evalBinK(int64_t a, int64_t b)
{
    using ir::BinKind;
    const auto ua = static_cast<uint64_t>(a);
    const auto ub = static_cast<uint64_t>(b);
    if constexpr (K == BinKind::kAdd)
        return static_cast<int64_t>(ua + ub);
    else if constexpr (K == BinKind::kSub)
        return static_cast<int64_t>(ua - ub);
    else if constexpr (K == BinKind::kMul)
        return static_cast<int64_t>(ua * ub);
    else if constexpr (K == BinKind::kAnd)
        return a & b;
    else if constexpr (K == BinKind::kOr)
        return a | b;
    else if constexpr (K == BinKind::kXor)
        return a ^ b;
    else if constexpr (K == BinKind::kShl)
        return static_cast<int64_t>(ua << (ub & 63));
    else if constexpr (K == BinKind::kShr)
        return static_cast<int64_t>(ua >> (ub & 63));
    else if constexpr (K == BinKind::kEq)
        return a == b;
    else if constexpr (K == BinKind::kNe)
        return a != b;
    else if constexpr (K == BinKind::kLt)
        return a < b;
    else if constexpr (K == BinKind::kLe)
        return a <= b;
    else if constexpr (K == BinKind::kGt)
        return a > b;
    else if constexpr (K == BinKind::kGe)
        return a >= b;
    else
        static_assert(K != K, "evalBinK: kind has no specialization");
}

} // namespace pibe::uarch

#endif // PIBE_UARCH_EVAL_BIN_H_
