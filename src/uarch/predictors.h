/**
 * @file
 * Branch prediction structures: BTB, RSB, and PHT (§2.2).
 *
 * These are the microarchitectural buffers transient attacks poison.
 * They are modeled structurally — indexed by code addresses from the
 * layout, shared across "contexts", and writable by an attack engine —
 * so BTB aliasing, RSB desynchronization, and PHT training behave like
 * their hardware counterparts at the fidelity the experiments need.
 */
#ifndef PIBE_UARCH_PREDICTORS_H_
#define PIBE_UARCH_PREDICTORS_H_

#include <cstdint>
#include <vector>

#include "support/logging.h"

namespace pibe::uarch {

/**
 * Branch Target Buffer: direct-mapped, tagless, indexed by the low
 * bits of the branch address — so two branches whose addresses alias
 * share an entry, and an attacker able to execute at an aliasing
 * address can install an arbitrary predicted target (Spectre V2).
 */
class Btb
{
  public:
    explicit Btb(uint32_t entries) : targets_(entries, 0)
    {
        PIBE_ASSERT(entries > 0 && (entries & (entries - 1)) == 0,
                    "BTB entries must be a power of two");
    }

    /** Predicted target for a branch at `addr` (0 = no prediction). */
    uint64_t
    predict(uint64_t addr) const
    {
        return targets_[indexOf(addr)];
    }

    /** Train the entry for `addr` with the resolved `target`. */
    void
    update(uint64_t addr, uint64_t target)
    {
        targets_[indexOf(addr)] = target;
    }

    /** Attacker primitive: install `target` in the entry for `addr`. */
    void
    poison(uint64_t addr, uint64_t target)
    {
        targets_[indexOf(addr)] = target;
    }

    void
    flush()
    {
        std::fill(targets_.begin(), targets_.end(), 0);
    }

  private:
    uint32_t
    indexOf(uint64_t addr) const
    {
        // Low bits of the (byte) address select the set, as on x86.
        return static_cast<uint32_t>((addr >> 1) &
                                     (targets_.size() - 1));
    }

    std::vector<uint64_t> targets_;
};

/**
 * Return Stack Buffer: a small circular hardware stack of predicted
 * return addresses. Pushes wrap around (overwriting the oldest entry)
 * and pops past the fill level underflow, both of which cause return
 * mispredictions in deep call chains — and both of which attackers
 * exploit (Ret2spec / SpectreRSB).
 */
class Rsb
{
  public:
    explicit Rsb(uint32_t entries) : ring_(entries, 0)
    {
        PIBE_ASSERT(entries > 0, "RSB must have entries");
    }

    /** Push a return address (on call). */
    void
    push(uint64_t ret_addr)
    {
        // Branchy wrap instead of modulo: push/pop run once per
        // simulated call/return, and the ring size is not a compile
        // time constant, so `%` would be a hardware division.
        top_ = top_ + 1 == ring_.size() ? 0 : top_ + 1;
        ring_[top_] = ret_addr;
        if (fill_ < ring_.size())
            ++fill_;
    }

    /**
     * Pop the predicted return address (on ret). Returns 0 on
     * underflow (no prediction; hardware may fall back to the BTB).
     */
    uint64_t
    pop()
    {
        if (fill_ == 0)
            return 0;
        uint64_t v = ring_[top_];
        top_ = top_ == 0 ? static_cast<uint32_t>(ring_.size()) - 1
                         : top_ - 1;
        --fill_;
        return v;
    }

    /** Attacker primitive: overwrite the top entry (RSB poisoning). */
    void
    poisonTop(uint64_t target)
    {
        if (fill_ > 0)
            ring_[top_] = target;
    }

    void
    flush()
    {
        std::fill(ring_.begin(), ring_.end(), 0);
        fill_ = 0;
        top_ = 0;
    }

    uint32_t fillLevel() const { return fill_; }

  private:
    std::vector<uint64_t> ring_;
    uint32_t top_ = 0;
    uint32_t fill_ = 0;
};

/**
 * Pattern History Table with gshare indexing: 2-bit saturating
 * counters indexed by the branch address XORed with a global branch
 * history register. The history component lets the predictor learn
 * the periodic patterns that guard chains (ICP's compare sequences,
 * jump-table compare trees) produce — which modern correlating
 * predictors handle and a plain bimodal table does not.
 */
class Pht
{
  public:
    explicit Pht(uint32_t entries) : counters_(entries, 1)
    {
        PIBE_ASSERT(entries > 0 && (entries & (entries - 1)) == 0,
                    "PHT entries must be a power of two");
    }

    /** Predicted direction for the branch at `addr`. */
    bool
    predictTaken(uint64_t addr) const
    {
        return counters_[indexOf(addr)] >= 2;
    }

    /** Train with the resolved direction (also shifts history). */
    void
    update(uint64_t addr, bool taken)
    {
        uint8_t& c = counters_[indexOf(addr)];
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & kHistoryMask;
    }

    /**
     * Fused predictTaken + update for the decoded hot loop: one index
     * computation instead of two. Bit-identical to calling the pair —
     * both calls index with the same pre-update history (update only
     * shifts history at the end), so reading the counter once is
     * exactly what the two lookups read.
     */
    bool
    predictAndUpdate(uint64_t addr, bool taken)
    {
        uint8_t& c = counters_[indexOf(addr)];
        const bool predicted = c >= 2;
        if (taken && c < 3)
            ++c;
        else if (!taken && c > 0)
            --c;
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & kHistoryMask;
        return predicted;
    }

    void
    flush()
    {
        std::fill(counters_.begin(), counters_.end(), 1);
        history_ = 0;
    }

  private:
    static constexpr uint64_t kHistoryMask = 0xfff; // 12-bit history

    uint32_t
    indexOf(uint64_t addr) const
    {
        return static_cast<uint32_t>(((addr >> 1) ^ history_) &
                                     (counters_.size() - 1));
    }

    std::vector<uint8_t> counters_;
    uint64_t history_ = 0;
};

} // namespace pibe::uarch

#endif // PIBE_UARCH_PREDICTORS_H_
