#include "uarch/decoded_module.h"

#include <algorithm>

namespace pibe::uarch {

namespace {

/**
 * Dense switch tables trade memory for O(1) dispatch; cap the waste
 * so a sparse value set (e.g. {0, 1 << 20}) falls back to binary
 * search instead of allocating a huge mostly-default table.
 */
constexpr uint64_t kMaxDenseRange = 1024;

bool
denseWorthIt(uint64_t range, size_t cases)
{
    return range <= kMaxDenseRange && range <= 4 * cases;
}

/**
 * Index into PIBE_SPEC_BIN_KINDS order when `op` is a specialized
 * plain binop (kBinAdd..kBinGe), else -1.
 */
int
specIndexOfOp(DecodedOp op)
{
    const int i = static_cast<int>(op) -
                  static_cast<int>(DecodedOp::kBinAdd);
    return (i >= 0 && i < static_cast<int>(kNumSpecBinKinds)) ? i : -1;
}

} // namespace

uint64_t
estimateDecodedBytes(const ir::Module& module)
{
    uint64_t insts = 0, blocks = 0, args = 0;
    uint64_t sorted_cases = 0, dense_slots = 0;
    for (const ir::Function& f : module.functions()) {
        blocks += f.blocks.size();
        for (const ir::BasicBlock& bb : f.blocks) {
            insts += bb.insts.size();
            for (const ir::Instruction& inst : bb.insts) {
                args += inst.args.size();
                if (inst.op != ir::Opcode::kSwitch)
                    continue;
                // Mirror decode's duplicate-value collapse and its
                // dense-vs-sorted dispatch choice.
                std::vector<int64_t> values = inst.case_values;
                std::sort(values.begin(), values.end());
                values.erase(std::unique(values.begin(), values.end()),
                             values.end());
                if (values.empty())
                    continue;
                const uint64_t range =
                    static_cast<uint64_t>(values.back()) -
                    static_cast<uint64_t>(values.front()) + 1;
                if (denseWorthIt(range, values.size()))
                    dense_slots += range;
                else
                    sorted_cases += values.size();
            }
        }
    }
    return insts * (sizeof(DecodedInst) + sizeof(DecodedAux)) +
           blocks * sizeof(BlockTarget) + args * sizeof(ir::Reg) +
           sorted_cases * sizeof(SwitchCase) +
           dense_slots * sizeof(uint32_t) +
           module.numFunctions() * sizeof(DecodedFunction);
}

const char*
fusedFamilyName(FusedFamily family)
{
    switch (family) {
      case FusedFamily::kCmpBr: return "cmp+condbr";
      case FusedFamily::kConstBin: return "const+binop";
      case FusedFamily::kBinConst: return "binop+const";
      case FusedFamily::kMoveBin: return "move+binop";
      case FusedFamily::kFrameLoadBin: return "frameload+binop";
      case FusedFamily::kConstCall: return "const+call";
      case FusedFamily::kMoveCall: return "move+call";
      case FusedFamily::kFrameLoadCall: return "frameload+call";
      default: return "?";
    }
}

DecodedModule::DecodedModule(const ir::Module& module, bool fuse)
    : module_(module), layout_(module)
{
    const size_t num_funcs = module.numFunctions();
    funcs_.resize(num_funcs);

    // Pass 1: per-function code bases and one BlockTarget per block.
    // Code indices mirror the layout's flat offset table exactly: the
    // i-th instruction of a function (in block order) is code entry
    // code_base[f] + i.
    std::vector<uint32_t> code_base(num_funcs, 0);
    std::vector<uint32_t> target_base(num_funcs, 0);
    uint32_t code_cursor = 0;
    uint32_t target_cursor = 0;
    for (const ir::Function& f : module.functions()) {
        code_base[f.id] = code_cursor;
        target_base[f.id] = target_cursor;
        code_cursor += static_cast<uint32_t>(f.instructionCount());
        target_cursor += static_cast<uint32_t>(f.blocks.size());
    }
    code_.reserve(code_cursor);
    aux_.reserve(code_cursor);
    targets_.resize(target_cursor);

    for (const ir::Function& f : module.functions()) {
        const auto& block_first = layout_.blockFirstInst(f.id);
        const auto& offsets = layout_.instOffsets(f.id);
        const uint64_t base = layout_.funcBase(f.id);
        for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
            BlockTarget& bt = targets_[target_base[f.id] + b];
            bt.code_index = code_base[f.id] + block_first[b];
            bt.start_addr = base + offsets[block_first[b]];
            bt.end_addr = base + offsets[block_first[b + 1]];
        }

        DecodedFunction& df = funcs_[f.id];
        df.is_declaration = f.isDeclaration();
        df.num_params = f.num_params;
        df.num_regs = f.num_regs;
        df.frame_size = f.frame_size;
        df.base_addr = base;
        df.func = &f;
        if (!df.is_declaration)
            df.entry = targets_[target_base[f.id]];
    }

    // Pass 2: flatten instructions, gathering the static opcode and
    // intra-block digram histogram the fusion set is selected from.
    for (const ir::Function& f : module.functions()) {
        const auto& block_first = layout_.blockFirstInst(f.id);
        const auto& offsets = layout_.instOffsets(f.id);
        const uint64_t base = layout_.funcBase(f.id);
        uint32_t flat = 0;
        for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
            const uint64_t block_end =
                base + offsets[block_first[b + 1]];
            int prev_op = -1;
            for (const ir::Instruction& inst : f.blocks[b].insts) {
                const int op_idx = static_cast<int>(inst.op);
                ++decode_stats_.op_count[op_idx];
                if (prev_op >= 0)
                    ++decode_stats_.digram[prev_op][op_idx];
                prev_op = op_idx;

                DecodedInst d;
                DecodedAux x;
                d.op = decodedOpOf(inst.op);
                d.bin = inst.bin;
                d.fwd_scheme = inst.fwd_scheme;
                d.ret_scheme = inst.ret_scheme;
                d.dst = inst.dst;
                d.a = inst.a;
                d.b = inst.b;
                d.imm = inst.imm;
                d.addr = base + offsets[flat];
                // Instructions are laid out back to back, so the next
                // flat offset (or the end sentinel) is addr + size.
                d.next_addr = base + offsets[flat + 1];
                d.global = inst.global;
                x.block_end = block_end;
                x.callee = inst.callee;
                x.site_id = inst.site_id;

                switch (inst.op) {
                  case ir::Opcode::kBinOp: {
                    // Operator specialization: all kinds except the
                    // zero-divisor-checked kDiv/kRem dispatch
                    // straight to a kind-specific handler.
                    const int si = specBinIndex(inst.bin);
                    if (si >= 0)
                        d.op = familyOp(DecodedOp::kBinAdd, si);
                    break;
                  }
                  case ir::Opcode::kCall: {
                    const ir::Function& callee =
                        module.func(inst.callee);
                    PIBE_ASSERT(inst.args.size() == callee.num_params,
                                "call arity mismatch for ",
                                callee.name, " in ", f.name);
                    d.callee_is_decl = callee.isDeclaration();
                    break;
                  }
                  case ir::Opcode::kICall:
                    if (inst.fwd_scheme == ir::FwdScheme::kJumpSwitch) {
                        // Sites sharing a site_id share JumpSwitch
                        // runtime state, exactly like the map the
                        // dense slots replace.
                        auto [it, inserted] =
                            js_slot_of_site_.try_emplace(
                                inst.site_id, num_js_slots_);
                        if (inserted)
                            ++num_js_slots_;
                        x.js_slot = it->second;
                    }
                    break;
                  case ir::Opcode::kBr:
                    d.t0 = target_base[f.id] + inst.t0;
                    break;
                  case ir::Opcode::kCondBr:
                    d.t0 = target_base[f.id] + inst.t0;
                    d.t1 = target_base[f.id] + inst.t1;
                    break;
                  case ir::Opcode::kSwitch: {
                    d.t0 = target_base[f.id] + inst.t0;
                    // Collect cases, keeping only the first
                    // occurrence of a duplicate value (the linear
                    // scan's first-match semantics).
                    std::vector<SwitchCase> cases;
                    cases.reserve(inst.case_values.size());
                    for (size_t c = 0; c < inst.case_values.size();
                         ++c) {
                        const int64_t v = inst.case_values[c];
                        const bool seen = std::any_of(
                            cases.begin(), cases.end(),
                            [v](const SwitchCase& sc) {
                                return sc.value == v;
                            });
                        if (!seen) {
                            cases.push_back(
                                {v, target_base[f.id] +
                                        inst.case_targets[c]});
                        }
                    }
                    std::sort(cases.begin(), cases.end(),
                              [](const SwitchCase& x,
                                 const SwitchCase& y) {
                                  return x.value < y.value;
                              });
                    if (!cases.empty()) {
                        const int64_t lo = cases.front().value;
                        const int64_t hi = cases.back().value;
                        const uint64_t range =
                            static_cast<uint64_t>(hi) -
                            static_cast<uint64_t>(lo) + 1;
                        if (denseWorthIt(range, cases.size())) {
                            d.switch_dense = true;
                            d.imm = lo;
                            x.sw_begin = static_cast<uint32_t>(
                                dense_targets_.size());
                            x.sw_count =
                                static_cast<uint32_t>(range);
                            dense_targets_.resize(
                                dense_targets_.size() + range,
                                kNoIndex);
                            for (const SwitchCase& sc : cases) {
                                dense_targets_
                                    [x.sw_begin +
                                     static_cast<uint64_t>(sc.value) -
                                     static_cast<uint64_t>(lo)] =
                                        sc.target;
                            }
                        }
                    }
                    if (!d.switch_dense) {
                        x.sw_begin = static_cast<uint32_t>(
                            switch_cases_.size());
                        x.sw_count =
                            static_cast<uint32_t>(cases.size());
                        switch_cases_.insert(switch_cases_.end(),
                                             cases.begin(),
                                             cases.end());
                    }
                    break;
                  }
                  default:
                    break;
                }

                if (!inst.args.empty()) {
                    x.args_begin =
                        static_cast<uint32_t>(args_pool_.size());
                    x.args_count =
                        static_cast<uint32_t>(inst.args.size());
                    args_pool_.insert(args_pool_.end(),
                                      inst.args.begin(),
                                      inst.args.end());
                }

                code_.push_back(d);
                aux_.push_back(x);
                ++flat;
            }
        }
    }

    // Pass 3: superinstruction fusion, block by block. Branch targets
    // are block starts by construction, so a pair fused strictly
    // inside one block can never have its second instruction targeted
    // by a branch — no split logic is needed, only the block bound.
    if (fuse) {
        for (const ir::Function& f : module.functions()) {
            if (f.isDeclaration())
                continue;
            const auto& block_first = layout_.blockFirstInst(f.id);
            for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
                fuseBlock(code_base[f.id] + block_first[b],
                          code_base[f.id] + block_first[b + 1]);
            }
        }
    }
}

/**
 * Greedy left-to-right fusion over one block's code slots. A fused
 * pair rewrites the *first* slot into a superinstruction and leaves
 * the second slot (and the whole cold aux array) untouched (handlers
 * step pc by 2 over it), so code indices and the addr/next_addr/
 * block_end fields a call-resume refetch reads stay exactly as pass 2
 * built them.
 *
 * Operand packing per family (first = F, second = S):
 *  - CmpBr<K>:      dst/a/b from F (the compare); t0/t1 copied from
 *                   S; the PHT/fetch address of the branch is F's
 *                   next_addr (== S.addr).
 *  - ConstBinA<K>:  c/imm = F's dst/imm; dst/a/b/bin = S's. Chosen
 *                   when S.a == F.dst (the folded operand is `a`).
 *  - ConstBinB<K>:  same, chosen when S.b == F.dst.
 *  - BinConst<K>:   dst/a/b/bin stay F's; c/imm = S's dst/imm.
 *  - MoveBin:       c = F.dst, imm = F.a (move source register);
 *                   dst/a/b/bin = S's (generic evalBin — accepts
 *                   kDiv/kRem too, the handler keeps their checks).
 *  - FrameLoadBin:  c = F.dst, imm stays F's frame slot;
 *                   dst/a/b/bin = S's.
 *  - *Call:         only the opcode changes; the handler executes
 *                   F's fields from the fused slot and reads every
 *                   call field from the untouched second slot (and
 *                   its aux entry).
 */
void
DecodedModule::fuseBlock(uint32_t begin, uint32_t end)
{
    uint32_t i = begin;
    while (i + 1 < end) {
        DecodedInst& first = code_[i];
        const DecodedInst& second = code_[i + 1];
        FusedFamily fam = FusedFamily::kCount;
        const int sb = specIndexOfOp(second.op);

        switch (first.op) {
          case DecodedOp::kConst:
            if (sb >= 0 &&
                (second.a == first.dst || second.b == first.dst)) {
                const bool fold_a = second.a == first.dst;
                first.c = first.dst;
                first.dst = second.dst;
                first.a = second.a;
                first.b = second.b;
                first.bin = second.bin;
                first.op = familyOp(fold_a ? DecodedOp::kConstBinAAdd
                                           : DecodedOp::kConstBinBAdd,
                                   sb);
                fam = FusedFamily::kConstBin;
            } else if (second.op == DecodedOp::kCall) {
                first.op = DecodedOp::kConstCall;
                fam = FusedFamily::kConstCall;
            }
            break;
          case DecodedOp::kMove:
            if (sb >= 0 || second.op == DecodedOp::kBinOp) {
                first.c = first.dst;
                first.imm = static_cast<int64_t>(first.a);
                first.dst = second.dst;
                first.a = second.a;
                first.b = second.b;
                first.bin = second.bin;
                first.op = DecodedOp::kMoveBin;
                fam = FusedFamily::kMoveBin;
            } else if (second.op == DecodedOp::kCall) {
                first.op = DecodedOp::kMoveCall;
                fam = FusedFamily::kMoveCall;
            }
            break;
          case DecodedOp::kFrameLoad:
            if (sb >= 0 || second.op == DecodedOp::kBinOp) {
                first.c = first.dst;
                // first.imm already holds the frame slot.
                first.dst = second.dst;
                first.a = second.a;
                first.b = second.b;
                first.bin = second.bin;
                first.op = DecodedOp::kFrameLoadBin;
                fam = FusedFamily::kFrameLoadBin;
            } else if (second.op == DecodedOp::kCall) {
                first.op = DecodedOp::kFrameLoadCall;
                fam = FusedFamily::kFrameLoadCall;
            }
            break;
          default: {
            const int sa = specIndexOfOp(first.op);
            if (sa >= kFirstCmpSpecIndex &&
                second.op == DecodedOp::kCondBr &&
                second.a == first.dst) {
                first.t0 = second.t0;
                first.t1 = second.t1;
                first.op = familyOp(DecodedOp::kCmpBrEq,
                                    sa - kFirstCmpSpecIndex);
                fam = FusedFamily::kCmpBr;
            } else if (sa >= 0 && second.op == DecodedOp::kConst) {
                first.c = second.dst;
                first.imm = second.imm;
                first.op = familyOp(DecodedOp::kBinConstAdd, sa);
                fam = FusedFamily::kBinConst;
            }
            break;
          }
        }

        if (fam != FusedFamily::kCount) {
            ++decode_stats_.fused_sites[static_cast<size_t>(fam)];
            ++decode_stats_.fused_pairs;
            i += 2;
        } else {
            ++i;
        }
    }
}

size_t
DecodedModule::decodedBytes() const
{
    return code_.size() * sizeof(DecodedInst) +
           aux_.size() * sizeof(DecodedAux) +
           targets_.size() * sizeof(BlockTarget) +
           args_pool_.size() * sizeof(ir::Reg) +
           switch_cases_.size() * sizeof(SwitchCase) +
           dense_targets_.size() * sizeof(uint32_t) +
           funcs_.size() * sizeof(DecodedFunction);
}

} // namespace pibe::uarch
