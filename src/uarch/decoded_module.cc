#include "uarch/decoded_module.h"

#include <algorithm>

namespace pibe::uarch {

namespace {

/**
 * Dense switch tables trade memory for O(1) dispatch; cap the waste
 * so a sparse value set (e.g. {0, 1 << 20}) falls back to binary
 * search instead of allocating a huge mostly-default table.
 */
constexpr uint64_t kMaxDenseRange = 1024;

bool
denseWorthIt(uint64_t range, size_t cases)
{
    return range <= kMaxDenseRange && range <= 4 * cases;
}

} // namespace

DecodedModule::DecodedModule(const ir::Module& module)
    : module_(module), layout_(module)
{
    const size_t num_funcs = module.numFunctions();
    funcs_.resize(num_funcs);

    // Pass 1: per-function code bases and one BlockTarget per block.
    // Code indices mirror the layout's flat offset table exactly: the
    // i-th instruction of a function (in block order) is code entry
    // code_base[f] + i.
    std::vector<uint32_t> code_base(num_funcs, 0);
    std::vector<uint32_t> target_base(num_funcs, 0);
    uint32_t code_cursor = 0;
    uint32_t target_cursor = 0;
    for (const ir::Function& f : module.functions()) {
        code_base[f.id] = code_cursor;
        target_base[f.id] = target_cursor;
        code_cursor += static_cast<uint32_t>(f.instructionCount());
        target_cursor += static_cast<uint32_t>(f.blocks.size());
    }
    code_.reserve(code_cursor);
    targets_.resize(target_cursor);

    for (const ir::Function& f : module.functions()) {
        const auto& block_first = layout_.blockFirstInst(f.id);
        const auto& offsets = layout_.instOffsets(f.id);
        const uint64_t base = layout_.funcBase(f.id);
        for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
            BlockTarget& bt = targets_[target_base[f.id] + b];
            bt.code_index = code_base[f.id] + block_first[b];
            bt.start_addr = base + offsets[block_first[b]];
            bt.end_addr = base + offsets[block_first[b + 1]];
        }

        DecodedFunction& df = funcs_[f.id];
        df.is_declaration = f.isDeclaration();
        df.num_params = f.num_params;
        df.num_regs = f.num_regs;
        df.frame_size = f.frame_size;
        df.base_addr = base;
        df.func = &f;
        if (!df.is_declaration)
            df.entry = targets_[target_base[f.id]];
    }

    // Pass 2: flatten instructions.
    for (const ir::Function& f : module.functions()) {
        const auto& block_first = layout_.blockFirstInst(f.id);
        const auto& offsets = layout_.instOffsets(f.id);
        const uint64_t base = layout_.funcBase(f.id);
        uint32_t flat = 0;
        for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
            const uint64_t block_end =
                base + offsets[block_first[b + 1]];
            for (const ir::Instruction& inst : f.blocks[b].insts) {
                DecodedInst d;
                d.op = inst.op;
                d.bin = inst.bin;
                d.fwd_scheme = inst.fwd_scheme;
                d.ret_scheme = inst.ret_scheme;
                d.dst = inst.dst;
                d.a = inst.a;
                d.b = inst.b;
                d.imm = inst.imm;
                d.addr = base + offsets[flat];
                // Instructions are laid out back to back, so the next
                // flat offset (or the end sentinel) is addr + size.
                d.next_addr = base + offsets[flat + 1];
                d.block_end = block_end;
                d.callee = inst.callee;
                d.global = inst.global;
                d.site_id = inst.site_id;

                switch (inst.op) {
                  case ir::Opcode::kCall: {
                    const ir::Function& callee =
                        module.func(inst.callee);
                    PIBE_ASSERT(inst.args.size() == callee.num_params,
                                "call arity mismatch for ",
                                callee.name, " in ", f.name);
                    d.callee_is_decl = callee.isDeclaration();
                    break;
                  }
                  case ir::Opcode::kICall:
                    if (inst.fwd_scheme == ir::FwdScheme::kJumpSwitch) {
                        // Sites sharing a site_id share JumpSwitch
                        // runtime state, exactly like the map the
                        // dense slots replace.
                        auto [it, inserted] =
                            js_slot_of_site_.try_emplace(
                                inst.site_id, num_js_slots_);
                        if (inserted)
                            ++num_js_slots_;
                        d.js_slot = it->second;
                    }
                    break;
                  case ir::Opcode::kBr:
                    d.t0 = target_base[f.id] + inst.t0;
                    break;
                  case ir::Opcode::kCondBr:
                    d.t0 = target_base[f.id] + inst.t0;
                    d.t1 = target_base[f.id] + inst.t1;
                    break;
                  case ir::Opcode::kSwitch: {
                    d.t0 = target_base[f.id] + inst.t0;
                    // Collect cases, keeping only the first
                    // occurrence of a duplicate value (the linear
                    // scan's first-match semantics).
                    std::vector<SwitchCase> cases;
                    cases.reserve(inst.case_values.size());
                    for (size_t c = 0; c < inst.case_values.size();
                         ++c) {
                        const int64_t v = inst.case_values[c];
                        const bool seen = std::any_of(
                            cases.begin(), cases.end(),
                            [v](const SwitchCase& sc) {
                                return sc.value == v;
                            });
                        if (!seen) {
                            cases.push_back(
                                {v, target_base[f.id] +
                                        inst.case_targets[c]});
                        }
                    }
                    std::sort(cases.begin(), cases.end(),
                              [](const SwitchCase& x,
                                 const SwitchCase& y) {
                                  return x.value < y.value;
                              });
                    if (!cases.empty()) {
                        const int64_t lo = cases.front().value;
                        const int64_t hi = cases.back().value;
                        const uint64_t range =
                            static_cast<uint64_t>(hi) -
                            static_cast<uint64_t>(lo) + 1;
                        if (denseWorthIt(range, cases.size())) {
                            d.switch_dense = true;
                            d.imm = lo;
                            d.sw_begin = static_cast<uint32_t>(
                                dense_targets_.size());
                            d.sw_count =
                                static_cast<uint32_t>(range);
                            dense_targets_.resize(
                                dense_targets_.size() + range,
                                kNoIndex);
                            for (const SwitchCase& sc : cases) {
                                dense_targets_
                                    [d.sw_begin +
                                     static_cast<uint64_t>(sc.value) -
                                     static_cast<uint64_t>(lo)] =
                                        sc.target;
                            }
                        }
                    }
                    if (!d.switch_dense) {
                        d.sw_begin = static_cast<uint32_t>(
                            switch_cases_.size());
                        d.sw_count =
                            static_cast<uint32_t>(cases.size());
                        switch_cases_.insert(switch_cases_.end(),
                                             cases.begin(),
                                             cases.end());
                    }
                    break;
                  }
                  default:
                    break;
                }

                if (!inst.args.empty()) {
                    d.args_begin =
                        static_cast<uint32_t>(args_pool_.size());
                    d.args_count =
                        static_cast<uint32_t>(inst.args.size());
                    args_pool_.insert(args_pool_.end(),
                                      inst.args.begin(),
                                      inst.args.end());
                }

                code_.push_back(d);
                ++flat;
            }
        }
    }
}

size_t
DecodedModule::decodedBytes() const
{
    return code_.size() * sizeof(DecodedInst) +
           targets_.size() * sizeof(BlockTarget) +
           args_pool_.size() * sizeof(ir::Reg) +
           switch_cases_.size() * sizeof(SwitchCase) +
           dense_targets_.size() * sizeof(uint32_t) +
           funcs_.size() * sizeof(DecodedFunction);
}

} // namespace pibe::uarch
