#include "uarch/simulator.h"

#include <algorithm>

namespace pibe::uarch {

namespace {

/** Evaluate a binary operation the way the interpreter defines it. */
int64_t
evalBin(ir::BinKind kind, int64_t a, int64_t b)
{
    using ir::BinKind;
    const auto ua = static_cast<uint64_t>(a);
    const auto ub = static_cast<uint64_t>(b);
    switch (kind) {
      case BinKind::kAdd: return static_cast<int64_t>(ua + ub);
      case BinKind::kSub: return static_cast<int64_t>(ua - ub);
      case BinKind::kMul: return static_cast<int64_t>(ua * ub);
      case BinKind::kDiv:
        if (b == 0)
            PIBE_FATAL("division by zero in simulated code");
        return static_cast<int64_t>(ua / ub);
      case BinKind::kRem:
        if (b == 0)
            PIBE_FATAL("remainder by zero in simulated code");
        return static_cast<int64_t>(ua % ub);
      case BinKind::kAnd: return a & b;
      case BinKind::kOr:  return a | b;
      case BinKind::kXor: return a ^ b;
      case BinKind::kShl: return static_cast<int64_t>(ua << (ub & 63));
      case BinKind::kShr: return static_cast<int64_t>(ua >> (ub & 63));
      case BinKind::kEq:  return a == b;
      case BinKind::kNe:  return a != b;
      case BinKind::kLt:  return a < b;
      case BinKind::kLe:  return a <= b;
      case BinKind::kGt:  return a > b;
      case BinKind::kGe:  return a >= b;
    }
    PIBE_PANIC("unhandled BinKind");
}

} // namespace

Simulator::Simulator(const ir::Module& module, const CostParams& params)
    : module_(module),
      params_(params),
      layout_(module),
      btb_(params_.btb_entries),
      rsb_(params_.rsb_entries),
      pht_(params_.pht_entries),
      icache_(params_.icache_bytes, params_.icache_assoc,
              params_.icache_line)
{
    resetMemory();
}

void
Simulator::resetMemory()
{
    globals_.clear();
    globals_.reserve(module_.numGlobals());
    for (const ir::Global& g : module_.globals())
        globals_.push_back(g.init);
}

void
Simulator::resetMicroarch()
{
    btb_.flush();
    rsb_.flush();
    pht_.flush();
    icache_.flush();
    js_states_.clear();
}

int64_t
Simulator::readGlobal(ir::GlobalId g, size_t index) const
{
    PIBE_ASSERT(g < globals_.size() && index < globals_[g].size(),
                "readGlobal out of range");
    return globals_[g][index];
}

void
Simulator::writeGlobal(ir::GlobalId g, size_t index, int64_t value)
{
    PIBE_ASSERT(g < globals_.size() && index < globals_[g].size(),
                "writeGlobal out of range");
    globals_[g][index] = value;
}

void
Simulator::fetchBlock(ir::FuncId f, ir::BlockId bb, uint32_t from_ip)
{
    if (!timing_)
        return;
    const uint64_t start = layout_.instAddr(f, bb, from_ip);
    const uint64_t end = layout_.blockEnd(f, bb);
    const uint32_t misses = icache_.touchRange(start, end);
    stats_.icache_misses += misses;
    stats_.cycles +=
        static_cast<uint64_t>(misses) * params_.icache_miss_penalty;
}

void
Simulator::enterFunction(ir::FuncId f, const std::vector<int64_t>& args,
                         ir::Reg ret_dst, uint64_t ret_addr)
{
    const ir::Function& func = module_.func(f);
    PIBE_ASSERT(args.size() == func.num_params,
                "call arity mismatch for ", func.name);
    if (profiler_)
        profiler_->addInvocation(f);

    Activation act;
    act.func = &func;
    act.fid = f;
    act.bb = 0;
    act.ip = 0;
    act.frame_base = static_cast<uint32_t>(frame_stack_.size());
    act.ret_dst = ret_dst;
    act.ret_addr = ret_addr;
    act.regs.assign(func.num_regs, 0);
    std::copy(args.begin(), args.end(), act.regs.begin());
    frame_stack_.resize(frame_stack_.size() + func.frame_size, 0);
    acts_.push_back(std::move(act));

    stats_.max_call_depth =
        std::max<uint64_t>(stats_.max_call_depth, acts_.size());
    stats_.peak_frame_slots =
        std::max<uint64_t>(stats_.peak_frame_slots, frame_stack_.size());
    fetchBlock(f, 0, 0);
}

void
Simulator::leaveFunction(int64_t value)
{
    const Activation done = std::move(acts_.back());
    acts_.pop_back();
    frame_stack_.resize(done.frame_base);
    last_return_ = value;
    if (!acts_.empty()) {
        Activation& caller = acts_.back();
        if (done.ret_dst != ir::kNoReg)
            caller.regs[done.ret_dst] = value;
        // Resume mid-block: refetch the remainder of the caller block
        // (the callee may have evicted the caller's lines).
        fetchBlock(caller.fid, caller.bb, caller.ip);
    }
}

uint32_t
Simulator::indirectCallCost(uint64_t branch_addr, ir::FuncId target,
                            const ir::Instruction& inst)
{
    const uint64_t target_addr = layout_.funcBase(target);
    switch (inst.fwd_scheme) {
      case ir::FwdScheme::kNone: {
        const uint64_t predicted = btb_.predict(branch_addr);
        btb_.update(branch_addr, target_addr);
        const uint32_t eibrs_tax =
            params_.eibrs ? params_.cost_eibrs_branch : 0;
        if (predicted == target_addr)
            return params_.cost_icall_predicted + eibrs_tax;
        ++stats_.btb_mispredicts;
        return params_.cost_icall_mispredict + eibrs_tax;
      }
      case ir::FwdScheme::kRetpoline:
        ++stats_.thunk_execs;
        return params_.cost_retpoline;
      case ir::FwdScheme::kLviCfi: {
        // The LVI thunk's jmpq *%r11 still predicts through the BTB;
        // the LFENCE adds a fixed serialization cost.
        ++stats_.thunk_execs;
        const uint64_t predicted = btb_.predict(branch_addr);
        btb_.update(branch_addr, target_addr);
        uint32_t base = params_.cost_icall_predicted;
        if (predicted != target_addr) {
            ++stats_.btb_mispredicts;
            base = params_.cost_icall_mispredict;
        }
        return base + params_.cost_lvi_fwd;
      }
      case ir::FwdScheme::kFencedRetpoline:
        ++stats_.thunk_execs;
        return params_.cost_fenced_retpoline;
      case ir::FwdScheme::kJumpSwitch: {
        JsState& js = js_states_[inst.site_id];
        ++js.execs;
        // Multi-target sites periodically drop back into a learning
        // retpoline that re-ranks targets (§8.2).
        if (js.multi_target &&
            js.execs % params_.js_learn_period <
                params_.js_learn_duration) {
            ++stats_.js_learning;
            return params_.cost_retpoline;
        }
        uint32_t cost = 0;
        for (size_t i = 0; i < js.inline_targets.size(); ++i) {
            cost += params_.cost_js_check;
            if (js.inline_targets[i] == target) {
                ++stats_.js_hits;
                return cost + params_.cost_dcall;
            }
        }
        if (js.inline_targets.size() < params_.js_max_inline_targets) {
            // Live-patch the new target into the switch.
            js.inline_targets.push_back(target);
            js.multi_target = js.inline_targets.size() > 1;
            ++stats_.js_patches;
            return cost + params_.cost_js_patch;
        }
        ++stats_.js_misses;
        return cost + params_.cost_retpoline;
      }
    }
    PIBE_PANIC("unhandled FwdScheme");
}

uint32_t
Simulator::returnCost(uint64_t ret_inst_addr, uint64_t actual_ret_addr,
                      const ir::Instruction& inst)
{
    (void)ret_inst_addr;
    switch (inst.ret_scheme) {
      case ir::RetScheme::kNone: {
        const uint64_t predicted = rsb_.pop();
        if (predicted == actual_ret_addr)
            return params_.cost_ret_predicted;
        ++stats_.rsb_mispredicts;
        return params_.cost_ret_mispredict;
      }
      case ir::RetScheme::kReturnRetpoline:
        ++stats_.thunk_execs;
        rsb_.pop(); // keep the hardware stack consistent
        return params_.cost_ret_retpoline;
      case ir::RetScheme::kLviRet:
        ++stats_.thunk_execs;
        rsb_.pop();
        return params_.cost_lvi_ret;
      case ir::RetScheme::kFencedRet:
        ++stats_.thunk_execs;
        rsb_.pop();
        return params_.cost_fenced_ret;
    }
    PIBE_PANIC("unhandled RetScheme");
}

int64_t
Simulator::run(ir::FuncId entry, const std::vector<int64_t>& args)
{
    PIBE_ASSERT(acts_.empty(), "Simulator::run is not reentrant");
    const ir::Function& entry_func = module_.func(entry);
    if (entry_func.isDeclaration()) {
        if (timing_)
            stats_.cycles += params_.cost_external;
        if (profiler_)
            profiler_->addInvocation(entry);
        return 0;
    }
    // Kernel entry: entry-time attackers pollute predictor state
    // first; RSB refilling (when enabled) then overwrites it (§6.4).
    if (observer_)
        observer_->onKernelEntry(rsb_);
    if (params_.rsb_refill_on_entry) {
        rsb_.flush();
        for (uint32_t i = 0; i < params_.rsb_entries; ++i)
            rsb_.push(0); // benign stuffing
        if (timing_)
            stats_.cycles += params_.cost_rsb_refill;
    }
    enterFunction(entry, args, ir::kNoReg, 0);

    while (!acts_.empty()) {
        Activation& act = acts_.back();
        const ir::Function& f = *act.func;
        PIBE_ASSERT(act.bb < f.blocks.size(), "bad block in ", f.name);
        const ir::BasicBlock& bb = f.blocks[act.bb];
        PIBE_ASSERT(act.ip < bb.insts.size(), "fell off block in ",
                    f.name);
        const ir::Instruction& inst = bb.insts[act.ip];
        ++stats_.instructions;

        switch (inst.op) {
          case ir::Opcode::kConst:
            act.regs[inst.dst] = inst.imm;
            if (timing_)
                stats_.cycles += params_.cost_free;
            ++act.ip;
            break;
          case ir::Opcode::kMove:
            act.regs[inst.dst] = act.regs[inst.a];
            if (timing_)
                stats_.cycles += params_.cost_free;
            ++act.ip;
            break;
          case ir::Opcode::kBinOp:
            act.regs[inst.dst] =
                evalBin(inst.bin, act.regs[inst.a], act.regs[inst.b]);
            if (timing_)
                stats_.cycles += params_.cost_simple;
            ++act.ip;
            break;
          case ir::Opcode::kFuncAddr:
            act.regs[inst.dst] = ir::funcAddrValue(inst.callee);
            if (timing_)
                stats_.cycles += params_.cost_free;
            ++act.ip;
            break;
          case ir::Opcode::kLoad: {
            auto& g = globals_[inst.global];
            const int64_t index = act.regs[inst.a] + inst.imm;
            if (index < 0 || index >= static_cast<int64_t>(g.size())) {
                PIBE_FATAL("load out of bounds: @",
                           module_.global(inst.global).name, "[", index,
                           "] in ", f.name);
            }
            act.regs[inst.dst] = g[index];
            if (timing_)
                stats_.cycles += params_.cost_mem;
            ++act.ip;
            break;
          }
          case ir::Opcode::kStore: {
            auto& g = globals_[inst.global];
            const int64_t index = act.regs[inst.a] + inst.imm;
            if (index < 0 || index >= static_cast<int64_t>(g.size())) {
                PIBE_FATAL("store out of bounds: @",
                           module_.global(inst.global).name, "[", index,
                           "] in ", f.name);
            }
            g[index] = act.regs[inst.b];
            if (timing_)
                stats_.cycles += params_.cost_mem;
            ++act.ip;
            break;
          }
          case ir::Opcode::kFrameLoad:
            act.regs[inst.dst] =
                frame_stack_[act.frame_base + inst.imm];
            if (timing_)
                stats_.cycles += params_.cost_simple;
            ++act.ip;
            break;
          case ir::Opcode::kFrameStore:
            frame_stack_[act.frame_base + inst.imm] = act.regs[inst.a];
            if (timing_)
                stats_.cycles += params_.cost_simple;
            ++act.ip;
            break;
          case ir::Opcode::kSink:
            sink_hash_ = sink_hash_ * 0x100000001b3ull ^
                         static_cast<uint64_t>(act.regs[inst.a]);
            if (timing_)
                stats_.cycles += params_.cost_simple;
            ++act.ip;
            break;
          case ir::Opcode::kCall: {
            ++stats_.direct_calls;
            if (profiler_)
                profiler_->addDirect(inst.site_id);
            const ir::Function& callee = module_.func(inst.callee);
            const uint64_t call_addr =
                layout_.instAddr(act.fid, act.bb, act.ip);
            const uint64_t next_addr =
                call_addr + analysis::instByteSize(inst);
            if (timing_) {
                stats_.cycles +=
                    params_.cost_dcall +
                    params_.cost_arg *
                        static_cast<uint32_t>(inst.args.size());
            }
            ++act.ip; // resume after the call upon return
            if (callee.isDeclaration()) {
                if (profiler_)
                    profiler_->addInvocation(inst.callee);
                if (timing_)
                    stats_.cycles += params_.cost_external;
                if (inst.dst != ir::kNoReg)
                    act.regs[inst.dst] = 0;
                break;
            }
            rsb_.push(next_addr);
            std::vector<int64_t> call_args;
            call_args.reserve(inst.args.size());
            for (ir::Reg r : inst.args)
                call_args.push_back(act.regs[r]);
            enterFunction(inst.callee, call_args, inst.dst, next_addr);
            break;
          }
          case ir::Opcode::kICall: {
            ++stats_.indirect_calls;
            const int64_t value = act.regs[inst.a];
            if (!ir::isFuncAddrValue(value)) {
                PIBE_FATAL("indirect call through non-function value ",
                           value, " in ", f.name);
            }
            const ir::FuncId target = ir::funcAddrTarget(value);
            if (target >= module_.numFunctions())
                PIBE_FATAL("indirect call to unknown function in ",
                           f.name);
            const ir::Function& callee = module_.func(target);
            if (callee.num_params != inst.args.size()) {
                PIBE_FATAL("indirect call arity mismatch: ", f.name,
                           " -> ", callee.name);
            }
            if (profiler_)
                profiler_->addIndirect(inst.site_id, target);
            const uint64_t call_addr =
                layout_.instAddr(act.fid, act.bb, act.ip);
            const uint64_t next_addr =
                call_addr + analysis::instByteSize(inst);
            if (observer_) {
                observer_->onIndirectBranch(call_addr, inst.fwd_scheme,
                                            layout_.funcBase(target),
                                            btb_);
            }
            if (timing_) {
                stats_.cycles +=
                    indirectCallCost(call_addr, target, inst) +
                    params_.cost_arg *
                        static_cast<uint32_t>(inst.args.size());
            }
            ++act.ip;
            if (callee.isDeclaration()) {
                if (profiler_)
                    profiler_->addInvocation(target);
                if (timing_)
                    stats_.cycles += params_.cost_external;
                if (inst.dst != ir::kNoReg)
                    act.regs[inst.dst] = 0;
                break;
            }
            rsb_.push(next_addr);
            std::vector<int64_t> call_args;
            call_args.reserve(inst.args.size());
            for (ir::Reg r : inst.args)
                call_args.push_back(act.regs[r]);
            enterFunction(target, call_args, inst.dst, next_addr);
            break;
          }
          case ir::Opcode::kRet: {
            ++stats_.returns;
            const int64_t value =
                inst.a == ir::kNoReg ? 0 : act.regs[inst.a];
            const uint64_t ret_inst_addr =
                layout_.instAddr(act.fid, act.bb, act.ip);
            if (observer_) {
                observer_->onReturn(ret_inst_addr, inst.ret_scheme,
                                    act.ret_addr, rsb_);
            }
            if (timing_) {
                stats_.cycles +=
                    returnCost(ret_inst_addr, act.ret_addr, inst);
            } else if (inst.ret_scheme == ir::RetScheme::kNone) {
                rsb_.pop();
            } else {
                rsb_.pop();
            }
            leaveFunction(value);
            break;
          }
          case ir::Opcode::kBr:
            if (timing_)
                stats_.cycles += params_.cost_br;
            act.bb = inst.t0;
            act.ip = 0;
            fetchBlock(act.fid, act.bb, 0);
            break;
          case ir::Opcode::kCondBr: {
            ++stats_.cond_branches;
            const bool taken = act.regs[inst.a] != 0;
            if (timing_) {
                const uint64_t addr =
                    layout_.instAddr(act.fid, act.bb, act.ip);
                const bool predicted = pht_.predictTaken(addr);
                pht_.update(addr, taken);
                if (predicted == taken) {
                    stats_.cycles += params_.cost_condbr_predicted;
                } else {
                    ++stats_.pht_mispredicts;
                    stats_.cycles += params_.cost_condbr_mispredict;
                }
            }
            act.bb = taken ? inst.t0 : inst.t1;
            act.ip = 0;
            fetchBlock(act.fid, act.bb, 0);
            break;
          }
          case ir::Opcode::kSwitch: {
            ++stats_.switches;
            const int64_t value = act.regs[inst.a];
            ir::BlockId target = inst.t0;
            for (size_t c = 0; c < inst.case_values.size(); ++c) {
                if (inst.case_values[c] == value) {
                    target = inst.case_targets[c];
                    break;
                }
            }
            const uint64_t addr =
                layout_.instAddr(act.fid, act.bb, act.ip);
            const uint64_t target_addr =
                layout_.blockStart(act.fid, target);
            if (observer_) {
                // A jump-table switch is an indirect jump (forward
                // edge); surviving ones are unhardened by definition.
                observer_->onIndirectBranch(addr, inst.fwd_scheme,
                                            target_addr, btb_);
            }
            if (timing_) {
                const uint64_t predicted = btb_.predict(addr);
                btb_.update(addr, target_addr);
                if (predicted == target_addr) {
                    stats_.cycles += params_.cost_icall_predicted;
                } else {
                    ++stats_.btb_mispredicts;
                    stats_.cycles += params_.cost_icall_mispredict;
                }
            }
            act.bb = target;
            act.ip = 0;
            fetchBlock(act.fid, act.bb, 0);
            break;
          }
        }
    }
    return last_return_;
}

} // namespace pibe::uarch
