/**
 * @file
 * Shared simulator state management and the pre-decoded hot loop.
 * The reference (pre-rewrite) loop lives in simulator_ref.cc.
 */
#include "uarch/simulator.h"

#include <algorithm>
#include <cstdlib>
#include <string_view>

#include "uarch/eval_bin.h"

/**
 * Direct-threaded dispatch needs the GNU computed-goto extension
 * (GCC and Clang both provide it). -DPIBE_DISPATCH=switch at
 * configure time defines PIBE_FORCE_SWITCH_DISPATCH to compile the
 * threaded entry point down to the portable switch loop.
 */
#if !defined(PIBE_FORCE_SWITCH_DISPATCH) && \
    (defined(__GNUC__) || defined(__clang__))
#define PIBE_HAS_COMPUTED_GOTO 1
#else
#define PIBE_HAS_COMPUTED_GOTO 0
#endif

namespace pibe::uarch {

bool
Simulator::threadedDispatchAvailable()
{
    return PIBE_HAS_COMPUTED_GOTO != 0;
}

Simulator::DispatchMode
Simulator::defaultDispatchMode()
{
    static const DispatchMode mode = [] {
        if (!threadedDispatchAvailable())
            return DispatchMode::kSwitch;
        const char* env = std::getenv("PIBE_DISPATCH");
        if (env && std::string_view(env) == "switch")
            return DispatchMode::kSwitch;
        return DispatchMode::kThreaded;
    }();
    return mode;
}

void
Simulator::setDispatchMode(DispatchMode mode)
{
    if (mode == DispatchMode::kThreaded && !threadedDispatchAvailable())
        mode = DispatchMode::kSwitch;
    dispatch_ = mode;
}

const char*
Simulator::dispatchModeName() const
{
    return dispatch_ == DispatchMode::kThreaded ? "threaded"
                                                : "switch";
}

Simulator::Simulator(const ir::Module& module, const CostParams& params)
    : Simulator(std::make_shared<const DecodedModule>(module), params)
{
}

Simulator::Simulator(std::shared_ptr<const DecodedModule> decoded,
                     const CostParams& params)
    : decoded_(std::move(decoded)),
      module_(decoded_->module()),
      params_(params),
      btb_(params_.btb_entries),
      rsb_(params_.rsb_entries),
      pht_(params_.pht_entries),
      icache_(params_.icache_bytes, params_.icache_assoc,
              params_.icache_line),
      js_states_(decoded_->numJsSlots())
{
    resetMemory();
}

void
Simulator::resetMemory()
{
    globals_.clear();
    globals_.reserve(module_.numGlobals());
    for (const ir::Global& g : module_.globals())
        globals_.push_back(g.init);
}

void
Simulator::resetMicroarch()
{
    btb_.flush();
    rsb_.flush();
    pht_.flush();
    icache_.flush();
    js_states_.assign(decoded_->numJsSlots(), JsState{});
}

int64_t
Simulator::readGlobal(ir::GlobalId g, size_t index) const
{
    PIBE_ASSERT(g < globals_.size() && index < globals_[g].size(),
                "readGlobal out of range");
    return globals_[g][index];
}

void
Simulator::writeGlobal(ir::GlobalId g, size_t index, int64_t value)
{
    PIBE_ASSERT(g < globals_.size() && index < globals_[g].size(),
                "writeGlobal out of range");
    globals_[g][index] = value;
}

uint32_t
Simulator::indirectCallCost(uint64_t branch_addr, uint64_t target_addr,
                            ir::FuncId target, ir::FwdScheme scheme,
                            uint32_t js_slot)
{
    switch (scheme) {
      case ir::FwdScheme::kNone: {
        const uint64_t predicted = btb_.predict(branch_addr);
        btb_.update(branch_addr, target_addr);
        const uint32_t eibrs_tax =
            params_.eibrs ? params_.cost_eibrs_branch : 0;
        if (predicted == target_addr)
            return params_.cost_icall_predicted + eibrs_tax;
        ++stats_.btb_mispredicts;
        return params_.cost_icall_mispredict + eibrs_tax;
      }
      case ir::FwdScheme::kRetpoline:
        ++stats_.thunk_execs;
        return params_.cost_retpoline;
      case ir::FwdScheme::kLviCfi: {
        // The LVI thunk's jmpq *%r11 still predicts through the BTB;
        // the LFENCE adds a fixed serialization cost.
        ++stats_.thunk_execs;
        const uint64_t predicted = btb_.predict(branch_addr);
        btb_.update(branch_addr, target_addr);
        uint32_t base = params_.cost_icall_predicted;
        if (predicted != target_addr) {
            ++stats_.btb_mispredicts;
            base = params_.cost_icall_mispredict;
        }
        return base + params_.cost_lvi_fwd;
      }
      case ir::FwdScheme::kFencedRetpoline:
        ++stats_.thunk_execs;
        return params_.cost_fenced_retpoline;
      case ir::FwdScheme::kJumpSwitch: {
        PIBE_ASSERT(js_slot < js_states_.size(),
                    "JumpSwitch site without a decoded state slot");
        JsState& js = js_states_[js_slot];
        ++js.execs;
        // Multi-target sites periodically drop back into a learning
        // retpoline that re-ranks targets (§8.2).
        if (js.multi_target &&
            js.execs % params_.js_learn_period <
                params_.js_learn_duration) {
            ++stats_.js_learning;
            return params_.cost_retpoline;
        }
        uint32_t cost = 0;
        for (size_t i = 0; i < js.inline_targets.size(); ++i) {
            cost += params_.cost_js_check;
            if (js.inline_targets[i] == target) {
                ++stats_.js_hits;
                return cost + params_.cost_dcall;
            }
        }
        if (js.inline_targets.size() < params_.js_max_inline_targets) {
            // Live-patch the new target into the switch.
            js.inline_targets.push_back(target);
            js.multi_target = js.inline_targets.size() > 1;
            ++stats_.js_patches;
            return cost + params_.cost_js_patch;
        }
        ++stats_.js_misses;
        return cost + params_.cost_retpoline;
      }
    }
    PIBE_PANIC("unhandled FwdScheme");
}

uint32_t
Simulator::returnCost(uint64_t actual_ret_addr, ir::RetScheme scheme)
{
    switch (scheme) {
      case ir::RetScheme::kNone: {
        const uint64_t predicted = rsb_.pop();
        if (predicted == actual_ret_addr)
            return params_.cost_ret_predicted;
        ++stats_.rsb_mispredicts;
        return params_.cost_ret_mispredict;
      }
      case ir::RetScheme::kReturnRetpoline:
        ++stats_.thunk_execs;
        rsb_.pop(); // keep the hardware stack consistent
        return params_.cost_ret_retpoline;
      case ir::RetScheme::kLviRet:
        ++stats_.thunk_execs;
        rsb_.pop();
        return params_.cost_lvi_ret;
      case ir::RetScheme::kFencedRet:
        ++stats_.thunk_execs;
        rsb_.pop();
        return params_.cost_fenced_ret;
    }
    PIBE_PANIC("unhandled RetScheme");
}

bool
Simulator::beginRun(ir::FuncId entry, size_t num_args)
{
    const DecodedFunction& ef = decoded_->func(entry);
    if (ef.is_declaration) {
        if (timing_)
            stats_.cycles += params_.cost_external;
        if (profiler_)
            profiler_->addInvocation(entry);
        return false;
    }
    PIBE_ASSERT(num_args == ef.num_params, "call arity mismatch for ",
                ef.func->name);
    // Kernel entry: entry-time attackers pollute predictor state
    // first; RSB refilling (when enabled) then overwrites it (§6.4).
    if (observer_)
        observer_->onKernelEntry(rsb_);
    if (params_.rsb_refill_on_entry) {
        rsb_.flush();
        for (uint32_t i = 0; i < params_.rsb_entries; ++i)
            rsb_.push(0); // benign stuffing
        if (timing_)
            stats_.cycles += params_.cost_rsb_refill;
    }
    return true;
}

void
Simulator::enterDecoded(ir::FuncId f, ir::Reg ret_dst,
                        uint64_t ret_addr)
{
    const DecodedFunction& df = decoded_->func(f);
    if (profiler_)
        profiler_->addInvocation(f);

    Frame fr;
    fr.pc = df.entry.code_index;
    // pushSlots zeroes the claimed window, so a window reused after an
    // earlier return starts from zero again — same as the fresh
    // per-activation vector it replaces.
    fr.reg_base = pushSlots(reg_stack_, reg_top_, df.num_regs);
    fr.frame_base = pushSlots(frame_stack_, frame_top_, df.frame_size);
    fr.fid = f;
    fr.func = df.func;
    fr.ret_dst = ret_dst;
    fr.ret_addr = ret_addr;
    frames_.push_back(fr);

    stats_.max_call_depth =
        std::max<uint64_t>(stats_.max_call_depth, frames_.size());
    stats_.peak_frame_slots =
        std::max<uint64_t>(stats_.peak_frame_slots, frame_top_);
    if (timing_)
        fetchRange(df.entry.start_addr, df.entry.end_addr);
}

void
Simulator::leaveDecoded(int64_t value)
{
    const Frame done = frames_.back();
    frames_.pop_back();
    frame_top_ = done.frame_base;
    reg_top_ = done.reg_base;
    last_return_ = value;
    if (!frames_.empty()) {
        Frame& caller = frames_.back();
        if (done.ret_dst != ir::kNoReg)
            reg_stack_[caller.reg_base + done.ret_dst] = value;
        // Resume mid-block: refetch the remainder of the caller block
        // (the callee may have evicted the caller's lines).
        if (timing_) {
            const DecodedInst& resume = decoded_->code()[caller.pc];
            fetchRange(resume.addr,
                       decoded_->aux()[caller.pc].block_end);
        }
    }
}

int64_t
Simulator::run(ir::FuncId entry, const std::vector<int64_t>& args)
{
    if (use_reference_)
        return runReference(entry, args);
    PIBE_ASSERT(frames_.empty() && acts_.empty(),
                "Simulator::run is not reentrant");
    if (!beginRun(entry, args.size()))
        return 0;
    enterDecoded(entry, ir::kNoReg, 0);
    std::copy(args.begin(), args.end(),
              reg_stack_.begin() + frames_.back().reg_base);
    if (dispatch_ == DispatchMode::kThreaded) {
        return timing_ ? runLoopThreaded<true>()
                       : runLoopThreaded<false>();
    }
    return timing_ ? runLoopSwitch<true>() : runLoopSwitch<false>();
}

/**
 * The decoded hot loops. The full loop body lives in interp_loop.inc
 * (which includes the shared handler bodies from interp_ops.inc);
 * each flavor sets PIBE_INTERP_THREADED to pick its dispatch
 * mechanism. Both are instantiated for Timing = true/false by run().
 */
template <bool Timing>
int64_t
Simulator::runLoopSwitch()
{
#define PIBE_INTERP_THREADED 0
#include "uarch/interp_loop.inc"
#undef PIBE_INTERP_THREADED
}

#if PIBE_HAS_COMPUTED_GOTO

template <bool Timing>
int64_t
Simulator::runLoopThreaded()
{
#define PIBE_INTERP_THREADED 1
#include "uarch/interp_loop.inc"
#undef PIBE_INTERP_THREADED
}

#else // !PIBE_HAS_COMPUTED_GOTO

template <bool Timing>
int64_t
Simulator::runLoopThreaded()
{
    return runLoopSwitch<Timing>();
}

#endif // PIBE_HAS_COMPUTED_GOTO

} // namespace pibe::uarch
