/**
 * @file
 * Shared simulator state management and the pre-decoded hot loop.
 * The reference (pre-rewrite) loop lives in simulator_ref.cc.
 */
#include "uarch/simulator.h"

#include <algorithm>

#include "uarch/eval_bin.h"

namespace pibe::uarch {

Simulator::Simulator(const ir::Module& module, const CostParams& params)
    : Simulator(std::make_shared<const DecodedModule>(module), params)
{
}

Simulator::Simulator(std::shared_ptr<const DecodedModule> decoded,
                     const CostParams& params)
    : decoded_(std::move(decoded)),
      module_(decoded_->module()),
      params_(params),
      btb_(params_.btb_entries),
      rsb_(params_.rsb_entries),
      pht_(params_.pht_entries),
      icache_(params_.icache_bytes, params_.icache_assoc,
              params_.icache_line),
      js_states_(decoded_->numJsSlots())
{
    resetMemory();
}

void
Simulator::resetMemory()
{
    globals_.clear();
    globals_.reserve(module_.numGlobals());
    for (const ir::Global& g : module_.globals())
        globals_.push_back(g.init);
}

void
Simulator::resetMicroarch()
{
    btb_.flush();
    rsb_.flush();
    pht_.flush();
    icache_.flush();
    js_states_.assign(decoded_->numJsSlots(), JsState{});
}

int64_t
Simulator::readGlobal(ir::GlobalId g, size_t index) const
{
    PIBE_ASSERT(g < globals_.size() && index < globals_[g].size(),
                "readGlobal out of range");
    return globals_[g][index];
}

void
Simulator::writeGlobal(ir::GlobalId g, size_t index, int64_t value)
{
    PIBE_ASSERT(g < globals_.size() && index < globals_[g].size(),
                "writeGlobal out of range");
    globals_[g][index] = value;
}

uint32_t
Simulator::indirectCallCost(uint64_t branch_addr, uint64_t target_addr,
                            ir::FuncId target, ir::FwdScheme scheme,
                            uint32_t js_slot)
{
    switch (scheme) {
      case ir::FwdScheme::kNone: {
        const uint64_t predicted = btb_.predict(branch_addr);
        btb_.update(branch_addr, target_addr);
        const uint32_t eibrs_tax =
            params_.eibrs ? params_.cost_eibrs_branch : 0;
        if (predicted == target_addr)
            return params_.cost_icall_predicted + eibrs_tax;
        ++stats_.btb_mispredicts;
        return params_.cost_icall_mispredict + eibrs_tax;
      }
      case ir::FwdScheme::kRetpoline:
        ++stats_.thunk_execs;
        return params_.cost_retpoline;
      case ir::FwdScheme::kLviCfi: {
        // The LVI thunk's jmpq *%r11 still predicts through the BTB;
        // the LFENCE adds a fixed serialization cost.
        ++stats_.thunk_execs;
        const uint64_t predicted = btb_.predict(branch_addr);
        btb_.update(branch_addr, target_addr);
        uint32_t base = params_.cost_icall_predicted;
        if (predicted != target_addr) {
            ++stats_.btb_mispredicts;
            base = params_.cost_icall_mispredict;
        }
        return base + params_.cost_lvi_fwd;
      }
      case ir::FwdScheme::kFencedRetpoline:
        ++stats_.thunk_execs;
        return params_.cost_fenced_retpoline;
      case ir::FwdScheme::kJumpSwitch: {
        PIBE_ASSERT(js_slot < js_states_.size(),
                    "JumpSwitch site without a decoded state slot");
        JsState& js = js_states_[js_slot];
        ++js.execs;
        // Multi-target sites periodically drop back into a learning
        // retpoline that re-ranks targets (§8.2).
        if (js.multi_target &&
            js.execs % params_.js_learn_period <
                params_.js_learn_duration) {
            ++stats_.js_learning;
            return params_.cost_retpoline;
        }
        uint32_t cost = 0;
        for (size_t i = 0; i < js.inline_targets.size(); ++i) {
            cost += params_.cost_js_check;
            if (js.inline_targets[i] == target) {
                ++stats_.js_hits;
                return cost + params_.cost_dcall;
            }
        }
        if (js.inline_targets.size() < params_.js_max_inline_targets) {
            // Live-patch the new target into the switch.
            js.inline_targets.push_back(target);
            js.multi_target = js.inline_targets.size() > 1;
            ++stats_.js_patches;
            return cost + params_.cost_js_patch;
        }
        ++stats_.js_misses;
        return cost + params_.cost_retpoline;
      }
    }
    PIBE_PANIC("unhandled FwdScheme");
}

uint32_t
Simulator::returnCost(uint64_t actual_ret_addr, ir::RetScheme scheme)
{
    switch (scheme) {
      case ir::RetScheme::kNone: {
        const uint64_t predicted = rsb_.pop();
        if (predicted == actual_ret_addr)
            return params_.cost_ret_predicted;
        ++stats_.rsb_mispredicts;
        return params_.cost_ret_mispredict;
      }
      case ir::RetScheme::kReturnRetpoline:
        ++stats_.thunk_execs;
        rsb_.pop(); // keep the hardware stack consistent
        return params_.cost_ret_retpoline;
      case ir::RetScheme::kLviRet:
        ++stats_.thunk_execs;
        rsb_.pop();
        return params_.cost_lvi_ret;
      case ir::RetScheme::kFencedRet:
        ++stats_.thunk_execs;
        rsb_.pop();
        return params_.cost_fenced_ret;
    }
    PIBE_PANIC("unhandled RetScheme");
}

bool
Simulator::beginRun(ir::FuncId entry, size_t num_args)
{
    const DecodedFunction& ef = decoded_->func(entry);
    if (ef.is_declaration) {
        if (timing_)
            stats_.cycles += params_.cost_external;
        if (profiler_)
            profiler_->addInvocation(entry);
        return false;
    }
    PIBE_ASSERT(num_args == ef.num_params, "call arity mismatch for ",
                ef.func->name);
    // Kernel entry: entry-time attackers pollute predictor state
    // first; RSB refilling (when enabled) then overwrites it (§6.4).
    if (observer_)
        observer_->onKernelEntry(rsb_);
    if (params_.rsb_refill_on_entry) {
        rsb_.flush();
        for (uint32_t i = 0; i < params_.rsb_entries; ++i)
            rsb_.push(0); // benign stuffing
        if (timing_)
            stats_.cycles += params_.cost_rsb_refill;
    }
    return true;
}

void
Simulator::enterDecoded(ir::FuncId f, ir::Reg ret_dst,
                        uint64_t ret_addr)
{
    const DecodedFunction& df = decoded_->func(f);
    if (profiler_)
        profiler_->addInvocation(f);

    Frame fr;
    fr.pc = df.entry.code_index;
    // pushSlots zeroes the claimed window, so a window reused after an
    // earlier return starts from zero again — same as the fresh
    // per-activation vector it replaces.
    fr.reg_base = pushSlots(reg_stack_, reg_top_, df.num_regs);
    fr.frame_base = pushSlots(frame_stack_, frame_top_, df.frame_size);
    fr.fid = f;
    fr.func = df.func;
    fr.ret_dst = ret_dst;
    fr.ret_addr = ret_addr;
    frames_.push_back(fr);

    stats_.max_call_depth =
        std::max<uint64_t>(stats_.max_call_depth, frames_.size());
    stats_.peak_frame_slots =
        std::max<uint64_t>(stats_.peak_frame_slots, frame_top_);
    if (timing_)
        fetchRange(df.entry.start_addr, df.entry.end_addr);
}

void
Simulator::leaveDecoded(int64_t value)
{
    const Frame done = frames_.back();
    frames_.pop_back();
    frame_top_ = done.frame_base;
    reg_top_ = done.reg_base;
    last_return_ = value;
    if (!frames_.empty()) {
        Frame& caller = frames_.back();
        if (done.ret_dst != ir::kNoReg)
            reg_stack_[caller.reg_base + done.ret_dst] = value;
        // Resume mid-block: refetch the remainder of the caller block
        // (the callee may have evicted the caller's lines).
        if (timing_) {
            const DecodedInst& resume = decoded_->code()[caller.pc];
            fetchRange(resume.addr, resume.block_end);
        }
    }
}

int64_t
Simulator::run(ir::FuncId entry, const std::vector<int64_t>& args)
{
    if (use_reference_)
        return runReference(entry, args);
    PIBE_ASSERT(frames_.empty() && acts_.empty(),
                "Simulator::run is not reentrant");
    if (!beginRun(entry, args.size()))
        return 0;
    enterDecoded(entry, ir::kNoReg, 0);
    std::copy(args.begin(), args.end(),
              reg_stack_.begin() + frames_.back().reg_base);
    return timing_ ? runLoop<true>() : runLoop<false>();
}

/**
 * The decoded hot loop. The interpreter state that changes on every
 * instruction (pc, register window, frame window) lives in locals;
 * the Frame object is only synchronized at call boundaries (the
 * stored pc doubles as the resume point leaveDecoded refetches).
 * Instruction and cycle counts accumulate in locals as well and are
 * flushed into stats_ once on exit — the helpers (fetchRange,
 * indirectCallCost, enterDecoded) keep adding to stats_.cycles
 * directly, which is fine: the two streams just sum.
 */
template <bool Timing>
int64_t
Simulator::runLoop()
{
    const DecodedInst* const code = decoded_->code().data();
    const BlockTarget* const targets = decoded_->targets().data();
    const ir::Reg* const args_pool = decoded_->argsPool().data();
    const SwitchCase* const sw_cases = decoded_->switchCases().data();
    const uint32_t* const dense = decoded_->denseTargets().data();

    uint64_t n_insts = 0;
    uint64_t cycles = 0;
    uint32_t pc = frames_.back().pc;
    uint32_t reg_base = frames_.back().reg_base;
    uint32_t frame_base = frames_.back().frame_base;
    int64_t* regs = reg_stack_.data() + reg_base;
    int64_t* frame = frame_stack_.data() + frame_base;

    // Re-derive the local windows after the pooled stacks may have
    // grown (and relocated) or the active frame changed.
    const auto reload = [&] {
        const Frame& fr = frames_.back();
        pc = fr.pc;
        reg_base = fr.reg_base;
        frame_base = fr.frame_base;
        regs = reg_stack_.data() + reg_base;
        frame = frame_stack_.data() + frame_base;
    };

    while (true) {
        const DecodedInst& inst = code[pc];
        ++n_insts;

        switch (inst.op) {
          case ir::Opcode::kConst:
            regs[inst.dst] = inst.imm;
            if constexpr (Timing)
                cycles += params_.cost_free;
            ++pc;
            break;
          case ir::Opcode::kMove:
            regs[inst.dst] = regs[inst.a];
            if constexpr (Timing)
                cycles += params_.cost_free;
            ++pc;
            break;
          case ir::Opcode::kBinOp:
            regs[inst.dst] = evalBin(inst.bin, regs[inst.a],
                                     regs[inst.b]);
            if constexpr (Timing)
                cycles += params_.cost_simple;
            ++pc;
            break;
          case ir::Opcode::kFuncAddr:
            regs[inst.dst] = ir::funcAddrValue(inst.callee);
            if constexpr (Timing)
                cycles += params_.cost_free;
            ++pc;
            break;
          case ir::Opcode::kLoad: {
            auto& g = globals_[inst.global];
            const int64_t index = regs[inst.a] + inst.imm;
            if (index < 0 || index >= static_cast<int64_t>(g.size())) {
                PIBE_FATAL("load out of bounds: @",
                           module_.global(inst.global).name, "[", index,
                           "] in ", frames_.back().func->name);
            }
            regs[inst.dst] = g[index];
            if constexpr (Timing)
                cycles += params_.cost_mem;
            ++pc;
            break;
          }
          case ir::Opcode::kStore: {
            auto& g = globals_[inst.global];
            const int64_t index = regs[inst.a] + inst.imm;
            if (index < 0 || index >= static_cast<int64_t>(g.size())) {
                PIBE_FATAL("store out of bounds: @",
                           module_.global(inst.global).name, "[", index,
                           "] in ", frames_.back().func->name);
            }
            g[index] = regs[inst.b];
            if constexpr (Timing)
                cycles += params_.cost_mem;
            ++pc;
            break;
          }
          case ir::Opcode::kFrameLoad:
            regs[inst.dst] = frame[inst.imm];
            if constexpr (Timing)
                cycles += params_.cost_simple;
            ++pc;
            break;
          case ir::Opcode::kFrameStore:
            frame[inst.imm] = regs[inst.a];
            if constexpr (Timing)
                cycles += params_.cost_simple;
            ++pc;
            break;
          case ir::Opcode::kSink:
            sink_hash_ = sink_hash_ * 0x100000001b3ull ^
                         static_cast<uint64_t>(regs[inst.a]);
            if constexpr (Timing)
                cycles += params_.cost_simple;
            ++pc;
            break;
          case ir::Opcode::kCall: {
            ++stats_.direct_calls;
            if (profiler_)
                profiler_->addDirect(inst.site_id);
            if constexpr (Timing) {
                cycles += params_.cost_dcall +
                          params_.cost_arg * inst.args_count;
            }
            ++pc; // resume after the call upon return
            if (inst.callee_is_decl) {
                if (profiler_)
                    profiler_->addInvocation(inst.callee);
                if constexpr (Timing)
                    cycles += params_.cost_external;
                if (inst.dst != ir::kNoReg)
                    regs[inst.dst] = 0;
                break;
            }
            rsb_.push(inst.next_addr);
            frames_.back().pc = pc; // resume point for leaveDecoded
            // Argument transfer straight into the callee's register
            // window; indices, not pointers — enterDecoded may grow
            // (and relocate) reg_stack_.
            const uint32_t caller_base = reg_base;
            enterDecoded(inst.callee, inst.dst, inst.next_addr);
            const uint32_t callee_base = frames_.back().reg_base;
            for (uint32_t i = 0; i < inst.args_count; ++i) {
                reg_stack_[callee_base + i] =
                    reg_stack_[caller_base +
                               args_pool[inst.args_begin + i]];
            }
            reload();
            break;
          }
          case ir::Opcode::kICall: {
            ++stats_.indirect_calls;
            const int64_t value = regs[inst.a];
            if (!ir::isFuncAddrValue(value)) {
                PIBE_FATAL("indirect call through non-function value ",
                           value, " in ", frames_.back().func->name);
            }
            const ir::FuncId target = ir::funcAddrTarget(value);
            if (target >= decoded_->numFunctions()) {
                PIBE_FATAL("indirect call to unknown function in ",
                           frames_.back().func->name);
            }
            const DecodedFunction& callee = decoded_->func(target);
            if (callee.num_params != inst.args_count) {
                PIBE_FATAL("indirect call arity mismatch: ",
                           frames_.back().func->name, " -> ",
                           callee.func->name);
            }
            if (profiler_)
                profiler_->addIndirect(inst.site_id, target);
            if (observer_) {
                observer_->onIndirectBranch(inst.addr, inst.fwd_scheme,
                                            callee.base_addr, btb_);
            }
            if constexpr (Timing) {
                cycles +=
                    indirectCallCost(inst.addr, callee.base_addr,
                                     target, inst.fwd_scheme,
                                     inst.js_slot) +
                    params_.cost_arg * inst.args_count;
            }
            ++pc;
            if (callee.is_declaration) {
                if (profiler_)
                    profiler_->addInvocation(target);
                if constexpr (Timing)
                    cycles += params_.cost_external;
                if (inst.dst != ir::kNoReg)
                    regs[inst.dst] = 0;
                break;
            }
            rsb_.push(inst.next_addr);
            frames_.back().pc = pc;
            const uint32_t caller_base = reg_base;
            enterDecoded(target, inst.dst, inst.next_addr);
            const uint32_t callee_base = frames_.back().reg_base;
            for (uint32_t i = 0; i < inst.args_count; ++i) {
                reg_stack_[callee_base + i] =
                    reg_stack_[caller_base +
                               args_pool[inst.args_begin + i]];
            }
            reload();
            break;
          }
          case ir::Opcode::kRet: {
            ++stats_.returns;
            const int64_t value =
                inst.a == ir::kNoReg ? 0 : regs[inst.a];
            const uint64_t ret_addr = frames_.back().ret_addr;
            if (observer_) {
                observer_->onReturn(inst.addr, inst.ret_scheme,
                                    ret_addr, rsb_);
            }
            if constexpr (Timing) {
                cycles += returnCost(ret_addr, inst.ret_scheme);
            } else {
                rsb_.pop();
            }
            leaveDecoded(value);
            if (frames_.empty()) {
                stats_.instructions += n_insts;
                stats_.cycles += cycles;
                return last_return_;
            }
            reload();
            break;
          }
          case ir::Opcode::kBr: {
            if constexpr (Timing)
                cycles += params_.cost_br;
            const BlockTarget& bt = targets[inst.t0];
            pc = bt.code_index;
            if constexpr (Timing)
                fetchRange(bt.start_addr, bt.end_addr);
            break;
          }
          case ir::Opcode::kCondBr: {
            ++stats_.cond_branches;
            const bool taken = regs[inst.a] != 0;
            if constexpr (Timing) {
                const bool predicted = pht_.predictTaken(inst.addr);
                pht_.update(inst.addr, taken);
                if (predicted == taken) {
                    cycles += params_.cost_condbr_predicted;
                } else {
                    ++stats_.pht_mispredicts;
                    cycles += params_.cost_condbr_mispredict;
                }
            }
            const BlockTarget& bt = targets[taken ? inst.t0 : inst.t1];
            pc = bt.code_index;
            if constexpr (Timing)
                fetchRange(bt.start_addr, bt.end_addr);
            break;
          }
          case ir::Opcode::kSwitch: {
            ++stats_.switches;
            const int64_t value = regs[inst.a];
            uint32_t target_idx = inst.t0; // default
            if (inst.switch_dense) {
                const uint64_t off = static_cast<uint64_t>(value) -
                                     static_cast<uint64_t>(inst.imm);
                if (off < inst.sw_count &&
                    dense[inst.sw_begin + off] != kNoIndex)
                    target_idx = dense[inst.sw_begin + off];
            } else if (inst.sw_count > 0) {
                const SwitchCase* first = sw_cases + inst.sw_begin;
                const SwitchCase* last = first + inst.sw_count;
                const SwitchCase* it = std::lower_bound(
                    first, last, value,
                    [](const SwitchCase& sc, int64_t v) {
                        return sc.value < v;
                    });
                if (it != last && it->value == value)
                    target_idx = it->target;
            }
            const BlockTarget& bt = targets[target_idx];
            if (observer_) {
                // A jump-table switch is an indirect jump (forward
                // edge); surviving ones are unhardened by definition.
                observer_->onIndirectBranch(inst.addr, inst.fwd_scheme,
                                            bt.start_addr, btb_);
            }
            if constexpr (Timing) {
                const uint64_t predicted = btb_.predict(inst.addr);
                btb_.update(inst.addr, bt.start_addr);
                if (predicted == bt.start_addr) {
                    cycles += params_.cost_icall_predicted;
                } else {
                    ++stats_.btb_mispredicts;
                    cycles += params_.cost_icall_mispredict;
                }
            }
            pc = bt.code_index;
            if constexpr (Timing)
                fetchRange(bt.start_addr, bt.end_addr);
            break;
          }
        }
    }
}

} // namespace pibe::uarch
