/**
 * @file
 * The pre-rewrite interpreter loop, kept as the executable
 * specification of the decoded engine in simulator.cc: it walks the
 * IR through per-instruction CodeLayout lookups and allocates a
 * register vector per activation, exactly as the engine did before
 * the pre-decode rewrite. Differential tests run both paths and
 * assert bit-identical stats; the interpreter microbench reports the
 * decoded engine's speedup over this loop.
 */
#include <algorithm>

#include "uarch/eval_bin.h"
#include "uarch/simulator.h"

namespace pibe::uarch {

void
Simulator::fetchBlock(ir::FuncId f, ir::BlockId bb, uint32_t from_ip)
{
    if (!timing_)
        return;
    const analysis::CodeLayout& layout = decoded_->layout();
    fetchRange(layout.instAddr(f, bb, from_ip), layout.blockEnd(f, bb));
}

void
Simulator::enterFunction(ir::FuncId f, const std::vector<int64_t>& args,
                         ir::Reg ret_dst, uint64_t ret_addr)
{
    const ir::Function& func = module_.func(f);
    PIBE_ASSERT(args.size() == func.num_params,
                "call arity mismatch for ", func.name);
    if (profiler_)
        profiler_->addInvocation(f);

    Activation act;
    act.func = &func;
    act.fid = f;
    act.bb = 0;
    act.ip = 0;
    act.frame_base = pushSlots(frame_stack_, frame_top_,
                               func.frame_size);
    act.ret_dst = ret_dst;
    act.ret_addr = ret_addr;
    act.regs.assign(func.num_regs, 0);
    std::copy(args.begin(), args.end(), act.regs.begin());
    acts_.push_back(std::move(act));

    stats_.max_call_depth =
        std::max<uint64_t>(stats_.max_call_depth, acts_.size());
    stats_.peak_frame_slots =
        std::max<uint64_t>(stats_.peak_frame_slots, frame_top_);
    fetchBlock(f, 0, 0);
}

void
Simulator::leaveFunction(int64_t value)
{
    const Activation done = std::move(acts_.back());
    acts_.pop_back();
    frame_top_ = done.frame_base;
    last_return_ = value;
    if (!acts_.empty()) {
        Activation& caller = acts_.back();
        if (done.ret_dst != ir::kNoReg)
            caller.regs[done.ret_dst] = value;
        // Resume mid-block: refetch the remainder of the caller block
        // (the callee may have evicted the caller's lines).
        fetchBlock(caller.fid, caller.bb, caller.ip);
    }
}

int64_t
Simulator::runReference(ir::FuncId entry,
                        const std::vector<int64_t>& args)
{
    PIBE_ASSERT(frames_.empty() && acts_.empty(),
                "Simulator::runReference is not reentrant");
    if (!beginRun(entry, args.size()))
        return 0;
    const analysis::CodeLayout& layout = decoded_->layout();
    enterFunction(entry, args, ir::kNoReg, 0);

    while (!acts_.empty()) {
        Activation& act = acts_.back();
        const ir::Function& f = *act.func;
        PIBE_ASSERT(act.bb < f.blocks.size(), "bad block in ", f.name);
        const ir::BasicBlock& bb = f.blocks[act.bb];
        PIBE_ASSERT(act.ip < bb.insts.size(), "fell off block in ",
                    f.name);
        const ir::Instruction& inst = bb.insts[act.ip];
        ++stats_.instructions;

        switch (inst.op) {
          case ir::Opcode::kConst:
            act.regs[inst.dst] = inst.imm;
            if (timing_)
                stats_.cycles += params_.cost_free;
            ++act.ip;
            break;
          case ir::Opcode::kMove:
            act.regs[inst.dst] = act.regs[inst.a];
            if (timing_)
                stats_.cycles += params_.cost_free;
            ++act.ip;
            break;
          case ir::Opcode::kBinOp:
            act.regs[inst.dst] =
                evalBin(inst.bin, act.regs[inst.a], act.regs[inst.b]);
            if (timing_)
                stats_.cycles += params_.cost_simple;
            ++act.ip;
            break;
          case ir::Opcode::kFuncAddr:
            act.regs[inst.dst] = ir::funcAddrValue(inst.callee);
            if (timing_)
                stats_.cycles += params_.cost_free;
            ++act.ip;
            break;
          case ir::Opcode::kLoad: {
            auto& g = globals_[inst.global];
            const int64_t index = act.regs[inst.a] + inst.imm;
            if (index < 0 || index >= static_cast<int64_t>(g.size())) {
                PIBE_FATAL("load out of bounds: @",
                           module_.global(inst.global).name, "[", index,
                           "] in ", f.name);
            }
            act.regs[inst.dst] = g[index];
            if (timing_)
                stats_.cycles += params_.cost_mem;
            ++act.ip;
            break;
          }
          case ir::Opcode::kStore: {
            auto& g = globals_[inst.global];
            const int64_t index = act.regs[inst.a] + inst.imm;
            if (index < 0 || index >= static_cast<int64_t>(g.size())) {
                PIBE_FATAL("store out of bounds: @",
                           module_.global(inst.global).name, "[", index,
                           "] in ", f.name);
            }
            g[index] = act.regs[inst.b];
            if (timing_)
                stats_.cycles += params_.cost_mem;
            ++act.ip;
            break;
          }
          case ir::Opcode::kFrameLoad:
            act.regs[inst.dst] =
                frame_stack_[act.frame_base + inst.imm];
            if (timing_)
                stats_.cycles += params_.cost_simple;
            ++act.ip;
            break;
          case ir::Opcode::kFrameStore:
            frame_stack_[act.frame_base + inst.imm] = act.regs[inst.a];
            if (timing_)
                stats_.cycles += params_.cost_simple;
            ++act.ip;
            break;
          case ir::Opcode::kSink:
            sink_hash_ = sink_hash_ * 0x100000001b3ull ^
                         static_cast<uint64_t>(act.regs[inst.a]);
            if (timing_)
                stats_.cycles += params_.cost_simple;
            ++act.ip;
            break;
          case ir::Opcode::kCall: {
            ++stats_.direct_calls;
            if (profiler_)
                profiler_->addDirect(inst.site_id);
            const ir::Function& callee = module_.func(inst.callee);
            const uint64_t call_addr =
                layout.instAddr(act.fid, act.bb, act.ip);
            const uint64_t next_addr =
                call_addr + analysis::instByteSize(inst);
            if (timing_) {
                stats_.cycles +=
                    params_.cost_dcall +
                    params_.cost_arg *
                        static_cast<uint32_t>(inst.args.size());
            }
            ++act.ip; // resume after the call upon return
            if (callee.isDeclaration()) {
                if (profiler_)
                    profiler_->addInvocation(inst.callee);
                if (timing_)
                    stats_.cycles += params_.cost_external;
                if (inst.dst != ir::kNoReg)
                    act.regs[inst.dst] = 0;
                break;
            }
            rsb_.push(next_addr);
            std::vector<int64_t> call_args;
            call_args.reserve(inst.args.size());
            for (ir::Reg r : inst.args)
                call_args.push_back(act.regs[r]);
            enterFunction(inst.callee, call_args, inst.dst, next_addr);
            break;
          }
          case ir::Opcode::kICall: {
            ++stats_.indirect_calls;
            const int64_t value = act.regs[inst.a];
            if (!ir::isFuncAddrValue(value)) {
                PIBE_FATAL("indirect call through non-function value ",
                           value, " in ", f.name);
            }
            const ir::FuncId target = ir::funcAddrTarget(value);
            if (target >= module_.numFunctions())
                PIBE_FATAL("indirect call to unknown function in ",
                           f.name);
            const ir::Function& callee = module_.func(target);
            if (callee.num_params != inst.args.size()) {
                PIBE_FATAL("indirect call arity mismatch: ", f.name,
                           " -> ", callee.name);
            }
            if (profiler_)
                profiler_->addIndirect(inst.site_id, target);
            const uint64_t call_addr =
                layout.instAddr(act.fid, act.bb, act.ip);
            const uint64_t next_addr =
                call_addr + analysis::instByteSize(inst);
            if (observer_) {
                observer_->onIndirectBranch(call_addr, inst.fwd_scheme,
                                            layout.funcBase(target),
                                            btb_);
            }
            if (timing_) {
                stats_.cycles +=
                    indirectCallCost(call_addr,
                                     layout.funcBase(target), target,
                                     inst.fwd_scheme,
                                     decoded_->jsSlotOf(inst.site_id)) +
                    params_.cost_arg *
                        static_cast<uint32_t>(inst.args.size());
            }
            ++act.ip;
            if (callee.isDeclaration()) {
                if (profiler_)
                    profiler_->addInvocation(target);
                if (timing_)
                    stats_.cycles += params_.cost_external;
                if (inst.dst != ir::kNoReg)
                    act.regs[inst.dst] = 0;
                break;
            }
            rsb_.push(next_addr);
            std::vector<int64_t> call_args;
            call_args.reserve(inst.args.size());
            for (ir::Reg r : inst.args)
                call_args.push_back(act.regs[r]);
            enterFunction(target, call_args, inst.dst, next_addr);
            break;
          }
          case ir::Opcode::kRet: {
            ++stats_.returns;
            const int64_t value =
                inst.a == ir::kNoReg ? 0 : act.regs[inst.a];
            const uint64_t ret_inst_addr =
                layout.instAddr(act.fid, act.bb, act.ip);
            if (observer_) {
                observer_->onReturn(ret_inst_addr, inst.ret_scheme,
                                    act.ret_addr, rsb_);
            }
            if (timing_) {
                stats_.cycles +=
                    returnCost(act.ret_addr, inst.ret_scheme);
            } else {
                rsb_.pop();
            }
            leaveFunction(value);
            break;
          }
          case ir::Opcode::kBr:
            if (timing_)
                stats_.cycles += params_.cost_br;
            act.bb = inst.t0;
            act.ip = 0;
            fetchBlock(act.fid, act.bb, 0);
            break;
          case ir::Opcode::kCondBr: {
            ++stats_.cond_branches;
            const bool taken = act.regs[inst.a] != 0;
            if (timing_) {
                const uint64_t addr =
                    layout.instAddr(act.fid, act.bb, act.ip);
                const bool predicted = pht_.predictTaken(addr);
                pht_.update(addr, taken);
                if (predicted == taken) {
                    stats_.cycles += params_.cost_condbr_predicted;
                } else {
                    ++stats_.pht_mispredicts;
                    stats_.cycles += params_.cost_condbr_mispredict;
                }
            }
            act.bb = taken ? inst.t0 : inst.t1;
            act.ip = 0;
            fetchBlock(act.fid, act.bb, 0);
            break;
          }
          case ir::Opcode::kSwitch: {
            ++stats_.switches;
            const int64_t value = act.regs[inst.a];
            ir::BlockId target = inst.t0;
            for (size_t c = 0; c < inst.case_values.size(); ++c) {
                if (inst.case_values[c] == value) {
                    target = inst.case_targets[c];
                    break;
                }
            }
            const uint64_t addr =
                layout.instAddr(act.fid, act.bb, act.ip);
            const uint64_t target_addr =
                layout.blockStart(act.fid, target);
            if (observer_) {
                // A jump-table switch is an indirect jump (forward
                // edge); surviving ones are unhardened by definition.
                observer_->onIndirectBranch(addr, inst.fwd_scheme,
                                            target_addr, btb_);
            }
            if (timing_) {
                const uint64_t predicted = btb_.predict(addr);
                btb_.update(addr, target_addr);
                if (predicted == target_addr) {
                    stats_.cycles += params_.cost_icall_predicted;
                } else {
                    ++stats_.btb_mispredicts;
                    stats_.cycles += params_.cost_icall_mispredict;
                }
            }
            act.bb = target;
            act.ip = 0;
            fetchBlock(act.fid, act.bb, 0);
            break;
          }
        }
    }
    return last_return_;
}

} // namespace pibe::uarch
