/**
 * @file
 * Instruction cache model.
 *
 * The i-cache is the counterweight that makes code-size effects real:
 * aggressive inlining enlarges hot paths past the cache's capacity,
 * turning "always inline" into a loss (the reason for the paper's
 * Rules 2 and 3 and the fluctuations it reports for size-oblivious
 * inlining). Set-associative with LRU replacement; the simulator
 * touches the byte range of each basic block it enters.
 */
#ifndef PIBE_UARCH_ICACHE_H_
#define PIBE_UARCH_ICACHE_H_

#include <cstdint>
#include <vector>

#include "support/logging.h"

namespace pibe::uarch {

/** Set-associative LRU instruction cache. */
class ICache
{
  public:
    /**
     * @param size_bytes Total capacity.
     * @param assoc Ways per set.
     * @param line_bytes Line size.
     */
    ICache(uint32_t size_bytes, uint32_t assoc, uint32_t line_bytes);

    /**
     * Fetch the code bytes [start, end); returns the number of line
     * misses incurred. Inline: this runs on every simulated block
     * transition, call, and return.
     */
    uint32_t
    touchRange(uint64_t start, uint64_t end)
    {
        if (end <= start)
            return 0;
        uint32_t miss_count = 0;
        const uint64_t first = start >> line_shift_;
        const uint64_t last = (end - 1) >> line_shift_;
        for (uint64_t line = first; line <= last; ++line)
            miss_count += touchLine(line);
        return miss_count;
    }

    /** Fetch a single line containing `addr`; returns 1 on miss. */
    uint32_t
    touch(uint64_t addr)
    {
        return touchLine(addr >> line_shift_);
    }

    void flush();

    uint64_t accesses() const { return accesses_; }
    uint64_t misses() const { return misses_; }

  private:
    struct Way
    {
        uint64_t tag = ~0ull;
        uint64_t lru = 0;
    };

    /** LRU lookup/fill for one line number; returns 1 on miss. */
    uint32_t
    touchLine(uint64_t line)
    {
        const uint32_t set =
            static_cast<uint32_t>(line & (num_sets_ - 1));
        Way* base = &ways_[static_cast<size_t>(set) * assoc_];
        ++accesses_;
        ++tick_;

        uint32_t victim = 0;
        uint64_t oldest = ~0ull;
        for (uint32_t w = 0; w < assoc_; ++w) {
            if (base[w].tag == line) {
                base[w].lru = tick_;
                return 0;
            }
            if (base[w].lru < oldest) {
                oldest = base[w].lru;
                victim = w;
            }
        }
        base[victim].tag = line;
        base[victim].lru = tick_;
        ++misses_;
        return 1;
    }

    uint32_t assoc_;
    uint32_t line_shift_; ///< log2(line size): line = addr >> shift.
    uint32_t num_sets_;
    std::vector<Way> ways_; // num_sets_ * assoc_
    uint64_t tick_ = 0;
    uint64_t accesses_ = 0;
    uint64_t misses_ = 0;
};

} // namespace pibe::uarch

#endif // PIBE_UARCH_ICACHE_H_
