#include "uarch/icache.h"

namespace pibe::uarch {

ICache::ICache(uint32_t size_bytes, uint32_t assoc, uint32_t line_bytes)
    : assoc_(assoc)
{
    PIBE_ASSERT(assoc > 0 && line_bytes > 0, "bad icache geometry");
    PIBE_ASSERT((line_bytes & (line_bytes - 1)) == 0,
                "icache line size must be a power of two");
    PIBE_ASSERT(size_bytes % (assoc * line_bytes) == 0,
                "icache size must be a multiple of assoc * line");
    num_sets_ = size_bytes / (assoc * line_bytes);
    PIBE_ASSERT((num_sets_ & (num_sets_ - 1)) == 0,
                "icache set count must be a power of two");
    line_shift_ = 0;
    while ((1u << line_shift_) < line_bytes)
        ++line_shift_;
    ways_.resize(static_cast<size_t>(num_sets_) * assoc_);
}

void
ICache::flush()
{
    for (Way& w : ways_) {
        w.tag = ~0ull;
        w.lru = 0;
    }
}

} // namespace pibe::uarch
