#include "uarch/icache.h"

namespace pibe::uarch {

ICache::ICache(uint32_t size_bytes, uint32_t assoc, uint32_t line_bytes)
    : assoc_(assoc), line_bytes_(line_bytes)
{
    PIBE_ASSERT(assoc > 0 && line_bytes > 0, "bad icache geometry");
    PIBE_ASSERT(size_bytes % (assoc * line_bytes) == 0,
                "icache size must be a multiple of assoc * line");
    num_sets_ = size_bytes / (assoc * line_bytes);
    PIBE_ASSERT((num_sets_ & (num_sets_ - 1)) == 0,
                "icache set count must be a power of two");
    ways_.resize(static_cast<size_t>(num_sets_) * assoc_);
}

uint32_t
ICache::touch(uint64_t addr)
{
    const uint64_t line = addr / line_bytes_;
    const uint32_t set = static_cast<uint32_t>(line & (num_sets_ - 1));
    Way* base = &ways_[static_cast<size_t>(set) * assoc_];
    ++accesses_;
    ++tick_;

    uint32_t victim = 0;
    uint64_t oldest = ~0ull;
    for (uint32_t w = 0; w < assoc_; ++w) {
        if (base[w].tag == line) {
            base[w].lru = tick_;
            return 0;
        }
        if (base[w].lru < oldest) {
            oldest = base[w].lru;
            victim = w;
        }
    }
    base[victim].tag = line;
    base[victim].lru = tick_;
    ++misses_;
    return 1;
}

uint32_t
ICache::touchRange(uint64_t start, uint64_t end)
{
    if (end <= start)
        return 0;
    uint32_t miss_count = 0;
    const uint64_t first = start / line_bytes_;
    const uint64_t last = (end - 1) / line_bytes_;
    for (uint64_t line = first; line <= last; ++line)
        miss_count += touch(line * line_bytes_);
    return miss_count;
}

void
ICache::flush()
{
    for (Way& w : ways_) {
        w.tag = ~0ull;
        w.lru = 0;
    }
}

} // namespace pibe::uarch
