/**
 * @file
 * The PIR execution engine: functional interpreter + timing model +
 * profiling hook + speculation hook, in one loop.
 *
 * A single engine serves every phase of the PIBE pipeline:
 *  - with a profiler attached it is the profiling run (collecting the
 *    call-graph edge profile of §7);
 *  - with timing enabled it is the performance testbed (cycle counts
 *    from the cost model, i-cache, BTB/RSB/PHT);
 *  - with a SpeculationObserver attached it is the attack testbed
 *    (§8.6).
 * Using one engine guarantees the profile, the measurements, and the
 * security verdicts all see the same execution.
 */
#ifndef PIBE_UARCH_SIMULATOR_H_
#define PIBE_UARCH_SIMULATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "analysis/layout.h"
#include "ir/module.h"
#include "profile/edge_profile.h"
#include "uarch/cost_model.h"
#include "uarch/icache.h"
#include "uarch/predictors.h"
#include "uarch/speculation.h"

namespace pibe::uarch {

/** Counters accumulated while running. */
struct RunStats
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t direct_calls = 0;
    uint64_t indirect_calls = 0;
    uint64_t returns = 0;
    uint64_t cond_branches = 0;
    uint64_t switches = 0;
    uint64_t icache_misses = 0;
    uint64_t btb_mispredicts = 0;
    uint64_t rsb_mispredicts = 0;
    uint64_t pht_mispredicts = 0;
    uint64_t thunk_execs = 0; ///< Hardened branch executions.
    uint64_t js_hits = 0;     ///< JumpSwitch inline-check hits.
    uint64_t js_misses = 0;   ///< JumpSwitch fallback retpolines.
    uint64_t js_patches = 0;  ///< JumpSwitch live-patch events.
    uint64_t js_learning = 0; ///< Executions in learning mode.
    uint64_t max_call_depth = 0;
    uint64_t peak_frame_slots = 0; ///< Peak stack usage (slots).
};

/**
 * Interprets a PIR module.
 *
 * The module must outlive the simulator and must not be mutated while
 * a simulator references it (the layout is computed at construction).
 */
class Simulator
{
  public:
    explicit Simulator(const ir::Module& module,
                       const CostParams& params = {});

    /**
     * Call function `f` with `args` and run to completion; returns the
     * function's return value. Global memory persists across calls
     * (the kernel keeps state); use resetMemory() for a cold boot.
     */
    int64_t run(ir::FuncId f, const std::vector<int64_t>& args);

    /** Reinitialize global memory from the module's initializers. */
    void resetMemory();

    /** Flush caches, predictors, and JumpSwitch runtime state. */
    void resetMicroarch();

    const RunStats& stats() const { return stats_; }
    void clearStats() { stats_ = RunStats{}; }

    /** Attach an edge profiler (nullptr to detach). */
    void setProfiler(profile::EdgeProfile* profiler)
    {
        profiler_ = profiler;
    }

    /** Attach a speculation observer (nullptr to detach). */
    void setObserver(SpeculationObserver* observer)
    {
        observer_ = observer;
    }

    /** Enable/disable the timing model (profiling runs disable it). */
    void setTimingEnabled(bool enabled) { timing_ = enabled; }

    /** Running hash of all kSink values — the observable behaviour of
     *  an execution; equal hashes mean equivalent observed effects. */
    uint64_t sinkHash() const { return sink_hash_; }
    void resetSinkHash() { sink_hash_ = 0x9dc5; }

    const analysis::CodeLayout& layout() const { return layout_; }
    const CostParams& params() const { return params_; }

    /** Read a global slot (workload setup/verification). */
    int64_t readGlobal(ir::GlobalId g, size_t index) const;
    /** Write a global slot (workload setup). */
    void writeGlobal(ir::GlobalId g, size_t index, int64_t value);

  private:
    struct Activation
    {
        const ir::Function* func = nullptr;
        ir::FuncId fid = ir::kInvalidFunc;
        ir::BlockId bb = 0;
        uint32_t ip = 0;
        uint32_t frame_base = 0;
        ir::Reg ret_dst = ir::kNoReg; ///< Destination in caller's regs.
        uint64_t ret_addr = 0;        ///< Code address after the call.
        std::vector<int64_t> regs;
    };

    /** JumpSwitch per-site runtime state (§8.2). */
    struct JsState
    {
        std::vector<ir::FuncId> inline_targets;
        uint64_t execs = 0;
        bool multi_target = false;
    };

    void enterFunction(ir::FuncId f, const std::vector<int64_t>& args,
                       ir::Reg ret_dst, uint64_t ret_addr);
    void leaveFunction(int64_t value);
    void fetchBlock(ir::FuncId f, ir::BlockId bb, uint32_t from_ip);
    uint32_t indirectCallCost(uint64_t branch_addr, ir::FuncId target,
                              const ir::Instruction& inst);
    uint32_t returnCost(uint64_t ret_inst_addr, uint64_t actual_ret_addr,
                        const ir::Instruction& inst);

    const ir::Module& module_;
    CostParams params_;
    analysis::CodeLayout layout_;

    Btb btb_;
    Rsb rsb_;
    Pht pht_;
    ICache icache_;

    std::vector<std::vector<int64_t>> globals_;
    std::vector<int64_t> frame_stack_;
    std::vector<Activation> acts_;
    std::unordered_map<ir::SiteId, JsState> js_states_;

    profile::EdgeProfile* profiler_ = nullptr;
    SpeculationObserver* observer_ = nullptr;
    bool timing_ = true;

    RunStats stats_;
    uint64_t sink_hash_ = 0x9dc5;
    int64_t last_return_ = 0;
};

} // namespace pibe::uarch

#endif // PIBE_UARCH_SIMULATOR_H_
