/**
 * @file
 * The PIR execution engine: functional interpreter + timing model +
 * profiling hook + speculation hook, in one loop.
 *
 * A single engine serves every phase of the PIBE pipeline:
 *  - with a profiler attached it is the profiling run (collecting the
 *    call-graph edge profile of §7);
 *  - with timing enabled it is the performance testbed (cycle counts
 *    from the cost model, i-cache, BTB/RSB/PHT);
 *  - with a SpeculationObserver attached it is the attack testbed
 *    (§8.6).
 * Using one engine guarantees the profile, the measurements, and the
 * security verdicts all see the same execution.
 *
 * Execution has two paths over the same microarchitectural state:
 *
 *  - run() executes the pre-decoded stream of a DecodedModule: flat
 *    code indices instead of (block, ip) pairs, precomputed byte
 *    addresses and fetch ranges, pooled contiguous register windows
 *    with caller-to-callee argument transfer written directly into
 *    the callee's window (zero per-call heap allocation in steady
 *    state), dense JumpSwitch state slots, and binary-search / dense
 *    switch dispatch.
 *  - runReference() is the original tree-walking loop, kept as the
 *    executable specification: differential tests assert both paths
 *    produce bit-identical stats, and the interpreter microbench
 *    reports the decoded engine's speedup over it.
 */
#ifndef PIBE_UARCH_SIMULATOR_H_
#define PIBE_UARCH_SIMULATOR_H_

#include <algorithm>
#include <cstdint>
#include <memory>
#include <vector>

#include "analysis/layout.h"
#include "ir/module.h"
#include "profile/edge_profile.h"
#include "uarch/cost_model.h"
#include "uarch/decoded_module.h"
#include "uarch/icache.h"
#include "uarch/predictors.h"
#include "uarch/speculation.h"

namespace pibe::uarch {

/** Counters accumulated while running. */
struct RunStats
{
    uint64_t cycles = 0;
    uint64_t instructions = 0;
    uint64_t direct_calls = 0;
    uint64_t indirect_calls = 0;
    uint64_t returns = 0;
    uint64_t cond_branches = 0;
    uint64_t switches = 0;
    uint64_t icache_misses = 0;
    uint64_t btb_mispredicts = 0;
    uint64_t rsb_mispredicts = 0;
    uint64_t pht_mispredicts = 0;
    uint64_t thunk_execs = 0; ///< Hardened branch executions.
    uint64_t js_hits = 0;     ///< JumpSwitch inline-check hits.
    uint64_t js_misses = 0;   ///< JumpSwitch fallback retpolines.
    uint64_t js_patches = 0;  ///< JumpSwitch live-patch events.
    uint64_t js_learning = 0; ///< Executions in learning mode.
    uint64_t max_call_depth = 0;
    uint64_t peak_frame_slots = 0; ///< Peak stack usage (slots).
    /**
     * Superinstructions executed, per FusedFamily — decoded-path-only
     * diagnostics (the reference loop has no fusion). Deliberately NOT
     * part of the golden-stats comparison set: fusion coverage is
     * observability, not architecture.
     */
    std::array<uint64_t, kNumFusedFamilies> fused{};
};

/**
 * Interprets a PIR module.
 *
 * The module must outlive the simulator and must not be mutated while
 * a simulator references it (the decoded image is computed at
 * construction).
 */
class Simulator
{
  public:
    /**
     * How run() dispatches decoded instructions. Both modes execute
     * the same handler bodies (one shared include) and produce
     * bit-identical stats; they differ only in dispatch overhead.
     */
    enum class DispatchMode : uint8_t {
        kThreaded, ///< Direct-threaded computed goto (GCC/Clang).
        kSwitch,   ///< Portable switch-on-opcode loop.
    };

    /** False when the build has no computed-goto support (or was
     *  configured with -DPIBE_DISPATCH=switch): threaded mode is then
     *  unavailable and every simulator runs the switch loop. */
    static bool threadedDispatchAvailable();

    /**
     * Process-wide default: kThreaded when available, unless the
     * PIBE_DISPATCH environment variable says "switch" (read once).
     */
    static DispatchMode defaultDispatchMode();

    explicit Simulator(const ir::Module& module,
                       const CostParams& params = {});

    /**
     * Share a pre-decoded image across simulators: decoding is paid
     * once per module, not once per Simulator (measureSuite uses this
     * to decode each image a single time for the whole suite).
     */
    explicit Simulator(std::shared_ptr<const DecodedModule> decoded,
                       const CostParams& params = {});

    /**
     * Call function `f` with `args` and run to completion; returns the
     * function's return value. Global memory persists across calls
     * (the kernel keeps state); use resetMemory() for a cold boot.
     */
    int64_t run(ir::FuncId f, const std::vector<int64_t>& args);

    /**
     * The pre-rewrite interpreter loop (per-instruction layout
     * lookups, per-activation register vectors). Stats, sink hash,
     * and microarchitectural effects are bit-identical to run();
     * exists for differential testing and benchmarking only.
     */
    int64_t runReference(ir::FuncId f,
                         const std::vector<int64_t>& args);

    /** Reinitialize global memory from the module's initializers. */
    void resetMemory();

    /** Flush caches, predictors, and JumpSwitch runtime state. */
    void resetMicroarch();

    const RunStats& stats() const { return stats_; }
    void clearStats() { stats_ = RunStats{}; }

    /** Attach an edge profiler (nullptr to detach). */
    void setProfiler(profile::EdgeProfile* profiler)
    {
        profiler_ = profiler;
    }

    /** Attach a speculation observer (nullptr to detach). */
    void setObserver(SpeculationObserver* observer)
    {
        observer_ = observer;
    }

    /** Enable/disable the timing model (profiling runs disable it). */
    void setTimingEnabled(bool enabled) { timing_ = enabled; }

    /**
     * Route run() through runReference() instead of the decoded loop.
     * Lets workload drivers (KernelHandle) execute unmodified on
     * either path; used by differential tests and the interpreter
     * microbenchmark.
     */
    void setUseReferencePath(bool use) { use_reference_ = use; }

    /**
     * Select the decoded-path dispatch mode for this simulator.
     * Requests for kThreaded are clamped to kSwitch when threaded
     * dispatch is unavailable, so dispatchMode() always reports what
     * actually runs.
     */
    void setDispatchMode(DispatchMode mode);
    DispatchMode dispatchMode() const { return dispatch_; }
    /** "threaded" or "switch" (benchmark provenance stamps). */
    const char* dispatchModeName() const;

    /** Running hash of all kSink values — the observable behaviour of
     *  an execution; equal hashes mean equivalent observed effects. */
    uint64_t sinkHash() const { return sink_hash_; }
    void resetSinkHash() { sink_hash_ = 0x9dc5; }

    const analysis::CodeLayout& layout() const
    {
        return decoded_->layout();
    }
    const DecodedModule& decoded() const { return *decoded_; }
    const CostParams& params() const { return params_; }

    /** Read a global slot (workload setup/verification). */
    int64_t readGlobal(ir::GlobalId g, size_t index) const;
    /** Write a global slot (workload setup). */
    void writeGlobal(ir::GlobalId g, size_t index, int64_t value);

  private:
    /** Decoded-path activation: indices into the pooled stacks. */
    struct Frame
    {
        uint32_t pc = 0;         ///< Code index of the next inst.
        uint32_t reg_base = 0;   ///< Window start in reg_stack_.
        uint32_t frame_base = 0; ///< Window start in frame_stack_.
        ir::FuncId fid = ir::kInvalidFunc;
        const ir::Function* func = nullptr; ///< For diagnostics.
        ir::Reg ret_dst = ir::kNoReg; ///< Destination in caller regs.
        uint64_t ret_addr = 0;        ///< Code address after the call.
    };

    /** Reference-path activation (the pre-rewrite representation). */
    struct Activation
    {
        const ir::Function* func = nullptr;
        ir::FuncId fid = ir::kInvalidFunc;
        ir::BlockId bb = 0;
        uint32_t ip = 0;
        uint32_t frame_base = 0;
        ir::Reg ret_dst = ir::kNoReg; ///< Destination in caller's regs.
        uint64_t ret_addr = 0;        ///< Code address after the call.
        std::vector<int64_t> regs;
    };

    /** JumpSwitch per-site runtime state (§8.2), in dense slots. */
    struct JsState
    {
        std::vector<ir::FuncId> inline_targets;
        uint64_t execs = 0;
        bool multi_target = false;
    };

    // Shared by both paths -------------------------------------------
    /**
     * Claim `n` zeroed slots on a pooled stack and return the window
     * base. The vector is a capacity buffer: `top` is the live size
     * (popping a window is just `top = base`, no vector traffic).
     */
    static uint32_t
    pushSlots(std::vector<int64_t>& buf, uint32_t& top, uint32_t n)
    {
        const uint32_t base = top;
        if (top + n > buf.size())
            buf.resize(std::max<size_t>(buf.size() * 2, top + n));
        std::fill_n(buf.data() + base, n, 0);
        top += n;
        return base;
    }

    /** i-cache fetch of the byte range [start, end). Inline: runs on
     *  every simulated block transition, call, and return. */
    void
    fetchRange(uint64_t start, uint64_t end)
    {
        const uint32_t misses = icache_.touchRange(start, end);
        stats_.icache_misses += misses;
        stats_.cycles += static_cast<uint64_t>(misses) *
                         params_.icache_miss_penalty;
    }
    uint32_t indirectCallCost(uint64_t branch_addr,
                              uint64_t target_addr, ir::FuncId target,
                              ir::FwdScheme scheme, uint32_t js_slot);
    uint32_t returnCost(uint64_t actual_ret_addr, ir::RetScheme scheme);
    /** Kernel-entry prologue (observer + RSB refill); false when the
     *  entry is a declaration and the run is already accounted. */
    bool beginRun(ir::FuncId entry, size_t num_args);

    // Decoded path ----------------------------------------------------
    /**
     * The decoded hot loop, specialized on the timing model so the
     * functional path carries no per-instruction timing branches, in
     * two dispatch flavors sharing one handler-body include
     * (interp_ops.inc). runLoopThreaded falls back to the switch body
     * when the compiler has no computed goto.
     */
    template <bool Timing> int64_t runLoopThreaded();
    template <bool Timing> int64_t runLoopSwitch();
    void enterDecoded(ir::FuncId f, ir::Reg ret_dst,
                      uint64_t ret_addr);
    void leaveDecoded(int64_t value);

    // Reference path --------------------------------------------------
    void enterFunction(ir::FuncId f, const std::vector<int64_t>& args,
                       ir::Reg ret_dst, uint64_t ret_addr);
    void leaveFunction(int64_t value);
    void fetchBlock(ir::FuncId f, ir::BlockId bb, uint32_t from_ip);

    std::shared_ptr<const DecodedModule> decoded_;
    const ir::Module& module_;
    CostParams params_;

    Btb btb_;
    Rsb rsb_;
    Pht pht_;
    ICache icache_;

    std::vector<std::vector<int64_t>> globals_;
    std::vector<int64_t> frame_stack_; ///< Capacity buffer; see top.
    std::vector<int64_t> reg_stack_;   ///< Pooled register windows.
    uint32_t frame_top_ = 0; ///< Live size of frame_stack_.
    uint32_t reg_top_ = 0;   ///< Live size of reg_stack_.
    std::vector<Frame> frames_;
    std::vector<Activation> acts_; ///< Reference path only.
    std::vector<JsState> js_states_;

    profile::EdgeProfile* profiler_ = nullptr;
    SpeculationObserver* observer_ = nullptr;
    bool timing_ = true;
    bool use_reference_ = false;
    DispatchMode dispatch_ = defaultDispatchMode();

    RunStats stats_;
    uint64_t sink_hash_ = 0x9dc5;
    int64_t last_return_ = 0;
};

} // namespace pibe::uarch

#endif // PIBE_UARCH_SIMULATOR_H_
