/**
 * @file
 * DAG job scheduler over the thread pool.
 *
 * The experiment pipeline `build kernel -> collect profile ->
 * buildImage(config) -> measure` is a graph of pure jobs with
 * dependency edges; the scheduler runs every job whose dependencies
 * have completed, so independent image builds and measurements overlap
 * freely while ordering constraints hold.
 *
 * Memory model: a job's side effects are published under the graph
 * mutex before any dependent is handed to the pool, so a job may
 * freely read state written by its dependencies without further
 * synchronization. Jobs with no edge between them must touch disjoint
 * state.
 *
 * Determinism: scheduling order is nondeterministic, but each job gets
 * a JobContext whose seed derives from the job's name digest — all
 * stochastic behaviour inside a job must flow from that seed (or from
 * inputs), which is what makes parallel runs bit-identical to serial.
 */
#ifndef PIBE_RUNTIME_JOB_GRAPH_H_
#define PIBE_RUNTIME_JOB_GRAPH_H_

#include <condition_variable>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/thread_pool.h"

namespace pibe::runtime {

/** Handle to a job added to a JobGraph. */
using JobId = size_t;

/** Per-job determinism handle, passed to the job body. */
struct JobContext
{
    JobId id = 0;
    /** Stable seed derived from the job name; feed any per-job RNG
     *  from this so results do not depend on scheduling. */
    uint64_t seed = 0;
};

/** Timing record of one executed job. */
struct JobMetrics
{
    std::string name;
    double queue_wait_ms = 0; ///< Ready (deps done) -> started.
    double run_ms = 0;        ///< Started -> finished.
    bool ran = false;         ///< False if skipped (failed dep).
};

/**
 * A one-shot DAG of jobs. Build with add(), execute with run().
 * add() is not thread-safe; call it from one thread before run().
 */
class JobGraph
{
  public:
    /**
     * Add a job depending on `deps` (which must already be added —
     * this makes cycles unrepresentable by construction).
     */
    JobId add(std::string name,
              std::function<void(const JobContext&)> fn,
              const std::vector<JobId>& deps = {});

    /**
     * Execute the graph on `pool`, blocking until every job has
     * completed or been skipped. If a job throws, its dependents are
     * skipped and the first exception is rethrown after the graph
     * drains. May be called once.
     */
    void run(ThreadPool& pool);

    /** Per-job timing, in add() order. Valid after run(). */
    const std::vector<JobMetrics>& metrics() const { return metrics_; }

    size_t numJobs() const { return jobs_.size(); }

  private:
    struct Job
    {
        std::string name;
        std::function<void(const JobContext&)> fn;
        std::vector<JobId> dependents;
        size_t deps_remaining = 0;
        bool skipped = false;
    };

    void onJobDone(ThreadPool& pool, JobId id, bool ok);
    void submitJob(ThreadPool& pool, JobId id);
    void skipDependents(JobId id);

    std::vector<Job> jobs_;
    std::vector<JobMetrics> metrics_;

    std::mutex mu_;
    std::condition_variable done_cv_;
    size_t finished_ = 0;
    bool ran_ = false;
    std::exception_ptr first_error_;
};

} // namespace pibe::runtime

#endif // PIBE_RUNTIME_JOB_GRAPH_H_
