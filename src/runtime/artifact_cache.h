/**
 * @file
 * Content-addressed artifact cache.
 *
 * Artifacts are strings (PIR module dumps, serialized profiles,
 * serialized measurements) addressed by the hex digest of everything
 * that determined them — see runtime/digest.h. Two tiers:
 *
 *  - in-memory: always on, shared within one process/run;
 *  - on-disk (optional): a directory of `<key>.art` files (default
 *    `~/.cache/pibe-artifacts/`, or `--cache-dir`), which is what
 *    makes re-runs and cross-table sharing near-free.
 *
 * Disk writes are atomic (temp file + rename) so concurrent producers
 * of the same key are harmless: content addressing means they wrote
 * identical bytes.
 */
#ifndef PIBE_RUNTIME_ARTIFACT_CACHE_H_
#define PIBE_RUNTIME_ARTIFACT_CACHE_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>

namespace pibe::runtime {

/** Hit/miss counters, cumulative over the cache's lifetime. */
struct CacheStats
{
    uint64_t mem_hits = 0;
    uint64_t disk_hits = 0;
    uint64_t misses = 0;
    uint64_t puts = 0;

    uint64_t hits() const { return mem_hits + disk_hits; }
    uint64_t lookups() const { return hits() + misses; }

    double
    hitRate() const
    {
        return lookups() == 0
                   ? 0.0
                   : static_cast<double>(hits()) /
                         static_cast<double>(lookups());
    }
};

/** Thread-safe two-tier (memory + optional disk) artifact store. */
class ArtifactCache
{
  public:
    ArtifactCache() = default;

    /**
     * Enable the disk tier rooted at `dir` (created if missing).
     * Fatal if the directory cannot be created.
     */
    void setDiskDir(const std::string& dir);

    /** Default on-disk location: $HOME/.cache/pibe-artifacts. */
    static std::string defaultDiskDir();

    /** Look up `key` (memory first, then disk). */
    std::optional<std::string> get(const std::string& key);

    /** Store `value` under `key` in every enabled tier. */
    void put(const std::string& key, const std::string& value);

    CacheStats stats() const;

    bool diskEnabled() const { return !disk_dir_.empty(); }

  private:
    std::string diskPath(const std::string& key) const;

    mutable std::mutex mu_;
    std::map<std::string, std::string> memory_;
    std::string disk_dir_;
    CacheStats stats_;
};

} // namespace pibe::runtime

#endif // PIBE_RUNTIME_ARTIFACT_CACHE_H_
