/**
 * @file
 * Content-addressed artifact cache.
 *
 * Artifacts are strings (PIR module dumps, serialized profiles,
 * serialized measurements) addressed by the hex digest of everything
 * that determined them — see runtime/digest.h. Two tiers:
 *
 *  - in-memory: always on, shared within one process/run, LRU-evicted
 *    under an optional byte budget (long-running daemons stay bounded);
 *  - on-disk (optional): a directory of `<key>.art` files (default
 *    `~/.cache/pibe-artifacts/`, or `--cache-dir`), which is what
 *    makes re-runs, cross-table, and cross-*process* sharing near-free.
 *
 * The disk tier is safe to share between processes (`pibe serve`
 * workers, concurrent CLI runs):
 *
 *  - publishes are atomic: value bytes go to a unique temp file
 *    (pid + sequence) that is fsync'd, verified, and rename(2)d into
 *    place, so a reader can never observe a truncated artifact and a
 *    crashed writer leaves only a temp file behind;
 *  - eviction holds an exclusive flock(2) on `<dir>/.lock`, so two
 *    processes trimming the same directory serialize instead of
 *    double-deleting;
 *  - under a byte budget (setDiskBudget) the least-recently-used
 *    artifacts are evicted; disk hits touch the file mtime so recency
 *    survives across processes.
 *
 * Content addressing makes same-key races harmless either way: both
 * writers produced identical bytes.
 */
#ifndef PIBE_RUNTIME_ARTIFACT_CACHE_H_
#define PIBE_RUNTIME_ARTIFACT_CACHE_H_

#include <cstdint>
#include <list>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>

namespace pibe::runtime {

/** Counters, cumulative over the cache's lifetime (gauges excepted). */
struct CacheStats
{
    uint64_t mem_hits = 0;
    uint64_t disk_hits = 0;
    uint64_t misses = 0;
    uint64_t puts = 0;

    uint64_t mem_evictions = 0;  ///< Entries LRU-evicted from memory.
    uint64_t disk_evictions = 0; ///< Files LRU-evicted from disk.
    uint64_t evicted_bytes = 0;  ///< Bytes reclaimed by disk eviction.

    uint64_t mem_bytes = 0;  ///< Gauge: current memory-tier payload.
    uint64_t disk_bytes = 0; ///< Gauge: disk-tier size (last estimate).

    double get_ms_total = 0; ///< Wall time spent inside get().
    double put_ms_total = 0; ///< Wall time spent inside put().

    uint32_t inflight = 0;      ///< Gauge: get/put calls in progress.
    uint32_t peak_inflight = 0; ///< High-water mark of `inflight`.

    uint64_t hits() const { return mem_hits + disk_hits; }
    uint64_t lookups() const { return hits() + misses; }

    double
    hitRate() const
    {
        return lookups() == 0
                   ? 0.0
                   : static_cast<double>(hits()) /
                         static_cast<double>(lookups());
    }
};

/** Thread-safe two-tier (memory + optional disk) artifact store. */
class ArtifactCache
{
  public:
    ArtifactCache() = default;

    /**
     * Enable the disk tier rooted at `dir` (created if missing) and
     * take an initial size estimate. Fatal if the directory cannot be
     * created.
     */
    void setDiskDir(const std::string& dir);

    /** Default on-disk location: $HOME/.cache/pibe-artifacts. */
    static std::string defaultDiskDir();

    /**
     * Cap the disk tier at `bytes` (0 = unlimited). When a put pushes
     * the tier over budget, least-recently-used artifacts are evicted
     * under the directory lock until it fits again.
     */
    void setDiskBudget(uint64_t bytes);

    /** Cap the memory tier at `bytes` (0 = unlimited), LRU-evicted. */
    void setMemoryBudget(uint64_t bytes);

    /** Look up `key` (memory first, then disk). */
    std::optional<std::string> get(const std::string& key);

    /** Store `value` under `key` in every enabled tier. */
    void put(const std::string& key, const std::string& value);

    CacheStats stats() const;

    bool diskEnabled() const;

  private:
    std::string diskPath(const std::string& key) const;
    /** Insert into the memory LRU; evicts over-budget entries.
     *  Called with mu_ held. */
    void memoryInsert(const std::string& key, const std::string& value);
    /** Trim the disk tier to budget under the directory lock. */
    void evictDiskOverBudget();

    mutable std::mutex mu_;
    /** Front = most recently used. */
    std::list<std::pair<std::string, std::string>> lru_;
    std::unordered_map<std::string, decltype(lru_)::iterator> index_;
    std::string disk_dir_;
    uint64_t disk_budget_ = 0;
    uint64_t mem_budget_ = 0;
    CacheStats stats_;
};

} // namespace pibe::runtime

#endif // PIBE_RUNTIME_ARTIFACT_CACHE_H_
