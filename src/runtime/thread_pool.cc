#include "runtime/thread_pool.h"

#include <algorithm>

namespace pibe::runtime {

ThreadPool::ThreadPool(size_t num_threads)
{
    const size_t n = std::max<size_t>(1, num_threads);
    threads_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        PIBE_ASSERT(!shutting_down_,
                    "ThreadPool::submit after shutdown");
        queue_.push_back(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::shutdown()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (shutting_down_ && threads_.empty())
            return;
        shutting_down_ = true;
    }
    cv_.notify_all();
    for (auto& t : threads_)
        t.join();
    threads_.clear();
}

uint64_t
ThreadPool::tasksRun() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_run_;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] {
                return shutting_down_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // shutting down and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++tasks_run_;
        }
        task();
    }
}

} // namespace pibe::runtime
