#include "runtime/thread_pool.h"

#include <algorithm>

namespace pibe::runtime {

ThreadPool::ThreadPool(size_t num_threads)
{
    const size_t n = std::max<size_t>(1, num_threads);
    threads_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        threads_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() { stop(StopMode::kDrain); }

void
ThreadPool::post(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        PIBE_ASSERT(!shutting_down_,
                    "ThreadPool::submit after stop");
        queue_.push_back(std::move(task));
        ++tasks_submitted_;
    }
    cv_.notify_one();
}

void
ThreadPool::stop(StopMode mode)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (shutting_down_ && threads_.empty())
            return;
        shutting_down_ = true;
        if (mode == StopMode::kCancel) {
            // Dropping the packaged_tasks breaks their promises, so
            // waiters see future_errc::broken_promise, not a hang.
            tasks_cancelled_ += queue_.size();
            queue_.clear();
        }
    }
    cv_.notify_all();
    for (auto& t : threads_)
        t.join();
    threads_.clear();
    // Every submitted task is accounted for: it either ran or was
    // cancelled. This is the "no leaked jobs" shutdown invariant.
    std::lock_guard<std::mutex> lock(mu_);
    PIBE_ASSERT(queue_.empty() &&
                    tasks_run_ + tasks_cancelled_ == tasks_submitted_,
                "ThreadPool::stop leaked jobs (run=", tasks_run_,
                " cancelled=", tasks_cancelled_,
                " submitted=", tasks_submitted_, ")");
}

uint64_t
ThreadPool::tasksRun() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_run_;
}

uint64_t
ThreadPool::cancelledTasks() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_cancelled_;
}

uint64_t
ThreadPool::tasksSubmitted() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return tasks_submitted_;
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [this] {
                return shutting_down_ || !queue_.empty();
            });
            if (queue_.empty())
                return; // shutting down and drained (or cancelled)
            task = std::move(queue_.front());
            queue_.pop_front();
            ++tasks_run_;
        }
        task();
    }
}

} // namespace pibe::runtime
