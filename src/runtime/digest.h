/**
 * @file
 * Content digests for the artifact cache.
 *
 * A Digest is an incremental dual-lane FNV-1a hash over a stream of
 * typed values. Two independent 64-bit lanes (different offset bases,
 * same FNV prime) give a 128-bit key, which makes accidental
 * collisions irrelevant at our scale while keeping the hash trivially
 * portable and dependency-free. Every value is fed length- or
 * width-delimited so that adjacent fields cannot alias (e.g. "ab"+"c"
 * vs "a"+"bc" digest differently).
 */
#ifndef PIBE_RUNTIME_DIGEST_H_
#define PIBE_RUNTIME_DIGEST_H_

#include <bit>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

namespace pibe::runtime {

/** Incremental 128-bit (2x64) FNV-1a content hash. */
class Digest
{
  public:
    /** Absorb raw bytes. */
    Digest&
    appendBytes(const void* data, size_t size)
    {
        const auto* p = static_cast<const unsigned char*>(data);
        for (size_t i = 0; i < size; ++i) {
            a_ = (a_ ^ p[i]) * kPrime;
            b_ = (b_ ^ p[i]) * kPrime;
        }
        return *this;
    }

    /** Absorb a string, length-prefixed. */
    Digest&
    add(std::string_view s)
    {
        add(static_cast<uint64_t>(s.size()));
        return appendBytes(s.data(), s.size());
    }

    Digest& add(const char* s) { return add(std::string_view(s)); }

    /** Absorb an unsigned 64-bit value (fixed width). */
    Digest&
    add(uint64_t v)
    {
        unsigned char bytes[8];
        for (int i = 0; i < 8; ++i)
            bytes[i] = static_cast<unsigned char>(v >> (8 * i));
        return appendBytes(bytes, sizeof(bytes));
    }

    Digest& add(int64_t v) { return add(static_cast<uint64_t>(v)); }
    Digest& add(uint32_t v) { return add(static_cast<uint64_t>(v)); }
    Digest& add(int32_t v) { return add(static_cast<uint64_t>(
        static_cast<int64_t>(v))); }
    Digest& add(bool v) { return add(static_cast<uint64_t>(v ? 1 : 0)); }

    /** Absorb a double by bit pattern (exact, no formatting). */
    Digest&
    add(double v)
    {
        return add(std::bit_cast<uint64_t>(v));
    }

    /** First lane; usable as an RNG seed for per-job determinism. */
    uint64_t value() const { return a_; }

    /** 32 lowercase hex chars covering both lanes (the cache key). */
    std::string
    hex() const
    {
        static const char* kDigits = "0123456789abcdef";
        std::string out(32, '0');
        for (int i = 0; i < 16; ++i) {
            out[15 - i] = kDigits[(a_ >> (4 * i)) & 0xf];
            out[31 - i] = kDigits[(b_ >> (4 * i)) & 0xf];
        }
        return out;
    }

  private:
    static constexpr uint64_t kPrime = 0x100000001b3ull;
    uint64_t a_ = 0xcbf29ce484222325ull; ///< Standard FNV offset basis.
    uint64_t b_ = 0xcbf29ce484222325ull ^ 0x9e3779b97f4a7c15ull;
};

} // namespace pibe::runtime

#endif // PIBE_RUNTIME_DIGEST_H_
