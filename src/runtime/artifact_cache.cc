#include "runtime/artifact_cache.h"

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <thread>

#include "support/logging.h"

namespace pibe::runtime {

namespace fs = std::filesystem;

void
ArtifactCache::setDiskDir(const std::string& dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        PIBE_FATAL("cannot create cache directory ", dir, ": ",
                   ec.message());
    std::lock_guard<std::mutex> lock(mu_);
    disk_dir_ = dir;
}

std::string
ArtifactCache::defaultDiskDir()
{
    const char* home = std::getenv("HOME");
    if (home == nullptr || home[0] == '\0')
        return "/tmp/pibe-artifacts";
    return std::string(home) + "/.cache/pibe-artifacts";
}

std::string
ArtifactCache::diskPath(const std::string& key) const
{
    return disk_dir_ + "/" + key + ".art";
}

std::optional<std::string>
ArtifactCache::get(const std::string& key)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = memory_.find(key);
    if (it != memory_.end()) {
        ++stats_.mem_hits;
        return it->second;
    }
    if (!disk_dir_.empty()) {
        std::ifstream in(diskPath(key), std::ios::binary);
        if (in) {
            std::ostringstream os;
            os << in.rdbuf();
            std::string value = os.str();
            memory_[key] = value; // promote for this process
            ++stats_.disk_hits;
            return value;
        }
    }
    ++stats_.misses;
    return std::nullopt;
}

void
ArtifactCache::put(const std::string& key, const std::string& value)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.puts;
    memory_[key] = value;
    if (disk_dir_.empty())
        return;
    // Atomic publish: write to a per-thread temp name, then rename.
    // Losers of a same-key race overwrite with identical content.
    std::ostringstream tmp_name;
    tmp_name << diskPath(key) << ".tmp."
             << std::hash<std::thread::id>{}(std::this_thread::get_id());
    {
        std::ofstream out(tmp_name.str(), std::ios::binary);
        if (!out) {
            warn("artifact cache: cannot write ", tmp_name.str(),
                 "; disk tier skipped for this artifact");
            return;
        }
        out << value;
    }
    std::error_code ec;
    fs::rename(tmp_name.str(), diskPath(key), ec);
    if (ec)
        warn("artifact cache: rename failed for ", diskPath(key), ": ",
             ec.message());
}

CacheStats
ArtifactCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace pibe::runtime
