#include "runtime/artifact_cache.h"

#include <fcntl.h>
#include <sys/file.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <system_error>
#include <vector>

#include "support/logging.h"

namespace pibe::runtime {

namespace fs = std::filesystem;

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/**
 * RAII exclusive flock(2) on `<dir>/.lock`. Advisory, so it only
 * coordinates cooperating pibe processes — which is exactly the shared
 * cache-directory case. Degrades to a no-op (with a warning) if the
 * lock file cannot be opened; eviction then proceeds unlocked, which
 * is safe (deleting a file another process already deleted is ignored)
 * just not minimal.
 */
class DirLock
{
  public:
    explicit DirLock(const std::string& dir)
    {
        const std::string path = dir + "/.lock";
        fd_ = ::open(path.c_str(), O_CREAT | O_RDWR | O_CLOEXEC, 0644);
        if (fd_ < 0) {
            warn("artifact cache: cannot open ", path,
                 "; proceeding unlocked");
            return;
        }
        while (::flock(fd_, LOCK_EX) != 0 && errno == EINTR) {
        }
    }

    ~DirLock()
    {
        if (fd_ >= 0) {
            ::flock(fd_, LOCK_UN);
            ::close(fd_);
        }
    }

    DirLock(const DirLock&) = delete;
    DirLock& operator=(const DirLock&) = delete;

  private:
    int fd_ = -1;
};

/** Sum of `.art` payload bytes currently in `dir`. */
uint64_t
scanDiskBytes(const std::string& dir)
{
    uint64_t total = 0;
    std::error_code ec;
    for (const auto& entry : fs::directory_iterator(dir, ec)) {
        if (entry.path().extension() == ".art")
            total += entry.file_size(ec);
    }
    return total;
}

} // namespace

void
ArtifactCache::setDiskDir(const std::string& dir)
{
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec)
        PIBE_FATAL("cannot create cache directory ", dir, ": ",
                   ec.message());
    const uint64_t bytes = scanDiskBytes(dir);
    std::lock_guard<std::mutex> lock(mu_);
    disk_dir_ = dir;
    stats_.disk_bytes = bytes;
}

std::string
ArtifactCache::defaultDiskDir()
{
    const char* home = std::getenv("HOME");
    if (home == nullptr || home[0] == '\0')
        return "/tmp/pibe-artifacts";
    return std::string(home) + "/.cache/pibe-artifacts";
}

void
ArtifactCache::setDiskBudget(uint64_t bytes)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        disk_budget_ = bytes;
    }
    evictDiskOverBudget();
}

void
ArtifactCache::setMemoryBudget(uint64_t bytes)
{
    std::lock_guard<std::mutex> lock(mu_);
    mem_budget_ = bytes;
    while (mem_budget_ != 0 && stats_.mem_bytes > mem_budget_ &&
           !lru_.empty()) {
        stats_.mem_bytes -= lru_.back().second.size();
        ++stats_.mem_evictions;
        index_.erase(lru_.back().first);
        lru_.pop_back();
    }
}

bool
ArtifactCache::diskEnabled() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return !disk_dir_.empty();
}

std::string
ArtifactCache::diskPath(const std::string& key) const
{
    return disk_dir_ + "/" + key + ".art";
}

void
ArtifactCache::memoryInsert(const std::string& key,
                            const std::string& value)
{
    auto it = index_.find(key);
    if (it != index_.end()) {
        stats_.mem_bytes -= it->second->second.size();
        lru_.erase(it->second);
        index_.erase(it);
    }
    lru_.emplace_front(key, value);
    index_[key] = lru_.begin();
    stats_.mem_bytes += value.size();
    while (mem_budget_ != 0 && stats_.mem_bytes > mem_budget_ &&
           lru_.size() > 1) {
        stats_.mem_bytes -= lru_.back().second.size();
        ++stats_.mem_evictions;
        index_.erase(lru_.back().first);
        lru_.pop_back();
    }
}

std::optional<std::string>
ArtifactCache::get(const std::string& key)
{
    const Clock::time_point t0 = Clock::now();
    std::string dir;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.peak_inflight =
            std::max(stats_.peak_inflight, ++stats_.inflight);
        auto it = index_.find(key);
        if (it != index_.end()) {
            lru_.splice(lru_.begin(), lru_, it->second); // touch
            ++stats_.mem_hits;
            std::string value = it->second->second;
            --stats_.inflight;
            stats_.get_ms_total += msSince(t0);
            return value;
        }
        dir = disk_dir_;
    }
    // Disk I/O runs outside the cache mutex so concurrent callers
    // (daemon sessions) overlap instead of serializing.
    std::optional<std::string> value;
    if (!dir.empty()) {
        const std::string path = diskPath(key);
        std::ifstream in(path, std::ios::binary);
        if (in) {
            std::ostringstream os;
            os << in.rdbuf();
            if (in.good() || in.eof())
                value = os.str();
        }
        if (value) {
            // Touch for cross-process LRU recency; best effort.
            std::error_code ec;
            fs::last_write_time(
                path, fs::file_time_type::clock::now(), ec);
        }
    }
    std::lock_guard<std::mutex> lock(mu_);
    if (value) {
        memoryInsert(key, *value); // promote for this process
        ++stats_.disk_hits;
    } else {
        ++stats_.misses;
    }
    --stats_.inflight;
    stats_.get_ms_total += msSince(t0);
    return value;
}

void
ArtifactCache::put(const std::string& key, const std::string& value)
{
    const Clock::time_point t0 = Clock::now();
    std::string dir;
    uint64_t budget = 0;
    uint64_t disk_estimate = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        stats_.peak_inflight =
            std::max(stats_.peak_inflight, ++stats_.inflight);
        ++stats_.puts;
        memoryInsert(key, value);
        dir = disk_dir_;
        budget = disk_budget_;
        if (!dir.empty()) {
            stats_.disk_bytes += value.size();
            disk_estimate = stats_.disk_bytes;
        }
    }
    if (!dir.empty()) {
        // Atomic publish: write to a temp name unique across threads
        // *and processes* (pid + sequence), verify the stream, then
        // rename into place — a reader can never see partial bytes,
        // and a crashed writer cannot publish a truncated artifact.
        // Losers of a same-key race overwrite with identical content.
        static std::atomic<uint64_t> seq{0};
        std::ostringstream tmp_name;
        tmp_name << diskPath(key) << ".tmp." << ::getpid() << "."
                 << seq.fetch_add(1, std::memory_order_relaxed);
        bool written = false;
        {
            std::ofstream out(tmp_name.str(), std::ios::binary);
            if (out) {
                out << value;
                out.flush();
                written = out.good();
            }
        }
        if (!written) {
            warn("artifact cache: cannot write ", tmp_name.str(),
                 "; disk tier skipped for this artifact");
            std::error_code ec;
            fs::remove(tmp_name.str(), ec);
        } else {
            std::error_code ec;
            fs::rename(tmp_name.str(), diskPath(key), ec);
            if (ec) {
                warn("artifact cache: rename failed for ",
                     diskPath(key), ": ", ec.message());
                fs::remove(tmp_name.str(), ec);
            }
        }
        if (budget != 0 && disk_estimate > budget)
            evictDiskOverBudget();
    }
    std::lock_guard<std::mutex> lock(mu_);
    --stats_.inflight;
    stats_.put_ms_total += msSince(t0);
}

void
ArtifactCache::evictDiskOverBudget()
{
    std::string dir;
    uint64_t budget = 0;
    {
        std::lock_guard<std::mutex> lock(mu_);
        dir = disk_dir_;
        budget = disk_budget_;
    }
    if (dir.empty() || budget == 0)
        return;

    DirLock lock(dir);
    // Rescan under the lock: the estimate drifts when other processes
    // share the directory, and the scan is the authoritative total.
    struct Entry
    {
        fs::file_time_type mtime;
        uint64_t size;
        fs::path path;
    };
    std::vector<Entry> entries;
    uint64_t total = 0;
    std::error_code ec;
    for (const auto& e : fs::directory_iterator(dir, ec)) {
        if (e.path().extension() != ".art")
            continue;
        std::error_code fec;
        const uint64_t size = e.file_size(fec);
        const auto mtime = fs::last_write_time(e.path(), fec);
        if (fec)
            continue; // concurrently evicted by another process
        entries.push_back({mtime, size, e.path()});
        total += size;
    }
    uint64_t evicted_files = 0, evicted_bytes = 0;
    if (total > budget) {
        std::sort(entries.begin(), entries.end(),
                  [](const Entry& a, const Entry& b) {
                      return a.mtime < b.mtime;
                  });
        for (const Entry& e : entries) {
            if (total <= budget)
                break;
            std::error_code rec;
            if (fs::remove(e.path, rec) && !rec) {
                total -= e.size;
                ++evicted_files;
                evicted_bytes += e.size;
            }
        }
    }
    std::lock_guard<std::mutex> slock(mu_);
    stats_.disk_bytes = total;
    stats_.disk_evictions += evicted_files;
    stats_.evicted_bytes += evicted_bytes;
}

CacheStats
ArtifactCache::stats() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
}

} // namespace pibe::runtime
