/**
 * @file
 * Fixed-size worker thread pool with a futures-based submit() API.
 *
 * The pool is the execution substrate of the experiment runtime: the
 * JobGraph scheduler feeds it ready jobs, and standalone users (e.g.
 * the CLI's parallel measure path, the `pibe serve` daemon) can submit
 * closures directly.
 *
 * Shutdown policy is explicit: stop(StopMode::kDrain) finishes every
 * queued task before joining (results are never silently dropped),
 * stop(StopMode::kCancel) discards tasks that have not started yet —
 * their futures report std::future_errc::broken_promise — and joins as
 * soon as the in-flight tasks finish. The destructor drains.
 */
#ifndef PIBE_RUNTIME_THREAD_POOL_H_
#define PIBE_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/logging.h"

namespace pibe::runtime {

/** Fixed-size thread pool. All public methods are thread-safe. */
class ThreadPool
{
  public:
    /** What to do with queued-but-unstarted tasks on stop(). */
    enum class StopMode {
        kDrain,  ///< Run everything already queued, then join.
        kCancel, ///< Discard the queue (futures break), then join.
    };

    /** Spawn `num_threads` workers (clamped to at least 1). */
    explicit ThreadPool(size_t num_threads);

    /** Graceful shutdown: equivalent to stop(StopMode::kDrain). */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * Enqueue `fn` and return a future for its result. Exceptions
     * thrown by `fn` propagate through the future.
     * @pre stop()/shutdown() has not been called.
     */
    template <typename Fn>
    auto
    submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        post([task] { (*task)(); });
        return future;
    }

    /**
     * Stop accepting work and join all workers. kDrain finishes the
     * queue first; kCancel discards it (cancelledTasks() counts the
     * discards). Idempotent — later calls, including the destructor's
     * drain, are no-ops regardless of mode.
     */
    void stop(StopMode mode);

    /** Back-compat alias for stop(StopMode::kDrain). */
    void shutdown() { stop(StopMode::kDrain); }

    /** Number of worker threads. */
    size_t size() const { return threads_.size(); }

    /** Total tasks executed so far. */
    uint64_t tasksRun() const;

    /** Tasks discarded by stop(StopMode::kCancel). */
    uint64_t cancelledTasks() const;

    /** Tasks accepted by submit() so far. */
    uint64_t tasksSubmitted() const;

  private:
    void post(std::function<void()> task);
    void workerLoop();

    std::vector<std::thread> threads_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    uint64_t tasks_run_ = 0;
    uint64_t tasks_submitted_ = 0;
    uint64_t tasks_cancelled_ = 0;
    bool shutting_down_ = false;
};

} // namespace pibe::runtime

#endif // PIBE_RUNTIME_THREAD_POOL_H_
