/**
 * @file
 * Fixed-size worker thread pool with a futures-based submit() API.
 *
 * The pool is the execution substrate of the experiment runtime: the
 * JobGraph scheduler feeds it ready jobs, and standalone users (e.g.
 * the CLI's parallel measure path) can submit closures directly.
 * Shutdown is graceful — queued work is drained before workers join —
 * so results are never silently dropped.
 */
#ifndef PIBE_RUNTIME_THREAD_POOL_H_
#define PIBE_RUNTIME_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "support/logging.h"

namespace pibe::runtime {

/** Fixed-size thread pool. All public methods are thread-safe. */
class ThreadPool
{
  public:
    /** Spawn `num_threads` workers (clamped to at least 1). */
    explicit ThreadPool(size_t num_threads);

    /** Graceful shutdown: drains the queue, then joins. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /**
     * Enqueue `fn` and return a future for its result. Exceptions
     * thrown by `fn` propagate through the future.
     * @pre shutdown() has not been called.
     */
    template <typename Fn>
    auto
    submit(Fn&& fn) -> std::future<std::invoke_result_t<Fn>>
    {
        using Result = std::invoke_result_t<Fn>;
        auto task = std::make_shared<std::packaged_task<Result()>>(
            std::forward<Fn>(fn));
        std::future<Result> future = task->get_future();
        post([task] { (*task)(); });
        return future;
    }

    /**
     * Stop accepting work, finish everything already queued, and join
     * all workers. Idempotent; called by the destructor.
     */
    void shutdown();

    /** Number of worker threads. */
    size_t size() const { return threads_.size(); }

    /** Total tasks executed so far. */
    uint64_t tasksRun() const;

  private:
    void post(std::function<void()> task);
    void workerLoop();

    std::vector<std::thread> threads_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    uint64_t tasks_run_ = 0;
    bool shutting_down_ = false;
};

} // namespace pibe::runtime

#endif // PIBE_RUNTIME_THREAD_POOL_H_
