#include "runtime/job_graph.h"

#include <chrono>

#include "runtime/digest.h"

namespace pibe::runtime {

namespace {

using Clock = std::chrono::steady_clock;

double
msBetween(Clock::time_point from, Clock::time_point to)
{
    return std::chrono::duration<double, std::milli>(to - from).count();
}

} // namespace

JobId
JobGraph::add(std::string name,
              std::function<void(const JobContext&)> fn,
              const std::vector<JobId>& deps)
{
    PIBE_ASSERT(!ran_, "JobGraph::add after run()");
    const JobId id = jobs_.size();
    Job job;
    job.name = name;
    job.fn = std::move(fn);
    job.deps_remaining = deps.size();
    for (JobId dep : deps) {
        PIBE_ASSERT(dep < id, "JobGraph deps must be added first");
        jobs_[dep].dependents.push_back(id);
    }
    jobs_.push_back(std::move(job));
    JobMetrics m;
    m.name = std::move(name);
    metrics_.push_back(std::move(m));
    return id;
}

void
JobGraph::submitJob(ThreadPool& pool, JobId id)
{
    // Called with mu_ held; publication of dependency side effects
    // happens-before the worker picks this task up.
    const Clock::time_point ready = Clock::now();
    pool.submit([this, &pool, id, ready] {
        const Clock::time_point start = Clock::now();
        JobContext ctx;
        ctx.id = id;
        ctx.seed = Digest().add(jobs_[id].name).value();
        bool ok = true;
        try {
            jobs_[id].fn(ctx);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mu_);
            if (!first_error_)
                first_error_ = std::current_exception();
            ok = false;
        }
        const Clock::time_point end = Clock::now();
        {
            std::lock_guard<std::mutex> lock(mu_);
            metrics_[id].queue_wait_ms = msBetween(ready, start);
            metrics_[id].run_ms = msBetween(start, end);
            // "ran" distinguishes executed jobs from skipped ones; a
            // job that executed and threw still ran.
            metrics_[id].ran = true;
        }
        onJobDone(pool, id, ok);
    });
}

void
JobGraph::skipDependents(JobId id)
{
    // Called with mu_ held.
    for (JobId dep : jobs_[id].dependents) {
        if (jobs_[dep].skipped)
            continue;
        jobs_[dep].skipped = true;
        ++finished_;
        skipDependents(dep);
    }
}

void
JobGraph::onJobDone(ThreadPool& pool, JobId id, bool ok)
{
    std::lock_guard<std::mutex> lock(mu_);
    ++finished_;
    if (!ok) {
        skipDependents(id);
    } else {
        for (JobId dep : jobs_[id].dependents) {
            if (--jobs_[dep].deps_remaining == 0 &&
                !jobs_[dep].skipped) {
                submitJob(pool, dep);
            }
        }
    }
    if (finished_ == jobs_.size())
        done_cv_.notify_all();
}

void
JobGraph::run(ThreadPool& pool)
{
    PIBE_ASSERT(!ran_, "JobGraph::run may only be called once");
    ran_ = true;
    {
        std::lock_guard<std::mutex> lock(mu_);
        for (JobId id = 0; id < jobs_.size(); ++id) {
            if (jobs_[id].deps_remaining == 0)
                submitJob(pool, id);
        }
    }
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return finished_ == jobs_.size(); });
    if (first_error_)
        std::rethrow_exception(first_error_);
}

} // namespace pibe::runtime
