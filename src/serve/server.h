/**
 * @file
 * `pibe serve` — the optimize/measure/check pipeline as a long-running
 * concurrent service.
 *
 * One daemon process owns:
 *
 *  - the pipeline context (synthetic kernel + canonical training
 *    profile for one KernelConfig), built once on first demand;
 *  - one shared runtime::ThreadPool that every request's job graph is
 *    admitted into, so a heavy optimize cannot starve cheap measures
 *    — fairness comes from the pool, not per-request threads;
 *  - the runtime::ArtifactCache promoted to a shared tier: disk-backed,
 *    LRU-evicted under --cache-budget, safe against concurrent
 *    processes (lockfile + atomic rename);
 *  - a Batcher that single-flights compatible requests (same cache
 *    key) so concurrent duplicates are computed once;
 *  - a registry of decoded images (decode once per image, shared by
 *    every measurement of it);
 *  - a ControlPlane of runtime-togglable knobs (default defense,
 *    admission limit, cache budget, check fail threshold) in the
 *    spec_ctrl debugfs idiom;
 *  - ServeMetrics, exposed via the `metrics` request as JSON or a
 *    Prometheus-style text dump.
 *
 * Determinism: requests resolve through the same staged entry points
 * (core::kernelTextCached / profileTextCached / imageTextCached /
 * measureWorkloadCached) and therefore the same cache keys as the
 * one-shot CLI and the table benchmarks — a daemon answer is
 * bit-identical to the CLI answer for the same request.
 *
 * Request ops: ping, optimize, measure, check, metrics, config,
 * shutdown. See protocol.h for the envelope and DESIGN.md §7 for the
 * full parameter reference.
 */
#ifndef PIBE_SERVE_SERVER_H_
#define PIBE_SERVE_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "harden/harden.h"
#include "kernel/kernel.h"
#include "pibe/engine.h"
#include "runtime/artifact_cache.h"
#include "runtime/thread_pool.h"
#include "serve/batcher.h"
#include "serve/control.h"
#include "serve/json.h"
#include "serve/metrics.h"
#include "serve/session.h"
#include "uarch/decoded_module.h"

namespace pibe::serve {

/** Daemon configuration (CLI flags of `pibe serve`). */
struct ServeOptions
{
    /** Unix socket path ("" = disabled). */
    std::string socket_path = "/tmp/pibe-serve.sock";
    /** Localhost TCP port (-1 = disabled, 0 = ephemeral). */
    int tcp_port = -1;
    /** Shared pool workers (0 = hardware concurrency). */
    unsigned jobs = 0;
    /** Disk cache directory ("" = memory tiers only). */
    std::string cache_dir;
    /** Disk-tier LRU budget in bytes (0 = unlimited). */
    uint64_t cache_budget = 0;
    /** Memory-tier LRU budget in bytes (0 = unlimited). */
    uint64_t mem_budget = 512ull << 20;
    /** The daemon's pipeline context (fixed per process). */
    kernel::KernelConfig kernel;
    uint32_t profile_base_iters = 120;
    /** Concurrent heavy requests admitted (0 = 2 * jobs). */
    unsigned max_inflight = 0;
    /** Defense applied when a request names none (control knob). */
    std::string default_defense = "all";
    /** `check` severity gate when a request names none (knob). */
    std::string fail_on = "error";
    /**
     * Pre-shared token required on TCP connections ("" = open). A
     * TCP session must authenticate with `{"op":"auth","params":
     * {"token":...}}` before any other op; every pre-auth request is
     * refused and counted in ServeMetrics. Unix-socket sessions are
     * trusted via filesystem permissions and never challenged.
     */
    std::string auth_token;
};

/**
 * Parse an OptConfig from request params (icp_budget, inline_budget,
 * inliner, lax). Returns false and sets `error` on invalid values.
 * Exposed so the load generator's --verify path parses params through
 * the exact code the daemon uses.
 */
bool optConfigFromJson(const Json& params, core::OptConfig* out,
                       std::string* error);

/** Adjustable counting gate for request admission. */
class AdmissionGate
{
  public:
    explicit AdmissionGate(unsigned limit) : limit_(limit) {}

    /** Block until a slot frees; returns the wait in ms. */
    double acquire();
    void release();

    /** Runtime-adjustable (control plane); waiters are re-evaluated. */
    void setLimit(unsigned limit);
    unsigned limit() const;

  private:
    mutable std::mutex mu_;
    std::condition_variable cv_;
    unsigned limit_;
    unsigned inflight_ = 0;
};

/** The daemon. */
class Server
{
  public:
    explicit Server(ServeOptions opts);
    ~Server();

    Server(const Server&) = delete;
    Server& operator=(const Server&) = delete;

    /**
     * Bind the configured listeners and start accepting. False if no
     * listener could be bound.
     */
    bool start();

    /**
     * Block until requestStop(), then tear down: stop listeners,
     * close sessions, drain the pool.
     */
    void wait();

    /** Ask the daemon to stop (thread-safe). */
    void requestStop();

    /** Async-signal-safe stop trigger (atomic store only). */
    void requestStopFromSignal() { stop_requested_.store(true); }

    /** Actual TCP port after start() (useful with tcp_port = 0). */
    uint16_t tcpPort() const { return tcp_port_; }

    const ServeOptions& options() const { return opts_; }

    /**
     * Dispatch one request envelope to its op handler and return the
     * response envelope. This is the whole request semantics —
     * sessions call it per frame, tests call it directly.
     */
    Json handle(const Json& request);

    MetricsSnapshot metricsSnapshot() const;

  private:
    /** Pipeline context: kernel + training profile, built once. */
    struct Context
    {
        std::string kernel_text;
        std::unique_ptr<ir::Module> kernel;
        kernel::KernelInfo info;
        std::string profile_text;
        profile::EdgeProfile profile;
    };

    /** One production image, decoded once, shared by measurements. */
    struct ImageEntry
    {
        std::string key;
        std::string text;
        std::unique_ptr<ir::Module> module;
        kernel::KernelInfo info;
        std::shared_ptr<const uarch::DecodedModule> decoded;
        harden::DefenseConfig defense;
    };

    using ContextPtr = std::shared_ptr<const Context>;
    using ImagePtr = std::shared_ptr<const ImageEntry>;

    void registerKnobs();
    ContextPtr context();

    /** Resolve params to an image (build + decode on miss). */
    ImagePtr resolveImage(const Json& params, std::string* error,
                          bool* coalesced);
    ImagePtr imageFromRegistry(const std::string& key);
    void registerImage(ImagePtr entry);

    harden::DefenseConfig defenseFromParams(const Json& params,
                                            std::string* error);

    Json handlePing(const Json& params);
    Json handleOptimize(const Json& params, bool* coalesced);
    Json handleMeasure(const Json& params, bool* coalesced);
    Json handleCheck(const Json& params, bool* coalesced);
    Json handleMetrics(const Json& params);
    Json handleConfig(const Json& params);

    void acceptLoop(int listen_fd, bool requires_auth);
    void reapFinishedSessions();

    /**
     * Per-connection gate in front of handle(): until `authed` flips,
     * only a correct `auth` op is accepted; everything else gets an
     * unauthorized error and bumps the rejected-auth counter.
     */
    Json handleWithAuth(const Json& request,
                        std::atomic<bool>& authed);

    ServeOptions opts_;
    runtime::ArtifactCache cache_;
    runtime::ThreadPool pool_;
    AdmissionGate gate_;
    ServeMetrics metrics_;
    ControlPlane control_;

    Batcher<ContextPtr> context_flight_;
    Batcher<ImagePtr> image_flight_;
    Batcher<core::Measurement> measure_flight_;

    std::mutex ctx_mu_;
    ContextPtr ctx_; ///< Set once by the first context() leader.

    std::mutex images_mu_;
    struct ImageSlot
    {
        ImagePtr entry;
        uint64_t last_use = 0;
    };
    std::map<std::string, ImageSlot> images_;
    uint64_t image_tick_ = 0;

    std::mutex knobs_mu_; ///< Guards the string-valued knob state.
    std::string default_defense_;
    std::string fail_on_;

    std::set<std::string> valid_workloads_;

    // Listener / session plumbing.
    std::vector<int> listen_fds_;
    std::vector<std::thread> accept_threads_;
    uint16_t tcp_port_ = 0;
    int tcp_listen_fd_ = -1;
    struct SessionHandle
    {
        std::unique_ptr<Session> session;
        std::thread thread;
        std::atomic<bool> done{false};
    };
    std::mutex sessions_mu_;
    std::vector<std::unique_ptr<SessionHandle>> sessions_;

    std::atomic<bool> stop_requested_{false};
    std::atomic<bool> stopped_{false};
};

} // namespace pibe::serve

#endif // PIBE_SERVE_SERVER_H_
