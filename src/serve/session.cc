#include "serve/session.h"

#include <sys/socket.h>
#include <unistd.h>

#include "serve/protocol.h"

namespace pibe::serve {

Session::Session(int fd, Handler handler)
    : fd_(fd), handler_(std::move(handler))
{
}

Session::~Session()
{
    if (fd_ >= 0)
        ::close(fd_);
}

void
Session::run()
{
    for (;;) {
        std::optional<std::string> frame = readFrame(fd_);
        if (!frame || closing_.load(std::memory_order_acquire))
            return;
        Json response;
        std::optional<Json> request = Json::parse(*frame);
        if (!request || !request->isObject()) {
            response = makeErrorResponse(0, "malformed request JSON");
        } else {
            response = handler_(*request);
        }
        requests_served_.fetch_add(1, std::memory_order_relaxed);
        if (!writeMessage(fd_, response))
            return; // peer gone mid-response
    }
}

void
Session::forceClose()
{
    bool expected = false;
    if (closing_.compare_exchange_strong(expected, true))
        ::shutdown(fd_, SHUT_RDWR);
}

} // namespace pibe::serve
