#include "serve/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace pibe::serve {

namespace {

/** Recursive-descent parser over a string_view cursor. */
class Parser
{
  public:
    explicit Parser(std::string_view text) : text_(text) {}

    std::optional<Json>
    parseDocument()
    {
        std::optional<Json> v = parseValue();
        if (!v)
            return std::nullopt;
        skipWs();
        if (pos_ != text_.size())
            return std::nullopt; // trailing garbage
        return v;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            ++pos_;
    }

    bool
    consume(char c)
    {
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == c) {
            ++pos_;
            return true;
        }
        return false;
    }

    bool
    literal(std::string_view word)
    {
        if (text_.substr(pos_, word.size()) == word) {
            pos_ += word.size();
            return true;
        }
        return false;
    }

    std::optional<Json>
    parseValue()
    {
        skipWs();
        if (pos_ >= text_.size())
            return std::nullopt;
        // Depth guard: a hostile frame of "[[[[..." must not blow the
        // stack of a daemon session thread.
        if (depth_ > 64)
            return std::nullopt;
        const char c = text_[pos_];
        if (c == 'n')
            return literal("null") ? std::optional<Json>(Json())
                                   : std::nullopt;
        if (c == 't')
            return literal("true") ? std::optional<Json>(Json(true))
                                   : std::nullopt;
        if (c == 'f')
            return literal("false") ? std::optional<Json>(Json(false))
                                    : std::nullopt;
        if (c == '"')
            return parseString();
        if (c == '[')
            return parseArray();
        if (c == '{')
            return parseObject();
        return parseNumber();
    }

    std::optional<Json>
    parseString()
    {
        if (!consume('"'))
            return std::nullopt;
        std::string out;
        while (pos_ < text_.size()) {
            char c = text_[pos_++];
            if (c == '"')
                return Json(std::move(out));
            if (static_cast<unsigned char>(c) < 0x20)
                return std::nullopt; // raw control char
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return std::nullopt;
            const char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'u': {
                  uint32_t code = 0;
                  for (int i = 0; i < 4; ++i) {
                      if (pos_ >= text_.size() ||
                          !std::isxdigit(static_cast<unsigned char>(
                              text_[pos_])))
                          return std::nullopt;
                      const char h = text_[pos_++];
                      code = code * 16 +
                             (h <= '9'   ? h - '0'
                              : h <= 'F' ? h - 'A' + 10
                                         : h - 'a' + 10);
                  }
                  // UTF-8 encode the BMP code point (surrogate pairs
                  // are passed through as two 3-byte sequences, which
                  // is lossy but our payloads are ASCII in practice).
                  if (code < 0x80) {
                      out += static_cast<char>(code);
                  } else if (code < 0x800) {
                      out += static_cast<char>(0xC0 | (code >> 6));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  } else {
                      out += static_cast<char>(0xE0 | (code >> 12));
                      out += static_cast<char>(0x80 |
                                               ((code >> 6) & 0x3F));
                      out += static_cast<char>(0x80 | (code & 0x3F));
                  }
                  break;
              }
              default: return std::nullopt;
            }
        }
        return std::nullopt; // unterminated
    }

    std::optional<Json>
    parseNumber()
    {
        const size_t start = pos_;
        if (pos_ < text_.size() && text_[pos_] == '-')
            ++pos_;
        bool integral = true;
        while (pos_ < text_.size()) {
            const char c = text_[pos_];
            if (std::isdigit(static_cast<unsigned char>(c))) {
                ++pos_;
            } else if (c == '.' || c == 'e' || c == 'E' || c == '+' ||
                       c == '-') {
                integral = false;
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            return std::nullopt;
        const std::string token(text_.substr(start, pos_ - start));
        errno = 0;
        char* end = nullptr;
        if (integral) {
            const long long v = std::strtoll(token.c_str(), &end, 10);
            if (errno == 0 && end && *end == '\0')
                return Json(static_cast<int64_t>(v));
            // fall through to double on overflow
        }
        end = nullptr;
        const double d = std::strtod(token.c_str(), &end);
        if (end == nullptr || *end != '\0' || !std::isfinite(d))
            return std::nullopt;
        return Json(d);
    }

    std::optional<Json>
    parseArray()
    {
        if (!consume('['))
            return std::nullopt;
        Json out = Json::array();
        skipWs();
        if (consume(']'))
            return out;
        ++depth_;
        for (;;) {
            std::optional<Json> v = parseValue();
            if (!v)
                return std::nullopt;
            out.push(std::move(*v));
            if (consume(','))
                continue;
            if (consume(']'))
                break;
            return std::nullopt;
        }
        --depth_;
        return out;
    }

    std::optional<Json>
    parseObject()
    {
        if (!consume('{'))
            return std::nullopt;
        Json out = Json::object();
        skipWs();
        if (consume('}'))
            return out;
        ++depth_;
        for (;;) {
            skipWs();
            std::optional<Json> key = parseString();
            if (!key)
                return std::nullopt;
            if (!consume(':'))
                return std::nullopt;
            std::optional<Json> v = parseValue();
            if (!v)
                return std::nullopt;
            out.set(key->asString(), std::move(*v));
            if (consume(','))
                continue;
            if (consume('}'))
                break;
            return std::nullopt;
        }
        --depth_;
        return out;
    }

    std::string_view text_;
    size_t pos_ = 0;
    int depth_ = 0;
};

void
dumpString(const std::string& s, std::string& out)
{
    out += '"';
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\b': out += "\\b"; break;
          case '\f': out += "\\f"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x",
                              static_cast<unsigned>(
                                  static_cast<unsigned char>(c)));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    out += '"';
}

} // namespace

std::optional<Json>
Json::parse(std::string_view text)
{
    return Parser(text).parseDocument();
}

std::string
Json::dump() const
{
    std::string out;
    switch (type_) {
      case Type::kNull: out = "null"; break;
      case Type::kBool: out = bool_ ? "true" : "false"; break;
      case Type::kNumber: {
          char buf[40];
          if (is_int_) {
              std::snprintf(buf, sizeof(buf), "%lld",
                            static_cast<long long>(int_));
          } else {
              // %.17g round-trips every finite double exactly.
              std::snprintf(buf, sizeof(buf), "%.17g", num_);
          }
          out = buf;
          break;
      }
      case Type::kString: dumpString(str_, out); break;
      case Type::kArray: {
          out = "[";
          for (size_t i = 0; i < arr_.size(); ++i) {
              if (i)
                  out += ",";
              out += arr_[i].dump();
          }
          out += "]";
          break;
      }
      case Type::kObject: {
          out = "{";
          bool first = true;
          for (const auto& [key, value] : obj_) {
              if (!first)
                  out += ",";
              first = false;
              dumpString(key, out);
              out += ":";
              out += value.dump();
          }
          out += "}";
          break;
      }
    }
    return out;
}

bool
Json::asBool(bool fallback) const
{
    return type_ == Type::kBool ? bool_ : fallback;
}

double
Json::asDouble(double fallback) const
{
    return type_ == Type::kNumber ? num_ : fallback;
}

int64_t
Json::asInt(int64_t fallback) const
{
    if (type_ != Type::kNumber)
        return fallback;
    return is_int_ ? int_ : static_cast<int64_t>(num_);
}

const std::string&
Json::asString() const
{
    static const std::string kEmpty;
    return type_ == Type::kString ? str_ : kEmpty;
}

const Json&
Json::nullValue()
{
    static const Json kNull;
    return kNull;
}

const Json&
Json::operator[](const std::string& key) const
{
    if (type_ != Type::kObject)
        return nullValue();
    auto it = obj_.find(key);
    return it == obj_.end() ? nullValue() : it->second;
}

bool
Json::has(const std::string& key) const
{
    return type_ == Type::kObject && obj_.count(key) != 0;
}

Json&
Json::set(const std::string& key, Json value)
{
    type_ = Type::kObject;
    obj_[key] = std::move(value);
    return *this;
}

Json&
Json::push(Json value)
{
    type_ = Type::kArray;
    arr_.push_back(std::move(value));
    return *this;
}

size_t
Json::size() const
{
    if (type_ == Type::kArray)
        return arr_.size();
    if (type_ == Type::kObject)
        return obj_.size();
    return 0;
}

const Json&
Json::at(size_t i) const
{
    if (type_ != Type::kArray || i >= arr_.size())
        return nullValue();
    return arr_[i];
}

} // namespace pibe::serve
