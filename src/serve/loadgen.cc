#include "serve/loadgen.h"

#include <algorithm>
#include <bit>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ir/parser.h"
#include "pibe/engine.h"
#include "profile/serialize.h"
#include "runtime/artifact_cache.h"
#include "serve/client.h"
#include "serve/server.h"
#include "support/logging.h"
#include "support/rng.h"
#include "workload/workload.h"

namespace pibe::serve {

namespace {

using Clock = std::chrono::steady_clock;

/** One scheduled request (immutable once built). */
struct ScheduledRequest
{
    std::string op;
    Json params;
    std::string signature; ///< Canonical op+params (dedup key).
};

/** Image variants the mix draws from (index = variant id). */
Json
variantParams(uint32_t variant)
{
    Json params = Json::object();
    switch (variant % 4) {
    case 0:
        params.set("defense", std::string("all"));
        break;
    case 1:
        params.set("defense", std::string("retpolines"));
        params.set("icp_budget", 0.99);
        break;
    case 2:
        params.set("defense", std::string("none"));
        break;
    default:
        params.set("defense", std::string("jumpswitches"));
        params.set("icp_budget", 0.95);
        params.set("lax", true);
        break;
    }
    return params;
}

std::vector<ScheduledRequest>
buildSchedule(const LoadgenOptions& opts,
              const std::vector<std::string>& workloads)
{
    const uint32_t variants =
        std::clamp<uint32_t>(opts.image_variants, 1, 4);
    Rng rng(opts.seed);
    std::vector<ScheduledRequest> schedule;
    schedule.reserve(opts.requests);
    for (uint32_t i = 0; i < opts.requests; ++i) {
        ScheduledRequest req;
        Json params = variantParams(
            static_cast<uint32_t>(rng.below(variants)));
        const double roll = rng.uniform();
        if (roll < 0.70) {
            req.op = "measure";
            params.set("workload",
                       workloads[rng.below(workloads.size())]);
        } else if (roll < 0.90) {
            req.op = "optimize";
        } else {
            req.op = "check";
        }
        req.signature = req.op + " " + params.dump();
        req.params = std::move(params);
        schedule.push_back(std::move(req));
    }
    return schedule;
}

/** Everything one pass produces. */
struct PassResult
{
    std::vector<double> latency_ms; ///< One entry per request.
    uint64_t failures = 0;
    double wall_s = 0;
};

/** Shared across the pass's client threads. */
struct PassState
{
    std::mutex mu;
    PassResult result;
    /** signature -> measure bit pattern; divergence = nondeterminism. */
    std::map<std::string, std::string>* bits_by_signature;
    uint64_t* bit_mismatches;
    std::vector<std::string>* errors; ///< First few, for the report.
};

Client
connect(const LoadgenOptions& opts)
{
    Client client;
    if (!opts.socket_path.empty() &&
        client.connectUnix(opts.socket_path))
        return client;
    if (opts.tcp_port >= 0 &&
        client.connectTcp(static_cast<uint16_t>(opts.tcp_port))) {
        if (!opts.auth_token.empty() &&
            !client.authenticate(opts.auth_token))
            client.close();
        return client;
    }
    return client;
}

void
clientWorker(const LoadgenOptions& opts,
             const std::vector<ScheduledRequest>& schedule,
             uint32_t client_id, PassState* state)
{
    Client client = connect(opts);
    std::vector<double> latencies;
    std::vector<std::pair<std::string, std::string>> bits;
    std::vector<std::string> errors;
    uint64_t failures = 0;
    for (size_t i = client_id; i < schedule.size();
         i += opts.clients) {
        const ScheduledRequest& req = schedule[i];
        if (!client.connected()) {
            client = connect(opts);
            if (!client.connected()) {
                ++failures;
                if (errors.size() < 5)
                    errors.push_back("connect failed");
                continue;
            }
        }
        const Clock::time_point t0 = Clock::now();
        std::string error;
        std::optional<Json> result =
            client.callOk(req.op, req.params, &error);
        latencies.push_back(
            std::chrono::duration<double, std::milli>(Clock::now() -
                                                      t0)
                .count());
        if (!result) {
            ++failures;
            if (errors.size() < 5)
                errors.push_back(req.signature + ": " + error);
            continue;
        }
        if (req.op == "measure")
            bits.emplace_back(req.signature,
                              (*result)["latency_bits"].asString() +
                                  ":" +
                                  (*result)["ops_bits"].asString());
    }
    std::lock_guard<std::mutex> lock(state->mu);
    state->result.latency_ms.insert(state->result.latency_ms.end(),
                                    latencies.begin(),
                                    latencies.end());
    state->result.failures += failures;
    for (const std::string& e : errors)
        if (state->errors->size() < 10)
            state->errors->push_back(e);
    for (auto& [sig, b] : bits) {
        auto [it, inserted] =
            state->bits_by_signature->emplace(sig, b);
        if (!inserted && it->second != b)
            ++*state->bit_mismatches;
    }
}

PassResult
runPass(const LoadgenOptions& opts,
        const std::vector<ScheduledRequest>& schedule,
        std::map<std::string, std::string>* bits_by_signature,
        uint64_t* bit_mismatches, std::vector<std::string>* errors)
{
    PassState state;
    state.bits_by_signature = bits_by_signature;
    state.bit_mismatches = bit_mismatches;
    state.errors = errors;
    const Clock::time_point t0 = Clock::now();
    std::vector<std::thread> threads;
    for (uint32_t c = 0; c < opts.clients; ++c)
        threads.emplace_back(clientWorker, std::cref(opts),
                             std::cref(schedule), c, &state);
    for (auto& t : threads)
        t.join();
    state.result.wall_s =
        std::chrono::duration<double>(Clock::now() - t0).count();
    return std::move(state.result);
}

double
percentile(std::vector<double> sorted, double p)
{
    if (sorted.empty())
        return 0;
    const size_t idx = std::min(
        sorted.size() - 1,
        static_cast<size_t>(p * static_cast<double>(sorted.size())));
    return sorted[idx];
}

Json
passJson(const std::string& name, const PassResult& pass)
{
    std::vector<double> sorted = pass.latency_ms;
    std::sort(sorted.begin(), sorted.end());
    double total = 0;
    for (double ms : sorted)
        total += ms;
    Json json = Json::object();
    json.set("name", name);
    json.set("requests", static_cast<int64_t>(sorted.size()));
    json.set("failures", static_cast<int64_t>(pass.failures));
    json.set("p50_ms", percentile(sorted, 0.50));
    json.set("p99_ms", percentile(sorted, 0.99));
    json.set("mean_ms",
             sorted.empty() ? 0.0
                            : total / static_cast<double>(sorted.size()));
    json.set("wall_s", pass.wall_s);
    json.set("throughput_rps",
             pass.wall_s > 0
                 ? static_cast<double>(sorted.size()) / pass.wall_s
                 : 0.0);
    return json;
}

/**
 * Recompute up to `opts.verify` sampled measure signatures in-process
 * through the staged engine entry points (the daemon's exact code
 * path) and demand bit-identical agreement with the daemon's answers.
 */
uint64_t
verifyInProcess(const LoadgenOptions& opts, Client& client,
                const std::vector<ScheduledRequest>& schedule,
                const std::map<std::string, std::string>&
                    bits_by_signature)
{
    std::string error;
    std::optional<Json> pong =
        client.callOk("ping", Json::object(), &error);
    if (!pong) {
        warn("loadgen: verify skipped, ping failed: ", error);
        return 0;
    }
    kernel::KernelConfig cfg;
    cfg.num_drivers =
        static_cast<uint32_t>((*pong)["drivers"].asInt(cfg.num_drivers));
    cfg.seed = static_cast<uint64_t>((*pong)["seed"].asInt(cfg.seed));
    const uint32_t profile_iters = static_cast<uint32_t>(
        (*pong)["profile_iters"].asInt(120));

    runtime::ArtifactCache cache; // local, memory-only
    const std::string kernel_text =
        core::kernelTextCached(cfg, &cache);
    const ir::Module kernel = ir::parseModule(kernel_text);
    const kernel::KernelInfo info =
        kernel::kernelInfoFromModule(kernel);
    const std::string profile_text = core::profileTextCached(
        kernel_text, kernel, info, profile_iters, &cache);
    const profile::EdgeProfile profile =
        profile::liftProfile(kernel, profile_text);

    uint64_t mismatches = 0;
    uint32_t checked = 0;
    std::map<std::string, bool> seen;
    for (const ScheduledRequest& req : schedule) {
        if (checked >= opts.verify)
            break;
        if (req.op != "measure" || seen.count(req.signature))
            continue;
        seen[req.signature] = true;
        auto daemon_bits = bits_by_signature.find(req.signature);
        if (daemon_bits == bits_by_signature.end())
            continue; // that request never succeeded

        core::OptConfig opt;
        std::string opt_error;
        if (!optConfigFromJson(req.params, &opt, &opt_error)) {
            warn("loadgen: verify cannot parse params: ", opt_error);
            continue;
        }
        std::optional<harden::DefenseConfig> defense =
            harden::defenseByName(req.params["defense"].asString());
        if (!defense)
            continue;
        const std::string image_text = core::imageTextCached(
            kernel_text, kernel, profile_text, profile, opt, *defense,
            &cache);
        const ir::Module image = ir::parseModule(image_text);
        const kernel::KernelInfo image_info =
            kernel::kernelInfoFromModule(image);
        auto decoded =
            std::make_shared<const uarch::DecodedModule>(image);
        const core::Measurement m = core::measureWorkloadCached(
            image_text, decoded, image_info,
            req.params["workload"].asString(), core::MeasureConfig{},
            &cache);
        const std::string local_bits =
            std::to_string(std::bit_cast<uint64_t>(m.latency_us)) +
            ":" +
            std::to_string(std::bit_cast<uint64_t>(m.ops_per_sec));
        ++checked;
        if (local_bits != daemon_bits->second) {
            ++mismatches;
            warn("loadgen: verify mismatch on ", req.signature,
                 " (daemon ", daemon_bits->second, ", local ",
                 local_bits, ")");
        }
    }
    inform("loadgen: verified ", checked,
           " measure results in-process, ", mismatches, " mismatches");
    return mismatches;
}

} // namespace

int
runLoadgen(const LoadgenOptions& opts)
{
    // Workload pool: a deterministic subset of the LMBench suite so
    // unique (image, workload) pairs stay bounded while the mix still
    // exercises coalescing and the cache.
    std::vector<std::string> all_names;
    for (const auto& wl : workload::makeLmbenchSuite())
        all_names.push_back(wl->name());
    Rng pick(opts.seed ^ 0x10adull);
    std::vector<std::string> workloads;
    while (workloads.size() < 6 && workloads.size() < all_names.size()) {
        const std::string& name =
            all_names[pick.below(all_names.size())];
        if (std::find(workloads.begin(), workloads.end(), name) ==
            workloads.end())
            workloads.push_back(name);
    }

    const std::vector<ScheduledRequest> schedule =
        buildSchedule(opts, workloads);
    inform("loadgen: ", schedule.size(), " requests x 2 passes, ",
           opts.clients, " clients, ",
           std::min<uint32_t>(opts.image_variants, 4),
           " image variants");

    std::map<std::string, std::string> bits_by_signature;
    uint64_t bit_mismatches = 0;
    std::vector<std::string> errors;

    PassResult cold = runPass(opts, schedule, &bits_by_signature,
                              &bit_mismatches, &errors);
    inform("loadgen: cold pass done (", cold.failures, " failures, ",
           cold.wall_s, " s)");
    PassResult warm = runPass(opts, schedule, &bits_by_signature,
                              &bit_mismatches, &errors);
    inform("loadgen: warm pass done (", warm.failures, " failures, ",
           warm.wall_s, " s)");

    Client control = connect(opts);
    uint64_t verify_mismatches = 0;
    if (opts.verify > 0 && control.connected())
        verify_mismatches = verifyInProcess(opts, control, schedule,
                                            bits_by_signature);

    Json report = Json::object();
    report.set("tool", std::string("pibe loadgen"));
    report.set("requests_per_pass",
               static_cast<int64_t>(schedule.size()));
    report.set("clients", static_cast<int64_t>(opts.clients));
    report.set("seed", static_cast<int64_t>(opts.seed));
    Json passes = Json::array();
    passes.push(passJson("cold", cold));
    passes.push(passJson("warm", warm));
    report.set("passes", passes);
    report.set("failures",
               static_cast<int64_t>(cold.failures + warm.failures));
    report.set("bit_mismatches",
               static_cast<int64_t>(bit_mismatches));
    report.set("verified_in_process",
               static_cast<int64_t>(opts.verify));
    report.set("verify_mismatches",
               static_cast<int64_t>(verify_mismatches));
    if (!errors.empty()) {
        Json errs = Json::array();
        for (const std::string& e : errors)
            errs.push(e);
        report.set("errors", errs);
    }
    if (control.connected()) {
        std::string error;
        if (std::optional<Json> metrics =
                control.callOk("metrics", Json::object(), &error))
            report.set("server_metrics", *metrics);
    }

    if (!opts.out_path.empty()) {
        std::ofstream out(opts.out_path);
        out << report.dump() << "\n";
        if (out.good())
            inform("loadgen: wrote ", opts.out_path);
        else
            warn("loadgen: failed writing ", opts.out_path);
    }

    const bool ok = cold.failures == 0 && warm.failures == 0 &&
                    bit_mismatches == 0 && verify_mismatches == 0;
    inform("loadgen: ", ok ? "PASS" : "FAIL", " (cold p50 ",
           passJson("cold", cold)["p50_ms"].asDouble(), " ms, warm p50 ",
           passJson("warm", warm)["p50_ms"].asDouble(), " ms)");
    return ok ? 0 : 1;
}

} // namespace pibe::serve
