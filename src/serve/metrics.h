/**
 * @file
 * Request-level metrics of the serve daemon.
 *
 * Counters are cumulative since boot; latency is kept as a capped
 * sample buffer (uniform reservoir once full) so p50/p99 stay cheap
 * and bounded no matter how long the daemon runs. Snapshots render as
 * JSON (the `metrics` request) or as a Prometheus-style text dump
 * (`metrics` with {"format":"text"}) for scrape-style consumers.
 */
#ifndef PIBE_SERVE_METRICS_H_
#define PIBE_SERVE_METRICS_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "runtime/artifact_cache.h"
#include "serve/json.h"
#include "support/rng.h"

namespace pibe::serve {

/** Aggregate view of one op's requests. */
struct OpStats
{
    uint64_t requests = 0;
    uint64_t failures = 0;
    uint64_t coalesced = 0; ///< Served by joining an in-flight twin.
    double ms_total = 0;
};

/** Point-in-time copy of every counter. */
struct MetricsSnapshot
{
    std::map<std::string, OpStats> by_op;
    uint64_t requests = 0;
    uint64_t failures = 0;
    uint64_t coalesced = 0;
    uint64_t connections = 0;        ///< Accepted since boot.
    uint64_t auth_rejected = 0;      ///< Requests refused pre-auth.
    uint32_t inflight = 0;           ///< Requests being handled now.
    uint32_t peak_inflight = 0;
    double admission_wait_ms_total = 0;
    double uptime_s = 0;
    double p50_ms = 0; ///< Over the latency reservoir.
    double p99_ms = 0;
    runtime::CacheStats cache;

    Json toJson() const;
    /** Prometheus-style `# HELP`-free text exposition. */
    std::string renderText() const;
};

/** Thread-safe metrics registry. */
class ServeMetrics
{
  public:
    ServeMetrics();

    /** Record one handled request. */
    void recordRequest(const std::string& op, bool ok, double ms,
                       bool coalesced);

    /** Record time spent waiting for an admission slot. */
    void recordAdmissionWait(double ms);

    void recordConnection();

    /** A request was refused on an unauthenticated connection. */
    void recordAuthReject();

    /** Request-handling began (gauge up). */
    void enterRequest();
    /** Request-handling finished (gauge down). */
    void leaveRequest();

    /** Snapshot all counters; `cache` stats are merged in. */
    MetricsSnapshot snapshot(const runtime::CacheStats& cache) const;

  private:
    mutable std::mutex mu_;
    std::map<std::string, OpStats> by_op_;
    uint64_t connections_ = 0;
    uint64_t auth_rejected_ = 0;
    uint32_t inflight_ = 0;
    uint32_t peak_inflight_ = 0;
    double admission_wait_ms_total_ = 0;
    uint64_t samples_seen_ = 0;
    std::vector<double> latency_ms_; ///< Reservoir, capped.
    Rng reservoir_rng_;
    double boot_epoch_ms_ = 0;
};

} // namespace pibe::serve

#endif // PIBE_SERVE_METRICS_H_
