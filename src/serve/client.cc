#include "serve/client.h"

#include <unistd.h>

#include <utility>

#include "serve/protocol.h"

namespace pibe::serve {

Client::~Client()
{
    close();
}

Client::Client(Client&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_)
{
}

Client&
Client::operator=(Client&& other) noexcept
{
    if (this != &other) {
        close();
        fd_ = std::exchange(other.fd_, -1);
        next_id_ = other.next_id_;
    }
    return *this;
}

bool
Client::connectUnix(const std::string& path)
{
    close();
    fd_ = serve::connectUnix(path);
    return fd_ >= 0;
}

bool
Client::connectTcp(uint16_t port)
{
    close();
    fd_ = serve::connectTcp("127.0.0.1", port);
    return fd_ >= 0;
}

void
Client::close()
{
    if (fd_ >= 0) {
        ::close(fd_);
        fd_ = -1;
    }
}

std::optional<Json>
Client::call(const std::string& op, Json params)
{
    if (fd_ < 0)
        return std::nullopt;
    const uint64_t id = next_id_++;
    if (!writeMessage(fd_, makeRequest(id, op, std::move(params)))) {
        close();
        return std::nullopt;
    }
    std::optional<Json> response = readMessage(fd_);
    if (!response)
        close();
    return response;
}

std::optional<Json>
Client::callOk(const std::string& op, Json params, std::string* error)
{
    std::optional<Json> response = call(op, std::move(params));
    if (!response) {
        if (error)
            *error = "transport failure";
        return std::nullopt;
    }
    if (!(*response)["ok"].asBool(false)) {
        if (error)
            *error = (*response)["error"].asString();
        return std::nullopt;
    }
    return (*response)["result"];
}

bool
Client::authenticate(const std::string& token, std::string* error)
{
    Json params = Json::object();
    params.set("token", token);
    return callOk("auth", std::move(params), error).has_value();
}

} // namespace pibe::serve
