/**
 * @file
 * `pibe loadgen` — concurrent load generator for a serve daemon.
 *
 * Replays a deterministic (seeded) schedule of mixed requests —
 * roughly 70% measure, 20% optimize, 10% check over a small pool of
 * image variants — from `clients` concurrent connections, twice: pass
 * "cold" against the daemon's fresh caches, pass "warm" replaying the
 * identical schedule. Per-pass p50/p99/mean latency and throughput
 * land in a BENCH_serve.json; warm p50 below cold p50 is the
 * acceptance signal that the shared cache tier is doing its job.
 *
 * Determinism checks ride along for free: every measure response's
 * bit pattern is recorded per request signature, and a signature that
 * ever answers with two different bit patterns (across clients or
 * passes) is counted as a mismatch and fails the run. `verify > 0`
 * additionally recomputes that many sampled measure results
 * in-process through the same staged engine entry points the daemon
 * uses and demands bit-identical agreement.
 */
#ifndef PIBE_SERVE_LOADGEN_H_
#define PIBE_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>

namespace pibe::serve {

/** CLI flags of `pibe loadgen`. */
struct LoadgenOptions
{
    /** Unix socket of the daemon ("" = use tcp_port). */
    std::string socket_path = "/tmp/pibe-serve.sock";
    int tcp_port = -1;
    /** Requests per pass (two passes are run). */
    uint32_t requests = 500;
    /** Concurrent client connections. */
    uint32_t clients = 8;
    /** Schedule seed (same seed = same request stream). */
    uint64_t seed = 1;
    /** Distinct image variants in the mix (1..4). */
    uint32_t image_variants = 2;
    /** Measure results to recompute in-process (0 = off). */
    uint32_t verify = 0;
    /** Output report path ("" = no file). */
    std::string out_path = "BENCH_serve.json";
    /** Pre-shared token for token-gated TCP daemons ("" = none). */
    std::string auth_token;
};

/**
 * Run the load. Returns 0 when every request of both passes succeeded
 * and every determinism check held, 1 otherwise.
 */
int runLoadgen(const LoadgenOptions& opts);

} // namespace pibe::serve

#endif // PIBE_SERVE_LOADGEN_H_
