#include "serve/server.h"

#include <sys/socket.h>
#include <unistd.h>

#include <bit>
#include <chrono>
#include <cstdlib>
#include <exception>

#include "check/checks.h"
#include "ir/parser.h"
#include "profile/serialize.h"
#include "serve/protocol.h"
#include "support/logging.h"
#include "workload/workload.h"

namespace pibe::serve {

namespace {

using Clock = std::chrono::steady_clock;

/** Decoded images kept hot in the registry (LRU beyond this). */
constexpr size_t kMaxDecodedImages = 16;

double
msSince(Clock::time_point t0)
{
    return std::chrono::duration<double, std::milli>(Clock::now() - t0)
        .count();
}

/** Strict non-negative integer parse ("" and junk rejected). */
std::optional<uint64_t>
parseUint(const std::string& s)
{
    if (s.empty())
        return std::nullopt;
    uint64_t v = 0;
    for (const char c : s) {
        if (c < '0' || c > '9')
            return std::nullopt;
        if (v > (UINT64_MAX - (c - '0')) / 10)
            return std::nullopt;
        v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    return v;
}

/** RAII pairing for the gate + inflight metrics gauge. */
class Admission
{
  public:
    Admission(AdmissionGate& gate, ServeMetrics& metrics)
        : gate_(gate), metrics_(metrics)
    {
        metrics_.recordAdmissionWait(gate_.acquire());
        metrics_.enterRequest();
    }

    ~Admission()
    {
        metrics_.leaveRequest();
        gate_.release();
    }

  private:
    AdmissionGate& gate_;
    ServeMetrics& metrics_;
};

} // namespace

// ---------------------------------------------------------------------
// Shared param parsing (daemon and loadgen --verify).

bool
optConfigFromJson(const Json& params, core::OptConfig* out,
                  std::string* error)
{
    core::OptConfig opt;
    if (params.has("icp_budget")) {
        const double v = params["icp_budget"].asDouble(-1);
        if (!(v >= 0 && v <= 1)) {
            *error = "icp_budget must be in [0, 1]";
            return false;
        }
        opt.icp_budget = v;
    }
    if (params.has("inline_budget")) {
        const double v = params["inline_budget"].asDouble(-1);
        if (!(v >= 0 && v <= 1)) {
            *error = "inline_budget must be in [0, 1]";
            return false;
        }
        opt.inline_budget = v;
    }
    opt.lax_heuristics = params["lax"].asBool(false);
    if (params.has("inliner")) {
        const std::string& name = params["inliner"].asString();
        if (name == "pibe")
            opt.inliner = core::InlinerKind::kPibe;
        else if (name == "default")
            opt.inliner = core::InlinerKind::kDefaultLlvm;
        else if (name == "none")
            opt.inliner = core::InlinerKind::kNone;
        else {
            *error = "unknown inliner '" + name +
                     "' (expected pibe, default, none)";
            return false;
        }
    }
    *out = opt;
    return true;
}

// ---------------------------------------------------------------------
// AdmissionGate

double
AdmissionGate::acquire()
{
    const Clock::time_point t0 = Clock::now();
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [this] { return inflight_ < limit_; });
    ++inflight_;
    return msSince(t0);
}

void
AdmissionGate::release()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        --inflight_;
    }
    cv_.notify_one();
}

void
AdmissionGate::setLimit(unsigned limit)
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        limit_ = limit;
    }
    cv_.notify_all();
}

unsigned
AdmissionGate::limit() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return limit_;
}

// ---------------------------------------------------------------------
// Server

Server::Server(ServeOptions opts)
    : opts_(std::move(opts)),
      pool_(opts_.jobs != 0 ? opts_.jobs
                            : std::max(1u,
                                       std::thread::
                                           hardware_concurrency())),
      gate_(opts_.max_inflight != 0
                ? opts_.max_inflight
                : 2 * static_cast<unsigned>(pool_.size())),
      default_defense_(opts_.default_defense),
      fail_on_(opts_.fail_on)
{
    PIBE_ASSERT(harden::defenseByName(default_defense_).has_value(),
                "serve: unknown default defense '", default_defense_,
                "'");
    PIBE_ASSERT(check::severityFromName(fail_on_).has_value(),
                "serve: unknown fail-on severity '", fail_on_, "'");
    if (!opts_.cache_dir.empty())
        cache_.setDiskDir(opts_.cache_dir);
    if (opts_.cache_budget != 0)
        cache_.setDiskBudget(opts_.cache_budget);
    if (opts_.mem_budget != 0)
        cache_.setMemoryBudget(opts_.mem_budget);
    for (const auto& wl : workload::makeLmbenchSuite())
        valid_workloads_.insert(wl->name());
    valid_workloads_.insert("nginx");
    valid_workloads_.insert("apache");
    valid_workloads_.insert("dbench");
    registerKnobs();
}

Server::~Server()
{
    requestStop();
    wait();
}

void
Server::registerKnobs()
{
    control_.registerKnob(
        "default_defense",
        "DefenseConfig applied to requests that name none "
        "(none|retpolines|ret-retpolines|lvi|all|jumpswitches)",
        [this] {
            std::lock_guard<std::mutex> lock(knobs_mu_);
            return default_defense_;
        },
        [this](const std::string& v) -> std::optional<std::string> {
            if (!harden::defenseByName(v))
                return "unknown defense '" + v + "'";
            std::lock_guard<std::mutex> lock(knobs_mu_);
            default_defense_ = v;
            return std::nullopt;
        });
    control_.registerKnob(
        "fail_on",
        "severity at or above which `check` requests fail "
        "(note|warn|error)",
        [this] {
            std::lock_guard<std::mutex> lock(knobs_mu_);
            return fail_on_;
        },
        [this](const std::string& v) -> std::optional<std::string> {
            if (!check::severityFromName(v))
                return "unknown severity '" + v + "'";
            std::lock_guard<std::mutex> lock(knobs_mu_);
            fail_on_ = v;
            return std::nullopt;
        });
    control_.registerKnob(
        "max_inflight",
        "heavy requests admitted concurrently (job limit)",
        [this] { return std::to_string(gate_.limit()); },
        [this](const std::string& v) -> std::optional<std::string> {
            std::optional<uint64_t> n = parseUint(v);
            if (!n || *n == 0 || *n > 1u << 16)
                return "max_inflight must be in [1, 65536]";
            gate_.setLimit(static_cast<unsigned>(*n));
            return std::nullopt;
        });
    control_.registerKnob(
        "cache_budget",
        "disk cache LRU budget in bytes (0 = unlimited)",
        [this] {
            std::lock_guard<std::mutex> lock(knobs_mu_);
            return std::to_string(opts_.cache_budget);
        },
        [this](const std::string& v) -> std::optional<std::string> {
            std::optional<uint64_t> n = parseUint(v);
            if (!n)
                return "cache_budget must be a byte count";
            {
                std::lock_guard<std::mutex> lock(knobs_mu_);
                opts_.cache_budget = *n;
            }
            cache_.setDiskBudget(*n);
            return std::nullopt;
        });
}

Server::ContextPtr
Server::context()
{
    {
        std::lock_guard<std::mutex> lock(ctx_mu_);
        if (ctx_)
            return ctx_;
    }
    // Single-flight: the first request builds the kernel and its
    // training profile (through the cache) as a job graph on the
    // shared pool; concurrent first-requests wait for that flight.
    return context_flight_.run("context", [this]() -> ContextPtr {
        auto ctx = std::make_shared<Context>();
        runtime::JobGraph graph;
        const runtime::JobId kernel_job = graph.add(
            "serve:kernel", [&](const runtime::JobContext&) {
                ctx->kernel_text =
                    core::kernelTextCached(opts_.kernel, &cache_);
                ctx->kernel = std::make_unique<ir::Module>(
                    ir::parseModule(ctx->kernel_text));
                ctx->info =
                    kernel::kernelInfoFromModule(*ctx->kernel);
            });
        graph.add(
            "serve:profile",
            [&](const runtime::JobContext&) {
                ctx->profile_text = core::profileTextCached(
                    ctx->kernel_text, *ctx->kernel, ctx->info,
                    opts_.profile_base_iters, &cache_);
                ctx->profile = profile::liftProfile(
                    *ctx->kernel, ctx->profile_text);
            },
            {kernel_job});
        graph.run(pool_);
        std::lock_guard<std::mutex> lock(ctx_mu_);
        ctx_ = ctx;
        return ctx_;
    });
}

harden::DefenseConfig
Server::defenseFromParams(const Json& params, std::string* error)
{
    std::string name = params["defense"].asString();
    if (name.empty()) {
        std::lock_guard<std::mutex> lock(knobs_mu_);
        name = default_defense_;
    }
    std::optional<harden::DefenseConfig> defense =
        harden::defenseByName(name);
    if (!defense) {
        *error = "unknown defense '" + name + "'";
        return {};
    }
    return *defense;
}

Server::ImagePtr
Server::imageFromRegistry(const std::string& key)
{
    std::lock_guard<std::mutex> lock(images_mu_);
    auto it = images_.find(key);
    if (it == images_.end())
        return nullptr;
    it->second.last_use = ++image_tick_;
    return it->second.entry;
}

void
Server::registerImage(ImagePtr entry)
{
    std::lock_guard<std::mutex> lock(images_mu_);
    ImageSlot& slot = images_[entry->key];
    slot.entry = std::move(entry);
    slot.last_use = ++image_tick_;
    while (images_.size() > kMaxDecodedImages) {
        auto oldest = images_.begin();
        for (auto it = images_.begin(); it != images_.end(); ++it)
            if (it->second.last_use < oldest->second.last_use)
                oldest = it;
        images_.erase(oldest);
    }
}

Server::ImagePtr
Server::resolveImage(const Json& params, std::string* error,
                     bool* coalesced)
{
    // Fast path: an explicit image key from a prior optimize.
    if (params.has("image")) {
        const std::string& key = params["image"].asString();
        if (ImagePtr entry = imageFromRegistry(key))
            return entry;
        *error = "unknown image key '" + key +
                 "' (evicted or never built here; re-optimize)";
        return nullptr;
    }

    core::OptConfig opt;
    if (!optConfigFromJson(params, &opt, error))
        return nullptr;
    harden::DefenseConfig defense = defenseFromParams(params, error);
    if (!error->empty())
        return nullptr;

    ContextPtr ctx = context();
    const std::string key = core::imageCacheKey(
        ctx->kernel_text, ctx->profile_text, opt, defense);
    if (ImagePtr entry = imageFromRegistry(key))
        return entry;

    BatchRole role = BatchRole::kLeader;
    ImagePtr entry = image_flight_.run(
        key,
        [&]() -> ImagePtr {
            auto built = std::make_shared<ImageEntry>();
            built->key = key;
            built->defense = defense;
            runtime::JobGraph graph;
            graph.add("serve:image:" + key,
                      [&](const runtime::JobContext&) {
                          built->text = core::imageTextCached(
                              ctx->kernel_text, *ctx->kernel,
                              ctx->profile_text, ctx->profile, opt,
                              defense, &cache_);
                          built->module =
                              std::make_unique<ir::Module>(
                                  ir::parseModule(built->text));
                          built->info = kernel::kernelInfoFromModule(
                              *built->module);
                          built->decoded = std::make_shared<
                              const uarch::DecodedModule>(
                              *built->module);
                      });
            graph.run(pool_);
            registerImage(built);
            return built;
        },
        &role);
    if (coalesced && role == BatchRole::kFollower)
        *coalesced = true;
    return entry;
}

Json
Server::handlePing(const Json&)
{
    Json result = Json::object();
    result.set("pong", true);
    result.set("jobs", static_cast<int64_t>(pool_.size()));
    result.set("drivers",
               static_cast<int64_t>(opts_.kernel.num_drivers));
    result.set("seed", static_cast<int64_t>(opts_.kernel.seed));
    result.set("profile_iters",
               static_cast<int64_t>(opts_.profile_base_iters));
    return result;
}

Json
Server::handleOptimize(const Json& params, bool* coalesced)
{
    Admission slot(gate_, metrics_);
    std::string error;
    ImagePtr entry = resolveImage(params, &error, coalesced);
    if (!entry)
        throw std::runtime_error(error);
    Json result = Json::object();
    result.set("image", entry->key);
    result.set("bytes", static_cast<int64_t>(entry->text.size()));
    result.set("functions",
               static_cast<int64_t>(entry->module->numFunctions()));
    result.set("defense", entry->defense.name());
    if (params["want_text"].asBool(false))
        result.set("text", entry->text);
    return result;
}

Json
Server::handleMeasure(const Json& params, bool* coalesced)
{
    Admission slot(gate_, metrics_);
    const std::string& workload = params["workload"].asString();
    if (valid_workloads_.count(workload) == 0)
        throw std::runtime_error("unknown workload '" + workload +
                                 "'");
    std::string error;
    ImagePtr entry = resolveImage(params, &error, coalesced);
    if (!entry)
        throw std::runtime_error(error);

    const core::MeasureConfig config;
    BatchRole role = BatchRole::kLeader;
    core::Measurement m = measure_flight_.run(
        "measure:" + entry->key + ":" + workload,
        [&]() -> core::Measurement {
            core::Measurement out;
            runtime::JobGraph graph;
            graph.add("serve:measure:" + workload,
                      [&](const runtime::JobContext&) {
                          out = core::measureWorkloadCached(
                              entry->text, entry->decoded,
                              entry->info, workload, config, &cache_);
                      });
            graph.run(pool_);
            return out;
        },
        &role);
    if (coalesced && role == BatchRole::kFollower)
        *coalesced = true;

    Json result = Json::object();
    result.set("image", entry->key);
    result.set("workload", workload);
    result.set("latency_us", m.latency_us);
    result.set("ops_per_sec", m.ops_per_sec);
    // Bit patterns ride along as decimal strings so clients can
    // assert bit-identical equality with a CLI run of the same
    // request (doubles also round-trip via %.17g, this is belt and
    // braces).
    result.set("latency_bits",
               std::to_string(std::bit_cast<uint64_t>(m.latency_us)));
    result.set("ops_bits",
               std::to_string(std::bit_cast<uint64_t>(m.ops_per_sec)));
    result.set("instructions",
               static_cast<int64_t>(m.stats.instructions));
    result.set("cycles", static_cast<int64_t>(m.stats.cycles));
    return result;
}

Json
Server::handleCheck(const Json& params, bool* coalesced)
{
    Admission slot(gate_, metrics_);
    std::string error;
    ImagePtr entry = resolveImage(params, &error, coalesced);
    if (!entry)
        throw std::runtime_error(error);

    std::string fail_name = params["fail_on"].asString();
    if (fail_name.empty()) {
        std::lock_guard<std::mutex> lock(knobs_mu_);
        fail_name = fail_on_;
    }
    std::optional<check::Severity> fail_on =
        check::severityFromName(fail_name);
    if (!fail_on)
        throw std::runtime_error("unknown fail_on severity '" +
                                 fail_name + "'");

    check::CheckOptions copts;
    copts.coverage = true;
    copts.defense = entry->defense;
    // The one shared gate (`runChecksWithPolicy`) guarantees the
    // daemon's verdict matches `pibe check --fail-on` exactly.
    check::CheckOutcome outcome =
        check::runChecksWithPolicy(*entry->module, copts, *fail_on);

    Json result = Json::object();
    result.set("image", entry->key);
    result.set("errors",
               static_cast<int64_t>(outcome.report.errors()));
    result.set("warnings",
               static_cast<int64_t>(outcome.report.warnings()));
    result.set("notes", static_cast<int64_t>(outcome.report.notes()));
    result.set("fail_on", fail_name);
    result.set("passed", outcome.passed);
    return result;
}

Json
Server::handleMetrics(const Json& params)
{
    const MetricsSnapshot snap = metrics_.snapshot(cache_.stats());
    if (params["format"].asString() == "text") {
        Json result = Json::object();
        result.set("text", snap.renderText());
        return result;
    }
    return snap.toJson();
}

Json
Server::handleConfig(const Json& params)
{
    const std::string& action = params["action"].asString();
    if (action == "list" || action.empty())
        return control_.list();
    const std::string& name = params["name"].asString();
    if (action == "get") {
        std::optional<std::string> value = control_.get(name);
        if (!value)
            throw std::runtime_error("unknown config knob '" + name +
                                     "'");
        Json result = Json::object();
        result.set("name", name);
        result.set("value", *value);
        return result;
    }
    if (action == "set") {
        const std::string& value = params["value"].asString();
        if (std::optional<std::string> err =
                control_.set(name, value))
            throw std::runtime_error(*err);
        Json result = Json::object();
        result.set("name", name);
        result.set("value", *control_.get(name));
        return result;
    }
    throw std::runtime_error("unknown config action '" + action +
                             "' (expected list, get, set)");
}

Json
Server::handle(const Json& request)
{
    const uint64_t id =
        static_cast<uint64_t>(request["id"].asInt(0));
    const std::string& op = request["op"].asString();
    const Json& params = request["params"];
    const Clock::time_point t0 = Clock::now();
    bool ok = true;
    bool coalesced = false;
    Json response;
    try {
        if (op == "ping") {
            response = makeResponse(id, handlePing(params));
        } else if (op == "auth") {
            // Reaching the dispatcher means the connection is already
            // trusted (unix socket, authed TCP, or no token set), so
            // auth is an idempotent success; clients may send it
            // unconditionally.
            Json result = Json::object();
            result.set("authenticated", true);
            response = makeResponse(id, result);
        } else if (op == "optimize") {
            response =
                makeResponse(id, handleOptimize(params, &coalesced));
        } else if (op == "measure") {
            response =
                makeResponse(id, handleMeasure(params, &coalesced));
        } else if (op == "check") {
            response =
                makeResponse(id, handleCheck(params, &coalesced));
        } else if (op == "metrics") {
            response = makeResponse(id, handleMetrics(params));
        } else if (op == "config") {
            response = makeResponse(id, handleConfig(params));
        } else if (op == "shutdown") {
            Json result = Json::object();
            result.set("stopping", true);
            response = makeResponse(id, result);
            requestStop();
        } else {
            ok = false;
            response = makeErrorResponse(
                id, "unknown op '" + op + "'");
        }
    } catch (const std::exception& e) {
        ok = false;
        response = makeErrorResponse(id, e.what());
    }
    metrics_.recordRequest(op.empty() ? "<none>" : op, ok,
                           msSince(t0), coalesced);
    return response;
}

MetricsSnapshot
Server::metricsSnapshot() const
{
    return metrics_.snapshot(cache_.stats());
}

// ---------------------------------------------------------------------
// Listener plumbing.

bool
Server::start()
{
    if (!opts_.socket_path.empty()) {
        const int fd = listenUnix(opts_.socket_path);
        if (fd >= 0) {
            listen_fds_.push_back(fd);
            inform("serve: listening on unix:", opts_.socket_path);
        }
    }
    if (opts_.tcp_port >= 0) {
        uint16_t port = 0;
        const int fd =
            listenTcp(static_cast<uint16_t>(opts_.tcp_port), &port);
        if (fd >= 0) {
            listen_fds_.push_back(fd);
            tcp_port_ = port;
            tcp_listen_fd_ = fd;
            inform("serve: listening on tcp:127.0.0.1:", port,
                   opts_.auth_token.empty() ? "" : " (token auth)");
        }
    }
    if (listen_fds_.empty()) {
        warn("serve: no listener could be bound");
        return false;
    }
    for (const int fd : listen_fds_) {
        const bool requires_auth =
            fd == tcp_listen_fd_ && !opts_.auth_token.empty();
        accept_threads_.emplace_back(
            [this, fd, requires_auth] { acceptLoop(fd, requires_auth); });
    }
    return true;
}

namespace {

/**
 * Length-leaking but content-constant-time comparison, so response
 * timing cannot be used to guess the token byte by byte.
 */
bool
tokenEquals(const std::string& a, const std::string& b)
{
    if (a.size() != b.size())
        return false;
    unsigned char acc = 0;
    for (size_t i = 0; i < a.size(); ++i)
        acc |= static_cast<unsigned char>(a[i]) ^
               static_cast<unsigned char>(b[i]);
    return acc == 0;
}

} // namespace

Json
Server::handleWithAuth(const Json& request, std::atomic<bool>& authed)
{
    if (authed.load(std::memory_order_acquire))
        return handle(request);
    const uint64_t id =
        static_cast<uint64_t>(request["id"].asInt(0));
    const std::string& op = request["op"].asString();
    if (op == "auth" &&
        tokenEquals(request["params"]["token"].asString(),
                    opts_.auth_token)) {
        authed.store(true, std::memory_order_release);
        metrics_.recordRequest("auth", true, 0.0, false);
        Json result = Json::object();
        result.set("authenticated", true);
        return makeResponse(id, result);
    }
    metrics_.recordAuthReject();
    return makeErrorResponse(
        id, "unauthorized: this listener requires a pre-shared token "
            "(send {\"op\":\"auth\",\"params\":{\"token\":...}} "
            "first)");
}

void
Server::acceptLoop(int listen_fd, bool requires_auth)
{
    for (;;) {
        const int fd = ::accept(listen_fd, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EINTR)
                continue;
            return; // listener closed (shutdown) or fatal error
        }
        if (stop_requested_.load()) {
            ::close(fd);
            return;
        }
        metrics_.recordConnection();
        reapFinishedSessions();
        auto handle = std::make_unique<SessionHandle>();
        auto authed =
            std::make_shared<std::atomic<bool>>(!requires_auth);
        handle->session = std::make_unique<Session>(
            fd, [this, authed](const Json& req) {
                return this->handleWithAuth(req, *authed);
            });
        SessionHandle* raw = handle.get();
        handle->thread = std::thread([raw] {
            raw->session->run();
            raw->done.store(true, std::memory_order_release);
        });
        std::lock_guard<std::mutex> lock(sessions_mu_);
        sessions_.push_back(std::move(handle));
    }
}

void
Server::reapFinishedSessions()
{
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto it = sessions_.begin(); it != sessions_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
            (*it)->thread.join();
            it = sessions_.erase(it);
        } else {
            ++it;
        }
    }
}

void
Server::requestStop()
{
    stop_requested_.store(true);
}

void
Server::wait()
{
    while (!stop_requested_.load())
        std::this_thread::sleep_for(std::chrono::milliseconds(100));

    bool expected = false;
    if (!stopped_.compare_exchange_strong(expected, true))
        return; // another caller already tore down

    // Grace so an in-flight `shutdown` response reaches its client
    // before the socket is yanked.
    std::this_thread::sleep_for(std::chrono::milliseconds(100));

    for (const int fd : listen_fds_) {
        ::shutdown(fd, SHUT_RDWR);
        ::close(fd);
    }
    for (auto& t : accept_threads_)
        t.join();
    accept_threads_.clear();
    listen_fds_.clear();

    {
        std::lock_guard<std::mutex> lock(sessions_mu_);
        for (auto& handle : sessions_)
            handle->session->forceClose();
    }
    for (;;) {
        std::unique_ptr<SessionHandle> victim;
        {
            std::lock_guard<std::mutex> lock(sessions_mu_);
            if (sessions_.empty())
                break;
            victim = std::move(sessions_.back());
            sessions_.pop_back();
        }
        victim->thread.join();
    }

    pool_.stop(runtime::ThreadPool::StopMode::kDrain);
    if (!opts_.socket_path.empty())
        ::unlink(opts_.socket_path.c_str());
    inform("serve: stopped (", metrics_.snapshot(cache_.stats())
                                   .requests,
           " requests served)");
}

} // namespace pibe::serve
