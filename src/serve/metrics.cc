#include "serve/metrics.h"

#include <algorithm>
#include <chrono>
#include <sstream>

namespace pibe::serve {

namespace {

constexpr size_t kReservoirCap = 1u << 16;

double
nowMs()
{
    return std::chrono::duration<double, std::milli>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
}

/** Percentile over an unsorted copy (nearest-rank). */
double
percentileOf(std::vector<double> samples, double p)
{
    if (samples.empty())
        return 0;
    std::sort(samples.begin(), samples.end());
    const size_t rank = std::min(
        samples.size() - 1,
        static_cast<size_t>(p * static_cast<double>(samples.size())));
    return samples[rank];
}

} // namespace

ServeMetrics::ServeMetrics()
    : reservoir_rng_(0x5e4e5e4e), boot_epoch_ms_(nowMs())
{
    latency_ms_.reserve(1024);
}

void
ServeMetrics::recordRequest(const std::string& op, bool ok, double ms,
                            bool coalesced)
{
    std::lock_guard<std::mutex> lock(mu_);
    OpStats& s = by_op_[op];
    ++s.requests;
    if (!ok)
        ++s.failures;
    if (coalesced)
        ++s.coalesced;
    s.ms_total += ms;
    // Uniform reservoir: every sample has cap/seen probability of
    // being retained, so percentiles stay unbiased after millions of
    // requests.
    ++samples_seen_;
    if (latency_ms_.size() < kReservoirCap) {
        latency_ms_.push_back(ms);
    } else {
        const uint64_t slot = reservoir_rng_.next() % samples_seen_;
        if (slot < kReservoirCap)
            latency_ms_[slot] = ms;
    }
}

void
ServeMetrics::recordAdmissionWait(double ms)
{
    std::lock_guard<std::mutex> lock(mu_);
    admission_wait_ms_total_ += ms;
}

void
ServeMetrics::recordConnection()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++connections_;
}

void
ServeMetrics::recordAuthReject()
{
    std::lock_guard<std::mutex> lock(mu_);
    ++auth_rejected_;
}

void
ServeMetrics::enterRequest()
{
    std::lock_guard<std::mutex> lock(mu_);
    peak_inflight_ = std::max(peak_inflight_, ++inflight_);
}

void
ServeMetrics::leaveRequest()
{
    std::lock_guard<std::mutex> lock(mu_);
    --inflight_;
}

MetricsSnapshot
ServeMetrics::snapshot(const runtime::CacheStats& cache) const
{
    std::lock_guard<std::mutex> lock(mu_);
    MetricsSnapshot snap;
    snap.by_op = by_op_;
    for (const auto& [op, s] : by_op_) {
        (void)op;
        snap.requests += s.requests;
        snap.failures += s.failures;
        snap.coalesced += s.coalesced;
    }
    snap.connections = connections_;
    snap.auth_rejected = auth_rejected_;
    snap.inflight = inflight_;
    snap.peak_inflight = peak_inflight_;
    snap.admission_wait_ms_total = admission_wait_ms_total_;
    snap.uptime_s = (nowMs() - boot_epoch_ms_) / 1e3;
    snap.p50_ms = percentileOf(latency_ms_, 0.50);
    snap.p99_ms = percentileOf(latency_ms_, 0.99);
    snap.cache = cache;
    return snap;
}

Json
MetricsSnapshot::toJson() const
{
    Json ops = Json::object();
    for (const auto& [op, s] : by_op) {
        Json o = Json::object();
        o.set("requests", s.requests);
        o.set("failures", s.failures);
        o.set("coalesced", s.coalesced);
        o.set("ms_total", s.ms_total);
        ops.set(op, std::move(o));
    }
    Json c = Json::object();
    c.set("mem_hits", cache.mem_hits);
    c.set("disk_hits", cache.disk_hits);
    c.set("misses", cache.misses);
    c.set("puts", cache.puts);
    c.set("mem_evictions", cache.mem_evictions);
    c.set("disk_evictions", cache.disk_evictions);
    c.set("evicted_bytes", cache.evicted_bytes);
    c.set("mem_bytes", cache.mem_bytes);
    c.set("disk_bytes", cache.disk_bytes);
    c.set("get_ms_total", cache.get_ms_total);
    c.set("put_ms_total", cache.put_ms_total);
    c.set("inflight", static_cast<int64_t>(cache.inflight));
    c.set("peak_inflight", static_cast<int64_t>(cache.peak_inflight));
    c.set("hit_rate", cache.hitRate());

    Json j = Json::object();
    j.set("requests", requests);
    j.set("failures", failures);
    j.set("coalesced", coalesced);
    j.set("connections", connections);
    j.set("auth_rejected", auth_rejected);
    j.set("inflight", static_cast<int64_t>(inflight));
    j.set("peak_inflight", static_cast<int64_t>(peak_inflight));
    j.set("admission_wait_ms_total", admission_wait_ms_total);
    j.set("uptime_s", uptime_s);
    j.set("p50_ms", p50_ms);
    j.set("p99_ms", p99_ms);
    j.set("by_op", std::move(ops));
    j.set("cache", std::move(c));
    return j;
}

std::string
MetricsSnapshot::renderText() const
{
    std::ostringstream os;
    os << "pibe_serve_uptime_seconds " << uptime_s << "\n";
    os << "pibe_serve_requests_total " << requests << "\n";
    os << "pibe_serve_failures_total " << failures << "\n";
    os << "pibe_serve_coalesced_total " << coalesced << "\n";
    os << "pibe_serve_connections_total " << connections << "\n";
    os << "pibe_serve_auth_rejected_total " << auth_rejected << "\n";
    os << "pibe_serve_inflight " << inflight << "\n";
    os << "pibe_serve_inflight_peak " << peak_inflight << "\n";
    os << "pibe_serve_admission_wait_ms_total "
       << admission_wait_ms_total << "\n";
    os << "pibe_serve_latency_ms{quantile=\"0.5\"} " << p50_ms << "\n";
    os << "pibe_serve_latency_ms{quantile=\"0.99\"} " << p99_ms
       << "\n";
    for (const auto& [op, s] : by_op) {
        os << "pibe_serve_op_requests_total{op=\"" << op << "\"} "
           << s.requests << "\n";
        os << "pibe_serve_op_failures_total{op=\"" << op << "\"} "
           << s.failures << "\n";
        os << "pibe_serve_op_coalesced_total{op=\"" << op << "\"} "
           << s.coalesced << "\n";
        os << "pibe_serve_op_ms_total{op=\"" << op << "\"} "
           << s.ms_total << "\n";
    }
    os << "pibe_cache_hits_total{tier=\"memory\"} " << cache.mem_hits
       << "\n";
    os << "pibe_cache_hits_total{tier=\"disk\"} " << cache.disk_hits
       << "\n";
    os << "pibe_cache_misses_total " << cache.misses << "\n";
    os << "pibe_cache_puts_total " << cache.puts << "\n";
    os << "pibe_cache_evictions_total{tier=\"memory\"} "
       << cache.mem_evictions << "\n";
    os << "pibe_cache_evictions_total{tier=\"disk\"} "
       << cache.disk_evictions << "\n";
    os << "pibe_cache_evicted_bytes_total " << cache.evicted_bytes
       << "\n";
    os << "pibe_cache_bytes{tier=\"memory\"} " << cache.mem_bytes
       << "\n";
    os << "pibe_cache_bytes{tier=\"disk\"} " << cache.disk_bytes
       << "\n";
    os << "pibe_cache_get_ms_total " << cache.get_ms_total << "\n";
    os << "pibe_cache_put_ms_total " << cache.put_ms_total << "\n";
    os << "pibe_cache_inflight " << cache.inflight << "\n";
    os << "pibe_cache_inflight_peak " << cache.peak_inflight << "\n";
    return os.str();
}

} // namespace pibe::serve
