/**
 * @file
 * Runtime control plane of the serve daemon.
 *
 * Modeled on the kernel's debugfs mitigation toggles
 * (`spec_ctrl_enable` and friends): a registry of named string-valued
 * knobs, each with a reader and a validating writer, mutated at
 * runtime through `config get/set/list` requests — no restart, no
 * connection drop. The server registers knobs like `default_defense`
 * (the DefenseConfig applied to requests that name none),
 * `max_inflight` (admission limit), and `cache_budget` (disk-tier
 * bytes); every successful set is logged with old and new value, the
 * way spec_ctrl prints mitigation transitions.
 */
#ifndef PIBE_SERVE_CONTROL_H_
#define PIBE_SERVE_CONTROL_H_

#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>

#include "serve/json.h"

namespace pibe::serve {

/** Thread-safe named-knob registry. */
class ControlPlane
{
  public:
    /** Returns the current value. */
    using Getter = std::function<std::string()>;
    /**
     * Validates and applies a new value; returns an error message, or
     * std::nullopt on success. Must be atomic: either the knob changed
     * to exactly the requested value or nothing changed.
     */
    using Setter =
        std::function<std::optional<std::string>(const std::string&)>;

    void registerKnob(const std::string& name,
                      const std::string& description, Getter get,
                      Setter set);

    /** Current value of `name`; std::nullopt if unknown. */
    std::optional<std::string> get(const std::string& name) const;

    /**
     * Set `name` to `value`. Returns std::nullopt on success, else an
     * error message (unknown knob, or the setter's validation error).
     */
    std::optional<std::string> set(const std::string& name,
                                   const std::string& value);

    /** All knobs as {name: {value, description}}. */
    Json list() const;

  private:
    struct Knob
    {
        std::string description;
        Getter get;
        Setter set;
    };

    mutable std::mutex mu_;
    std::map<std::string, Knob> knobs_;
};

} // namespace pibe::serve

#endif // PIBE_SERVE_CONTROL_H_
