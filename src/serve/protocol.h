/**
 * @file
 * Wire protocol of `pibe serve`.
 *
 * Transport: a unix-domain stream socket and/or a localhost TCP
 * socket. Framing: 4-byte big-endian payload length followed by that
 * many bytes of JSON. Frames above kMaxFrameBytes are rejected — a
 * garbage length prefix must not make the daemon allocate gigabytes.
 *
 * Requests:  {"id": <n>, "op": "<name>", "params": {...}}
 * Responses: {"id": <n>, "ok": true,  "result": {...}}
 *            {"id": <n>, "ok": false, "error": "<message>"}
 *
 * One request maps to one response; responses on a connection are
 * sent in request order (sessions are synchronous), so a client may
 * simply alternate write/read. `id` is echoed verbatim for clients
 * that want to pipeline anyway.
 */
#ifndef PIBE_SERVE_PROTOCOL_H_
#define PIBE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "serve/json.h"

namespace pibe::serve {

/** Upper bound on one frame's payload (64 MiB). */
inline constexpr uint32_t kMaxFrameBytes = 64u << 20;

/**
 * Write one length-prefixed frame. Returns false on any socket error
 * (peer gone, payload oversized). Never raises SIGPIPE.
 */
bool writeFrame(int fd, std::string_view payload);

/**
 * Read one length-prefixed frame. std::nullopt on clean EOF, socket
 * error, or an oversized/garbage length prefix.
 */
std::optional<std::string> readFrame(int fd);

/** writeFrame(json.dump()). */
bool writeMessage(int fd, const Json& message);

/** readFrame + Json::parse; std::nullopt if either fails. */
std::optional<Json> readMessage(int fd);

/** Build a request envelope. */
Json makeRequest(uint64_t id, const std::string& op, Json params);

/** Build a success response echoing `id`. */
Json makeResponse(uint64_t id, Json result);

/** Build an error response echoing `id`. */
Json makeErrorResponse(uint64_t id, const std::string& message);

// ---------------------------------------------------------------------
// Socket setup. All return a file descriptor, or -1 with a warning.

/** Bind + listen on a unix socket, replacing a stale socket file. */
int listenUnix(const std::string& path);

/**
 * Bind + listen on 127.0.0.1:`port` (0 = ephemeral). `*bound_port`
 * receives the actual port when non-null.
 */
int listenTcp(uint16_t port, uint16_t* bound_port = nullptr);

/** Connect to a unix socket. */
int connectUnix(const std::string& path);

/** Connect to `host`:`port` (numeric IPv4 host). */
int connectTcp(const std::string& host, uint16_t port);

} // namespace pibe::serve

#endif // PIBE_SERVE_PROTOCOL_H_
