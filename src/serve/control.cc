#include "serve/control.h"

#include "support/logging.h"

namespace pibe::serve {

void
ControlPlane::registerKnob(const std::string& name,
                           const std::string& description, Getter get,
                           Setter set)
{
    std::lock_guard<std::mutex> lock(mu_);
    PIBE_ASSERT(knobs_.find(name) == knobs_.end(),
                "duplicate control knob '", name, "'");
    knobs_[name] = Knob{description, std::move(get), std::move(set)};
}

std::optional<std::string>
ControlPlane::get(const std::string& name) const
{
    Getter getter;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = knobs_.find(name);
        if (it == knobs_.end())
            return std::nullopt;
        getter = it->second.get;
    }
    return getter();
}

std::optional<std::string>
ControlPlane::set(const std::string& name, const std::string& value)
{
    Getter getter;
    Setter setter;
    {
        std::lock_guard<std::mutex> lock(mu_);
        auto it = knobs_.find(name);
        if (it == knobs_.end())
            return "unknown config knob '" + name + "'";
        getter = it->second.get;
        setter = it->second.set;
    }
    const std::string before = getter();
    if (std::optional<std::string> err = setter(value))
        return err;
    // The spec_ctrl idiom: every accepted runtime transition is
    // logged so an operator can reconstruct the mitigation state.
    inform("config: ", name, ": '", before, "' -> '", getter(), "'");
    return std::nullopt;
}

Json
ControlPlane::list() const
{
    std::map<std::string, Knob> copy;
    {
        std::lock_guard<std::mutex> lock(mu_);
        copy = knobs_;
    }
    Json out = Json::object();
    for (const auto& [name, knob] : copy) {
        Json k = Json::object();
        k.set("value", knob.get());
        k.set("description", knob.description);
        out.set(name, std::move(k));
    }
    return out;
}

} // namespace pibe::serve
