/**
 * @file
 * Minimal blocking client of the serve protocol.
 *
 * One connection, synchronous call() semantics matching the server's
 * one-request-one-response ordering. Used by `pibe client`, the load
 * generator, and the serve tests.
 */
#ifndef PIBE_SERVE_CLIENT_H_
#define PIBE_SERVE_CLIENT_H_

#include <cstdint>
#include <optional>
#include <string>

#include "serve/json.h"

namespace pibe::serve {

/** Blocking request/response connection to a serve daemon. */
class Client
{
  public:
    Client() = default;
    ~Client();

    Client(const Client&) = delete;
    Client& operator=(const Client&) = delete;

    Client(Client&& other) noexcept;
    Client& operator=(Client&& other) noexcept;

    /** Connect over the unix socket at `path`. */
    bool connectUnix(const std::string& path);
    /** Connect over TCP to 127.0.0.1:`port`. */
    bool connectTcp(uint16_t port);

    bool connected() const { return fd_ >= 0; }
    void close();

    /**
     * Send `{"id", "op", "params"}` and wait for the response
     * envelope. std::nullopt on transport failure (the connection is
     * closed; a protocol-level error still returns the envelope with
     * ok = false).
     */
    std::optional<Json> call(const std::string& op, Json params);

    /** Last response's `result` convenience: call + ok check. */
    std::optional<Json> callOk(const std::string& op, Json params,
                               std::string* error = nullptr);

    /**
     * Present the pre-shared token (token-gated TCP listeners refuse
     * every other op first). Harmless on trusted connections: the
     * daemon treats auth there as an idempotent success.
     */
    bool authenticate(const std::string& token,
                      std::string* error = nullptr);

  private:
    int fd_ = -1;
    uint64_t next_id_ = 1;
};

} // namespace pibe::serve

#endif // PIBE_SERVE_CLIENT_H_
