/**
 * @file
 * One client connection of the serve daemon.
 *
 * A session owns a connected socket and runs a synchronous loop: read
 * a frame, parse the request envelope, hand it to the server's
 * dispatcher, write the response frame. Malformed JSON gets an error
 * response (the connection survives); a broken frame or EOF ends the
 * session. Concurrency comes from running many sessions — the heavy
 * lifting inside a request is fanned into the shared ThreadPool by
 * the dispatcher, never done per-connection.
 */
#ifndef PIBE_SERVE_SESSION_H_
#define PIBE_SERVE_SESSION_H_

#include <atomic>
#include <cstdint>
#include <functional>

#include "serve/json.h"

namespace pibe::serve {

/** One connection's read-dispatch-respond loop. */
class Session
{
  public:
    /** Maps a request envelope to a response envelope. */
    using Handler = std::function<Json(const Json& request)>;

    /** Takes ownership of the connected `fd`. */
    Session(int fd, Handler handler);

    /** Closes the socket if still open. */
    ~Session();

    Session(const Session&) = delete;
    Session& operator=(const Session&) = delete;

    /** Serve requests until EOF, error, or forceClose(). */
    void run();

    /**
     * Unblock run() from another thread (daemon shutdown): shuts the
     * socket down for reading and writing, making the blocked read
     * return EOF. Idempotent.
     */
    void forceClose();

    uint64_t requestsServed() const { return requests_served_; }

  private:
    int fd_;
    Handler handler_;
    std::atomic<bool> closing_{false};
    std::atomic<uint64_t> requests_served_{0};
};

} // namespace pibe::serve

#endif // PIBE_SERVE_SESSION_H_
