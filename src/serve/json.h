/**
 * @file
 * Minimal JSON value type for the serve protocol.
 *
 * The wire format of `pibe serve` is length-prefixed JSON (see
 * serve/protocol.h). The repo is dependency-free, so this is a small
 * self-contained implementation: null/bool/number/string/array/object,
 * a recursive-descent parser, and a canonical dumper.
 *
 * Numbers keep an integer flag: values parsed or constructed from
 * integers round-trip as integers (no exponent, no fraction), which
 * keeps counters and ids exact. Doubles are emitted with %.17g, which
 * round-trips every finite IEEE-754 double — measurement latencies
 * survive a protocol round trip bit-exactly.
 */
#ifndef PIBE_SERVE_JSON_H_
#define PIBE_SERVE_JSON_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace pibe::serve {

/** One JSON value (immutable type, mutable contents). */
class Json
{
  public:
    enum class Type {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject
    };

    Json() = default;
    Json(std::nullptr_t) {}
    Json(bool v) : type_(Type::kBool), bool_(v) {}
    Json(int v) : Json(static_cast<int64_t>(v)) {}
    Json(unsigned v) : Json(static_cast<int64_t>(v)) {}
    Json(int64_t v)
        : type_(Type::kNumber), num_(static_cast<double>(v)), int_(v),
          is_int_(true)
    {
    }
    Json(uint64_t v) : Json(static_cast<int64_t>(v)) {}
    Json(double v) : type_(Type::kNumber), num_(v) {}
    Json(const char* v) : type_(Type::kString), str_(v) {}
    Json(std::string v) : type_(Type::kString), str_(std::move(v)) {}

    static Json
    array()
    {
        Json j;
        j.type_ = Type::kArray;
        return j;
    }

    static Json
    object()
    {
        Json j;
        j.type_ = Type::kObject;
        return j;
    }

    /** Parse `text`; std::nullopt on any syntax error or trailing
     *  garbage (a malformed request must not kill the daemon). */
    static std::optional<Json> parse(std::string_view text);

    /** Canonical single-line serialization (object keys sorted). */
    std::string dump() const;

    Type type() const { return type_; }
    bool isNull() const { return type_ == Type::kNull; }
    bool isBool() const { return type_ == Type::kBool; }
    bool isNumber() const { return type_ == Type::kNumber; }
    bool isString() const { return type_ == Type::kString; }
    bool isArray() const { return type_ == Type::kArray; }
    bool isObject() const { return type_ == Type::kObject; }

    bool asBool(bool fallback = false) const;
    double asDouble(double fallback = 0) const;
    int64_t asInt(int64_t fallback = 0) const;
    const std::string& asString() const; // "" unless kString

    // Object access. operator[] on a const object returns a shared
    // null for missing keys, so `req["params"]["x"].asInt(7)` is safe
    // on any input.
    const Json& operator[](const std::string& key) const;
    bool has(const std::string& key) const;
    Json& set(const std::string& key, Json value); // makes an object
    const std::map<std::string, Json>& items() const { return obj_; }

    // Array access.
    Json& push(Json value); // makes an array
    size_t size() const;
    const Json& at(size_t i) const; // shared null if out of range
    const std::vector<Json>& elements() const { return arr_; }

  private:
    static const Json& nullValue();

    Type type_ = Type::kNull;
    bool bool_ = false;
    double num_ = 0;
    int64_t int_ = 0;
    bool is_int_ = false;
    std::string str_;
    std::vector<Json> arr_;
    std::map<std::string, Json> obj_;
};

} // namespace pibe::serve

#endif // PIBE_SERVE_JSON_H_
