/**
 * @file
 * Request batching by single-flight coalescing.
 *
 * Two requests are "compatible" when they resolve to the same cache
 * key — same kernel, same profile, same (OptConfig, DefenseConfig)
 * point, same workload. The batcher merges every concurrent group of
 * compatible requests into one execution: the first arrival (the
 * leader) computes; the rest (followers) block on the leader's
 * shared_future and receive the same value. Combined with the
 * artifact cache this gives the full batching ladder:
 *
 *   memory/disk cache hit        -> no work at all (request was seen
 *                                   before, any process);
 *   single-flight follower       -> no work, waits for the in-flight
 *                                   leader (concurrent duplicates);
 *   single-flight leader         -> computes once, admits its job
 *                                   graph into the shared pool.
 *
 * Leaders run the computation on the *calling* (session) thread and
 * fan work into the shared ThreadPool, so a follower blocking in
 * wait() never occupies a pool worker and the pool cannot deadlock on
 * itself.
 */
#ifndef PIBE_SERVE_BATCHER_H_
#define PIBE_SERVE_BATCHER_H_

#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <string>

namespace pibe::serve {

/** Outcome of one Batcher::run call. */
enum class BatchRole {
    kLeader,   ///< This call computed the value.
    kFollower, ///< This call joined an in-flight computation.
};

/**
 * Keyed single-flight executor. `V` must be copyable (results are
 * fanned out to every follower).
 */
template <typename V>
class Batcher
{
  public:
    /**
     * Return the value for `key`, computing it via `compute` if no
     * compatible computation is in flight, else joining the one that
     * is. Exceptions from the leader's compute propagate to the
     * leader AND every follower of that flight.
     */
    V
    run(const std::string& key, const std::function<V()>& compute,
        BatchRole* role = nullptr)
    {
        std::shared_ptr<Flight> flight;
        bool leader = false;
        {
            std::lock_guard<std::mutex> lock(mu_);
            auto it = inflight_.find(key);
            if (it == inflight_.end()) {
                flight = std::make_shared<Flight>();
                flight->future = flight->promise.get_future().share();
                inflight_[key] = flight;
                leader = true;
                ++flights_;
            } else {
                flight = it->second;
                ++coalesced_;
            }
        }
        if (role)
            *role = leader ? BatchRole::kLeader : BatchRole::kFollower;
        if (!leader)
            return flight->future.get();
        try {
            flight->promise.set_value(compute());
        } catch (...) {
            flight->promise.set_exception(std::current_exception());
        }
        {
            std::lock_guard<std::mutex> lock(mu_);
            inflight_.erase(key);
        }
        return flight->future.get();
    }

    /** Computations led (one per coalesced group). */
    uint64_t
    flights() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return flights_;
    }

    /** Calls served by joining an in-flight leader. */
    uint64_t
    coalescedCalls() const
    {
        std::lock_guard<std::mutex> lock(mu_);
        return coalesced_;
    }

  private:
    struct Flight
    {
        std::promise<V> promise;
        std::shared_future<V> future;
    };

    mutable std::mutex mu_;
    std::map<std::string, std::shared_ptr<Flight>> inflight_;
    uint64_t flights_ = 0;
    uint64_t coalesced_ = 0;
};

} // namespace pibe::serve

#endif // PIBE_SERVE_BATCHER_H_
