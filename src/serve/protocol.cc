#include "serve/protocol.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "support/logging.h"

namespace pibe::serve {

namespace {

/** write(2) all of `data`, retrying on EINTR; MSG_NOSIGNAL so a gone
 *  peer surfaces as EPIPE instead of killing the process. */
bool
sendAll(int fd, const void* data, size_t size)
{
    const char* p = static_cast<const char*>(data);
    while (size > 0) {
        const ssize_t n = ::send(fd, p, size, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        p += n;
        size -= static_cast<size_t>(n);
    }
    return true;
}

/** read(2) exactly `size` bytes. False on EOF or error. */
bool
recvAll(int fd, void* data, size_t size)
{
    char* p = static_cast<char*>(data);
    while (size > 0) {
        const ssize_t n = ::recv(fd, p, size, 0);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        if (n == 0)
            return false;
        p += n;
        size -= static_cast<size_t>(n);
    }
    return true;
}

} // namespace

bool
writeFrame(int fd, std::string_view payload)
{
    if (payload.size() > kMaxFrameBytes)
        return false;
    unsigned char header[4];
    const uint32_t len = static_cast<uint32_t>(payload.size());
    header[0] = static_cast<unsigned char>(len >> 24);
    header[1] = static_cast<unsigned char>(len >> 16);
    header[2] = static_cast<unsigned char>(len >> 8);
    header[3] = static_cast<unsigned char>(len);
    return sendAll(fd, header, sizeof(header)) &&
           sendAll(fd, payload.data(), payload.size());
}

std::optional<std::string>
readFrame(int fd)
{
    unsigned char header[4];
    if (!recvAll(fd, header, sizeof(header)))
        return std::nullopt;
    const uint32_t len = (static_cast<uint32_t>(header[0]) << 24) |
                         (static_cast<uint32_t>(header[1]) << 16) |
                         (static_cast<uint32_t>(header[2]) << 8) |
                         static_cast<uint32_t>(header[3]);
    if (len > kMaxFrameBytes)
        return std::nullopt;
    std::string payload(len, '\0');
    if (len > 0 && !recvAll(fd, payload.data(), len))
        return std::nullopt;
    return payload;
}

bool
writeMessage(int fd, const Json& message)
{
    return writeFrame(fd, message.dump());
}

std::optional<Json>
readMessage(int fd)
{
    std::optional<std::string> frame = readFrame(fd);
    if (!frame)
        return std::nullopt;
    return Json::parse(*frame);
}

Json
makeRequest(uint64_t id, const std::string& op, Json params)
{
    Json req = Json::object();
    req.set("id", id);
    req.set("op", op);
    req.set("params", std::move(params));
    return req;
}

Json
makeResponse(uint64_t id, Json result)
{
    Json resp = Json::object();
    resp.set("id", id);
    resp.set("ok", true);
    resp.set("result", std::move(result));
    return resp;
}

Json
makeErrorResponse(uint64_t id, const std::string& message)
{
    Json resp = Json::object();
    resp.set("id", id);
    resp.set("ok", false);
    resp.set("error", message);
    return resp;
}

int
listenUnix(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path)) {
        warn("serve: unix socket path too long: ", path);
        return -1;
    }
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);

    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        warn("serve: socket(AF_UNIX): ", std::strerror(errno));
        return -1;
    }
    ::unlink(path.c_str()); // replace a stale socket file
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0) {
        warn("serve: cannot listen on ", path, ": ",
             std::strerror(errno));
        ::close(fd);
        return -1;
    }
    return fd;
}

int
listenTcp(uint16_t port, uint16_t* bound_port)
{
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0) {
        warn("serve: socket(AF_INET): ", std::strerror(errno));
        return -1;
    }
    const int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(port);
    if (::bind(fd, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0 ||
        ::listen(fd, 128) != 0) {
        warn("serve: cannot listen on tcp port ", port, ": ",
             std::strerror(errno));
        ::close(fd);
        return -1;
    }
    if (bound_port) {
        sockaddr_in actual{};
        socklen_t len = sizeof(actual);
        if (::getsockname(fd, reinterpret_cast<sockaddr*>(&actual),
                          &len) == 0)
            *bound_port = ntohs(actual.sin_port);
    }
    return fd;
}

int
connectUnix(const std::string& path)
{
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (path.size() >= sizeof(addr.sun_path))
        return -1;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    const int fd = ::socket(AF_UNIX, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

int
connectTcp(const std::string& host, uint16_t port)
{
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(port);
    if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1)
        return -1;
    const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    if (fd < 0)
        return -1;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr),
                  sizeof(addr)) != 0) {
        ::close(fd);
        return -1;
    }
    return fd;
}

} // namespace pibe::serve
