/**
 * @file
 * Transient control-flow hardening passes (§6).
 *
 * The pass rewrites every remaining indirect branch with the thunk
 * sequence implied by the selected defense combination:
 *
 *  - retpolines (Spectre V2, forward edges, Listing 4);
 *  - LVI-CFI (LVI, both edges, Listings 5/6);
 *  - return retpolines (Ret2spec, backward edges);
 *  - when retpolines and LVI-CFI are both requested, the two
 *    instrument the same code sequence and are incompatible, so the
 *    combined *fenced retpoline* (Listing 7) is emitted instead — on
 *    both edges when return retpolines are also on.
 *
 * In PIR, "emitting a thunk" means tagging the kICall/kSwitch/kRet
 * instruction with a FwdScheme/RetScheme; the uarch cost model and the
 * speculation engine give the tags their performance and security
 * semantics, and the layout gives them their size.
 *
 * Sites that cannot be rewritten stay vulnerable and are reported by
 * CoverageReport (Table 11): inline-assembly indirect calls (the
 * kernel's paravirt hypercalls) and asm switch dispatch; returns in
 * boot-section functions are skipped as they only run before any
 * attacker can execute (§8.6).
 */
#ifndef PIBE_HARDEN_HARDEN_H_
#define PIBE_HARDEN_HARDEN_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "ir/module.h"

namespace pibe::harden {

/** Which transient defenses to enable (any combination). */
struct DefenseConfig
{
    bool retpoline = false;      ///< Spectre V2 (forward edge).
    bool lvi_cfi = false;        ///< LVI (forward + backward edge).
    bool ret_retpoline = false;  ///< Ret2spec (backward edge).
    /**
     * Use the JumpSwitches runtime-patching mechanism on forward edges
     * instead of static thunks (§8.2 baseline). Only meaningful with
     * `retpoline` (JumpSwitches supports only retpolines); remaining
     * misses fall back to a retpoline at run time.
     */
    bool jump_switches = false;

    /** True if any transient defense is enabled. */
    bool
    any() const
    {
        return retpoline || lvi_cfi || ret_retpoline;
    }

    /** Short human-readable name, e.g. "retpolines+lvi-cfi". */
    std::string name() const;

    // Canonical configurations used throughout the evaluation.
    static DefenseConfig none() { return {}; }
    static DefenseConfig retpolinesOnly();
    static DefenseConfig retRetpolinesOnly();
    static DefenseConfig lviOnly();
    static DefenseConfig all();
    static DefenseConfig jumpSwitches();
};

/**
 * Inverse of the canonical configuration names used across the CLI
 * and the serve control plane: "none", "retpolines", "ret-retpolines",
 * "lvi", "all", "jumpswitches". Returns std::nullopt for anything
 * else.
 */
std::optional<DefenseConfig> defenseByName(const std::string& name);

/** Scheme selected for forward edges under `config`. */
ir::FwdScheme forwardSchemeFor(const DefenseConfig& config);

/** Scheme selected for backward edges under `config`. */
ir::RetScheme returnSchemeFor(const DefenseConfig& config);

/** Per-image hardening coverage (Table 11). */
struct CoverageReport
{
    uint32_t protected_icalls = 0;   ///< "Def. ICalls".
    uint32_t vulnerable_icalls = 0;  ///< "Vuln. ICalls" (asm sites).
    uint32_t vulnerable_ijumps = 0;  ///< "Vuln. IJumps" (asm switches).
    uint32_t protected_rets = 0;
    uint32_t boot_only_rets = 0;     ///< Unprotected but boot-only.
    uint32_t lowered_switches = 0;   ///< Jump tables eliminated.

    // ICP interaction, filled in by the pipeline from IcpAudit (the
    // module alone cannot recover them, so analyzeCoverage() leaves
    // both zero and the coverage reconciler ignores them).
    /** Fallback icalls still holding live targets because a per-site
     *  promotion cap truncated the guard chain (residual surface). */
    uint32_t capped_residual_icalls = 0;
    /** Fallback icalls eliminated by total promotion. */
    uint32_t elided_icalls = 0;
};

/**
 * Apply `config` to every indirect branch of `module` (tagging schemes
 * and lowering jump tables when any defense is on). Returns the
 * coverage report. When `touched` is non-null it receives the ids of
 * every function that was actually mutated (a scheme tagged or a
 * switch lowered), sorted and unique — the incremental invalidation
 * set for a following check stage.
 */
CoverageReport applyDefenses(ir::Module& module,
                             const DefenseConfig& config,
                             std::vector<ir::FuncId>* touched = nullptr);

/**
 * Apply `config` to the indirect branches of one function: lower its
 * jump tables and tag its kICall/kRet sites. Only `func` is mutated,
 * so distinct functions may be hardened concurrently; the result is
 * independent of function order, and running it over every function
 * equals applyDefenses(). Returns true if the function changed.
 * No-op (returns false) when no defense is enabled.
 */
bool applyDefensesToFunction(ir::Module& module, ir::FuncId func,
                             const DefenseConfig& config);

/** Recompute coverage of an already-hardened module. */
CoverageReport analyzeCoverage(const ir::Module& module);

} // namespace pibe::harden

#endif // PIBE_HARDEN_HARDEN_H_
