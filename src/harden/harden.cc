#include "harden/harden.h"

#include "opt/jump_tables.h"

namespace pibe::harden {

DefenseConfig
DefenseConfig::retpolinesOnly()
{
    DefenseConfig c;
    c.retpoline = true;
    return c;
}

DefenseConfig
DefenseConfig::retRetpolinesOnly()
{
    DefenseConfig c;
    c.ret_retpoline = true;
    return c;
}

DefenseConfig
DefenseConfig::lviOnly()
{
    DefenseConfig c;
    c.lvi_cfi = true;
    return c;
}

DefenseConfig
DefenseConfig::all()
{
    DefenseConfig c;
    c.retpoline = true;
    c.lvi_cfi = true;
    c.ret_retpoline = true;
    return c;
}

DefenseConfig
DefenseConfig::jumpSwitches()
{
    DefenseConfig c;
    c.retpoline = true;
    c.jump_switches = true;
    return c;
}

std::string
DefenseConfig::name() const
{
    if (!any())
        return "none";
    std::string s;
    auto append = [&s](const char* part) {
        if (!s.empty())
            s += "+";
        s += part;
    };
    if (retpoline)
        append(jump_switches ? "jumpswitches" : "retpolines");
    if (lvi_cfi)
        append("lvi-cfi");
    if (ret_retpoline)
        append("ret-retpolines");
    return s;
}

std::optional<DefenseConfig>
defenseByName(const std::string& name)
{
    if (name == "none")
        return DefenseConfig::none();
    if (name == "retpolines")
        return DefenseConfig::retpolinesOnly();
    if (name == "ret-retpolines")
        return DefenseConfig::retRetpolinesOnly();
    if (name == "lvi")
        return DefenseConfig::lviOnly();
    if (name == "all")
        return DefenseConfig::all();
    if (name == "jumpswitches")
        return DefenseConfig::jumpSwitches();
    return std::nullopt;
}

ir::FwdScheme
forwardSchemeFor(const DefenseConfig& config)
{
    if (config.retpoline && config.jump_switches)
        return ir::FwdScheme::kJumpSwitch;
    if (config.retpoline && config.lvi_cfi)
        return ir::FwdScheme::kFencedRetpoline;
    if (config.retpoline)
        return ir::FwdScheme::kRetpoline;
    if (config.lvi_cfi)
        return ir::FwdScheme::kLviCfi;
    return ir::FwdScheme::kNone;
}

ir::RetScheme
returnSchemeFor(const DefenseConfig& config)
{
    if (config.ret_retpoline && config.lvi_cfi)
        return ir::RetScheme::kFencedRet;
    if (config.ret_retpoline)
        return ir::RetScheme::kReturnRetpoline;
    if (config.lvi_cfi)
        return ir::RetScheme::kLviRet;
    return ir::RetScheme::kNone;
}

namespace {

/**
 * Tag the indirect branches of one function with the schemes implied
 * by `config` and lower its jump tables. Returns the number of
 * switches lowered; `*changed` is set if anything was mutated.
 */
uint32_t
hardenOneFunction(ir::Function& f, const DefenseConfig& config,
                  bool* changed)
{
    const uint32_t lowered = opt::lowerJumpTablesInFunction(f);
    if (lowered > 0)
        *changed = true;

    const ir::FwdScheme fwd = forwardSchemeFor(config);
    const ir::RetScheme bwd = returnSchemeFor(config);
    const bool boot = f.hasAttr(ir::kAttrBootSection);
    for (auto& bb : f.blocks) {
        for (auto& inst : bb.insts) {
            switch (inst.op) {
              case ir::Opcode::kICall:
                if (inst.is_asm)
                    break; // cannot rewrite inline assembly
                if (inst.fwd_scheme != fwd) {
                    inst.fwd_scheme = fwd;
                    *changed = true;
                }
                break;
              case ir::Opcode::kRet:
                if (boot)
                    break; // boot-only returns stay plain
                if (inst.ret_scheme != bwd) {
                    inst.ret_scheme = bwd;
                    *changed = true;
                }
                break;
              default:
                break;
            }
        }
    }
    return lowered;
}

} // namespace

CoverageReport
applyDefenses(ir::Module& module, const DefenseConfig& config,
              std::vector<ir::FuncId>* touched)
{
    CoverageReport report;
    if (!config.any())
        return analyzeCoverage(module);

    // Jump tables are disabled whenever transient defenses are on
    // (the default LLVM behaviour under retpolines/LVI, §5.1).
    for (ir::Function& f : module.functions()) {
        bool changed = false;
        report.lowered_switches += hardenOneFunction(f, config, &changed);
        if (changed && touched)
            touched->push_back(f.id);
    }
    CoverageReport final_report = analyzeCoverage(module);
    final_report.lowered_switches = report.lowered_switches;
    return final_report;
}

bool
applyDefensesToFunction(ir::Module& module, ir::FuncId func,
                        const DefenseConfig& config)
{
    if (!config.any())
        return false;
    bool changed = false;
    hardenOneFunction(module.func(func), config, &changed);
    return changed;
}

CoverageReport
analyzeCoverage(const ir::Module& module)
{
    CoverageReport report;
    for (const ir::Function& f : module.functions()) {
        const bool boot = f.hasAttr(ir::kAttrBootSection);
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                switch (inst.op) {
                  case ir::Opcode::kICall:
                    if (inst.fwd_scheme == ir::FwdScheme::kNone)
                        ++report.vulnerable_icalls;
                    else
                        ++report.protected_icalls;
                    break;
                  case ir::Opcode::kSwitch:
                    // A surviving switch is an indexed indirect jump.
                    ++report.vulnerable_ijumps;
                    break;
                  case ir::Opcode::kRet:
                    if (inst.ret_scheme != ir::RetScheme::kNone)
                        ++report.protected_rets;
                    else if (boot)
                        ++report.boot_only_rets;
                    break;
                  default:
                    break;
                }
            }
        }
    }
    return report;
}

} // namespace pibe::harden
