#include <algorithm>
#include <unordered_set>

#include "analysis/call_graph.h"
#include "analysis/inline_cost.h"
#include "opt/cleanup.h"
#include "opt/inline_core.h"
#include "opt/inliner.h"
#include "support/logging.h"

namespace pibe::opt {

namespace {

/**
 * Compute the weight cutoff such that sites at or above it cover
 * `budget` of the total profiled direct-call weight.
 */
uint64_t
hotWeightCutoff(const profile::EdgeProfile& profile, double budget,
                uint64_t* total_out)
{
    std::vector<uint64_t> weights;
    uint64_t total = 0;
    for (const auto& [site, count] : profile.directSites()) {
        (void)site;
        weights.push_back(count);
        total += count;
    }
    *total_out = total;
    if (weights.empty())
        return 1;
    std::sort(weights.begin(), weights.end(), std::greater<>());
    const double target = budget * static_cast<double>(total);
    double cum = 0;
    uint64_t cut = 1;
    for (uint64_t w : weights) {
        if (cum >= target)
            break;
        cut = w;
        cum += static_cast<double>(w);
    }
    return cut;
}

} // namespace

InlineAudit
runDefaultInliner(ir::Module& module, profile::EdgeProfile& profile,
                  const DefaultInlinerConfig& config)
{
    InlineAudit audit;
    analysis::CallGraph callgraph(module);
    analysis::InlineCostCache costs(module);

    uint64_t total = 0;
    const uint64_t hot_cut = hotWeightCutoff(profile, config.budget, &total);
    audit.total_weight = total;
    audit.candidate_sites =
        static_cast<uint32_t>(profile.directSites().size());

    // Snapshot invocation counts for inherited-site scaling (the
    // default inliner still propagates counts so that later passes see
    // a coherent profile; its *decisions* ignore weight order).
    std::vector<uint64_t> orig_invocations(module.numFunctions());
    for (ir::FuncId f = 0; f < module.numFunctions(); ++f)
        orig_invocations[f] = profile.invocations(f);

    // Bottom-up over the SCC condensation, the way LLVM's inliner
    // walks the call graph: callees are finalized before callers.
    for (ir::FuncId caller_id : callgraph.bottomUpOrder()) {
        ir::Function& caller = module.func(caller_id);
        if (caller.isDeclaration() || caller.hasAttr(ir::kAttrOptNone))
            continue;

        bool changed = true;
        int rounds = 0;
        while (changed && rounds++ < 8) {
            changed = false;
            // Scan in code order; decisions depend on size and a
            // hot/cold hint only — NOT on weight order (§8.4: "its
            // inlining decisions are made solely based on size
            // complexity and inline hints").
            for (ir::BlockId b = 0; b < caller.blocks.size() && !changed;
                 ++b) {
                const auto& insts = caller.blocks[b].insts;
                for (uint32_t i = 0; i < insts.size(); ++i) {
                    const ir::Instruction& inst = insts[i];
                    if (inst.op != ir::Opcode::kCall)
                        continue;
                    const ir::SiteId site = inst.site_id;
                    const ir::FuncId callee = inst.callee;
                    const uint64_t weight = profile.directCount(site);
                    ++audit.attempted_sites;

                    if (inlineRefusalReason(module, caller_id, inst) ||
                        callgraph.isRecursive(callee)) {
                        audit.blocked_other_weight += weight;
                        continue;
                    }
                    const bool hot = weight >= hot_cut && weight > 0;
                    const int64_t threshold =
                        hot ? config.hot_callee_threshold
                            : config.cold_callee_threshold;
                    if (costs.cost(callee) > threshold) {
                        audit.blocked_rule3_weight += weight;
                        continue;
                    }
                    if (costs.cost(caller_id) >
                        config.caller_growth_cap) {
                        audit.blocked_rule2_weight += weight;
                        continue;
                    }

                    InlineOutcome outcome =
                        inlineCallSite(module, caller_id, site);
                    if (!outcome.ok) {
                        audit.blocked_other_weight += weight;
                        continue;
                    }
                    ++audit.inlined_sites;
                    audit.inlined_weight += weight;
                    audit.eligible_weight += weight;
                    audit.touched.push_back(caller_id);

                    const uint64_t callee_inv = orig_invocations[callee];
                    for (const InheritedSite& inh : outcome.inherited) {
                        if (callee_inv == 0 || weight == 0)
                            break;
                        if (inh.indirect) {
                            for (const auto& tc :
                                 profile.indirectTargets(inh.callee_site)) {
                                uint64_t scaled = static_cast<uint64_t>(
                                    static_cast<double>(tc.count) *
                                    static_cast<double>(weight) /
                                    static_cast<double>(callee_inv));
                                if (scaled > 0) {
                                    profile.addIndirect(inh.new_site,
                                                        tc.target, scaled);
                                }
                            }
                            continue;
                        }
                        uint64_t base =
                            profile.directCount(inh.callee_site);
                        uint64_t scaled = static_cast<uint64_t>(
                            static_cast<double>(base) *
                            static_cast<double>(weight) /
                            static_cast<double>(callee_inv));
                        if (scaled > 0)
                            profile.addDirect(inh.new_site, scaled);
                    }

                    costs.invalidate(caller_id);
                    changed = true;
                    break; // instruction vector was invalidated
                }
            }
        }
        if (config.cleanup_callers) {
            // Cleanup can mutate callers nothing was inlined into
            // (e.g. removing pre-existing dead stores), so every
            // cleaned caller belongs in the invalidation set.
            cleanupFunction(caller);
            costs.invalidate(caller_id);
            audit.touched.push_back(caller_id);
        }
    }

    std::sort(audit.touched.begin(), audit.touched.end());
    audit.touched.erase(
        std::unique(audit.touched.begin(), audit.touched.end()),
        audit.touched.end());
    return audit;
}

} // namespace pibe::opt
