#include "opt/jump_tables.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include "support/logging.h"

namespace pibe::opt {

namespace {

struct Case
{
    int64_t value;
    ir::BlockId target;
};

/**
 * Emit a compare tree for cases[lo, hi) into block `bb` of `f`.
 * The block is filled with compares/branches; subtree blocks are
 * appended to the function as needed.
 */
void
emitTree(ir::Function& f, ir::BlockId bb, ir::Reg value,
         const std::vector<Case>& cases, size_t lo, size_t hi,
         ir::BlockId default_target, uint32_t linear_limit)
{
    auto& insts = f.blocks[bb].insts;
    const size_t n = hi - lo;
    if (n <= linear_limit) {
        // Linear chain: eq-compare each case, fall through to default.
        ir::BlockId cur = bb;
        for (size_t i = lo; i < hi; ++i) {
            ir::Instruction cst;
            cst.op = ir::Opcode::kConst;
            cst.dst = f.num_regs++;
            cst.imm = cases[i].value;

            ir::Instruction cmp;
            cmp.op = ir::Opcode::kBinOp;
            cmp.bin = ir::BinKind::kEq;
            cmp.dst = f.num_regs++;
            cmp.a = value;
            cmp.b = cst.dst;

            const bool last = (i + 1 == hi);
            ir::BlockId next = default_target;
            if (!last) {
                next = static_cast<ir::BlockId>(f.blocks.size());
                f.blocks.emplace_back();
            }

            ir::Instruction br;
            br.op = ir::Opcode::kCondBr;
            br.a = cmp.dst;
            br.t0 = cases[i].target;
            br.t1 = next;

            auto& cur_insts = f.blocks[cur].insts;
            cur_insts.push_back(cst);
            cur_insts.push_back(cmp);
            cur_insts.push_back(br);
            cur = next;
        }
        return;
    }
    (void)insts;

    // Binary search: split at the median case value.
    const size_t mid = lo + n / 2;
    const ir::BlockId left = static_cast<ir::BlockId>(f.blocks.size());
    f.blocks.emplace_back();
    const ir::BlockId right = static_cast<ir::BlockId>(f.blocks.size());
    f.blocks.emplace_back();

    ir::Instruction cst;
    cst.op = ir::Opcode::kConst;
    cst.dst = f.num_regs++;
    cst.imm = cases[mid].value;

    ir::Instruction cmp;
    cmp.op = ir::Opcode::kBinOp;
    cmp.bin = ir::BinKind::kLt;
    cmp.dst = f.num_regs++;
    cmp.a = value;
    cmp.b = cst.dst;

    ir::Instruction br;
    br.op = ir::Opcode::kCondBr;
    br.a = cmp.dst;
    br.t0 = left;
    br.t1 = right;

    auto& bb_insts = f.blocks[bb].insts;
    bb_insts.push_back(cst);
    bb_insts.push_back(cmp);
    bb_insts.push_back(br);

    emitTree(f, left, value, cases, lo, mid, default_target, linear_limit);
    emitTree(f, right, value, cases, mid, hi, default_target, linear_limit);
}

} // namespace

uint32_t
lowerJumpTablesInFunction(ir::Function& f, uint32_t linear_limit)
{
    PIBE_ASSERT(linear_limit >= 1, "linear_limit must be >= 1");
    uint32_t lowered = 0;
    // Block count grows during lowering; only visit originals.
    const size_t original_blocks = f.blocks.size();
    for (size_t b = 0; b < original_blocks; ++b) {
        if (f.blocks[b].insts.empty())
            continue;
        ir::Instruction term = f.blocks[b].insts.back();
        if (term.op != ir::Opcode::kSwitch || term.is_asm)
            continue;
        // Sort cases by value so the binary search is well-formed.
        std::vector<Case> cases;
        cases.reserve(term.case_values.size());
        for (size_t c = 0; c < term.case_values.size(); ++c)
            cases.push_back({term.case_values[c], term.case_targets[c]});
        std::sort(cases.begin(), cases.end(),
                  [](const Case& x, const Case& y) {
                      return x.value < y.value;
                  });

        f.blocks[b].insts.pop_back();
        if (cases.empty()) {
            ir::Instruction br;
            br.op = ir::Opcode::kBr;
            br.t0 = term.t0;
            f.blocks[b].insts.push_back(br);
        } else {
            emitTree(f, static_cast<ir::BlockId>(b), term.a, cases, 0,
                     cases.size(), term.t0, linear_limit);
        }
        ++lowered;
    }
    return lowered;
}

uint32_t
lowerJumpTables(ir::Module& module, uint32_t linear_limit)
{
    uint32_t lowered = 0;
    for (ir::Function& f : module.functions())
        lowered += lowerJumpTablesInFunction(f, linear_limit);
    return lowered;
}

uint32_t
countSwitches(const ir::Module& module)
{
    uint32_t count = 0;
    for (const ir::Function& f : module.functions()) {
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                if (inst.op == ir::Opcode::kSwitch)
                    ++count;
            }
        }
    }
    return count;
}

} // namespace pibe::opt
