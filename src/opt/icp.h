/**
 * @file
 * Profile-guided indirect call promotion (§5.3).
 *
 * For each indirect call site with a value profile, PIBE promotes the
 * hottest (site, target) pairs — selected greedily under a cumulative
 * weight budget — into guarded direct calls, keeping the original
 * indirect call as the fallback. Unlike classic ICP, the number of
 * targets promoted per site is unlimited: a compare is ~2 cycles while
 * a hardened indirect call costs ~21+ cycles, so extra checks are
 * cheap relative to the slow path they avoid.
 *
 * Promoted edges are moved from the indirect to the direct part of the
 * profile, so a subsequent inlining pass sees them as candidates
 * (promotion "provides more opportunities for inlining", §2.3).
 */
#ifndef PIBE_OPT_ICP_H_
#define PIBE_OPT_ICP_H_

#include <cstdint>
#include <map>
#include <vector>

#include "ir/module.h"
#include "profile/edge_profile.h"

namespace pibe::opt {

/**
 * Static feasibility of one indirect call site, as computed by the
 * target-set analysis (check/target_sets.h). Defined here as a plain
 * value type so the optimizer does not depend on the checker library:
 * callers that want total promotion compute the map and pass it in.
 */
struct SiteFeasibility
{
    /** Every flow into the site's pointer was resolved; `targets` is
     *  then exhaustive, not just a lower bound. */
    bool complete = false;
    /** Sorted, unique feasible targets. */
    std::vector<ir::FuncId> targets;
};

/** Per-site feasibility, keyed by the icall's SiteId. */
using FeasibilityMap = std::map<ir::SiteId, SiteFeasibility>;

/** Tuning knobs for runIcp(). */
struct IcpConfig
{
    /** Fraction of cumulative indirect weight to promote. */
    double budget = 0.99999;
    /** Optional cap on targets per site (0 = unlimited, the default). */
    uint32_t max_targets_per_site = 0;
    /**
     * Optional static target-set feasibility. When present, sites
     * whose set is complete, non-empty, and small are flagged
     * `total_promotion_safe` in the plan (the Switchpoline
     * precondition). Not owned; must outlive the pass.
     */
    const FeasibilityMap* feasibility = nullptr;
    /**
     * Promote *every* feasible target of total_promotion-safe sites
     * and drop the fallback indirect call entirely — the site's full
     * target set is covered by guarded direct calls, so the indirect
     * branch (and its speculation surface) vanishes. Requires
     * `feasibility`. Off by default: the classic PIBE chain keeps the
     * fallback.
     */
    bool total_promotion = false;
    /** Feasible-set size bound for total_promotion_safe. */
    uint32_t total_promotion_max_targets = 8;
};

/** Outcome accounting for Tables 4, 8, and 10. */
struct IcpAudit
{
    /** Total profiled indirect weight ("total weight" in Table 8). */
    uint64_t total_weight = 0;
    /** Weight moved onto promoted direct edges. */
    uint64_t promoted_weight = 0;
    /** Indirect sites with profile data (candidates, Table 10). */
    uint32_t candidate_sites = 0;
    /** Sites rewritten with at least one promoted target. */
    uint32_t promoted_sites = 0;
    /** Total (site, target) pairs promoted. */
    uint32_t promoted_targets = 0;
    /** Total distinct (site, target) pairs profiled. */
    uint32_t candidate_targets = 0;
    /** All indirect call sites in the module (Table 10 denominator). */
    uint32_t total_icall_sites = 0;
    /** Sites where max_targets_per_site truncated promotion: their
     *  fallback icall keeps live targets (residual attack surface the
     *  coverage report must count). */
    uint32_t capped_sites = 0;
    /** Sites flagged total_promotion_safe (complete feasible set of
     *  1..total_promotion_max_targets covered targets). */
    uint32_t total_safe_sites = 0;
    /** Fallback icalls actually dropped by total promotion. */
    uint32_t fallbacks_dropped = 0;
    /** Functions mutated by the pass (sorted, unique) — the incremental
     *  invalidation set for a following audit stage. */
    std::vector<ir::FuncId> touched;
};

/** Run indirect call promotion over `module`, updating `profile`. */
IcpAudit runIcp(ir::Module& module, profile::EdgeProfile& profile,
                const IcpConfig& config = {});

// --- plan / apply / finalize split ----------------------------------
//
// The same promotion decomposed into three phases so the parallel
// pipeline can fan the rewrites out per function while staying
// bit-identical to runIcp(): planning is read-only and deterministic,
// every fresh direct-call SiteId is pre-assigned at plan time (no
// allocator contention), application touches exactly one function, and
// profile movement happens once, serially, in site order.

/** One site's planned rewrite. */
struct IcpSitePlan
{
    ir::SiteId site = ir::kNoSite;
    ir::FuncId func = ir::kInvalidFunc; ///< Owning function.
    /** Promoted targets, hottest first. */
    std::vector<ir::FuncId> targets;
    /** Pre-assigned direct-call site ids, aligned with `targets`. */
    std::vector<ir::SiteId> direct_sites;
    /** The site's feasible set is complete, small, and entirely
     *  covered by `targets` (Switchpoline precondition). */
    bool total_promotion_safe = false;
    /** Emit the last target as an unguarded direct call and drop the
     *  fallback icall (only set when total_promotion_safe and total
     *  promotion is enabled). */
    bool drop_fallback = false;
    /** Set by applyIcpFunction when the rewrite landed. */
    bool applied = false;
};

/** A full promotion plan over one module. */
struct IcpPlan
{
    /** Site plans in ascending site order (the profile-update order). */
    std::vector<IcpSitePlan> sites;
    /** Indices into `sites` per owning function. */
    std::map<ir::FuncId, std::vector<size_t>> by_func;
    /** Exclusive upper bound of pre-assigned site ids; the caller must
     *  module.reserveSiteIds(site_id_bound) before further allocation. */
    ir::SiteId site_id_bound = 0;
    /** Audit with the candidate/total fields filled in. */
    IcpAudit audit;
};

/** Phase 1 (read-only): select promotions and pre-assign site ids. */
IcpPlan planIcp(const ir::Module& module,
                const profile::EdgeProfile& profile,
                const IcpConfig& config = {});

/**
 * Phase 2: apply every planned rewrite owned by `func`. Mutates only
 * that function (plus the plan's own `applied` flags), so distinct
 * functions may be applied concurrently.
 */
void applyIcpFunction(ir::Module& module, ir::FuncId func,
                      IcpPlan& plan);

/**
 * Phase 3 (serial): move promoted weight from the indirect to the
 * direct profile in site order and complete the audit (promoted_*
 * counters, touched set). Returns the finished audit.
 */
IcpAudit finalizeIcp(IcpPlan& plan, profile::EdgeProfile& profile);

} // namespace pibe::opt

#endif // PIBE_OPT_ICP_H_
