/**
 * @file
 * Scalar and CFG cleanup passes.
 *
 * These provide the "additional optimization opportunities" that make
 * inlining worthwhile beyond eliding the call/return pair (§5.2):
 * constant folding propagates constant arguments into inlined bodies,
 * DCE removes the code thus made dead, and CFG simplification merges
 * the straight-line seams inlining leaves behind (shrinking code size
 * and therefore i-cache footprint).
 */
#ifndef PIBE_OPT_CLEANUP_H_
#define PIBE_OPT_CLEANUP_H_

#include "ir/module.h"

namespace pibe::opt {

/**
 * Block-local constant folding: folds moves/binops over known
 * constants, and collapses conditional branches and switches on
 * constants into unconditional branches. Returns true if changed.
 */
bool constantFold(ir::Function& func);

/**
 * Block-local copy propagation: rewrites uses of `dst = move src` to
 * use `src` directly while both registers are unmodified, making the
 * move dead (inlining's argument-binding moves are the main customer).
 * Returns true if changed.
 */
bool copyPropagate(ir::Function& func);

/**
 * Dead-code elimination: removes side-effect-free instructions whose
 * results are never read, to a fixpoint. Returns true if changed.
 */
bool deadCodeElim(ir::Function& func);

/**
 * CFG simplification: threads trivial jump chains, merges blocks with
 * a unique predecessor into that predecessor, and deletes unreachable
 * blocks (renumbering the remainder). Returns true if changed.
 */
bool simplifyCfg(ir::Function& func);

/** Run all cleanups on one function to a (bounded) fixpoint. */
void cleanupFunction(ir::Function& func);

/** Run cleanupFunction over every function with a body. */
void cleanupModule(ir::Module& module);

} // namespace pibe::opt

#endif // PIBE_OPT_CLEANUP_H_
