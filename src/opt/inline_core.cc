#include "opt/inline_core.h"

#include <iterator>

namespace pibe::opt {

namespace {

/** Remap a register from callee space into caller space. */
ir::Reg
remapReg(ir::Reg r, uint32_t reg_base)
{
    return r == ir::kNoReg ? ir::kNoReg : r + reg_base;
}

} // namespace

const char*
inlineRefusalReason(const ir::Module& module, ir::FuncId caller,
                    const ir::Instruction& call)
{
    if (call.op != ir::Opcode::kCall)
        return "not a direct call";
    const ir::Function& caller_f = module.func(caller);
    const ir::Function& callee_f = module.func(call.callee);
    if (callee_f.isDeclaration())
        return "callee is a declaration";
    if (callee_f.id == caller)
        return "self-recursive call";
    if (callee_f.hasAttr(ir::kAttrNoInline))
        return "callee is noinline";
    if (callee_f.hasAttr(ir::kAttrExternal))
        return "callee is external";
    if (callee_f.hasAttr(ir::kAttrOptNone))
        return "callee is optnone";
    if (caller_f.hasAttr(ir::kAttrOptNone))
        return "caller is optnone";
    return nullptr;
}

namespace {

/** Shared implementation; `fixed_id` non-null = pre-assigned ids. */
InlineOutcome
inlineImpl(ir::Module& module, ir::FuncId caller, ir::SiteId site,
           ir::SiteId* fixed_id)
{
    InlineOutcome outcome;
    ir::Function& caller_f = module.func(caller);

    // Locate the call site.
    ir::BlockId call_bb = 0;
    uint32_t call_idx = 0;
    bool found = false;
    for (ir::BlockId b = 0; !found && b < caller_f.blocks.size(); ++b) {
        const auto& insts = caller_f.blocks[b].insts;
        for (uint32_t i = 0; i < insts.size(); ++i) {
            if (insts[i].site_id == site &&
                insts[i].op == ir::Opcode::kCall) {
                call_bb = b;
                call_idx = i;
                found = true;
                break;
            }
        }
    }
    if (!found) {
        outcome.reason = "site not found";
        return outcome;
    }

    // Copy the call instruction before we start rewriting the block.
    const ir::Instruction call = caller_f.blocks[call_bb].insts[call_idx];
    if (const char* reason = inlineRefusalReason(module, caller, call)) {
        outcome.reason = reason;
        return outcome;
    }

    const ir::Function& callee_f = module.func(call.callee);
    const uint32_t reg_base = caller_f.num_regs;
    const uint32_t frame_base = caller_f.frame_size;

    // 1. Continuation block receives everything after the call.
    const ir::BlockId cont_id =
        static_cast<ir::BlockId>(caller_f.blocks.size());
    caller_f.blocks.emplace_back();
    {
        auto& src = caller_f.blocks[call_bb].insts;
        auto& dst = caller_f.blocks[cont_id].insts;
        dst.assign(std::make_move_iterator(src.begin() + call_idx + 1),
                   std::make_move_iterator(src.end()));
        src.resize(call_idx); // drops the call itself as well
    }

    // 2. Copy the callee's blocks, remapping registers, frame slots,
    //    branch targets, and site ids.
    const ir::BlockId block_base =
        static_cast<ir::BlockId>(caller_f.blocks.size());
    for (const ir::BasicBlock& src_bb : callee_f.blocks) {
        ir::BasicBlock copy;
        copy.insts.reserve(src_bb.insts.size());
        for (const ir::Instruction& src : src_bb.insts) {
            ir::Instruction inst = src;
            inst.dst = remapReg(inst.dst, reg_base);
            inst.a = remapReg(inst.a, reg_base);
            inst.b = remapReg(inst.b, reg_base);
            for (ir::Reg& r : inst.args)
                r = remapReg(r, reg_base);
            switch (inst.op) {
              case ir::Opcode::kFrameLoad:
              case ir::Opcode::kFrameStore:
                inst.imm += frame_base;
                break;
              case ir::Opcode::kBr:
                inst.t0 += block_base;
                break;
              case ir::Opcode::kCondBr:
                inst.t0 += block_base;
                inst.t1 += block_base;
                break;
              case ir::Opcode::kSwitch:
                inst.t0 += block_base;
                for (ir::BlockId& t : inst.case_targets)
                    t += block_base;
                break;
              case ir::Opcode::kCall:
              case ir::Opcode::kICall: {
                const bool indirect = inst.op == ir::Opcode::kICall;
                ir::SiteId fresh =
                    fixed_id ? (*fixed_id)++ : module.allocSiteId();
                outcome.inherited.push_back(
                    {fresh, inst.site_id, indirect,
                     indirect ? ir::kInvalidFunc : inst.callee});
                inst.site_id = fresh;
                break;
              }
              case ir::Opcode::kRet: {
                // Return becomes a move of the return value into the
                // call's destination plus a jump to the continuation.
                ir::Instruction res;
                if (call.dst != ir::kNoReg) {
                    if (inst.a != ir::kNoReg) {
                        res.op = ir::Opcode::kMove;
                        res.a = inst.a; // already remapped above
                    } else {
                        res.op = ir::Opcode::kConst;
                        res.imm = 0;
                    }
                    res.dst = call.dst;
                    copy.insts.push_back(res);
                }
                inst = ir::Instruction{};
                inst.op = ir::Opcode::kBr;
                inst.t0 = cont_id;
                break;
              }
              default:
                break;
            }
            copy.insts.push_back(std::move(inst));
        }
        caller_f.blocks.push_back(std::move(copy));
    }

    // 3. Bind arguments and enter the inlined body. Parameters occupy
    //    callee registers [0, num_params), i.e. caller registers
    //    [reg_base, reg_base + num_params).
    {
        auto& insts = caller_f.blocks[call_bb].insts;
        for (uint32_t p = 0; p < callee_f.num_params; ++p) {
            ir::Instruction mv;
            mv.op = ir::Opcode::kMove;
            mv.dst = reg_base + p;
            mv.a = call.args[p];
            insts.push_back(mv);
        }
        ir::Instruction br;
        br.op = ir::Opcode::kBr;
        br.t0 = block_base; // callee entry block is block 0
        insts.push_back(br);
    }

    caller_f.num_regs += callee_f.num_regs;
    caller_f.frame_size += callee_f.frame_size;

    outcome.ok = true;
    return outcome;
}

} // namespace

InlineOutcome
inlineCallSite(ir::Module& module, ir::FuncId caller, ir::SiteId site)
{
    return inlineImpl(module, caller, site, nullptr);
}

InlineOutcome
inlineCallSiteWithIds(ir::Module& module, ir::FuncId caller,
                      ir::SiteId site, ir::SiteId id_base)
{
    return inlineImpl(module, caller, site, &id_base);
}

} // namespace pibe::opt
