#include "opt/cleanup.h"

#include <algorithm>
#include <unordered_map>
#include <vector>

namespace pibe::opt {

namespace {

/** Evaluate a binary operator; returns false if undefined (div by 0). */
bool
evalBinOp(ir::BinKind kind, int64_t a, int64_t b, int64_t* out)
{
    using ir::BinKind;
    const auto ua = static_cast<uint64_t>(a);
    const auto ub = static_cast<uint64_t>(b);
    switch (kind) {
      case BinKind::kAdd: *out = static_cast<int64_t>(ua + ub); return true;
      case BinKind::kSub: *out = static_cast<int64_t>(ua - ub); return true;
      case BinKind::kMul: *out = static_cast<int64_t>(ua * ub); return true;
      case BinKind::kDiv:
        if (b == 0)
            return false;
        *out = static_cast<int64_t>(ua / ub);
        return true;
      case BinKind::kRem:
        if (b == 0)
            return false;
        *out = static_cast<int64_t>(ua % ub);
        return true;
      case BinKind::kAnd: *out = a & b; return true;
      case BinKind::kOr:  *out = a | b; return true;
      case BinKind::kXor: *out = a ^ b; return true;
      case BinKind::kShl: *out = static_cast<int64_t>(ua << (ub & 63));
        return true;
      case BinKind::kShr: *out = static_cast<int64_t>(ua >> (ub & 63));
        return true;
      case BinKind::kEq:  *out = (a == b); return true;
      case BinKind::kNe:  *out = (a != b); return true;
      case BinKind::kLt:  *out = (a < b); return true;
      case BinKind::kLe:  *out = (a <= b); return true;
      case BinKind::kGt:  *out = (a > b); return true;
      case BinKind::kGe:  *out = (a >= b); return true;
    }
    return false;
}

} // namespace

bool
constantFold(ir::Function& func)
{
    bool changed = false;
    for (auto& bb : func.blocks) {
        // Facts are block-local: registers are function-scoped, so a
        // value flowing in from another block is unknown here.
        std::unordered_map<ir::Reg, int64_t> known;
        auto lookup = [&](ir::Reg r, int64_t* v) {
            auto it = known.find(r);
            if (it == known.end())
                return false;
            *v = it->second;
            return true;
        };
        auto clobber = [&](const ir::Instruction& inst) {
            if (inst.hasDst())
                known.erase(inst.dst);
        };

        for (auto& inst : bb.insts) {
            switch (inst.op) {
              case ir::Opcode::kConst:
                known[inst.dst] = inst.imm;
                break;
              case ir::Opcode::kFuncAddr:
                known[inst.dst] = ir::funcAddrValue(inst.callee);
                break;
              case ir::Opcode::kMove: {
                int64_t v;
                if (lookup(inst.a, &v)) {
                    inst.op = ir::Opcode::kConst;
                    inst.imm = v;
                    inst.a = ir::kNoReg;
                    known[inst.dst] = v;
                    changed = true;
                } else {
                    clobber(inst);
                }
                break;
              }
              case ir::Opcode::kBinOp: {
                int64_t a, b, v;
                if (lookup(inst.a, &a) && lookup(inst.b, &b) &&
                    evalBinOp(inst.bin, a, b, &v)) {
                    inst.op = ir::Opcode::kConst;
                    inst.imm = v;
                    inst.a = inst.b = ir::kNoReg;
                    known[inst.dst] = v;
                    changed = true;
                } else {
                    clobber(inst);
                }
                break;
              }
              case ir::Opcode::kCondBr: {
                int64_t c;
                if (lookup(inst.a, &c)) {
                    inst.op = ir::Opcode::kBr;
                    inst.t0 = (c != 0) ? inst.t0 : inst.t1;
                    inst.a = ir::kNoReg;
                    inst.t1 = 0;
                    changed = true;
                }
                break;
              }
              case ir::Opcode::kSwitch: {
                int64_t v;
                if (lookup(inst.a, &v)) {
                    ir::BlockId target = inst.t0;
                    for (size_t c = 0; c < inst.case_values.size(); ++c) {
                        if (inst.case_values[c] == v) {
                            target = inst.case_targets[c];
                            break;
                        }
                    }
                    inst = ir::Instruction{};
                    inst.op = ir::Opcode::kBr;
                    inst.t0 = target;
                    changed = true;
                }
                break;
              }
              default:
                clobber(inst);
                break;
            }
        }
    }
    return changed;
}

bool
copyPropagate(ir::Function& func)
{
    bool changed = false;
    std::unordered_map<ir::Reg, ir::Reg> copy_of;
    auto resolve = [&](ir::Reg r) {
        auto it = copy_of.find(r);
        return it == copy_of.end() ? r : it->second;
    };
    for (auto& bb : func.blocks) {
        copy_of.clear();
        for (auto& inst : bb.insts) {
            // Rewrite operand uses through known copies.
            auto rewrite = [&](ir::Reg& r) {
                if (r == ir::kNoReg)
                    return;
                ir::Reg to = resolve(r);
                if (to != r) {
                    r = to;
                    changed = true;
                }
            };
            rewrite(inst.a);
            rewrite(inst.b);
            for (ir::Reg& r : inst.args)
                rewrite(r);

            // Record / invalidate facts for the written register.
            if (inst.hasDst()) {
                copy_of.erase(inst.dst);
                for (auto it = copy_of.begin(); it != copy_of.end();) {
                    if (it->second == inst.dst)
                        it = copy_of.erase(it);
                    else
                        ++it;
                }
                if (inst.op == ir::Opcode::kMove &&
                    inst.a != inst.dst) {
                    copy_of[inst.dst] = inst.a; // a is already resolved
                }
            }
        }
    }
    return changed;
}

bool
deadCodeElim(ir::Function& func)
{
    bool any_change = false;
    bool changed = true;
    while (changed) {
        changed = false;
        std::vector<uint32_t> uses(func.num_regs, 0);
        auto use = [&](ir::Reg r) {
            if (r != ir::kNoReg)
                ++uses[r];
        };
        for (const auto& bb : func.blocks) {
            for (const auto& inst : bb.insts) {
                use(inst.a);
                use(inst.b);
                for (ir::Reg r : inst.args)
                    use(r);
            }
        }
        for (auto& bb : func.blocks) {
            auto it = std::remove_if(
                bb.insts.begin(), bb.insts.end(),
                [&](const ir::Instruction& inst) {
                    return inst.hasDst() && uses[inst.dst] == 0 &&
                           !inst.hasSideEffects();
                });
            if (it != bb.insts.end()) {
                bb.insts.erase(it, bb.insts.end());
                changed = true;
                any_change = true;
            }
        }
    }
    return any_change;
}

namespace {

/** Append every successor of `term` to `out`. */
void
successors(const ir::Instruction& term, std::vector<ir::BlockId>* out)
{
    switch (term.op) {
      case ir::Opcode::kBr:
        out->push_back(term.t0);
        break;
      case ir::Opcode::kCondBr:
        out->push_back(term.t0);
        out->push_back(term.t1);
        break;
      case ir::Opcode::kSwitch:
        out->push_back(term.t0);
        for (ir::BlockId t : term.case_targets)
            out->push_back(t);
        break;
      default:
        break;
    }
}

/** Retarget every successor reference using `map`. */
void
retarget(ir::Instruction& term, const std::vector<ir::BlockId>& map)
{
    switch (term.op) {
      case ir::Opcode::kBr:
        term.t0 = map[term.t0];
        break;
      case ir::Opcode::kCondBr:
        term.t0 = map[term.t0];
        term.t1 = map[term.t1];
        break;
      case ir::Opcode::kSwitch:
        term.t0 = map[term.t0];
        for (ir::BlockId& t : term.case_targets)
            t = map[t];
        break;
      default:
        break;
    }
}

} // namespace

bool
simplifyCfg(ir::Function& func)
{
    if (func.blocks.empty())
        return false;
    bool any_change = false;

    // 1. Thread jumps through blocks that contain only "br X".
    {
        std::vector<ir::BlockId> forward(func.blocks.size());
        for (ir::BlockId b = 0; b < func.blocks.size(); ++b) {
            forward[b] = b;
            const auto& insts = func.blocks[b].insts;
            if (insts.size() == 1 && insts[0].op == ir::Opcode::kBr &&
                insts[0].t0 != b) {
                forward[b] = insts[0].t0;
            }
        }
        // Resolve chains (bounded to avoid cycles of trivial blocks).
        for (ir::BlockId b = 0; b < func.blocks.size(); ++b) {
            ir::BlockId t = forward[b];
            for (int hops = 0; hops < 8 && forward[t] != t; ++hops)
                t = forward[t];
            forward[b] = t;
        }
        for (auto& bb : func.blocks) {
            if (bb.insts.empty())
                continue;
            ir::Instruction& term = bb.insts.back();
            ir::Instruction before = term;
            retarget(term, forward);
            if (term.t0 != before.t0 || term.t1 != before.t1 ||
                term.case_targets != before.case_targets) {
                any_change = true;
            }
        }
    }

    // 2. Merge blocks with a unique predecessor into that predecessor.
    {
        bool merged = true;
        while (merged) {
            merged = false;
            std::vector<uint32_t> preds(func.blocks.size(), 0);
            std::vector<ir::BlockId> succ;
            for (const auto& bb : func.blocks) {
                if (bb.insts.empty())
                    continue;
                succ.clear();
                successors(bb.insts.back(), &succ);
                for (ir::BlockId s : succ)
                    ++preds[s];
            }
            for (ir::BlockId b = 0; b < func.blocks.size(); ++b) {
                auto& bb = func.blocks[b];
                if (bb.insts.empty())
                    continue;
                const ir::Instruction& term = bb.insts.back();
                if (term.op != ir::Opcode::kBr)
                    continue;
                ir::BlockId t = term.t0;
                if (t == b || t == 0 || preds[t] != 1)
                    continue;
                // Splice t into b.
                bb.insts.pop_back();
                auto& src = func.blocks[t].insts;
                bb.insts.insert(bb.insts.end(),
                                std::make_move_iterator(src.begin()),
                                std::make_move_iterator(src.end()));
                src.clear();
                merged = true;
                any_change = true;
                break; // pred counts are stale; recompute
            }
        }
    }

    // 3. Remove unreachable (and emptied) blocks, renumbering.
    {
        std::vector<bool> reachable(func.blocks.size(), false);
        std::vector<ir::BlockId> work{0};
        reachable[0] = true;
        std::vector<ir::BlockId> succ;
        while (!work.empty()) {
            ir::BlockId b = work.back();
            work.pop_back();
            const auto& bb = func.blocks[b];
            if (bb.insts.empty())
                continue;
            succ.clear();
            successors(bb.insts.back(), &succ);
            for (ir::BlockId s : succ) {
                if (!reachable[s]) {
                    reachable[s] = true;
                    work.push_back(s);
                }
            }
        }
        bool all = true;
        for (ir::BlockId b = 0; b < func.blocks.size(); ++b)
            all = all && reachable[b];
        if (!all) {
            std::vector<ir::BlockId> remap(func.blocks.size(), 0);
            std::vector<ir::BasicBlock> kept;
            for (ir::BlockId b = 0; b < func.blocks.size(); ++b) {
                if (reachable[b]) {
                    remap[b] = static_cast<ir::BlockId>(kept.size());
                    kept.push_back(std::move(func.blocks[b]));
                }
            }
            for (auto& bb : kept) {
                if (!bb.insts.empty())
                    retarget(bb.insts.back(), remap);
            }
            func.blocks = std::move(kept);
            any_change = true;
        }
    }

    return any_change;
}

void
cleanupFunction(ir::Function& func)
{
    if (func.isDeclaration() || func.hasAttr(ir::kAttrOptNone))
        return;
    for (int round = 0; round < 3; ++round) {
        bool changed = false;
        changed |= constantFold(func);
        changed |= copyPropagate(func);
        changed |= deadCodeElim(func);
        changed |= simplifyCfg(func);
        if (!changed)
            break;
    }
}

void
cleanupModule(ir::Module& module)
{
    for (ir::Function& f : module.functions())
        cleanupFunction(f);
}

} // namespace pibe::opt
