#include <algorithm>
#include <queue>
#include <unordered_map>

#include "analysis/call_graph.h"
#include "analysis/inline_cost.h"
#include "opt/cleanup.h"
#include "opt/inline_core.h"
#include "opt/inliner.h"
#include "support/logging.h"

namespace pibe::opt {

namespace {

/** One work item of the greedy inliner: a weighted direct call site. */
struct Candidate
{
    uint64_t weight = 0;
    uint64_t seq = 0; ///< Insertion order; breaks weight ties (FIFO).
    ir::SiteId site = ir::kNoSite;
    ir::FuncId caller = ir::kInvalidFunc;
};

struct HotterFirst
{
    bool
    operator()(const Candidate& a, const Candidate& b) const
    {
        if (a.weight != b.weight)
            return a.weight < b.weight; // max-heap by weight
        return a.seq > b.seq;           // then FIFO
    }
};

/** Locate the kCall instruction with `site` inside `caller`. */
const ir::Instruction*
findCallSite(const ir::Function& caller, ir::SiteId site)
{
    for (const auto& bb : caller.blocks) {
        for (const auto& inst : bb.insts) {
            if (inst.site_id == site && inst.op == ir::Opcode::kCall)
                return &inst;
        }
    }
    return nullptr;
}

} // namespace

InlineAudit
runPibeInliner(ir::Module& module, profile::EdgeProfile& profile,
               const PibeInlinerConfig& config)
{
    InlineAudit audit;
    analysis::CallGraph callgraph(module);
    analysis::InlineCostCache costs(module);

    // Snapshot profiling-time invocation counts for the constant-ratio
    // heuristic; they deliberately stay fixed during the run (§5.2).
    std::vector<uint64_t> orig_invocations(module.numFunctions());
    for (ir::FuncId f = 0; f < module.numFunctions(); ++f)
        orig_invocations[f] = profile.invocations(f);

    // Rule 1: gather all profiled direct call sites and find the weight
    // cutoff such that the sites at or above it cover `budget` of the
    // cumulative execution weight.
    std::vector<Candidate> initial;
    uint64_t seq = 0;
    for (const ir::Function& f : module.functions()) {
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                if (inst.op != ir::Opcode::kCall)
                    continue;
                uint64_t w = profile.directCount(inst.site_id);
                if (w == 0)
                    continue;
                initial.push_back({w, seq++, inst.site_id, f.id});
                audit.total_weight += w;
            }
        }
    }
    audit.candidate_sites = static_cast<uint32_t>(initial.size());
    if (initial.empty())
        return audit;

    std::vector<Candidate> sorted = initial;
    std::sort(sorted.begin(), sorted.end(), [](const auto& a, const auto& b) {
        if (a.weight != b.weight)
            return a.weight > b.weight;
        return a.seq < b.seq;
    });

    const double budget_target =
        config.budget * static_cast<double>(audit.total_weight);
    const double lax_target =
        config.lax_budget * static_cast<double>(audit.total_weight);
    uint64_t weight_cut = 1;
    uint64_t lax_weight_cut = UINT64_MAX;
    {
        double cum = 0;
        for (const auto& c : sorted) {
            const bool in_budget = cum < budget_target;
            if (in_budget) {
                weight_cut = c.weight;
                audit.eligible_weight += c.weight;
            }
            if (config.lax_heuristics && cum < lax_target)
                lax_weight_cut = c.weight;
            cum += static_cast<double>(c.weight);
            if (!in_budget && (!config.lax_heuristics || cum >= lax_target))
                break;
        }
    }

    std::priority_queue<Candidate, std::vector<Candidate>, HotterFirst>
        queue;
    for (const auto& c : sorted) {
        if (c.weight >= weight_cut)
            queue.push(c);
    }

    // Greedy loop: always attempt the hottest remaining site.
    uint64_t steps = 0;
    while (!queue.empty()) {
        if (++steps > config.max_steps) {
            warn("pibe inliner: step limit reached, stopping early");
            break;
        }
        Candidate c = queue.top();
        queue.pop();
        ++audit.attempted_sites;

        ir::Function& caller = module.func(c.caller);
        const ir::Instruction* call = findCallSite(caller, c.site);
        if (!call) {
            // Site vanished (e.g. cleanup removed an unreachable copy).
            audit.blocked_other_weight += c.weight;
            continue;
        }
        ir::FuncId callee = call->callee;

        if (const char* reason =
                inlineRefusalReason(module, c.caller, *call)) {
            (void)reason;
            audit.blocked_other_weight += c.weight;
            continue;
        }
        if (callgraph.isRecursive(callee)) {
            audit.blocked_other_weight += c.weight;
            continue;
        }

        const bool lax_exempt =
            config.lax_heuristics && c.weight >= lax_weight_cut;
        const int64_t callee_cost = costs.cost(callee);
        if (!lax_exempt) {
            // Rule 3 first: a heavyweight callee is refused regardless
            // of the caller's remaining budget (§5.2, Figure 1).
            if (callee_cost > config.rule3_callee_threshold) {
                audit.blocked_rule3_weight += c.weight;
                continue;
            }
            // Rule 2: do not grow the caller past its complexity budget.
            if (costs.cost(c.caller) + callee_cost >
                config.rule2_caller_threshold) {
                audit.blocked_rule2_weight += c.weight;
                continue;
            }
        }

        InlineOutcome outcome = inlineCallSite(module, c.caller, c.site);
        if (!outcome.ok) {
            audit.blocked_other_weight += c.weight;
            continue;
        }
        ++audit.inlined_sites;
        audit.inlined_weight += c.weight;
        audit.touched.push_back(c.caller);

        // Constant-ratio heuristic: each call site copied from the
        // callee inherits its profiled count scaled by the ratio of
        // this edge's weight to the callee's total invocation count.
        const uint64_t callee_inv =
            config.propagate_inherited_counts ? orig_invocations[callee]
                                              : 0;
        for (const InheritedSite& inh : outcome.inherited) {
            if (callee_inv == 0)
                break;
            if (inh.indirect) {
                // Scale the whole value profile onto the new site; the
                // inherited indirect site remains a hardening target
                // (and an ICP candidate on a future optimization run).
                for (const auto& tc :
                     profile.indirectTargets(inh.callee_site)) {
                    uint64_t scaled = static_cast<uint64_t>(
                        static_cast<double>(tc.count) *
                        static_cast<double>(c.weight) /
                        static_cast<double>(callee_inv));
                    if (scaled > 0)
                        profile.addIndirect(inh.new_site, tc.target,
                                            scaled);
                }
                continue;
            }
            uint64_t base = profile.directCount(inh.callee_site);
            if (base == 0)
                continue;
            uint64_t scaled = static_cast<uint64_t>(
                static_cast<double>(base) * static_cast<double>(c.weight) /
                static_cast<double>(callee_inv));
            if (scaled == 0)
                continue;
            profile.addDirect(inh.new_site, scaled);
            if (scaled >= weight_cut)
                queue.push({scaled, seq++, inh.new_site, c.caller});
        }

        if (config.cleanup_callers)
            cleanupFunction(caller);
        costs.invalidate(c.caller);
    }

    std::sort(audit.touched.begin(), audit.touched.end());
    audit.touched.erase(
        std::unique(audit.touched.begin(), audit.touched.end()),
        audit.touched.end());
    return audit;
}

} // namespace pibe::opt
