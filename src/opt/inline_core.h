/**
 * @file
 * Mechanics of inlining one direct call site in PIR.
 *
 * This is policy-free: deciding *which* sites to inline is the job of
 * the inliner passes (pibe_inliner.h, default_inliner.h); this header
 * implements the transformation itself plus the legality predicate
 * shared by all policies.
 */
#ifndef PIBE_OPT_INLINE_CORE_H_
#define PIBE_OPT_INLINE_CORE_H_

#include <vector>

#include "ir/module.h"

namespace pibe::opt {

/**
 * A call site of the callee that was copied into the caller by an
 * inline step. The inliner uses these to propagate scaled execution
 * counts onto the inherited sites (§5.2 Rule 1's constant-ratio
 * heuristic).
 */
struct InheritedSite
{
    ir::SiteId new_site = ir::kNoSite;    ///< Fresh id in the caller.
    ir::SiteId callee_site = ir::kNoSite; ///< Original id in the callee.
    bool indirect = false;                ///< kICall rather than kCall.
    /** Static callee of an inherited direct call (kInvalidFunc for
     *  indirect sites) — lets policies re-queue inherited candidates
     *  without re-scanning the caller. */
    ir::FuncId callee = ir::kInvalidFunc;
};

/** Result of an inlineCallSite() application. */
struct InlineOutcome
{
    bool ok = false;
    const char* reason = nullptr; ///< Refusal reason when !ok.
    std::vector<InheritedSite> inherited;
};

/**
 * Why a direct call site must not be inlined, or nullptr if it is
 * legal. Checks attributes (noinline/optnone/external), declarations,
 * and direct self-recursion; mutual recursion must be screened by the
 * caller via CallGraph::isRecursive.
 */
const char* inlineRefusalReason(const ir::Module& module,
                                ir::FuncId caller,
                                const ir::Instruction& call);

/**
 * Inline the direct call carrying `site` inside function `caller`.
 *
 * On success, the call instruction is replaced by argument moves and a
 * branch into a copy of the callee's blocks; callee returns become
 * moves plus branches to the continuation; every call site copied from
 * the callee gets a fresh SiteId (reported via InlineOutcome so the
 * policy can assign inherited weights). The caller's register count
 * and frame size grow by the callee's.
 */
InlineOutcome inlineCallSite(ir::Module& module, ir::FuncId caller,
                             ir::SiteId site);

/**
 * As inlineCallSite(), but inherited sites take sequential ids
 * starting at `id_base` instead of going through the module's
 * allocator — one id per kCall/kICall of the (frozen) callee, consumed
 * in block order. The caller pre-reserves the range, which makes
 * applications over disjoint caller/callee pairs safe to run
 * concurrently and their id assignment independent of scheduling.
 */
InlineOutcome inlineCallSiteWithIds(ir::Module& module,
                                    ir::FuncId caller, ir::SiteId site,
                                    ir::SiteId id_base);

} // namespace pibe::opt

#endif // PIBE_OPT_INLINE_CORE_H_
