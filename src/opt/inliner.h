/**
 * @file
 * The two profile-guided inliners evaluated in the paper:
 *
 *  - runPibeInliner(): PIBE's greedy, weight-ordered inliner (§5.2),
 *    governed by Rule 1 (inline only hot sites, selected by a
 *    cumulative-weight budget), Rule 2 (caller complexity threshold,
 *    default 12000 InlineCost units) and Rule 3 (callee complexity
 *    threshold, default 3000 units), with the constant-ratio heuristic
 *    for weighting call sites inherited through inlining.
 *
 *  - runDefaultInliner(): an LLVM-like bottom-up PGO inliner, the
 *    comparator of §8.4 — it visits callers in SCC bottom-up order and
 *    inlines in code order based on callee size and hotness hints,
 *    irrespective of profile weight ordering.
 *
 * Both update the profile in place (inherited sites receive scaled
 * counts) and produce an InlineAudit for the gadget-elimination and
 * inhibitor tables (Tables 8–10).
 */
#ifndef PIBE_OPT_INLINER_H_
#define PIBE_OPT_INLINER_H_

#include <cstdint>

#include "ir/module.h"
#include "profile/edge_profile.h"

namespace pibe::opt {

/** Tuning knobs for runPibeInliner(). Defaults follow the paper. */
struct PibeInlinerConfig
{
    /** Rule 1: fraction of cumulative call weight to attempt. */
    double budget = 0.999;
    /** Rule 2: max caller complexity after inlining (InlineCost units). */
    int64_t rule2_caller_threshold = 12000;
    /** Rule 3: max callee complexity (InlineCost units). */
    int64_t rule3_callee_threshold = 3000;
    /**
     * The paper's "lax heuristics" configuration: disable Rules 2 and 3
     * for sites inside the hottest `lax_budget` fraction of weight
     * (found counterproductive there at high budgets, §8.3).
     */
    bool lax_heuristics = false;
    double lax_budget = 0.99;
    /** Safety valve against pathological inline chains. */
    uint64_t max_steps = 1u << 20;
    /** Run scalar/CFG cleanup on each changed caller (recommended). */
    bool cleanup_callers = true;
    /**
     * Apply the constant-ratio heuristic to call sites inherited
     * through inlining (§5.2 Rule 1). Disabling this is an ablation:
     * inherited sites get no weight, so multi-level hot chains stop
     * being discovered after the first inline step.
     */
    bool propagate_inherited_counts = true;
};

/** Tuning knobs for runDefaultInliner(). */
struct DefaultInlinerConfig
{
    /** Fraction of cumulative weight classified as "hot". */
    double budget = 0.999;
    /** Callee size threshold at hot call sites (LLVM hot inhibitor). */
    int64_t hot_callee_threshold = 3000;
    /** Callee size threshold at cold call sites. */
    int64_t cold_callee_threshold = 150;
    /**
     * Stop growing a caller beyond this complexity. Because the
     * default inliner visits sites in code order, cold sites routinely
     * consume this budget before hotter ones are reached — the §8.4
     * failure mode PIBE's weight ordering avoids.
     */
    int64_t caller_growth_cap = 6000;
    bool cleanup_callers = true;
};

/** Outcome accounting for Tables 8, 9, and 10. */
struct InlineAudit
{
    /** Sum of all profiled direct-call weight ("Ovr." in Table 9). */
    uint64_t total_weight = 0;
    /** Weight within the Rule-1 budget (eligible for inlining). */
    uint64_t eligible_weight = 0;
    /** Weight actually elided by inlining (Table 8 "return weight"). */
    uint64_t inlined_weight = 0;
    /** Weight refused by Rule 2 (caller complexity). */
    uint64_t blocked_rule2_weight = 0;
    /** Weight refused by Rule 3 (callee complexity). */
    uint64_t blocked_rule3_weight = 0;
    /** Weight refused for other reasons (noinline/optnone/recursion). */
    uint64_t blocked_other_weight = 0;
    /** Distinct profiled direct sites at the start (Table 10). */
    uint32_t candidate_sites = 0;
    /** Sites successfully inlined (Table 8 "return sites" elided). */
    uint32_t inlined_sites = 0;
    /** Sites popped and considered (inlined + refused). */
    uint32_t attempted_sites = 0;
    /** Callers mutated by the pass (sorted, unique) — the incremental
     *  invalidation set for a following audit stage. */
    std::vector<ir::FuncId> touched;
};

/** Run PIBE's greedy weight-ordered inliner over `module`. */
InlineAudit runPibeInliner(ir::Module& module,
                           profile::EdgeProfile& profile,
                           const PibeInlinerConfig& config = {});

/** Run the LLVM-like bottom-up comparator inliner over `module`. */
InlineAudit runDefaultInliner(ir::Module& module,
                              profile::EdgeProfile& profile,
                              const DefaultInlinerConfig& config = {});

} // namespace pibe::opt

#endif // PIBE_OPT_INLINER_H_
