#include "opt/icp.h"

#include <algorithm>
#include <iterator>
#include <set>

#include "support/logging.h"

namespace pibe::opt {

namespace {

struct PromotionCandidate
{
    ir::SiteId site = ir::kNoSite;
    ir::FuncId target = ir::kInvalidFunc;
    uint64_t count = 0;
};

/**
 * Locate the kICall instruction carrying `site` within one function.
 * (Scanning only the owning function instead of the whole module is
 * what keeps promotion O(sites x function-size) rather than
 * O(sites x module-size) — the module-wide rescan per promoted site
 * was the pipeline's superlinear hot spot at 10^6 instructions.)
 */
bool
findICall(ir::Function& f, ir::SiteId site, ir::BlockId* block,
          uint32_t* index)
{
    for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
        auto& insts = f.blocks[b].insts;
        for (uint32_t i = 0; i < insts.size(); ++i) {
            if (insts[i].site_id == site &&
                insts[i].op == ir::Opcode::kICall) {
                *block = b;
                *index = i;
                return true;
            }
        }
    }
    return false;
}

/**
 * Rewrite one indirect call site into a chain of guarded direct calls
 * (hottest target first) with the original indirect call as fallback.
 * The direct calls take their pre-assigned ids from `direct_sites`
 * (aligned with `targets`); no allocator access, so rewrites of
 * distinct functions are safe to run concurrently.
 *
 * With `drop_fallback` (total promotion: the target set is complete
 * and fully covered) the last target is emitted as an unguarded direct
 * call and the fallback indirect call is dropped — the site's indirect
 * branch vanishes entirely.
 */
void
promoteSite(ir::Function& f, ir::BlockId bb_id, uint32_t idx,
            const std::vector<ir::FuncId>& targets,
            const std::vector<ir::SiteId>& direct_sites,
            bool drop_fallback)
{
    PIBE_ASSERT(targets.size() == direct_sites.size(),
                "promoteSite: targets/sites misaligned");
    const ir::Instruction icall = f.blocks[bb_id].insts[idx];
    PIBE_ASSERT(icall.op == ir::Opcode::kICall,
                "promoteSite: not an icall");

    // Continuation block receives everything after the icall.
    const ir::BlockId cont =
        static_cast<ir::BlockId>(f.blocks.size());
    f.blocks.emplace_back();
    {
        auto& src = f.blocks[bb_id].insts;
        auto& dst = f.blocks[cont].insts;
        dst.assign(std::make_move_iterator(src.begin() + idx + 1),
                   std::make_move_iterator(src.end()));
        src.resize(idx);
    }

    ir::BlockId cur = bb_id;
    // With drop_fallback the final target needs no guard: the set is
    // exhaustive, so "none of the others" implies the last one.
    const size_t guarded =
        drop_fallback ? targets.size() - 1 : targets.size();
    for (size_t t = 0; t < guarded; ++t) {
        const ir::FuncId target = targets[t];
        // cur: addr = funcaddr target; cond = (ptr == addr);
        //      condbr cond, call_block, next_block
        const ir::BlockId call_block =
            static_cast<ir::BlockId>(f.blocks.size());
        f.blocks.emplace_back();
        const ir::BlockId next_block =
            static_cast<ir::BlockId>(f.blocks.size());
        f.blocks.emplace_back();

        ir::Instruction addr;
        addr.op = ir::Opcode::kFuncAddr;
        addr.dst = f.num_regs++;
        addr.callee = target;

        ir::Instruction cmp;
        cmp.op = ir::Opcode::kBinOp;
        cmp.bin = ir::BinKind::kEq;
        cmp.dst = f.num_regs++;
        cmp.a = icall.a;
        cmp.b = addr.dst;

        ir::Instruction guard;
        guard.op = ir::Opcode::kCondBr;
        guard.a = cmp.dst;
        guard.t0 = call_block;
        guard.t1 = next_block;

        auto& cur_insts = f.blocks[cur].insts;
        cur_insts.push_back(addr);
        cur_insts.push_back(cmp);
        cur_insts.push_back(guard);

        ir::Instruction direct;
        direct.op = ir::Opcode::kCall;
        direct.dst = icall.dst;
        direct.callee = target;
        direct.args = icall.args;
        direct.site_id = direct_sites[t];

        ir::Instruction br;
        br.op = ir::Opcode::kBr;
        br.t0 = cont;

        auto& call_insts = f.blocks[call_block].insts;
        call_insts.push_back(std::move(direct));
        call_insts.push_back(br);

        cur = next_block;
    }

    if (drop_fallback) {
        // Terminal direct call to the last feasible target; the
        // indirect call (and its site id) is gone.
        ir::Instruction direct;
        direct.op = ir::Opcode::kCall;
        direct.dst = icall.dst;
        direct.callee = targets.back();
        direct.args = icall.args;
        direct.site_id = direct_sites.back();
        ir::Instruction br;
        br.op = ir::Opcode::kBr;
        br.t0 = cont;
        auto& insts = f.blocks[cur].insts;
        insts.push_back(std::move(direct));
        insts.push_back(br);
        return;
    }

    // Fallback: the original indirect call (keeps its site id and any
    // residual profile weight), then fall through to the continuation.
    {
        ir::Instruction fallback = icall;
        ir::Instruction br;
        br.op = ir::Opcode::kBr;
        br.t0 = cont;
        auto& insts = f.blocks[cur].insts;
        insts.push_back(std::move(fallback));
        insts.push_back(br);
    }
}

} // namespace

IcpPlan
planIcp(const ir::Module& module, const profile::EdgeProfile& profile,
        const IcpConfig& config)
{
    IcpPlan plan;
    IcpAudit& audit = plan.audit;
    plan.site_id_bound = module.siteIdBound();

    // Count all indirect call sites (Table 10 denominator) and record
    // which sites are legal promotion subjects.
    std::map<ir::SiteId, const ir::Instruction*> icall_by_site;
    std::map<ir::SiteId, ir::FuncId> site_owner;
    for (const ir::Function& f : module.functions()) {
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                if (inst.op != ir::Opcode::kICall)
                    continue;
                ++audit.total_icall_sites;
                icall_by_site.emplace(inst.site_id, &inst);
                site_owner.emplace(inst.site_id, f.id);
            }
        }
    }

    // Gather (site, target, count) candidates.
    std::vector<PromotionCandidate> candidates;
    for (const auto& [site, targets] : profile.indirectSites()) {
        auto it = icall_by_site.find(site);
        if (it == icall_by_site.end())
            continue;
        const ir::Instruction* icall = it->second;
        if (icall->is_asm)
            continue; // inline-assembly sites are untouchable (§3)
        if (module.func(site_owner[site]).hasAttr(ir::kAttrOptNone))
            continue;
        bool counted_site = false;
        for (const auto& [target, count] : targets) {
            if (count == 0)
                continue;
            if (target >= module.numFunctions())
                continue;
            const ir::Function& callee = module.func(target);
            // A guarded direct call must match the callee's signature.
            if (callee.num_params != icall->args.size())
                continue;
            candidates.push_back({site, target, count});
            audit.total_weight += count;
            ++audit.candidate_targets;
            counted_site = true;
        }
        if (counted_site)
            ++audit.candidate_sites;
    }
    if (candidates.empty())
        return plan;

    // Greedy selection under the cumulative-weight budget, hottest
    // (site, target) pairs first.
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  if (a.site != b.site)
                      return a.site < b.site;
                  return a.target < b.target;
              });
    const double target_weight =
        config.budget * static_cast<double>(audit.total_weight);
    std::map<ir::SiteId, std::vector<PromotionCandidate>> chosen;
    std::set<ir::SiteId> capped;
    double cum = 0;
    for (const auto& c : candidates) {
        if (cum >= target_weight)
            break;
        auto& list = chosen[c.site];
        if (config.max_targets_per_site != 0 &&
            list.size() >= config.max_targets_per_site) {
            // The cap drops this candidate, leaving its weight on the
            // fallback icall: residual surface the coverage report
            // must count. It must not consume budget either, or a
            // capped hot site would starve colder promotable ones.
            capped.insert(c.site);
            continue;
        }
        cum += static_cast<double>(c.count);
        list.push_back(c);
    }
    audit.capped_sites = static_cast<uint32_t>(capped.size());

    // Pre-assign direct-call site ids in (site, target-rank) order —
    // exactly the order a serial allocSiteId() walk would produce.
    for (auto& [site, list] : chosen) {
        IcpSitePlan sp;
        sp.site = site;
        sp.func = site_owner[site];
        for (const auto& c : list) {
            sp.targets.push_back(c.target);
            sp.direct_sites.push_back(plan.site_id_bound++);
        }

        // Total-promotion safety (the Switchpoline precondition): the
        // static set is complete, non-empty, within the size bound,
        // every feasible target is promotable as a direct call, and
        // every profiled target is inside the set (so dropping the
        // fallback strands no observed weight).
        const SiteFeasibility* feas = nullptr;
        if (config.feasibility) {
            auto fit = config.feasibility->find(site);
            if (fit != config.feasibility->end())
                feas = &fit->second;
        }
        if (feas && feas->complete && !feas->targets.empty() &&
            feas->targets.size() <= config.total_promotion_max_targets) {
            const ir::Instruction* icall = icall_by_site[site];
            bool safe = true;
            for (ir::FuncId t : feas->targets) {
                if (t >= module.numFunctions() ||
                    module.func(t).num_params != icall->args.size()) {
                    safe = false;
                    break;
                }
            }
            if (safe) {
                auto pit = profile.indirectSites().find(site);
                if (pit != profile.indirectSites().end()) {
                    for (const auto& [target, count] : pit->second) {
                        if (count == 0)
                            continue;
                        if (!std::binary_search(feas->targets.begin(),
                                                feas->targets.end(),
                                                target)) {
                            safe = false;
                            break;
                        }
                    }
                }
            }
            if (safe) {
                sp.total_promotion_safe = true;
                ++audit.total_safe_sites;
                // A per-site cap wins over total promotion: never
                // expand a site beyond what the cap allows.
                bool cap_allows =
                    config.max_targets_per_site == 0 ||
                    feas->targets.size() <= config.max_targets_per_site;
                if (config.total_promotion && cap_allows) {
                    for (ir::FuncId t : feas->targets) {
                        if (std::find(sp.targets.begin(),
                                      sp.targets.end(),
                                      t) != sp.targets.end())
                            continue;
                        sp.targets.push_back(t);
                        sp.direct_sites.push_back(plan.site_id_bound++);
                    }
                    sp.drop_fallback = true;
                }
            }
        }

        plan.by_func[sp.func].push_back(plan.sites.size());
        plan.sites.push_back(std::move(sp));
    }
    return plan;
}

void
applyIcpFunction(ir::Module& module, ir::FuncId func, IcpPlan& plan)
{
    auto it = plan.by_func.find(func);
    if (it == plan.by_func.end())
        return;
    ir::Function& f = module.func(func);
    for (size_t idx : it->second) {
        IcpSitePlan& sp = plan.sites[idx];
        ir::BlockId block;
        uint32_t index;
        // Earlier rewrites in this function move trailing sites into
        // continuation blocks, so each site is re-located just-in-time
        // (within this function only).
        if (!findICall(f, sp.site, &block, &index))
            continue;
        promoteSite(f, block, index, sp.targets, sp.direct_sites,
                    sp.drop_fallback);
        sp.applied = true;
    }
}

IcpAudit
finalizeIcp(IcpPlan& plan, profile::EdgeProfile& profile)
{
    IcpAudit& audit = plan.audit;
    for (IcpSitePlan& sp : plan.sites) {
        if (!sp.applied)
            continue;
        ++audit.promoted_sites;
        if (sp.drop_fallback)
            ++audit.fallbacks_dropped;
        audit.touched.push_back(sp.func);
        for (size_t i = 0; i < sp.targets.size(); ++i) {
            uint64_t moved =
                profile.consumeIndirect(sp.site, sp.targets[i]);
            profile.addDirect(sp.direct_sites[i], moved);
            audit.promoted_weight += moved;
            ++audit.promoted_targets;
        }
        if (sp.drop_fallback) {
            // The site id no longer exists in the module; drain any
            // leftover (zero-count) value-profile entries so the
            // profile-flow checker sees no dangling site. All live
            // weight was consumed above (profiled ⊆ feasible is a
            // total_promotion_safe precondition).
            auto it = profile.indirectSites().find(sp.site);
            if (it != profile.indirectSites().end()) {
                std::vector<ir::FuncId> rest;
                for (const auto& [target, count] : it->second)
                    rest.push_back(target);
                for (ir::FuncId target : rest)
                    audit.promoted_weight +=
                        profile.consumeIndirect(sp.site, target);
            }
        }
    }
    std::sort(audit.touched.begin(), audit.touched.end());
    audit.touched.erase(
        std::unique(audit.touched.begin(), audit.touched.end()),
        audit.touched.end());
    return audit;
}

IcpAudit
runIcp(ir::Module& module, profile::EdgeProfile& profile,
       const IcpConfig& config)
{
    IcpPlan plan = planIcp(module, profile, config);
    for (const auto& [func, indices] : plan.by_func)
        applyIcpFunction(module, func, plan);
    module.reserveSiteIds(plan.site_id_bound);
    return finalizeIcp(plan, profile);
}

} // namespace pibe::opt
