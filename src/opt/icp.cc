#include "opt/icp.h"

#include <algorithm>
#include <iterator>
#include <map>
#include <vector>

#include "support/logging.h"

namespace pibe::opt {

namespace {

struct PromotionCandidate
{
    ir::SiteId site = ir::kNoSite;
    ir::FuncId target = ir::kInvalidFunc;
    uint64_t count = 0;
};

/** Locate the kICall instruction carrying `site`. */
bool
findICall(ir::Module& module, ir::SiteId site, ir::FuncId* func,
          ir::BlockId* block, uint32_t* index)
{
    for (ir::Function& f : module.functions()) {
        for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
            auto& insts = f.blocks[b].insts;
            for (uint32_t i = 0; i < insts.size(); ++i) {
                if (insts[i].site_id == site &&
                    insts[i].op == ir::Opcode::kICall) {
                    *func = f.id;
                    *block = b;
                    *index = i;
                    return true;
                }
            }
        }
    }
    return false;
}

/**
 * Rewrite one indirect call site into a chain of guarded direct calls
 * (hottest target first) with the original indirect call as fallback.
 * Returns the fresh site ids of the direct calls, aligned with
 * `targets`.
 */
std::vector<ir::SiteId>
promoteSite(ir::Module& module, ir::FuncId func_id, ir::BlockId bb_id,
            uint32_t idx, const std::vector<ir::FuncId>& targets)
{
    ir::Function& f = module.func(func_id);
    const ir::Instruction icall = f.blocks[bb_id].insts[idx];
    PIBE_ASSERT(icall.op == ir::Opcode::kICall, "promoteSite: not an icall");

    // Continuation block receives everything after the icall.
    const ir::BlockId cont =
        static_cast<ir::BlockId>(f.blocks.size());
    f.blocks.emplace_back();
    {
        auto& src = f.blocks[bb_id].insts;
        auto& dst = f.blocks[cont].insts;
        dst.assign(std::make_move_iterator(src.begin() + idx + 1),
                   std::make_move_iterator(src.end()));
        src.resize(idx);
    }

    std::vector<ir::SiteId> direct_sites;
    ir::BlockId cur = bb_id;
    for (ir::FuncId target : targets) {
        // cur: addr = funcaddr target; cond = (ptr == addr);
        //      condbr cond, call_block, next_block
        const ir::BlockId call_block =
            static_cast<ir::BlockId>(f.blocks.size());
        f.blocks.emplace_back();
        const ir::BlockId next_block =
            static_cast<ir::BlockId>(f.blocks.size());
        f.blocks.emplace_back();

        ir::Instruction addr;
        addr.op = ir::Opcode::kFuncAddr;
        addr.dst = f.num_regs++;
        addr.callee = target;

        ir::Instruction cmp;
        cmp.op = ir::Opcode::kBinOp;
        cmp.bin = ir::BinKind::kEq;
        cmp.dst = f.num_regs++;
        cmp.a = icall.a;
        cmp.b = addr.dst;

        ir::Instruction guard;
        guard.op = ir::Opcode::kCondBr;
        guard.a = cmp.dst;
        guard.t0 = call_block;
        guard.t1 = next_block;

        auto& cur_insts = f.blocks[cur].insts;
        cur_insts.push_back(addr);
        cur_insts.push_back(cmp);
        cur_insts.push_back(guard);

        ir::Instruction direct;
        direct.op = ir::Opcode::kCall;
        direct.dst = icall.dst;
        direct.callee = target;
        direct.args = icall.args;
        direct.site_id = module.allocSiteId();
        direct_sites.push_back(direct.site_id);

        ir::Instruction br;
        br.op = ir::Opcode::kBr;
        br.t0 = cont;

        auto& call_insts = f.blocks[call_block].insts;
        call_insts.push_back(std::move(direct));
        call_insts.push_back(br);

        cur = next_block;
    }

    // Fallback: the original indirect call (keeps its site id and any
    // residual profile weight), then fall through to the continuation.
    {
        ir::Instruction fallback = icall;
        ir::Instruction br;
        br.op = ir::Opcode::kBr;
        br.t0 = cont;
        auto& insts = f.blocks[cur].insts;
        insts.push_back(std::move(fallback));
        insts.push_back(br);
    }

    return direct_sites;
}

} // namespace

IcpAudit
runIcp(ir::Module& module, profile::EdgeProfile& profile,
       const IcpConfig& config)
{
    IcpAudit audit;

    // Count all indirect call sites (Table 10 denominator) and record
    // which sites are legal promotion subjects.
    std::map<ir::SiteId, const ir::Instruction*> icall_by_site;
    std::map<ir::SiteId, ir::FuncId> site_owner;
    for (const ir::Function& f : module.functions()) {
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                if (inst.op != ir::Opcode::kICall)
                    continue;
                ++audit.total_icall_sites;
                icall_by_site.emplace(inst.site_id, &inst);
                site_owner.emplace(inst.site_id, f.id);
            }
        }
    }

    // Gather (site, target, count) candidates.
    std::vector<PromotionCandidate> candidates;
    for (const auto& [site, targets] : profile.indirectSites()) {
        auto it = icall_by_site.find(site);
        if (it == icall_by_site.end())
            continue;
        const ir::Instruction* icall = it->second;
        if (icall->is_asm)
            continue; // inline-assembly sites are untouchable (§3)
        if (module.func(site_owner[site]).hasAttr(ir::kAttrOptNone))
            continue;
        bool counted_site = false;
        for (const auto& [target, count] : targets) {
            if (count == 0)
                continue;
            if (target >= module.numFunctions())
                continue;
            const ir::Function& callee = module.func(target);
            // A guarded direct call must match the callee's signature.
            if (callee.num_params != icall->args.size())
                continue;
            candidates.push_back({site, target, count});
            audit.total_weight += count;
            ++audit.candidate_targets;
            counted_site = true;
        }
        if (counted_site)
            ++audit.candidate_sites;
    }
    if (candidates.empty())
        return audit;

    // Greedy selection under the cumulative-weight budget, hottest
    // (site, target) pairs first.
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  if (a.site != b.site)
                      return a.site < b.site;
                  return a.target < b.target;
              });
    const double target_weight =
        config.budget * static_cast<double>(audit.total_weight);
    std::map<ir::SiteId, std::vector<PromotionCandidate>> chosen;
    double cum = 0;
    for (const auto& c : candidates) {
        if (cum >= target_weight)
            break;
        cum += static_cast<double>(c.count);
        auto& list = chosen[c.site];
        if (config.max_targets_per_site != 0 &&
            list.size() >= config.max_targets_per_site)
            continue;
        list.push_back(c);
    }

    // Rewrite each chosen site once, hottest target first (the sort
    // above already ordered each site's list by descending count).
    for (auto& [site, list] : chosen) {
        ir::FuncId func;
        ir::BlockId block;
        uint32_t index;
        if (!findICall(module, site, &func, &block, &index))
            continue;
        std::vector<ir::FuncId> targets;
        targets.reserve(list.size());
        for (const auto& c : list)
            targets.push_back(c.target);
        std::vector<ir::SiteId> direct_sites =
            promoteSite(module, func, block, index, targets);
        PIBE_ASSERT(direct_sites.size() == list.size(),
                    "icp: site arity mismatch");
        ++audit.promoted_sites;
        for (size_t i = 0; i < list.size(); ++i) {
            uint64_t moved = profile.consumeIndirect(site, list[i].target);
            profile.addDirect(direct_sites[i], moved);
            audit.promoted_weight += moved;
            ++audit.promoted_targets;
        }
    }

    return audit;
}

} // namespace pibe::opt
