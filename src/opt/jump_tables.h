/**
 * @file
 * Jump-table lowering (§5.1).
 *
 * Compilers lower dense switches to bounds-checked indexed jumps
 * (jump tables); the indexed jump is an indirect branch whose bounds
 * check transient execution can bypass. When any transient defense is
 * enabled, LLVM disables jump-table generation — and so does PIBE. We
 * model that by rewriting kSwitch terminators into trees of compares
 * and conditional branches. Switches flagged `is_asm` (hand-written
 * assembly dispatch) cannot be rewritten and remain vulnerable
 * indirect jumps (the "Vuln. IJumps" row of Table 11).
 */
#ifndef PIBE_OPT_JUMP_TABLES_H_
#define PIBE_OPT_JUMP_TABLES_H_

#include <cstdint>

#include "ir/module.h"

namespace pibe::opt {

/**
 * Lower all non-asm kSwitch terminators in `module` to compare trees
 * (linear chains for <= `linear_limit` cases, balanced binary search
 * trees above). Returns the number of switches lowered.
 */
uint32_t lowerJumpTables(ir::Module& module, uint32_t linear_limit = 4);

/**
 * Lower the non-asm kSwitch terminators of a single function. The
 * rewrite only ever touches `f` (new blocks/registers are appended to
 * it), so distinct functions may be lowered concurrently. Returns the
 * number of switches lowered in `f`.
 */
uint32_t lowerJumpTablesInFunction(ir::Function& f,
                                   uint32_t linear_limit = 4);

/** Count kSwitch terminators remaining in the module. */
uint32_t countSwitches(const ir::Module& module);

} // namespace pibe::opt

#endif // PIBE_OPT_JUMP_TABLES_H_
