/**
 * @file
 * PIR — the PIBE intermediate representation.
 *
 * PIR is a small register-machine IR: a Module holds Functions, each
 * Function holds BasicBlocks of Instructions operating on per-function
 * virtual registers plus a per-activation frame of i64 slots. It is
 * deliberately simpler than LLVM IR (no SSA, a single i64 value type)
 * while still expressing everything the PIBE algorithms care about:
 * direct calls, indirect calls through function-pointer values,
 * returns, conditional branches, and switches (jump tables).
 *
 * Function addresses are first-class values: ir::funcAddrValue(id)
 * encodes function `id` as an i64 that can be stored in globals (e.g.
 * a syscall table) and called indirectly.
 */
#ifndef PIBE_IR_MODULE_H_
#define PIBE_IR_MODULE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "support/logging.h"

namespace pibe::ir {

/** Index of a function within its Module. */
using FuncId = uint32_t;
/** Index of a basic block within its Function. */
using BlockId = uint32_t;
/** Virtual register index within a Function. */
using Reg = uint32_t;
/** Index of a global array within its Module. */
using GlobalId = uint32_t;
/** Unique id of a call/return site, used to key profile data. */
using SiteId = uint32_t;

constexpr FuncId kInvalidFunc = 0xffffffffu;
constexpr GlobalId kInvalidGlobal = 0xffffffffu;
constexpr Reg kNoReg = 0xffffffffu;
constexpr SiteId kNoSite = 0xffffffffu;

/** Bias added to a FuncId to form its i64 function-address value. */
constexpr int64_t kFuncAddrBase = int64_t{1} << 32;

/** Encode a function id as an i64 function-pointer value. */
constexpr int64_t
funcAddrValue(FuncId f)
{
    return kFuncAddrBase + static_cast<int64_t>(f);
}

/** True if an i64 value is a function-pointer value. */
constexpr bool
isFuncAddrValue(int64_t v)
{
    return v >= kFuncAddrBase && v < kFuncAddrBase + kFuncAddrBase;
}

/** Decode a function-pointer value back to a FuncId. */
constexpr FuncId
funcAddrTarget(int64_t v)
{
    return static_cast<FuncId>(v - kFuncAddrBase);
}

/** Instruction opcodes. */
enum class Opcode : uint8_t {
    kConst,      ///< dst = imm
    kMove,       ///< dst = a
    kBinOp,      ///< dst = a <bin> b
    kFuncAddr,   ///< dst = funcAddrValue(callee)
    kLoad,       ///< dst = global[a + imm]
    kStore,      ///< global[a + imm] = b
    kFrameLoad,  ///< dst = frame[imm]
    kFrameStore, ///< frame[imm] = a
    kCall,       ///< dst = callee(args...)
    kICall,      ///< dst = (*a)(args...)
    kRet,        ///< return a (or void when a == kNoReg)
    kBr,         ///< goto t0
    kCondBr,     ///< if (a != 0) goto t0 else goto t1
    kSwitch,     ///< indexed multiway jump (jump table candidate)
    kSink,       ///< observable side effect consuming a (inhibits DCE)
};

/** Binary operator kinds for Opcode::kBinOp. Comparisons yield 0/1. */
enum class BinKind : uint8_t {
    kAdd, kSub, kMul, kDiv, kRem,
    kAnd, kOr, kXor, kShl, kShr,
    kEq, kNe, kLt, kLe, kGt, kGe,
};

/** Hardening scheme applied to a forward edge (kICall / kSwitch). */
enum class FwdScheme : uint8_t {
    kNone,            ///< Plain BTB-predicted indirect branch.
    kRetpoline,       ///< Spectre-V2 retpoline thunk (Listing 4).
    kLviCfi,          ///< LFENCE'd indirect thunk (Listing 5).
    kFencedRetpoline, ///< Combined LVI-protected retpoline (Listing 7).
    kJumpSwitch,      ///< JumpSwitches runtime-patched call (ATC'19).
};

/** Hardening scheme applied to a backward edge (kRet). */
enum class RetScheme : uint8_t {
    kNone,            ///< Plain RSB-predicted return.
    kReturnRetpoline, ///< Intel return retpoline.
    kLviRet,          ///< pop + LFENCE + jmp (Listing 6).
    kFencedRet,       ///< Combined return retpoline + LVI fence.
};

/**
 * A single PIR instruction.
 *
 * The struct is a tagged union in spirit: which fields are meaningful
 * depends on `op` (see Opcode docs). `site_id` tags call sites and
 * returns with a stable identifier used by the profiler.
 */
struct Instruction
{
    Opcode op = Opcode::kConst;
    BinKind bin = BinKind::kAdd;

    Reg dst = kNoReg;
    Reg a = kNoReg;
    Reg b = kNoReg;
    int64_t imm = 0;

    FuncId callee = kInvalidFunc; ///< kCall / kFuncAddr target.
    GlobalId global = 0;          ///< kLoad / kStore array.

    BlockId t0 = 0; ///< kBr / kCondBr-true target.
    BlockId t1 = 0; ///< kCondBr-false target.

    std::vector<Reg> args;            ///< kCall / kICall arguments.
    std::vector<int64_t> case_values; ///< kSwitch case labels.
    std::vector<BlockId> case_targets;///< kSwitch case targets (t0=default).

    SiteId site_id = kNoSite;

    FwdScheme fwd_scheme = FwdScheme::kNone;
    RetScheme ret_scheme = RetScheme::kNone;

    /**
     * Call site implemented via an inline-assembly macro (e.g. the
     * kernel's paravirt hypercalls). Such sites cannot be rewritten by
     * hardening passes or promoted (§3, Table 11 "Vuln. ICalls").
     */
    bool is_asm = false;

    /** True for terminator opcodes (must be last in their block). */
    bool
    isTerminator() const
    {
        return op == Opcode::kRet || op == Opcode::kBr ||
               op == Opcode::kCondBr || op == Opcode::kSwitch;
    }

    /** True if this instruction writes a register. */
    bool
    hasDst() const
    {
        return dst != kNoReg;
    }

    /** True if removing this instruction could change behaviour. */
    bool
    hasSideEffects() const
    {
        switch (op) {
          case Opcode::kStore:
          case Opcode::kFrameStore:
          case Opcode::kCall:
          case Opcode::kICall:
          case Opcode::kSink:
            return true;
          default:
            return isTerminator();
        }
    }
};

/** A basic block: straight-line instructions ending in a terminator. */
struct BasicBlock
{
    std::vector<Instruction> insts;

    /** The block's terminator. @pre the block is non-empty and valid. */
    const Instruction&
    terminator() const
    {
        PIBE_ASSERT(!insts.empty(), "terminator() on empty block");
        return insts.back();
    }
};

/** Function attribute flags (bitmask). */
enum FuncAttr : uint32_t {
    kAttrNone = 0,
    /** Never inline this function (callee-side inhibitor). */
    kAttrNoInline = 1u << 0,
    /** Do not optimize within this function (caller-side inhibitor). */
    kAttrOptNone = 1u << 1,
    /** Runs only during boot; its returns are not attack surface. */
    kAttrBootSection = 1u << 2,
    /** External/leaf model: body is a synthetic cost, never transformed. */
    kAttrExternal = 1u << 3,
};

/**
 * A PIR function.
 *
 * Parameters occupy registers [0, num_params); the body may use
 * registers [0, num_regs) and frame slots [0, frame_size). Block 0 is
 * the entry block.
 */
struct Function
{
    std::string name;
    FuncId id = kInvalidFunc;
    uint32_t num_params = 0;
    uint32_t num_regs = 0;
    uint32_t frame_size = 0;
    uint32_t attrs = kAttrNone;
    std::vector<BasicBlock> blocks;

    bool hasAttr(FuncAttr attr) const { return (attrs & attr) != 0; }
    bool isDeclaration() const { return blocks.empty(); }

    /** Total number of instructions across all blocks. */
    size_t
    instructionCount() const
    {
        size_t n = 0;
        for (const auto& bb : blocks)
            n += bb.insts.size();
        return n;
    }
};

/** A module-level global: a named array of i64 slots. */
struct Global
{
    std::string name;
    std::vector<int64_t> init;
};

/**
 * A PIR module: the unit of linking, optimization, and hardening.
 *
 * Modules are value types; copying a Module snapshots the whole
 * program, which the pipeline uses to derive per-configuration images
 * from one linked baseline. FuncIds and GlobalIds are stable for the
 * lifetime of a module (functions are never deleted, only emptied).
 */
class Module
{
  public:
    /** Create a function; returns its id. Name must be unique. */
    FuncId
    addFunction(std::string name, uint32_t num_params,
                uint32_t attrs = kAttrNone)
    {
        PIBE_ASSERT(!func_by_name_.count(name),
                    "duplicate function name: ", name);
        FuncId id = static_cast<FuncId>(functions_.size());
        Function f;
        f.name = std::move(name);
        f.id = id;
        f.num_params = num_params;
        f.num_regs = num_params;
        f.attrs = attrs;
        func_by_name_.emplace(f.name, id);
        functions_.push_back(std::move(f));
        return id;
    }

    /** Create a global array; returns its id. Name must be unique. */
    GlobalId
    addGlobal(std::string name, std::vector<int64_t> init)
    {
        PIBE_ASSERT(!global_by_name_.count(name),
                    "duplicate global name: ", name);
        GlobalId id = static_cast<GlobalId>(globals_.size());
        global_by_name_.emplace(name, id);
        globals_.push_back(Global{std::move(name), std::move(init)});
        return id;
    }

    Function& func(FuncId id)
    {
        PIBE_ASSERT(id < functions_.size(), "bad FuncId ", id);
        return functions_[id];
    }
    const Function& func(FuncId id) const
    {
        PIBE_ASSERT(id < functions_.size(), "bad FuncId ", id);
        return functions_[id];
    }

    Global& global(GlobalId id)
    {
        PIBE_ASSERT(id < globals_.size(), "bad GlobalId ", id);
        return globals_[id];
    }
    const Global& global(GlobalId id) const
    {
        PIBE_ASSERT(id < globals_.size(), "bad GlobalId ", id);
        return globals_[id];
    }

    /** Look up a function id by name; kInvalidFunc if absent. */
    FuncId
    findFunction(const std::string& name) const
    {
        auto it = func_by_name_.find(name);
        return it == func_by_name_.end() ? kInvalidFunc : it->second;
    }

    /** Look up a global id by name; kInvalidGlobal if absent. */
    GlobalId
    findGlobal(const std::string& name) const
    {
        auto it = global_by_name_.find(name);
        return it == global_by_name_.end() ? kInvalidGlobal : it->second;
    }

    size_t numFunctions() const { return functions_.size(); }
    size_t numGlobals() const { return globals_.size(); }

    const std::vector<Function>& functions() const { return functions_; }
    std::vector<Function>& functions() { return functions_; }
    const std::vector<Global>& globals() const { return globals_; }

    /** Allocate a fresh, module-unique call/return site id. */
    SiteId allocSiteId() { return next_site_id_++; }

    /** Ensure future allocSiteId() results are >= `bound` (used when
     *  reconstructing a module whose sites carry explicit ids). */
    void
    reserveSiteIds(SiteId bound)
    {
        if (bound > next_site_id_)
            next_site_id_ = bound;
    }

    /** Upper bound (exclusive) on site ids allocated so far. */
    SiteId siteIdBound() const { return next_site_id_; }

  private:
    std::vector<Function> functions_;
    std::vector<Global> globals_;
    std::unordered_map<std::string, FuncId> func_by_name_;
    std::unordered_map<std::string, GlobalId> global_by_name_;
    SiteId next_site_id_ = 0;
};

} // namespace pibe::ir

#endif // PIBE_IR_MODULE_H_
