#include "ir/printer.h"

#include <sstream>

namespace pibe::ir {

const char*
binKindName(BinKind kind)
{
    switch (kind) {
      case BinKind::kAdd: return "add";
      case BinKind::kSub: return "sub";
      case BinKind::kMul: return "mul";
      case BinKind::kDiv: return "div";
      case BinKind::kRem: return "rem";
      case BinKind::kAnd: return "and";
      case BinKind::kOr:  return "or";
      case BinKind::kXor: return "xor";
      case BinKind::kShl: return "shl";
      case BinKind::kShr: return "shr";
      case BinKind::kEq:  return "eq";
      case BinKind::kNe:  return "ne";
      case BinKind::kLt:  return "lt";
      case BinKind::kLe:  return "le";
      case BinKind::kGt:  return "gt";
      case BinKind::kGe:  return "ge";
    }
    return "?";
}

const char*
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::kConst:      return "const";
      case Opcode::kMove:       return "move";
      case Opcode::kBinOp:      return "binop";
      case Opcode::kFuncAddr:   return "funcaddr";
      case Opcode::kLoad:       return "load";
      case Opcode::kStore:      return "store";
      case Opcode::kFrameLoad:  return "frameload";
      case Opcode::kFrameStore: return "framestore";
      case Opcode::kCall:       return "call";
      case Opcode::kICall:      return "icall";
      case Opcode::kRet:        return "ret";
      case Opcode::kBr:         return "br";
      case Opcode::kCondBr:     return "condbr";
      case Opcode::kSwitch:     return "switch";
      case Opcode::kSink:       return "sink";
    }
    return "?";
}

const char*
fwdSchemeName(FwdScheme scheme)
{
    switch (scheme) {
      case FwdScheme::kNone:            return "none";
      case FwdScheme::kRetpoline:       return "retpoline";
      case FwdScheme::kLviCfi:          return "lvi-cfi";
      case FwdScheme::kFencedRetpoline: return "fenced-retpoline";
      case FwdScheme::kJumpSwitch:      return "jump-switch";
    }
    return "?";
}

const char*
retSchemeName(RetScheme scheme)
{
    switch (scheme) {
      case RetScheme::kNone:            return "none";
      case RetScheme::kReturnRetpoline: return "return-retpoline";
      case RetScheme::kLviRet:          return "lvi-ret";
      case RetScheme::kFencedRet:       return "fenced-ret";
    }
    return "?";
}

namespace {

std::string
regName(Reg r)
{
    if (r == kNoReg)
        return "_";
    return "r" + std::to_string(r);
}

} // namespace

std::string
printInstruction(const Module& m, const Instruction& inst)
{
    std::ostringstream os;
    switch (inst.op) {
      case Opcode::kConst:
        os << regName(inst.dst) << " = const " << inst.imm;
        break;
      case Opcode::kMove:
        os << regName(inst.dst) << " = move " << regName(inst.a);
        break;
      case Opcode::kBinOp:
        os << regName(inst.dst) << " = " << binKindName(inst.bin) << " "
           << regName(inst.a) << ", " << regName(inst.b);
        break;
      case Opcode::kFuncAddr:
        os << regName(inst.dst) << " = funcaddr @"
           << m.func(inst.callee).name;
        break;
      case Opcode::kLoad:
        os << regName(inst.dst) << " = load @" << m.global(inst.global).name
           << "[" << regName(inst.a) << " + " << inst.imm << "]";
        break;
      case Opcode::kStore:
        os << "store @" << m.global(inst.global).name << "["
           << regName(inst.a) << " + " << inst.imm
           << "] = " << regName(inst.b);
        break;
      case Opcode::kFrameLoad:
        os << regName(inst.dst) << " = frame[" << inst.imm << "]";
        break;
      case Opcode::kFrameStore:
        os << "frame[" << inst.imm << "] = " << regName(inst.a);
        break;
      case Opcode::kCall:
        os << regName(inst.dst) << " = call @" << m.func(inst.callee).name
           << "(";
        for (size_t i = 0; i < inst.args.size(); ++i)
            os << (i ? ", " : "") << regName(inst.args[i]);
        os << ")";
        break;
      case Opcode::kICall:
        os << regName(inst.dst) << " = icall " << regName(inst.a) << "(";
        for (size_t i = 0; i < inst.args.size(); ++i)
            os << (i ? ", " : "") << regName(inst.args[i]);
        os << ")";
        if (inst.is_asm)
            os << " !asm";
        if (inst.fwd_scheme != FwdScheme::kNone)
            os << " !" << fwdSchemeName(inst.fwd_scheme);
        break;
      case Opcode::kRet:
        os << "ret";
        if (inst.a != kNoReg)
            os << " " << regName(inst.a);
        if (inst.ret_scheme != RetScheme::kNone)
            os << " !" << retSchemeName(inst.ret_scheme);
        break;
      case Opcode::kBr:
        os << "br bb" << inst.t0;
        break;
      case Opcode::kCondBr:
        os << "condbr " << regName(inst.a) << ", bb" << inst.t0 << ", bb"
           << inst.t1;
        break;
      case Opcode::kSwitch:
        os << "switch " << regName(inst.a) << " default bb" << inst.t0;
        for (size_t i = 0; i < inst.case_values.size(); ++i) {
            os << ", " << inst.case_values[i] << "->bb"
               << inst.case_targets[i];
        }
        if (inst.is_asm)
            os << " !asm";
        if (inst.fwd_scheme != FwdScheme::kNone)
            os << " !" << fwdSchemeName(inst.fwd_scheme);
        break;
      case Opcode::kSink:
        os << "sink " << regName(inst.a);
        break;
    }
    if (inst.site_id != kNoSite)
        os << " !site " << inst.site_id;
    return os.str();
}

std::string
printFunction(const Module& m, const Function& f)
{
    std::ostringstream os;
    os << "func @" << f.name << "(params=" << f.num_params
       << ", regs=" << f.num_regs << ", frame=" << f.frame_size << ")";
    if (f.hasAttr(kAttrNoInline))
        os << " noinline";
    if (f.hasAttr(kAttrOptNone))
        os << " optnone";
    if (f.hasAttr(kAttrBootSection))
        os << " boot";
    if (f.hasAttr(kAttrExternal))
        os << " external";
    os << " {\n";
    for (BlockId b = 0; b < f.blocks.size(); ++b) {
        os << "bb" << b << ":\n";
        for (const auto& inst : f.blocks[b].insts)
            os << "    " << printInstruction(m, inst) << "\n";
    }
    os << "}\n";
    return os.str();
}

std::string
printModule(const Module& m)
{
    std::ostringstream os;
    for (const Global& g : m.globals()) {
        os << "global @" << g.name << "[" << g.init.size() << "]";
        // Sparse initializer dump: only non-zero slots.
        bool any = false;
        for (size_t i = 0; i < g.init.size(); ++i) {
            if (g.init[i] == 0)
                continue;
            os << (any ? ", " : " { ") << i << ": " << g.init[i];
            any = true;
        }
        if (any)
            os << " }";
        os << "\n";
    }
    for (const Function& f : m.functions())
        os << printFunction(m, f);
    return os.str();
}

} // namespace pibe::ir
