#include "ir/parser.h"

#include <cctype>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "support/logging.h"

namespace pibe::ir {

namespace {

/** Cursor over one line of input with fatal diagnostics. */
class LineCursor
{
  public:
    LineCursor(const std::string& line, size_t line_no)
        : line_(line), line_no_(line_no)
    {
    }

    void
    skipSpace()
    {
        while (pos_ < line_.size() && line_[pos_] == ' ')
            ++pos_;
    }

    bool
    atEnd()
    {
        skipSpace();
        return pos_ >= line_.size();
    }

    /** Consume `literal` if present; returns whether it was. */
    bool
    tryLiteral(const std::string& literal)
    {
        skipSpace();
        if (line_.compare(pos_, literal.size(), literal) == 0) {
            pos_ += literal.size();
            return true;
        }
        return false;
    }

    void
    expect(const std::string& literal)
    {
        if (!tryLiteral(literal))
            fail("expected '" + literal + "'");
    }

    int64_t
    parseInt()
    {
        skipSpace();
        size_t start = pos_;
        if (pos_ < line_.size() && (line_[pos_] == '-'))
            ++pos_;
        while (pos_ < line_.size() && std::isdigit(
                                          static_cast<unsigned char>(
                                              line_[pos_])))
            ++pos_;
        if (pos_ == start)
            fail("expected integer");
        return std::stoll(line_.substr(start, pos_ - start));
    }

    /** Parse "rN" or "_" (kNoReg). */
    Reg
    parseReg()
    {
        skipSpace();
        if (tryLiteral("_"))
            return kNoReg;
        expect("r");
        return static_cast<Reg>(parseInt());
    }

    /** Parse "bbN". */
    BlockId
    parseBlock()
    {
        expect("bb");
        return static_cast<BlockId>(parseInt());
    }

    /** Parse "@name". */
    std::string
    parseName()
    {
        expect("@");
        size_t start = pos_;
        while (pos_ < line_.size()) {
            char c = line_[pos_];
            if (std::isalnum(static_cast<unsigned char>(c)) ||
                c == '_' || c == '.' || c == '$' || c == '-') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected name after '@'");
        return line_.substr(start, pos_ - start);
    }

    /** Peek the rest of the line (for error messages / word checks). */
    std::string
    rest()
    {
        skipSpace();
        return line_.substr(pos_);
    }

    /** Parse a bare word (letters, digits, '-'). */
    std::string
    parseWord()
    {
        skipSpace();
        size_t start = pos_;
        while (pos_ < line_.size()) {
            char c = line_[pos_];
            if (std::isalnum(static_cast<unsigned char>(c)) ||
                c == '-' || c == '_' || c == '/') {
                ++pos_;
            } else {
                break;
            }
        }
        if (pos_ == start)
            fail("expected word");
        return line_.substr(start, pos_ - start);
    }

    [[noreturn]] void
    fail(const std::string& what)
    {
        PIBE_FATAL("PIR parse error at line ", line_no_, ": ", what,
                   " near '", line_.substr(pos_, 24), "'");
    }

  private:
    const std::string& line_;
    size_t line_no_;
    size_t pos_ = 0;
};

bool
binKindFromName(const std::string& word, BinKind* out)
{
    static const std::unordered_map<std::string, BinKind> kMap = {
        {"add", BinKind::kAdd}, {"sub", BinKind::kSub},
        {"mul", BinKind::kMul}, {"div", BinKind::kDiv},
        {"rem", BinKind::kRem}, {"and", BinKind::kAnd},
        {"or", BinKind::kOr},   {"xor", BinKind::kXor},
        {"shl", BinKind::kShl}, {"shr", BinKind::kShr},
        {"eq", BinKind::kEq},   {"ne", BinKind::kNe},
        {"lt", BinKind::kLt},   {"le", BinKind::kLe},
        {"gt", BinKind::kGt},   {"ge", BinKind::kGe},
    };
    auto it = kMap.find(word);
    if (it == kMap.end())
        return false;
    *out = it->second;
    return true;
}

bool
fwdSchemeFromName(const std::string& word, FwdScheme* out)
{
    static const std::unordered_map<std::string, FwdScheme> kMap = {
        {"retpoline", FwdScheme::kRetpoline},
        {"lvi-cfi", FwdScheme::kLviCfi},
        {"fenced-retpoline", FwdScheme::kFencedRetpoline},
        {"jump-switch", FwdScheme::kJumpSwitch},
    };
    auto it = kMap.find(word);
    if (it == kMap.end())
        return false;
    *out = it->second;
    return true;
}

bool
retSchemeFromName(const std::string& word, RetScheme* out)
{
    static const std::unordered_map<std::string, RetScheme> kMap = {
        {"return-retpoline", RetScheme::kReturnRetpoline},
        {"lvi-ret", RetScheme::kLviRet},
        {"fenced-ret", RetScheme::kFencedRet},
    };
    auto it = kMap.find(word);
    if (it == kMap.end())
        return false;
    *out = it->second;
    return true;
}

class ModuleParser
{
  public:
    explicit ModuleParser(const std::string& text)
    {
        std::istringstream is(text);
        std::string line;
        while (std::getline(is, line))
            lines_.push_back(line);
    }

    Module
    run()
    {
        declarationPass();
        bodyPass();
        module_.reserveSiteIds(max_site_ + 1);
        return std::move(module_);
    }

  private:
    /** Create all globals and function shells (names resolvable). */
    void
    declarationPass()
    {
        for (size_t i = 0; i < lines_.size(); ++i) {
            const std::string& line = lines_[i];
            LineCursor cur(line, i + 1);
            if (cur.tryLiteral("global ")) {
                std::string name = cur.parseName();
                cur.expect("[");
                int64_t size = cur.parseInt();
                cur.expect("]");
                if (size < 0)
                    cur.fail("negative global size");
                std::vector<int64_t> init(
                    static_cast<size_t>(size), 0);
                if (cur.tryLiteral("{")) {
                    while (true) {
                        int64_t idx = cur.parseInt();
                        cur.expect(":");
                        int64_t value = cur.parseInt();
                        if (idx < 0 || idx >= size)
                            cur.fail("initializer index out of range");
                        init[static_cast<size_t>(idx)] = value;
                        if (cur.tryLiteral(","))
                            continue;
                        cur.expect("}");
                        break;
                    }
                }
                module_.addGlobal(name, std::move(init));
            } else if (cur.tryLiteral("func ")) {
                std::string name = cur.parseName();
                cur.expect("(params=");
                int64_t params = cur.parseInt();
                cur.expect(", regs=");
                int64_t regs = cur.parseInt();
                cur.expect(", frame=");
                int64_t frame = cur.parseInt();
                cur.expect(")");
                uint32_t attrs = kAttrNone;
                while (!cur.tryLiteral("{")) {
                    std::string word = cur.parseWord();
                    if (word == "noinline")
                        attrs |= kAttrNoInline;
                    else if (word == "optnone")
                        attrs |= kAttrOptNone;
                    else if (word == "boot")
                        attrs |= kAttrBootSection;
                    else if (word == "external")
                        attrs |= kAttrExternal;
                    else
                        cur.fail("unknown function attribute '" + word +
                                 "'");
                }
                FuncId id = module_.addFunction(
                    name, static_cast<uint32_t>(params), attrs);
                Function& f = module_.func(id);
                f.num_regs = static_cast<uint32_t>(regs);
                f.frame_size = static_cast<uint32_t>(frame);
            }
        }
    }

    /** Parse function bodies now that every name resolves. */
    void
    bodyPass()
    {
        Function* current = nullptr;
        for (size_t i = 0; i < lines_.size(); ++i) {
            const std::string& line = lines_[i];
            if (line.empty())
                continue;
            LineCursor cur(line, i + 1);
            if (cur.tryLiteral("global "))
                continue;
            if (cur.tryLiteral("func ")) {
                std::string name = cur.parseName();
                current = &module_.func(module_.findFunction(name));
                continue;
            }
            if (cur.tryLiteral("}")) {
                current = nullptr;
                continue;
            }
            if (!current)
                cur.fail("instruction outside function");
            if (cur.tryLiteral("bb")) {
                int64_t id = cur.parseInt();
                cur.expect(":");
                if (id != static_cast<int64_t>(current->blocks.size()))
                    cur.fail("non-sequential block id");
                current->blocks.emplace_back();
                continue;
            }
            if (current->blocks.empty())
                cur.fail("instruction before first block label");
            current->blocks.back().insts.push_back(
                parseInstruction(cur));
        }
    }

    /** Trailing annotations: !asm, !<scheme>, !site N. */
    void
    parseAnnotations(LineCursor& cur, Instruction* inst)
    {
        while (cur.tryLiteral("!")) {
            if (cur.tryLiteral("site")) {
                inst->site_id = static_cast<SiteId>(cur.parseInt());
                if (inst->site_id != kNoSite &&
                    inst->site_id > max_site_)
                    max_site_ = inst->site_id;
                continue;
            }
            std::string word = cur.parseWord();
            FwdScheme fwd;
            RetScheme ret;
            if (word == "asm")
                inst->is_asm = true;
            else if (fwdSchemeFromName(word, &fwd))
                inst->fwd_scheme = fwd;
            else if (retSchemeFromName(word, &ret))
                inst->ret_scheme = ret;
            else
                cur.fail("unknown annotation '!" + word + "'");
        }
        if (!cur.atEnd())
            cur.fail("trailing tokens");
    }

    std::vector<Reg>
    parseArgList(LineCursor& cur)
    {
        std::vector<Reg> args;
        cur.expect("(");
        if (cur.tryLiteral(")"))
            return args;
        while (true) {
            args.push_back(cur.parseReg());
            if (cur.tryLiteral(","))
                continue;
            cur.expect(")");
            break;
        }
        return args;
    }

    FuncId
    resolveFunc(LineCursor& cur)
    {
        std::string name = cur.parseName();
        FuncId id = module_.findFunction(name);
        if (id == kInvalidFunc)
            cur.fail("unknown function '@" + name + "'");
        return id;
    }

    GlobalId
    resolveGlobal(LineCursor& cur)
    {
        std::string name = cur.parseName();
        // Hashed lookup: the old linear scan over numGlobals() was
        // quadratic on generated modules, where thousands of op-table
        // globals are each referenced by many icall loads.
        GlobalId g = module_.findGlobal(name);
        if (g == kInvalidGlobal)
            cur.fail("unknown global '@" + name + "'");
        return g;
    }

    Instruction
    parseInstruction(LineCursor& cur)
    {
        Instruction inst;
        // Destination-less forms first.
        if (cur.tryLiteral("store ")) {
            inst.op = Opcode::kStore;
            inst.global = resolveGlobal(cur);
            cur.expect("[");
            inst.a = cur.parseReg();
            cur.expect("+");
            inst.imm = cur.parseInt();
            cur.expect("]");
            cur.expect("=");
            inst.b = cur.parseReg();
            parseAnnotations(cur, &inst);
            return inst;
        }
        if (cur.tryLiteral("frame[")) {
            inst.op = Opcode::kFrameStore;
            inst.imm = cur.parseInt();
            cur.expect("]");
            cur.expect("=");
            inst.a = cur.parseReg();
            parseAnnotations(cur, &inst);
            return inst;
        }
        if (cur.tryLiteral("sink ")) {
            inst.op = Opcode::kSink;
            inst.a = cur.parseReg();
            parseAnnotations(cur, &inst);
            return inst;
        }
        if (cur.tryLiteral("ret")) {
            inst.op = Opcode::kRet;
            inst.a = kNoReg;
            LineCursor probe = cur; // value is optional
            if (!probe.atEnd() && !probe.tryLiteral("!"))
                inst.a = cur.parseReg();
            parseAnnotations(cur, &inst);
            return inst;
        }
        if (cur.tryLiteral("br ")) {
            inst.op = Opcode::kBr;
            inst.t0 = cur.parseBlock();
            parseAnnotations(cur, &inst);
            return inst;
        }
        if (cur.tryLiteral("condbr ")) {
            inst.op = Opcode::kCondBr;
            inst.a = cur.parseReg();
            cur.expect(",");
            inst.t0 = cur.parseBlock();
            cur.expect(",");
            inst.t1 = cur.parseBlock();
            parseAnnotations(cur, &inst);
            return inst;
        }
        if (cur.tryLiteral("switch ")) {
            inst.op = Opcode::kSwitch;
            inst.a = cur.parseReg();
            cur.expect("default");
            inst.t0 = cur.parseBlock();
            while (cur.tryLiteral(",")) {
                inst.case_values.push_back(cur.parseInt());
                cur.expect("->");
                inst.case_targets.push_back(cur.parseBlock());
            }
            parseAnnotations(cur, &inst);
            return inst;
        }

        // "rD = ..." / "_ = ..." forms.
        inst.dst = cur.parseReg();
        cur.expect("=");
        if (cur.tryLiteral("const ")) {
            inst.op = Opcode::kConst;
            inst.imm = cur.parseInt();
        } else if (cur.tryLiteral("move ")) {
            inst.op = Opcode::kMove;
            inst.a = cur.parseReg();
        } else if (cur.tryLiteral("funcaddr ")) {
            inst.op = Opcode::kFuncAddr;
            inst.callee = resolveFunc(cur);
        } else if (cur.tryLiteral("load ")) {
            inst.op = Opcode::kLoad;
            inst.global = resolveGlobal(cur);
            cur.expect("[");
            inst.a = cur.parseReg();
            cur.expect("+");
            inst.imm = cur.parseInt();
            cur.expect("]");
        } else if (cur.tryLiteral("frame[")) {
            inst.op = Opcode::kFrameLoad;
            inst.imm = cur.parseInt();
            cur.expect("]");
        } else if (cur.tryLiteral("call ")) {
            inst.op = Opcode::kCall;
            inst.callee = resolveFunc(cur);
            inst.args = parseArgList(cur);
        } else if (cur.tryLiteral("icall ")) {
            inst.op = Opcode::kICall;
            inst.a = cur.parseReg();
            inst.args = parseArgList(cur);
        } else {
            std::string word = cur.parseWord();
            BinKind kind;
            if (!binKindFromName(word, &kind))
                cur.fail("unknown opcode '" + word + "'");
            inst.op = Opcode::kBinOp;
            inst.bin = kind;
            inst.a = cur.parseReg();
            cur.expect(",");
            inst.b = cur.parseReg();
        }
        parseAnnotations(cur, &inst);
        return inst;
    }

    std::vector<std::string> lines_;
    Module module_;
    SiteId max_site_ = 0;
};

} // namespace

Module
parseModule(const std::string& text)
{
    return ModuleParser(text).run();
}

} // namespace pibe::ir
