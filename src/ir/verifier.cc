#include "ir/verifier.h"

#include <sstream>
#include <unordered_set>

namespace pibe::ir {

namespace {

class FunctionVerifier
{
  public:
    FunctionVerifier(const Module& module, const Function& func)
        : module_(module), func_(func)
    {
    }

    std::vector<std::string>
    run()
    {
        if (func_.isDeclaration())
            return problems_;
        for (BlockId b = 0; b < func_.blocks.size(); ++b)
            checkBlock(b);
        return problems_;
    }

  private:
    std::unordered_set<SiteId> func_sites_;

    template <typename... Args>
    void
    problem(BlockId b, size_t idx, Args&&... args)
    {
        std::ostringstream os;
        os << func_.name << " bb" << b << "[" << idx << "]: ";
        (os << ... << args);
        problems_.push_back(os.str());
    }

    void
    checkReg(BlockId b, size_t idx, Reg r, const char* what)
    {
        if (r == kNoReg || r >= func_.num_regs)
            problem(b, idx, "bad ", what, " register ", r);
    }

    void
    checkTarget(BlockId b, size_t idx, BlockId t)
    {
        if (t >= func_.blocks.size())
            problem(b, idx, "branch target bb", t, " out of range");
    }

    void
    checkBlock(BlockId b)
    {
        const BasicBlock& bb = func_.blocks[b];
        if (bb.insts.empty()) {
            problem(b, 0, "empty block");
            return;
        }
        for (size_t i = 0; i < bb.insts.size(); ++i) {
            const Instruction& inst = bb.insts[i];
            const bool last = (i == bb.insts.size() - 1);
            if (inst.isTerminator() != last) {
                problem(b, i, last ? "block does not end in terminator"
                                   : "terminator mid-block");
            }
            checkInst(b, i, inst);
        }
    }

    void
    checkSite(BlockId b, size_t i, const Instruction& inst,
              const char* what)
    {
        if (inst.site_id == kNoSite) {
            problem(b, i, what, " without site id");
            return;
        }
        if (!func_sites_.insert(inst.site_id).second)
            problem(b, i, "duplicate site id ", inst.site_id,
                    " within function");
    }

    void
    checkInst(BlockId b, size_t i, const Instruction& inst)
    {
        switch (inst.op) {
          case Opcode::kConst:
            checkReg(b, i, inst.dst, "dst");
            break;
          case Opcode::kMove:
            checkReg(b, i, inst.dst, "dst");
            checkReg(b, i, inst.a, "src");
            break;
          case Opcode::kBinOp:
            checkReg(b, i, inst.dst, "dst");
            checkReg(b, i, inst.a, "lhs");
            checkReg(b, i, inst.b, "rhs");
            break;
          case Opcode::kFuncAddr:
            checkReg(b, i, inst.dst, "dst");
            if (inst.callee >= module_.numFunctions())
                problem(b, i, "funcaddr of unknown function");
            break;
          case Opcode::kLoad:
            checkReg(b, i, inst.dst, "dst");
            checkReg(b, i, inst.a, "index");
            if (inst.global >= module_.numGlobals())
                problem(b, i, "load from unknown global");
            break;
          case Opcode::kStore:
            checkReg(b, i, inst.a, "index");
            checkReg(b, i, inst.b, "value");
            if (inst.global >= module_.numGlobals())
                problem(b, i, "store to unknown global");
            break;
          case Opcode::kFrameLoad:
            checkReg(b, i, inst.dst, "dst");
            if (inst.imm < 0 ||
                inst.imm >= static_cast<int64_t>(func_.frame_size))
                problem(b, i, "frame load slot ", inst.imm, " out of range");
            break;
          case Opcode::kFrameStore:
            checkReg(b, i, inst.a, "value");
            if (inst.imm < 0 ||
                inst.imm >= static_cast<int64_t>(func_.frame_size))
                problem(b, i, "frame store slot ", inst.imm, " out of range");
            break;
          case Opcode::kCall: {
            checkReg(b, i, inst.dst, "dst");
            if (inst.callee >= module_.numFunctions()) {
                problem(b, i, "call to unknown function");
                break;
            }
            const Function& callee = module_.func(inst.callee);
            if (inst.args.size() != callee.num_params) {
                problem(b, i, "call to ", callee.name, " with ",
                        inst.args.size(), " args, expected ",
                        callee.num_params);
            }
            for (Reg r : inst.args)
                checkReg(b, i, r, "arg");
            checkSite(b, i, inst, "call");
            break;
          }
          case Opcode::kICall:
            checkReg(b, i, inst.dst, "dst");
            checkReg(b, i, inst.a, "target");
            for (Reg r : inst.args)
                checkReg(b, i, r, "arg");
            checkSite(b, i, inst, "icall");
            break;
          case Opcode::kRet:
            if (inst.a != kNoReg)
                checkReg(b, i, inst.a, "value");
            checkSite(b, i, inst, "ret");
            break;
          case Opcode::kBr:
            checkTarget(b, i, inst.t0);
            break;
          case Opcode::kCondBr:
            checkReg(b, i, inst.a, "cond");
            checkTarget(b, i, inst.t0);
            checkTarget(b, i, inst.t1);
            break;
          case Opcode::kSwitch: {
            checkReg(b, i, inst.a, "value");
            checkTarget(b, i, inst.t0);
            if (inst.case_values.size() != inst.case_targets.size())
                problem(b, i, "switch case arity mismatch");
            for (BlockId t : inst.case_targets)
                checkTarget(b, i, t);
            std::unordered_set<int64_t> cases;
            for (int64_t v : inst.case_values) {
                if (!cases.insert(v).second)
                    problem(b, i, "duplicate switch case value ", v);
            }
            break;
          }
          case Opcode::kSink:
            checkReg(b, i, inst.a, "value");
            break;
        }
    }

    const Module& module_;
    const Function& func_;
    std::vector<std::string> problems_;
};

} // namespace

std::vector<std::string>
verifyFunction(const Module& module, const Function& func)
{
    return FunctionVerifier(module, func).run();
}

std::vector<std::string>
verifyModuleSiteIds(const Module& module)
{
    std::vector<std::string> problems;
    std::unordered_set<SiteId> seen_sites;
    for (const Function& f : module.functions()) {
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                if (inst.site_id == kNoSite)
                    continue;
                if (inst.site_id >= module.siteIdBound()) {
                    problems.push_back(f.name + ": site id " +
                                       std::to_string(inst.site_id) +
                                       " beyond module bound");
                }
                if (!seen_sites.insert(inst.site_id).second) {
                    problems.push_back(f.name + ": duplicate site id " +
                                       std::to_string(inst.site_id));
                }
            }
        }
    }
    return problems;
}

std::vector<std::string>
verifyModule(const Module& module)
{
    std::vector<std::string> problems;
    for (FuncId id = 0; id < module.numFunctions(); ++id) {
        const Function& f = module.func(id);
        if (f.id != id) {
            problems.push_back(f.name + ": function id " +
                               std::to_string(f.id) +
                               " does not match its table index " +
                               std::to_string(id));
        }
        if (module.findFunction(f.name) != id) {
            problems.push_back(f.name +
                               ": by-name lookup does not round-trip");
        }
        auto p = verifyFunction(module, f);
        problems.insert(problems.end(), p.begin(), p.end());
    }
    auto sites = verifyModuleSiteIds(module);
    problems.insert(problems.end(), sites.begin(), sites.end());
    return problems;
}

void
verifyOrDie(const Module& module, const std::string& context)
{
    auto problems = verifyModule(module);
    if (!problems.empty()) {
        PIBE_FATAL("module verification failed (", context, "): ",
                   problems.front(), " [", problems.size(), " problem(s)]");
    }
}

} // namespace pibe::ir
