/**
 * @file
 * Structural verifier for PIR modules.
 *
 * The verifier is run after construction and after every transformation
 * pass in tests; it checks the invariants the interpreter and the
 * passes rely on.
 */
#ifndef PIBE_IR_VERIFIER_H_
#define PIBE_IR_VERIFIER_H_

#include <string>
#include <vector>

#include "ir/module.h"

namespace pibe::ir {

/**
 * Verify one function. Returns a list of human-readable problems
 * (empty if the function is well-formed).
 *
 * Checked invariants:
 *  - every non-declaration function has blocks and each block ends in
 *    exactly one terminator (and has no terminator mid-block);
 *  - register operands are < num_regs and defined registers are valid;
 *  - branch and switch targets are valid block ids;
 *  - direct call callees exist and argument counts match the callee's
 *    parameter count;
 *  - frame accesses are within frame_size; global accesses name valid
 *    globals;
 *  - every call and return carries a site id, unique within the
 *    function (module-wide uniqueness is verifyModuleSiteIds);
 *  - switch case values are distinct (a duplicate case is ambiguous
 *    for jump-table lowering).
 */
std::vector<std::string> verifyFunction(const Module& module,
                                        const Function& func);

/**
 * Module-level site-id invariants: every site id is below
 * Module::siteIdBound() and no two instructions share one. Split out
 * so callers that already ran verifyFunction per function (e.g. the
 * checker suite) can add the cross-function checks without re-walking.
 */
std::vector<std::string> verifyModuleSiteIds(const Module& module);

/**
 * Verify an entire module; returns all problems found. Runs
 * verifyFunction on every function, verifyModuleSiteIds, and checks
 * that the function table is self-consistent (ids match indices and
 * the by-name index round-trips).
 */
std::vector<std::string> verifyModule(const Module& module);

/** Verify a module and PIBE_FATAL with the first problem, if any. */
void verifyOrDie(const Module& module, const std::string& context);

} // namespace pibe::ir

#endif // PIBE_IR_VERIFIER_H_
