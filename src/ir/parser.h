/**
 * @file
 * Textual PIR parser — the inverse of printer.h.
 *
 * parseModule(printModule(m)) reconstructs a module equivalent to `m`
 * (same globals incl. initializers, same functions/blocks/instructions,
 * same attributes, schemes, asm flags, and site ids). This is what
 * makes PIR a complete offline toolkit: kernels, intermediate images,
 * and test cases can be dumped, inspected, edited, and reloaded — the
 * role LLVM's .ll text format plays for the original system.
 */
#ifndef PIBE_IR_PARSER_H_
#define PIBE_IR_PARSER_H_

#include <string>

#include "ir/module.h"

namespace pibe::ir {

/**
 * Parse the textual module format produced by printModule().
 * Fatal (PIBE_FATAL) on malformed input, with a line number.
 */
Module parseModule(const std::string& text);

} // namespace pibe::ir

#endif // PIBE_IR_PARSER_H_
