/**
 * @file
 * Textual dump of PIR functions and modules, for debugging and for
 * golden tests of transformation passes.
 */
#ifndef PIBE_IR_PRINTER_H_
#define PIBE_IR_PRINTER_H_

#include <string>

#include "ir/module.h"

namespace pibe::ir {

/** Render one instruction, e.g. "r3 = call @foo(r1, r2) !site 17". */
std::string printInstruction(const Module& module, const Instruction& inst);

/** Render a function with block labels. */
std::string printFunction(const Module& module, const Function& func);

/** Render all globals and functions of a module. */
std::string printModule(const Module& module);

/** Human-readable scheme names (for tables and dumps). */
const char* fwdSchemeName(FwdScheme scheme);
const char* retSchemeName(RetScheme scheme);
const char* binKindName(BinKind kind);
const char* opcodeName(Opcode op);

} // namespace pibe::ir

#endif // PIBE_IR_PRINTER_H_
