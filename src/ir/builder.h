/**
 * @file
 * Convenience builder for constructing PIR functions.
 */
#ifndef PIBE_IR_BUILDER_H_
#define PIBE_IR_BUILDER_H_

#include <utility>
#include <vector>

#include "ir/module.h"

namespace pibe::ir {

/**
 * Incrementally builds the body of one function.
 *
 * The builder appends instructions to a current block, allocates
 * virtual registers and frame slots, and assigns stable site ids to
 * every call and return it emits. Typical use:
 *
 * @code
 *   FuncId f = module.addFunction("f", 1);
 *   FunctionBuilder b(module, f);
 *   Reg two = b.constI(2);
 *   Reg r = b.bin(BinKind::kMul, b.param(0), two);
 *   b.ret(r);
 * @endcode
 */
class FunctionBuilder
{
  public:
    /** Start building `func`'s body; creates the entry block. */
    FunctionBuilder(Module& module, FuncId func);

    Module& module() { return module_; }
    Function& function() { return module_.func(func_); }
    FuncId funcId() const { return func_; }

    /** Create a new (empty) block; does not change the current block. */
    BlockId newBlock();

    /** Switch the insertion point to `block`. */
    void setBlock(BlockId block);

    /** Current insertion block. */
    BlockId currentBlock() const { return cur_; }

    /** Allocate a fresh virtual register. */
    Reg newReg();

    /** Register holding parameter `i`. */
    Reg param(uint32_t i) const;

    /** Allocate a frame slot (models a stack variable). */
    uint32_t newFrameSlot();

    // --- instruction emitters (each returns the defined register) ---

    Reg constI(int64_t value);
    Reg move(Reg src);
    Reg bin(BinKind kind, Reg a, Reg b);
    /** Assign into an existing register (loop variables, accumulators). */
    void setReg(Reg dst, Reg src);
    void setRegConst(Reg dst, int64_t value);
    void setRegBin(Reg dst, BinKind kind, Reg a, Reg b);
    /** bin() against an immediate; emits the kConst for you. */
    Reg binImm(BinKind kind, Reg a, int64_t imm);
    Reg funcAddr(FuncId target);
    Reg load(GlobalId g, Reg index, int64_t offset = 0);
    void store(GlobalId g, Reg index, Reg value, int64_t offset = 0);
    Reg frameLoad(uint32_t slot);
    void frameStore(uint32_t slot, Reg value);

    /** Direct call; returns the destination register. */
    Reg call(FuncId callee, std::vector<Reg> args = {});
    /** Indirect call through a function-pointer value in `target`. */
    Reg icall(Reg target, std::vector<Reg> args = {}, bool is_asm = false);
    /** Observable side effect (keeps `value` live through DCE). */
    void sink(Reg value);

    // --- terminators ---

    void ret(Reg value = kNoReg);
    void br(BlockId target);
    void condBr(Reg cond, BlockId if_true, BlockId if_false);
    /** Multiway jump; lowered to a jump table unless defenses forbid.
     *  `is_asm` marks hand-written assembly dispatch that hardening
     *  passes must leave alone (it stays a vulnerable indirect jump). */
    void switchOn(Reg value, BlockId default_target,
                  std::vector<std::pair<int64_t, BlockId>> cases,
                  bool is_asm = false);

  private:
    Instruction& emit(Instruction inst);

    Module& module_;
    FuncId func_;
    BlockId cur_ = 0;
};

} // namespace pibe::ir

#endif // PIBE_IR_BUILDER_H_
