#include "ir/builder.h"

namespace pibe::ir {

FunctionBuilder::FunctionBuilder(Module& module, FuncId func)
    : module_(module), func_(func)
{
    Function& f = function();
    PIBE_ASSERT(f.blocks.empty(), "function ", f.name, " already has a body");
    f.blocks.emplace_back();
    cur_ = 0;
}

BlockId
FunctionBuilder::newBlock()
{
    Function& f = function();
    f.blocks.emplace_back();
    return static_cast<BlockId>(f.blocks.size() - 1);
}

void
FunctionBuilder::setBlock(BlockId block)
{
    PIBE_ASSERT(block < function().blocks.size(), "setBlock: bad block");
    cur_ = block;
}

Reg
FunctionBuilder::newReg()
{
    return function().num_regs++;
}

Reg
FunctionBuilder::param(uint32_t i) const
{
    const Function& f = module_.func(func_);
    PIBE_ASSERT(i < f.num_params, "param index out of range");
    return i;
}

uint32_t
FunctionBuilder::newFrameSlot()
{
    return function().frame_size++;
}

Instruction&
FunctionBuilder::emit(Instruction inst)
{
    Function& f = function();
    PIBE_ASSERT(cur_ < f.blocks.size(), "no current block");
    BasicBlock& bb = f.blocks[cur_];
    PIBE_ASSERT(bb.insts.empty() || !bb.insts.back().isTerminator(),
                "emitting past terminator in ", f.name);
    bb.insts.push_back(std::move(inst));
    return bb.insts.back();
}

Reg
FunctionBuilder::constI(int64_t value)
{
    Instruction i;
    i.op = Opcode::kConst;
    i.dst = newReg();
    i.imm = value;
    return emit(std::move(i)).dst;
}

Reg
FunctionBuilder::move(Reg src)
{
    Instruction i;
    i.op = Opcode::kMove;
    i.dst = newReg();
    i.a = src;
    return emit(std::move(i)).dst;
}

void
FunctionBuilder::setReg(Reg dst, Reg src)
{
    Instruction i;
    i.op = Opcode::kMove;
    i.dst = dst;
    i.a = src;
    emit(std::move(i));
}

void
FunctionBuilder::setRegConst(Reg dst, int64_t value)
{
    Instruction i;
    i.op = Opcode::kConst;
    i.dst = dst;
    i.imm = value;
    emit(std::move(i));
}

void
FunctionBuilder::setRegBin(Reg dst, BinKind kind, Reg a, Reg b)
{
    Instruction i;
    i.op = Opcode::kBinOp;
    i.bin = kind;
    i.dst = dst;
    i.a = a;
    i.b = b;
    emit(std::move(i));
}

Reg
FunctionBuilder::bin(BinKind kind, Reg a, Reg b)
{
    Instruction i;
    i.op = Opcode::kBinOp;
    i.bin = kind;
    i.dst = newReg();
    i.a = a;
    i.b = b;
    return emit(std::move(i)).dst;
}

Reg
FunctionBuilder::binImm(BinKind kind, Reg a, int64_t imm)
{
    return bin(kind, a, constI(imm));
}

Reg
FunctionBuilder::funcAddr(FuncId target)
{
    Instruction i;
    i.op = Opcode::kFuncAddr;
    i.dst = newReg();
    i.callee = target;
    return emit(std::move(i)).dst;
}

Reg
FunctionBuilder::load(GlobalId g, Reg index, int64_t offset)
{
    Instruction i;
    i.op = Opcode::kLoad;
    i.dst = newReg();
    i.a = index;
    i.global = g;
    i.imm = offset;
    return emit(std::move(i)).dst;
}

void
FunctionBuilder::store(GlobalId g, Reg index, Reg value, int64_t offset)
{
    Instruction i;
    i.op = Opcode::kStore;
    i.a = index;
    i.b = value;
    i.global = g;
    i.imm = offset;
    emit(std::move(i));
}

Reg
FunctionBuilder::frameLoad(uint32_t slot)
{
    PIBE_ASSERT(slot < function().frame_size, "frameLoad: bad slot");
    Instruction i;
    i.op = Opcode::kFrameLoad;
    i.dst = newReg();
    i.imm = slot;
    return emit(std::move(i)).dst;
}

void
FunctionBuilder::frameStore(uint32_t slot, Reg value)
{
    PIBE_ASSERT(slot < function().frame_size, "frameStore: bad slot");
    Instruction i;
    i.op = Opcode::kFrameStore;
    i.a = value;
    i.imm = slot;
    emit(std::move(i));
}

Reg
FunctionBuilder::call(FuncId callee, std::vector<Reg> args)
{
    PIBE_ASSERT(callee < module_.numFunctions(), "call: bad callee");
    Instruction i;
    i.op = Opcode::kCall;
    i.dst = newReg();
    i.callee = callee;
    i.args = std::move(args);
    i.site_id = module_.allocSiteId();
    return emit(std::move(i)).dst;
}

Reg
FunctionBuilder::icall(Reg target, std::vector<Reg> args, bool is_asm)
{
    Instruction i;
    i.op = Opcode::kICall;
    i.dst = newReg();
    i.a = target;
    i.args = std::move(args);
    i.is_asm = is_asm;
    i.site_id = module_.allocSiteId();
    return emit(std::move(i)).dst;
}

void
FunctionBuilder::sink(Reg value)
{
    Instruction i;
    i.op = Opcode::kSink;
    i.a = value;
    emit(std::move(i));
}

void
FunctionBuilder::ret(Reg value)
{
    Instruction i;
    i.op = Opcode::kRet;
    i.a = value;
    i.site_id = module_.allocSiteId();
    emit(std::move(i));
}

void
FunctionBuilder::br(BlockId target)
{
    Instruction i;
    i.op = Opcode::kBr;
    i.t0 = target;
    emit(std::move(i));
}

void
FunctionBuilder::condBr(Reg cond, BlockId if_true, BlockId if_false)
{
    Instruction i;
    i.op = Opcode::kCondBr;
    i.a = cond;
    i.t0 = if_true;
    i.t1 = if_false;
    emit(std::move(i));
}

void
FunctionBuilder::switchOn(Reg value, BlockId default_target,
                          std::vector<std::pair<int64_t, BlockId>> cases,
                          bool is_asm)
{
    Instruction i;
    i.op = Opcode::kSwitch;
    i.a = value;
    i.t0 = default_target;
    i.is_asm = is_asm;
    for (auto& [v, b] : cases) {
        i.case_values.push_back(v);
        i.case_targets.push_back(b);
    }
    emit(std::move(i));
}

} // namespace pibe::ir
