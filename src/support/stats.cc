#include "support/stats.h"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "support/logging.h"

namespace pibe {

double
median(std::vector<double> values)
{
    PIBE_ASSERT(!values.empty(), "median of empty sample");
    std::sort(values.begin(), values.end());
    const size_t n = values.size();
    if (n % 2 == 1)
        return values[n / 2];
    return 0.5 * (values[n / 2 - 1] + values[n / 2]);
}

double
mean(const std::vector<double>& values)
{
    PIBE_ASSERT(!values.empty(), "mean of empty sample");
    double sum = 0;
    for (double v : values)
        sum += v;
    return sum / static_cast<double>(values.size());
}

double
stddev(const std::vector<double>& values)
{
    if (values.size() < 2)
        return 0.0;
    const double m = mean(values);
    double acc = 0;
    for (double v : values)
        acc += (v - m) * (v - m);
    return std::sqrt(acc / static_cast<double>(values.size() - 1));
}

double
geomeanOverhead(const std::vector<double>& overheads)
{
    PIBE_ASSERT(!overheads.empty(), "geomean of empty sample");
    double log_sum = 0;
    for (double o : overheads) {
        const double ratio = 1.0 + o;
        PIBE_ASSERT(ratio > 0, "overhead ratio must be positive, got ", ratio);
        log_sum += std::log(ratio);
    }
    return std::exp(log_sum / static_cast<double>(overheads.size())) - 1.0;
}

double
overhead(double value, double baseline)
{
    PIBE_ASSERT(baseline > 0, "overhead baseline must be positive");
    return value / baseline - 1.0;
}

std::string
percent(double fraction, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f%%", decimals, fraction * 100.0);
    return buf;
}

std::string
fixedStr(double value, int decimals)
{
    char buf[48];
    std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
    return buf;
}

} // namespace pibe
