#include "support/table.h"

#include <algorithm>
#include <sstream>

#include "support/logging.h"

namespace pibe {

Table::Table(std::vector<std::string> header) : header_(std::move(header))
{
    PIBE_ASSERT(!header_.empty(), "table must have at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    PIBE_ASSERT(row.size() == header_.size(),
                "row arity ", row.size(), " != header arity ",
                header_.size());
    rows_.push_back(std::move(row));
    ++row_count_;
}

void
Table::addSeparator()
{
    rows_.emplace_back();
}

std::string
Table::render() const
{
    std::vector<size_t> widths(header_.size());
    for (size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](std::ostringstream& os,
                        const std::vector<std::string>& row) {
        for (size_t c = 0; c < row.size(); ++c) {
            os << (c == 0 ? "| " : " | ");
            os << row[c];
            os << std::string(widths[c] - row[c].size(), ' ');
        }
        os << " |\n";
    };

    auto emit_sep = [&](std::ostringstream& os) {
        for (size_t c = 0; c < widths.size(); ++c) {
            os << (c == 0 ? "|-" : "-|-");
            os << std::string(widths[c], '-');
        }
        os << "-|\n";
    };

    std::ostringstream os;
    emit_sep(os);
    emit_row(os, header_);
    emit_sep(os);
    for (const auto& row : rows_) {
        if (row.empty())
            emit_sep(os);
        else
            emit_row(os, row);
    }
    emit_sep(os);
    return os.str();
}

} // namespace pibe
