/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * All stochastic behaviour in the library (synthetic kernel generation,
 * workload request mixes, predictor tie-breaking) flows through Rng so
 * that every experiment is reproducible from a seed.
 */
#ifndef PIBE_SUPPORT_RNG_H_
#define PIBE_SUPPORT_RNG_H_

#include <cstdint>
#include <vector>

#include "support/logging.h"

namespace pibe {

/**
 * SplitMix64-seeded xoshiro256** generator.
 *
 * Small, fast, and stable across platforms; not suitable for
 * cryptography, which we do not need.
 */
class Rng
{
  public:
    /** Construct from a 64-bit seed (any value, including 0, is fine). */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ull) { reseed(seed); }

    /** Re-initialize the state from a seed. */
    void
    reseed(uint64_t seed)
    {
        // SplitMix64 to spread the seed across the 256-bit state.
        uint64_t x = seed;
        for (auto& s : state_) {
            x += 0x9e3779b97f4a7c15ull;
            uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
            s = z ^ (z >> 31);
        }
    }

    /** Next uniformly distributed 64-bit value. */
    uint64_t
    next()
    {
        const uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform value in [0, bound). @pre bound > 0. */
    uint64_t
    below(uint64_t bound)
    {
        PIBE_ASSERT(bound > 0, "Rng::below bound must be positive");
        // Rejection-free multiply-shift; bias negligible for our bounds.
        return static_cast<uint64_t>(
            (static_cast<__uint128_t>(next()) * bound) >> 64);
    }

    /** Uniform value in [lo, hi] inclusive. @pre lo <= hi. */
    uint64_t
    range(uint64_t lo, uint64_t hi)
    {
        PIBE_ASSERT(lo <= hi, "Rng::range requires lo <= hi");
        return lo + below(hi - lo + 1);
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability p of returning true. */
    bool chance(double p) { return uniform() < p; }

    /**
     * Draw an index from a discrete distribution given non-negative
     * weights. @pre at least one weight is positive.
     */
    size_t
    weightedIndex(const std::vector<double>& weights)
    {
        double total = 0;
        for (double w : weights)
            total += w;
        PIBE_ASSERT(total > 0, "weightedIndex requires positive total");
        double r = uniform() * total;
        for (size_t i = 0; i < weights.size(); ++i) {
            r -= weights[i];
            if (r < 0)
                return i;
        }
        return weights.size() - 1;
    }

    /**
     * Zipf-like skewed index in [0, n): index i has weight
     * 1 / (i + 1)^alpha. Used for hot/cold path skew in workloads.
     */
    size_t
    zipf(size_t n, double alpha)
    {
        PIBE_ASSERT(n > 0, "zipf requires n > 0");
        // Inverse-CDF via linear scan is fine for the small n we use.
        double total = 0;
        for (size_t i = 0; i < n; ++i)
            total += zipfWeight(i, alpha);
        double r = uniform() * total;
        for (size_t i = 0; i < n; ++i) {
            r -= zipfWeight(i, alpha);
            if (r < 0)
                return i;
        }
        return n - 1;
    }

  private:
    static uint64_t
    rotl(uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static double
    zipfWeight(size_t i, double alpha)
    {
        double base = static_cast<double>(i + 1);
        double w = 1.0;
        // Integer alpha fast path covers all our uses (alpha in {1,2}).
        for (int k = 0; k < static_cast<int>(alpha); ++k)
            w /= base;
        return w;
    }

    uint64_t state_[4] = {};
};

} // namespace pibe

#endif // PIBE_SUPPORT_RNG_H_
