#include "support/logging.h"

#include <cstdio>
#include <cstdlib>

namespace pibe {

namespace {
LogLevel g_level = LogLevel::kNormal;
} // namespace

void
setLogLevel(LogLevel level)
{
    g_level = level;
}

LogLevel
logLevel()
{
    return g_level;
}

namespace detail {

void
logMessage(const char* tag, LogLevel min_level, const std::string& msg)
{
    if (static_cast<int>(g_level) < static_cast<int>(min_level))
        return;
    std::fprintf(stderr, "[%s] %s\n", tag, msg.c_str());
}

void
fatalImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "[fatal] %s (%s:%d)\n", msg.c_str(), file, line);
    std::exit(1);
}

void
panicImpl(const char* file, int line, const std::string& msg)
{
    std::fprintf(stderr, "[panic] %s (%s:%d)\n", msg.c_str(), file, line);
    std::abort();
}

} // namespace detail
} // namespace pibe
