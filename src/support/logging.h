/**
 * @file
 * Status and error reporting helpers.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (library bugs), fatal() is for unrecoverable user errors
 * (bad configuration, malformed input), warn()/inform() are advisory.
 */
#ifndef PIBE_SUPPORT_LOGGING_H_
#define PIBE_SUPPORT_LOGGING_H_

#include <sstream>
#include <string>

namespace pibe {

/** Verbosity levels for status messages. */
enum class LogLevel {
    kQuiet,   ///< Only fatal/panic output.
    kNormal,  ///< warn() and inform() are printed.
    kVerbose, ///< verbose() is printed as well.
};

/** Set the global log level. Thread-unsafe by design (set once at start). */
void setLogLevel(LogLevel level);

/** Current global log level. */
LogLevel logLevel();

namespace detail {

/** Print a tagged message to stderr honoring the global log level. */
void logMessage(const char* tag, LogLevel min_level, const std::string& msg);

/** Print a fatal error and exit(1). Used for user-caused conditions. */
[[noreturn]] void fatalImpl(const char* file, int line, const std::string& msg);

/** Print a panic message and abort(). Used for internal bugs. */
[[noreturn]] void panicImpl(const char* file, int line, const std::string& msg);

/** Variadic stream-style string building. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    (os << ... << args);
    return os.str();
}

} // namespace detail

/** Informative message the user should see but not worry about. */
template <typename... Args>
void
inform(Args&&... args)
{
    detail::logMessage("info", LogLevel::kNormal,
                       detail::concat(std::forward<Args>(args)...));
}

/** Warning: something may not behave as well as it should. */
template <typename... Args>
void
warn(Args&&... args)
{
    detail::logMessage("warn", LogLevel::kNormal,
                       detail::concat(std::forward<Args>(args)...));
}

/** Verbose diagnostics, printed only at LogLevel::kVerbose. */
template <typename... Args>
void
verbose(Args&&... args)
{
    detail::logMessage("dbg ", LogLevel::kVerbose,
                       detail::concat(std::forward<Args>(args)...));
}

} // namespace pibe

/** Unrecoverable user error: print message and exit(1). */
#define PIBE_FATAL(...)                                                       \
    ::pibe::detail::fatalImpl(__FILE__, __LINE__,                             \
                              ::pibe::detail::concat(__VA_ARGS__))

/** Internal invariant violation: print message and abort(). */
#define PIBE_PANIC(...)                                                       \
    ::pibe::detail::panicImpl(__FILE__, __LINE__,                             \
                              ::pibe::detail::concat(__VA_ARGS__))

/** Check an internal invariant; panics with the condition text on failure. */
#define PIBE_ASSERT(cond, ...)                                                \
    do {                                                                      \
        if (!(cond)) {                                                        \
            ::pibe::detail::panicImpl(                                        \
                __FILE__, __LINE__,                                           \
                ::pibe::detail::concat("assertion failed: " #cond " ",        \
                                       ##__VA_ARGS__));                       \
        }                                                                     \
    } while (false)

#endif // PIBE_SUPPORT_LOGGING_H_
