/**
 * @file
 * Plain-text table rendering for the benchmark harness, so every bench
 * binary can print rows in the same layout as the paper's tables.
 */
#ifndef PIBE_SUPPORT_TABLE_H_
#define PIBE_SUPPORT_TABLE_H_

#include <string>
#include <vector>

namespace pibe {

/**
 * A simple column-aligned text table.
 *
 * Usage:
 * @code
 *   Table t({"Test", "LTO", "PIBE"});
 *   t.addRow({"read", "0.20", "-6.7%"});
 *   std::cout << t.render();
 * @endcode
 */
class Table
{
  public:
    /** Construct with the header row. */
    explicit Table(std::vector<std::string> header);

    /** Append a data row; must have the same arity as the header. */
    void addRow(std::vector<std::string> row);

    /** Append a horizontal separator line. */
    void addSeparator();

    /** Render the table to a string with aligned columns. */
    std::string render() const;

    /** Number of data rows added (separators excluded). */
    size_t rowCount() const { return row_count_; }

  private:
    std::vector<std::string> header_;
    // Separator rows are encoded as empty vectors.
    std::vector<std::vector<std::string>> rows_;
    size_t row_count_ = 0;
};

} // namespace pibe

#endif // PIBE_SUPPORT_TABLE_H_
