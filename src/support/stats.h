/**
 * @file
 * Small statistics helpers used throughout the evaluation harness:
 * medians (the paper reports medians of >= 11 runs), geometric means
 * (the paper's aggregate metric), and overhead formatting.
 */
#ifndef PIBE_SUPPORT_STATS_H_
#define PIBE_SUPPORT_STATS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pibe {

/** Median of a sample; averages the two middle values for even sizes. */
double median(std::vector<double> values);

/** Arithmetic mean. @pre values non-empty. */
double mean(const std::vector<double>& values);

/** Sample standard deviation (n-1 denominator); 0 for size < 2. */
double stddev(const std::vector<double>& values);

/**
 * Geometric mean of overhead ratios.
 *
 * Inputs are overheads as fractions (0.10 == +10%); the geomean is
 * computed over the ratios (1 + overhead) and converted back, matching
 * how the paper aggregates LMBench overheads (negative overheads, i.e.
 * speedups, are well-defined).
 */
double geomeanOverhead(const std::vector<double>& overheads);

/** Relative overhead of `value` versus `baseline` as a fraction. */
double overhead(double value, double baseline);

/** Format a fraction as a signed percentage string, e.g. "-6.6%". */
std::string percent(double fraction, int decimals = 1);

/** Format a double with fixed decimals, e.g. fixedStr(3.14159, 2). */
std::string fixedStr(double value, int decimals);

} // namespace pibe

#endif // PIBE_SUPPORT_STATS_H_
