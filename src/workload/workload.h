/**
 * @file
 * Workload framework: user programs that drive the synthetic kernel
 * through its syscall interface, standing in for LMBench (latency
 * microbenchmarks, §8), ApacheBench (the §8.4 robustness profile), and
 * the macrobenchmarks of §8.5.
 */
#ifndef PIBE_WORKLOAD_WORKLOAD_H_
#define PIBE_WORKLOAD_WORKLOAD_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "kernel/kernel.h"
#include "uarch/simulator.h"

namespace pibe::workload {

/** A running kernel instance as seen by user code. */
class KernelHandle
{
  public:
    KernelHandle(uarch::Simulator& sim, const kernel::KernelInfo& info)
        : sim_(sim), info_(info)
    {
    }

    /** Issue a syscall through the kernel's dispatch entry point. */
    int64_t
    syscall(int64_t nr, int64_t a0 = 0, int64_t a1 = 0, int64_t a2 = 0)
    {
        return sim_.run(info_.sys_dispatch, {nr, a0, a1, a2});
    }

    /** Run the boot-time initialization (idempotent). */
    void boot() { sim_.run(info_.kernel_init, {}); }

    uarch::Simulator& sim() { return sim_; }
    const kernel::KernelInfo& info() const { return info_; }

    /** Externally visible path hash of synthetic file `index` (0-63). */
    static int64_t pathHash(int64_t index) { return 1000 + 97 * index; }

  private:
    uarch::Simulator& sim_;
    const kernel::KernelInfo& info_;
};

/** One benchmark workload: optional setup plus a repeatable unit. */
class Workload
{
  public:
    virtual ~Workload() = default;

    /** Short name matching the paper's tables (e.g. "select_tcp"). */
    virtual const std::string& name() const = 0;

    /** One-time preparation (open fds, connect sockets...). */
    virtual void setup(KernelHandle& k) { (void)k; }

    /** One measured operation; `i` is the iteration index. */
    virtual void iteration(KernelHandle& k, uint64_t i) = 0;

    /**
     * Relative weight of one iteration when normalizing latency (the
     * fork tests do more work per iteration; LMBench reports the
     * latency of the whole unit, so this is 1 for all tests).
     */
    virtual double opsPerIteration() const { return 1.0; }

    /**
     * Whether running this workload leaves kernel state behind that
     * could perturb a later test on the same booted image (open fds,
     * leaked mappings, advanced pid counters...). Workloads returning
     * false may share one booted simulator in measureSuite() instead
     * of paying a fresh boot per test. Defaults to true (conservative).
     */
    virtual bool hasCrossTestState() const { return true; }
};

/** Workload assembled from closures; covers nearly every benchmark. */
class SimpleWorkload : public Workload
{
  public:
    using SetupFn = std::function<void(KernelHandle&)>;
    using IterFn = std::function<void(KernelHandle&, uint64_t)>;

    SimpleWorkload(std::string name, SetupFn setup, IterFn iter,
                   bool cross_test_state = true)
        : name_(std::move(name)),
          setup_(std::move(setup)),
          iter_(std::move(iter)),
          cross_test_state_(cross_test_state)
    {
    }

    const std::string& name() const override { return name_; }

    bool hasCrossTestState() const override
    {
        return cross_test_state_;
    }

    void
    setup(KernelHandle& k) override
    {
        if (setup_)
            setup_(k);
    }

    void
    iteration(KernelHandle& k, uint64_t i) override
    {
        iter_(k, i);
    }

  private:
    std::string name_;
    SetupFn setup_;
    IterFn iter_;
    bool cross_test_state_ = true;
};

/** The 20 LMBench latency tests of Table 2, in table order. */
std::vector<std::unique_ptr<Workload>> makeLmbenchSuite();

/** The LMBench subset of Table 3 (retpoline-sensitive tests). */
std::vector<std::string> lmbenchRetpolineSubset();

/** One LMBench test by name; fatal if unknown. */
std::unique_ptr<Workload> makeLmbenchTest(const std::string& name);

/** Macrobenchmarks of Table 7. */
std::unique_ptr<Workload> makeNginxWorkload();
std::unique_ptr<Workload> makeApacheWorkload();
std::unique_ptr<Workload> makeDbenchWorkload();

} // namespace pibe::workload

#endif // PIBE_WORKLOAD_WORKLOAD_H_
