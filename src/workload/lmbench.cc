/**
 * @file
 * LMBench-like latency microbenchmarks over the synthetic kernel.
 *
 * Each test hammers the same kernel facility its LMBench namesake
 * does: `null` is a trivial syscall, `read`/`write` hit the VFS fast
 * path, `select_*` poll many descriptors (the retpoline stress test),
 * the fork tests exercise the heavyweight mm paths, and so on. Names
 * Table 2 so the bench harness can print rows one-for-one.
 */
#include "workload/workload.h"

#include "support/logging.h"

namespace pibe::workload {

namespace {

using kernel::sysno::kAccept;
using kernel::sysno::kClose;
using kernel::sysno::kConnect;
using kernel::sysno::kExec;
using kernel::sysno::kExit;
using kernel::sysno::kFork;
using kernel::sysno::kFstat;
using kernel::sysno::kKill;
using kernel::sysno::kMmap;
using kernel::sysno::kMunmap;
using kernel::sysno::kNull;
using kernel::sysno::kOpen;
using kernel::sysno::kPageFault;
using kernel::sysno::kPipe;
using kernel::sysno::kRead;
using kernel::sysno::kRecv;
using kernel::sysno::kSelect;
using kernel::sysno::kSend;
using kernel::sysno::kSigaction;
using kernel::sysno::kSocket;
using kernel::sysno::kStat;
using kernel::sysno::kWrite;

namespace proto = kernel::proto;

/** Open `count` files and park their fds in user memory at `ubase`. */
void
openFdsIntoUser(KernelHandle& k, int64_t count, int64_t ubase,
                int64_t first_path)
{
    for (int64_t i = 0; i < count; ++i) {
        int64_t fd = k.syscall(kOpen,
                               KernelHandle::pathHash(first_path + i), 0);
        PIBE_ASSERT(fd >= 0, "lmbench setup: open failed");
        k.sim().writeGlobal(k.info().kmem,
                            kernel::KernelLayout::kUserBase + ubase + i,
                            fd);
    }
}

/** Create a connected socket pair of the given protocol. */
std::pair<int64_t, int64_t>
socketPair(KernelHandle& k, int64_t protocol)
{
    int64_t a = k.syscall(kSocket, protocol);
    int64_t b = k.syscall(kSocket, protocol);
    PIBE_ASSERT(a >= 0 && b >= 0, "lmbench setup: socket failed");
    int64_t r = k.syscall(kConnect, a, b);
    PIBE_ASSERT(r == 0, "lmbench setup: connect failed");
    return {a, b};
}

struct TestSpec
{
    const char* name;
    std::function<std::unique_ptr<Workload>()> make;
};

std::unique_ptr<Workload>
simple(const char* name, SimpleWorkload::SetupFn setup,
       SimpleWorkload::IterFn iter, bool cross_test_state = true)
{
    return std::make_unique<SimpleWorkload>(name, std::move(setup),
                                            std::move(iter),
                                            cross_test_state);
}

/** Shared fd slots filled during setup, captured by iterations. */
struct Fds
{
    int64_t a = -1;
    int64_t b = -1;
};

const std::vector<TestSpec>&
specs()
{
    static const std::vector<TestSpec> kSpecs = {
        {"null",
         [] {
             // No setup and no persistent kernel effects: safe to
             // share a booted image across suite entries.
             return simple(
                 "null", nullptr,
                 [](KernelHandle& k, uint64_t) { k.syscall(kNull); },
                 /*cross_test_state=*/false);
         }},
        {"read",
         [] {
             auto fds = std::make_shared<Fds>();
             return simple(
                 "read",
                 [fds](KernelHandle& k) {
                     fds->a =
                         k.syscall(kOpen, KernelHandle::pathHash(0), 0);
                 },
                 [fds](KernelHandle& k, uint64_t) {
                     k.syscall(kRead, fds->a, 64, 4);
                 });
         }},
        {"write",
         [] {
             auto fds = std::make_shared<Fds>();
             return simple(
                 "write",
                 [fds](KernelHandle& k) {
                     fds->a =
                         k.syscall(kOpen, KernelHandle::pathHash(1), 0);
                 },
                 [fds](KernelHandle& k, uint64_t) {
                     k.syscall(kWrite, fds->a, 64, 4);
                 });
         }},
        {"open",
         [] {
             // Every opened fd is closed again: fd-table neutral.
             return simple("open", nullptr,
                           [](KernelHandle& k, uint64_t i) {
                               int64_t fd = k.syscall(
                                   kOpen,
                                   KernelHandle::pathHash(i % 8), 0);
                               k.syscall(kClose, fd);
                           },
                           /*cross_test_state=*/false);
         }},
        {"stat",
         [] {
             return simple("stat", nullptr,
                           [](KernelHandle& k, uint64_t i) {
                               k.syscall(kStat,
                                         KernelHandle::pathHash(i % 8),
                                         128);
                           },
                           /*cross_test_state=*/false);
         }},
        {"fstat",
         [] {
             auto fds = std::make_shared<Fds>();
             return simple(
                 "fstat",
                 [fds](KernelHandle& k) {
                     fds->a =
                         k.syscall(kOpen, KernelHandle::pathHash(2), 0);
                 },
                 [fds](KernelHandle& k, uint64_t) {
                     k.syscall(kFstat, fds->a, 128);
                 });
         }},
        {"af_unix",
         [] {
             auto fds = std::make_shared<Fds>();
             return simple(
                 "af_unix",
                 [fds](KernelHandle& k) {
                     auto [a, b] = socketPair(k, proto::kUnix);
                     fds->a = a;
                     fds->b = b;
                 },
                 [fds](KernelHandle& k, uint64_t) {
                     k.syscall(kSend, fds->a, 0, 8);
                     k.syscall(kRecv, fds->b, 16, 8);
                 });
         }},
        {"fork/exit",
         [] {
             return simple("fork/exit", nullptr,
                           [](KernelHandle& k, uint64_t) {
                               int64_t pid = k.syscall(kFork);
                               k.syscall(kExit, pid);
                           });
         }},
        {"fork/exec",
         [] {
             return simple("fork/exec", nullptr,
                           [](KernelHandle& k, uint64_t) {
                               int64_t pid = k.syscall(kFork);
                               k.syscall(kExec,
                                         KernelHandle::pathHash(3));
                               k.syscall(kExit, pid);
                           });
         }},
        {"fork/shell",
         [] {
             return simple(
                 "fork/shell", nullptr,
                 [](KernelHandle& k, uint64_t i) {
                     int64_t pid = k.syscall(kFork);
                     k.syscall(kExec, KernelHandle::pathHash(4));
                     int64_t fd = k.syscall(
                         kOpen, KernelHandle::pathHash(5 + i % 3), 0);
                     k.syscall(kRead, fd, 64, 8);
                     k.syscall(kRead, fd, 64, 8);
                     k.syscall(kWrite, fd, 64, 8);
                     k.syscall(kClose, fd);
                     k.syscall(kExit, pid);
                 });
         }},
        {"pipe",
         [] {
             auto fds = std::make_shared<Fds>();
             return simple(
                 "pipe",
                 [fds](KernelHandle& k) {
                     int64_t pair = k.syscall(kPipe);
                     PIBE_ASSERT(pair >= 0, "pipe setup failed");
                     fds->a = pair & 0xffff;         // read end
                     fds->b = (pair >> 16) & 0xffff; // write end
                 },
                 [fds](KernelHandle& k, uint64_t) {
                     k.syscall(kWrite, fds->b, 0, 4);
                     k.syscall(kRead, fds->a, 16, 4);
                 });
         }},
        {"select_file",
         [] {
             return simple(
                 "select_file",
                 [](KernelHandle& k) {
                     openFdsIntoUser(k, 32, 256, 8);
                 },
                 [](KernelHandle& k, uint64_t) {
                     k.syscall(kSelect, 32, 256);
                 });
         }},
        {"select_tcp",
         [] {
             return simple(
                 "select_tcp",
                 [](KernelHandle& k) {
                     for (int64_t i = 0; i < 32; ++i) {
                         int64_t fd = k.syscall(kSocket, proto::kTcp);
                         PIBE_ASSERT(fd >= 0, "select_tcp setup");
                         k.sim().writeGlobal(
                             k.info().kmem,
                             kernel::KernelLayout::kUserBase + 320 + i,
                             fd);
                     }
                 },
                 [](KernelHandle& k, uint64_t) {
                     k.syscall(kSelect, 32, 320);
                 });
         }},
        {"tcp_conn",
         [] {
             auto fds = std::make_shared<Fds>();
             return simple(
                 "tcp_conn",
                 [fds](KernelHandle& k) {
                     fds->a = k.syscall(kSocket, proto::kTcp);
                 },
                 [fds](KernelHandle& k, uint64_t) {
                     int64_t c = k.syscall(kSocket, proto::kTcp);
                     k.syscall(kConnect, c, fds->a);
                     int64_t s = k.syscall(kAccept, fds->a);
                     k.syscall(kClose, c);
                     if (s >= 0)
                         k.syscall(kClose, s);
                 });
         }},
        {"udp",
         [] {
             auto fds = std::make_shared<Fds>();
             return simple(
                 "udp",
                 [fds](KernelHandle& k) {
                     auto [a, b] = socketPair(k, proto::kUdp);
                     fds->a = a;
                     fds->b = b;
                 },
                 [fds](KernelHandle& k, uint64_t) {
                     k.syscall(kSend, fds->a, 0, 8);
                     k.syscall(kRecv, fds->b, 16, 8);
                 });
         }},
        {"tcp",
         [] {
             auto fds = std::make_shared<Fds>();
             return simple(
                 "tcp",
                 [fds](KernelHandle& k) {
                     auto [a, b] = socketPair(k, proto::kTcp);
                     fds->a = a;
                     fds->b = b;
                 },
                 [fds](KernelHandle& k, uint64_t) {
                     k.syscall(kSend, fds->a, 0, 8);
                     k.syscall(kRecv, fds->b, 16, 8);
                 });
         }},
        {"mmap",
         [] {
             // Mappings are unmapped within the iteration: VMA neutral.
             return simple("mmap", nullptr,
                           [](KernelHandle& k, uint64_t i) {
                               int64_t addr =
                                   8192 + (i % 16) * 64;
                               k.syscall(kMmap, addr, 64);
                               k.syscall(kMunmap, addr, 64);
                           },
                           /*cross_test_state=*/false);
         }},
        {"page_fault",
         [] {
             return simple(
                 "page_fault",
                 [](KernelHandle& k) {
                     k.syscall(kMmap, 16384, 2048);
                 },
                 [](KernelHandle& k, uint64_t i) {
                     k.syscall(kPageFault, 16384 + (i * 7) % 2048);
                 });
         }},
        {"sig_install",
         [] {
             return simple("sig_install", nullptr,
                           [](KernelHandle& k, uint64_t i) {
                               k.syscall(kSigaction, 5, i % 4);
                           });
         }},
        {"sig_dispatch",
         [] {
             return simple(
                 "sig_dispatch",
                 [](KernelHandle& k) { k.syscall(kSigaction, 5, 1); },
                 [](KernelHandle& k, uint64_t) {
                     // pid 1 is the caller; delivery happens in the
                     // same syscall's exit work.
                     k.syscall(kKill, 1, 5);
                 });
         }},
    };
    return kSpecs;
}

} // namespace

std::vector<std::unique_ptr<Workload>>
makeLmbenchSuite()
{
    std::vector<std::unique_ptr<Workload>> suite;
    for (const TestSpec& spec : specs())
        suite.push_back(spec.make());
    return suite;
}

std::vector<std::string>
lmbenchRetpolineSubset()
{
    // Table 3's rows: tests strongly impacted by retpolines.
    return {"null",       "read",  "write", "open",    "stat",
            "fstat",      "select_tcp", "udp", "tcp", "tcp_conn",
            "af_unix",    "pipe"};
}

std::unique_ptr<Workload>
makeLmbenchTest(const std::string& name)
{
    for (const TestSpec& spec : specs()) {
        if (name == spec.name)
            return spec.make();
    }
    PIBE_FATAL("unknown LMBench test: ", name);
}

} // namespace pibe::workload
