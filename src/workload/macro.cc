/**
 * @file
 * Macrobenchmark workloads (§8.5): request-serving loops that mix
 * kernel facilities the way Nginx, Apache, and DBench do, without
 * specifically stressing the user/kernel transition.
 *
 * The Apache workload doubles as the §8.4 robustness profile: it is
 * deliberately monotonic (the same request path over and over)
 * compared to LMBench's broad sweep.
 */
#include "workload/workload.h"

#include "support/logging.h"

namespace pibe::workload {

namespace {

using kernel::sysno::kAccept;
using kernel::sysno::kClose;
using kernel::sysno::kConnect;
using kernel::sysno::kFstat;
using kernel::sysno::kOpen;
using kernel::sysno::kRead;
using kernel::sysno::kRecv;
using kernel::sysno::kSelect;
using kernel::sysno::kSend;
using kernel::sysno::kSocket;
using kernel::sysno::kStat;
using kernel::sysno::kWrite;

namespace proto = kernel::proto;

struct ServerState
{
    int64_t listener = -1;
    int64_t conns[8] = {-1, -1, -1, -1, -1, -1, -1, -1};
};

} // namespace

std::unique_ptr<Workload>
makeNginxWorkload()
{
    // Event-driven: a select() over persistent connections, then
    // recv / cached-open / read / send per ready connection.
    auto st = std::make_shared<ServerState>();
    return std::make_unique<SimpleWorkload>(
        "nginx",
        [st](KernelHandle& k) {
            st->listener = k.syscall(kSocket, proto::kTcp);
            for (int64_t i = 0; i < 8; ++i) {
                int64_t c = k.syscall(kSocket, proto::kTcp);
                k.syscall(kConnect, c, st->listener);
                st->conns[i] = c;
                k.sim().writeGlobal(k.info().kmem,
                                    kernel::KernelLayout::kUserBase +
                                        400 + i,
                                    c);
            }
        },
        [st](KernelHandle& k, uint64_t i) {
            k.syscall(kSelect, 8, 400);
            int64_t c = st->conns[i % 8];
            k.syscall(kSend, c, 0, 6);  // request arrives
            k.syscall(kRecv, c, 32, 6); // server reads it
            // Static 4-byte page from the cache: open+fstat+read+close.
            int64_t fd =
                k.syscall(kOpen, KernelHandle::pathHash(16 + i % 4), 0);
            k.syscall(kFstat, fd, 64);
            k.syscall(kRead, fd, 96, 4);
            k.syscall(kClose, fd);
            k.syscall(kSend, c, 96, 4);  // response
            k.syscall(kRecv, c, 128, 4); // client drains
        });
}

std::unique_ptr<Workload>
makeApacheWorkload()
{
    // MPM-event-flavored: accept a fresh connection per request, stat
    // then serve the same small static page (monotonic by design).
    auto st = std::make_shared<ServerState>();
    return std::make_unique<SimpleWorkload>(
        "apache",
        [st](KernelHandle& k) {
            st->listener = k.syscall(kSocket, proto::kTcp);
        },
        [st](KernelHandle& k, uint64_t i) {
            int64_t c = k.syscall(kSocket, proto::kTcp);
            k.syscall(kConnect, c, st->listener);
            int64_t s = k.syscall(kAccept, st->listener);
            k.syscall(kSend, c, 0, 8);  // request
            k.syscall(kRecv, s, 32, 8); // worker reads
            k.syscall(kStat, KernelHandle::pathHash(20 + i % 2), 64);
            int64_t fd =
                k.syscall(kOpen, KernelHandle::pathHash(20 + i % 2), 0);
            k.syscall(kRead, fd, 96, 4);
            k.syscall(kClose, fd);
            k.syscall(kSend, s, 96, 4); // response
            k.syscall(kRecv, c, 128, 4);
            if (s >= 0)
                k.syscall(kClose, s);
            k.syscall(kClose, c);
        });
}

std::unique_ptr<Workload>
makeDbenchWorkload()
{
    // File-server op mix on tmpfs: open/write/read/lseek/stat/close.
    return std::make_unique<SimpleWorkload>(
        "dbench", nullptr, [](KernelHandle& k, uint64_t i) {
            int64_t path = KernelHandle::pathHash(24 + i % 12);
            int64_t fd = k.syscall(kOpen, path, 0);
            if (fd < 0)
                return;
            k.syscall(kWrite, fd, 0, 16);
            k.syscall(kWrite, fd, 16, 16);
            k.syscall(kernel::sysno::kLseek, fd, 0);
            k.syscall(kRead, fd, 64, 16);
            k.syscall(kFstat, fd, 128);
            if (i % 4 == 0)
                k.syscall(kStat, path, 160);
            k.syscall(kClose, fd);
        });
}

} // namespace pibe::workload
