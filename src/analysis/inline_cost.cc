#include "analysis/inline_cost.h"

namespace pibe::analysis {

int64_t
instructionCost(const ir::Instruction& inst)
{
    using ir::Opcode;
    switch (inst.op) {
      case Opcode::kConst:
      case Opcode::kMove:
        return 0; // Typically folded away by the backend.
      case Opcode::kCall:
      case Opcode::kICall:
        return kInstrCost +
               kInstrCost * static_cast<int64_t>(inst.args.size());
      case Opcode::kSwitch:
        return kInstrCost +
               2 * static_cast<int64_t>(inst.case_values.size());
      default:
        return kInstrCost;
    }
}

int64_t
functionCost(const ir::Function& func)
{
    int64_t total = 0;
    for (const auto& bb : func.blocks) {
        for (const auto& inst : bb.insts)
            total += instructionCost(inst);
    }
    return total;
}

InlineCostCache::InlineCostCache(const ir::Module& module)
    : module_(module), cost_(module.numFunctions(), -1)
{
}

int64_t
InlineCostCache::cost(ir::FuncId f)
{
    PIBE_ASSERT(f < cost_.size(), "InlineCostCache: bad func id");
    if (cost_[f] < 0)
        cost_[f] = functionCost(module_.func(f));
    return cost_[f];
}

void
InlineCostCache::invalidate(ir::FuncId f)
{
    PIBE_ASSERT(f < cost_.size(), "InlineCostCache: bad func id");
    cost_[f] = -1;
}

} // namespace pibe::analysis
