#include "analysis/layout.h"

namespace pibe::analysis {

namespace {

/** Extra bytes at the indirect-call site for each forward scheme. */
uint32_t
fwdSchemeBytes(ir::FwdScheme scheme)
{
    switch (scheme) {
      case ir::FwdScheme::kNone:            return 0;
      case ir::FwdScheme::kRetpoline:       return 5;  // call thunk
      case ir::FwdScheme::kLviCfi:          return 5;  // call thunk
      case ir::FwdScheme::kFencedRetpoline: return 8;  // call thunk + setup
      case ir::FwdScheme::kJumpSwitch:      return 24; // inline check slots
    }
    return 0;
}

/** Extra bytes at the return site for each backward scheme. */
uint32_t
retSchemeBytes(ir::RetScheme scheme)
{
    switch (scheme) {
      case ir::RetScheme::kNone:            return 0;
      case ir::RetScheme::kReturnRetpoline: return 15; // inlined thunk
      case ir::RetScheme::kLviRet:          return 7;  // pop+lfence+jmp
      case ir::RetScheme::kFencedRet:       return 21; // Listing 7 tail
    }
    return 0;
}

/** Shared (once-per-image) thunk bodies: retpoline loops etc. */
constexpr uint64_t kSharedThunkBytes = 256;

/** Function alignment in the text section. */
constexpr uint64_t kFuncAlign = 16;

} // namespace

uint32_t
instByteSize(const ir::Instruction& inst)
{
    using ir::Opcode;
    switch (inst.op) {
      case Opcode::kConst:      return 5;  // mov $imm, r
      case Opcode::kMove:       return 3;  // mov r, r
      case Opcode::kBinOp:      return 4;
      case Opcode::kFuncAddr:   return 7;  // lea sym(%rip), r
      case Opcode::kLoad:       return 5;
      case Opcode::kStore:      return 5;
      case Opcode::kFrameLoad:  return 4;
      case Opcode::kFrameStore: return 4;
      case Opcode::kCall:
        return 5 + 2 * static_cast<uint32_t>(inst.args.size());
      case Opcode::kICall:
        return 3 + 2 * static_cast<uint32_t>(inst.args.size()) +
               fwdSchemeBytes(inst.fwd_scheme);
      case Opcode::kRet:
        return 1 + retSchemeBytes(inst.ret_scheme);
      case Opcode::kBr:         return 2;
      case Opcode::kCondBr:     return 4;  // test + jcc
      case Opcode::kSwitch:
        // Bounds check + indexed jump + 8-byte table entries.
        return 10 + 8 * static_cast<uint32_t>(inst.case_values.size()) +
               fwdSchemeBytes(inst.fwd_scheme);
      case Opcode::kSink:       return 3;
    }
    return 4;
}

uint64_t
imageSizeOf(const ir::Module& module)
{
    uint64_t cursor = kSharedThunkBytes;
    for (const ir::Function& f : module.functions()) {
        cursor = (cursor + kFuncAlign - 1) & ~(kFuncAlign - 1);
        for (const ir::BasicBlock& bb : f.blocks) {
            for (const auto& inst : bb.insts)
                cursor += instByteSize(inst);
        }
    }
    return cursor;
}

CodeLayout::CodeLayout(const ir::Module& module)
{
    funcs_.resize(module.numFunctions());
    uint64_t cursor = kSharedThunkBytes;
    for (const ir::Function& f : module.functions()) {
        cursor = (cursor + kFuncAlign - 1) & ~(kFuncAlign - 1);
        FuncLayout& fl = funcs_[f.id];
        fl.base = cursor;
        fl.offsets.reserve(f.instructionCount() + 1);
        fl.block_first.reserve(f.blocks.size() + 1);
        uint32_t offset = 0;
        for (const ir::BasicBlock& bb : f.blocks) {
            fl.block_first.push_back(
                static_cast<uint32_t>(fl.offsets.size()));
            for (const auto& inst : bb.insts) {
                fl.offsets.push_back(offset);
                offset += instByteSize(inst);
            }
        }
        fl.block_first.push_back(
            static_cast<uint32_t>(fl.offsets.size()));
        fl.offsets.push_back(offset); // end-of-function sentinel
        cursor += offset;
    }
    image_size_ = cursor;
}

uint64_t
CodeLayout::funcBase(ir::FuncId f) const
{
    PIBE_ASSERT(f < funcs_.size(), "funcBase: bad func id");
    return funcs_[f].base;
}

uint64_t
CodeLayout::blockStart(ir::FuncId f, ir::BlockId b) const
{
    PIBE_ASSERT(f < funcs_.size() &&
                    b + 1 < funcs_[f].block_first.size(),
                "blockStart: bad ref");
    // A block's first offset; an empty block shares its successor's
    // start, and the trailing offsets entry covers the last block.
    return funcs_[f].base +
           funcs_[f].offsets[funcs_[f].block_first[b]];
}

uint64_t
CodeLayout::blockEnd(ir::FuncId f, ir::BlockId b) const
{
    PIBE_ASSERT(f < funcs_.size() &&
                    b + 1 < funcs_[f].block_first.size(),
                "blockEnd: bad ref");
    return funcs_[f].base +
           funcs_[f].offsets[funcs_[f].block_first[b + 1]];
}

uint64_t
CodeLayout::instAddr(ir::FuncId f, ir::BlockId b, uint32_t idx) const
{
    PIBE_ASSERT(f < funcs_.size() &&
                    b + 1 < funcs_[f].block_first.size() &&
                    funcs_[f].block_first[b] + idx <
                        funcs_[f].block_first[b + 1],
                "instAddr: bad ref");
    return funcs_[f].base +
           funcs_[f].offsets[funcs_[f].block_first[b] + idx];
}

const std::vector<uint32_t>&
CodeLayout::instOffsets(ir::FuncId f) const
{
    PIBE_ASSERT(f < funcs_.size(), "instOffsets: bad func id");
    return funcs_[f].offsets;
}

const std::vector<uint32_t>&
CodeLayout::blockFirstInst(ir::FuncId f) const
{
    PIBE_ASSERT(f < funcs_.size(), "blockFirstInst: bad func id");
    return funcs_[f].block_first;
}

uint64_t
CodeLayout::residentTextSize() const
{
    // Kernel text is mapped at large-page granularity; scaled to
    // 256 KiB for the synthetic kernel's size (Linux uses 2 MiB pages
    // over a ~25 MiB text, a similar page-to-image ratio).
    constexpr uint64_t kLargePage = 256ull << 10;
    return (image_size_ + kLargePage - 1) / kLargePage * kLargePage;
}

} // namespace pibe::analysis
