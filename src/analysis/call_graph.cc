#include "analysis/call_graph.h"

#include <algorithm>

namespace pibe::analysis {

CallGraph::CallGraph(const ir::Module& module)
    : num_funcs_(module.numFunctions()),
      callees_(num_funcs_),
      recursive_(num_funcs_, false)
{
    for (const ir::Function& f : module.functions()) {
        auto& out = callees_[f.id];
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                if (inst.op == ir::Opcode::kCall)
                    out.push_back(inst.callee);
            }
        }
        std::sort(out.begin(), out.end());
        out.erase(std::unique(out.begin(), out.end()), out.end());
        if (std::binary_search(out.begin(), out.end(), f.id))
            recursive_[f.id] = true;
    }
    computeSccs();
}

const std::vector<ir::FuncId>&
CallGraph::callees(ir::FuncId f) const
{
    PIBE_ASSERT(f < num_funcs_, "callees: bad func id");
    return callees_[f];
}

bool
CallGraph::isRecursive(ir::FuncId f) const
{
    PIBE_ASSERT(f < num_funcs_, "isRecursive: bad func id");
    return recursive_[f];
}

const std::vector<ir::FuncId>&
CallGraph::bottomUpOrder() const
{
    return bottom_up_;
}

void
CallGraph::computeSccs()
{
    // Iterative Tarjan SCC. Functions in an SCC of size > 1 (or with a
    // self-edge, already flagged) are recursive. SCC discovery order is
    // reverse topological, which is exactly the bottom-up order we want.
    constexpr uint32_t kUnvisited = 0xffffffffu;
    std::vector<uint32_t> index(num_funcs_, kUnvisited);
    std::vector<uint32_t> lowlink(num_funcs_, 0);
    std::vector<bool> on_stack(num_funcs_, false);
    std::vector<ir::FuncId> stack;
    uint32_t next_index = 0;

    struct WorkItem
    {
        ir::FuncId func;
        size_t child = 0;
    };

    for (ir::FuncId root = 0; root < num_funcs_; ++root) {
        if (index[root] != kUnvisited)
            continue;
        std::vector<WorkItem> work;
        work.push_back({root});
        index[root] = lowlink[root] = next_index++;
        stack.push_back(root);
        on_stack[root] = true;

        while (!work.empty()) {
            WorkItem& item = work.back();
            const auto& succs = callees_[item.func];
            if (item.child < succs.size()) {
                ir::FuncId next = succs[item.child++];
                if (index[next] == kUnvisited) {
                    index[next] = lowlink[next] = next_index++;
                    stack.push_back(next);
                    on_stack[next] = true;
                    work.push_back({next});
                } else if (on_stack[next]) {
                    lowlink[item.func] =
                        std::min(lowlink[item.func], index[next]);
                }
            } else {
                ir::FuncId v = item.func;
                work.pop_back();
                if (!work.empty()) {
                    lowlink[work.back().func] =
                        std::min(lowlink[work.back().func], lowlink[v]);
                }
                if (lowlink[v] == index[v]) {
                    // Pop one complete SCC.
                    std::vector<ir::FuncId> scc;
                    ir::FuncId w;
                    do {
                        w = stack.back();
                        stack.pop_back();
                        on_stack[w] = false;
                        scc.push_back(w);
                    } while (w != v);
                    if (scc.size() > 1) {
                        for (ir::FuncId s : scc)
                            recursive_[s] = true;
                    }
                    // SCCs complete in callee-before-caller order.
                    for (ir::FuncId s : scc)
                        bottom_up_.push_back(s);
                }
            }
        }
    }
}

const ir::Instruction*
findSite(const ir::Module& module, ir::SiteId site, SiteRef* where)
{
    for (const ir::Function& f : module.functions()) {
        for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
            const auto& insts = f.blocks[b].insts;
            for (uint32_t i = 0; i < insts.size(); ++i) {
                if (insts[i].site_id == site) {
                    if (where)
                        *where = SiteRef{f.id, b, i};
                    return &insts[i];
                }
            }
        }
    }
    return nullptr;
}

} // namespace pibe::analysis
