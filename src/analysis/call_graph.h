/**
 * @file
 * Call-graph construction over PIR modules: direct call edges, SCC
 * (recursion) detection, and a bottom-up traversal order used by the
 * default (LLVM-like) inliner.
 */
#ifndef PIBE_ANALYSIS_CALL_GRAPH_H_
#define PIBE_ANALYSIS_CALL_GRAPH_H_

#include <cstdint>
#include <vector>

#include "ir/module.h"

namespace pibe::analysis {

/** Location of an instruction within a module. */
struct SiteRef
{
    ir::FuncId func = ir::kInvalidFunc;
    ir::BlockId block = 0;
    uint32_t index = 0;
};

/**
 * Direct-call graph of a module.
 *
 * Indirect edges are not represented here (they are profile-driven and
 * handled by the ICP pass); the graph serves recursion detection and
 * bottom-up ordering for inliners.
 */
class CallGraph
{
  public:
    /** Build the graph by scanning `module`. */
    explicit CallGraph(const ir::Module& module);

    /** Unique direct callees of `f` (deduplicated). */
    const std::vector<ir::FuncId>& callees(ir::FuncId f) const;

    /**
     * True if `f` participates in a direct-call cycle (including
     * self-recursion). Such functions are never inlining candidates.
     */
    bool isRecursive(ir::FuncId f) const;

    /**
     * Functions in bottom-up order: every function appears after all of
     * its non-recursive callees (reverse topological order of the SCC
     * condensation). This is the visitation order LLVM's inliner uses.
     */
    const std::vector<ir::FuncId>& bottomUpOrder() const;

  private:
    void computeSccs();

    size_t num_funcs_;
    std::vector<std::vector<ir::FuncId>> callees_;
    std::vector<bool> recursive_;
    std::vector<ir::FuncId> bottom_up_;
};

/** Find the instruction carrying `site` in the module; null if absent. */
const ir::Instruction* findSite(const ir::Module& module, ir::SiteId site,
                                SiteRef* where = nullptr);

} // namespace pibe::analysis

#endif // PIBE_ANALYSIS_CALL_GRAPH_H_
