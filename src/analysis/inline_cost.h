/**
 * @file
 * InlineCost analysis, mirroring the LLVM heuristic PIBE's paper
 * describes (§5.2): each instruction is assigned a numeric cost that
 * approximates its encoded size; the cost of a function is the sum over
 * its instructions. The paper's Rule 2 (caller complexity <= 12000) and
 * Rule 3 (callee complexity <= 3000) thresholds are expressed in these
 * units.
 */
#ifndef PIBE_ANALYSIS_INLINE_COST_H_
#define PIBE_ANALYSIS_INLINE_COST_H_

#include <cstdint>
#include <vector>

#include "ir/module.h"

namespace pibe::analysis {

/** Standard per-instruction cost on x86 (paper §5.2). */
constexpr int64_t kInstrCost = 5;

/**
 * Cost of one instruction in InlineCost units.
 *
 * Most instructions cost kInstrCost. A nested call costs
 * 5 + 5 * num_args (argument setup plus the call itself). Moves and
 * constants are considered free, as register allocation and constant
 * folding typically eliminate them. Switches pay per case.
 */
int64_t instructionCost(const ir::Instruction& inst);

/** InlineCost of a whole function (sum of instruction costs). */
int64_t functionCost(const ir::Function& func);

/**
 * Caches function costs and invalidates on demand; inliners query
 * costs for every candidate, and recompute only callers they changed.
 */
class InlineCostCache
{
  public:
    explicit InlineCostCache(const ir::Module& module);

    /** Cost of `f`, computed lazily and cached. */
    int64_t cost(ir::FuncId f);

    /** Drop the cached cost of `f` (call after modifying its body). */
    void invalidate(ir::FuncId f);

  private:
    const ir::Module& module_;
    std::vector<int64_t> cost_;   // -1 == not computed
};

} // namespace pibe::analysis

#endif // PIBE_ANALYSIS_INLINE_COST_H_
