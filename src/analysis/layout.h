/**
 * @file
 * Code layout: assigns byte addresses to every function, block, and
 * instruction of a module, and computes the kernel image size.
 *
 * The layout is what makes code-size effects real in the simulator:
 * the i-cache is indexed by these addresses (so inlining-induced bloat
 * costs cycles), the BTB is indexed by branch addresses (so aliasing
 * and poisoning are meaningful), and Table 12's image-size numbers are
 * read directly off the layout.
 */
#ifndef PIBE_ANALYSIS_LAYOUT_H_
#define PIBE_ANALYSIS_LAYOUT_H_

#include <cstdint>
#include <vector>

#include "ir/module.h"

namespace pibe::analysis {

/**
 * Estimated encoded size of one instruction in bytes, including its
 * hardening sequence (hardened branches carry their inline thunk-call
 * setup; the shared thunk bodies are accounted once per image).
 */
uint32_t instByteSize(const ir::Instruction& inst);

/**
 * Total image size of `module` in bytes (code plus shared thunks) —
 * identical to CodeLayout(module).imageSize(), computed in a single
 * streaming walk without materializing per-instruction offset tables.
 * Use this when only the size is needed (size curves over 10^6-inst
 * modules): memory stays O(1) instead of O(insts).
 */
uint64_t imageSizeOf(const ir::Module& module);

/** Byte layout of a module's code image. */
class CodeLayout
{
  public:
    /** Compute the layout of `module`. */
    explicit CodeLayout(const ir::Module& module);

    /** Base address of function `f`. */
    uint64_t funcBase(ir::FuncId f) const;

    /** Start address of block `b` in function `f`. */
    uint64_t blockStart(ir::FuncId f, ir::BlockId b) const;

    /** One past the last byte of block `b` in function `f`. */
    uint64_t blockEnd(ir::FuncId f, ir::BlockId b) const;

    /** Address of instruction `idx` within block `b` of function `f`. */
    uint64_t instAddr(ir::FuncId f, ir::BlockId b, uint32_t idx) const;

    /**
     * Flat per-function offset table: one entry per instruction in
     * block order plus a trailing end-of-function sentinel, each
     * relative to funcBase(f). Blocks are delimited by
     * blockFirstInst(f): block `b` owns entries
     * [blockFirstInst(f)[b], blockFirstInst(f)[b+1]). Consumers that
     * walk whole functions (the pre-decoder) read these directly
     * instead of paying the per-instruction accessor checks.
     */
    const std::vector<uint32_t>& instOffsets(ir::FuncId f) const;

    /** Flat index of each block's first instruction, plus a trailing
     *  total-instruction-count sentinel (size = numBlocks + 1). */
    const std::vector<uint32_t>& blockFirstInst(ir::FuncId f) const;

    /** Total image size in bytes (code plus shared thunks). */
    uint64_t imageSize() const { return image_size_; }

    /**
     * Image size rounded up to 2 MiB huge pages — the granularity at
     * which kernel text occupies memory ("mem size" in Table 12).
     */
    uint64_t residentTextSize() const;

  private:
    struct FuncLayout
    {
        uint64_t base = 0;
        // One offset per instruction in block order, relative to
        // `base`, plus a trailing end-of-function offset. A block's
        // end equals the next block's first offset (code is laid out
        // contiguously), so no per-block sentinel is needed.
        std::vector<uint32_t> offsets;
        // offsets index of each block's first instruction, plus a
        // trailing total-count entry (size = numBlocks + 1).
        std::vector<uint32_t> block_first;
    };

    std::vector<FuncLayout> funcs_;
    uint64_t image_size_ = 0;
};

} // namespace pibe::analysis

#endif // PIBE_ANALYSIS_LAYOUT_H_
