/**
 * @file
 * Internal construction machinery for the synthetic kernel. Not part
 * of the public API; included only by kernel_*.cc.
 */
#ifndef PIBE_KERNEL_KERNEL_BUILDER_INTERNAL_H_
#define PIBE_KERNEL_KERNEL_BUILDER_INTERNAL_H_

#include <functional>
#include <string>
#include <vector>

#include "ir/builder.h"
#include "kernel/kernel.h"
#include "support/rng.h"

namespace pibe::kernel {

/**
 * Builds the synthetic kernel module in two phases: every function is
 * declared first (so tables and call sites can reference ids), then
 * bodies are emitted.
 */
class KernelBuilder
{
  public:
    explicit KernelBuilder(const KernelConfig& config);

    /** Run the build; valid to call once. */
    KernelImage build();

  private:
    using FB = ir::FunctionBuilder;
    using Reg = ir::Reg;
    using BK = ir::BinKind;
    using L = KernelLayout;

    // --- phases ---
    void declareCore();
    void declareDrivers();
    void createGlobals();
    void buildUtil();
    void buildSecurity();
    void buildVfs();
    void buildFilesystems();
    void buildPipes();
    void buildSockets();
    void buildSched();
    void buildMm();
    void buildSignals();
    void buildIrqTrap();
    void buildSyscalls();
    void buildDrivers();
    void buildBoot();

    // --- declaration helper ---
    ir::FuncId declare(const std::string& name, uint32_t params,
                       uint32_t attrs = ir::kAttrNone);

    // --- emission helpers (operate on the current block of b) ---

    /** kmem[index + off] */
    Reg kload(FB& b, Reg index, int64_t off = 0);
    void kstore(FB& b, Reg index, Reg value, int64_t off = 0);
    /** kmem[abs_off] with a constant address. */
    Reg kloadAbs(FB& b, int64_t abs_off);
    void kstoreAbs(FB& b, int64_t abs_off, Reg value);

    /** for (i = 0; i < n; ++i) body(i) — body must not terminate. */
    void countedLoop(FB& b, Reg n, const std::function<void(Reg)>& body);

    /** if (cond != 0) body() — body may terminate (e.g. early ret). */
    void ifThen(FB& b, Reg cond, const std::function<void()>& body);

    /** if (cond) t() else e(); both may terminate. */
    void ifThenElse(FB& b, Reg cond, const std::function<void()>& t,
                    const std::function<void()>& e);

    /** Emit `n` dependent ALU operations on `seed`; returns result. */
    Reg emitAluChain(FB& b, Reg seed, uint32_t n);

    /**
     * Allocate `n` frame slots and spill derived values into them —
     * models stack-resident locals. Inlining merges these frames into
     * the caller's, which is what Rule 2's stack-utilization concern
     * (§5.2) is about.
     */
    void useLocals(FB& b, Reg seed, uint32_t n);

    /** Indirect call through kmem-resident table global `g`[slot]. */
    Reg tableCall(FB& b, ir::GlobalId g, Reg slot,
                  std::vector<Reg> args, bool is_asm = false);

    /** True when the last emitted instruction terminated the block. */
    static bool blockOpen(FB& b);

    // --- module state ---
    KernelConfig cfg_;
    ir::Module m_;
    KernelInfo info_;
    Rng rng_;

    ir::GlobalId kmem_ = 0;
    ir::GlobalId sys_table_ = 0;
    ir::GlobalId fops_ = 0;      ///< fops[fs*8 + op]
    ir::GlobalId proto_ops_ = 0; ///< proto_ops[proto*8 + op]
    ir::GlobalId pv_ops_ = 0;    ///< paravirt table
    ir::GlobalId sig_table_ = 0; ///< user signal handlers
    ir::GlobalId drv_ops_ = 0;   ///< drv_ops[d*4 + op]
    ir::GlobalId ptype_ = 0;     ///< protocol receive handlers

    /** Name -> FuncId shorthand for handwritten code. */
    ir::FuncId fn(const std::string& name) const;

    // Driver function ids: [d][0..3] = xmit, ioctl, irq, probe.
    std::vector<std::vector<ir::FuncId>> driver_ops_;
    std::vector<std::vector<ir::FuncId>> driver_helpers_;
    std::vector<ir::FuncId> driver_work_;
};

} // namespace pibe::kernel

#endif // PIBE_KERNEL_KERNEL_BUILDER_INTERNAL_H_
