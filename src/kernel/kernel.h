/**
 * @file
 * The synthetic kernel — the reproduction's stand-in for Linux 5.1.
 *
 * buildKernel() constructs a deterministic PIR module with the
 * structural properties PIBE's evaluation depends on:
 *
 *  - a syscall table dispatched through an indirect call, with ~25
 *    syscalls covering the subsystems LMBench exercises (VFS, pipes,
 *    sockets, fork/exec, mm/page-fault, signals);
 *  - function-pointer operation tables everywhere the real kernel has
 *    them (per-filesystem file_operations, per-protocol proto_ops,
 *    per-driver device ops, signal handlers) producing both hot
 *    multi-target and cold single-target indirect call sites;
 *  - deep chains of small functions on the hot paths (fd lookup,
 *    permission hooks, generic_file_* helpers) — the inlining surface;
 *  - paravirt hypercall sites emitted as inline-assembly indirect
 *    calls that no pass may touch (the "Vuln. ICalls" of Table 11) and
 *    a few assembly switch dispatchers (the "Vuln. IJumps");
 *  - boot-section initialization functions whose returns are not
 *    attack surface;
 *  - parameterized driver ballast providing cold code and realistic
 *    image size.
 *
 * All kernel state lives in one global i64 array ("kmem"), partitioned
 * into regions by KernelLayout, so generic helpers (memcpy/memset)
 * work across subsystems.
 */
#ifndef PIBE_KERNEL_KERNEL_H_
#define PIBE_KERNEL_KERNEL_H_

#include <cstdint>

#include "ir/module.h"

namespace pibe::kernel {

/**
 * Conventional entry-point symbol names. Shared by the hand-built
 * synthetic kernel, the Linux-scale generator (src/scale), and the
 * profile-flow audit's default root set — any module using these names
 * is drivable and auditable by the standard tooling.
 */
constexpr const char* kKernelInitName = "kernel_init";
constexpr const char* kSysDispatchName = "sys_dispatch";
/** Conventional global names recovered by kernelInfoFromModule(). */
constexpr const char* kKmemName = "kmem";
constexpr const char* kSyscallTableName = "syscall_table";

/** Synthetic kernel build parameters. */
struct KernelConfig
{
    uint64_t seed = 42;
    /** Ballast driver modules (each: ops table + helper chain). */
    uint32_t num_drivers = 448;
    /** Helper functions per driver. */
    uint32_t helpers_per_driver = 10;
    /** Total kernel memory slots (i64 words). */
    uint32_t kmem_slots = 1u << 17;
};

/** Syscall numbers of the synthetic kernel. */
namespace sysno {
enum : int64_t {
    kNull = 0,
    kRead,
    kWrite,
    kOpen,
    kClose,
    kStat,
    kFstat,
    kLseek,
    kPipe,
    kSelect,
    kSocket,
    kConnect,
    kAccept,
    kSend,
    kRecv,
    kFork,
    kExec,
    kExit,
    kMmap,
    kMunmap,
    kPageFault, ///< Exception path, exposed as an entry for workloads.
    kSigaction,
    kKill,
    kYield,
    kGetpid,
    kCount,
};
} // namespace sysno

/** Filesystem type codes. */
namespace fstype {
enum : int64_t {
    kRamfs = 0,
    kExtfs,
    kProcfs,
    kDevfs,
    kSockfs,
    kPipefs,
    kCount,
};
} // namespace fstype

/** Socket protocol codes. */
namespace proto {
enum : int64_t { kUnix = 0, kTcp, kUdp, kCount };
} // namespace proto

/**
 * Static partitioning of kmem. All values are slot (i64 word) offsets
 * or element counts; workloads use these to address user buffers and
 * to seed state.
 */
struct KernelLayout
{
    // Scalars.
    static constexpr int64_t kScalars = 64;
    static constexpr int64_t kCurTask = kScalars + 0;
    static constexpr int64_t kJiffies = kScalars + 1;
    static constexpr int64_t kNextPid = kScalars + 2;
    static constexpr int64_t kNeedResched = kScalars + 3;
    static constexpr int64_t kSoftirqPending = kScalars + 4;
    static constexpr int64_t kBootDone = kScalars + 5;

    // File descriptor table: kNumFds entries of kFdSize words:
    // [in_use, fs_type, inode, pos, flags, kind, aux, ready].
    static constexpr int64_t kFdTable = 128;
    static constexpr int64_t kNumFds = 64;
    static constexpr int64_t kFdSize = 8;

    // Inode table: [fs_type, size, data_page, nlink, atime, mtime,
    // mode, gen].
    static constexpr int64_t kInodeTable = kFdTable + kNumFds * kFdSize;
    static constexpr int64_t kNumInodes = 128;
    static constexpr int64_t kInodeSize = 8;

    // Dentry hash table: [name_hash, inode, parent, valid].
    static constexpr int64_t kDentryTable =
        kInodeTable + kNumInodes * kInodeSize;
    static constexpr int64_t kNumDentries = 1024; // power of two
    static constexpr int64_t kDentrySize = 4;

    // Page cache: kNumPages pages of kPageWords each.
    static constexpr int64_t kPageCache =
        kDentryTable + kNumDentries * kDentrySize;
    static constexpr int64_t kNumPages = 256;
    static constexpr int64_t kPageWords = 64;

    // Pipes: [head, tail, readers, writers, buf[kPipeBuf]].
    static constexpr int64_t kPipeTable =
        kPageCache + kNumPages * kPageWords;
    static constexpr int64_t kNumPipes = 16;
    static constexpr int64_t kPipeBuf = 64;
    static constexpr int64_t kPipeSize = 4 + kPipeBuf;

    // Sockets: [proto, state, peer, rx_head, rx_tail, ready,
    // stats_tx, stats_rx, rxbuf[kSockBuf]].
    static constexpr int64_t kSockTable =
        kPipeTable + kNumPipes * kPipeSize;
    static constexpr int64_t kNumSocks = 64;
    static constexpr int64_t kSockBuf = 64;
    static constexpr int64_t kSockSize = 8 + kSockBuf;

    // Tasks: [state, pid, mm_base_page, sig_pending,
    // handlers[kNumSigs], pad...].
    static constexpr int64_t kTaskTable =
        kSockTable + kNumSocks * kSockSize;
    static constexpr int64_t kNumTasks = 32;
    static constexpr int64_t kNumSigs = 16;
    static constexpr int64_t kTaskSize = 16 + kNumSigs;

    // VMAs: [start, end, flags, in_use].
    static constexpr int64_t kVmaTable =
        kTaskTable + kNumTasks * kTaskSize;
    static constexpr int64_t kNumVmas = 256;
    static constexpr int64_t kVmaSize = 4;

    // Page table entries (one word each: mapped flag / frame).
    static constexpr int64_t kPteTable =
        kVmaTable + kNumVmas * kVmaSize;
    static constexpr int64_t kNumPtes = 4096;

    // User memory region (workload buffers live here).
    static constexpr int64_t kUserBase = kPteTable + kNumPtes;
    static constexpr int64_t kUserSize = 4096;

    // Per-driver data regions, kDriverWords each, start here.
    static constexpr int64_t kDriverBase = kUserBase + kUserSize;
    static constexpr int64_t kDriverWords = 64;
};

/** Handles the workloads need to drive a built kernel. */
struct KernelInfo
{
    ir::GlobalId kmem = 0;
    ir::GlobalId syscall_table = 0;
    ir::FuncId sys_dispatch = ir::kInvalidFunc;
    ir::FuncId kernel_init = ir::kInvalidFunc; ///< Boot entry.
    uint32_t num_drivers = 0;
};

/** A built kernel: the module plus the handles to drive it. */
struct KernelImage
{
    ir::Module module;
    KernelInfo info;
};

/** Build the synthetic kernel. Deterministic in `config.seed`. */
KernelImage buildKernel(const KernelConfig& config = {});

/**
 * Recover the KernelInfo handles from a kernel module by name — the
 * entry points and tables are stable symbols, so a module that went
 * through print/parse (or any transformation) stays drivable.
 * Fatal if `module` is not a synthetic kernel.
 */
KernelInfo kernelInfoFromModule(const ir::Module& module);

} // namespace pibe::kernel

#endif // PIBE_KERNEL_KERNEL_H_
