/**
 * @file
 * Synthetic kernel: generated driver ballast.
 *
 * Each driver contributes an ops table (xmit/ioctl/irq/probe) reached
 * through indirect calls, and a chain of small helper functions with
 * RNG-shaped (but seed-deterministic) arithmetic bodies. Drivers give
 * the kernel its cold-code mass: hundreds of mostly-single-target
 * indirect call sites (Table 4's long tail), realistic image size, and
 * the big switch in driver_dispatch() is the kernel's largest
 * jump-table candidate.
 */
#include "kernel/kernel_builder_internal.h"

namespace pibe::kernel {

void
KernelBuilder::declareDrivers()
{
    driver_ops_.resize(cfg_.num_drivers);
    driver_helpers_.resize(cfg_.num_drivers);
    driver_work_.resize(cfg_.num_drivers);
    for (uint32_t d = 0; d < cfg_.num_drivers; ++d) {
        const std::string prefix = "drv" + std::to_string(d);
        driver_ops_[d] = {
            declare(prefix + "_xmit", 3),
            declare(prefix + "_ioctl", 3),
            declare(prefix + "_irq", 3),
            declare(prefix + "_probe", 3),
        };
        for (uint32_t h = 0; h < cfg_.helpers_per_driver; ++h) {
            driver_helpers_[d].push_back(
                declare(prefix + "_h" + std::to_string(h), 2));
        }
        driver_work_[d] = declare(prefix + "_work", 2);
    }
}

void
KernelBuilder::buildDrivers()
{
    for (uint32_t d = 0; d < cfg_.num_drivers; ++d) {
        const int64_t dev_base =
            L::kDriverBase + static_cast<int64_t>(d) * L::kDriverWords;
        const auto& helpers = driver_helpers_[d];
        const uint32_t nh = static_cast<uint32_t>(helpers.size());

        // Helpers: h_i mixes its arguments; all but the last chain to
        // h_{i+1}; leaves loop a few iterations. Shapes drawn from the
        // seeded RNG so drivers differ but builds are reproducible.
        for (uint32_t h = 0; h < nh; ++h) {
            FB b(m_, helpers[h]);
            const uint32_t alu = 3 + static_cast<uint32_t>(rng_.below(10));
            Reg mixed = b.bin(BK::kXor, b.param(0), b.param(1));
            Reg acc = emitAluChain(b, mixed, alu);
            if (h + 1 < nh && rng_.chance(0.7)) {
                Reg r = b.call(helpers[h + 1], {acc, b.param(1)});
                acc = b.bin(BK::kAdd, acc, r);
            } else if (rng_.chance(0.5)) {
                // Leaf with a small loop over the device region.
                Reg iters =
                    b.constI(2 + static_cast<int64_t>(rng_.below(5)));
                Reg sum = b.newReg();
                b.setReg(sum, acc);
                countedLoop(b, iters, [&](Reg i) {
                    Reg slot = b.binImm(BK::kAnd, i,
                                        L::kDriverWords - 1);
                    Reg v = kload(b, slot, dev_base);
                    Reg mixed2 = b.bin(BK::kAdd, sum, v);
                    b.setReg(sum, mixed2);
                });
                acc = sum;
            }
            b.ret(acc);
        }

        { // xmit(dev, a, b): the hot op — helper chain plus ring write.
            FB b(m_, driver_ops_[d][0]);
            Reg h0 = b.call(helpers[0], {b.param(1), b.param(2)});
            Reg iters = b.constI(2 + static_cast<int64_t>(rng_.below(6)));
            countedLoop(b, iters, [&](Reg i) {
                Reg mix = b.bin(BK::kAdd, h0, i);
                Reg slot = b.binImm(BK::kAnd, mix, L::kDriverWords - 1);
                Reg idx = b.bin(BK::kAdd, b.param(0), slot);
                // dev pointer is the region base; store stats word.
                Reg rel = b.binImm(BK::kSub, idx, dev_base);
                Reg masked = b.binImm(BK::kAnd, rel,
                                      L::kDriverWords - 1);
                kstore(b, masked, mix, dev_base);
            });
            Reg stat = kload(b, b.param(0), 0);
            Reg nstat = b.binImm(BK::kAdd, stat, 1);
            kstore(b, b.param(0), nstat, 0);
            b.ret(nstat);
        }
        { // ioctl(dev, cmd, arg): multiway command dispatch.
            FB b(m_, driver_ops_[d][1]);
            const uint32_t ncmds = 4 + static_cast<uint32_t>(
                                           rng_.below(5));
            Reg sel = b.binImm(BK::kAnd, b.param(1), 7);
            std::vector<std::pair<int64_t, ir::BlockId>> cases;
            ir::BlockId dflt = b.newBlock();
            for (uint32_t c = 0; c < ncmds; ++c)
                cases.push_back({c, b.newBlock()});
            b.switchOn(sel, dflt, cases);
            for (uint32_t c = 0; c < ncmds; ++c) {
                b.setBlock(cases[c].second);
                Reg r = b.call(helpers[c % nh],
                               {b.param(2), b.param(1)});
                b.ret(r);
            }
            b.setBlock(dflt);
            b.ret(b.constI(-1));
        }
        { // irq(dev, a, b): quick acknowledgment.
            FB b(m_, driver_ops_[d][2]);
            Reg v = kload(b, b.param(0), 1);
            Reg mixed = b.bin(BK::kXor, v, b.param(1));
            kstore(b, b.param(0), mixed, 1);
            b.ret(mixed);
        }
        { // probe(dev, a, b): boot-time initialization of the region.
            FB b(m_, driver_ops_[d][3]);
            Reg n = b.constI(L::kDriverWords);
            countedLoop(b, n, [&](Reg i) {
                Reg mix = b.bin(BK::kAdd, b.param(1), i);
                Reg v = b.call(fn("k_hash"), {mix});
                kstore(b, i, v, dev_base);
            });
            b.ret(b.constI(0));
        }
        { // drvN_work(a, b): dispatch through the ops table (the
          // driver's indirect call sites — cold, single-target).
            FB b(m_, driver_work_[d]);
            Reg dev = b.constI(dev_base);
            Reg xmit_slot = b.constI(static_cast<int64_t>(d) * 4 + 0);
            Reg r = tableCall(b, drv_ops_, xmit_slot,
                              {dev, b.param(0), b.param(1)});
            Reg low = b.binImm(BK::kAnd, b.param(0), 7);
            Reg due = b.binImm(BK::kEq, low, 0);
            ifThen(b, due, [&] {
                Reg ioctl_slot =
                    b.constI(static_cast<int64_t>(d) * 4 + 1);
                Reg cmd = b.binImm(BK::kAnd, b.param(1), 7);
                Reg r2 = tableCall(b, drv_ops_, ioctl_slot,
                                   {dev, cmd, b.param(0)});
                b.sink(r2);
            });
            b.ret(r);
        }
    }

    { // driver_dispatch(d, a, b): the kernel's big jump table.
        FB b(m_, fn("driver_dispatch"));
        Reg sel = b.binImm(BK::kRem, b.param(0),
                           static_cast<int64_t>(cfg_.num_drivers));
        ir::BlockId dflt = b.newBlock();
        std::vector<std::pair<int64_t, ir::BlockId>> cases;
        for (uint32_t d = 0; d < cfg_.num_drivers; ++d)
            cases.push_back({d, b.newBlock()});
        b.switchOn(sel, dflt, cases);
        for (uint32_t d = 0; d < cfg_.num_drivers; ++d) {
            b.setBlock(cases[d].second);
            Reg r = b.call(driver_work_[d], {b.param(1), b.param(2)});
            b.ret(r);
        }
        b.setBlock(dflt);
        b.ret(b.constI(-1));
    }
}

} // namespace pibe::kernel
