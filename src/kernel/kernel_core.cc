/**
 * @file
 * Synthetic kernel: build driver, emission helpers, utility layer,
 * security hooks, VFS, filesystems, and pipes. Networking, scheduling,
 * mm, signals, syscall machinery and boot code live in
 * kernel_systems.cc; driver ballast in kernel_drivers.cc.
 */
#include "kernel/kernel_builder_internal.h"

#include "ir/verifier.h"
#include "support/logging.h"

namespace pibe::kernel {

using ir::FunctionBuilder;

KernelBuilder::KernelBuilder(const KernelConfig& config)
    : cfg_(config), rng_(config.seed)
{
    PIBE_ASSERT(cfg_.num_drivers >= 1, "need at least one driver");
    PIBE_ASSERT(cfg_.kmem_slots >=
                    KernelLayout::kDriverBase +
                        static_cast<int64_t>(cfg_.num_drivers) *
                            KernelLayout::kDriverWords,
                "kmem too small for driver regions");
}

ir::FuncId
KernelBuilder::declare(const std::string& name, uint32_t params,
                       uint32_t attrs)
{
    return m_.addFunction(name, params, attrs);
}

ir::FuncId
KernelBuilder::fn(const std::string& name) const
{
    ir::FuncId f = m_.findFunction(name);
    PIBE_ASSERT(f != ir::kInvalidFunc, "unknown kernel function ", name);
    return f;
}

KernelImage
KernelBuilder::build()
{
    declareCore();
    declareDrivers();
    createGlobals();

    buildUtil();
    buildSecurity();
    buildVfs();
    buildFilesystems();
    buildPipes();
    buildSockets();
    buildSched();
    buildMm();
    buildSignals();
    buildIrqTrap();
    buildSyscalls();
    buildDrivers();
    buildBoot();

    // Every declared function must have received a body.
    for (const ir::Function& f : m_.functions()) {
        PIBE_ASSERT(!f.isDeclaration(),
                    "kernel function without body: ", f.name);
    }
    ir::verifyOrDie(m_, "synthetic kernel");

    info_.num_drivers = cfg_.num_drivers;
    KernelImage image;
    image.module = std::move(m_);
    image.info = info_;
    return image;
}

// ---------------------------------------------------------------------
// Emission helpers
// ---------------------------------------------------------------------

ir::Reg
KernelBuilder::kload(FB& b, Reg index, int64_t off)
{
    return b.load(kmem_, index, off);
}

void
KernelBuilder::kstore(FB& b, Reg index, Reg value, int64_t off)
{
    b.store(kmem_, index, value, off);
}

ir::Reg
KernelBuilder::kloadAbs(FB& b, int64_t abs_off)
{
    Reg zero = b.constI(0);
    return b.load(kmem_, zero, abs_off);
}

void
KernelBuilder::kstoreAbs(FB& b, int64_t abs_off, Reg value)
{
    Reg zero = b.constI(0);
    b.store(kmem_, zero, value, abs_off);
}

bool
KernelBuilder::blockOpen(FB& b)
{
    const ir::Function& f = b.module().func(b.funcId());
    const auto& insts = f.blocks[b.currentBlock()].insts;
    return insts.empty() || !insts.back().isTerminator();
}

void
KernelBuilder::countedLoop(FB& b, Reg n,
                           const std::function<void(Reg)>& body)
{
    Reg i = b.newReg();
    b.setRegConst(i, 0);
    Reg one = b.constI(1);
    ir::BlockId head = b.newBlock();
    ir::BlockId body_bb = b.newBlock();
    ir::BlockId done = b.newBlock();
    b.br(head);
    b.setBlock(head);
    Reg cond = b.bin(BK::kLt, i, n);
    b.condBr(cond, body_bb, done);
    b.setBlock(body_bb);
    body(i);
    PIBE_ASSERT(blockOpen(b), "countedLoop body must not terminate");
    b.setRegBin(i, BK::kAdd, i, one);
    b.br(head);
    b.setBlock(done);
}

void
KernelBuilder::ifThen(FB& b, Reg cond, const std::function<void()>& body)
{
    ir::BlockId then_bb = b.newBlock();
    ir::BlockId done = b.newBlock();
    b.condBr(cond, then_bb, done);
    b.setBlock(then_bb);
    body();
    if (blockOpen(b))
        b.br(done);
    b.setBlock(done);
}

void
KernelBuilder::ifThenElse(FB& b, Reg cond, const std::function<void()>& t,
                          const std::function<void()>& e)
{
    ir::BlockId then_bb = b.newBlock();
    ir::BlockId else_bb = b.newBlock();
    ir::BlockId done = b.newBlock();
    b.condBr(cond, then_bb, else_bb);
    b.setBlock(then_bb);
    t();
    if (blockOpen(b))
        b.br(done);
    b.setBlock(else_bb);
    e();
    if (blockOpen(b))
        b.br(done);
    b.setBlock(done);
}

ir::Reg
KernelBuilder::emitAluChain(FB& b, Reg seed, uint32_t n)
{
    static const BK kOps[] = {BK::kAdd, BK::kXor, BK::kMul, BK::kShr,
                              BK::kOr,  BK::kSub, BK::kAnd, BK::kShl};
    Reg acc = seed;
    for (uint32_t i = 0; i < n; ++i) {
        BK op = kOps[(i * 5 + 3) % 8];
        int64_t imm;
        switch (op) {
          case BK::kShr:
          case BK::kShl:
            imm = 1 + static_cast<int64_t>(i % 5);
            break;
          case BK::kAnd:
            imm = 0x7fffffff;
            break;
          case BK::kMul:
            imm = 0x9e37 + static_cast<int64_t>(i);
            break;
          default:
            imm = 0x5bd1e995 + static_cast<int64_t>(i * 7);
            break;
        }
        acc = b.binImm(op, acc, imm);
    }
    return acc;
}

void
KernelBuilder::useLocals(FB& b, Reg seed, uint32_t n)
{
    for (uint32_t i = 0; i < n; ++i) {
        uint32_t slot = b.newFrameSlot();
        Reg v = b.binImm(BK::kAdd, seed, static_cast<int64_t>(i));
        b.frameStore(slot, v);
    }
}

ir::Reg
KernelBuilder::tableCall(FB& b, ir::GlobalId g, Reg slot,
                         std::vector<Reg> args, bool is_asm)
{
    Reg target = b.load(g, slot, 0);
    return b.icall(target, std::move(args), is_asm);
}

// ---------------------------------------------------------------------
// Declarations
// ---------------------------------------------------------------------

void
KernelBuilder::declareCore()
{
    // util
    declare("k_memcpy", 3);
    declare("k_memset", 3);
    declare("k_hash", 1);
    declare("k_min", 2);
    declare("k_access_ok", 2);
    declare("k_copy_to_user", 3);
    declare("k_copy_from_user", 3);
    declare("k_cond_resched", 0);
    declare("k_current", 0);
    declare("k_panic", 1, ir::kAttrNoInline);
    declare("debug_trace", 1, ir::kAttrOptNone);

    // security hooks (LSM stack: three chained modules per hook)
    declare("sec_cap_check", 1);
    declare("apparmor_file_permission", 2);
    declare("selinux_file_permission", 2);
    declare("bpf_lsm_hook", 2);
    declare("sec_file_permission", 2);
    declare("sec_socket_check", 2);
    declare("security_file_open", 2);

    // syscall entry/exit bulk (audit & seccomp models)
    declare("audit_syscall", 1);
    declare("seccomp_filter", 1);
    declare("rcu_note_context_switch", 1, ir::kAttrNoInline);

    // vfs
    declare("fd_lookup", 1);
    declare("fdget", 1);
    declare("fdput", 1);
    declare("alloc_fd", 0);
    declare("get_unused_fd", 0);
    declare("fd_install", 2);
    declare("d_hash_probe", 1);
    declare("d_insert", 2);
    declare("dget", 1);
    declare("step_into", 2);
    declare("link_path_walk", 1);
    declare("path_lookup", 1);
    declare("rw_verify_area", 2);
    declare("iocb_setup", 2);
    declare("fsnotify_access", 1);
    declare("fsnotify_modify", 1);
    declare("file_accessed", 1);
    declare("mark_page_accessed", 1);
    declare("touch_atime", 1);
    declare("balance_dirty", 0);
    declare("vfs_read", 3);
    declare("vfs_write", 3);
    declare("vfs_open", 2);
    declare("vfs_close", 1);
    declare("vfs_poll", 1);
    declare("vfs_stat", 2);
    declare("vfs_fstat", 2);
    declare("vfs_lseek", 2);
    declare("fput_slow", 1, ir::kAttrNoInline);
    declare("find_page", 2);
    declare("generic_file_read", 3);
    declare("generic_file_write", 3);

    // filesystems (uniform 3-arg op signatures)
    static const char* kFsNames[] = {"ramfs", "extfs", "procfs",
                                     "devfs", "sockfs", "pipefs"};
    for (const char* fs : kFsNames) {
        declare(std::string(fs) + "_read", 3);
        declare(std::string(fs) + "_write", 3);
        declare(std::string(fs) + "_open", 3);
        declare(std::string(fs) + "_poll", 3);
        declare(std::string(fs) + "_stat", 3);
    }
    declare("extfs_journal_check", 1);
    declare("extfs_journal_commit", 1);

    // pipes
    declare("pipe_alloc", 0);
    declare("pipe_read", 3);
    declare("pipe_write", 3);
    declare("pipe_wake", 1);

    // sockets and the loopback TX/RX path
    declare("sock_alloc", 1);
    declare("net_checksum", 2);
    declare("sk_wake", 1);
    declare("sock_copy_to_peer", 3);
    declare("sock_poll", 1);
    declare("skb_alloc", 1);
    declare("skb_put", 2);
    declare("dev_queue_xmit", 3);
    declare("loopback_xmit", 3);
    declare("netif_rx", 3);
    declare("unix_rcv", 3);
    declare("tcp_rcv", 3);
    declare("udp_rcv", 3);
    for (const char* p : {"unix", "tcp", "udp"}) {
        declare(std::string(p) + "_sendmsg", 3);
        declare(std::string(p) + "_recvmsg", 3);
        declare(std::string(p) + "_connect", 3);
        declare(std::string(p) + "_accept", 3);
        declare(std::string(p) + "_poll", 3);
    }
    declare("tcp_transmit", 2);
    declare("tcp_init_sock", 1);

    // sched
    declare("alloc_task", 0);
    declare("copy_task", 2);
    declare("copy_mm", 2);
    declare("copy_pte_range", 3);
    declare("copy_files", 2);
    declare("fd_clone", 1);
    declare("schedule", 0);
    declare("context_switch", 2);

    // mm
    declare("find_vma", 1);
    declare("vma_merge_check", 2);
    declare("pte_walk", 1);
    declare("alloc_page_frame", 1);
    declare("flush_mm", 1);
    declare("load_binary", 2);

    // signals
    declare("do_signal", 1);
    declare("usr_sig_ignore", 1);
    declare("usr_sig_count", 1);
    declare("usr_sig_term", 1);
    declare("usr_sig_custom", 1);

    // paravirt ops (called through pv_ops with is_asm sites)
    declare("pv_flush_tlb_one", 1);
    declare("pv_flush_tlb_all", 1);
    declare("pv_write_cr3", 1);
    declare("pv_io_delay", 1);

    // irq / traps (assembly dispatchers)
    declare("do_trap", 3);
    declare("trap_divide", 1);
    declare("trap_gp", 1);
    declare("trap_nmi", 1);
    declare("trap_pf", 1);
    declare("mce_handler", 1);
    declare("irq_dispatch", 3);
    declare("irq_timer", 0);
    declare("irq_net", 0);
    declare("irq_disk", 0);
    declare("emergency_restart", 1);
    declare("acpi_event", 1);
    declare("run_softirq", 1);
    declare("driver_dispatch", 3);

    // syscall machinery
    declare("syscall_entry", 0);
    declare("syscall_exit_work", 0);
    declare("sys_ni", 3);
    static const char* kSysNames[] = {
        "sys_null",   "sys_read",    "sys_write",     "sys_open",
        "sys_close",  "sys_stat",    "sys_fstat",     "sys_lseek",
        "sys_pipe",   "sys_select",  "sys_socket",    "sys_connect",
        "sys_accept", "sys_send",    "sys_recv",      "sys_fork",
        "sys_exec",   "sys_exit",    "sys_mmap",      "sys_munmap",
        "sys_pagefault", "sys_sigaction", "sys_kill", "sys_yield",
        "sys_getpid",
    };
    static_assert(sizeof(kSysNames) / sizeof(kSysNames[0]) ==
                  sysno::kCount);
    for (const char* s : kSysNames)
        declare(s, 3);
    info_.sys_dispatch = declare(kSysDispatchName, 4);

    // boot
    info_.kernel_init = declare(kKernelInitName, 0, ir::kAttrBootSection);
    declare("init_vfs", 0, ir::kAttrBootSection);
    declare("init_net", 0, ir::kAttrBootSection);
    declare("init_tasks", 0, ir::kAttrBootSection);
    declare("init_drivers", 0, ir::kAttrBootSection);
}

void
KernelBuilder::createGlobals()
{
    kmem_ = m_.addGlobal(kKmemName,
                         std::vector<int64_t>(cfg_.kmem_slots, 0));
    info_.kmem = kmem_;

    // Syscall table: 32 slots, unused ones point at sys_ni.
    {
        std::vector<int64_t> table(32, ir::funcAddrValue(fn("sys_ni")));
        static const char* kSysNames[] = {
            "sys_null",   "sys_read",    "sys_write",     "sys_open",
            "sys_close",  "sys_stat",    "sys_fstat",     "sys_lseek",
            "sys_pipe",   "sys_select",  "sys_socket",    "sys_connect",
            "sys_accept", "sys_send",    "sys_recv",      "sys_fork",
            "sys_exec",   "sys_exit",    "sys_mmap",      "sys_munmap",
            "sys_pagefault", "sys_sigaction", "sys_kill", "sys_yield",
            "sys_getpid",
        };
        for (size_t i = 0; i < sysno::kCount; ++i)
            table[i] = ir::funcAddrValue(fn(kSysNames[i]));
        sys_table_ = m_.addGlobal(kSyscallTableName, std::move(table));
        info_.syscall_table = sys_table_;
    }

    // fops[fs*8 + op]: read, write, open, poll, stat.
    {
        static const char* kFsNames[] = {"ramfs", "extfs", "procfs",
                                         "devfs", "sockfs", "pipefs"};
        static const char* kOps[] = {"read", "write", "open", "poll",
                                     "stat"};
        std::vector<int64_t> table(fstype::kCount * 8, 0);
        for (int64_t f = 0; f < fstype::kCount; ++f) {
            for (int64_t o = 0; o < 5; ++o) {
                table[f * 8 + o] = ir::funcAddrValue(
                    fn(std::string(kFsNames[f]) + "_" + kOps[o]));
            }
        }
        fops_ = m_.addGlobal("fops", std::move(table));
    }

    // proto_ops[proto*8 + op]: sendmsg, recvmsg, connect, accept, poll.
    {
        static const char* kProtos[] = {"unix", "tcp", "udp"};
        static const char* kOps[] = {"sendmsg", "recvmsg", "connect",
                                     "accept", "poll"};
        std::vector<int64_t> table(proto::kCount * 8, 0);
        for (int64_t p = 0; p < proto::kCount; ++p) {
            for (int64_t o = 0; o < 5; ++o) {
                table[p * 8 + o] = ir::funcAddrValue(
                    fn(std::string(kProtos[p]) + "_" + kOps[o]));
            }
        }
        proto_ops_ = m_.addGlobal("proto_ops", std::move(table));
    }

    // Protocol receive handlers (netif_rx demux table).
    {
        std::vector<int64_t> table = {
            ir::funcAddrValue(fn("unix_rcv")),
            ir::funcAddrValue(fn("tcp_rcv")),
            ir::funcAddrValue(fn("udp_rcv")),
        };
        ptype_ = m_.addGlobal("ptype_table", std::move(table));
    }

    // Paravirt ops.
    {
        std::vector<int64_t> table = {
            ir::funcAddrValue(fn("pv_flush_tlb_one")),
            ir::funcAddrValue(fn("pv_flush_tlb_all")),
            ir::funcAddrValue(fn("pv_write_cr3")),
            ir::funcAddrValue(fn("pv_io_delay")),
        };
        pv_ops_ = m_.addGlobal("pv_ops", std::move(table));
    }

    // User signal handlers.
    {
        std::vector<int64_t> table = {
            ir::funcAddrValue(fn("usr_sig_ignore")),
            ir::funcAddrValue(fn("usr_sig_count")),
            ir::funcAddrValue(fn("usr_sig_term")),
            ir::funcAddrValue(fn("usr_sig_custom")),
        };
        sig_table_ = m_.addGlobal("sig_handlers", std::move(table));
    }

    // Driver ops: drv_ops[d*4 + {xmit, ioctl, irq, probe}].
    {
        std::vector<int64_t> table(cfg_.num_drivers * 4, 0);
        for (uint32_t d = 0; d < cfg_.num_drivers; ++d) {
            for (uint32_t o = 0; o < 4; ++o)
                table[d * 4 + o] = ir::funcAddrValue(driver_ops_[d][o]);
        }
        drv_ops_ = m_.addGlobal("drv_ops", std::move(table));
    }
}

// ---------------------------------------------------------------------
// Utility layer
// ---------------------------------------------------------------------

void
KernelBuilder::buildUtil()
{
    { // k_memcpy(dst, src, n): word copy within kmem.
        FB b(m_, fn("k_memcpy"));
        countedLoop(b, b.param(2), [&](Reg i) {
            Reg src = b.bin(BK::kAdd, b.param(1), i);
            Reg v = kload(b, src);
            Reg dst = b.bin(BK::kAdd, b.param(0), i);
            kstore(b, dst, v);
        });
        b.ret(b.param(2));
    }
    { // k_memset(dst, val, n)
        FB b(m_, fn("k_memset"));
        countedLoop(b, b.param(2), [&](Reg i) {
            Reg dst = b.bin(BK::kAdd, b.param(0), i);
            kstore(b, dst, b.param(1));
        });
        b.ret(b.param(2));
    }
    { // k_hash(x): small mixing function.
        FB b(m_, fn("k_hash"));
        Reg x = b.param(0);
        Reg h = b.binImm(BK::kMul, x, 2654435761);
        Reg s = b.binImm(BK::kShr, h, 13);
        Reg m = b.bin(BK::kXor, h, s);
        Reg r = b.binImm(BK::kAnd, m, 0x7fffffff);
        b.ret(r);
    }
    { // k_min(a, b)
        FB b(m_, fn("k_min"));
        Reg le = b.bin(BK::kLe, b.param(0), b.param(1));
        Reg out = b.newReg();
        ifThenElse(b, le, [&] { b.setReg(out, b.param(0)); },
                   [&] { b.setReg(out, b.param(1)); });
        b.ret(out);
    }
    { // k_access_ok(addr, n): user-range check.
        FB b(m_, fn("k_access_ok"));
        Reg nonneg = b.binImm(BK::kGe, b.param(0), 0);
        Reg end = b.bin(BK::kAdd, b.param(0), b.param(1));
        Reg below = b.binImm(BK::kLe, end, L::kUserSize);
        Reg ok = b.bin(BK::kAnd, nonneg, below);
        b.ret(ok);
    }
    { // k_copy_to_user(udst, ksrc, n): masked per-word user stores.
        FB b(m_, fn("k_copy_to_user"));
        Reg ok = b.call(fn("k_access_ok"), {b.param(0), b.param(2)});
        Reg bad = b.binImm(BK::kEq, ok, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        countedLoop(b, b.param(2), [&](Reg i) {
            Reg src = b.bin(BK::kAdd, b.param(1), i);
            Reg v = kload(b, src);
            Reg uoff = b.bin(BK::kAdd, b.param(0), i);
            Reg masked = b.binImm(BK::kAnd, uoff, L::kUserSize - 1);
            kstore(b, masked, v, L::kUserBase);
        });
        b.ret(b.param(2));
    }
    { // k_copy_from_user(kdst, usrc, n)
        FB b(m_, fn("k_copy_from_user"));
        Reg ok = b.call(fn("k_access_ok"), {b.param(1), b.param(2)});
        Reg bad = b.binImm(BK::kEq, ok, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        countedLoop(b, b.param(2), [&](Reg i) {
            Reg uoff = b.bin(BK::kAdd, b.param(1), i);
            Reg masked = b.binImm(BK::kAnd, uoff, L::kUserSize - 1);
            Reg v = kload(b, masked, L::kUserBase);
            Reg dst = b.bin(BK::kAdd, b.param(0), i);
            kstore(b, dst, v);
        });
        b.ret(b.param(2));
    }
    { // k_cond_resched()
        FB b(m_, fn("k_cond_resched"));
        Reg flag = kloadAbs(b, L::kNeedResched);
        ifThen(b, flag, [&] {
            Reg zero = b.constI(0);
            kstoreAbs(b, L::kNeedResched, zero);
            b.call(fn("schedule"), {});
        });
        b.ret(b.constI(0));
    }
    { // k_current(): offset of the running task.
        FB b(m_, fn("k_current"));
        Reg t = kloadAbs(b, L::kCurTask);
        Reg scaled = b.binImm(BK::kMul, t, L::kTaskSize);
        Reg off = b.binImm(BK::kAdd, scaled, L::kTaskTable);
        b.ret(off);
    }
    { // k_panic(code): record and dispatch emergency path.
        FB b(m_, fn("k_panic"));
        kstoreAbs(b, L::kScalars + 9, b.param(0));
        Reg r = b.call(fn("emergency_restart"), {b.param(0)});
        b.sink(r);
        b.ret(b.constI(-1));
    }
    { // debug_trace(x): optnone tracing hook.
        FB b(m_, fn("debug_trace"));
        Reg h = b.call(fn("k_hash"), {b.param(0)});
        Reg mixed = emitAluChain(b, h, 6);
        b.sink(mixed);
        b.ret(mixed);
    }
    { // audit_syscall(nr): a big, hot leaf — the kind of callee Rule 3
      // exists to keep out of callers (InlineCost > 3000).
        FB b(m_, fn("audit_syscall"));
        Reg acc = emitAluChain(b, b.param(0), 640);
        kstoreAbs(b, L::kScalars + 16, acc);
        b.ret(acc);
    }
    { // rcu_note_context_switch(j): RCU quiescent-state report —
      // noinstr/noinline in real kernels, so never an inline candidate
      // despite running on every syscall exit (Table 9 "other").
        FB b(m_, fn("rcu_note_context_switch"));
        Reg ctr = kloadAbs(b, L::kScalars + 23);
        Reg mixed = b.bin(BK::kXor, ctr, b.param(0));
        kstoreAbs(b, L::kScalars + 23, mixed);
        b.ret(b.constI(0));
    }
    { // seccomp_filter(nr): cached-verdict fast path; the full cBPF
      // program body keeps the static size large (Rule 3 bait at a
      // per-syscall call site).
        FB b(m_, fn("seccomp_filter"));
        Reg fast = emitAluChain(b, b.param(0), 8);
        Reg mode = kloadAbs(b, L::kScalars + 21);
        ifThen(b, mode, [&] {
            Reg acc = emitAluChain(b, fast, 620);
            Reg allow = b.binImm(BK::kGe, acc, 0);
            b.ret(allow);
        });
        Reg allow = b.binImm(BK::kGe, fast, 0);
        b.ret(allow);
    }
}

// ---------------------------------------------------------------------
// Security hooks (LSM-style small hot functions)
// ---------------------------------------------------------------------

void
KernelBuilder::buildSecurity()
{
    { // sec_cap_check(cap)
        FB b(m_, fn("sec_cap_check"));
        Reg cur = b.call(fn("k_current"), {});
        Reg mode = kload(b, cur, 8); // task cred word
        Reg masked = b.bin(BK::kAnd, mode, b.param(0));
        Reg ok = b.binImm(BK::kEq, masked, 0);
        b.ret(ok);
    }
    { // apparmor_file_permission(file, mask)
        FB b(m_, fn("apparmor_file_permission"));
        Reg flags = kload(b, b.param(0), 4);
        Reg mix = b.bin(BK::kAnd, flags, b.param(1));
        Reg ok = b.binImm(BK::kGe, mix, 0);
        b.ret(ok);
    }
    { // selinux_file_permission(file, mask): AVC fast path with a fat
      // cold-miss slow path. The whole body is what InlineCost sees —
      // a hot call site with a >3000-unit callee, i.e. Rule 3 bait.
        FB b(m_, fn("selinux_file_permission"));
        Reg ctr = kloadAbs(b, L::kScalars + 18);
        Reg nctr = b.binImm(BK::kAdd, ctr, 1);
        kstoreAbs(b, L::kScalars + 18, nctr);
        Reg cold = b.binImm(BK::kAnd, nctr, 255);
        Reg is_cold = b.binImm(BK::kEq, cold, 0);
        ifThen(b, is_cold, [&] {
            // AVC miss: recompute the access decision from policy.
            Reg ino = kload(b, b.param(0), 2);
            Reg acc = emitAluChain(b, ino, 680);
            kstoreAbs(b, L::kScalars + 19, acc);
            Reg ok = b.binImm(BK::kGe, acc, 0);
            b.ret(ok);
        });
        b.ret(b.constI(1)); // AVC hit
    }
    { // bpf_lsm_hook(file, mask)
        FB b(m_, fn("bpf_lsm_hook"));
        Reg mix = b.bin(BK::kXor, b.param(0), b.param(1));
        b.ret(b.binImm(BK::kGe, mix, 0));
    }
    { // sec_file_permission(file, mask): the stacked LSM chain.
        FB b(m_, fn("sec_file_permission"));
        Reg c0 = b.call(fn("sec_cap_check"), {b.param(1)});
        Reg c1 = b.call(fn("apparmor_file_permission"),
                        {b.param(0), b.param(1)});
        Reg c2 = b.call(fn("selinux_file_permission"),
                        {b.param(0), b.param(1)});
        Reg c3 = b.call(fn("bpf_lsm_hook"), {b.param(0), b.param(1)});
        Reg and01 = b.bin(BK::kAnd, c0, c1);
        Reg and23 = b.bin(BK::kAnd, c2, c3);
        Reg ok = b.bin(BK::kAnd, and01, and23);
        b.ret(ok);
    }
    { // security_file_open(file, flags)
        FB b(m_, fn("security_file_open"));
        Reg c1 = b.call(fn("apparmor_file_permission"),
                        {b.param(0), b.param(1)});
        Reg c2 = b.call(fn("selinux_file_permission"),
                        {b.param(0), b.param(1)});
        Reg ok = b.bin(BK::kAnd, c1, c2);
        b.ret(ok);
    }
    { // sec_socket_check(sock, op)
        FB b(m_, fn("sec_socket_check"));
        Reg c1 = b.call(fn("sec_cap_check"), {b.param(1)});
        b.ret(c1);
    }
}

// ---------------------------------------------------------------------
// VFS
// ---------------------------------------------------------------------

void
KernelBuilder::buildVfs()
{
    { // fd_lookup(fd) -> file offset or -1
        FB b(m_, fn("fd_lookup"));
        Reg fd = b.binImm(BK::kAnd, b.param(0), L::kNumFds - 1);
        Reg scaled = b.binImm(BK::kMul, fd, L::kFdSize);
        Reg off = b.binImm(BK::kAdd, scaled, L::kFdTable);
        Reg in_use = kload(b, off, 0);
        Reg dead = b.binImm(BK::kEq, in_use, 0);
        ifThen(b, dead, [&] { b.ret(b.constI(-1)); });
        b.ret(off);
    }
    { // fdget(fd): lookup + lightweight reference acquisition.
        FB b(m_, fn("fdget"));
        Reg file = b.call(fn("fd_lookup"), {b.param(0)});
        Reg bad = b.binImm(BK::kLt, file, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg refs = kload(b, file, 0);
        Reg nrefs = b.binImm(BK::kAdd, refs, 1);
        kstore(b, file, nrefs, 0);
        b.ret(file);
    }
    { // fdput(file)
        FB b(m_, fn("fdput"));
        Reg refs = kload(b, b.param(0), 0);
        Reg nrefs = b.binImm(BK::kSub, refs, 1);
        Reg low = b.binImm(BK::kLt, nrefs, 1);
        Reg clamped = b.newReg();
        ifThenElse(b, low, [&] { b.setRegConst(clamped, 1); },
                   [&] { b.setReg(clamped, nrefs); });
        kstore(b, b.param(0), clamped, 0);
        b.ret(b.constI(0));
    }
    { // get_unused_fd()
        FB b(m_, fn("get_unused_fd"));
        Reg fd = b.call(fn("alloc_fd"), {});
        b.ret(fd);
    }
    { // fd_install(fd, ino)
        FB b(m_, fn("fd_install"));
        Reg scaled = b.binImm(BK::kMul, b.param(0), L::kFdSize);
        Reg off = b.binImm(BK::kAdd, scaled, L::kFdTable);
        kstore(b, off, b.param(1), 2);
        b.ret(off);
    }
    { // fsnotify_access(file)
        FB b(m_, fn("fsnotify_access"));
        Reg flags = kload(b, b.param(0), 4);
        Reg watched = b.binImm(BK::kAnd, flags, 1 << 14);
        ifThen(b, watched, [&] {
            Reg r = b.call(fn("debug_trace"), {b.param(0)});
            b.sink(r);
        });
        b.ret(b.constI(0));
    }
    { // fsnotify_modify(file)
        FB b(m_, fn("fsnotify_modify"));
        Reg flags = kload(b, b.param(0), 4);
        Reg watched = b.binImm(BK::kAnd, flags, 1 << 15);
        ifThen(b, watched, [&] {
            Reg r = b.call(fn("debug_trace"), {b.param(0)});
            b.sink(r);
        });
        b.ret(b.constI(0));
    }
    { // file_accessed(file)
        FB b(m_, fn("file_accessed"));
        Reg r = b.call(fn("touch_atime"), {b.param(0)});
        b.ret(r);
    }
    { // mark_page_accessed(page)
        FB b(m_, fn("mark_page_accessed"));
        Reg masked = b.binImm(BK::kAnd, b.param(0), L::kNumPages - 1);
        kstoreAbs(b, L::kScalars + 17, masked);
        b.ret(masked);
    }
    { // iocb_setup(file, len)
        FB b(m_, fn("iocb_setup"));
        Reg pos = kload(b, b.param(0), 3);
        Reg mix = b.bin(BK::kAdd, pos, b.param(1));
        Reg flags = kload(b, b.param(0), 4);
        Reg tag = b.bin(BK::kOr, mix, flags);
        b.ret(tag);
    }
    { // dget(ino)
        FB b(m_, fn("dget"));
        Reg masked = b.binImm(BK::kAnd, b.param(0), L::kNumInodes - 1);
        Reg scaled = b.binImm(BK::kMul, masked, L::kInodeSize);
        Reg ioff = b.binImm(BK::kAdd, scaled, L::kInodeTable);
        Reg links = kload(b, ioff, 3);
        Reg n = b.binImm(BK::kAdd, links, 1);
        kstore(b, ioff, n, 3);
        b.ret(ioff);
    }
    { // step_into(parent, ino): permission check on path descent.
        FB b(m_, fn("step_into"));
        Reg mix = b.bin(BK::kXor, b.param(0), b.param(1));
        Reg h = emitAluChain(b, mix, 3);
        Reg ok = b.binImm(BK::kGe, h, 0);
        b.ret(ok);
    }
    { // alloc_fd() -> fd index or -1 (fds 0..2 reserved)
        FB b(m_, fn("alloc_fd"));
        Reg n = b.constI(L::kNumFds);
        countedLoop(b, n, [&](Reg i) {
            Reg lo = b.binImm(BK::kGe, i, 3);
            ifThen(b, lo, [&] {
                Reg scaled = b.binImm(BK::kMul, i, L::kFdSize);
                Reg off = b.binImm(BK::kAdd, scaled, L::kFdTable);
                Reg in_use = kload(b, off, 0);
                Reg free_slot = b.binImm(BK::kEq, in_use, 0);
                ifThen(b, free_slot, [&] {
                    Reg one = b.constI(1);
                    kstore(b, off, one, 0);
                    b.ret(i);
                });
            });
        });
        b.ret(b.constI(-1));
    }
    { // d_hash_probe(h) -> inode or -1
        FB b(m_, fn("d_hash_probe"));
        Reg n = b.constI(8);
        countedLoop(b, n, [&](Reg i) {
            Reg sum = b.bin(BK::kAdd, b.param(0), i);
            Reg slot = b.binImm(BK::kAnd, sum, L::kNumDentries - 1);
            Reg scaled = b.binImm(BK::kMul, slot, L::kDentrySize);
            Reg off = b.binImm(BK::kAdd, scaled, L::kDentryTable);
            Reg valid = kload(b, off, 3);
            Reg name = kload(b, off, 0);
            Reg name_eq = b.bin(BK::kEq, name, b.param(0));
            Reg hit = b.bin(BK::kAnd, valid, name_eq);
            ifThen(b, hit, [&] {
                Reg ino = kload(b, off, 1);
                b.ret(ino);
            });
        });
        b.ret(b.constI(-1));
    }
    { // d_insert(h, ino): linear-probe insert (boot path).
        FB b(m_, fn("d_insert"));
        Reg n = b.constI(16);
        countedLoop(b, n, [&](Reg i) {
            Reg sum = b.bin(BK::kAdd, b.param(0), i);
            Reg slot = b.binImm(BK::kAnd, sum, L::kNumDentries - 1);
            Reg scaled = b.binImm(BK::kMul, slot, L::kDentrySize);
            Reg off = b.binImm(BK::kAdd, scaled, L::kDentryTable);
            Reg valid = kload(b, off, 3);
            Reg free_slot = b.binImm(BK::kEq, valid, 0);
            ifThen(b, free_slot, [&] {
                kstore(b, off, b.param(0), 0);
                kstore(b, off, b.param(1), 1);
                Reg one = b.constI(1);
                kstore(b, off, one, 3);
                b.ret(b.constI(0));
            });
        });
        b.ret(b.constI(-1));
    }
    { // link_path_walk(path_hash): walk 4 components, resolving each
      // through the dentry cache with a permission check per step.
        FB b(m_, fn("link_path_walk"));
        useLocals(b, b.param(0), 3);
        Reg ino = b.newReg();
        b.setRegConst(ino, 0);
        for (int64_t c = 0; c < 4; ++c) {
            Reg salted = b.binImm(BK::kAdd, b.param(0), c * 131);
            Reg h = b.call(fn("k_hash"), {salted});
            Reg next = b.call(fn("d_hash_probe"), {h});
            Reg miss = b.binImm(BK::kLt, next, 0);
            ifThen(b, miss, [&] { b.ret(b.constI(-1)); });
            Reg perm = b.call(fn("step_into"), {ino, next});
            b.sink(perm);
            Reg d = b.call(fn("dget"), {next});
            b.sink(d);
            b.setReg(ino, next);
        }
        b.ret(ino);
    }
    { // path_lookup(path_hash) -> inode or -1
        FB b(m_, fn("path_lookup"));
        Reg ino = b.call(fn("link_path_walk"), {b.param(0)});
        b.ret(ino);
    }
    { // rw_verify_area(file, len)
        FB b(m_, fn("rw_verify_area"));
        Reg pos = kload(b, b.param(0), 3);
        Reg end = b.bin(BK::kAdd, pos, b.param(1));
        Reg neg = b.binImm(BK::kLt, end, 0);
        ifThen(b, neg, [&] { b.ret(b.constI(-1)); });
        Reg flags = kload(b, b.param(0), 4);
        Reg mix = b.bin(BK::kOr, flags, end);
        Reg ok = b.binImm(BK::kGe, mix, 0);
        b.ret(ok);
    }
    { // touch_atime(file)
        FB b(m_, fn("touch_atime"));
        Reg ino = kload(b, b.param(0), 2);
        Reg masked = b.binImm(BK::kAnd, ino, L::kNumInodes - 1);
        Reg scaled = b.binImm(BK::kMul, masked, L::kInodeSize);
        Reg off = b.binImm(BK::kAdd, scaled, L::kInodeTable);
        Reg j = kloadAbs(b, L::kJiffies);
        kstore(b, off, j, 4);
        b.ret(b.constI(0));
    }
    { // balance_dirty()
        FB b(m_, fn("balance_dirty"));
        Reg j = kloadAbs(b, L::kJiffies);
        Reg mixed = emitAluChain(b, j, 4);
        Reg high = b.binImm(BK::kGt, mixed, int64_t{1} << 62);
        ifThen(b, high, [&] {
            Reg one = b.constI(1);
            kstoreAbs(b, L::kNeedResched, one);
        });
        b.ret(b.constI(0));
    }
    { // vfs_read(file, ubuf, len)
        FB b(m_, fn("vfs_read"));
        useLocals(b, b.param(2), 2);
        Reg v = b.call(fn("rw_verify_area"), {b.param(0), b.param(2)});
        Reg bad = b.binImm(BK::kLt, v, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg mask = b.constI(4);
        Reg sec = b.call(fn("sec_file_permission"), {b.param(0), mask});
        b.sink(sec);
        Reg iocb = b.call(fn("iocb_setup"), {b.param(0), b.param(2)});
        b.sink(iocb);
        Reg fs = kload(b, b.param(0), 1);
        Reg scaled = b.binImm(BK::kMul, fs, 8);
        Reg r = tableCall(b, fops_, scaled,
                          {b.param(0), b.param(1), b.param(2)});
        Reg at = b.call(fn("file_accessed"), {b.param(0)});
        b.sink(at);
        b.ret(r);
    }
    { // vfs_write(file, ubuf, len)
        FB b(m_, fn("vfs_write"));
        Reg v = b.call(fn("rw_verify_area"), {b.param(0), b.param(2)});
        Reg bad = b.binImm(BK::kLt, v, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg mask = b.constI(2);
        Reg sec = b.call(fn("sec_file_permission"), {b.param(0), mask});
        b.sink(sec);
        Reg iocb = b.call(fn("iocb_setup"), {b.param(0), b.param(2)});
        b.sink(iocb);
        Reg fs = kload(b, b.param(0), 1);
        Reg scaled = b.binImm(BK::kMul, fs, 8);
        Reg slot = b.binImm(BK::kAdd, scaled, 1);
        Reg r = tableCall(b, fops_, slot,
                          {b.param(0), b.param(1), b.param(2)});
        Reg bd = b.call(fn("balance_dirty"), {});
        b.sink(bd);
        b.ret(r);
    }
    { // vfs_open(path_hash, flags) -> fd or -1
        FB b(m_, fn("vfs_open"));
        useLocals(b, b.param(0), 3);
        Reg ino = b.call(fn("path_lookup"), {b.param(0)});
        Reg miss = b.binImm(BK::kLt, ino, 0);
        ifThen(b, miss, [&] { b.ret(b.constI(-1)); });
        Reg fd = b.call(fn("get_unused_fd"), {});
        Reg full = b.binImm(BK::kLt, fd, 0);
        ifThen(b, full, [&] { b.ret(b.constI(-1)); });
        Reg scaled = b.binImm(BK::kMul, fd, L::kFdSize);
        Reg off = b.binImm(BK::kAdd, scaled, L::kFdTable);
        Reg masked = b.binImm(BK::kAnd, ino, L::kNumInodes - 1);
        Reg iscaled = b.binImm(BK::kMul, masked, L::kInodeSize);
        Reg ioff = b.binImm(BK::kAdd, iscaled, L::kInodeTable);
        Reg fs = kload(b, ioff, 0);
        kstore(b, off, fs, 1);
        kstore(b, off, masked, 2);
        Reg zero = b.constI(0);
        kstore(b, off, zero, 3);
        kstore(b, off, b.param(1), 4);
        kstore(b, off, zero, 5);
        kstore(b, off, zero, 6);
        Reg sec = b.call(fn("security_file_open"), {off, b.param(1)});
        b.sink(sec);
        Reg inst = b.call(fn("fd_install"), {fd, masked});
        b.sink(inst);
        Reg fscaled = b.binImm(BK::kMul, fs, 8);
        Reg slot = b.binImm(BK::kAdd, fscaled, 2);
        Reg r = tableCall(b, fops_, slot, {off, masked, b.param(1)});
        b.sink(r);
        b.ret(fd);
    }
    { // vfs_close(fd)
        FB b(m_, fn("vfs_close"));
        Reg file = b.call(fn("fd_lookup"), {b.param(0)});
        Reg bad = b.binImm(BK::kLt, file, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg gen = kload(b, file, 7);
        Reg corrupt = b.binImm(BK::kGt, gen, int64_t{1} << 40);
        ifThen(b, corrupt, [&] {
            Reg r = b.call(fn("k_panic"), {gen});
            b.sink(r);
        });
        Reg flags = kload(b, file, 4);
        Reg slow = b.binImm(BK::kGt, flags, 1 << 20);
        ifThen(b, slow, [&] {
            Reg r = b.call(fn("fput_slow"), {file});
            b.sink(r);
        });
        Reg zero = b.constI(0);
        // Release the underlying object: kind 2 = pipe, 3 = socket.
        Reg kind = kload(b, file, 5);
        Reg is_sock = b.binImm(BK::kEq, kind, 3);
        ifThen(b, is_sock, [&] {
            Reg s = kload(b, file, 6);
            Reg smask = b.binImm(BK::kAnd, s, L::kNumSocks - 1);
            Reg sscaled = b.binImm(BK::kMul, smask, L::kSockSize);
            Reg soff = b.binImm(BK::kAdd, sscaled, L::kSockTable);
            kstore(b, soff, zero, 1); // state = free
        });
        Reg is_pipe = b.binImm(BK::kEq, kind, 2);
        ifThen(b, is_pipe, [&] {
            Reg p = kload(b, file, 6);
            Reg pmask = b.binImm(BK::kAnd, p, L::kNumPipes - 1);
            Reg pscaled = b.binImm(BK::kMul, pmask, L::kPipeSize);
            Reg poff = b.binImm(BK::kAdd, pscaled, L::kPipeTable);
            Reg readers = kload(b, poff, 2);
            Reg nr = b.binImm(BK::kSub, readers, 1);
            Reg clamped = b.newReg();
            Reg neg = b.binImm(BK::kLt, nr, 0);
            ifThenElse(b, neg, [&] { b.setRegConst(clamped, 0); },
                       [&] { b.setReg(clamped, nr); });
            kstore(b, poff, clamped, 2);
        });
        kstore(b, file, zero, 0);
        b.ret(zero);
    }
    { // fput_slow(file): deferred fput path (noinline).
        FB b(m_, fn("fput_slow"));
        Reg mixed = emitAluChain(b, b.param(0), 10);
        b.sink(mixed);
        b.ret(b.constI(0));
    }
    { // vfs_poll(file)
        FB b(m_, fn("vfs_poll"));
        Reg fs = kload(b, b.param(0), 1);
        Reg scaled = b.binImm(BK::kMul, fs, 8);
        Reg slot = b.binImm(BK::kAdd, scaled, 3);
        Reg zero = b.constI(0);
        Reg r = tableCall(b, fops_, slot, {b.param(0), zero, zero});
        b.ret(r);
    }
    { // vfs_stat(path_hash, ubuf)
        FB b(m_, fn("vfs_stat"));
        Reg ino = b.call(fn("path_lookup"), {b.param(0)});
        Reg miss = b.binImm(BK::kLt, ino, 0);
        ifThen(b, miss, [&] { b.ret(b.constI(-1)); });
        Reg masked = b.binImm(BK::kAnd, ino, L::kNumInodes - 1);
        Reg scaled = b.binImm(BK::kMul, masked, L::kInodeSize);
        Reg ioff = b.binImm(BK::kAdd, scaled, L::kInodeTable);
        Reg fs = kload(b, ioff, 0);
        Reg fscaled = b.binImm(BK::kMul, fs, 8);
        Reg slot = b.binImm(BK::kAdd, fscaled, 4);
        Reg zero = b.constI(0);
        Reg r = tableCall(b, fops_, slot, {ioff, b.param(1), zero});
        b.sink(r);
        Reg six = b.constI(6);
        Reg copied = b.call(fn("k_copy_to_user"),
                            {b.param(1), ioff, six});
        b.ret(copied);
    }
    { // vfs_fstat(fd, ubuf)
        FB b(m_, fn("vfs_fstat"));
        Reg file = b.call(fn("fd_lookup"), {b.param(0)});
        Reg bad = b.binImm(BK::kLt, file, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg ino = kload(b, file, 2);
        Reg scaled = b.binImm(BK::kMul, ino, L::kInodeSize);
        Reg ioff = b.binImm(BK::kAdd, scaled, L::kInodeTable);
        Reg six = b.constI(6);
        Reg copied = b.call(fn("k_copy_to_user"),
                            {b.param(1), ioff, six});
        b.ret(copied);
    }
    { // vfs_lseek(fd, pos)
        FB b(m_, fn("vfs_lseek"));
        Reg file = b.call(fn("fd_lookup"), {b.param(0)});
        Reg bad = b.binImm(BK::kLt, file, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        kstore(b, file, b.param(1), 3);
        b.ret(b.param(1));
    }
    { // find_page(ino_off, idx) -> page index (radix-walk flavored)
        FB b(m_, fn("find_page"));
        Reg base = kload(b, b.param(0), 2);
        Reg mix = b.bin(BK::kAdd, base, b.param(1));
        Reg h = emitAluChain(b, mix, 3);
        Reg even = b.binImm(BK::kAnd, h, 1);
        Reg page = b.newReg();
        ifThenElse(b, even,
                   [&] {
                       Reg p = b.binImm(BK::kAnd, base,
                                        L::kNumPages - 1);
                       b.setReg(page, p);
                   },
                   [&] {
                       Reg p = b.binImm(BK::kAnd, base,
                                        L::kNumPages - 1);
                       b.setReg(page, p);
                   });
        b.ret(page);
    }
    { // generic_file_read(file, ubuf, len)
        FB b(m_, fn("generic_file_read"));
        useLocals(b, b.param(1), 2);
        Reg len = b.binImm(BK::kAnd, b.param(2), 31);
        Reg ino = kload(b, b.param(0), 2);
        Reg scaled = b.binImm(BK::kMul, ino, L::kInodeSize);
        Reg ioff = b.binImm(BK::kAdd, scaled, L::kInodeTable);
        Reg pos = kload(b, b.param(0), 3);
        Reg pidx = b.binImm(BK::kShr, pos, 6);
        Reg page = b.call(fn("find_page"), {ioff, pidx});
        Reg acc = b.call(fn("mark_page_accessed"), {page});
        b.sink(acc);
        Reg pscaled = b.binImm(BK::kMul, page, L::kPageWords);
        Reg in_page = b.binImm(BK::kAnd, pos, 31);
        Reg src0 = b.binImm(BK::kAdd, pscaled, L::kPageCache);
        Reg src = b.bin(BK::kAdd, src0, in_page);
        Reg copied = b.call(fn("k_copy_to_user"),
                            {b.param(1), src, len});
        Reg npos = b.bin(BK::kAdd, pos, len);
        kstore(b, b.param(0), npos, 3);
        b.sink(copied);
        b.ret(len);
    }
    { // generic_file_write(file, ubuf, len)
        FB b(m_, fn("generic_file_write"));
        useLocals(b, b.param(1), 2);
        Reg len = b.binImm(BK::kAnd, b.param(2), 31);
        Reg ino = kload(b, b.param(0), 2);
        Reg scaled = b.binImm(BK::kMul, ino, L::kInodeSize);
        Reg ioff = b.binImm(BK::kAdd, scaled, L::kInodeTable);
        Reg pos = kload(b, b.param(0), 3);
        Reg pidx = b.binImm(BK::kShr, pos, 6);
        Reg page = b.call(fn("find_page"), {ioff, pidx});
        Reg pscaled = b.binImm(BK::kMul, page, L::kPageWords);
        Reg in_page = b.binImm(BK::kAnd, pos, 31);
        Reg dst0 = b.binImm(BK::kAdd, pscaled, L::kPageCache);
        Reg dst = b.bin(BK::kAdd, dst0, in_page);
        Reg copied = b.call(fn("k_copy_from_user"),
                            {dst, b.param(1), len});
        b.sink(copied);
        Reg npos = b.bin(BK::kAdd, pos, len);
        kstore(b, b.param(0), npos, 3);
        Reg one = b.constI(1);
        kstore(b, ioff, one, 5); // mtime/dirty
        b.ret(len);
    }
}

// ---------------------------------------------------------------------
// Filesystems
// ---------------------------------------------------------------------

void
KernelBuilder::buildFilesystems()
{
    auto trivial_ret = [&](const std::string& name, int64_t value) {
        FB b(m_, fn(name));
        b.ret(b.constI(value));
    };

    // --- ramfs: thin wrappers over the generic layer ---
    {
        FB b(m_, fn("ramfs_read"));
        Reg r = b.call(fn("generic_file_read"),
                       {b.param(0), b.param(1), b.param(2)});
        b.ret(r);
    }
    {
        FB b(m_, fn("ramfs_write"));
        Reg r = b.call(fn("generic_file_write"),
                       {b.param(0), b.param(1), b.param(2)});
        b.ret(r);
    }
    {
        FB b(m_, fn("ramfs_open"));
        Reg zero = b.constI(0);
        kstore(b, b.param(0), zero, 7);
        b.ret(zero);
    }
    trivial_ret("ramfs_poll", 1);
    {
        FB b(m_, fn("ramfs_stat"));
        Reg size = kload(b, b.param(0), 1);
        b.ret(size);
    }

    // --- extfs: journaled wrappers ---
    {
        FB b(m_, fn("extfs_journal_check"));
        Reg mixed = emitAluChain(b, b.param(0), 6);
        Reg ok = b.binImm(BK::kGe, mixed, 0);
        b.ret(ok);
    }
    {
        FB b(m_, fn("extfs_journal_commit"));
        Reg mixed = emitAluChain(b, b.param(0), 8);
        kstoreAbs(b, L::kScalars + 10, mixed);
        b.ret(b.constI(0));
    }
    {
        FB b(m_, fn("extfs_read"));
        Reg c = b.call(fn("extfs_journal_check"), {b.param(0)});
        b.sink(c);
        Reg r = b.call(fn("generic_file_read"),
                       {b.param(0), b.param(1), b.param(2)});
        b.ret(r);
    }
    {
        FB b(m_, fn("extfs_write"));
        Reg c = b.call(fn("extfs_journal_check"), {b.param(0)});
        b.sink(c);
        Reg r = b.call(fn("generic_file_write"),
                       {b.param(0), b.param(1), b.param(2)});
        Reg j = b.call(fn("extfs_journal_commit"), {r});
        b.sink(j);
        b.ret(r);
    }
    {
        FB b(m_, fn("extfs_open"));
        Reg c = b.call(fn("extfs_journal_check"), {b.param(1)});
        b.sink(c);
        b.ret(b.constI(0));
    }
    trivial_ret("extfs_poll", 1);
    {
        FB b(m_, fn("extfs_stat"));
        Reg size = kload(b, b.param(0), 1);
        b.ret(size);
    }

    // --- procfs: generated content, no page cache ---
    {
        FB b(m_, fn("procfs_read"));
        Reg len = b.binImm(BK::kAnd, b.param(2), 31);
        Reg j = kloadAbs(b, L::kJiffies);
        countedLoop(b, len, [&](Reg i) {
            Reg mix = b.bin(BK::kAdd, j, i);
            Reg v = b.call(fn("k_hash"), {mix});
            Reg uoff = b.bin(BK::kAdd, b.param(1), i);
            Reg masked = b.binImm(BK::kAnd, uoff, L::kUserSize - 1);
            kstore(b, masked, v, L::kUserBase);
        });
        b.ret(len);
    }
    trivial_ret("procfs_write", -1); // read-only
    trivial_ret("procfs_open", 0);
    trivial_ret("procfs_poll", 1);
    {
        FB b(m_, fn("procfs_stat"));
        Reg j = kloadAbs(b, L::kJiffies);
        b.ret(j);
    }

    // --- devfs: /dev/zero-style ---
    {
        FB b(m_, fn("devfs_read"));
        Reg len = b.binImm(BK::kAnd, b.param(2), 31);
        Reg zero = b.constI(0);
        countedLoop(b, len, [&](Reg i) {
            Reg uoff = b.bin(BK::kAdd, b.param(1), i);
            Reg masked = b.binImm(BK::kAnd, uoff, L::kUserSize - 1);
            kstore(b, masked, zero, L::kUserBase);
        });
        b.ret(len);
    }
    {
        FB b(m_, fn("devfs_write"));
        Reg len = b.binImm(BK::kAnd, b.param(2), 31);
        b.sink(len);
        b.ret(len); // /dev/null semantics
    }
    trivial_ret("devfs_open", 0);
    trivial_ret("devfs_poll", 1);
    trivial_ret("devfs_stat", 0);

    // --- sockfs: delegate to the socket layer ---
    auto sock_off_of_file = [&](FB& b, Reg file) {
        Reg s = kload(b, file, 6);
        Reg masked = b.binImm(BK::kAnd, s, L::kNumSocks - 1);
        Reg scaled = b.binImm(BK::kMul, masked, L::kSockSize);
        return b.binImm(BK::kAdd, scaled, L::kSockTable);
    };
    {
        FB b(m_, fn("sockfs_read"));
        Reg so = sock_off_of_file(b, b.param(0));
        Reg proto_reg = kload(b, so, 0);
        Reg scaled = b.binImm(BK::kMul, proto_reg, 8);
        Reg slot = b.binImm(BK::kAdd, scaled, 1);
        Reg r = tableCall(b, proto_ops_, slot,
                          {so, b.param(1), b.param(2)});
        b.ret(r);
    }
    {
        FB b(m_, fn("sockfs_write"));
        Reg so = sock_off_of_file(b, b.param(0));
        Reg proto_reg = kload(b, so, 0);
        Reg scaled = b.binImm(BK::kMul, proto_reg, 8);
        Reg r = tableCall(b, proto_ops_, scaled,
                          {so, b.param(1), b.param(2)});
        b.ret(r);
    }
    trivial_ret("sockfs_open", 0);
    {
        FB b(m_, fn("sockfs_poll"));
        Reg so = sock_off_of_file(b, b.param(0));
        Reg r = b.call(fn("sock_poll"), {so});
        b.ret(r);
    }
    trivial_ret("sockfs_stat", 0);

    // --- pipefs: delegate to the pipe layer ---
    auto pipe_off_of_file = [&](FB& b, Reg file) {
        Reg p = kload(b, file, 6);
        Reg masked = b.binImm(BK::kAnd, p, L::kNumPipes - 1);
        Reg scaled = b.binImm(BK::kMul, masked, L::kPipeSize);
        return b.binImm(BK::kAdd, scaled, L::kPipeTable);
    };
    {
        FB b(m_, fn("pipefs_read"));
        Reg po = pipe_off_of_file(b, b.param(0));
        Reg r = b.call(fn("pipe_read"), {po, b.param(1), b.param(2)});
        b.ret(r);
    }
    {
        FB b(m_, fn("pipefs_write"));
        Reg po = pipe_off_of_file(b, b.param(0));
        Reg r = b.call(fn("pipe_write"), {po, b.param(1), b.param(2)});
        b.ret(r);
    }
    trivial_ret("pipefs_open", 0);
    {
        FB b(m_, fn("pipefs_poll"));
        Reg po = pipe_off_of_file(b, b.param(0));
        Reg head = kload(b, po, 0);
        Reg tail = kload(b, po, 1);
        Reg r = b.bin(BK::kLt, head, tail);
        b.ret(r);
    }
    trivial_ret("pipefs_stat", 0);
}

// ---------------------------------------------------------------------
// Pipes
// ---------------------------------------------------------------------

void
KernelBuilder::buildPipes()
{
    { // pipe_alloc() -> pipe index or -1
        FB b(m_, fn("pipe_alloc"));
        Reg n = b.constI(L::kNumPipes);
        countedLoop(b, n, [&](Reg i) {
            Reg scaled = b.binImm(BK::kMul, i, L::kPipeSize);
            Reg off = b.binImm(BK::kAdd, scaled, L::kPipeTable);
            Reg readers = kload(b, off, 2);
            Reg free_slot = b.binImm(BK::kEq, readers, 0);
            ifThen(b, free_slot, [&] {
                Reg one = b.constI(1);
                kstore(b, off, one, 2);
                kstore(b, off, one, 3);
                Reg zero = b.constI(0);
                kstore(b, off, zero, 0);
                kstore(b, off, zero, 1);
                b.ret(i);
            });
        });
        b.ret(b.constI(-1));
    }
    { // pipe_read(pipe_off, ubuf, len)
        FB b(m_, fn("pipe_read"));
        Reg head = kload(b, b.param(0), 0);
        Reg tail = kload(b, b.param(0), 1);
        Reg avail = b.bin(BK::kSub, tail, head);
        Reg want = b.binImm(BK::kAnd, b.param(2), 31);
        Reg n = b.call(fn("k_min"), {want, avail});
        countedLoop(b, n, [&](Reg i) {
            Reg pos = b.bin(BK::kAdd, head, i);
            Reg slot = b.binImm(BK::kAnd, pos, L::kPipeBuf - 1);
            Reg idx = b.bin(BK::kAdd, b.param(0), slot);
            Reg v = kload(b, idx, 4);
            Reg uoff = b.bin(BK::kAdd, b.param(1), i);
            Reg masked = b.binImm(BK::kAnd, uoff, L::kUserSize - 1);
            kstore(b, masked, v, L::kUserBase);
        });
        Reg nhead = b.bin(BK::kAdd, head, n);
        kstore(b, b.param(0), nhead, 0);
        Reg w = b.call(fn("pipe_wake"), {b.param(0)});
        b.sink(w);
        b.ret(n);
    }
    { // pipe_write(pipe_off, ubuf, len)
        FB b(m_, fn("pipe_write"));
        Reg tail = kload(b, b.param(0), 1);
        Reg len = b.binImm(BK::kAnd, b.param(2), 31);
        countedLoop(b, len, [&](Reg i) {
            Reg uoff = b.bin(BK::kAdd, b.param(1), i);
            Reg umask = b.binImm(BK::kAnd, uoff, L::kUserSize - 1);
            Reg v = kload(b, umask, L::kUserBase);
            Reg pos = b.bin(BK::kAdd, tail, i);
            Reg slot = b.binImm(BK::kAnd, pos, L::kPipeBuf - 1);
            Reg idx = b.bin(BK::kAdd, b.param(0), slot);
            kstore(b, idx, v, 4);
        });
        Reg ntail = b.bin(BK::kAdd, tail, len);
        kstore(b, b.param(0), ntail, 1);
        Reg w = b.call(fn("pipe_wake"), {b.param(0)});
        b.sink(w);
        b.ret(len);
    }
    { // pipe_wake(pipe_off)
        FB b(m_, fn("pipe_wake"));
        Reg head = kload(b, b.param(0), 0);
        Reg tail = kload(b, b.param(0), 1);
        Reg pressure = b.bin(BK::kSub, tail, head);
        Reg high = b.binImm(BK::kGt, pressure, L::kPipeBuf - 8);
        ifThen(b, high, [&] {
            Reg one = b.constI(1);
            kstoreAbs(b, L::kNeedResched, one);
        });
        b.ret(b.constI(0));
    }
}

KernelImage
buildKernel(const KernelConfig& config)
{
    KernelBuilder builder(config);
    return builder.build();
}

KernelInfo
kernelInfoFromModule(const ir::Module& module)
{
    KernelInfo info;
    info.sys_dispatch = module.findFunction(kSysDispatchName);
    info.kernel_init = module.findFunction(kKernelInitName);
    if (info.sys_dispatch == ir::kInvalidFunc ||
        info.kernel_init == ir::kInvalidFunc) {
        PIBE_FATAL("module is not a synthetic kernel "
                   "(missing sys_dispatch/kernel_init)");
    }
    bool found_kmem = false;
    for (ir::GlobalId g = 0; g < module.numGlobals(); ++g) {
        if (module.global(g).name == kKmemName) {
            info.kmem = g;
            found_kmem = true;
        }
        if (module.global(g).name == kSyscallTableName)
            info.syscall_table = g;
    }
    if (!found_kmem)
        PIBE_FATAL("module is not a synthetic kernel (missing kmem)");
    // Count driver modules by their work functions.
    uint32_t drivers = 0;
    while (module.findFunction("drv" + std::to_string(drivers) +
                               "_work") != ir::kInvalidFunc)
        ++drivers;
    info.num_drivers = drivers;
    return info;
}

} // namespace pibe::kernel
