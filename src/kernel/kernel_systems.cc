/**
 * @file
 * Synthetic kernel: sockets, scheduler, memory management, signals,
 * irq/trap dispatch, syscall machinery, and boot code.
 */
#include "kernel/kernel_builder_internal.h"

namespace pibe::kernel {

// ---------------------------------------------------------------------
// Sockets
// ---------------------------------------------------------------------

void
KernelBuilder::buildSockets()
{
    // sock entry layout: [0]=proto [1]=state [2]=peer [3]=rx_head
    // [4]=rx_tail [5]=ready [6]=tx_stat [7]=rx_stat [8..]=rxbuf.
    auto sock_off_of_index = [&](FB& b, Reg idx) {
        Reg masked = b.binImm(BK::kAnd, idx, L::kNumSocks - 1);
        Reg scaled = b.binImm(BK::kMul, masked, L::kSockSize);
        return b.binImm(BK::kAdd, scaled, L::kSockTable);
    };
    auto sock_index_of_off = [&](FB& b, Reg off) {
        Reg rel = b.binImm(BK::kSub, off, L::kSockTable);
        return b.binImm(BK::kDiv, rel, L::kSockSize);
    };

    { // sock_alloc(proto) -> sock index or -1
        FB b(m_, fn("sock_alloc"));
        Reg n = b.constI(L::kNumSocks);
        countedLoop(b, n, [&](Reg i) {
            Reg scaled = b.binImm(BK::kMul, i, L::kSockSize);
            Reg off = b.binImm(BK::kAdd, scaled, L::kSockTable);
            Reg state = kload(b, off, 1);
            Reg free_slot = b.binImm(BK::kEq, state, 0);
            ifThen(b, free_slot, [&] {
                Reg p = b.binImm(BK::kRem, b.param(0), proto::kCount);
                kstore(b, off, p, 0);
                Reg one = b.constI(1);
                kstore(b, off, one, 1);
                Reg zero = b.constI(0);
                kstore(b, off, zero, 2);
                kstore(b, off, zero, 3);
                kstore(b, off, zero, 4);
                b.ret(i);
            });
        });
        b.ret(b.constI(-1));
    }
    { // net_checksum(ubuf, len): fold user words.
        FB b(m_, fn("net_checksum"));
        Reg len = b.binImm(BK::kAnd, b.param(1), 31);
        Reg acc = b.newReg();
        b.setRegConst(acc, 0);
        countedLoop(b, len, [&](Reg i) {
            Reg uoff = b.bin(BK::kAdd, b.param(0), i);
            Reg masked = b.binImm(BK::kAnd, uoff, L::kUserSize - 1);
            Reg v = kload(b, masked, L::kUserBase);
            Reg sum = b.bin(BK::kAdd, acc, v);
            Reg folded = b.binImm(BK::kAnd, sum, 0xffffffff);
            b.setReg(acc, folded);
        });
        b.ret(acc);
    }
    { // sk_wake(sock_off)
        FB b(m_, fn("sk_wake"));
        Reg one = b.constI(1);
        kstore(b, b.param(0), one, 5);
        b.ret(one);
    }
    { // sock_copy_to_peer(sock_off, ubuf, len): enqueue on peer's rx.
        FB b(m_, fn("sock_copy_to_peer"));
        useLocals(b, b.param(2), 2);
        Reg peer = kload(b, b.param(0), 2);
        Reg poff = sock_off_of_index(b, peer);
        Reg tail = kload(b, poff, 4);
        Reg len = b.binImm(BK::kAnd, b.param(2), 31);
        countedLoop(b, len, [&](Reg i) {
            Reg uoff = b.bin(BK::kAdd, b.param(1), i);
            Reg umask = b.binImm(BK::kAnd, uoff, L::kUserSize - 1);
            Reg v = kload(b, umask, L::kUserBase);
            Reg pos = b.bin(BK::kAdd, tail, i);
            Reg slot = b.binImm(BK::kAnd, pos, L::kSockBuf - 1);
            Reg idx = b.bin(BK::kAdd, poff, slot);
            kstore(b, idx, v, 8);
        });
        Reg ntail = b.bin(BK::kAdd, tail, len);
        kstore(b, poff, ntail, 4);
        Reg tx = kload(b, b.param(0), 6);
        Reg ntx = b.binImm(BK::kAdd, tx, 1);
        kstore(b, b.param(0), ntx, 6);
        Reg w = b.call(fn("sk_wake"), {poff});
        b.sink(w);
        b.ret(len);
    }
    { // skb_alloc(len): slab-flavored buffer grab.
        FB b(m_, fn("skb_alloc"));
        Reg ctr = kloadAbs(b, L::kScalars + 22);
        Reg nctr = b.binImm(BK::kAdd, ctr, 1);
        kstoreAbs(b, L::kScalars + 22, nctr);
        Reg mix = b.bin(BK::kXor, nctr, b.param(0));
        b.ret(mix);
    }
    { // skb_put(skb, len)
        FB b(m_, fn("skb_put"));
        Reg sum = b.bin(BK::kAdd, b.param(0), b.param(1));
        b.ret(sum);
    }
    { // netif_rx(sock, ubuf, len): protocol demux via ptype table.
        FB b(m_, fn("netif_rx"));
        Reg proto_reg = kload(b, b.param(0), 0);
        Reg masked = b.binImm(BK::kAnd, proto_reg, 3);
        Reg r = tableCall(b, ptype_, masked,
                          {b.param(0), b.param(1), b.param(2)});
        b.ret(r);
    }
    { // loopback_xmit(sock, ubuf, len)
        FB b(m_, fn("loopback_xmit"));
        Reg r = b.call(fn("netif_rx"),
                       {b.param(0), b.param(1), b.param(2)});
        b.ret(r);
    }
    { // dev_queue_xmit(sock, ubuf, len)
        FB b(m_, fn("dev_queue_xmit"));
        Reg skb = b.call(fn("skb_alloc"), {b.param(2)});
        Reg put = b.call(fn("skb_put"), {skb, b.param(2)});
        b.sink(put);
        Reg r = b.call(fn("loopback_xmit"),
                       {b.param(0), b.param(1), b.param(2)});
        b.ret(r);
    }
    { // unix_rcv(sock, ubuf, len): loopback delivery for AF_UNIX.
        FB b(m_, fn("unix_rcv"));
        Reg r = b.call(fn("sock_copy_to_peer"),
                       {b.param(0), b.param(1), b.param(2)});
        b.ret(r);
    }
    { // tcp_rcv(sock, ubuf, len): receive-side segment processing.
        FB b(m_, fn("tcp_rcv"));
        Reg ack = kload(b, b.param(0), 7);
        Reg nack = b.binImm(BK::kAdd, ack, 1);
        kstore(b, b.param(0), nack, 7);
        Reg r = b.call(fn("sock_copy_to_peer"),
                       {b.param(0), b.param(1), b.param(2)});
        b.ret(r);
    }
    { // udp_rcv(sock, ubuf, len)
        FB b(m_, fn("udp_rcv"));
        Reg r = b.call(fn("sock_copy_to_peer"),
                       {b.param(0), b.param(1), b.param(2)});
        b.ret(r);
    }
    { // sock_poll(sock_off): via the per-protocol op.
        FB b(m_, fn("sock_poll"));
        Reg proto_reg = kload(b, b.param(0), 0);
        Reg scaled = b.binImm(BK::kMul, proto_reg, 8);
        Reg slot = b.binImm(BK::kAdd, scaled, 4);
        Reg zero = b.constI(0);
        Reg r = tableCall(b, proto_ops_, slot,
                          {b.param(0), zero, zero});
        b.ret(r);
    }

    // Shared recvmsg body: drain own rx ring into the user buffer.
    auto build_recvmsg = [&](const std::string& name, uint32_t extra) {
        FB b(m_, fn(name));
        Reg head = kload(b, b.param(0), 3);
        Reg tail = kload(b, b.param(0), 4);
        Reg avail = b.bin(BK::kSub, tail, head);
        Reg want = b.binImm(BK::kAnd, b.param(2), 31);
        Reg n = b.call(fn("k_min"), {want, avail});
        countedLoop(b, n, [&](Reg i) {
            Reg pos = b.bin(BK::kAdd, head, i);
            Reg slot = b.binImm(BK::kAnd, pos, L::kSockBuf - 1);
            Reg idx = b.bin(BK::kAdd, b.param(0), slot);
            Reg v = kload(b, idx, 8);
            Reg uoff = b.bin(BK::kAdd, b.param(1), i);
            Reg masked = b.binImm(BK::kAnd, uoff, L::kUserSize - 1);
            kstore(b, masked, v, L::kUserBase);
        });
        Reg nhead = b.bin(BK::kAdd, head, n);
        kstore(b, b.param(0), nhead, 3);
        Reg rx = kload(b, b.param(0), 7);
        Reg nrx = b.binImm(BK::kAdd, rx, 1);
        kstore(b, b.param(0), nrx, 7);
        if (extra > 0) {
            // Protocol bookkeeping (e.g. delayed ack decisions).
            Reg mixed = emitAluChain(b, nhead, extra);
            b.sink(mixed);
        }
        b.ret(n);
    };

    // Shared connect body: resolve peer fd -> sock, link both ways.
    auto build_connect = [&](const std::string& name,
                             const std::function<void(FB&, Reg)>& extra) {
        FB b(m_, fn(name));
        Reg sec = b.call(fn("sec_socket_check"),
                         {b.param(0), b.param(1)});
        b.sink(sec);
        Reg pf = b.call(fn("fd_lookup"), {b.param(1)});
        Reg bad = b.binImm(BK::kLt, pf, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg psock = kload(b, pf, 6);
        kstore(b, b.param(0), psock, 2);
        Reg poff = sock_off_of_index(b, psock);
        Reg own = sock_index_of_off(b, b.param(0));
        kstore(b, poff, own, 2);
        Reg two = b.constI(2);
        kstore(b, b.param(0), two, 1); // connected
        kstore(b, poff, two, 1);
        extra(b, poff);
        b.ret(b.constI(0));
    };

    auto build_poll = [&](const std::string& name) {
        FB b(m_, fn(name));
        Reg head = kload(b, b.param(0), 3);
        Reg tail = kload(b, b.param(0), 4);
        Reg r = b.bin(BK::kLt, head, tail);
        b.ret(r);
    };

    // --- af_unix ---
    {
        FB b(m_, fn("unix_sendmsg"));
        Reg r = b.call(fn("sock_copy_to_peer"),
                       {b.param(0), b.param(1), b.param(2)});
        b.ret(r);
    }
    build_recvmsg("unix_recvmsg", 0);
    build_connect("unix_connect", [](FB&, Reg) {});
    { // unix_accept: socketpair-style, nothing to do.
        FB b(m_, fn("unix_accept"));
        Reg own = sock_index_of_off(b, b.param(0));
        b.ret(own);
    }
    build_poll("unix_poll");

    // --- tcp ---
    { // tcp_transmit(sock_off, len): window/cwnd arithmetic.
        FB b(m_, fn("tcp_transmit"));
        Reg tx = kload(b, b.param(0), 6);
        Reg mix = b.bin(BK::kAdd, tx, b.param(1));
        Reg acc = emitAluChain(b, mix, 10);
        kstore(b, b.param(0), acc, 6);
        b.ret(acc);
    }
    { // tcp_init_sock(sock_off): congestion state initialization.
        FB b(m_, fn("tcp_init_sock"));
        Reg state = kload(b, b.param(0), 1);
        Reg acc = emitAluChain(b, state, 8);
        kstore(b, b.param(0), acc, 7);
        b.ret(b.constI(0));
    }
    {
        FB b(m_, fn("tcp_sendmsg"));
        Reg cs = b.call(fn("net_checksum"), {b.param(1), b.param(2)});
        b.sink(cs);
        Reg t = b.call(fn("tcp_transmit"), {b.param(0), b.param(2)});
        b.sink(t);
        Reg r = b.call(fn("dev_queue_xmit"),
                       {b.param(0), b.param(1), b.param(2)});
        b.ret(r);
    }
    build_recvmsg("tcp_recvmsg", 6);
    build_connect("tcp_connect", [&](FB& b, Reg poff) {
        Reg init = b.call(fn("tcp_init_sock"), {b.param(0)});
        b.sink(init);
        // Three-way handshake: SYN, SYN-ACK, ACK segments.
        Reg three = b.constI(3);
        countedLoop(b, three, [&](Reg i) {
            Reg t1 = b.call(fn("tcp_transmit"), {b.param(0), i});
            b.sink(t1);
            Reg t2 = b.call(fn("tcp_transmit"), {poff, i});
            b.sink(t2);
        });
    });
    { // tcp_accept(sock, _, _) -> new sock index
        FB b(m_, fn("tcp_accept"));
        Reg one = b.constI(1);
        Reg ns = b.call(fn("sock_alloc"), {one});
        Reg bad = b.binImm(BK::kLt, ns, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg noff = sock_off_of_index(b, ns);
        Reg peer = kload(b, b.param(0), 2);
        kstore(b, noff, peer, 2);
        Reg t = b.call(fn("tcp_transmit"), {noff, one});
        b.sink(t);
        b.ret(ns);
    }
    build_poll("tcp_poll");

    // --- udp ---
    {
        FB b(m_, fn("udp_sendmsg"));
        Reg cs = b.call(fn("net_checksum"), {b.param(1), b.param(2)});
        b.sink(cs);
        Reg r = b.call(fn("dev_queue_xmit"),
                       {b.param(0), b.param(1), b.param(2)});
        b.ret(r);
    }
    build_recvmsg("udp_recvmsg", 0);
    build_connect("udp_connect", [](FB&, Reg) {});
    { // udp_accept: not supported.
        FB b(m_, fn("udp_accept"));
        b.ret(b.constI(-1));
    }
    build_poll("udp_poll");
}

// ---------------------------------------------------------------------
// Scheduler / tasks
// ---------------------------------------------------------------------

void
KernelBuilder::buildSched()
{
    // task entry layout: [0]=state [1]=pid [2]=mm_base [3]=sig_pending
    // [4..7]=creds etc [8..15]=context [16..31]=sig handlers.
    { // alloc_task() -> task index or -1
        FB b(m_, fn("alloc_task"));
        Reg n = b.constI(L::kNumTasks);
        countedLoop(b, n, [&](Reg i) {
            Reg nonzero = b.binImm(BK::kGe, i, 1); // task 0 is init
            ifThen(b, nonzero, [&] {
                Reg scaled = b.binImm(BK::kMul, i, L::kTaskSize);
                Reg off = b.binImm(BK::kAdd, scaled, L::kTaskTable);
                Reg state = kload(b, off, 0);
                Reg free_slot = b.binImm(BK::kEq, state, 0);
                ifThen(b, free_slot, [&] { b.ret(i); });
            });
        });
        b.ret(b.constI(-1));
    }
    { // copy_task(src_off, dst_off)
        FB b(m_, fn("copy_task"));
        Reg n = b.constI(L::kTaskSize);
        Reg r = b.call(fn("k_memcpy"), {b.param(1), b.param(0), n});
        b.sink(r);
        b.ret(b.constI(0));
    }
    { // copy_pte_range(src_mm, dst_mm, chunk): copy 8 PTEs.
        FB b(m_, fn("copy_pte_range"));
        Reg base = b.binImm(BK::kMul, b.param(2), 8);
        Reg eight = b.constI(8);
        countedLoop(b, eight, [&](Reg i) {
            Reg o = b.bin(BK::kAdd, base, i);
            Reg s = b.bin(BK::kAdd, b.param(0), o);
            Reg smask = b.binImm(BK::kAnd, s, L::kNumPtes - 1);
            Reg v = kload(b, smask, L::kPteTable);
            Reg d = b.bin(BK::kAdd, b.param(1), o);
            Reg dmask = b.binImm(BK::kAnd, d, L::kNumPtes - 1);
            kstore(b, dmask, v, L::kPteTable);
        });
        b.ret(b.constI(0));
    }
    { // copy_mm(src_off, dst_off): duplicate the 128-PTE window,
      // range by range (each range a call, as in the real dup_mmap).
        FB b(m_, fn("copy_mm"));
        Reg src_mm = kload(b, b.param(0), 2);
        Reg dst_rel = b.binImm(BK::kSub, b.param(1), L::kTaskTable);
        Reg dst_task = b.binImm(BK::kDiv, dst_rel, L::kTaskSize);
        Reg dst_mm = b.binImm(BK::kMul, dst_task, 128);
        kstore(b, b.param(1), dst_mm, 2);
        Reg n = b.constI(16);
        countedLoop(b, n, [&](Reg chunk) {
            Reg r = b.call(fn("copy_pte_range"),
                           {src_mm, dst_mm, chunk});
            b.sink(r);
        });
        b.ret(b.constI(0));
    }
    { // fd_clone(fd): per-descriptor duplication work.
        FB b(m_, fn("fd_clone"));
        Reg file = b.call(fn("fd_lookup"), {b.param(0)});
        Reg ok = b.binImm(BK::kGe, file, 0);
        b.ret(ok);
    }
    { // copy_files(src_off, dst_off): dup the first 8 descriptors.
        FB b(m_, fn("copy_files"));
        Reg eight = b.constI(8);
        countedLoop(b, eight, [&](Reg i) {
            Reg r = b.call(fn("fd_clone"), {i});
            b.sink(r);
        });
        b.ret(b.constI(0));
    }
    { // context_switch(from_off, to_off)
        FB b(m_, fn("context_switch"));
        Reg eight = b.constI(8);
        countedLoop(b, eight, [&](Reg i) {
            Reg s = b.bin(BK::kAdd, b.param(0), i);
            Reg v = kload(b, s, 8);
            Reg d = b.bin(BK::kAdd, b.param(1), i);
            kstore(b, d, v, 8);
        });
        Reg rel = b.binImm(BK::kSub, b.param(1), L::kTaskTable);
        Reg idx = b.binImm(BK::kDiv, rel, L::kTaskSize);
        kstoreAbs(b, L::kCurTask, idx);
        // Paravirt CR3 write: an inline-assembly hypercall site.
        Reg two = b.constI(2);
        Reg mm = kload(b, b.param(1), 2);
        Reg r = tableCall(b, pv_ops_, two, {mm}, /*is_asm=*/true);
        b.sink(r);
        b.ret(b.constI(0));
    }
    { // schedule(): round-robin pick of the next runnable task.
        FB b(m_, fn("schedule"));
        Reg cur_idx = kloadAbs(b, L::kCurTask);
        Reg cur_scaled = b.binImm(BK::kMul, cur_idx, L::kTaskSize);
        Reg cur_off = b.binImm(BK::kAdd, cur_scaled, L::kTaskTable);
        Reg n = b.constI(L::kNumTasks);
        countedLoop(b, n, [&](Reg i) {
            Reg shifted = b.bin(BK::kAdd, cur_idx, i);
            Reg one = b.constI(1);
            Reg cand = b.bin(BK::kAdd, shifted, one);
            Reg masked = b.binImm(BK::kAnd, cand, L::kNumTasks - 1);
            Reg scaled = b.binImm(BK::kMul, masked, L::kTaskSize);
            Reg off = b.binImm(BK::kAdd, scaled, L::kTaskTable);
            Reg state = kload(b, off, 0);
            Reg runnable = b.binImm(BK::kEq, state, 1);
            ifThen(b, runnable, [&] {
                Reg same = b.bin(BK::kEq, off, cur_off);
                Reg differs = b.binImm(BK::kEq, same, 0);
                ifThen(b, differs, [&] {
                    Reg r = b.call(fn("context_switch"),
                                   {cur_off, off});
                    b.sink(r);
                });
                b.ret(b.constI(0));
            });
        });
        b.ret(b.constI(0));
    }
}

// ---------------------------------------------------------------------
// Memory management
// ---------------------------------------------------------------------

void
KernelBuilder::buildMm()
{
    { // find_vma(addr) -> vma offset or -1. The scan is bounded to the
      // first 32 slots (an rbtree in the real kernel; a full-table
      // scan would dominate the fault path's cost unrealistically).
        FB b(m_, fn("find_vma"));
        Reg n = b.constI(32);
        countedLoop(b, n, [&](Reg i) {
            Reg scaled = b.binImm(BK::kMul, i, L::kVmaSize);
            Reg off = b.binImm(BK::kAdd, scaled, L::kVmaTable);
            Reg in_use = kload(b, off, 3);
            ifThen(b, in_use, [&] {
                Reg start = kload(b, off, 0);
                Reg end = kload(b, off, 1);
                Reg ge = b.bin(BK::kGe, b.param(0), start);
                Reg lt = b.bin(BK::kLt, b.param(0), end);
                Reg hit = b.bin(BK::kAnd, ge, lt);
                ifThen(b, hit, [&] { b.ret(off); });
            });
        });
        b.ret(b.constI(-1));
    }
    { // vma_merge_check(addr, len): can the mapping merge a neighbor?
        FB b(m_, fn("vma_merge_check"));
        Reg end = b.bin(BK::kAdd, b.param(0), b.param(1));
        Reg prev = b.call(fn("find_vma"), {b.binImm(BK::kSub,
                                                    b.param(0), 1)});
        Reg next = b.call(fn("find_vma"), {end});
        Reg both = b.bin(BK::kOr, prev, next);
        Reg mergeable = b.binImm(BK::kGe, both, 0);
        b.ret(mergeable);
    }
    { // pte_walk(addr): 4-level page-table walk.
        FB b(m_, fn("pte_walk"));
        Reg acc = b.newReg();
        b.setReg(acc, b.param(0));
        for (int level = 0; level < 4; ++level) {
            Reg shifted = b.binImm(BK::kShr, acc, 3 + level);
            Reg masked = b.binImm(BK::kAnd, shifted, L::kNumPtes - 1);
            Reg v = kload(b, masked, L::kPteTable);
            Reg mixed = b.bin(BK::kXor, v, acc);
            b.setReg(acc, mixed);
        }
        Reg pte = b.binImm(BK::kAnd, b.param(0), L::kNumPtes - 1);
        b.sink(acc);
        b.ret(pte);
    }
    { // alloc_page_frame(hint): buddy-allocator flavored scan.
        FB b(m_, fn("alloc_page_frame"));
        Reg h = b.call(fn("k_hash"), {b.param(0)});
        Reg iters = b.constI(6);
        Reg frame = b.newReg();
        b.setReg(frame, h);
        countedLoop(b, iters, [&](Reg i) {
            Reg mix = b.bin(BK::kAdd, frame, i);
            Reg idx = b.binImm(BK::kAnd, mix, L::kNumPages - 1);
            Reg v = kload(b, idx, L::kPageCache);
            Reg mixed = b.bin(BK::kXor, frame, v);
            b.setReg(frame, mixed);
        });
        Reg page = b.binImm(BK::kAnd, frame, L::kNumPages - 1);
        b.ret(page);
    }
    { // flush_mm(task_off): clear the task's PTE window.
        FB b(m_, fn("flush_mm"));
        Reg mm = kload(b, b.param(0), 2);
        Reg mmask = b.binImm(BK::kAnd, mm, L::kNumPtes - 1);
        Reg base = b.binImm(BK::kAdd, mmask, L::kPteTable);
        Reg zero = b.constI(0);
        Reg n = b.constI(128);
        Reg r = b.call(fn("k_memset"), {base, zero, n});
        b.sink(r);
        b.ret(b.constI(0));
    }
    { // load_binary(task_off, ino): populate PTEs from page cache.
        FB b(m_, fn("load_binary"));
        Reg mm = kload(b, b.param(0), 2);
        Reg n = b.constI(128);
        countedLoop(b, n, [&](Reg i) {
            Reg mix = b.bin(BK::kAdd, b.param(1), i);
            Reg pmask = b.binImm(BK::kAnd, mix,
                                 L::kNumPages * L::kPageWords - 1);
            Reg v = kload(b, pmask, L::kPageCache);
            Reg pte = b.bin(BK::kAdd, mm, i);
            Reg ptem = b.binImm(BK::kAnd, pte, L::kNumPtes - 1);
            Reg tag = b.binImm(BK::kOr, v, 1);
            kstore(b, ptem, tag, L::kPteTable);
        });
        b.ret(b.constI(0));
    }
}

// ---------------------------------------------------------------------
// Signals
// ---------------------------------------------------------------------

void
KernelBuilder::buildSignals()
{
    { // do_signal(task_off): deliver all pending signals.
        FB b(m_, fn("do_signal"));
        useLocals(b, b.param(0), 2);
        Reg pending = kload(b, b.param(0), 3);
        Reg none = b.binImm(BK::kEq, pending, 0);
        ifThen(b, none, [&] { b.ret(b.constI(0)); });
        Reg n = b.constI(L::kNumSigs);
        countedLoop(b, n, [&](Reg i) {
            Reg one = b.constI(1);
            Reg mask = b.bin(BK::kShl, one, i);
            Reg hit = b.bin(BK::kAnd, pending, mask);
            ifThen(b, hit, [&] {
                Reg hslot = b.bin(BK::kAdd, b.param(0), i);
                Reg hidx = kload(b, hslot, 16);
                Reg hmask = b.binImm(BK::kAnd, hidx, 3);
                Reg target = b.load(sig_table_, hmask, 0);
                Reg r = b.icall(target, {i});
                b.sink(r);
            });
        });
        Reg zero = b.constI(0);
        kstore(b, b.param(0), zero, 3);
        b.ret(b.constI(1));
    }
    { // usr_sig_ignore(sig)
        FB b(m_, fn("usr_sig_ignore"));
        b.ret(b.param(0));
    }
    { // usr_sig_count(sig): bump a user-visible counter.
        FB b(m_, fn("usr_sig_count"));
        Reg c = kloadAbs(b, L::kUserBase + 100);
        Reg nc = b.binImm(BK::kAdd, c, 1);
        kstoreAbs(b, L::kUserBase + 100, nc);
        b.ret(nc);
    }
    { // usr_sig_term(sig)
        FB b(m_, fn("usr_sig_term"));
        Reg one = b.constI(1);
        kstoreAbs(b, L::kUserBase + 101, one);
        b.ret(one);
    }
    { // usr_sig_custom(sig): small handler loop.
        FB b(m_, fn("usr_sig_custom"));
        Reg four = b.constI(4);
        Reg acc = b.newReg();
        b.setRegConst(acc, 0);
        countedLoop(b, four, [&](Reg i) {
            Reg mix = b.bin(BK::kAdd, b.param(0), i);
            Reg h = emitAluChain(b, mix, 3);
            Reg sum = b.bin(BK::kAdd, acc, h);
            b.setReg(acc, sum);
        });
        kstoreAbs(b, L::kUserBase + 102, acc);
        b.ret(acc);
    }
}

// ---------------------------------------------------------------------
// IRQ / trap dispatch (assembly switches) and paravirt ops
// ---------------------------------------------------------------------

void
KernelBuilder::buildIrqTrap()
{
    // Paravirt leaf hypercalls.
    for (const char* name : {"pv_flush_tlb_one", "pv_flush_tlb_all",
                             "pv_write_cr3", "pv_io_delay"}) {
        FB b(m_, fn(name));
        Reg mixed = emitAluChain(b, b.param(0), 4);
        kstoreAbs(b, L::kScalars + 12, mixed);
        b.ret(b.constI(0));
    }

    { // trap_divide(code)
        FB b(m_, fn("trap_divide"));
        Reg mixed = emitAluChain(b, b.param(0), 5);
        b.sink(mixed);
        b.ret(b.constI(-1));
    }
    { // trap_gp(code)
        FB b(m_, fn("trap_gp"));
        Reg r = b.call(fn("k_panic"), {b.param(0)});
        b.ret(r);
    }
    { // trap_nmi(code)
        FB b(m_, fn("trap_nmi"));
        Reg j = kloadAbs(b, L::kJiffies);
        Reg mixed = b.bin(BK::kXor, j, b.param(0));
        kstoreAbs(b, L::kScalars + 13, mixed);
        b.ret(b.constI(0));
    }
    { // trap_pf(addr): the page-fault slow path.
        FB b(m_, fn("trap_pf"));
        useLocals(b, b.param(0), 2);
        Reg vma = b.call(fn("find_vma"), {b.param(0)});
        Reg bad = b.binImm(BK::kLt, vma, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); }); // SIGSEGV-ish
        Reg pte = b.call(fn("pte_walk"), {b.param(0)});
        Reg frame = b.call(fn("alloc_page_frame"), {b.param(0)});
        Reg one = b.constI(1);
        Reg entry = b.bin(BK::kOr, frame, one);
        kstore(b, pte, entry, L::kPteTable);
        b.sink(one);
        // Paravirt single-page TLB flush (inline asm site).
        Reg zero = b.constI(0);
        Reg r = tableCall(b, pv_ops_, zero, {b.param(0)},
                          /*is_asm=*/true);
        b.sink(r);
        b.ret(b.constI(0));
    }
    { // mce_handler(code)
        FB b(m_, fn("mce_handler"));
        Reg five = b.constI(5);
        Reg r = b.newReg();
        b.setRegConst(r, 0);
        ir::BlockId done = b.newBlock();
        ir::BlockId c0 = b.newBlock();
        ir::BlockId c1 = b.newBlock();
        Reg sel = b.binImm(BK::kAnd, b.param(0), 7);
        // Assembly-coded machine-check bank dispatch.
        b.switchOn(sel, done, {{0, c0}, {1, c1}}, /*is_asm=*/true);
        b.setBlock(c0);
        b.setRegConst(r, 10);
        b.br(done);
        b.setBlock(c1);
        b.setRegConst(r, 11);
        b.br(done);
        b.setBlock(done);
        b.sink(five);
        b.ret(r);
    }
    { // do_trap(nr, a, b): assembly-coded IDT-style dispatch.
        FB b(m_, fn("do_trap"));
        Reg sel = b.binImm(BK::kAnd, b.param(0), 7);
        ir::BlockId dflt = b.newBlock();
        ir::BlockId divide = b.newBlock();
        ir::BlockId gp = b.newBlock();
        ir::BlockId nmi = b.newBlock();
        ir::BlockId pf = b.newBlock();
        b.switchOn(sel, dflt,
                   {{0, divide}, {1, gp}, {2, nmi}, {3, pf}},
                   /*is_asm=*/true);
        b.setBlock(divide);
        {
            Reg r = b.call(fn("trap_divide"), {b.param(1)});
            b.ret(r);
        }
        b.setBlock(gp);
        {
            Reg r = b.call(fn("trap_gp"), {b.param(1)});
            b.ret(r);
        }
        b.setBlock(nmi);
        {
            Reg r = b.call(fn("trap_nmi"), {b.param(1)});
            b.ret(r);
        }
        b.setBlock(pf);
        {
            Reg r = b.call(fn("trap_pf"), {b.param(1)});
            b.ret(r);
        }
        b.setBlock(dflt);
        {
            Reg r = b.call(fn("mce_handler"), {b.param(0)});
            b.ret(r);
        }
    }
    { // irq_timer()
        FB b(m_, fn("irq_timer"));
        Reg j = kloadAbs(b, L::kJiffies);
        Reg nj = b.binImm(BK::kAdd, j, 1);
        kstoreAbs(b, L::kJiffies, nj);
        b.ret(b.constI(0));
    }
    { // irq_net()
        FB b(m_, fn("irq_net"));
        Reg one = b.constI(1);
        kstoreAbs(b, L::kSoftirqPending, one);
        b.ret(one);
    }
    { // irq_disk()
        FB b(m_, fn("irq_disk"));
        Reg j = kloadAbs(b, L::kJiffies);
        Reg mixed = emitAluChain(b, j, 4);
        kstoreAbs(b, L::kScalars + 14, mixed);
        b.ret(b.constI(0));
    }
    { // irq_dispatch(vec, a, b): assembly-coded vector dispatch.
        FB b(m_, fn("irq_dispatch"));
        Reg sel = b.binImm(BK::kAnd, b.param(0), 3);
        ir::BlockId dflt = b.newBlock();
        ir::BlockId timer = b.newBlock();
        ir::BlockId net = b.newBlock();
        ir::BlockId disk = b.newBlock();
        b.switchOn(sel, dflt, {{0, timer}, {1, net}, {2, disk}},
                   /*is_asm=*/true);
        b.setBlock(timer);
        {
            Reg r = b.call(fn("irq_timer"), {});
            b.ret(r);
        }
        b.setBlock(net);
        {
            Reg r = b.call(fn("irq_net"), {});
            b.ret(r);
        }
        b.setBlock(disk);
        {
            Reg r = b.call(fn("irq_disk"), {});
            b.ret(r);
        }
        b.setBlock(dflt);
        b.ret(b.constI(0)); // spurious
    }
    { // emergency_restart(code): assembly-coded reboot vector table.
        FB b(m_, fn("emergency_restart"));
        Reg sel = b.binImm(BK::kAnd, b.param(0), 3);
        ir::BlockId dflt = b.newBlock();
        ir::BlockId warm = b.newBlock();
        ir::BlockId cold = b.newBlock();
        b.switchOn(sel, dflt, {{0, warm}, {1, cold}}, /*is_asm=*/true);
        b.setBlock(warm);
        b.ret(b.constI(1));
        b.setBlock(cold);
        b.ret(b.constI(2));
        b.setBlock(dflt);
        b.ret(b.constI(0));
    }
    { // acpi_event(ev): assembly-coded ACPI GPE dispatch.
        FB b(m_, fn("acpi_event"));
        Reg sel = b.binImm(BK::kAnd, b.param(0), 3);
        ir::BlockId dflt = b.newBlock();
        ir::BlockId button = b.newBlock();
        ir::BlockId thermal = b.newBlock();
        b.switchOn(sel, dflt, {{0, button}, {1, thermal}},
                   /*is_asm=*/true);
        b.setBlock(button);
        {
            Reg one = b.constI(1);
            kstoreAbs(b, L::kScalars + 15, one);
            b.ret(one);
        }
        b.setBlock(thermal);
        {
            Reg j = kloadAbs(b, L::kJiffies);
            Reg mixed = emitAluChain(b, j, 3);
            b.ret(mixed);
        }
        b.setBlock(dflt);
        b.ret(b.constI(0));
    }
    { // run_softirq(budget)
        FB b(m_, fn("run_softirq"));
        Reg zero = b.constI(0);
        kstoreAbs(b, L::kSoftirqPending, zero);
        Reg t = b.call(fn("irq_dispatch"), {zero, zero, zero});
        b.sink(t);
        Reg j = kloadAbs(b, L::kJiffies);
        // Occasionally service ACPI events.
        Reg acpi_due = b.binImm(BK::kAnd, j, 1023);
        Reg is_due = b.binImm(BK::kEq, acpi_due, 0);
        ifThen(b, is_due, [&] {
            Reg r = b.call(fn("acpi_event"), {j});
            b.sink(r);
        });
        Reg h = b.call(fn("k_hash"), {j});
        // Device activity is heavy-tailed: a few devices (disk, nic)
        // dominate while most are nearly idle. Cubic skew over the
        // hash gives the site-weight distribution its long tail.
        Reg frac = b.binImm(BK::kAnd, h, 4095);
        Reg frac2 = b.bin(BK::kMul, frac, frac);
        Reg frac3 = b.bin(BK::kMul, frac2, frac);
        Reg scaled = b.binImm(
            BK::kMul, b.binImm(BK::kShr, frac3, 24),
            static_cast<int64_t>(cfg_.num_drivers));
        Reg d = b.binImm(BK::kShr, scaled, 12);
        Reg r = b.call(fn("driver_dispatch"), {d, j, b.param(0)});
        b.sink(r);
        b.ret(b.constI(0));
    }
    // driver_dispatch is emitted in buildDrivers() (needs the ids).
}

// ---------------------------------------------------------------------
// Syscall machinery
// ---------------------------------------------------------------------

void
KernelBuilder::buildSyscalls()
{
    { // syscall_entry(): entry prologue — swapgs, stack switch, spec
      // control writes, ptregs save. Real kernels burn a fixed ~100+
      // cycles here, which is why `null` is not free.
        FB b(m_, fn("syscall_entry"));
        uint32_t slot = b.newFrameSlot();
        Reg j = kloadAbs(b, L::kJiffies);
        Reg mixed = emitAluChain(b, j, 24);
        b.frameStore(slot, mixed);
        // ptregs save/restore model: a short fixed loop of stores.
        Reg iters = b.constI(10);
        countedLoop(b, iters, [&](Reg i) {
            Reg v = b.bin(BK::kAdd, mixed, i);
            Reg idx = b.binImm(BK::kAnd, v, 31);
            kstore(b, idx, v, L::kScalars + 32); // ptregs scratch area
        });
        Reg back = b.frameLoad(slot);
        Reg flags = b.binImm(BK::kAnd, back, 0xff);
        b.ret(flags);
    }
    { // syscall_exit_work(): exit bookkeeping, softirqs, signals.
        FB b(m_, fn("syscall_exit_work"));
        Reg j = kloadAbs(b, L::kJiffies);
        Reg nj = b.binImm(BK::kAdd, j, 1);
        kstoreAbs(b, L::kJiffies, nj);
        Reg tick = b.binImm(BK::kAnd, nj, 15);
        Reg due = b.binImm(BK::kEq, tick, 0);
        ifThen(b, due, [&] {
            Reg one = b.constI(1);
            kstoreAbs(b, L::kSoftirqPending, one);
        });
        Reg trace_tick = b.binImm(BK::kAnd, nj, 255);
        Reg trace_due = b.binImm(BK::kEq, trace_tick, 0);
        ifThen(b, trace_due, [&] {
            Reg r = b.call(fn("debug_trace"), {nj});
            b.sink(r);
        });
        // Audit record for one syscall in four: a hot call site whose
        // callee is too big to inline (Rule 3 territory).
        Reg audit_tick = b.binImm(BK::kAnd, nj, 3);
        Reg audit_due = b.binImm(BK::kEq, audit_tick, 0);
        ifThen(b, audit_due, [&] {
            Reg r = b.call(fn("audit_syscall"), {nj});
            b.sink(r);
        });
        Reg pending = kloadAbs(b, L::kSoftirqPending);
        ifThen(b, pending, [&] {
            Reg two = b.constI(2);
            Reg r = b.call(fn("run_softirq"), {two});
            b.sink(r);
        });
        Reg cur = b.call(fn("k_current"), {});
        Reg sig = kload(b, cur, 3);
        ifThen(b, sig, [&] {
            Reg r = b.call(fn("do_signal"), {cur});
            b.sink(r);
        });
        Reg rcu = b.call(fn("rcu_note_context_switch"), {nj});
        b.sink(rcu);
        Reg r = b.call(fn("k_cond_resched"), {});
        b.sink(r);
        b.ret(b.constI(0));
    }
    { // sys_ni
        FB b(m_, fn("sys_ni"));
        b.ret(b.constI(-1));
    }
    { // sys_null: getppid-style.
        FB b(m_, fn("sys_null"));
        Reg cur = b.call(fn("k_current"), {});
        Reg pid = kload(b, cur, 1);
        b.ret(pid);
    }
    { // sys_read(fd, ubuf, len)
        FB b(m_, fn("sys_read"));
        Reg file = b.call(fn("fdget"), {b.param(0)});
        Reg bad = b.binImm(BK::kLt, file, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg r = b.call(fn("vfs_read"), {file, b.param(1), b.param(2)});
        Reg n = b.call(fn("fsnotify_access"), {file});
        b.sink(n);
        Reg p = b.call(fn("fdput"), {file});
        b.sink(p);
        b.ret(r);
    }
    { // sys_write(fd, ubuf, len)
        FB b(m_, fn("sys_write"));
        Reg file = b.call(fn("fdget"), {b.param(0)});
        Reg bad = b.binImm(BK::kLt, file, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg r = b.call(fn("vfs_write"), {file, b.param(1), b.param(2)});
        Reg n = b.call(fn("fsnotify_modify"), {file});
        b.sink(n);
        Reg p = b.call(fn("fdput"), {file});
        b.sink(p);
        b.ret(r);
    }
    { // sys_open(path_hash, flags, _)
        FB b(m_, fn("sys_open"));
        Reg r = b.call(fn("vfs_open"), {b.param(0), b.param(1)});
        b.ret(r);
    }
    { // sys_close(fd, _, _)
        FB b(m_, fn("sys_close"));
        Reg r = b.call(fn("vfs_close"), {b.param(0)});
        b.ret(r);
    }
    { // sys_stat(path_hash, ubuf, _)
        FB b(m_, fn("sys_stat"));
        Reg r = b.call(fn("vfs_stat"), {b.param(0), b.param(1)});
        b.ret(r);
    }
    { // sys_fstat(fd, ubuf, _)
        FB b(m_, fn("sys_fstat"));
        Reg r = b.call(fn("vfs_fstat"), {b.param(0), b.param(1)});
        b.ret(r);
    }
    { // sys_lseek(fd, pos, _)
        FB b(m_, fn("sys_lseek"));
        Reg r = b.call(fn("vfs_lseek"), {b.param(0), b.param(1)});
        b.ret(r);
    }
    { // sys_pipe(_, _, _) -> rfd | (wfd << 16)
        FB b(m_, fn("sys_pipe"));
        Reg p = b.call(fn("pipe_alloc"), {});
        Reg bad = b.binImm(BK::kLt, p, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg rfd = b.call(fn("alloc_fd"), {});
        Reg wfd = b.call(fn("alloc_fd"), {});
        Reg either_neg = b.bin(BK::kOr, b.binImm(BK::kLt, rfd, 0),
                               b.binImm(BK::kLt, wfd, 0));
        ifThen(b, either_neg, [&] { b.ret(b.constI(-1)); });
        Reg fs = b.constI(fstype::kPipefs);
        Reg kind = b.constI(2);
        for (Reg fd : {rfd, wfd}) {
            Reg scaled = b.binImm(BK::kMul, fd, L::kFdSize);
            Reg off = b.binImm(BK::kAdd, scaled, L::kFdTable);
            kstore(b, off, fs, 1);
            kstore(b, off, kind, 5);
            kstore(b, off, p, 6);
        }
        Reg hi = b.binImm(BK::kShl, wfd, 16);
        Reg packed = b.bin(BK::kOr, rfd, hi);
        b.ret(packed);
    }
    { // sys_select(nfds, fdbase, _)
        FB b(m_, fn("sys_select"));
        Reg nfds = b.binImm(BK::kAnd, b.param(0), L::kNumFds - 1);
        Reg count = b.newReg();
        b.setRegConst(count, 0);
        countedLoop(b, nfds, [&](Reg i) {
            Reg uoff = b.bin(BK::kAdd, b.param(1), i);
            Reg masked = b.binImm(BK::kAnd, uoff, L::kUserSize - 1);
            Reg fd = kload(b, masked, L::kUserBase);
            Reg file = b.call(fn("fd_lookup"), {fd});
            Reg ok = b.binImm(BK::kGe, file, 0);
            ifThen(b, ok, [&] {
                Reg r = b.call(fn("vfs_poll"), {file});
                Reg sum = b.bin(BK::kAdd, count, r);
                b.setReg(count, sum);
            });
        });
        b.ret(count);
    }
    { // sys_socket(proto, _, _)
        FB b(m_, fn("sys_socket"));
        Reg s = b.call(fn("sock_alloc"), {b.param(0)});
        Reg bad = b.binImm(BK::kLt, s, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg fd = b.call(fn("alloc_fd"), {});
        Reg nofd = b.binImm(BK::kLt, fd, 0);
        ifThen(b, nofd, [&] { b.ret(b.constI(-1)); });
        Reg scaled = b.binImm(BK::kMul, fd, L::kFdSize);
        Reg off = b.binImm(BK::kAdd, scaled, L::kFdTable);
        Reg fs = b.constI(fstype::kSockfs);
        Reg kind = b.constI(3);
        kstore(b, off, fs, 1);
        kstore(b, off, kind, 5);
        kstore(b, off, s, 6);
        b.ret(fd);
    }
    // Shared: resolve fd -> sock offset, then invoke a proto op.
    auto sock_syscall = [&](const std::string& name, int64_t op,
                            bool ret_fd_for_accept) {
        FB b(m_, fn(name));
        Reg file = b.call(fn("fd_lookup"), {b.param(0)});
        Reg bad = b.binImm(BK::kLt, file, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg s = kload(b, file, 6);
        Reg smask = b.binImm(BK::kAnd, s, L::kNumSocks - 1);
        Reg sscaled = b.binImm(BK::kMul, smask, L::kSockSize);
        Reg soff = b.binImm(BK::kAdd, sscaled, L::kSockTable);
        Reg proto_reg = kload(b, soff, 0);
        Reg pscaled = b.binImm(BK::kMul, proto_reg, 8);
        Reg slot = b.binImm(BK::kAdd, pscaled, op);
        Reg r = tableCall(b, proto_ops_, slot,
                          {soff, b.param(1), b.param(2)});
        if (!ret_fd_for_accept) {
            b.ret(r);
            return;
        }
        // accept: wrap the new sock in a fresh fd.
        Reg failed = b.binImm(BK::kLt, r, 0);
        ifThen(b, failed, [&] { b.ret(b.constI(-1)); });
        Reg nfd = b.call(fn("alloc_fd"), {});
        Reg nofd = b.binImm(BK::kLt, nfd, 0);
        ifThen(b, nofd, [&] { b.ret(b.constI(-1)); });
        Reg fscaled = b.binImm(BK::kMul, nfd, L::kFdSize);
        Reg foff = b.binImm(BK::kAdd, fscaled, L::kFdTable);
        Reg fs = b.constI(fstype::kSockfs);
        Reg kind = b.constI(3);
        kstore(b, foff, fs, 1);
        kstore(b, foff, kind, 5);
        kstore(b, foff, r, 6);
        b.ret(nfd);
    };
    sock_syscall("sys_connect", 2, false);
    sock_syscall("sys_accept", 3, true);
    sock_syscall("sys_send", 0, false);
    sock_syscall("sys_recv", 1, false);
    { // sys_fork(_, _, _) -> child pid
        FB b(m_, fn("sys_fork"));
        useLocals(b, b.param(0), 4);
        Reg cur = b.call(fn("k_current"), {});
        Reg t = b.call(fn("alloc_task"), {});
        Reg bad = b.binImm(BK::kLt, t, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg scaled = b.binImm(BK::kMul, t, L::kTaskSize);
        Reg off = b.binImm(BK::kAdd, scaled, L::kTaskTable);
        Reg r1 = b.call(fn("copy_task"), {cur, off});
        b.sink(r1);
        Reg r2 = b.call(fn("copy_mm"), {cur, off});
        b.sink(r2);
        Reg r3 = b.call(fn("copy_files"), {cur, off});
        b.sink(r3);
        Reg pid = kloadAbs(b, L::kNextPid);
        Reg npid = b.binImm(BK::kAdd, pid, 1);
        kstoreAbs(b, L::kNextPid, npid);
        kstore(b, off, pid, 1);
        Reg one = b.constI(1);
        kstore(b, off, one, 0); // runnable
        // Paravirt hypercall (inline asm): install child CR3.
        Reg two = b.constI(2);
        Reg mm = kload(b, off, 2);
        Reg pv = tableCall(b, pv_ops_, two, {mm}, /*is_asm=*/true);
        b.sink(pv);
        b.ret(pid);
    }
    { // sys_exec(path_hash, _, _)
        FB b(m_, fn("sys_exec"));
        Reg ino = b.call(fn("path_lookup"), {b.param(0)});
        Reg bad = b.binImm(BK::kLt, ino, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg cur = b.call(fn("k_current"), {});
        Reg r1 = b.call(fn("flush_mm"), {cur});
        b.sink(r1);
        Reg r2 = b.call(fn("load_binary"), {cur, ino});
        b.sink(r2);
        Reg sp = emitAluChain(b, ino, 8); // stack/arg setup
        kstore(b, cur, sp, 9);
        // Paravirt full TLB flush (inline asm).
        Reg one = b.constI(1);
        Reg pv = tableCall(b, pv_ops_, one, {sp}, /*is_asm=*/true);
        b.sink(pv);
        b.ret(b.constI(0));
    }
    { // sys_exit(pid, _, _): reap the task with this pid (or current).
        FB b(m_, fn("sys_exit"));
        Reg n = b.constI(L::kNumTasks);
        countedLoop(b, n, [&](Reg i) {
            Reg nonzero = b.binImm(BK::kGe, i, 1);
            ifThen(b, nonzero, [&] {
                Reg scaled = b.binImm(BK::kMul, i, L::kTaskSize);
                Reg off = b.binImm(BK::kAdd, scaled, L::kTaskTable);
                Reg pid = kload(b, off, 1);
                Reg match = b.bin(BK::kEq, pid, b.param(0));
                Reg state = kload(b, off, 0);
                Reg live = b.binImm(BK::kGe, state, 1);
                Reg hit = b.bin(BK::kAnd, match, live);
                ifThen(b, hit, [&] {
                    Reg zero = b.constI(0);
                    kstore(b, off, zero, 0);
                    kstore(b, off, zero, 1);
                    Reg r = b.call(fn("flush_mm"), {off});
                    b.sink(r);
                    b.ret(b.constI(0));
                });
            });
        });
        b.ret(b.constI(-1));
    }
    { // sys_mmap(addr, len, _)
        FB b(m_, fn("sys_mmap"));
        Reg merge = b.call(fn("vma_merge_check"),
                           {b.param(0), b.param(1)});
        b.sink(merge);
        Reg n = b.constI(32);
        countedLoop(b, n, [&](Reg i) {
            Reg scaled = b.binImm(BK::kMul, i, L::kVmaSize);
            Reg off = b.binImm(BK::kAdd, scaled, L::kVmaTable);
            Reg in_use = kload(b, off, 3);
            Reg free_slot = b.binImm(BK::kEq, in_use, 0);
            ifThen(b, free_slot, [&] {
                kstore(b, off, b.param(0), 0);
                Reg end = b.bin(BK::kAdd, b.param(0), b.param(1));
                kstore(b, off, end, 1);
                Reg flags = b.constI(3);
                kstore(b, off, flags, 2);
                Reg one = b.constI(1);
                kstore(b, off, one, 3);
                b.ret(b.param(0));
            });
        });
        b.ret(b.constI(-1));
    }
    { // sys_munmap(addr, len, _)
        FB b(m_, fn("sys_munmap"));
        Reg vma = b.call(fn("find_vma"), {b.param(0)});
        Reg bad = b.binImm(BK::kLt, vma, 0);
        ifThen(b, bad, [&] { b.ret(b.constI(-1)); });
        Reg zero = b.constI(0);
        kstore(b, vma, zero, 3);
        // Clear up to 16 PTEs under the unmapped range.
        Reg len = b.binImm(BK::kAnd, b.param(1), 15);
        countedLoop(b, len, [&](Reg i) {
            Reg a = b.bin(BK::kAdd, b.param(0), i);
            Reg pte = b.binImm(BK::kAnd, a, L::kNumPtes - 1);
            kstore(b, pte, zero, L::kPteTable);
        });
        // Paravirt ranged TLB flush (inline asm).
        Reg pv = tableCall(b, pv_ops_, zero, {b.param(0)},
                           /*is_asm=*/true);
        b.sink(pv);
        b.ret(zero);
    }
    { // sys_pagefault(addr, _, _): fault injection entry.
        FB b(m_, fn("sys_pagefault"));
        Reg three = b.constI(3);
        Reg zero = b.constI(0);
        Reg r = b.call(fn("do_trap"), {three, b.param(0), zero});
        b.ret(r);
    }
    { // sys_sigaction(sig, handler_idx, _)
        FB b(m_, fn("sys_sigaction"));
        Reg cur = b.call(fn("k_current"), {});
        Reg sig = b.binImm(BK::kAnd, b.param(0), L::kNumSigs - 1);
        Reg slot = b.bin(BK::kAdd, cur, sig);
        Reg idx = b.binImm(BK::kAnd, b.param(1), 3);
        kstore(b, slot, idx, 16);
        b.ret(b.constI(0));
    }
    { // sys_kill(pid, sig, _)
        FB b(m_, fn("sys_kill"));
        Reg sig = b.binImm(BK::kAnd, b.param(1), L::kNumSigs - 1);
        Reg one = b.constI(1);
        Reg mask = b.bin(BK::kShl, one, sig);
        Reg n = b.constI(L::kNumTasks);
        countedLoop(b, n, [&](Reg i) {
            Reg scaled = b.binImm(BK::kMul, i, L::kTaskSize);
            Reg off = b.binImm(BK::kAdd, scaled, L::kTaskTable);
            Reg pid = kload(b, off, 1);
            Reg match = b.bin(BK::kEq, pid, b.param(0));
            ifThen(b, match, [&] {
                Reg pending = kload(b, off, 3);
                Reg np = b.bin(BK::kOr, pending, mask);
                kstore(b, off, np, 3);
                b.ret(b.constI(0));
            });
        });
        b.ret(b.constI(-1));
    }
    { // sys_yield(_, _, _)
        FB b(m_, fn("sys_yield"));
        Reg r = b.call(fn("schedule"), {});
        b.ret(r);
    }
    { // sys_getpid(_, _, _)
        FB b(m_, fn("sys_getpid"));
        Reg cur = b.call(fn("k_current"), {});
        Reg pid = kload(b, cur, 1);
        b.ret(pid);
    }
    { // sys_dispatch(nr, a0, a1, a2): THE kernel entry point.
        FB b(m_, fn("sys_dispatch"));
        Reg e = b.call(fn("syscall_entry"), {});
        b.sink(e);
        Reg allow = b.call(fn("seccomp_filter"), {b.param(0)});
        Reg denied = b.binImm(BK::kEq, allow, 0);
        ifThen(b, denied, [&] { b.ret(b.constI(-1)); });
        Reg nr = b.binImm(BK::kAnd, b.param(0), 31);
        Reg r = tableCall(b, sys_table_, nr,
                          {b.param(1), b.param(2), b.param(3)});
        Reg x = b.call(fn("syscall_exit_work"), {});
        b.sink(x);
        b.ret(r);
    }
}

// ---------------------------------------------------------------------
// Boot
// ---------------------------------------------------------------------

void
KernelBuilder::buildBoot()
{
    { // init_vfs(): dentries + inodes + page cache contents.
        FB b(m_, fn("init_vfs"));
        Reg n = b.constI(64);
        countedLoop(b, n, [&](Reg i) {
            // Path i has externally visible hash 1000 + 97*i; both of
            // path_lookup's component probes must resolve.
            Reg scaled = b.binImm(BK::kMul, i, 97);
            Reg ph = b.binImm(BK::kAdd, scaled, 1000);
            // link_path_walk() resolves 4 components per path; insert
            // each component's dentry.
            for (int64_t c = 0; c < 4; ++c) {
                Reg salted = b.binImm(BK::kAdd, ph, c * 131);
                Reg h = b.call(fn("k_hash"), {salted});
                Reg r = b.call(fn("d_insert"), {h, i});
                b.sink(r);
            }
            // Inode: fs type skewed toward ramfs, the LMBench staple.
            Reg iscaled = b.binImm(BK::kMul, i, L::kInodeSize);
            Reg ioff = b.binImm(BK::kAdd, iscaled, L::kInodeTable);
            Reg sel = b.binImm(BK::kAnd, i, 7);
            Reg is_hot = b.binImm(BK::kLe, sel, 4);
            Reg fs = b.newReg();
            ifThenElse(b, is_hot,
                       [&] { b.setRegConst(fs, fstype::kRamfs); },
                       [&] {
                           Reg over = b.binImm(BK::kSub, sel, 4);
                           b.setReg(fs, over); // extfs/procfs/devfs
                       });
            kstore(b, ioff, fs, 0);
            Reg size = b.constI(4096);
            kstore(b, ioff, size, 1);
            Reg page = b.binImm(BK::kAnd, i, L::kNumPages - 1);
            kstore(b, ioff, page, 2);
            Reg one = b.constI(1);
            kstore(b, ioff, one, 3);
        });
        // Fill the page cache with deterministic bytes.
        Reg words = b.constI(L::kNumPages * L::kPageWords);
        countedLoop(b, words, [&](Reg i) {
            Reg v = b.call(fn("k_hash"), {i});
            kstore(b, i, v, L::kPageCache);
        });
        b.ret(b.constI(0));
    }
    { // init_net()
        FB b(m_, fn("init_net"));
        Reg base = b.constI(L::kSockTable);
        Reg zero = b.constI(0);
        Reg n = b.constI(L::kNumSocks * L::kSockSize);
        Reg r = b.call(fn("k_memset"), {base, zero, n});
        b.sink(r);
        b.ret(b.constI(0));
    }
    { // init_tasks(): task 0 runs with pid 1.
        FB b(m_, fn("init_tasks"));
        Reg zero = b.constI(0);
        kstoreAbs(b, L::kCurTask, zero);
        Reg one = b.constI(1);
        Reg t0 = b.constI(L::kTaskTable);
        kstore(b, t0, one, 0);
        kstore(b, t0, one, 1);
        kstore(b, t0, zero, 2); // mm window 0
        Reg two = b.constI(2);
        kstoreAbs(b, L::kNextPid, two);
        b.ret(b.constI(0));
    }
    { // init_drivers(): probe every device through its ops table.
        FB b(m_, fn("init_drivers"));
        Reg n = b.constI(static_cast<int64_t>(cfg_.num_drivers));
        countedLoop(b, n, [&](Reg d) {
            Reg scaled = b.binImm(BK::kMul, d, L::kDriverWords);
            Reg dev = b.binImm(BK::kAdd, scaled, L::kDriverBase);
            Reg ops4 = b.binImm(BK::kMul, d, 4);
            Reg slot = b.binImm(BK::kAdd, ops4, 3); // probe
            Reg zero = b.constI(0);
            Reg r = tableCall(b, drv_ops_, slot, {dev, d, zero});
            b.sink(r);
        });
        b.ret(b.constI(0));
    }
    { // kernel_init()
        FB b(m_, fn("kernel_init"));
        Reg done = kloadAbs(b, L::kBootDone);
        ifThen(b, done, [&] { b.ret(b.constI(0)); });
        for (const char* step :
             {"init_vfs", "init_net", "init_tasks", "init_drivers"}) {
            Reg r = b.call(fn(step), {});
            b.sink(r);
        }
        Reg one = b.constI(1);
        kstoreAbs(b, L::kBootDone, one);
        b.ret(one);
    }
}

} // namespace pibe::kernel
