#include "profile/edge_profile.h"

#include <algorithm>

namespace pibe::profile {

uint64_t
EdgeProfile::directCount(ir::SiteId site) const
{
    auto it = direct_.find(site);
    return it == direct_.end() ? 0 : it->second;
}

uint64_t
EdgeProfile::indirectCount(ir::SiteId site) const
{
    auto it = indirect_.find(site);
    if (it == indirect_.end())
        return 0;
    uint64_t total = 0;
    for (const auto& [target, count] : it->second)
        total += count;
    return total;
}

std::vector<TargetCount>
EdgeProfile::indirectTargets(ir::SiteId site) const
{
    std::vector<TargetCount> result;
    auto it = indirect_.find(site);
    if (it == indirect_.end())
        return result;
    result.reserve(it->second.size());
    for (const auto& [target, count] : it->second)
        result.push_back({target, count});
    std::stable_sort(result.begin(), result.end(),
                     [](const TargetCount& a, const TargetCount& b) {
                         if (a.count != b.count)
                             return a.count > b.count;
                         return a.target < b.target;
                     });
    return result;
}

uint64_t
EdgeProfile::invocations(ir::FuncId f) const
{
    return f < invocations_.size() ? invocations_[f] : 0;
}

uint64_t
EdgeProfile::totalDirectWeight() const
{
    uint64_t total = 0;
    for (const auto& [site, count] : direct_)
        total += count;
    return total;
}

uint64_t
EdgeProfile::totalIndirectWeight() const
{
    uint64_t total = 0;
    for (const auto& [site, targets] : indirect_) {
        (void)site;
        for (const auto& [target, count] : targets)
            total += count;
    }
    return total;
}

uint64_t
EdgeProfile::consumeIndirect(ir::SiteId site, ir::FuncId target)
{
    auto it = indirect_.find(site);
    if (it == indirect_.end())
        return 0;
    auto tit = it->second.find(target);
    if (tit == it->second.end())
        return 0;
    uint64_t count = tit->second;
    it->second.erase(tit);
    if (it->second.empty())
        indirect_.erase(it);
    return count;
}

void
EdgeProfile::merge(const EdgeProfile& other)
{
    for (const auto& [site, count] : other.direct_)
        direct_[site] += count;
    for (const auto& [site, targets] : other.indirect_) {
        auto& mine = indirect_[site];
        for (const auto& [target, count] : targets)
            mine[target] += count;
    }
    if (other.invocations_.size() > invocations_.size())
        invocations_.resize(other.invocations_.size(), 0);
    for (size_t f = 0; f < other.invocations_.size(); ++f)
        invocations_[f] += other.invocations_[f];
}

} // namespace pibe::profile
