/**
 * @file
 * Profile serialization and lifting.
 *
 * The paper's profiler emits a binary-level profile which is then
 * "lifted" to an LLVM-IR-friendly form: indirect targets are recorded
 * by *function name* (recovered from the binary address) so counts can
 * be remapped onto the IR of a later build even if function numbering
 * changed (§7, "Kernel Profiling"). We mirror that: the on-disk format
 * names targets and functions symbolically, and lifting resolves names
 * against the destination module, warning about (and dropping) edges
 * that no longer resolve.
 */
#ifndef PIBE_PROFILE_SERIALIZE_H_
#define PIBE_PROFILE_SERIALIZE_H_

#include <string>

#include "profile/edge_profile.h"

namespace pibe::profile {

/**
 * Serialize `profile` (collected on `module`) to the textual exchange
 * format. Indirect targets and invocation counts are written by
 * function name.
 */
std::string serializeProfile(const ir::Module& module,
                             const EdgeProfile& profile);

/**
 * Parse the textual format and lift it onto `module`. Entries whose
 * function names do not resolve in `module` are dropped (with a count
 * returned via `dropped`, if non-null).
 *
 * Fatal on malformed input.
 */
EdgeProfile liftProfile(const ir::Module& module, const std::string& text,
                        size_t* dropped = nullptr);

} // namespace pibe::profile

#endif // PIBE_PROFILE_SERIALIZE_H_
