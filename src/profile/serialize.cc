#include "profile/serialize.h"

#include <sstream>

#include "support/logging.h"

namespace pibe::profile {

std::string
serializeProfile(const ir::Module& module, const EdgeProfile& profile)
{
    std::ostringstream os;
    os << "pibe-profile v1\n";
    for (const auto& [site, count] : profile.directSites())
        os << "D " << site << " " << count << "\n";
    for (const auto& [site, targets] : profile.indirectSites()) {
        for (const auto& [target, count] : targets) {
            os << "I " << site << " " << module.func(target).name << " "
               << count << "\n";
        }
    }
    for (ir::FuncId f = 0; f < module.numFunctions(); ++f) {
        uint64_t inv = profile.invocations(f);
        if (inv > 0)
            os << "F " << module.func(f).name << " " << inv << "\n";
    }
    return os.str();
}

EdgeProfile
liftProfile(const ir::Module& module, const std::string& text,
            size_t* dropped)
{
    EdgeProfile profile;
    std::istringstream is(text);
    std::string header;
    if (!std::getline(is, header) || header != "pibe-profile v1")
        PIBE_FATAL("bad profile header: '", header, "'");

    size_t drop_count = 0;
    std::string line;
    size_t line_no = 1;
    while (std::getline(is, line)) {
        ++line_no;
        if (line.empty())
            continue;
        std::istringstream ls(line);
        char kind = 0;
        ls >> kind;
        if (kind == 'D') {
            ir::SiteId site;
            uint64_t count;
            if (!(ls >> site >> count))
                PIBE_FATAL("bad profile line ", line_no, ": ", line);
            profile.addDirect(site, count);
        } else if (kind == 'I') {
            ir::SiteId site;
            std::string name;
            uint64_t count;
            if (!(ls >> site >> name >> count))
                PIBE_FATAL("bad profile line ", line_no, ": ", line);
            ir::FuncId target = module.findFunction(name);
            if (target == ir::kInvalidFunc) {
                ++drop_count;
                continue;
            }
            profile.addIndirect(site, target, count);
        } else if (kind == 'F') {
            std::string name;
            uint64_t count;
            if (!(ls >> name >> count))
                PIBE_FATAL("bad profile line ", line_no, ": ", line);
            ir::FuncId f = module.findFunction(name);
            if (f == ir::kInvalidFunc) {
                ++drop_count;
                continue;
            }
            profile.addInvocation(f, count);
        } else {
            PIBE_FATAL("bad profile record kind '", kind, "' at line ",
                       line_no);
        }
    }
    if (drop_count > 0) {
        warn("liftProfile: dropped ", drop_count,
             " unresolvable profile entries");
    }
    if (dropped)
        *dropped = drop_count;
    return profile;
}

} // namespace pibe::profile
