/**
 * @file
 * Call-graph edge profiles — the data product of PIBE's profiling phase
 * (§4, §7): an execution count per direct call site, a per-target value
 * profile per indirect call site, and per-function invocation counts.
 *
 * Profiles are keyed by the module's stable SiteIds (the "unique
 * identifiers" the paper attaches to each edge) so they can be mapped
 * back onto the IR even after separate profiling/production builds.
 */
#ifndef PIBE_PROFILE_EDGE_PROFILE_H_
#define PIBE_PROFILE_EDGE_PROFILE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "ir/module.h"

namespace pibe::profile {

/** One (target, count) entry of an indirect site's value profile. */
struct TargetCount
{
    ir::FuncId target = ir::kInvalidFunc;
    uint64_t count = 0;
};

/**
 * Execution-count profile over a module's call-graph edges.
 *
 * Uses ordered maps so that iteration (and thus every consumer's
 * behaviour) is deterministic.
 */
class EdgeProfile
{
  public:
    /** Record one execution of a direct call site. */
    void
    addDirect(ir::SiteId site, uint64_t count = 1)
    {
        direct_[site] += count;
    }

    /** Record one execution of an indirect call site hitting `target`. */
    void
    addIndirect(ir::SiteId site, ir::FuncId target, uint64_t count = 1)
    {
        indirect_[site][target] += count;
    }

    /** Record `count` invocations of function `f`. */
    void
    addInvocation(ir::FuncId f, uint64_t count = 1)
    {
        if (f >= invocations_.size())
            invocations_.resize(f + 1, 0);
        invocations_[f] += count;
    }

    /** Count of a direct site (0 if never observed). */
    uint64_t directCount(ir::SiteId site) const;

    /** Total count of an indirect site across all targets. */
    uint64_t indirectCount(ir::SiteId site) const;

    /** Value profile of an indirect site, hottest target first. */
    std::vector<TargetCount> indirectTargets(ir::SiteId site) const;

    /** Invocation count of a function. */
    uint64_t invocations(ir::FuncId f) const;

    /** Sum of all direct-site counts. */
    uint64_t totalDirectWeight() const;

    /** Sum of all indirect-site counts. */
    uint64_t totalIndirectWeight() const;

    /** Number of distinct indirect sites observed. */
    size_t numIndirectSites() const { return indirect_.size(); }

    /** Number of distinct direct sites observed. */
    size_t numDirectSites() const { return direct_.size(); }

    /**
     * Remove target `t` from indirect site `site`'s value profile and
     * return its count (0 if absent). Used by indirect-call promotion,
     * which converts that edge weight into a direct edge.
     */
    uint64_t consumeIndirect(ir::SiteId site, ir::FuncId target);

    /** Accumulate another profile into this one (multi-run profiling). */
    void merge(const EdgeProfile& other);

    const std::map<ir::SiteId, uint64_t>& directSites() const
    {
        return direct_;
    }
    const std::map<ir::SiteId, std::map<ir::FuncId, uint64_t>>&
    indirectSites() const
    {
        return indirect_;
    }

  private:
    std::map<ir::SiteId, uint64_t> direct_;
    std::map<ir::SiteId, std::map<ir::FuncId, uint64_t>> indirect_;
    std::vector<uint64_t> invocations_;
};

} // namespace pibe::profile

#endif // PIBE_PROFILE_EDGE_PROFILE_H_
