/**
 * @file
 * Per-function control-flow graph over PIR.
 *
 * The Cfg is the substrate of every analysis in src/check: it exposes
 * predecessor/successor maps, entry reachability, and a reverse
 * post-order over the reachable blocks (the iteration order that makes
 * forward dataflow converge in few passes). It is a pure view: it
 * never mutates the function and is invalidated by the
 * AnalysisManager when the function changes.
 */
#ifndef PIBE_CHECK_CFG_H_
#define PIBE_CHECK_CFG_H_

#include <vector>

#include "ir/module.h"

namespace pibe::check {

/** Successor block ids of a terminator (empty for kRet). */
std::vector<ir::BlockId> terminatorSuccessors(const ir::Instruction& term);

/** Control-flow graph of one function body. */
class Cfg
{
  public:
    /** Build the graph by scanning `func`'s terminators.
     *  @pre `func` has a body and every block ends in a terminator
     *  with in-range targets (run the verifier first). */
    explicit Cfg(const ir::Function& func);

    size_t numBlocks() const { return succs_.size(); }

    const std::vector<ir::BlockId>& succs(ir::BlockId b) const
    {
        return succs_[b];
    }
    const std::vector<ir::BlockId>& preds(ir::BlockId b) const
    {
        return preds_[b];
    }

    /** True if `b` is reachable from the entry block. */
    bool isReachable(ir::BlockId b) const { return reachable_[b]; }

    /** Number of blocks reachable from entry. */
    size_t numReachable() const { return rpo_.size(); }

    /** Reverse post-order over the reachable blocks (entry first). */
    const std::vector<ir::BlockId>& reversePostOrder() const
    {
        return rpo_;
    }

    /** Position of `b` in the RPO; SIZE_MAX for unreachable blocks. */
    size_t rpoIndex(ir::BlockId b) const { return rpo_index_[b]; }

    /**
     * True if `b` can execute more than once per function activation,
     * i.e. it lies on a CFG cycle (computed as: some block reachable
     * from a successor of `b` reaches `b` again).
     */
    bool inCycle(ir::BlockId b) const { return in_cycle_[b]; }

  private:
    std::vector<std::vector<ir::BlockId>> succs_;
    std::vector<std::vector<ir::BlockId>> preds_;
    std::vector<bool> reachable_;
    std::vector<bool> in_cycle_;
    std::vector<ir::BlockId> rpo_;
    std::vector<size_t> rpo_index_;
};

} // namespace pibe::check

#endif // PIBE_CHECK_CFG_H_
