/**
 * @file
 * The PIBE audit suite (`pibe check`).
 *
 * Five checker groups over one module, all emitting structured
 * Diagnostics:
 *
 *  - verify    : the structural verifier (ir::verifyModule), surfaced
 *                as `verify.function` / `verify.sites` diagnostics so
 *                one runner covers well-formedness too;
 *  - lint      : dataflow lints the verifier cannot express —
 *                use-before-def and maybe-uninitialized registers
 *                (reaching defs / definite assignment), dead stores to
 *                registers and frame slots (liveness), unreachable
 *                blocks, indirect-call arity against resolvable
 *                targets;
 *  - coverage  : the hardening-coverage auditor — under a
 *                DefenseConfig, every *reachable* kICall/kSwitch/kRet
 *                must carry the scheme the config implies, modulo the
 *                asm/boot exemptions Table 11 models and an explicit
 *                allowlist; counts are reconciled against
 *                harden::analyzeCoverage so the audit and the report
 *                can never drift apart silently;
 *  - targets   : interprocedural feasible-target validation — every
 *                ICP-promoted guarded direct call and every global
 *                function-pointer table entry must be inside the
 *                site's statically feasible target set (translation
 *                validation of opt/icp.cc), and profile-observed
 *                targets must be a subset of complete static sets;
 *  - profile   : Kirchhoff-style flow conservation of an EdgeProfile
 *                against the module — per-function invocation counts
 *                equal the sum of incoming profiled call-edge counts
 *                (roots exempt downward), counts of sites outside CFG
 *                cycles never exceed their function's invocations,
 *                and every profiled SiteId / FuncId still resolves.
 */
#ifndef PIBE_CHECK_CHECKS_H_
#define PIBE_CHECK_CHECKS_H_

#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "check/analysis_manager.h"
#include "check/diagnostic.h"
#include "harden/harden.h"
#include "profile/edge_profile.h"

namespace pibe::runtime {
class ThreadPool;
}

namespace pibe::check {

/** Which groups run, and their inputs. */
struct CheckOptions
{
    bool verify = true;
    bool lint = true;
    /** Audit hardening coverage under `defense`. */
    bool coverage = false;
    /** Audit `profile` flow conservation (requires `profile`). */
    bool profile_flow = false;
    /**
     * Run the target-set checkers (module-wide; see target_sets.h):
     * `verify.targets` validates every ICP guard chain and global
     * function-pointer table entry against the interprocedural
     * feasible-target analysis, and — when `profile` is set —
     * `coverage.targets` checks profile-observed targets against the
     * static sets.
     */
    bool targets = false;

    harden::DefenseConfig defense;
    const profile::EdgeProfile* profile = nullptr;

    /** Sites exempt from coverage requirements (beyond asm/boot). */
    std::vector<ir::SiteId> allowed_sites;
    /** Functions (by name) exempt from coverage requirements. */
    std::vector<std::string> allowed_funcs;

    /**
     * Entry points invoked from outside the module (their invocation
     * counts may exceed their incoming profiled edges). Empty = the
     * conventional entry names: kernel_init, sys_dispatch, main.
     */
    std::vector<std::string> roots;
};

/** Result of one suite run. */
struct CheckReport
{
    std::vector<Diagnostic> diags;

    /**
     * Wall time per checker phase, in run order (`pibe check
     * --timing`). Serial runs record one entry per group; parallel
     * runs record the solve / fan-out / serial-tail phases.
     */
    std::vector<std::pair<std::string, double>> group_ms;

    size_t errors() const { return countSeverity(diags, Severity::kError); }
    size_t warnings() const
    {
        return countSeverity(diags, Severity::kWarning);
    }
    size_t notes() const { return countSeverity(diags, Severity::kNote); }

    /** True if nothing at or above `fail_on` was found. */
    bool
    ok(Severity fail_on = Severity::kError) const
    {
        for (const Diagnostic& d : diags)
            if (d.severity >= fail_on)
                return false;
        return true;
    }
};

/**
 * Run the selected checker groups over `module`. Analyses are cached
 * in `am` when provided (it must wrap the same module); otherwise a
 * private manager is used.
 */
CheckReport runChecks(const ir::Module& module, const CheckOptions& opts,
                      AnalysisManager* am = nullptr);

/**
 * Parallel variant of runChecks(): the per-function checker groups
 * (verify.function, the lint.* sweep, the per-site coverage audit,
 * and the verify.targets ICP guard-chain scan) fan out as JobGraph
 * shard jobs over `pool`, each with a private AnalysisManager, while
 * the module-wide obligations (site-id uniqueness, coverage
 * reconciliation, target-set seeding/site checks, profile flow) run
 * serially afterwards. The target-set fixpoint is solved once, before
 * the fan-out, and only read by the shards. Shard reports merge in
 * FuncId order, so the result is the same diagnostic multiset as
 * runChecks() — after sortDiagnostics() the two are byte-identical at
 * every pool size.
 */
CheckReport runChecksParallel(const ir::Module& module,
                              const CheckOptions& opts,
                              runtime::ThreadPool& pool,
                              size_t shard_size = 64,
                              AnalysisManager* am = nullptr);

/**
 * Run the per-function checker groups (verify + lint) for a single
 * function. Module-wide obligations — site-id uniqueness, coverage
 * reconciliation, profile flow — are deliberately not covered; they
 * need the whole module and stay with runChecks(). This is the
 * building block the parallel pipeline fans out over functions, with
 * one private AnalysisManager per worker.
 */
CheckReport runFunctionChecks(const ir::Module& module, ir::FuncId func,
                              const CheckOptions& opts,
                              AnalysisManager* am = nullptr);

/** Report plus the pass/fail verdict of one policy-gated run. */
struct CheckOutcome
{
    CheckReport report;
    Severity fail_on = Severity::kError;
    /** report.ok(fail_on): nothing at or above the threshold. */
    bool passed = true;
};

/**
 * Parse a `--fail-on` severity name ("note", "warn"/"warning",
 * "error"). Returns std::nullopt for anything else.
 */
std::optional<Severity> severityFromName(std::string_view name);

/**
 * runChecks() plus the pass/fail policy. This is the single gate
 * shared by the `pibe check` CLI and the in-process serve path, so
 * a `fail_on` threshold means the same exit verdict everywhere.
 */
CheckOutcome runChecksWithPolicy(const ir::Module& module,
                                 const CheckOptions& opts,
                                 Severity fail_on,
                                 AnalysisManager* am = nullptr);

} // namespace pibe::check

#endif // PIBE_CHECK_CHECKS_H_
