/**
 * @file
 * Interprocedural function-pointer target-set analysis.
 *
 * An Andersen-style, flow- and field-insensitive points-to analysis
 * over the function-pointer fragment of PIR: the only abstract values
 * tracked are function addresses (ir::funcAddrValue). For every
 * indirect call site it computes the set of functions the call can
 * feasibly reach, plus a completeness bit that records whether every
 * flow into the site's pointer was resolved.
 *
 * Abstract locations ("nodes"): one per (function, register), one per
 * (function, frame slot), one per function return value, and one per
 * Global (arrays are collapsed to a single node — field-insensitive,
 * which matches how op-tables are used: any slot may reach any load).
 *
 * Constraint rules (see DESIGN.md §10 for the soundness argument):
 *  - kConst of a func-addr value and kFuncAddr seed pts(dst);
 *  - kMove / kFrameLoad / kFrameStore add copy edges;
 *  - kLoad adds global -> dst, kStore adds src -> global (indices
 *    ignored: field-insensitive);
 *  - kCall adds arg -> param and ret(callee) -> dst edges; callees
 *    without bodies (declarations / kAttrExternal) make dst incomplete;
 *  - kICall wires arg/ret edges dynamically as pts(ptr) grows, for
 *    targets whose arity matches;
 *  - arithmetic kBinOp taints: if an operand may hold a func addr the
 *    result is incomplete (pointer bits escaped into math we do not
 *    model); comparisons yield 0/1 and are ignored;
 *  - root function parameters (module entry points) are incomplete:
 *    the caller is outside the module;
 *  - an icall through an incomplete pointer may invoke any
 *    address-taken function, so it taints every address-taken
 *    function's parameters and its own result.
 *
 * Incompleteness is sticky and propagates along the same edges as
 * target sets. The analysis is a least fixpoint of a monotone
 * constraint system, so the solution is independent of solve order —
 * serial and parallel pipeline runs see bit-identical sets.
 *
 * The analysis is incremental at summary granularity: constraints are
 * extracted per function and cached; invalidateFunction(f) marks one
 * summary dirty and the next query re-extracts only that summary
 * before re-running the (cheap, module-wide) fixpoint.
 */
#ifndef PIBE_CHECK_TARGET_SETS_H_
#define PIBE_CHECK_TARGET_SETS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/module.h"
#include "opt/icp.h"

namespace pibe::check {

/** Feasible targets of one abstract location. */
struct TargetSet
{
    /** Sorted, unique function ids. */
    std::vector<ir::FuncId> targets;
    /** True if some flow into the location was not resolved; the set
     *  is then a lower bound and must be treated as "any address-taken
     *  function". */
    bool incomplete = false;

    bool
    contains(ir::FuncId f) const
    {
        for (ir::FuncId t : targets)
            if (t == f)
                return true;
        return false;
    }
};

/** Resolved feasible-target facts for one indirect call site. */
struct SiteTargets
{
    ir::SiteId site = ir::kNoSite;
    ir::FuncId func = ir::kInvalidFunc;
    ir::BlockId block = 0;
    uint32_t index = 0;       ///< Instruction index within the block.
    ir::Reg ptr = ir::kNoReg; ///< The called pointer register.
    bool is_asm = false;
    bool incomplete = false;
    /** Sorted, unique feasible targets (meaningful even when
     *  incomplete: the resolved lower bound). */
    std::vector<ir::FuncId> targets;

    bool complete() const { return !incomplete; }
};

/** A global initializer slot that decodes to a nonexistent function. */
struct BadGlobalSlot
{
    ir::GlobalId global = ir::kInvalidGlobal;
    size_t slot = 0;
    int64_t value = 0;
};

class TargetSetAnalysis
{
  public:
    /**
     * @param roots Entry-point function names whose parameters are
     *        supplied from outside the module (incomplete). Empty =
     *        the conventional entries: kernel_init, sys_dispatch, main.
     */
    explicit TargetSetAnalysis(const ir::Module& module,
                               std::vector<std::string> roots = {});

    const ir::Module& module() const { return module_; }
    const std::vector<std::string>& roots() const { return roots_; }

    /** Mark one function's constraint summary stale (call after
     *  mutating it). The next query re-extracts only this summary. */
    void invalidateFunction(ir::FuncId f);

    /** Mark every summary stale (call after a module-wide pass). */
    void invalidateAll();

    /** Per-site feasible targets, keyed by SiteId (solves lazily). */
    const std::map<ir::SiteId, SiteTargets>& sites();

    /** One site's facts; nullptr if the site id is not an icall. */
    const SiteTargets* site(ir::SiteId s);

    /** Feasible targets of register `r` in function `f`. */
    TargetSet regTargets(ir::FuncId f, ir::Reg r);

    /** Sorted ids of every address-taken function (the pool an
     *  unresolved pointer may range over). */
    const std::vector<ir::FuncId>& addressTaken();

    /** Global initializer slots holding invalid function addresses. */
    const std::vector<BadGlobalSlot>& badGlobalSlots();

    /** Fixpoint solves run so far (grows on query-after-invalidate). */
    size_t solves() const { return solves_; }

    /** Function summaries (re)extracted so far. The incremental
     *  contract: after invalidateFunction(f), the next solve grows
     *  this by exactly one. */
    size_t summariesExtracted() const { return summaries_extracted_; }

  private:
    // One abstract-location constraint, extracted per function.
    struct Constraint
    {
        enum class Kind : uint8_t {
            kSeed,       // pts(dst reg) += {target}
            kCopy,       // dst reg ⊇ src reg
            kTaint,      // pts(src reg) ≠ ∅ or incomplete => dst incomplete
            kLoadGlobal, // dst reg ⊇ global
            kStoreGlobal,// global ⊇ src reg
            kFrameLoad,  // dst reg ⊇ frame slot
            kFrameStore, // frame slot ⊇ src reg
            kCallArg,    // param reg of callee ⊇ src reg
            kCallRet,    // dst reg ⊇ ret(callee)
            kRet,        // ret(this function) ⊇ src reg
            kIncomplete, // dst reg incomplete
        };
        Kind kind;
        uint32_t dst = 0; // reg / frame slot / global id / param index
        uint32_t src = 0; // reg
        ir::FuncId callee = ir::kInvalidFunc;
        ir::FuncId target = ir::kInvalidFunc;
    };

    // One indirect call site, recorded during summary extraction.
    struct IcallRecord
    {
        ir::SiteId site = ir::kNoSite;
        ir::BlockId block = 0;
        uint32_t index = 0;
        ir::Reg ptr = ir::kNoReg;
        ir::Reg dst = ir::kNoReg;
        std::vector<ir::Reg> args;
        bool is_asm = false;
    };

    struct FuncSummary
    {
        std::vector<Constraint> constraints;
        std::vector<IcallRecord> icalls;
        bool dirty = true;
    };

    void extractSummary(ir::FuncId f);
    void solve();
    uint32_t regNode(ir::FuncId f, ir::Reg r) const;
    uint32_t frameNode(ir::FuncId f, uint32_t slot) const;
    uint32_t retNode(ir::FuncId f) const;
    uint32_t globalNode(ir::GlobalId g) const;

    // Solver helpers (valid only during solve()).
    void addEdge(uint32_t from, uint32_t to);
    void addTaintEdge(uint32_t from, uint32_t to);
    bool unionInto(uint32_t node, const std::vector<ir::FuncId>& add);
    bool markIncomplete(uint32_t node);
    void push(uint32_t node);

    const ir::Module& module_;
    std::vector<std::string> roots_;

    std::vector<FuncSummary> summaries_;
    bool solved_ = false;
    size_t solves_ = 0;
    size_t summaries_extracted_ = 0;

    // Node layout of the last solve.
    std::vector<uint32_t> reg_base_;
    std::vector<uint32_t> frame_base_;
    std::vector<uint32_t> ret_node_;
    uint32_t global_base_ = 0;
    uint32_t num_nodes_ = 0;

    // Solution.
    std::vector<std::vector<ir::FuncId>> pts_;
    std::vector<bool> incomplete_;
    std::map<ir::SiteId, SiteTargets> sites_;
    std::vector<ir::FuncId> address_taken_;
    std::vector<BadGlobalSlot> bad_slots_;

    // Solver worklist state.
    std::vector<std::vector<uint32_t>> edges_;
    std::vector<std::vector<uint32_t>> taint_edges_;
    std::vector<uint32_t> worklist_;
    std::vector<bool> on_worklist_;
};

/**
 * Extract an opt::FeasibilityMap (per-site complete bit + feasible
 * targets) for the ICP planner's total-promotion precondition.
 */
opt::FeasibilityMap feasibilityMap(TargetSetAnalysis& analysis);

// --- residual-attack-surface report (`pibe surface`) ---

/** Surface metrics for one DefenseConfig. */
struct SurfaceDefenseRow
{
    std::string defense;
    uint32_t protected_icalls = 0;   ///< Sites behind a fwd scheme.
    uint32_t unprotected_icalls = 0; ///< Asm sites / no fwd scheme.
    /** Σ allowed targets per site: |pts| where complete and protected,
     *  else the whole address-taken pool. */
    uint64_t residual_target_pairs = 0;
    /** AIR-style score: 1 - avg(allowed_i / pool). 1.0 = every site
     *  fully constrained; 0.0 = every site may reach the whole pool. */
    double air = 0.0;
};

/** The full `pibe surface` report. */
struct SurfaceReport
{
    std::string module_name;
    uint32_t functions = 0;
    uint32_t address_taken = 0;
    uint32_t icall_sites = 0;
    uint32_t asm_sites = 0;
    uint32_t complete_sites = 0;
    uint32_t incomplete_sites = 0;
    /** Complete sites with 0 < |set| <= max_targets — candidates for
     *  total promotion / Switchpoline conversion. */
    uint32_t switchpoline_eligible = 0;
    uint32_t max_targets = 0; ///< The eligibility knob used above.
    double avg_targets = 0.0; ///< Mean |set| over complete sites.
    /** Histogram over complete sites: |set| -> number of sites. */
    std::map<uint32_t, uint32_t> set_size_hist;
    std::vector<SurfaceDefenseRow> defenses;
};

/** Compute the report over the canonical DefenseConfigs. */
SurfaceReport buildSurfaceReport(TargetSetAnalysis& analysis,
                                 uint32_t max_targets);

/** Human-readable report (tables). */
std::string renderSurfaceText(const SurfaceReport& rep);

/** One JSON object (the BENCH_surface.json payload). */
std::string renderSurfaceJson(const SurfaceReport& rep);

} // namespace pibe::check

#endif // PIBE_CHECK_TARGET_SETS_H_
