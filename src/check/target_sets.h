/**
 * @file
 * Interprocedural function-pointer target-set analysis.
 *
 * An Andersen-style, flow- and field-insensitive points-to analysis
 * over the function-pointer fragment of PIR: the only abstract values
 * tracked are function addresses (ir::funcAddrValue). For every
 * indirect call site it computes the set of functions the call can
 * feasibly reach, plus a completeness bit that records whether every
 * flow into the site's pointer was resolved.
 *
 * Abstract locations ("nodes"): one per (function, register), one per
 * (function, frame slot), one per function return value, and one per
 * Global (arrays are collapsed to a single node — field-insensitive,
 * which matches how op-tables are used: any slot may reach any load).
 *
 * Constraint rules (see DESIGN.md §10 for the soundness argument):
 *  - kConst of a func-addr value and kFuncAddr seed pts(dst);
 *  - kMove / kFrameLoad / kFrameStore add copy edges;
 *  - kLoad adds global -> dst, kStore adds src -> global (indices
 *    ignored: field-insensitive);
 *  - kCall adds arg -> param and ret(callee) -> dst edges; callees
 *    without bodies (declarations / kAttrExternal) make dst incomplete;
 *  - kICall wires arg/ret edges dynamically as pts(ptr) grows, for
 *    targets whose arity matches;
 *  - arithmetic kBinOp taints: if an operand may hold a func addr the
 *    result is incomplete (pointer bits escaped into math we do not
 *    model); comparisons yield 0/1 and are ignored;
 *  - root function parameters (module entry points) are incomplete:
 *    the caller is outside the module;
 *  - an icall through an incomplete pointer may invoke any
 *    address-taken function, so it taints every address-taken
 *    function's parameters and its own result.
 *
 * Incompleteness is sticky and propagates along the same edges as
 * target sets. The analysis is a least fixpoint of a monotone
 * constraint system, so the solution is independent of solve order —
 * serial and parallel pipeline runs see bit-identical sets.
 *
 * The analysis is incremental at summary granularity: constraints are
 * extracted per function and cached; invalidateFunction(f) marks one
 * summary dirty and the next query re-extracts only that summary
 * before re-running the (cheap, module-wide) fixpoint.
 *
 * Two solvers compute the fixpoint (see DESIGN.md §11):
 *  - kFast (default): SCC condensation of the copy-edge graph
 *    (iterative Tarjan up front, lazy cycle detection collapsing
 *    cycles formed by dynamically wired icall edges), difference
 *    propagation (only set deltas travel along edges), and a
 *    hash-consed interned set pool with memoized unions so the
 *    thousands of op-table-seeded nodes share storage.
 *  - kReference: the original naive full-set worklist fixpoint, kept
 *    as the differential-testing oracle.
 * Both run the same monotone constraint system to its unique least
 * fixpoint, so their results are bit-identical; tests assert it.
 * PIBE_TARGET_SOLVER=reference selects the oracle at runtime.
 */
#ifndef PIBE_CHECK_TARGET_SETS_H_
#define PIBE_CHECK_TARGET_SETS_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/module.h"
#include "opt/icp.h"

namespace pibe::check {

/** Feasible targets of one abstract location. */
struct TargetSet
{
    /** Sorted, unique function ids. */
    std::vector<ir::FuncId> targets;
    /** True if some flow into the location was not resolved; the set
     *  is then a lower bound and must be treated as "any address-taken
     *  function". */
    bool incomplete = false;

    bool
    contains(ir::FuncId f) const
    {
        for (ir::FuncId t : targets)
            if (t == f)
                return true;
        return false;
    }
};

/** Resolved feasible-target facts for one indirect call site. */
struct SiteTargets
{
    ir::SiteId site = ir::kNoSite;
    ir::FuncId func = ir::kInvalidFunc;
    ir::BlockId block = 0;
    uint32_t index = 0;       ///< Instruction index within the block.
    ir::Reg ptr = ir::kNoReg; ///< The called pointer register.
    bool is_asm = false;
    bool incomplete = false;
    /** Sorted, unique feasible targets (meaningful even when
     *  incomplete: the resolved lower bound). */
    std::vector<ir::FuncId> targets;

    bool complete() const { return !incomplete; }
};

/** A global initializer slot that decodes to a nonexistent function. */
struct BadGlobalSlot
{
    ir::GlobalId global = ir::kInvalidGlobal;
    size_t slot = 0;
    int64_t value = 0;
};

/** Which fixpoint engine TargetSetAnalysis runs. */
enum class SolverMode : uint8_t {
    kFast,      ///< SCC + difference propagation + interned sets.
    kReference, ///< Naive full-set worklist (differential oracle).
};

/** Counters from the most recent fixpoint solve. */
struct SolverStats
{
    SolverMode mode = SolverMode::kFast;
    uint32_t nodes = 0;          ///< Abstract locations.
    uint32_t static_edges = 0;   ///< Subset edges from summaries.
    uint32_t dynamic_edges = 0;  ///< Icall arg/ret edges wired in.
    uint32_t scc_collapsed = 0;  ///< Nodes merged by offline Tarjan.
    uint32_t lcd_collapsed = 0;  ///< Nodes merged by lazy cycle det.
    uint32_t interned_sets = 0;  ///< Distinct sets in the pool.
    uint64_t union_memo_hits = 0;///< Memoized set unions reused.
    uint64_t pops = 0;           ///< Worklist pops to fixpoint.
    double solve_ms = 0.0;       ///< Wall time of the last solve.
};

class TargetSetAnalysis
{
  public:
    /**
     * @param roots Entry-point function names whose parameters are
     *        supplied from outside the module (incomplete). Empty =
     *        the conventional entries: kernel_init, sys_dispatch, main.
     */
    explicit TargetSetAnalysis(const ir::Module& module,
                               std::vector<std::string> roots = {});

    const ir::Module& module() const { return module_; }
    const std::vector<std::string>& roots() const { return roots_; }

    /** Mark one function's constraint summary stale (call after
     *  mutating it). The next query re-extracts only this summary. */
    void invalidateFunction(ir::FuncId f);

    /** Mark every summary stale (call after a module-wide pass). */
    void invalidateAll();

    /** Per-site feasible targets, keyed by SiteId (solves lazily). */
    const std::map<ir::SiteId, SiteTargets>& sites();

    /** One site's facts; nullptr if the site id is not an icall. */
    const SiteTargets* site(ir::SiteId s);

    /** Feasible targets of register `r` in function `f`. */
    TargetSet regTargets(ir::FuncId f, ir::Reg r);

    /** Sorted ids of every address-taken function (the pool an
     *  unresolved pointer may range over). */
    const std::vector<ir::FuncId>& addressTaken();

    /** Global initializer slots holding invalid function addresses. */
    const std::vector<BadGlobalSlot>& badGlobalSlots();

    /**
     * Force the lazy fixpoint now. After this returns — and until the
     * next invalidateFunction/invalidateAll/setSolverMode call — the
     * query methods (sites, site, regTargets, addressTaken,
     * badGlobalSlots) only read solved state and are safe to call
     * from multiple threads concurrently (the parallel sandwich
     * pre-solves serially, then shares one instance across shards).
     */
    void ensureSolved() { sites(); }

    /** Fixpoint solves run so far (grows on query-after-invalidate). */
    size_t solves() const { return solves_; }

    /** Function summaries (re)extracted so far. The incremental
     *  contract: after invalidateFunction(f), the next solve grows
     *  this by exactly one. */
    size_t summariesExtracted() const { return summaries_extracted_; }

    /** Select the fixpoint engine. Forces a re-solve on next query.
     *  The environment variable PIBE_TARGET_SOLVER (fast|reference)
     *  sets the construction-time default. */
    void setSolverMode(SolverMode m);
    SolverMode solverMode() const { return mode_; }

    /** Counters from the most recent solve (pibe check --timing). */
    const SolverStats& solverStats() const { return stats_; }

  private:
    // One abstract-location constraint, extracted per function.
    struct Constraint
    {
        enum class Kind : uint8_t {
            kSeed,       // pts(dst reg) += {target}
            kCopy,       // dst reg ⊇ src reg
            kTaint,      // pts(src reg) ≠ ∅ or incomplete => dst incomplete
            kLoadGlobal, // dst reg ⊇ global
            kStoreGlobal,// global ⊇ src reg
            kFrameLoad,  // dst reg ⊇ frame slot
            kFrameStore, // frame slot ⊇ src reg
            kCallArg,    // param reg of callee ⊇ src reg
            kCallRet,    // dst reg ⊇ ret(callee)
            kRet,        // ret(this function) ⊇ src reg
            kIncomplete, // dst reg incomplete
        };
        Kind kind;
        uint32_t dst = 0; // reg / frame slot / global id / param index
        uint32_t src = 0; // reg
        ir::FuncId callee = ir::kInvalidFunc;
        ir::FuncId target = ir::kInvalidFunc;
    };

    // One indirect call site, recorded during summary extraction.
    struct IcallRecord
    {
        ir::SiteId site = ir::kNoSite;
        ir::BlockId block = 0;
        uint32_t index = 0;
        ir::Reg ptr = ir::kNoReg;
        ir::Reg dst = ir::kNoReg;
        std::vector<ir::Reg> args;
        bool is_asm = false;
    };

    struct FuncSummary
    {
        std::vector<Constraint> constraints;
        std::vector<IcallRecord> icalls;
        bool dirty = true;
    };

    void extractSummary(ir::FuncId f);
    void solve();
    void solveReference();
    void solveFast();
    void prepareSolve();
    void layoutNodes();
    const std::vector<ir::FuncId>& nodePts(uint32_t node) const;
    bool nodeIncomplete(uint32_t node) const
    {
        return incomplete_[node];
    }
    uint32_t regNode(ir::FuncId f, ir::Reg r) const;
    uint32_t frameNode(ir::FuncId f, uint32_t slot) const;
    uint32_t retNode(ir::FuncId f) const;
    uint32_t globalNode(ir::GlobalId g) const;

    // Solver helpers (valid only during solve()).
    void addEdge(uint32_t from, uint32_t to);
    void addTaintEdge(uint32_t from, uint32_t to);
    bool unionInto(uint32_t node, const std::vector<ir::FuncId>& add);
    bool markIncomplete(uint32_t node);
    void push(uint32_t node);

    const ir::Module& module_;
    std::vector<std::string> roots_;

    std::vector<FuncSummary> summaries_;
    bool solved_ = false;
    size_t solves_ = 0;
    size_t summaries_extracted_ = 0;

    // Node layout of the last solve.
    std::vector<uint32_t> reg_base_;
    std::vector<uint32_t> frame_base_;
    std::vector<uint32_t> ret_node_;
    uint32_t global_base_ = 0;
    uint32_t num_nodes_ = 0;

    // Solution. In reference mode pts_ holds one vector per node; in
    // fast mode sets are interned in pool_sets_ and node_set_ maps a
    // node to its pool id. nodePts() hides the difference.
    std::vector<std::vector<ir::FuncId>> pts_;
    std::vector<std::vector<ir::FuncId>> pool_sets_;
    std::vector<uint32_t> node_set_;
    std::vector<bool> incomplete_;
    std::map<ir::SiteId, SiteTargets> sites_;
    std::vector<ir::FuncId> address_taken_;
    std::vector<BadGlobalSlot> bad_slots_;

    SolverMode mode_;
    SolverStats stats_;

    // Reference-solver worklist state.
    std::vector<std::vector<uint32_t>> edges_;
    std::vector<std::vector<uint32_t>> taint_edges_;
    std::vector<uint32_t> worklist_;
    std::vector<bool> on_worklist_;
};

/**
 * Extract an opt::FeasibilityMap (per-site complete bit + feasible
 * targets) for the ICP planner's total-promotion precondition.
 */
opt::FeasibilityMap feasibilityMap(TargetSetAnalysis& analysis);

// --- residual-attack-surface report (`pibe surface`) ---

/** Surface metrics for one DefenseConfig. */
struct SurfaceDefenseRow
{
    std::string defense;
    uint32_t protected_icalls = 0;   ///< Sites behind a fwd scheme.
    uint32_t unprotected_icalls = 0; ///< Asm sites / no fwd scheme.
    /** Σ allowed targets per site: |pts| where complete and protected,
     *  else the whole address-taken pool. */
    uint64_t residual_target_pairs = 0;
    /** AIR-style score: 1 - avg(allowed_i / pool). 1.0 = every site
     *  fully constrained; 0.0 = every site may reach the whole pool. */
    double air = 0.0;
};

/** The full `pibe surface` report. */
struct SurfaceReport
{
    std::string module_name;
    uint32_t functions = 0;
    uint32_t address_taken = 0;
    uint32_t icall_sites = 0;
    uint32_t asm_sites = 0;
    uint32_t complete_sites = 0;
    uint32_t incomplete_sites = 0;
    /** Complete sites with 0 < |set| <= max_targets — candidates for
     *  total promotion / Switchpoline conversion. */
    uint32_t switchpoline_eligible = 0;
    uint32_t max_targets = 0; ///< The eligibility knob used above.
    double avg_targets = 0.0; ///< Mean |set| over complete sites.
    /** Histogram over complete sites: |set| -> number of sites. */
    std::map<uint32_t, uint32_t> set_size_hist;
    std::vector<SurfaceDefenseRow> defenses;
};

/** Compute the report over the canonical DefenseConfigs. */
SurfaceReport buildSurfaceReport(TargetSetAnalysis& analysis,
                                 uint32_t max_targets);

/** Human-readable report (tables). */
std::string renderSurfaceText(const SurfaceReport& rep);

/** One JSON object (the BENCH_surface.json payload). */
std::string renderSurfaceJson(const SurfaceReport& rep);

} // namespace pibe::check

#endif // PIBE_CHECK_TARGET_SETS_H_
