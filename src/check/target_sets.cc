/**
 * @file
 * Andersen-style function-pointer points-to analysis (target sets).
 *
 * See target_sets.h for the abstraction and DESIGN.md §10 for the
 * constraint rules and the soundness argument. The solver is a
 * standard worklist fixpoint over subset edges; icall argument/return
 * edges are added dynamically as the pointer's set grows. Because the
 * system is monotone and we run to the least fixpoint, the solution is
 * independent of processing order — serial and parallel pipeline runs
 * produce bit-identical sets.
 */
#include "check/target_sets.h"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "harden/harden.h"

namespace pibe::check {

namespace {

/** Conventional module entry points (matches checks.cc roots). */
const char* const kDefaultRoots[] = {"kernel_init", "sys_dispatch",
                                     "main"};

bool
isComparison(ir::BinKind k)
{
    return k >= ir::BinKind::kEq;
}

} // namespace

TargetSetAnalysis::TargetSetAnalysis(const ir::Module& module,
                                     std::vector<std::string> roots)
    : module_(module), roots_(std::move(roots))
{
}

void
TargetSetAnalysis::invalidateFunction(ir::FuncId f)
{
    if (f < summaries_.size())
        summaries_[f].dirty = true;
    solved_ = false;
}

void
TargetSetAnalysis::invalidateAll()
{
    for (FuncSummary& s : summaries_)
        s.dirty = true;
    solved_ = false;
}

uint32_t
TargetSetAnalysis::regNode(ir::FuncId f, ir::Reg r) const
{
    return reg_base_[f] + r;
}

uint32_t
TargetSetAnalysis::frameNode(ir::FuncId f, uint32_t slot) const
{
    return frame_base_[f] + slot;
}

uint32_t
TargetSetAnalysis::retNode(ir::FuncId f) const
{
    return ret_node_[f];
}

uint32_t
TargetSetAnalysis::globalNode(ir::GlobalId g) const
{
    return global_base_ + g;
}

void
TargetSetAnalysis::extractSummary(ir::FuncId f)
{
    FuncSummary& sum = summaries_[f];
    sum.constraints.clear();
    sum.icalls.clear();
    sum.dirty = false;
    ++summaries_extracted_;

    const ir::Function& fn = module_.func(f);
    const uint32_t nregs = fn.num_regs;
    auto reg_ok = [nregs](ir::Reg r) { return r < nregs; };

    for (ir::BlockId b = 0; b < fn.blocks.size(); ++b) {
        const auto& insts = fn.blocks[b].insts;
        for (uint32_t i = 0; i < insts.size(); ++i) {
            const ir::Instruction& in = insts[i];
            Constraint c;
            switch (in.op) {
              case ir::Opcode::kConst:
                if (ir::isFuncAddrValue(in.imm) && reg_ok(in.dst)) {
                    ir::FuncId t = ir::funcAddrTarget(in.imm);
                    if (t < module_.numFunctions()) {
                        c.kind = Constraint::Kind::kSeed;
                        c.dst = in.dst;
                        c.target = t;
                    } else {
                        // Address of a nonexistent function: an
                        // unresolvable value (lint.call-target flags
                        // the call site).
                        c.kind = Constraint::Kind::kIncomplete;
                        c.dst = in.dst;
                    }
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kFuncAddr:
                if (reg_ok(in.dst)) {
                    if (in.callee < module_.numFunctions()) {
                        c.kind = Constraint::Kind::kSeed;
                        c.dst = in.dst;
                        c.target = in.callee;
                    } else {
                        c.kind = Constraint::Kind::kIncomplete;
                        c.dst = in.dst;
                    }
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kMove:
                if (reg_ok(in.dst) && reg_ok(in.a)) {
                    c.kind = Constraint::Kind::kCopy;
                    c.dst = in.dst;
                    c.src = in.a;
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kBinOp:
                // Comparisons yield 0/1, never a pointer. Arithmetic
                // on a possible pointer escapes the abstraction: the
                // result is incomplete (we do not model forged
                // addresses), but carries no targets.
                if (!isComparison(in.bin) && reg_ok(in.dst)) {
                    for (ir::Reg src : {in.a, in.b}) {
                        if (!reg_ok(src))
                            continue;
                        c.kind = Constraint::Kind::kTaint;
                        c.dst = in.dst;
                        c.src = src;
                        sum.constraints.push_back(c);
                    }
                }
                break;
              case ir::Opcode::kLoad:
                if (reg_ok(in.dst)) {
                    if (in.global < module_.numGlobals()) {
                        // Field-insensitive: any slot may flow out.
                        c.kind = Constraint::Kind::kLoadGlobal;
                        c.dst = in.dst;
                        c.src = in.global;
                    } else {
                        c.kind = Constraint::Kind::kIncomplete;
                        c.dst = in.dst;
                    }
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kStore:
                if (reg_ok(in.b) && in.global < module_.numGlobals()) {
                    c.kind = Constraint::Kind::kStoreGlobal;
                    c.dst = in.global;
                    c.src = in.b;
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kFrameLoad:
                if (reg_ok(in.dst)) {
                    if (in.imm >= 0 &&
                        in.imm < static_cast<int64_t>(fn.frame_size)) {
                        c.kind = Constraint::Kind::kFrameLoad;
                        c.dst = in.dst;
                        c.src = static_cast<uint32_t>(in.imm);
                    } else {
                        c.kind = Constraint::Kind::kIncomplete;
                        c.dst = in.dst;
                    }
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kFrameStore:
                if (reg_ok(in.a) && in.imm >= 0 &&
                    in.imm < static_cast<int64_t>(fn.frame_size)) {
                    c.kind = Constraint::Kind::kFrameStore;
                    c.dst = static_cast<uint32_t>(in.imm);
                    c.src = in.a;
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kCall: {
                if (in.callee >= module_.numFunctions()) {
                    if (in.dst != ir::kNoReg && reg_ok(in.dst)) {
                        c.kind = Constraint::Kind::kIncomplete;
                        c.dst = in.dst;
                        sum.constraints.push_back(c);
                    }
                    break;
                }
                const ir::Function& callee = module_.func(in.callee);
                if (!callee.isDeclaration()) {
                    // Arguments flow into parameter registers.
                    uint32_t np = std::min(callee.num_params,
                                           callee.num_regs);
                    for (uint32_t ai = 0;
                         ai < in.args.size() && ai < np; ++ai) {
                        if (!reg_ok(in.args[ai]))
                            continue;
                        c.kind = Constraint::Kind::kCallArg;
                        c.dst = ai;
                        c.src = in.args[ai];
                        c.callee = in.callee;
                        sum.constraints.push_back(c);
                    }
                }
                if (in.dst != ir::kNoReg && reg_ok(in.dst)) {
                    // Declarations' return nodes are seeded
                    // incomplete, so this stays sound for them.
                    c = Constraint{};
                    c.kind = Constraint::Kind::kCallRet;
                    c.dst = in.dst;
                    c.callee = in.callee;
                    sum.constraints.push_back(c);
                }
                break;
              }
              case ir::Opcode::kICall: {
                IcallRecord rec;
                rec.site = in.site_id;
                rec.block = b;
                rec.index = i;
                rec.ptr = in.a;
                rec.dst = in.dst;
                rec.args = in.args;
                rec.is_asm = in.is_asm;
                sum.icalls.push_back(std::move(rec));
                break;
              }
              case ir::Opcode::kRet:
                if (in.a != ir::kNoReg && reg_ok(in.a)) {
                    c.kind = Constraint::Kind::kRet;
                    c.src = in.a;
                    sum.constraints.push_back(c);
                }
                break;
              default:
                break; // kBr/kCondBr/kSwitch/kSink move no values.
            }
        }
    }
}

void
TargetSetAnalysis::addEdge(uint32_t from, uint32_t to)
{
    edges_[from].push_back(to);
    bool changed = unionInto(to, pts_[from]);
    if (incomplete_[from])
        changed = markIncomplete(to) || changed;
    if (changed)
        push(to);
}

void
TargetSetAnalysis::addTaintEdge(uint32_t from, uint32_t to)
{
    taint_edges_[from].push_back(to);
    if (!pts_[from].empty() || incomplete_[from])
        if (markIncomplete(to))
            push(to);
}

bool
TargetSetAnalysis::unionInto(uint32_t node,
                             const std::vector<ir::FuncId>& add)
{
    if (add.empty())
        return false;
    std::vector<ir::FuncId>& dst = pts_[node];
    if (dst.empty()) {
        dst = add;
        return true;
    }
    std::vector<ir::FuncId> merged;
    merged.reserve(dst.size() + add.size());
    std::set_union(dst.begin(), dst.end(), add.begin(), add.end(),
                   std::back_inserter(merged));
    if (merged.size() == dst.size())
        return false;
    dst = std::move(merged);
    return true;
}

bool
TargetSetAnalysis::markIncomplete(uint32_t node)
{
    if (incomplete_[node])
        return false;
    incomplete_[node] = true;
    return true;
}

void
TargetSetAnalysis::push(uint32_t node)
{
    if (on_worklist_[node])
        return;
    on_worklist_[node] = true;
    worklist_.push_back(node);
}

void
TargetSetAnalysis::solve()
{
    const size_t nf = module_.numFunctions();
    if (summaries_.size() < nf)
        summaries_.resize(nf);
    for (ir::FuncId f = 0; f < nf; ++f)
        if (summaries_[f].dirty)
            extractSummary(f);
    ++solves_;

    // --- node layout (rebuilt per solve: passes may grow regs) ---
    reg_base_.assign(nf, 0);
    frame_base_.assign(nf, 0);
    ret_node_.assign(nf, 0);
    uint32_t n = 0;
    for (ir::FuncId f = 0; f < nf; ++f) {
        const ir::Function& fn = module_.func(f);
        reg_base_[f] = n;
        n += fn.num_regs;
        frame_base_[f] = n;
        n += fn.frame_size;
        ret_node_[f] = n;
        n += 1;
    }
    global_base_ = n;
    n += static_cast<uint32_t>(module_.numGlobals());
    num_nodes_ = n;

    pts_.assign(n, {});
    incomplete_.assign(n, false);
    edges_.assign(n, {});
    taint_edges_.assign(n, {});
    worklist_.clear();
    on_worklist_.assign(n, false);
    sites_.clear();
    bad_slots_.clear();

    std::vector<ir::FuncId> taken;

    // --- seeds: global initializers ---
    for (ir::GlobalId g = 0; g < module_.numGlobals(); ++g) {
        const ir::Global& gl = module_.global(g);
        for (size_t slot = 0; slot < gl.init.size(); ++slot) {
            int64_t v = gl.init[slot];
            if (!ir::isFuncAddrValue(v))
                continue;
            ir::FuncId t = ir::funcAddrTarget(v);
            if (t < nf) {
                unionInto(globalNode(g), {t});
                taken.push_back(t);
            } else {
                bad_slots_.push_back(BadGlobalSlot{g, slot, v});
                markIncomplete(globalNode(g));
            }
        }
    }

    // --- seeds: root parameters come from outside the module ---
    auto seedRoot = [&](const std::string& name) {
        ir::FuncId f = module_.findFunction(name);
        if (f == ir::kInvalidFunc)
            return;
        const ir::Function& fn = module_.func(f);
        uint32_t np = std::min(fn.num_params, fn.num_regs);
        for (uint32_t p = 0; p < np; ++p)
            markIncomplete(regNode(f, p));
    };
    if (roots_.empty()) {
        for (const char* name : kDefaultRoots)
            seedRoot(name);
    } else {
        for (const std::string& name : roots_)
            seedRoot(name);
    }

    // --- static constraints ---
    for (ir::FuncId f = 0; f < nf; ++f) {
        const ir::Function& fn = module_.func(f);
        if (fn.isDeclaration())
            markIncomplete(retNode(f)); // Body unknown.
        for (const Constraint& c : summaries_[f].constraints) {
            switch (c.kind) {
              case Constraint::Kind::kSeed:
                unionInto(regNode(f, c.dst), {c.target});
                taken.push_back(c.target);
                break;
              case Constraint::Kind::kCopy:
                addEdge(regNode(f, c.src), regNode(f, c.dst));
                break;
              case Constraint::Kind::kTaint:
                addTaintEdge(regNode(f, c.src), regNode(f, c.dst));
                break;
              case Constraint::Kind::kLoadGlobal:
                addEdge(globalNode(c.src), regNode(f, c.dst));
                break;
              case Constraint::Kind::kStoreGlobal:
                addEdge(regNode(f, c.src), globalNode(c.dst));
                break;
              case Constraint::Kind::kFrameLoad:
                addEdge(frameNode(f, c.src), regNode(f, c.dst));
                break;
              case Constraint::Kind::kFrameStore:
                addEdge(regNode(f, c.src), frameNode(f, c.dst));
                break;
              case Constraint::Kind::kCallArg:
                addEdge(regNode(f, c.src), regNode(c.callee, c.dst));
                break;
              case Constraint::Kind::kCallRet:
                addEdge(retNode(c.callee), regNode(f, c.dst));
                break;
              case Constraint::Kind::kRet:
                addEdge(regNode(f, c.src), retNode(f));
                break;
              case Constraint::Kind::kIncomplete:
                markIncomplete(regNode(f, c.dst));
                break;
            }
        }
    }

    std::sort(taken.begin(), taken.end());
    taken.erase(std::unique(taken.begin(), taken.end()), taken.end());
    address_taken_ = std::move(taken);

    // --- icall sites: dynamic edges as pts(ptr) grows ---
    struct SiteState
    {
        ir::FuncId func;
        const IcallRecord* rec;
        std::vector<ir::FuncId> wired; // Targets already wired.
        bool incomplete_handled = false;
        bool bad_ptr = false;
    };
    std::vector<SiteState> states;
    std::vector<std::vector<uint32_t>> sites_by_node(num_nodes_);
    for (ir::FuncId f = 0; f < nf; ++f) {
        const ir::Function& fn = module_.func(f);
        for (const IcallRecord& rec : summaries_[f].icalls) {
            SiteState st;
            st.func = f;
            st.rec = &rec;
            st.bad_ptr = rec.ptr >= fn.num_regs;
            if (!st.bad_ptr)
                sites_by_node[regNode(f, rec.ptr)].push_back(
                    static_cast<uint32_t>(states.size()));
            states.push_back(std::move(st));
        }
    }

    // An icall through an unresolved pointer may invoke any
    // address-taken function: its parameters then hold unknown values.
    bool unresolved_icall_handled = false;
    auto taintAddressTakenParams = [&]() {
        if (unresolved_icall_handled)
            return;
        unresolved_icall_handled = true;
        for (ir::FuncId a : address_taken_) {
            const ir::Function& fa = module_.func(a);
            uint32_t np = std::min(fa.num_params, fa.num_regs);
            for (uint32_t p = 0; p < np; ++p)
                if (markIncomplete(regNode(a, p)))
                    push(regNode(a, p));
        }
    };

    auto processSite = [&](uint32_t idx) {
        SiteState& st = states[idx];
        const IcallRecord& rec = *st.rec;
        const ir::Function& fn = module_.func(st.func);
        uint32_t pnode = regNode(st.func, rec.ptr);
        // Wire newly discovered targets. Copy the current set: wiring
        // can grow pts_[pnode] itself (self-referential icalls), which
        // re-queues the node and re-runs this diff.
        std::vector<ir::FuncId> cur = pts_[pnode];
        if (cur.size() != st.wired.size()) {
            std::vector<ir::FuncId> fresh;
            std::set_difference(cur.begin(), cur.end(),
                                st.wired.begin(), st.wired.end(),
                                std::back_inserter(fresh));
            st.wired = cur;
            for (ir::FuncId t : fresh) {
                const ir::Function& tf = module_.func(t);
                if (!tf.isDeclaration() &&
                    tf.num_params == rec.args.size()) {
                    uint32_t np = std::min(tf.num_params, tf.num_regs);
                    for (uint32_t ai = 0; ai < np; ++ai)
                        if (rec.args[ai] < fn.num_regs)
                            addEdge(regNode(st.func, rec.args[ai]),
                                    regNode(t, ai));
                }
                if (rec.dst != ir::kNoReg && rec.dst < fn.num_regs)
                    addEdge(retNode(t), regNode(st.func, rec.dst));
            }
        }
        if (incomplete_[pnode] && !st.incomplete_handled) {
            st.incomplete_handled = true;
            if (rec.dst != ir::kNoReg && rec.dst < fn.num_regs)
                if (markIncomplete(regNode(st.func, rec.dst)))
                    push(regNode(st.func, rec.dst));
            taintAddressTakenParams();
        }
    };

    // Sites whose pointer register is out of range are permanently
    // unresolved (the verifier reports the broken function).
    for (uint32_t i = 0; i < states.size(); ++i)
        if (states[i].bad_ptr)
            taintAddressTakenParams();

    // --- fixpoint ---
    for (uint32_t nd = 0; nd < num_nodes_; ++nd)
        push(nd);
    while (!worklist_.empty()) {
        uint32_t nd = worklist_.back();
        worklist_.pop_back();
        on_worklist_[nd] = false;
        for (uint32_t to : edges_[nd]) {
            bool changed = unionInto(to, pts_[nd]);
            if (incomplete_[nd])
                changed = markIncomplete(to) || changed;
            if (changed)
                push(to);
        }
        if (!pts_[nd].empty() || incomplete_[nd])
            for (uint32_t to : taint_edges_[nd])
                if (markIncomplete(to))
                    push(to);
        for (uint32_t sidx : sites_by_node[nd])
            processSite(sidx);
    }

    // --- publish per-site results ---
    for (const SiteState& st : states) {
        const IcallRecord& rec = *st.rec;
        SiteTargets out;
        out.site = rec.site;
        out.func = st.func;
        out.block = rec.block;
        out.index = rec.index;
        out.ptr = rec.ptr;
        out.is_asm = rec.is_asm;
        if (st.bad_ptr) {
            out.incomplete = true;
        } else {
            uint32_t pnode = regNode(st.func, rec.ptr);
            out.incomplete = incomplete_[pnode];
            out.targets = pts_[pnode];
        }
        if (out.site != ir::kNoSite)
            sites_.emplace(out.site, std::move(out));
    }

    solved_ = true;
}

const std::map<ir::SiteId, SiteTargets>&
TargetSetAnalysis::sites()
{
    if (!solved_ || summaries_.size() < module_.numFunctions())
        solve();
    return sites_;
}

const SiteTargets*
TargetSetAnalysis::site(ir::SiteId s)
{
    const auto& m = sites();
    auto it = m.find(s);
    return it == m.end() ? nullptr : &it->second;
}

TargetSet
TargetSetAnalysis::regTargets(ir::FuncId f, ir::Reg r)
{
    sites(); // Ensure solved.
    TargetSet ts;
    if (f >= module_.numFunctions() || r >= module_.func(f).num_regs) {
        ts.incomplete = true;
        return ts;
    }
    uint32_t nd = regNode(f, r);
    ts.targets = pts_[nd];
    ts.incomplete = incomplete_[nd];
    return ts;
}

const std::vector<ir::FuncId>&
TargetSetAnalysis::addressTaken()
{
    sites();
    return address_taken_;
}

const std::vector<BadGlobalSlot>&
TargetSetAnalysis::badGlobalSlots()
{
    sites();
    return bad_slots_;
}

opt::FeasibilityMap
feasibilityMap(TargetSetAnalysis& analysis)
{
    opt::FeasibilityMap out;
    for (const auto& [sid, st] : analysis.sites()) {
        opt::SiteFeasibility f;
        f.complete = st.complete();
        f.targets = st.targets;
        out.emplace(sid, std::move(f));
    }
    return out;
}

// --- residual-attack-surface report ---

SurfaceReport
buildSurfaceReport(TargetSetAnalysis& analysis, uint32_t max_targets)
{
    SurfaceReport rep;
    const ir::Module& m = analysis.module();
    rep.functions = static_cast<uint32_t>(m.numFunctions());
    rep.address_taken =
        static_cast<uint32_t>(analysis.addressTaken().size());
    rep.max_targets = max_targets;

    const auto& sites = analysis.sites();
    uint64_t size_sum = 0;
    for (const auto& [sid, st] : sites) {
        ++rep.icall_sites;
        if (st.is_asm)
            ++rep.asm_sites;
        if (st.complete()) {
            ++rep.complete_sites;
            uint32_t sz = static_cast<uint32_t>(st.targets.size());
            ++rep.set_size_hist[sz];
            size_sum += sz;
            if (!st.is_asm && sz > 0 && sz <= max_targets)
                ++rep.switchpoline_eligible;
        } else {
            ++rep.incomplete_sites;
        }
    }
    if (rep.complete_sites > 0)
        rep.avg_targets = static_cast<double>(size_sum) /
                          static_cast<double>(rep.complete_sites);

    // The pool an unconstrained indirect branch ranges over.
    const double pool =
        static_cast<double>(std::max<uint32_t>(1, rep.address_taken));

    const harden::DefenseConfig configs[] = {
        harden::DefenseConfig::none(),
        harden::DefenseConfig::retpolinesOnly(),
        harden::DefenseConfig::retRetpolinesOnly(),
        harden::DefenseConfig::lviOnly(),
        harden::DefenseConfig::all(),
        harden::DefenseConfig::jumpSwitches(),
    };
    for (const harden::DefenseConfig& cfg : configs) {
        SurfaceDefenseRow row;
        row.defense = cfg.name();
        bool fwd_protected =
            harden::forwardSchemeFor(cfg) != ir::FwdScheme::kNone;
        double allowed_sum = 0;
        for (const auto& [sid, st] : sites) {
            bool prot = fwd_protected && !st.is_asm;
            if (prot)
                ++row.protected_icalls;
            else
                ++row.unprotected_icalls;
            // A protected, complete site is architecturally confined
            // to its static set; anything else may speculatively
            // reach the whole address-taken pool.
            double allowed =
                (prot && st.complete())
                    ? static_cast<double>(st.targets.size())
                    : pool;
            allowed_sum += allowed;
            row.residual_target_pairs +=
                static_cast<uint64_t>(allowed);
        }
        row.air = sites.empty()
                      ? 1.0
                      : 1.0 - allowed_sum /
                                  (pool * static_cast<double>(
                                              sites.size()));
        rep.defenses.push_back(std::move(row));
    }
    return rep;
}

std::string
renderSurfaceText(const SurfaceReport& rep)
{
    std::ostringstream os;
    os << "== residual attack surface: " << rep.module_name << " ==\n";
    os << "functions:            " << rep.functions << "\n";
    os << "address-taken pool:   " << rep.address_taken << "\n";
    os << "icall sites:          " << rep.icall_sites << " ("
       << rep.asm_sites << " asm)\n";
    os << "complete sites:       " << rep.complete_sites << "\n";
    os << "incomplete sites:     " << rep.incomplete_sites << "\n";
    os << "avg targets/site:     " << std::fixed << std::setprecision(2)
       << rep.avg_targets << " (complete sites)\n";
    os << "switchpoline-eligible:" << std::setw(6)
       << rep.switchpoline_eligible << " (complete, 1.."
       << rep.max_targets << " targets)\n";
    os << "\nset-size distribution (complete sites):\n";
    for (const auto& [sz, count] : rep.set_size_hist)
        os << "  |set| = " << std::setw(4) << sz << " : " << count
           << " sites\n";
    os << "\nper-defense residual surface:\n";
    os << "  " << std::left << std::setw(34) << "defense"
       << std::right << std::setw(10) << "protected"
       << std::setw(12) << "unprotected"
       << std::setw(16) << "target pairs"
       << std::setw(8) << "AIR" << "\n";
    for (const SurfaceDefenseRow& row : rep.defenses) {
        os << "  " << std::left << std::setw(34) << row.defense
           << std::right << std::setw(10) << row.protected_icalls
           << std::setw(12) << row.unprotected_icalls
           << std::setw(16) << row.residual_target_pairs
           << std::setw(8) << std::fixed << std::setprecision(4)
           << row.air << "\n";
    }
    return os.str();
}

std::string
renderSurfaceJson(const SurfaceReport& rep)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"surface\",\n";
    os << "  \"module\": \"" << rep.module_name << "\",\n";
    os << "  \"functions\": " << rep.functions << ",\n";
    os << "  \"address_taken\": " << rep.address_taken << ",\n";
    os << "  \"icall_sites\": " << rep.icall_sites << ",\n";
    os << "  \"asm_sites\": " << rep.asm_sites << ",\n";
    os << "  \"complete_sites\": " << rep.complete_sites << ",\n";
    os << "  \"incomplete_sites\": " << rep.incomplete_sites << ",\n";
    os << "  \"avg_targets\": " << std::fixed << std::setprecision(3)
       << rep.avg_targets << ",\n";
    os << "  \"max_targets\": " << rep.max_targets << ",\n";
    os << "  \"switchpoline_eligible\": " << rep.switchpoline_eligible
       << ",\n";
    os << "  \"set_size_hist\": {";
    bool first = true;
    for (const auto& [sz, count] : rep.set_size_hist) {
        os << (first ? "" : ", ") << "\"" << sz << "\": " << count;
        first = false;
    }
    os << "},\n";
    os << "  \"defenses\": [\n";
    for (size_t i = 0; i < rep.defenses.size(); ++i) {
        const SurfaceDefenseRow& row = rep.defenses[i];
        os << "    {\"defense\": \"" << row.defense << "\", "
           << "\"protected_icalls\": " << row.protected_icalls << ", "
           << "\"unprotected_icalls\": " << row.unprotected_icalls
           << ", "
           << "\"residual_target_pairs\": " << row.residual_target_pairs
           << ", "
           << "\"air\": " << std::fixed << std::setprecision(6)
           << row.air << "}"
           << (i + 1 < rep.defenses.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

} // namespace pibe::check
