/**
 * @file
 * Andersen-style function-pointer points-to analysis (target sets).
 *
 * See target_sets.h for the abstraction and DESIGN.md §10 for the
 * constraint rules and the soundness argument; DESIGN.md §11 covers
 * the solvers. Two engines compute the same least fixpoint:
 *
 *  - solveReference(): the original naive worklist — whole sets
 *    travel along every edge on every visit. O(E · |sets|) set
 *    unions; kept as the differential-testing oracle.
 *  - solveFast(): SCC condensation of the subset-edge graph
 *    (iterative Tarjan before propagation, lazy cycle detection for
 *    cycles formed by dynamically wired icall edges), difference
 *    propagation (only the delta since the last visit travels), and
 *    a hash-consed interned set pool with memoized unions (op-table
 *    seeding makes thousands of nodes share a handful of sets).
 *
 * Icall argument/return edges are added dynamically as the pointer's
 * set grows. Because the system is monotone and both engines run to
 * the least fixpoint, the solution is independent of processing order
 * and of engine — serial, parallel, fast and reference runs produce
 * bit-identical sets.
 */
#include "check/target_sets.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <cstdio>
#include <cstring>
#include <iomanip>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "harden/harden.h"

namespace pibe::check {

namespace {

/** Conventional module entry points (matches checks.cc roots). */
const char* const kDefaultRoots[] = {"kernel_init", "sys_dispatch",
                                     "main"};

bool
isComparison(ir::BinKind k)
{
    return k >= ir::BinKind::kEq;
}

SolverMode
defaultSolverMode()
{
    const char* env = std::getenv("PIBE_TARGET_SOLVER");
    if (env != nullptr &&
        (std::strcmp(env, "reference") == 0 ||
         std::strcmp(env, "naive") == 0))
        return SolverMode::kReference;
    return SolverMode::kFast;
}

} // namespace

TargetSetAnalysis::TargetSetAnalysis(const ir::Module& module,
                                     std::vector<std::string> roots)
    : module_(module), roots_(std::move(roots)),
      mode_(defaultSolverMode())
{
}

void
TargetSetAnalysis::setSolverMode(SolverMode m)
{
    if (mode_ == m)
        return;
    mode_ = m;
    solved_ = false;
}

void
TargetSetAnalysis::invalidateFunction(ir::FuncId f)
{
    if (f < summaries_.size())
        summaries_[f].dirty = true;
    solved_ = false;
}

void
TargetSetAnalysis::invalidateAll()
{
    for (FuncSummary& s : summaries_)
        s.dirty = true;
    solved_ = false;
}

uint32_t
TargetSetAnalysis::regNode(ir::FuncId f, ir::Reg r) const
{
    return reg_base_[f] + r;
}

uint32_t
TargetSetAnalysis::frameNode(ir::FuncId f, uint32_t slot) const
{
    return frame_base_[f] + slot;
}

uint32_t
TargetSetAnalysis::retNode(ir::FuncId f) const
{
    return ret_node_[f];
}

uint32_t
TargetSetAnalysis::globalNode(ir::GlobalId g) const
{
    return global_base_ + g;
}

void
TargetSetAnalysis::extractSummary(ir::FuncId f)
{
    FuncSummary& sum = summaries_[f];
    sum.constraints.clear();
    sum.icalls.clear();
    sum.dirty = false;
    ++summaries_extracted_;

    const ir::Function& fn = module_.func(f);
    const uint32_t nregs = fn.num_regs;
    auto reg_ok = [nregs](ir::Reg r) { return r < nregs; };

    for (ir::BlockId b = 0; b < fn.blocks.size(); ++b) {
        const auto& insts = fn.blocks[b].insts;
        for (uint32_t i = 0; i < insts.size(); ++i) {
            const ir::Instruction& in = insts[i];
            Constraint c;
            switch (in.op) {
              case ir::Opcode::kConst:
                if (ir::isFuncAddrValue(in.imm) && reg_ok(in.dst)) {
                    ir::FuncId t = ir::funcAddrTarget(in.imm);
                    if (t < module_.numFunctions()) {
                        c.kind = Constraint::Kind::kSeed;
                        c.dst = in.dst;
                        c.target = t;
                    } else {
                        // Address of a nonexistent function: an
                        // unresolvable value (lint.call-target flags
                        // the call site).
                        c.kind = Constraint::Kind::kIncomplete;
                        c.dst = in.dst;
                    }
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kFuncAddr:
                if (reg_ok(in.dst)) {
                    if (in.callee < module_.numFunctions()) {
                        c.kind = Constraint::Kind::kSeed;
                        c.dst = in.dst;
                        c.target = in.callee;
                    } else {
                        c.kind = Constraint::Kind::kIncomplete;
                        c.dst = in.dst;
                    }
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kMove:
                if (reg_ok(in.dst) && reg_ok(in.a)) {
                    c.kind = Constraint::Kind::kCopy;
                    c.dst = in.dst;
                    c.src = in.a;
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kBinOp:
                // Comparisons yield 0/1, never a pointer. Arithmetic
                // on a possible pointer escapes the abstraction: the
                // result is incomplete (we do not model forged
                // addresses), but carries no targets.
                if (!isComparison(in.bin) && reg_ok(in.dst)) {
                    for (ir::Reg src : {in.a, in.b}) {
                        if (!reg_ok(src))
                            continue;
                        c.kind = Constraint::Kind::kTaint;
                        c.dst = in.dst;
                        c.src = src;
                        sum.constraints.push_back(c);
                    }
                }
                break;
              case ir::Opcode::kLoad:
                if (reg_ok(in.dst)) {
                    if (in.global < module_.numGlobals()) {
                        // Field-insensitive: any slot may flow out.
                        c.kind = Constraint::Kind::kLoadGlobal;
                        c.dst = in.dst;
                        c.src = in.global;
                    } else {
                        c.kind = Constraint::Kind::kIncomplete;
                        c.dst = in.dst;
                    }
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kStore:
                if (reg_ok(in.b) && in.global < module_.numGlobals()) {
                    c.kind = Constraint::Kind::kStoreGlobal;
                    c.dst = in.global;
                    c.src = in.b;
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kFrameLoad:
                if (reg_ok(in.dst)) {
                    if (in.imm >= 0 &&
                        in.imm < static_cast<int64_t>(fn.frame_size)) {
                        c.kind = Constraint::Kind::kFrameLoad;
                        c.dst = in.dst;
                        c.src = static_cast<uint32_t>(in.imm);
                    } else {
                        c.kind = Constraint::Kind::kIncomplete;
                        c.dst = in.dst;
                    }
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kFrameStore:
                if (reg_ok(in.a) && in.imm >= 0 &&
                    in.imm < static_cast<int64_t>(fn.frame_size)) {
                    c.kind = Constraint::Kind::kFrameStore;
                    c.dst = static_cast<uint32_t>(in.imm);
                    c.src = in.a;
                    sum.constraints.push_back(c);
                }
                break;
              case ir::Opcode::kCall: {
                if (in.callee >= module_.numFunctions()) {
                    if (in.dst != ir::kNoReg && reg_ok(in.dst)) {
                        c.kind = Constraint::Kind::kIncomplete;
                        c.dst = in.dst;
                        sum.constraints.push_back(c);
                    }
                    break;
                }
                const ir::Function& callee = module_.func(in.callee);
                if (!callee.isDeclaration()) {
                    // Arguments flow into parameter registers.
                    uint32_t np = std::min(callee.num_params,
                                           callee.num_regs);
                    for (uint32_t ai = 0;
                         ai < in.args.size() && ai < np; ++ai) {
                        if (!reg_ok(in.args[ai]))
                            continue;
                        c.kind = Constraint::Kind::kCallArg;
                        c.dst = ai;
                        c.src = in.args[ai];
                        c.callee = in.callee;
                        sum.constraints.push_back(c);
                    }
                }
                if (in.dst != ir::kNoReg && reg_ok(in.dst)) {
                    // Declarations' return nodes are seeded
                    // incomplete, so this stays sound for them.
                    c = Constraint{};
                    c.kind = Constraint::Kind::kCallRet;
                    c.dst = in.dst;
                    c.callee = in.callee;
                    sum.constraints.push_back(c);
                }
                break;
              }
              case ir::Opcode::kICall: {
                IcallRecord rec;
                rec.site = in.site_id;
                rec.block = b;
                rec.index = i;
                rec.ptr = in.a;
                rec.dst = in.dst;
                rec.args = in.args;
                rec.is_asm = in.is_asm;
                sum.icalls.push_back(std::move(rec));
                break;
              }
              case ir::Opcode::kRet:
                if (in.a != ir::kNoReg && reg_ok(in.a)) {
                    c.kind = Constraint::Kind::kRet;
                    c.src = in.a;
                    sum.constraints.push_back(c);
                }
                break;
              default:
                break; // kBr/kCondBr/kSwitch/kSink move no values.
            }
        }
    }
}

void
TargetSetAnalysis::addEdge(uint32_t from, uint32_t to)
{
    edges_[from].push_back(to);
    bool changed = unionInto(to, pts_[from]);
    if (incomplete_[from])
        changed = markIncomplete(to) || changed;
    if (changed)
        push(to);
}

void
TargetSetAnalysis::addTaintEdge(uint32_t from, uint32_t to)
{
    taint_edges_[from].push_back(to);
    if (!pts_[from].empty() || incomplete_[from])
        if (markIncomplete(to))
            push(to);
}

bool
TargetSetAnalysis::unionInto(uint32_t node,
                             const std::vector<ir::FuncId>& add)
{
    if (add.empty())
        return false;
    std::vector<ir::FuncId>& dst = pts_[node];
    if (dst.empty()) {
        dst = add;
        return true;
    }
    std::vector<ir::FuncId> merged;
    merged.reserve(dst.size() + add.size());
    std::set_union(dst.begin(), dst.end(), add.begin(), add.end(),
                   std::back_inserter(merged));
    if (merged.size() == dst.size())
        return false;
    dst = std::move(merged);
    return true;
}

bool
TargetSetAnalysis::markIncomplete(uint32_t node)
{
    if (incomplete_[node])
        return false;
    incomplete_[node] = true;
    return true;
}

void
TargetSetAnalysis::push(uint32_t node)
{
    if (on_worklist_[node])
        return;
    on_worklist_[node] = true;
    worklist_.push_back(node);
}

void
TargetSetAnalysis::layoutNodes()
{
    // Rebuilt per solve: passes may grow regs.
    const size_t nf = module_.numFunctions();
    reg_base_.assign(nf, 0);
    frame_base_.assign(nf, 0);
    ret_node_.assign(nf, 0);
    uint32_t n = 0;
    for (ir::FuncId f = 0; f < nf; ++f) {
        const ir::Function& fn = module_.func(f);
        reg_base_[f] = n;
        n += fn.num_regs;
        frame_base_[f] = n;
        n += fn.frame_size;
        ret_node_[f] = n;
        n += 1;
    }
    global_base_ = n;
    n += static_cast<uint32_t>(module_.numGlobals());
    num_nodes_ = n;
}

void
TargetSetAnalysis::prepareSolve()
{
    const size_t nf = module_.numFunctions();
    if (summaries_.size() < nf)
        summaries_.resize(nf);
    for (ir::FuncId f = 0; f < nf; ++f)
        if (summaries_[f].dirty)
            extractSummary(f);
    ++solves_;
    layoutNodes();
}

void
TargetSetAnalysis::solve()
{
    prepareSolve();
    stats_ = SolverStats{};
    stats_.mode = mode_;
    stats_.nodes = num_nodes_;
    auto t0 = std::chrono::steady_clock::now();
    if (mode_ == SolverMode::kReference)
        solveReference();
    else
        solveFast();
    stats_.solve_ms =
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
    solved_ = true;
}

const std::vector<ir::FuncId>&
TargetSetAnalysis::nodePts(uint32_t node) const
{
    if (mode_ == SolverMode::kReference)
        return pts_[node];
    return pool_sets_[node_set_[node]];
}

void
TargetSetAnalysis::solveReference()
{
    const size_t nf = module_.numFunctions();
    const uint32_t n = num_nodes_;
    pool_sets_.clear();
    node_set_.clear();

    pts_.assign(n, {});
    incomplete_.assign(n, false);
    edges_.assign(n, {});
    taint_edges_.assign(n, {});
    worklist_.clear();
    on_worklist_.assign(n, false);
    sites_.clear();
    bad_slots_.clear();

    std::vector<ir::FuncId> taken;

    // --- seeds: global initializers ---
    for (ir::GlobalId g = 0; g < module_.numGlobals(); ++g) {
        const ir::Global& gl = module_.global(g);
        for (size_t slot = 0; slot < gl.init.size(); ++slot) {
            int64_t v = gl.init[slot];
            if (!ir::isFuncAddrValue(v))
                continue;
            ir::FuncId t = ir::funcAddrTarget(v);
            if (t < nf) {
                unionInto(globalNode(g), {t});
                taken.push_back(t);
            } else {
                bad_slots_.push_back(BadGlobalSlot{g, slot, v});
                markIncomplete(globalNode(g));
            }
        }
    }

    // --- seeds: root parameters come from outside the module ---
    auto seedRoot = [&](const std::string& name) {
        ir::FuncId f = module_.findFunction(name);
        if (f == ir::kInvalidFunc)
            return;
        const ir::Function& fn = module_.func(f);
        uint32_t np = std::min(fn.num_params, fn.num_regs);
        for (uint32_t p = 0; p < np; ++p)
            markIncomplete(regNode(f, p));
    };
    if (roots_.empty()) {
        for (const char* name : kDefaultRoots)
            seedRoot(name);
    } else {
        for (const std::string& name : roots_)
            seedRoot(name);
    }

    // --- static constraints ---
    for (ir::FuncId f = 0; f < nf; ++f) {
        const ir::Function& fn = module_.func(f);
        if (fn.isDeclaration())
            markIncomplete(retNode(f)); // Body unknown.
        for (const Constraint& c : summaries_[f].constraints) {
            switch (c.kind) {
              case Constraint::Kind::kSeed:
                unionInto(regNode(f, c.dst), {c.target});
                taken.push_back(c.target);
                break;
              case Constraint::Kind::kCopy:
                addEdge(regNode(f, c.src), regNode(f, c.dst));
                break;
              case Constraint::Kind::kTaint:
                addTaintEdge(regNode(f, c.src), regNode(f, c.dst));
                break;
              case Constraint::Kind::kLoadGlobal:
                addEdge(globalNode(c.src), regNode(f, c.dst));
                break;
              case Constraint::Kind::kStoreGlobal:
                addEdge(regNode(f, c.src), globalNode(c.dst));
                break;
              case Constraint::Kind::kFrameLoad:
                addEdge(frameNode(f, c.src), regNode(f, c.dst));
                break;
              case Constraint::Kind::kFrameStore:
                addEdge(regNode(f, c.src), frameNode(f, c.dst));
                break;
              case Constraint::Kind::kCallArg:
                addEdge(regNode(f, c.src), regNode(c.callee, c.dst));
                break;
              case Constraint::Kind::kCallRet:
                addEdge(retNode(c.callee), regNode(f, c.dst));
                break;
              case Constraint::Kind::kRet:
                addEdge(regNode(f, c.src), retNode(f));
                break;
              case Constraint::Kind::kIncomplete:
                markIncomplete(regNode(f, c.dst));
                break;
            }
        }
    }

    std::sort(taken.begin(), taken.end());
    taken.erase(std::unique(taken.begin(), taken.end()), taken.end());
    address_taken_ = std::move(taken);

    // --- icall sites: dynamic edges as pts(ptr) grows ---
    struct SiteState
    {
        ir::FuncId func;
        const IcallRecord* rec;
        std::vector<ir::FuncId> wired; // Targets already wired.
        bool incomplete_handled = false;
        bool bad_ptr = false;
    };
    std::vector<SiteState> states;
    std::vector<std::vector<uint32_t>> sites_by_node(num_nodes_);
    for (ir::FuncId f = 0; f < nf; ++f) {
        const ir::Function& fn = module_.func(f);
        for (const IcallRecord& rec : summaries_[f].icalls) {
            SiteState st;
            st.func = f;
            st.rec = &rec;
            st.bad_ptr = rec.ptr >= fn.num_regs;
            if (!st.bad_ptr)
                sites_by_node[regNode(f, rec.ptr)].push_back(
                    static_cast<uint32_t>(states.size()));
            states.push_back(std::move(st));
        }
    }

    // An icall through an unresolved pointer may invoke any
    // address-taken function: its parameters then hold unknown values.
    bool unresolved_icall_handled = false;
    auto taintAddressTakenParams = [&]() {
        if (unresolved_icall_handled)
            return;
        unresolved_icall_handled = true;
        for (ir::FuncId a : address_taken_) {
            const ir::Function& fa = module_.func(a);
            uint32_t np = std::min(fa.num_params, fa.num_regs);
            for (uint32_t p = 0; p < np; ++p)
                if (markIncomplete(regNode(a, p)))
                    push(regNode(a, p));
        }
    };

    auto processSite = [&](uint32_t idx) {
        SiteState& st = states[idx];
        const IcallRecord& rec = *st.rec;
        const ir::Function& fn = module_.func(st.func);
        uint32_t pnode = regNode(st.func, rec.ptr);
        // Wire newly discovered targets. Copy the current set: wiring
        // can grow pts_[pnode] itself (self-referential icalls), which
        // re-queues the node and re-runs this diff.
        std::vector<ir::FuncId> cur = pts_[pnode];
        if (cur.size() != st.wired.size()) {
            std::vector<ir::FuncId> fresh;
            std::set_difference(cur.begin(), cur.end(),
                                st.wired.begin(), st.wired.end(),
                                std::back_inserter(fresh));
            st.wired = cur;
            for (ir::FuncId t : fresh) {
                const ir::Function& tf = module_.func(t);
                if (!tf.isDeclaration() &&
                    tf.num_params == rec.args.size()) {
                    uint32_t np = std::min(tf.num_params, tf.num_regs);
                    for (uint32_t ai = 0; ai < np; ++ai)
                        if (rec.args[ai] < fn.num_regs)
                            addEdge(regNode(st.func, rec.args[ai]),
                                    regNode(t, ai));
                }
                if (rec.dst != ir::kNoReg && rec.dst < fn.num_regs)
                    addEdge(retNode(t), regNode(st.func, rec.dst));
            }
        }
        if (incomplete_[pnode] && !st.incomplete_handled) {
            st.incomplete_handled = true;
            if (rec.dst != ir::kNoReg && rec.dst < fn.num_regs)
                if (markIncomplete(regNode(st.func, rec.dst)))
                    push(regNode(st.func, rec.dst));
            taintAddressTakenParams();
        }
    };

    // Sites whose pointer register is out of range are permanently
    // unresolved (the verifier reports the broken function).
    for (uint32_t i = 0; i < states.size(); ++i)
        if (states[i].bad_ptr)
            taintAddressTakenParams();

    // --- fixpoint ---
    for (uint32_t nd = 0; nd < num_nodes_; ++nd)
        push(nd);
    while (!worklist_.empty()) {
        uint32_t nd = worklist_.back();
        worklist_.pop_back();
        on_worklist_[nd] = false;
        ++stats_.pops;
        for (uint32_t to : edges_[nd]) {
            bool changed = unionInto(to, pts_[nd]);
            if (incomplete_[nd])
                changed = markIncomplete(to) || changed;
            if (changed)
                push(to);
        }
        if (!pts_[nd].empty() || incomplete_[nd])
            for (uint32_t to : taint_edges_[nd])
                if (markIncomplete(to))
                    push(to);
        for (uint32_t sidx : sites_by_node[nd])
            processSite(sidx);
    }

    // --- publish per-site results ---
    for (const SiteState& st : states) {
        const IcallRecord& rec = *st.rec;
        SiteTargets out;
        out.site = rec.site;
        out.func = st.func;
        out.block = rec.block;
        out.index = rec.index;
        out.ptr = rec.ptr;
        out.is_asm = rec.is_asm;
        if (st.bad_ptr) {
            out.incomplete = true;
        } else {
            uint32_t pnode = regNode(st.func, rec.ptr);
            out.incomplete = incomplete_[pnode];
            out.targets = pts_[pnode];
        }
        if (out.site != ir::kNoSite)
            sites_.emplace(out.site, std::move(out));
    }
}

void
TargetSetAnalysis::solveFast()
{
    const size_t nf = module_.numFunctions();
    const uint32_t n = num_nodes_;

    // Reference-solver storage is unused in this mode.
    pts_.clear();
    edges_.clear();
    taint_edges_.clear();
    worklist_.clear();
    on_worklist_.clear();
    sites_.clear();
    bad_slots_.clear();

    // --- hash-consed interned set pool ---
    // Sets live once in pool_sets_ and are named by id; equal content
    // implies equal id, so set comparison is O(1) and the op-table
    // seeding (thousands of loads of the same table) shares storage.
    pool_sets_.clear();
    pool_sets_.emplace_back(); // id 0: the empty set
    std::unordered_map<uint64_t, std::vector<uint32_t>> intern_buckets;
    std::unordered_map<uint64_t, uint32_t> union_memo;
    auto hashSet = [](const std::vector<ir::FuncId>& v) {
        uint64_t h = 1469598103934665603ull;
        for (ir::FuncId f : v) {
            h ^= static_cast<uint64_t>(f) + 0x9e3779b97f4a7c15ull;
            h *= 1099511628211ull;
        }
        return h;
    };
    auto intern = [&](std::vector<ir::FuncId>&& v) -> uint32_t {
        if (v.empty())
            return 0;
        std::vector<uint32_t>& bucket = intern_buckets[hashSet(v)];
        for (uint32_t id : bucket)
            if (pool_sets_[id] == v)
                return id;
        uint32_t id = static_cast<uint32_t>(pool_sets_.size());
        pool_sets_.push_back(std::move(v));
        bucket.push_back(id);
        return id;
    };
    auto singleton = [&](ir::FuncId t) {
        return intern(std::vector<ir::FuncId>{t});
    };
    auto unionSets = [&](uint32_t a, uint32_t b) -> uint32_t {
        if (a == b || b == 0)
            return a;
        if (a == 0)
            return b;
        uint64_t key = a < b ? (static_cast<uint64_t>(a) << 32) | b
                             : (static_cast<uint64_t>(b) << 32) | a;
        auto it = union_memo.find(key);
        if (it != union_memo.end()) {
            ++stats_.union_memo_hits;
            return it->second;
        }
        const std::vector<ir::FuncId>& sa = pool_sets_[a];
        const std::vector<ir::FuncId>& sb = pool_sets_[b];
        std::vector<ir::FuncId> merged;
        merged.reserve(sa.size() + sb.size());
        std::set_union(sa.begin(), sa.end(), sb.begin(), sb.end(),
                       std::back_inserter(merged));
        uint32_t id;
        if (merged.size() == sa.size())
            id = a;
        else if (merged.size() == sb.size())
            id = b;
        else
            id = intern(std::move(merged));
        union_memo.emplace(key, id);
        return id;
    };

    // --- union-find: SCC members share a representative ---
    std::vector<uint32_t> uf(n);
    for (uint32_t i = 0; i < n; ++i)
        uf[i] = i;
    auto find = [&](uint32_t x) {
        while (uf[x] != x) {
            uf[x] = uf[uf[x]];
            x = uf[x];
        }
        return x;
    };

    // Per-node solver state; only representatives are authoritative.
    std::vector<uint32_t> cur(n, 0);  // interned points-to set
    std::vector<uint32_t> prop(n, 0); // part already sent to succs
    std::vector<bool> inc(n, false), inc_prop(n, false);
    std::vector<bool> taint_fired(n, false);
    std::vector<std::vector<uint32_t>> succ(n), taint(n);
    std::vector<std::vector<uint32_t>> site_of(n);

    std::vector<uint32_t> wl;
    std::vector<bool> on_wl(n, false);
    auto pushNode = [&](uint32_t nd) {
        if (!on_wl[nd]) {
            on_wl[nd] = true;
            wl.push_back(nd);
        }
    };
    auto markInc = [&](uint32_t nd) {
        uint32_t r = find(nd);
        if (!inc[r]) {
            inc[r] = true;
            pushNode(r);
        }
    };
    // Collapse `other` into `rep` (both must be representatives).
    // Resetting prop/inc_prop re-propagates the merged set to the
    // merged successor list — idempotent, so correct.
    auto mergeInto = [&](uint32_t rep, uint32_t other) {
        uf[other] = rep;
        cur[rep] = unionSets(cur[rep], cur[other]);
        inc[rep] = inc[rep] || inc[other];
        prop[rep] = 0;
        inc_prop[rep] = false;
        taint_fired[rep] = false;
        auto append = [](std::vector<uint32_t>& dst,
                         std::vector<uint32_t>& src) {
            dst.insert(dst.end(), src.begin(), src.end());
            std::vector<uint32_t>().swap(src);
        };
        append(succ[rep], succ[other]);
        append(taint[rep], taint[other]);
        append(site_of[rep], site_of[other]);
    };

    // --- seeds and static constraints (no propagation yet) ---
    std::vector<ir::FuncId> taken;
    for (ir::GlobalId g = 0; g < module_.numGlobals(); ++g) {
        const ir::Global& gl = module_.global(g);
        for (size_t slot = 0; slot < gl.init.size(); ++slot) {
            int64_t v = gl.init[slot];
            if (!ir::isFuncAddrValue(v))
                continue;
            ir::FuncId t = ir::funcAddrTarget(v);
            if (t < nf) {
                cur[globalNode(g)] =
                    unionSets(cur[globalNode(g)], singleton(t));
                taken.push_back(t);
            } else {
                bad_slots_.push_back(BadGlobalSlot{g, slot, v});
                inc[globalNode(g)] = true;
            }
        }
    }
    auto seedRoot = [&](const std::string& name) {
        ir::FuncId f = module_.findFunction(name);
        if (f == ir::kInvalidFunc)
            return;
        const ir::Function& fn = module_.func(f);
        uint32_t np = std::min(fn.num_params, fn.num_regs);
        for (uint32_t p = 0; p < np; ++p)
            inc[regNode(f, p)] = true;
    };
    if (roots_.empty()) {
        for (const char* name : kDefaultRoots)
            seedRoot(name);
    } else {
        for (const std::string& name : roots_)
            seedRoot(name);
    }

    auto addStaticEdge = [&](uint32_t from, uint32_t to) {
        succ[from].push_back(to);
        ++stats_.static_edges;
    };
    for (ir::FuncId f = 0; f < nf; ++f) {
        const ir::Function& fn = module_.func(f);
        if (fn.isDeclaration())
            inc[retNode(f)] = true; // Body unknown.
        for (const Constraint& c : summaries_[f].constraints) {
            switch (c.kind) {
              case Constraint::Kind::kSeed:
                cur[regNode(f, c.dst)] = unionSets(
                    cur[regNode(f, c.dst)], singleton(c.target));
                taken.push_back(c.target);
                break;
              case Constraint::Kind::kCopy:
                addStaticEdge(regNode(f, c.src), regNode(f, c.dst));
                break;
              case Constraint::Kind::kTaint:
                taint[regNode(f, c.src)].push_back(
                    regNode(f, c.dst));
                break;
              case Constraint::Kind::kLoadGlobal:
                addStaticEdge(globalNode(c.src), regNode(f, c.dst));
                break;
              case Constraint::Kind::kStoreGlobal:
                addStaticEdge(regNode(f, c.src), globalNode(c.dst));
                break;
              case Constraint::Kind::kFrameLoad:
                addStaticEdge(frameNode(f, c.src), regNode(f, c.dst));
                break;
              case Constraint::Kind::kFrameStore:
                addStaticEdge(regNode(f, c.src), frameNode(f, c.dst));
                break;
              case Constraint::Kind::kCallArg:
                addStaticEdge(regNode(f, c.src),
                              regNode(c.callee, c.dst));
                break;
              case Constraint::Kind::kCallRet:
                addStaticEdge(retNode(c.callee), regNode(f, c.dst));
                break;
              case Constraint::Kind::kRet:
                addStaticEdge(regNode(f, c.src), retNode(f));
                break;
              case Constraint::Kind::kIncomplete:
                inc[regNode(f, c.dst)] = true;
                break;
            }
        }
    }

    std::sort(taken.begin(), taken.end());
    taken.erase(std::unique(taken.begin(), taken.end()), taken.end());
    address_taken_ = std::move(taken);

    // --- icall sites (dynamic edges wired as pts(ptr) grows) ---
    struct SiteState
    {
        ir::FuncId func;
        const IcallRecord* rec;
        uint32_t wired = 0; // Interned set of already-wired targets.
        bool incomplete_handled = false;
        bool bad_ptr = false;
    };
    std::vector<SiteState> states;
    for (ir::FuncId f = 0; f < nf; ++f) {
        const ir::Function& fn = module_.func(f);
        for (const IcallRecord& rec : summaries_[f].icalls) {
            SiteState st;
            st.func = f;
            st.rec = &rec;
            st.bad_ptr = rec.ptr >= fn.num_regs;
            if (!st.bad_ptr)
                site_of[regNode(f, rec.ptr)].push_back(
                    static_cast<uint32_t>(states.size()));
            states.push_back(st);
        }
    }

    // --- offline SCC condensation ---
    // Collapsing copy cycles up front turns the deep-chain /
    // op-table-cycle shapes into single nodes before any set moves.
    // Two phases: a cheap Kahn peel strips the (usually dominant)
    // acyclic portion and yields a topological order for the peeled
    // nodes; iterative Tarjan then condenses only the unpeeled
    // residue, which is exactly the cycles plus what they reach. On
    // an acyclic graph the residue is empty and Tarjan never runs.
    std::vector<uint32_t> topo; // Peeled nodes, topological order.
    {
        std::vector<uint32_t> indeg(n, 0);
        for (uint32_t v = 0; v < n; ++v)
            for (uint32_t w : succ[v])
                ++indeg[w];
        topo.reserve(n);
        for (uint32_t v = 0; v < n; ++v)
            if (indeg[v] == 0)
                topo.push_back(v);
        for (size_t i = 0; i < topo.size(); ++i)
            for (uint32_t w : succ[topo[i]])
                if (--indeg[w] == 0)
                    topo.push_back(w);

        if (topo.size() < n) {
            // Residue exists: condense it with iterative Tarjan.
            // Peeled nodes are marked visited-off-stack so the DFS
            // treats edges into them as cross edges.
            constexpr uint32_t kDone = 0xffffffffu;
            std::vector<uint32_t> index(n, 0), low(n, 0);
            for (uint32_t v : topo)
                index[v] = kDone;
            std::vector<bool> on_stack(n, false);
            std::vector<uint32_t> scc_stack;
            struct Frame
            {
                uint32_t node;
                uint32_t child;
            };
            std::vector<Frame> dfs;
            std::vector<uint32_t> members;
            uint32_t next_index = 1;
            for (uint32_t root = 0; root < n; ++root) {
                if (index[root] != 0)
                    continue;
                dfs.push_back(Frame{root, 0});
                while (!dfs.empty()) {
                    Frame& fr = dfs.back();
                    uint32_t v = fr.node;
                    if (fr.child == 0) {
                        index[v] = low[v] = next_index++;
                        scc_stack.push_back(v);
                        on_stack[v] = true;
                    }
                    if (fr.child < succ[v].size()) {
                        uint32_t w = succ[v][fr.child++];
                        if (index[w] == 0) {
                            dfs.push_back(Frame{w, 0});
                        } else if (on_stack[w]) {
                            low[v] = std::min(low[v], index[w]);
                        }
                        continue;
                    }
                    if (low[v] == index[v]) {
                        members.clear();
                        while (true) {
                            uint32_t w = scc_stack.back();
                            scc_stack.pop_back();
                            on_stack[w] = false;
                            members.push_back(w);
                            if (w == v)
                                break;
                        }
                        if (members.size() > 1) {
                            uint32_t rep = *std::min_element(
                                members.begin(), members.end());
                            for (uint32_t w : members)
                                if (w != rep)
                                    mergeInto(rep, w);
                            stats_.scc_collapsed +=
                                static_cast<uint32_t>(
                                    members.size() - 1);
                        }
                    }
                    dfs.pop_back();
                    if (!dfs.empty()) {
                        uint32_t p = dfs.back().node;
                        low[p] = std::min(low[p], low[v]);
                    }
                }
            }
        }
    }

    // Normalize representative edge lists after collapsing: remap
    // through find, dedup, drop subset self-loops (taint self-loops
    // stay: an active node with a taint edge onto itself is
    // incomplete). With no SCCs the lists are already canonical
    // enough — duplicates are harmless (propagation is idempotent).
    if (stats_.scc_collapsed > 0) {
        for (uint32_t nd = 0; nd < n; ++nd) {
            if (find(nd) != nd)
                continue;
            auto norm = [&](std::vector<uint32_t>& es,
                            bool drop_self) {
                for (uint32_t& e : es)
                    e = find(e);
                std::sort(es.begin(), es.end());
                es.erase(std::unique(es.begin(), es.end()),
                         es.end());
                if (drop_self)
                    es.erase(std::remove(es.begin(), es.end(), nd),
                             es.end());
            };
            norm(succ[nd], true);
            norm(taint[nd], false);
        }
    }

    // An icall through an unresolved pointer may invoke any
    // address-taken function: its parameters then hold unknown values.
    bool unresolved_icall_handled = false;
    auto taintAddressTakenParams = [&]() {
        if (unresolved_icall_handled)
            return;
        unresolved_icall_handled = true;
        for (ir::FuncId a : address_taken_) {
            const ir::Function& fa = module_.func(a);
            uint32_t np = std::min(fa.num_params, fa.num_regs);
            for (uint32_t p = 0; p < np; ++p)
                markInc(regNode(a, p));
        }
    };

    auto addDynEdge = [&](uint32_t from, uint32_t to) {
        uint32_t rf = find(from);
        uint32_t rt = find(to);
        if (rf == rt)
            return;
        succ[rf].push_back(rt);
        ++stats_.dynamic_edges;
        // New edges carry the source's full current set immediately;
        // later visits of rf send deltas only.
        uint32_t ns = unionSets(cur[rt], cur[rf]);
        bool changed = ns != cur[rt];
        cur[rt] = ns;
        if (inc[rf] && !inc[rt]) {
            inc[rt] = true;
            changed = true;
        }
        if (changed)
            pushNode(rt);
    };

    auto processSite = [&](uint32_t idx) {
        SiteState& st = states[idx];
        const IcallRecord& rec = *st.rec;
        const ir::Function& fn = module_.func(st.func);
        if (st.bad_ptr)
            return;
        uint32_t pn = find(regNode(st.func, rec.ptr));
        uint32_t c = cur[pn];
        if (c != st.wired) {
            // Equal content implies equal id, so the diff is exactly
            // the targets discovered since the last visit.
            std::vector<ir::FuncId> fresh;
            {
                const std::vector<ir::FuncId>& cs = pool_sets_[c];
                const std::vector<ir::FuncId>& ws =
                    pool_sets_[st.wired];
                std::set_difference(cs.begin(), cs.end(), ws.begin(),
                                    ws.end(),
                                    std::back_inserter(fresh));
            }
            st.wired = c;
            for (ir::FuncId t : fresh) {
                const ir::Function& tf = module_.func(t);
                if (!tf.isDeclaration() &&
                    tf.num_params == rec.args.size()) {
                    uint32_t np = std::min(tf.num_params, tf.num_regs);
                    for (uint32_t ai = 0; ai < np; ++ai)
                        if (rec.args[ai] < fn.num_regs)
                            addDynEdge(
                                regNode(st.func, rec.args[ai]),
                                regNode(t, ai));
                }
                if (rec.dst != ir::kNoReg && rec.dst < fn.num_regs)
                    addDynEdge(retNode(t),
                               regNode(st.func, rec.dst));
            }
        }
        if (inc[pn] && !st.incomplete_handled) {
            st.incomplete_handled = true;
            if (rec.dst != ir::kNoReg && rec.dst < fn.num_regs)
                markInc(regNode(st.func, rec.dst));
            taintAddressTakenParams();
        }
    };

    // Sites whose pointer register is out of range are permanently
    // unresolved (the verifier reports the broken function).
    for (const SiteState& st : states)
        if (st.bad_ptr)
            taintAddressTakenParams();

    // --- lazy cycle detection ---
    // Dynamically wired icall edges can close new cycles the offline
    // pass never saw. When a propagation leaves src and dst with the
    // same non-empty set, suspect a cycle and run one bounded search
    // for a back path; collapse it if found (Hardekopf-Lin LCD).
    std::unordered_set<uint64_t> lcd_attempted;
    std::vector<std::pair<uint32_t, uint32_t>> lcd_pending;
    constexpr size_t kLcdVisitCap = 4096;
    auto lcdTry = [&](uint32_t xraw, uint32_t yraw) {
        uint32_t x = find(xraw);
        uint32_t y = find(yraw);
        if (x == y)
            return;
        uint64_t key = (static_cast<uint64_t>(x) << 32) | y;
        if (!lcd_attempted.insert(key).second)
            return;
        std::unordered_map<uint32_t, uint32_t> parent;
        std::vector<uint32_t> stack{y};
        parent.emplace(y, y);
        bool found = false;
        size_t visited = 0;
        while (!stack.empty() && !found) {
            uint32_t v = stack.back();
            stack.pop_back();
            if (++visited > kLcdVisitCap)
                break;
            for (uint32_t wraw : succ[v]) {
                uint32_t w = find(wraw);
                if (w == v || !parent.emplace(w, v).second)
                    continue;
                if (w == x) {
                    found = true;
                    break;
                }
                // Cycle members converge to the same set; restricting
                // the search keeps it near the suspected cycle.
                if (cur[w] == cur[x])
                    stack.push_back(w);
            }
        }
        if (!found)
            return;
        uint32_t rep = x;
        uint32_t v = parent.at(x);
        while (true) {
            uint32_t rv = find(v);
            if (rv != rep) {
                mergeInto(rep, rv);
                ++stats_.lcd_collapsed;
            }
            if (v == y)
                break;
            v = parent.at(v);
        }
        pushNode(rep);
    };

    // --- difference-propagation fixpoint ---
    // Only active nodes (a seeded set or an incompleteness bit) can
    // contribute anything; everything else waits to be woken by a
    // predecessor. The reference solver pushes every node instead —
    // same fixpoint, monotonicity makes the seeds sufficient.
    // Seeding in reverse topological order makes the LIFO worklist
    // drain the acyclic portion downstream in near one pass.
    if (topo.size() < n) {
        std::vector<bool> peeled(n, false);
        for (uint32_t v : topo)
            peeled[v] = true;
        for (uint32_t nd = 0; nd < n; ++nd)
            if (!peeled[nd] && find(nd) == nd &&
                (cur[nd] != 0 || inc[nd]))
                pushNode(nd);
    }
    for (size_t i = topo.size(); i-- > 0;) {
        uint32_t nd = topo[i];
        if (find(nd) == nd && (cur[nd] != 0 || inc[nd]))
            pushNode(nd);
    }

    while (!wl.empty()) {
        uint32_t nd = wl.back();
        wl.pop_back();
        on_wl[nd] = false;
        if (find(nd) != nd)
            continue; // Merged away while queued.
        ++stats_.pops;

        if ((cur[nd] != 0 || inc[nd]) && !taint_fired[nd]) {
            taint_fired[nd] = true;
            for (size_t i = 0; i < taint[nd].size(); ++i)
                markInc(taint[nd][i]);
        }

        uint32_t c = cur[nd];
        uint32_t delta = 0;
        if (c != prop[nd]) {
            if (prop[nd] == 0) {
                delta = c;
            } else {
                std::vector<ir::FuncId> d;
                const std::vector<ir::FuncId>& cs = pool_sets_[c];
                const std::vector<ir::FuncId>& ps =
                    pool_sets_[prop[nd]];
                std::set_difference(cs.begin(), cs.end(), ps.begin(),
                                    ps.end(), std::back_inserter(d));
                delta = intern(std::move(d));
            }
        }
        bool push_inc = inc[nd] && !inc_prop[nd];
        if (delta != 0 || push_inc) {
            for (size_t i = 0; i < succ[nd].size(); ++i) {
                uint32_t s = find(succ[nd][i]);
                if (s == nd)
                    continue;
                uint32_t ns = unionSets(cur[s], delta);
                bool changed = ns != cur[s];
                cur[s] = ns;
                if (push_inc && !inc[s]) {
                    inc[s] = true;
                    changed = true;
                }
                if (changed)
                    pushNode(s);
                else if (delta != 0 && c != 0 && cur[s] == c)
                    lcd_pending.emplace_back(nd, s);
            }
            prop[nd] = c;
            inc_prop[nd] = inc[nd];
        }

        for (size_t i = 0; i < site_of[nd].size(); ++i)
            processSite(site_of[nd][i]);

        if (!lcd_pending.empty()) {
            for (auto [x, y] : lcd_pending)
                lcdTry(x, y);
            lcd_pending.clear();
        }
    }

    stats_.interned_sets =
        static_cast<uint32_t>(pool_sets_.size() - 1);

    // --- publish per-node and per-site results ---
    node_set_.assign(n, 0);
    incomplete_.assign(n, false);
    for (uint32_t nd = 0; nd < n; ++nd) {
        uint32_t r = find(nd);
        node_set_[nd] = cur[r];
        incomplete_[nd] = inc[r];
    }

    for (const SiteState& st : states) {
        const IcallRecord& rec = *st.rec;
        SiteTargets out;
        out.site = rec.site;
        out.func = st.func;
        out.block = rec.block;
        out.index = rec.index;
        out.ptr = rec.ptr;
        out.is_asm = rec.is_asm;
        if (st.bad_ptr) {
            out.incomplete = true;
        } else {
            uint32_t pn = regNode(st.func, rec.ptr);
            out.incomplete = incomplete_[pn];
            out.targets = nodePts(pn);
        }
        if (out.site != ir::kNoSite)
            sites_.emplace(out.site, std::move(out));
    }
}

const std::map<ir::SiteId, SiteTargets>&
TargetSetAnalysis::sites()
{
    if (!solved_ || summaries_.size() < module_.numFunctions())
        solve();
    return sites_;
}

const SiteTargets*
TargetSetAnalysis::site(ir::SiteId s)
{
    const auto& m = sites();
    auto it = m.find(s);
    return it == m.end() ? nullptr : &it->second;
}

TargetSet
TargetSetAnalysis::regTargets(ir::FuncId f, ir::Reg r)
{
    sites(); // Ensure solved.
    TargetSet ts;
    if (f >= module_.numFunctions() || r >= module_.func(f).num_regs) {
        ts.incomplete = true;
        return ts;
    }
    uint32_t nd = regNode(f, r);
    ts.targets = nodePts(nd);
    ts.incomplete = nodeIncomplete(nd);
    return ts;
}

const std::vector<ir::FuncId>&
TargetSetAnalysis::addressTaken()
{
    sites();
    return address_taken_;
}

const std::vector<BadGlobalSlot>&
TargetSetAnalysis::badGlobalSlots()
{
    sites();
    return bad_slots_;
}

opt::FeasibilityMap
feasibilityMap(TargetSetAnalysis& analysis)
{
    opt::FeasibilityMap out;
    for (const auto& [sid, st] : analysis.sites()) {
        opt::SiteFeasibility f;
        f.complete = st.complete();
        f.targets = st.targets;
        out.emplace(sid, std::move(f));
    }
    return out;
}

// --- residual-attack-surface report ---

SurfaceReport
buildSurfaceReport(TargetSetAnalysis& analysis, uint32_t max_targets)
{
    SurfaceReport rep;
    const ir::Module& m = analysis.module();
    rep.functions = static_cast<uint32_t>(m.numFunctions());
    rep.address_taken =
        static_cast<uint32_t>(analysis.addressTaken().size());
    rep.max_targets = max_targets;

    const auto& sites = analysis.sites();
    uint64_t size_sum = 0;
    for (const auto& [sid, st] : sites) {
        ++rep.icall_sites;
        if (st.is_asm)
            ++rep.asm_sites;
        if (st.complete()) {
            ++rep.complete_sites;
            uint32_t sz = static_cast<uint32_t>(st.targets.size());
            ++rep.set_size_hist[sz];
            size_sum += sz;
            if (!st.is_asm && sz > 0 && sz <= max_targets)
                ++rep.switchpoline_eligible;
        } else {
            ++rep.incomplete_sites;
        }
    }
    if (rep.complete_sites > 0)
        rep.avg_targets = static_cast<double>(size_sum) /
                          static_cast<double>(rep.complete_sites);

    // The pool an unconstrained indirect branch ranges over.
    const double pool =
        static_cast<double>(std::max<uint32_t>(1, rep.address_taken));

    const harden::DefenseConfig configs[] = {
        harden::DefenseConfig::none(),
        harden::DefenseConfig::retpolinesOnly(),
        harden::DefenseConfig::retRetpolinesOnly(),
        harden::DefenseConfig::lviOnly(),
        harden::DefenseConfig::all(),
        harden::DefenseConfig::jumpSwitches(),
    };
    for (const harden::DefenseConfig& cfg : configs) {
        SurfaceDefenseRow row;
        row.defense = cfg.name();
        bool fwd_protected =
            harden::forwardSchemeFor(cfg) != ir::FwdScheme::kNone;
        double allowed_sum = 0;
        for (const auto& [sid, st] : sites) {
            bool prot = fwd_protected && !st.is_asm;
            if (prot)
                ++row.protected_icalls;
            else
                ++row.unprotected_icalls;
            // A protected, complete site is architecturally confined
            // to its static set; anything else may speculatively
            // reach the whole address-taken pool.
            double allowed =
                (prot && st.complete())
                    ? static_cast<double>(st.targets.size())
                    : pool;
            allowed_sum += allowed;
            row.residual_target_pairs +=
                static_cast<uint64_t>(allowed);
        }
        row.air = sites.empty()
                      ? 1.0
                      : 1.0 - allowed_sum /
                                  (pool * static_cast<double>(
                                              sites.size()));
        rep.defenses.push_back(std::move(row));
    }
    return rep;
}

std::string
renderSurfaceText(const SurfaceReport& rep)
{
    std::ostringstream os;
    os << "== residual attack surface: " << rep.module_name << " ==\n";
    os << "functions:            " << rep.functions << "\n";
    os << "address-taken pool:   " << rep.address_taken << "\n";
    os << "icall sites:          " << rep.icall_sites << " ("
       << rep.asm_sites << " asm)\n";
    os << "complete sites:       " << rep.complete_sites << "\n";
    os << "incomplete sites:     " << rep.incomplete_sites << "\n";
    os << "avg targets/site:     " << std::fixed << std::setprecision(2)
       << rep.avg_targets << " (complete sites)\n";
    os << "switchpoline-eligible:" << std::setw(6)
       << rep.switchpoline_eligible << " (complete, 1.."
       << rep.max_targets << " targets)\n";
    os << "\nset-size distribution (complete sites):\n";
    for (const auto& [sz, count] : rep.set_size_hist)
        os << "  |set| = " << std::setw(4) << sz << " : " << count
           << " sites\n";
    os << "\nper-defense residual surface:\n";
    os << "  " << std::left << std::setw(34) << "defense"
       << std::right << std::setw(10) << "protected"
       << std::setw(12) << "unprotected"
       << std::setw(16) << "target pairs"
       << std::setw(8) << "AIR" << "\n";
    for (const SurfaceDefenseRow& row : rep.defenses) {
        os << "  " << std::left << std::setw(34) << row.defense
           << std::right << std::setw(10) << row.protected_icalls
           << std::setw(12) << row.unprotected_icalls
           << std::setw(16) << row.residual_target_pairs
           << std::setw(8) << std::fixed << std::setprecision(4)
           << row.air << "\n";
    }
    return os.str();
}

std::string
renderSurfaceJson(const SurfaceReport& rep)
{
    std::ostringstream os;
    os << "{\n";
    os << "  \"bench\": \"surface\",\n";
    os << "  \"module\": \"" << rep.module_name << "\",\n";
    os << "  \"functions\": " << rep.functions << ",\n";
    os << "  \"address_taken\": " << rep.address_taken << ",\n";
    os << "  \"icall_sites\": " << rep.icall_sites << ",\n";
    os << "  \"asm_sites\": " << rep.asm_sites << ",\n";
    os << "  \"complete_sites\": " << rep.complete_sites << ",\n";
    os << "  \"incomplete_sites\": " << rep.incomplete_sites << ",\n";
    os << "  \"avg_targets\": " << std::fixed << std::setprecision(3)
       << rep.avg_targets << ",\n";
    os << "  \"max_targets\": " << rep.max_targets << ",\n";
    os << "  \"switchpoline_eligible\": " << rep.switchpoline_eligible
       << ",\n";
    os << "  \"set_size_hist\": {";
    bool first = true;
    for (const auto& [sz, count] : rep.set_size_hist) {
        os << (first ? "" : ", ") << "\"" << sz << "\": " << count;
        first = false;
    }
    os << "},\n";
    os << "  \"defenses\": [\n";
    for (size_t i = 0; i < rep.defenses.size(); ++i) {
        const SurfaceDefenseRow& row = rep.defenses[i];
        os << "    {\"defense\": \"" << row.defense << "\", "
           << "\"protected_icalls\": " << row.protected_icalls << ", "
           << "\"unprotected_icalls\": " << row.unprotected_icalls
           << ", "
           << "\"residual_target_pairs\": " << row.residual_target_pairs
           << ", "
           << "\"air\": " << std::fixed << std::setprecision(6)
           << row.air << "}"
           << (i + 1 < rep.defenses.size() ? "," : "") << "\n";
    }
    os << "  ]\n";
    os << "}\n";
    return os.str();
}

} // namespace pibe::check
