/**
 * @file
 * Per-function analysis cache.
 *
 * Checkers share analyses (the coverage auditor and the lints both
 * want reachability; the dead-store and use-before-def lints both sit
 * on liveness/assignment facts), so the manager computes each analysis
 * lazily, once per function, and hands out const references. A pass
 * that mutates a function must invalidate() it (or invalidateAll()
 * after a module-wide pass) before querying again.
 */
#ifndef PIBE_CHECK_ANALYSIS_MANAGER_H_
#define PIBE_CHECK_ANALYSIS_MANAGER_H_

#include <memory>
#include <string>
#include <vector>

#include "check/cfg.h"
#include "check/dataflow.h"
#include "check/dominators.h"
#include "check/target_sets.h"

namespace pibe::check {

class AnalysisManager
{
  public:
    explicit AnalysisManager(const ir::Module& module)
        : module_(module), entries_(module.numFunctions())
    {
    }

    const ir::Module& module() const { return module_; }

    /** @pre func has a body (declarations have no analyses). */
    const Cfg& cfg(ir::FuncId f);
    const DomTree& domTree(ir::FuncId f);
    const Liveness& liveness(ir::FuncId f);
    const FrameLiveness& frameLiveness(ir::FuncId f);
    const ReachingDefs& reachingDefs(ir::FuncId f);
    const DefiniteAssignment& definiteAssignment(ir::FuncId f);

    /**
     * The module-level feasible-target analysis (built lazily once,
     * then kept incrementally up to date through invalidate()). When
     * `roots` differs from the cached instance's roots the analysis is
     * rebuilt from scratch.
     */
    TargetSetAnalysis&
    targetSets(const std::vector<std::string>& roots = {})
    {
        if (targets_ && targets_->roots() != roots)
            targets_.reset();
        if (!targets_) {
            targets_ =
                std::make_unique<TargetSetAnalysis>(module_, roots);
            ++computations_;
        } else {
            ++hits_;
        }
        return *targets_;
    }

    /** Drop every cached analysis of `f` (call after mutating it). */
    void
    invalidate(ir::FuncId f)
    {
        // Functions added after construction have nothing cached yet.
        if (f < entries_.size())
            entries_[f] = Entry{};
        if (targets_)
            targets_->invalidateFunction(f);
    }

    /** Drop all cached analyses (call after a module-wide pass). */
    void
    invalidateAll()
    {
        for (Entry& e : entries_)
            e = Entry{};
        if (targets_)
            targets_->invalidateAll();
    }

    /** Analyses computed since construction (cache-miss counter). */
    size_t computations() const { return computations_; }

    /** Cached results served since construction (cache-hit counter). */
    size_t hits() const { return hits_; }

  private:
    struct Entry
    {
        std::unique_ptr<Cfg> cfg;
        std::unique_ptr<DomTree> dom;
        std::unique_ptr<Liveness> live;
        std::unique_ptr<FrameLiveness> frame_live;
        std::unique_ptr<ReachingDefs> reaching;
        std::unique_ptr<DefiniteAssignment> assigned;
    };

    Entry&
    entry(ir::FuncId f)
    {
        PIBE_ASSERT(f < module_.numFunctions(), "bad FuncId ", f);
        PIBE_ASSERT(!module_.func(f).isDeclaration(),
                    "analysis of declaration ", module_.func(f).name);
        // Passes may add functions (ICP continuation splits never do,
        // but future passes might); grow rather than assert so one
        // manager can span a whole pass pipeline.
        if (f >= entries_.size())
            entries_.resize(module_.numFunctions());
        return entries_[f];
    }

    const ir::Module& module_;
    std::vector<Entry> entries_;
    std::unique_ptr<TargetSetAnalysis> targets_;
    size_t computations_ = 0;
    size_t hits_ = 0;
};

} // namespace pibe::check

#endif // PIBE_CHECK_ANALYSIS_MANAGER_H_
