/**
 * @file
 * Pass sandwich: run the checker suite between pipeline passes and
 * attribute new findings to the pass that introduced them.
 *
 * The pipeline calls afterPass() once per stage (including an "input"
 * stage before any pass). Each call runs the suite, diffs against the
 * previous stage, stamps every fresh diagnostic with the pass name,
 * and reports whether the stage *regressed* — i.e. raised the error
 * count of some check id above the previous stage's. The count
 * comparison (rather than a pure location diff) keeps pre-existing
 * findings from re-triggering when a pass renumbers blocks or sites.
 */
#ifndef PIBE_CHECK_SANDWICH_H_
#define PIBE_CHECK_SANDWICH_H_

#include <map>
#include <string>
#include <vector>

#include "check/checks.h"

namespace pibe::check {

/** Outcome of one sandwich stage. */
struct StageResult
{
    std::string pass;
    /** Diagnostics not present (by location) at the previous stage,
     *  each with Diagnostic::pass set to the stage name. */
    std::vector<Diagnostic> fresh;
    /** Check ids whose error count exceeds the previous stage's. */
    std::vector<std::string> regressed_checks;
    /** Totals after this stage (all findings, not just fresh). */
    size_t errors = 0;
    size_t warnings = 0;

    bool regressed() const { return !regressed_checks.empty(); }

    /** First fresh error-severity diagnostic, or nullptr. */
    const Diagnostic* firstFreshError() const;
};

class PassSandwich
{
  public:
    /**
     * Run the suite over `module` with `opts` and record the stage.
     * The first call establishes the baseline: its findings are all
     * "fresh" but never count as a regression.
     *
     * When `am` is provided the suite reuses its cached per-function
     * analyses — the incremental contract: the caller invalidates
     * exactly the functions the preceding pass touched, so untouched
     * functions are re-audited from cache instead of recomputed.
     */
    const StageResult& afterPass(const std::string& pass,
                                 const ir::Module& module,
                                 const CheckOptions& opts,
                                 AnalysisManager* am = nullptr);

    const std::vector<StageResult>& stages() const { return stages_; }

    /** Fresh diagnostics of every stage, in stage order. */
    std::vector<Diagnostic> allFresh() const;

  private:
    std::vector<StageResult> stages_;
    /** Location keys seen at the previous stage. */
    std::vector<std::string> prev_keys_;
    /** Error count per check id at the previous stage. */
    std::map<std::string, size_t> prev_errors_;
    bool have_baseline_ = false;
};

} // namespace pibe::check

#endif // PIBE_CHECK_SANDWICH_H_
