#include "check/diagnostic.h"

#include <algorithm>
#include <sstream>
#include <tuple>

namespace pibe::check {

const char*
severityName(Severity s)
{
    switch (s) {
      case Severity::kNote:    return "note";
      case Severity::kWarning: return "warning";
      case Severity::kError:   return "error";
    }
    return "?";
}

namespace {

std::string
jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size() + 2);
    for (char c : s) {
        switch (c) {
          case '"':  out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

} // namespace

std::string
Diagnostic::render() const
{
    std::ostringstream os;
    os << severityName(severity) << "[" << check_id << "]";
    if (!pass.empty())
        os << " after " << pass;
    if (func != ir::kInvalidFunc) {
        os << " " << func_name;
        if (inst >= 0)
            os << " bb" << block << "[" << inst << "]";
    }
    if (site != ir::kNoSite)
        os << " (site " << site << ")";
    os << ": " << message;
    if (!hint.empty())
        os << " (hint: " << hint << ")";
    return os.str();
}

std::string
Diagnostic::renderJson() const
{
    std::ostringstream os;
    os << "{\"check\":\"" << jsonEscape(check_id) << "\""
       << ",\"severity\":\"" << severityName(severity) << "\"";
    if (!pass.empty())
        os << ",\"pass\":\"" << jsonEscape(pass) << "\"";
    if (func != ir::kInvalidFunc) {
        os << ",\"func\":\"" << jsonEscape(func_name) << "\""
           << ",\"func_id\":" << func;
        if (inst >= 0)
            os << ",\"block\":" << block << ",\"inst\":" << inst;
    }
    if (site != ir::kNoSite)
        os << ",\"site\":" << site;
    os << ",\"message\":\"" << jsonEscape(message) << "\"";
    if (!hint.empty())
        os << ",\"hint\":\"" << jsonEscape(hint) << "\"";
    os << "}";
    return os.str();
}

void
sortDiagnostics(std::vector<Diagnostic>& diags)
{
    // kInvalidFunc is the largest FuncId, so module-scoped findings
    // naturally sort last.
    auto key = [](const Diagnostic& d) {
        return std::make_tuple(d.func, d.block, d.inst,
                               std::cref(d.check_id), d.site,
                               std::cref(d.message));
    };
    std::stable_sort(diags.begin(), diags.end(),
                     [&](const Diagnostic& a, const Diagnostic& b) {
                         return key(a) < key(b);
                     });
}

size_t
countSeverity(const std::vector<Diagnostic>& diags, Severity s)
{
    size_t n = 0;
    for (const Diagnostic& d : diags)
        n += d.severity == s;
    return n;
}

std::string
renderText(const std::vector<Diagnostic>& diags)
{
    std::string out;
    for (const Diagnostic& d : diags) {
        out += d.render();
        out += "\n";
    }
    return out;
}

std::string
renderJson(const std::vector<Diagnostic>& diags)
{
    std::string out = "[";
    for (size_t i = 0; i < diags.size(); ++i) {
        out += i ? ",\n " : "\n ";
        out += diags[i].renderJson();
    }
    out += diags.empty() ? "]" : "\n]";
    return out;
}

} // namespace pibe::check
