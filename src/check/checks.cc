#include "check/checks.h"

#include <algorithm>
#include <chrono>
#include <map>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "ir/printer.h"
#include "ir/verifier.h"
#include "runtime/job_graph.h"
#include "runtime/thread_pool.h"

namespace pibe::check {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

/** Shared emission state of one suite run. */
class Runner
{
  public:
    Runner(const ir::Module& module, const CheckOptions& opts,
           AnalysisManager& am)
        : module_(module), opts_(opts), am_(am)
    {
    }

    CheckReport
    run()
    {
        auto timed = [this](const char* name, auto&& fn) {
            const auto t0 = Clock::now();
            fn();
            report_.group_ms.emplace_back(name, msSince(t0));
        };
        if (opts_.verify)
            timed("verify", [this] { runVerify(); });
        if (opts_.lint)
            timed("lint", [this] { runLints(); });
        if (opts_.coverage)
            timed("coverage", [this] { runCoverage(); });
        if (opts_.targets)
            timed("targets", [this] { runTargets(); });
        if (opts_.profile_flow && opts_.profile)
            timed("profile", [this] { runProfileFlow(); });
        return std::move(report_);
    }

    /**
     * Per-function portions of the enabled groups for [begin, end):
     * verify.function, the lints, the per-site coverage audit
     * (accumulated into `counted`, reconciled by the caller), and the
     * verify.targets guard-chain scan against the pre-solved `tsa`.
     * This is the unit runChecksParallel() fans out per shard.
     */
    CheckReport
    runShard(ir::FuncId begin, ir::FuncId end, TargetSetAnalysis* tsa,
             harden::CoverageReport* counted)
    {
        for (ir::FuncId f = begin; f < end; ++f) {
            const ir::Function& fn = module_.func(f);
            if (opts_.verify) {
                auto problems = ir::verifyFunction(module_, fn);
                broken_[f] = !problems.empty();
                for (const std::string& p : problems) {
                    Diagnostic& d =
                        emit("verify.function", Severity::kError, p);
                    d.func = f;
                    d.func_name = fn.name;
                }
            }
            if (opts_.lint && !fn.isDeclaration() && analyzable(f))
                lintFunction(fn);
        }
        if (opts_.coverage && counted)
            coverageRange(begin, end, *counted);
        if (opts_.targets && tsa)
            targetsGuardRange(begin, end, *tsa);
        return std::move(report_);
    }

    /**
     * Module-wide obligations that cannot shard: site-id uniqueness,
     * coverage reconciliation against the summed shard counts,
     * target-set seed/site checks, and profile flow. Runs serially
     * after the shard fan-out.
     */
    CheckReport
    runModuleTail(TargetSetAnalysis* tsa,
                  const harden::CoverageReport* counted)
    {
        if (opts_.verify) {
            for (const std::string& p :
                 ir::verifyModuleSiteIds(module_))
                emit("verify.sites", Severity::kError, p);
        }
        if (opts_.coverage && counted)
            reconcile(*counted);
        if (opts_.targets && tsa) {
            targetsBadSlots(*tsa);
            targetsModuleSites(*tsa);
        }
        if (opts_.profile_flow && opts_.profile)
            runProfileFlow();
        return std::move(report_);
    }

    /** Per-function subset: verify + lint of one function only. */
    CheckReport
    runSingle(ir::FuncId func)
    {
        const ir::Function& f = module_.func(func);
        if (opts_.verify) {
            auto problems = ir::verifyFunction(module_, f);
            broken_[func] = !problems.empty();
            for (const std::string& p : problems) {
                Diagnostic& d =
                    emit("verify.function", Severity::kError, p);
                d.func = func;
                d.func_name = f.name;
            }
        }
        if (opts_.lint && !f.isDeclaration() && analyzable(func))
            lintFunction(f);
        return std::move(report_);
    }

  private:
    // --- emission helpers -------------------------------------------

    Diagnostic&
    emit(const char* id, Severity sev, std::string message)
    {
        Diagnostic d;
        d.check_id = id;
        d.severity = sev;
        d.message = std::move(message);
        report_.diags.push_back(std::move(d));
        return report_.diags.back();
    }

    Diagnostic&
    emitAt(const char* id, Severity sev, ir::FuncId f, ir::BlockId b,
           int32_t inst, std::string message)
    {
        Diagnostic& d = emit(id, sev, std::move(message));
        d.func = f;
        d.func_name = module_.func(f).name;
        d.block = b;
        d.inst = inst;
        return d;
    }

    /** Functions whose structure is broken; analyses must not run. */
    bool
    analyzable(ir::FuncId f)
    {
        auto it = broken_.find(f);
        if (it != broken_.end())
            return !it->second;
        const bool bad =
            !ir::verifyFunction(module_, module_.func(f)).empty();
        broken_[f] = bad;
        return !bad;
    }

    bool
    isAllowed(const ir::Function& f, ir::SiteId site) const
    {
        if (std::find(opts_.allowed_sites.begin(),
                      opts_.allowed_sites.end(),
                      site) != opts_.allowed_sites.end())
            return true;
        return std::find(opts_.allowed_funcs.begin(),
                         opts_.allowed_funcs.end(),
                         f.name) != opts_.allowed_funcs.end();
    }

    // --- verify group -----------------------------------------------

    void
    runVerify()
    {
        for (const ir::Function& f : module_.functions()) {
            auto problems = ir::verifyFunction(module_, f);
            broken_[f.id] = !problems.empty();
            for (const std::string& p : problems) {
                Diagnostic& d =
                    emit("verify.function", Severity::kError, p);
                d.func = f.id;
                d.func_name = f.name;
            }
        }
        for (const std::string& p : ir::verifyModuleSiteIds(module_))
            emit("verify.sites", Severity::kError, p);
    }

    // --- lint group -------------------------------------------------

    void
    runLints()
    {
        for (const ir::Function& f : module_.functions()) {
            if (f.isDeclaration() || !analyzable(f.id))
                continue;
            lintFunction(f);
        }
    }

    void
    lintFunction(const ir::Function& f)
    {
        const Cfg& cfg = am_.cfg(f.id);
        const ReachingDefs& reaching = am_.reachingDefs(f.id);
        const DefiniteAssignment& assigned =
            am_.definiteAssignment(f.id);
        const Liveness& live = am_.liveness(f.id);
        const FrameLiveness& frame_live = am_.frameLiveness(f.id);

        // Streaming sweep: live-out facts land in two reusable flat
        // matrices and the forward analyses advance via cursors, so
        // the per-instruction queries are amortized O(1) instead of
        // replaying the block per instruction.
        ReachingDefs::Cursor reach_cur(reaching);
        DefiniteAssignment::Cursor assign_cur(assigned);
        FactMatrix reg_out;
        FactMatrix frame_out;

        for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
            if (!cfg.isReachable(b)) {
                emitAt("lint.unreachable-block", Severity::kWarning,
                       f.id, b, -1,
                       "block is unreachable from the entry")
                    .hint = "run opt::simplifyCfg to delete it";
                continue;
            }
            live.perInstLiveOut(b, reg_out);
            frame_live.perInstLiveOut(b, frame_out);
            reach_cur.startBlock(b);
            assign_cur.startBlock(b);
            const auto& insts = f.blocks[b].insts;
            for (uint32_t i = 0; i < insts.size(); ++i) {
                const ir::Instruction& inst = insts[i];
                lintUses(f, b, i, inst, reach_cur,
                         assign_cur.assigned());
                lintDeadStore(f, b, i, inst, reg_out, frame_out);
                if (inst.op == ir::Opcode::kICall)
                    lintICallTargets(f, b, i, inst, reaching,
                                     reach_cur);
                reach_cur.advance(inst);
                assign_cur.advance(inst);
            }
        }
    }

    void
    lintUses(const ir::Function& f, ir::BlockId b, uint32_t i,
             const ir::Instruction& inst,
             const ReachingDefs::Cursor& reach, const BitVector& have)
    {
        uses_.clear();
        appendUses(inst, uses_);
        for (ir::Reg r : uses_) {
            if (r >= f.num_regs)
                continue; // verifier territory
            reach.defsOf(r, def_ids_);
            if (def_ids_.empty()) {
                emitAt("lint.use-before-def", Severity::kError, f.id, b,
                       static_cast<int32_t>(i),
                       "register r" + std::to_string(r) +
                           " is read but never written on any path")
                    .hint = "the simulator would read 0; almost "
                            "certainly a pass bug";
            } else if (!have.test(r)) {
                emitAt("lint.maybe-uninit", Severity::kWarning, f.id, b,
                       static_cast<int32_t>(i),
                       "register r" + std::to_string(r) +
                           " may be read before it is written");
            }
        }
    }

    void
    lintDeadStore(const ir::Function& f, ir::BlockId b, uint32_t i,
                  const ir::Instruction& inst,
                  const FactMatrix& reg_out, const FactMatrix& frame_out)
    {
        switch (inst.op) {
          case ir::Opcode::kConst:
          case ir::Opcode::kMove:
          case ir::Opcode::kBinOp:
          case ir::Opcode::kFuncAddr:
          case ir::Opcode::kLoad:
          case ir::Opcode::kFrameLoad: {
            const ir::Reg d = inst.dst;
            if (d < f.num_regs && !reg_out.test(i, d)) {
                emitAt("lint.dead-store", Severity::kWarning, f.id, b,
                       static_cast<int32_t>(i),
                       "register r" + std::to_string(d) +
                           " is written but never read afterwards")
                    .hint = "dead code; opt::deadCodeElim removes it";
            }
            break;
          }
          case ir::Opcode::kFrameStore: {
            const auto slot = static_cast<size_t>(inst.imm);
            if (slot < f.frame_size && !frame_out.test(i, slot)) {
                emitAt("lint.dead-store", Severity::kWarning, f.id, b,
                       static_cast<int32_t>(i),
                       "frame slot " + std::to_string(inst.imm) +
                           " is written but never read afterwards");
            }
            break;
          }
          default:
            break;
        }
    }

    void
    lintICallTargets(const ir::Function& f, ir::BlockId b, uint32_t i,
                     const ir::Instruction& inst,
                     const ReachingDefs& reaching,
                     const ReachingDefs::Cursor& reach)
    {
        // Resolve the target register through its reaching defs; only
        // judge arity when *every* def is a constant function address.
        std::vector<ir::FuncId> targets;
        reach.defsOf(inst.a, def_ids_);
        for (size_t id : def_ids_) {
            const ReachingDefs::Def& def = reaching.defs()[id];
            if (def.is_param)
                return;
            const ir::Instruction& di =
                f.blocks[def.block].insts[def.index];
            if (di.op == ir::Opcode::kFuncAddr) {
                targets.push_back(di.callee);
            } else if (di.op == ir::Opcode::kConst &&
                       ir::isFuncAddrValue(di.imm)) {
                const ir::FuncId t = ir::funcAddrTarget(di.imm);
                if (t >= module_.numFunctions()) {
                    emitAt("lint.call-target", Severity::kError, f.id,
                           b, static_cast<int32_t>(i),
                           "indirect call through a constant that is "
                           "not a valid function address")
                        .site = inst.site_id;
                    return;
                }
                targets.push_back(t);
            } else {
                return; // target flows from memory/arithmetic: unknown
            }
        }
        for (ir::FuncId t : targets) {
            const ir::Function& callee = module_.func(t);
            if (inst.args.size() != callee.num_params) {
                Diagnostic& d = emitAt(
                    "lint.call-arity", Severity::kError, f.id, b,
                    static_cast<int32_t>(i),
                    "indirect call passes " +
                        std::to_string(inst.args.size()) +
                        " args but resolvable target @" + callee.name +
                        " expects " + std::to_string(callee.num_params));
                d.site = inst.site_id;
            }
        }
    }

    // --- coverage group ---------------------------------------------

    void
    runCoverage()
    {
        harden::CoverageReport counted; // our recount, all sites
        coverageRange(0, static_cast<ir::FuncId>(module_.numFunctions()),
                      counted);
        reconcile(counted);
    }

    void
    coverageRange(ir::FuncId begin, ir::FuncId end,
                  harden::CoverageReport& counted)
    {
        const ir::FwdScheme required_fwd =
            harden::forwardSchemeFor(opts_.defense);
        const ir::RetScheme required_ret =
            harden::returnSchemeFor(opts_.defense);
        const bool active = opts_.defense.any();

        for (ir::FuncId func = begin; func < end; ++func) {
            const ir::Function& f = module_.func(func);
            if (f.isDeclaration())
                continue;
            const bool boot = f.hasAttr(ir::kAttrBootSection);
            const bool has_cfg = analyzable(f.id);
            for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
                // Broken functions still get counted (analyzeCoverage
                // counts them), but requirement checks need a CFG.
                const bool reachable =
                    has_cfg && am_.cfg(f.id).isReachable(b);
                const auto& insts = f.blocks[b].insts;
                for (uint32_t i = 0; i < insts.size(); ++i) {
                    auditSite(f, b, i, insts[i], boot, has_cfg,
                              reachable, active, required_fwd,
                              required_ret, counted);
                }
            }
        }
    }

    void
    auditSite(const ir::Function& f, ir::BlockId b, uint32_t i,
              const ir::Instruction& inst, bool boot, bool has_cfg,
              bool reachable, bool active, ir::FwdScheme required_fwd,
              ir::RetScheme required_ret,
              harden::CoverageReport& counted)
    {
        switch (inst.op) {
          case ir::Opcode::kICall:
            if (inst.fwd_scheme == ir::FwdScheme::kNone)
                ++counted.vulnerable_icalls;
            else
                ++counted.protected_icalls;
            break;
          case ir::Opcode::kSwitch:
            ++counted.vulnerable_ijumps;
            break;
          case ir::Opcode::kRet:
            if (inst.ret_scheme != ir::RetScheme::kNone)
                ++counted.protected_rets;
            else if (boot)
                ++counted.boot_only_rets;
            break;
          default:
            return;
        }

        if (has_cfg && !reachable) {
            emitAt("coverage.unreachable-site", Severity::kNote, f.id,
                   b, static_cast<int32_t>(i),
                   "indirect branch in unreachable code is outside "
                   "the audited attack surface")
                .site = inst.site_id;
            return;
        }
        if (!active || isAllowed(f, inst.site_id))
            return;

        switch (inst.op) {
          case ir::Opcode::kICall:
            if (inst.is_asm) {
                if (inst.fwd_scheme != ir::FwdScheme::kNone) {
                    emitAt("coverage.asm-rewritten", Severity::kError,
                           f.id, b, static_cast<int32_t>(i),
                           "inline-assembly indirect call was "
                           "rewritten by a hardening pass")
                        .site = inst.site_id;
                }
            } else if (inst.fwd_scheme != required_fwd) {
                const bool missing =
                    inst.fwd_scheme == ir::FwdScheme::kNone;
                Diagnostic& d = emitAt(
                    missing ? "coverage.fwd-missing"
                            : "coverage.fwd-wrong",
                    Severity::kError, f.id, b, static_cast<int32_t>(i),
                    std::string("reachable indirect call carries "
                                "scheme '") +
                        ir::fwdSchemeName(inst.fwd_scheme) +
                        "' but defense config '" +
                        opts_.defense.name() + "' requires '" +
                        ir::fwdSchemeName(required_fwd) + "'");
                d.site = inst.site_id;
                d.hint = "harden::applyDefenses missed this site or a "
                         "later pass dropped the tag";
            }
            break;
          case ir::Opcode::kSwitch:
            if (!inst.is_asm) {
                emitAt("coverage.switch-residual", Severity::kError,
                       f.id, b, static_cast<int32_t>(i),
                       "reachable non-asm switch survived hardening "
                       "(jump tables must be lowered under transient "
                       "defenses)")
                    .site = inst.site_id;
            }
            break;
          case ir::Opcode::kRet:
            if (boot) {
                if (inst.ret_scheme != ir::RetScheme::kNone) {
                    emitAt("coverage.boot-hardened", Severity::kWarning,
                           f.id, b, static_cast<int32_t>(i),
                           "boot-section return carries a scheme it "
                           "does not need")
                        .site = inst.site_id;
                }
            } else if (inst.ret_scheme != required_ret) {
                if (required_ret == ir::RetScheme::kNone) {
                    emitAt("coverage.ret-unexpected", Severity::kWarning,
                           f.id, b, static_cast<int32_t>(i),
                           std::string("return carries scheme '") +
                               ir::retSchemeName(inst.ret_scheme) +
                               "' but defense config '" +
                               opts_.defense.name() +
                               "' hardens no returns")
                        .site = inst.site_id;
                } else {
                    const bool missing =
                        inst.ret_scheme == ir::RetScheme::kNone;
                    Diagnostic& d = emitAt(
                        missing ? "coverage.ret-missing"
                                : "coverage.ret-wrong",
                        Severity::kError, f.id, b,
                        static_cast<int32_t>(i),
                        std::string("reachable return carries scheme "
                                    "'") +
                            ir::retSchemeName(inst.ret_scheme) +
                            "' but defense config '" +
                            opts_.defense.name() + "' requires '" +
                            ir::retSchemeName(required_ret) + "'");
                    d.site = inst.site_id;
                }
            }
            break;
          default:
            break;
        }
    }

    void
    reconcile(const harden::CoverageReport& counted)
    {
        const harden::CoverageReport reported =
            harden::analyzeCoverage(module_);
        auto field = [&](const char* name, uint32_t ours,
                         uint32_t theirs) {
            if (ours == theirs)
                return;
            emit("coverage.report-mismatch", Severity::kError,
                 std::string(name) + ": audit counted " +
                     std::to_string(ours) +
                     " but harden::analyzeCoverage reports " +
                     std::to_string(theirs))
                .hint = "the auditor and CoverageReport disagree on "
                        "classification rules";
        };
        field("protected_icalls", counted.protected_icalls,
              reported.protected_icalls);
        field("vulnerable_icalls", counted.vulnerable_icalls,
              reported.vulnerable_icalls);
        field("vulnerable_ijumps", counted.vulnerable_ijumps,
              reported.vulnerable_ijumps);
        field("protected_rets", counted.protected_rets,
              reported.protected_rets);
        field("boot_only_rets", counted.boot_only_rets,
              reported.boot_only_rets);
    }

    // --- targets group ----------------------------------------------

    /**
     * Feasible-target validation (module-wide; see target_sets.h):
     *
     *  - verify.targets on global initializer slots that decode to
     *    nonexistent functions (the op-table analogue of a corrupt
     *    jump-table entry);
     *  - verify.targets translation validation of ICP guard chains:
     *    a block ending [funcaddr T; eq(ptr, addr); condbr] whose
     *    taken block starts with a direct call to T is (shaped like)
     *    a promotion of T at an icall through `ptr` — if the
     *    analysis resolved `ptr` completely, T must be feasible;
     *  - verify.targets on complete-and-empty icall sites (the call
     *    can never resolve: dead dispatch or a seeding bug);
     *  - coverage.targets: with a profile, every observed target of a
     *    completely-resolved site must be inside its static set
     *    (catches corrupt profiles and pass bugs the Kirchhoff
     *    checker cannot see).
     */
    void
    runTargets()
    {
        TargetSetAnalysis& tsa = am_.targetSets(opts_.roots);
        targetsBadSlots(tsa);
        targetsGuardRange(0,
                          static_cast<ir::FuncId>(module_.numFunctions()),
                          tsa);
        targetsModuleSites(tsa);
    }

    void
    targetsBadSlots(TargetSetAnalysis& tsa)
    {
        for (const BadGlobalSlot& bad : tsa.badGlobalSlots()) {
            Diagnostic& d = emit(
                "verify.targets", Severity::kError,
                "global '" + module_.global(bad.global).name +
                    "' slot " + std::to_string(bad.slot) +
                    " holds function address " +
                    std::to_string(bad.value) +
                    " of a nonexistent function");
            d.hint = "a table initializer encodes a FuncId outside "
                     "the module; indirect calls through it trap";
        }
    }

    void
    targetsGuardRange(ir::FuncId begin, ir::FuncId end,
                      TargetSetAnalysis& tsa)
    {
        for (ir::FuncId func = begin; func < end; ++func) {
            const ir::Function& f = module_.func(func);
            for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
                const auto& insts = f.blocks[b].insts;
                if (insts.size() < 3)
                    continue;
                const ir::Instruction& guard = insts.back();
                const ir::Instruction& cmp = insts[insts.size() - 2];
                const ir::Instruction& addr = insts[insts.size() - 3];
                if (guard.op != ir::Opcode::kCondBr ||
                    cmp.op != ir::Opcode::kBinOp ||
                    cmp.bin != ir::BinKind::kEq ||
                    addr.op != ir::Opcode::kFuncAddr ||
                    guard.a != cmp.dst)
                    continue;
                ir::Reg ptr;
                if (cmp.b == addr.dst)
                    ptr = cmp.a;
                else if (cmp.a == addr.dst)
                    ptr = cmp.b;
                else
                    continue;
                if (guard.t0 >= f.blocks.size())
                    continue;
                const auto& taken = f.blocks[guard.t0].insts;
                if (taken.empty() ||
                    taken[0].op != ir::Opcode::kCall ||
                    taken[0].callee != addr.callee)
                    continue;
                // An ICP-shaped promotion of addr.callee.
                TargetSet ts = tsa.regTargets(f.id, ptr);
                if (!ts.incomplete && !ts.contains(addr.callee)) {
                    Diagnostic& d = emitAt(
                        "verify.targets", Severity::kError, f.id, b,
                        static_cast<int32_t>(insts.size() - 3),
                        "promoted direct call to @" +
                            module_.func(addr.callee).name +
                            " is outside the site's feasible target "
                            "set (" +
                            std::to_string(ts.targets.size()) +
                            " targets)");
                    d.site = taken[0].site_id;
                    d.hint = "icp promoted a target the points-to "
                             "analysis proves infeasible: a pass bug "
                             "or a corrupt profile";
                }
            }
        }
    }

    void
    targetsModuleSites(TargetSetAnalysis& tsa)
    {
        for (const auto& [sid, st] : tsa.sites()) {
            if (st.complete() && st.targets.empty()) {
                Diagnostic& d = emitAt(
                    "verify.targets", Severity::kWarning, st.func,
                    st.block, static_cast<int32_t>(st.index),
                    "indirect call can never resolve: its feasible "
                    "target set is complete and empty");
                d.site = sid;
                d.hint = "dead dispatch code, or a table that is "
                         "never seeded with function addresses";
            }
        }

        if (opts_.profile) {
            for (const auto& [site, targets] :
                 opts_.profile->indirectSites()) {
                const SiteTargets* st = tsa.site(site);
                if (!st || st->incomplete)
                    continue;
                for (const auto& [target, count] : targets) {
                    if (count == 0)
                        continue;
                    if (target >= module_.numFunctions())
                        continue; // profile.unresolved-func covers it.
                    if (std::binary_search(st->targets.begin(),
                                           st->targets.end(), target))
                        continue;
                    Diagnostic& d = emitAt(
                        "coverage.targets", Severity::kError, st->func,
                        st->block, static_cast<int32_t>(st->index),
                        "profile-observed target @" +
                            module_.func(target).name +
                            " is outside the site's complete static "
                            "target set");
                    d.site = site;
                    d.hint = "the profile disagrees with the "
                             "points-to analysis: a corrupt/stale "
                             "profile, or an analysis soundness bug";
                }
            }
        }
    }

    // --- profile group ----------------------------------------------

    struct SiteInfo
    {
        ir::FuncId func = ir::kInvalidFunc;
        ir::BlockId block = 0;
        uint32_t index = 0;
        ir::Opcode op = ir::Opcode::kConst;
        ir::FuncId callee = ir::kInvalidFunc; ///< kCall only.
    };

    void
    runProfileFlow()
    {
        const profile::EdgeProfile& prof = *opts_.profile;

        // Index every site-carrying instruction once.
        std::unordered_map<ir::SiteId, SiteInfo> sites;
        for (const ir::Function& f : module_.functions()) {
            for (ir::BlockId b = 0; b < f.blocks.size(); ++b) {
                const auto& insts = f.blocks[b].insts;
                for (uint32_t i = 0; i < insts.size(); ++i) {
                    const ir::Instruction& inst = insts[i];
                    if (inst.site_id == ir::kNoSite)
                        continue;
                    sites[inst.site_id] =
                        SiteInfo{f.id, b, i, inst.op, inst.callee};
                }
            }
        }

        const bool have_invocations = [&] {
            for (const ir::Function& f : module_.functions())
                if (prof.invocations(f.id) > 0)
                    return true;
            return false;
        }();

        // Incoming profiled weight per function, accumulated while
        // walking the profile's edges.
        std::vector<uint64_t> incoming(module_.numFunctions(), 0);

        for (const auto& [site, count] : prof.directSites()) {
            const SiteInfo* info = resolveSite(sites, site, "direct");
            if (!info)
                continue;
            if (info->op != ir::Opcode::kCall) {
                siteDiag("profile.site-kind", site, *info,
                         "direct-call count recorded at a site that "
                         "is not a direct call");
                continue;
            }
            incoming[info->callee] += count;
            checkAcyclicBound(prof, have_invocations, site, *info,
                              count);
        }

        for (const auto& [site, targets] : prof.indirectSites()) {
            const SiteInfo* info = resolveSite(sites, site, "indirect");
            if (info && info->op != ir::Opcode::kICall) {
                siteDiag("profile.site-kind", site, *info,
                         "indirect value profile recorded at a site "
                         "that is not an indirect call");
                info = nullptr;
            }
            if (info && prof.directCount(site) > 0) {
                siteDiag("profile.site-kind", site, *info,
                         "site has both a direct count and an "
                         "indirect value profile");
            }
            uint64_t total = 0;
            for (const auto& [target, count] : targets) {
                if (target >= module_.numFunctions()) {
                    Diagnostic& d =
                        emit("profile.unresolved-func",
                             Severity::kError,
                             "indirect target FuncId " +
                                 std::to_string(target) +
                                 " does not resolve in the module");
                    d.site = site;
                    continue;
                }
                if (count == 0) {
                    emit("profile.zero-count", Severity::kNote,
                         "zero-count target @" +
                             module_.func(target).name +
                             " in value profile")
                        .site = site;
                }
                incoming[target] += count;
                total += count;
            }
            if (info)
                checkAcyclicBound(prof, have_invocations, site, *info,
                                  total);
        }

        if (have_invocations)
            checkInvocationFlow(prof, incoming);
    }

    const SiteInfo*
    resolveSite(const std::unordered_map<ir::SiteId, SiteInfo>& sites,
                ir::SiteId site, const char* kind)
    {
        if (site >= module_.siteIdBound()) {
            emit("profile.site-bound", Severity::kError,
                 std::string(kind) + " site id " + std::to_string(site) +
                     " is beyond the module's allocated bound " +
                     std::to_string(module_.siteIdBound()))
                .site = site;
            return nullptr;
        }
        auto it = sites.find(site);
        if (it == sites.end()) {
            Diagnostic& d = emit(
                "profile.unresolved-site", Severity::kError,
                std::string(kind) + " site id " + std::to_string(site) +
                    " does not resolve to any instruction");
            d.site = site;
            d.hint = "the profile predates a pass that deleted the "
                     "site; re-collect or re-lift it";
            return nullptr;
        }
        return &it->second;
    }

    void
    siteDiag(const char* id, ir::SiteId site, const SiteInfo& info,
             std::string message)
    {
        Diagnostic& d =
            emitAt(id, Severity::kError, info.func, info.block,
                   static_cast<int32_t>(info.index), std::move(message));
        d.site = site;
    }

    void
    checkAcyclicBound(const profile::EdgeProfile& prof,
                      bool have_invocations, ir::SiteId site,
                      const SiteInfo& info, uint64_t count)
    {
        if (!have_invocations || !analyzable(info.func))
            return;
        const Cfg& cfg = am_.cfg(info.func);
        if (!cfg.isReachable(info.block) || cfg.inCycle(info.block))
            return;
        const uint64_t inv = prof.invocations(info.func);
        if (count > inv) {
            siteDiag("profile.acyclic-bound", site, info,
                     "site executes at most once per activation of @" +
                         module_.func(info.func).name +
                         " yet its count " + std::to_string(count) +
                         " exceeds the function's " +
                         std::to_string(inv) + " invocations");
        }
    }

    void
    checkInvocationFlow(const profile::EdgeProfile& prof,
                        const std::vector<uint64_t>& incoming)
    {
        std::vector<std::string> roots = opts_.roots;
        if (roots.empty())
            roots = {"kernel_init", "sys_dispatch", "main"};
        for (const ir::Function& f : module_.functions()) {
            const uint64_t inv = prof.invocations(f.id);
            const uint64_t in = incoming[f.id];
            if (inv == in)
                continue;
            const bool is_root =
                std::find(roots.begin(), roots.end(), f.name) !=
                roots.end();
            if (is_root && inv > in)
                continue; // external entries legitimately add weight
            std::ostringstream msg;
            msg << "invocation count " << inv << " of @" << f.name
                << " does not match the " << in
                << " incoming profiled call-edge executions";
            Diagnostic& d = emit("profile.invocation-flow",
                                 Severity::kError, msg.str());
            d.func = f.id;
            d.func_name = f.name;
            d.hint = is_root
                         ? "root function lost invocation weight"
                         : "profile corruption, or the function is an "
                           "unlisted root (see --roots)";
        }
    }

    const ir::Module& module_;
    const CheckOptions& opts_;
    AnalysisManager& am_;
    CheckReport report_;
    std::unordered_map<ir::FuncId, bool> broken_;
    std::vector<ir::Reg> uses_;
    std::vector<size_t> def_ids_;
};

} // namespace

CheckReport
runChecks(const ir::Module& module, const CheckOptions& opts,
          AnalysisManager* am)
{
    if (am) {
        PIBE_ASSERT(&am->module() == &module,
                    "AnalysisManager wraps a different module");
        return Runner(module, opts, *am).run();
    }
    AnalysisManager local(module);
    return Runner(module, opts, local).run();
}

CheckReport
runChecksParallel(const ir::Module& module, const CheckOptions& opts,
                  runtime::ThreadPool& pool, size_t shard_size,
                  AnalysisManager* am)
{
    AnalysisManager local(module);
    AnalysisManager& shared = am ? *am : local;
    if (am)
        PIBE_ASSERT(&am->module() == &module,
                    "AnalysisManager wraps a different module");

    CheckReport out;

    // Solve the module-wide target-set fixpoint once, serially; the
    // shard jobs only read it (see TargetSetAnalysis::ensureSolved).
    TargetSetAnalysis* tsa = nullptr;
    if (opts.targets) {
        const auto t0 = Clock::now();
        tsa = &shared.targetSets(opts.roots);
        tsa->ensureSolved();
        out.group_ms.emplace_back("targets.solve", msSince(t0));
    }

    const auto n = static_cast<ir::FuncId>(module.numFunctions());
    const auto step =
        static_cast<ir::FuncId>(std::max<size_t>(1, shard_size));
    const size_t num_shards = n == 0 ? 0 : (n + step - 1) / step;
    std::vector<CheckReport> reports(num_shards);
    std::vector<harden::CoverageReport> counts(num_shards);

    const auto t1 = Clock::now();
    runtime::JobGraph graph;
    for (size_t s = 0; s < num_shards; ++s) {
        const auto begin = static_cast<ir::FuncId>(s * step);
        const ir::FuncId end = std::min<ir::FuncId>(begin + step, n);
        graph.add("check/" + std::to_string(s),
                  [&module, &opts, &reports, &counts, tsa, begin, end,
                   s](const runtime::JobContext&) {
                      AnalysisManager shard_am(module);
                      Runner r(module, opts, shard_am);
                      reports[s] =
                          r.runShard(begin, end, tsa, &counts[s]);
                  });
    }
    graph.run(pool);
    out.group_ms.emplace_back("shards.parallel", msSince(t1));

    // FuncId-ordered merge: shard s covers a lower function range than
    // shard s+1, so concatenation is deterministic and scheduling
    // never leaks into the report.
    const auto t2 = Clock::now();
    for (size_t s = 0; s < num_shards; ++s) {
        out.diags.insert(out.diags.end(),
                         std::make_move_iterator(reports[s].diags.begin()),
                         std::make_move_iterator(reports[s].diags.end()));
    }
    harden::CoverageReport total;
    for (const harden::CoverageReport& c : counts) {
        total.protected_icalls += c.protected_icalls;
        total.vulnerable_icalls += c.vulnerable_icalls;
        total.vulnerable_ijumps += c.vulnerable_ijumps;
        total.protected_rets += c.protected_rets;
        total.boot_only_rets += c.boot_only_rets;
    }
    Runner tail(module, opts, shared);
    CheckReport tail_rep =
        tail.runModuleTail(tsa, opts.coverage ? &total : nullptr);
    out.diags.insert(out.diags.end(),
                     std::make_move_iterator(tail_rep.diags.begin()),
                     std::make_move_iterator(tail_rep.diags.end()));
    out.group_ms.emplace_back("module.serial", msSince(t2));
    return out;
}

CheckReport
runFunctionChecks(const ir::Module& module, ir::FuncId func,
                  const CheckOptions& opts, AnalysisManager* am)
{
    if (am) {
        PIBE_ASSERT(&am->module() == &module,
                    "AnalysisManager wraps a different module");
        return Runner(module, opts, *am).runSingle(func);
    }
    AnalysisManager local(module);
    return Runner(module, opts, local).runSingle(func);
}

std::optional<Severity>
severityFromName(std::string_view name)
{
    if (name == "note")
        return Severity::kNote;
    if (name == "warn" || name == "warning")
        return Severity::kWarning;
    if (name == "error")
        return Severity::kError;
    return std::nullopt;
}

CheckOutcome
runChecksWithPolicy(const ir::Module& module, const CheckOptions& opts,
                    Severity fail_on, AnalysisManager* am)
{
    CheckOutcome out;
    out.report = runChecks(module, opts, am);
    out.fail_on = fail_on;
    out.passed = out.report.ok(fail_on);
    return out;
}

} // namespace pibe::check
