#include "check/dominators.h"

namespace pibe::check {

DomTree::DomTree(const Cfg& cfg) : cfg_(cfg)
{
    const size_t n = cfg.numBlocks();
    idom_.assign(n, kNoIdom);
    children_.resize(n);
    depth_.assign(n, SIZE_MAX);

    const std::vector<ir::BlockId>& rpo = cfg.reversePostOrder();
    if (rpo.empty())
        return;
    const ir::BlockId entry = rpo.front();
    idom_[entry] = entry;

    // Two-finger intersection over RPO numbers (CHK Figure 3).
    auto intersect = [&](ir::BlockId a, ir::BlockId b) {
        while (a != b) {
            while (cfg_.rpoIndex(a) > cfg_.rpoIndex(b))
                a = idom_[a];
            while (cfg_.rpoIndex(b) > cfg_.rpoIndex(a))
                b = idom_[b];
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 1; i < rpo.size(); ++i) {
            const ir::BlockId b = rpo[i];
            ir::BlockId new_idom = kNoIdom;
            for (ir::BlockId p : cfg_.preds(b)) {
                if (idom_[p] == kNoIdom)
                    continue; // unprocessed or unreachable pred
                new_idom = (new_idom == kNoIdom)
                               ? p
                               : intersect(p, new_idom);
            }
            if (new_idom != kNoIdom && idom_[b] != new_idom) {
                idom_[b] = new_idom;
                changed = true;
            }
        }
    }

    for (ir::BlockId b : rpo) {
        if (b != entry && idom_[b] != kNoIdom)
            children_[idom_[b]].push_back(b);
    }
    depth_[entry] = 0;
    for (ir::BlockId b : rpo) {
        if (b != entry && idom_[b] != kNoIdom)
            depth_[b] = depth_[idom_[b]] + 1;
    }
}

bool
DomTree::dominates(ir::BlockId a, ir::BlockId b) const
{
    if (idom_[a] == kNoIdom || idom_[b] == kNoIdom)
        return false;
    // Walk b up the tree until we reach a's depth, then compare.
    while (depth_[b] > depth_[a])
        b = idom_[b];
    return a == b;
}

} // namespace pibe::check
