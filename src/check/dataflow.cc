#include "check/dataflow.h"

#include <algorithm>
#include <deque>

namespace pibe::check {

DataflowResult
solveDataflow(const Cfg& cfg, Direction dir, Meet meet, size_t universe,
              const std::vector<GenKill>& transfer,
              const BitVector& boundary)
{
    const size_t n = cfg.numBlocks();
    PIBE_ASSERT(transfer.size() == n, "transfer/block count mismatch");

    DataflowResult r;
    const bool intersect = meet == Meet::kIntersect;
    // Interior blocks start at the lattice identity of the meet: empty
    // for union (bottom), full for intersect (top).
    r.in.assign(n, BitVector(universe, intersect));
    r.out.assign(n, BitVector(universe, intersect));

    const std::vector<ir::BlockId>& rpo = cfg.reversePostOrder();
    // Forward problems converge fastest in RPO, backward ones in
    // post-order; seed the worklist accordingly.
    std::deque<ir::BlockId> worklist;
    if (dir == Direction::kForward)
        worklist.assign(rpo.begin(), rpo.end());
    else
        worklist.assign(rpo.rbegin(), rpo.rend());
    std::vector<bool> queued(n, false);
    for (ir::BlockId b : worklist)
        queued[b] = true;

    auto edgesIn = [&](ir::BlockId b) -> const std::vector<ir::BlockId>& {
        return dir == Direction::kForward ? cfg.preds(b) : cfg.succs(b);
    };
    auto edgesOut = [&](ir::BlockId b) -> const std::vector<ir::BlockId>& {
        return dir == Direction::kForward ? cfg.succs(b) : cfg.preds(b);
    };
    auto isBoundary = [&](ir::BlockId b) {
        if (dir == Direction::kForward)
            return b == 0;
        return cfg.succs(b).empty();
    };

    while (!worklist.empty()) {
        const ir::BlockId b = worklist.front();
        worklist.pop_front();
        queued[b] = false;
        ++r.iterations;

        // Meet over incoming edges; boundary blocks meet the seed too.
        BitVector in(universe, intersect);
        bool have_any = false;
        auto meetWith = [&](const BitVector& v) {
            if (!have_any) {
                in = v;
                have_any = true;
            } else if (intersect) {
                in.intersectWith(v);
            } else {
                in.unionWith(v);
            }
        };
        if (isBoundary(b))
            meetWith(boundary);
        for (ir::BlockId e : edgesIn(b)) {
            if (cfg.isReachable(e))
                meetWith(r.out[e]);
        }
        r.in[b] = in;

        BitVector out = in;
        out.transfer(transfer[b].gen, transfer[b].kill);
        if (out == r.out[b])
            continue;
        r.out[b] = std::move(out);
        for (ir::BlockId e : edgesOut(b)) {
            if (!queued[e] && cfg.isReachable(e)) {
                queued[e] = true;
                worklist.push_back(e);
            }
        }
    }
    return r;
}

ir::Reg
instrDef(const ir::Instruction& inst)
{
    switch (inst.op) {
      case ir::Opcode::kConst:
      case ir::Opcode::kMove:
      case ir::Opcode::kBinOp:
      case ir::Opcode::kFuncAddr:
      case ir::Opcode::kLoad:
      case ir::Opcode::kFrameLoad:
      case ir::Opcode::kCall:
      case ir::Opcode::kICall:
        return inst.dst;
      default:
        return ir::kNoReg;
    }
}

void
appendUses(const ir::Instruction& inst, std::vector<ir::Reg>& uses)
{
    switch (inst.op) {
      case ir::Opcode::kConst:
      case ir::Opcode::kFuncAddr:
      case ir::Opcode::kFrameLoad:
      case ir::Opcode::kBr:
        break;
      case ir::Opcode::kMove:
      case ir::Opcode::kFrameStore:
      case ir::Opcode::kCondBr:
      case ir::Opcode::kSwitch:
      case ir::Opcode::kSink:
        uses.push_back(inst.a);
        break;
      case ir::Opcode::kBinOp:
      case ir::Opcode::kStore:
        uses.push_back(inst.a);
        uses.push_back(inst.b);
        break;
      case ir::Opcode::kLoad:
        uses.push_back(inst.a);
        break;
      case ir::Opcode::kCall:
        uses.insert(uses.end(), inst.args.begin(), inst.args.end());
        break;
      case ir::Opcode::kICall:
        uses.push_back(inst.a);
        uses.insert(uses.end(), inst.args.begin(), inst.args.end());
        break;
      case ir::Opcode::kRet:
        if (inst.a != ir::kNoReg)
            uses.push_back(inst.a);
        break;
    }
}

// --- Liveness -------------------------------------------------------

Liveness::Liveness(const ir::Function& func, const Cfg& cfg)
    : func_(func)
{
    const size_t universe = func.num_regs;
    std::vector<GenKill> transfer(func.blocks.size());
    std::vector<ir::Reg> uses;
    for (ir::BlockId b = 0; b < func.blocks.size(); ++b) {
        GenKill& t = transfer[b];
        t.gen = BitVector(universe);
        t.kill = BitVector(universe);
        // Backward transfer composed forward: a use is upward-exposed
        // (gen) only if no earlier def in the block killed it.
        for (const ir::Instruction& inst : func.blocks[b].insts) {
            uses.clear();
            appendUses(inst, uses);
            for (ir::Reg r : uses) {
                if (r < universe && !t.kill.test(r))
                    t.gen.set(r);
            }
            const ir::Reg d = instrDef(inst);
            if (d != ir::kNoReg && d < universe)
                t.kill.set(d);
        }
    }
    result_ = solveDataflow(cfg, Direction::kBackward, Meet::kUnion,
                            universe, transfer, BitVector(universe));
}

std::vector<BitVector>
Liveness::perInstLiveOut(ir::BlockId b) const
{
    const auto& insts = func_.blocks[b].insts;
    std::vector<BitVector> out(insts.size(), liveOut(b));
    BitVector live = liveOut(b);
    std::vector<ir::Reg> uses;
    for (size_t i = insts.size(); i-- > 0;) {
        out[i] = live;
        const ir::Reg d = instrDef(insts[i]);
        if (d != ir::kNoReg && d < live.size())
            live.clear(d);
        uses.clear();
        appendUses(insts[i], uses);
        for (ir::Reg r : uses)
            if (r < live.size())
                live.set(r);
    }
    return out;
}

void
Liveness::perInstLiveOut(ir::BlockId b, FactMatrix& out) const
{
    const auto& insts = func_.blocks[b].insts;
    out.reset(insts.size(), func_.num_regs);
    BitVector live = liveOut(b);
    std::vector<ir::Reg> uses;
    for (size_t i = insts.size(); i-- > 0;) {
        std::copy(live.words(), live.words() + live.numWords(),
                  out.row(i));
        const ir::Reg d = instrDef(insts[i]);
        if (d != ir::kNoReg && d < live.size())
            live.clear(d);
        uses.clear();
        appendUses(insts[i], uses);
        for (ir::Reg r : uses)
            if (r < live.size())
                live.set(r);
    }
}

// --- FrameLiveness --------------------------------------------------

FrameLiveness::FrameLiveness(const ir::Function& func, const Cfg& cfg)
    : func_(func)
{
    const size_t universe = func.frame_size;
    std::vector<GenKill> transfer(func.blocks.size());
    for (ir::BlockId b = 0; b < func.blocks.size(); ++b) {
        GenKill& t = transfer[b];
        t.gen = BitVector(universe);
        t.kill = BitVector(universe);
        for (const ir::Instruction& inst : func.blocks[b].insts) {
            if (inst.op == ir::Opcode::kFrameLoad) {
                const auto slot = static_cast<size_t>(inst.imm);
                if (slot < universe && !t.kill.test(slot))
                    t.gen.set(slot);
            } else if (inst.op == ir::Opcode::kFrameStore) {
                const auto slot = static_cast<size_t>(inst.imm);
                if (slot < universe)
                    t.kill.set(slot);
            }
        }
    }
    // Frame slots are per-activation: nothing is live past a return.
    result_ = solveDataflow(cfg, Direction::kBackward, Meet::kUnion,
                            universe, transfer, BitVector(universe));
}

std::vector<BitVector>
FrameLiveness::perInstLiveOut(ir::BlockId b) const
{
    const auto& insts = func_.blocks[b].insts;
    std::vector<BitVector> out(insts.size(), liveOut(b));
    BitVector live = liveOut(b);
    for (size_t i = insts.size(); i-- > 0;) {
        out[i] = live;
        if (insts[i].op == ir::Opcode::kFrameStore) {
            const auto slot = static_cast<size_t>(insts[i].imm);
            if (slot < live.size())
                live.clear(slot);
        } else if (insts[i].op == ir::Opcode::kFrameLoad) {
            const auto slot = static_cast<size_t>(insts[i].imm);
            if (slot < live.size())
                live.set(slot);
        }
    }
    return out;
}

void
FrameLiveness::perInstLiveOut(ir::BlockId b, FactMatrix& out) const
{
    const auto& insts = func_.blocks[b].insts;
    out.reset(insts.size(), func_.frame_size);
    BitVector live = liveOut(b);
    for (size_t i = insts.size(); i-- > 0;) {
        std::copy(live.words(), live.words() + live.numWords(),
                  out.row(i));
        if (insts[i].op == ir::Opcode::kFrameStore) {
            const auto slot = static_cast<size_t>(insts[i].imm);
            if (slot < live.size())
                live.clear(slot);
        } else if (insts[i].op == ir::Opcode::kFrameLoad) {
            const auto slot = static_cast<size_t>(insts[i].imm);
            if (slot < live.size())
                live.set(slot);
        }
    }
}

// --- ReachingDefs ---------------------------------------------------

ReachingDefs::ReachingDefs(const ir::Function& func, const Cfg& cfg)
    : func_(func)
{
    defs_by_reg_.resize(func.num_regs);
    // Parameters are pseudo-defs flowing in at the entry boundary.
    for (uint32_t p = 0; p < func.num_params; ++p) {
        defs_by_reg_[p].push_back(defs_.size());
        defs_.push_back(Def{p, true, 0, p});
    }
    first_def_in_block_.resize(func.blocks.size(), 0);
    for (ir::BlockId b = 0; b < func.blocks.size(); ++b) {
        first_def_in_block_[b] = defs_.size();
        const auto& insts = func.blocks[b].insts;
        for (uint32_t i = 0; i < insts.size(); ++i) {
            const ir::Reg d = instrDef(insts[i]);
            if (d != ir::kNoReg && d < func.num_regs) {
                defs_by_reg_[d].push_back(defs_.size());
                defs_.push_back(Def{d, false, b, i});
            }
        }
    }

    const size_t universe = defs_.size();
    std::vector<GenKill> transfer(func.blocks.size());
    for (ir::BlockId b = 0; b < func.blocks.size(); ++b) {
        GenKill& t = transfer[b];
        t.gen = BitVector(universe);
        t.kill = BitVector(universe);
        const auto& insts = func.blocks[b].insts;
        for (uint32_t i = 0; i < insts.size(); ++i) {
            const ir::Reg d = instrDef(insts[i]);
            if (d == ir::kNoReg || d >= func.num_regs)
                continue;
            // A def kills every other def of the same register and
            // generates itself (later defs in the block overwrite
            // earlier gen bits via the kill set).
            for (size_t other : defs_by_reg_[d]) {
                t.gen.clear(other);
                t.kill.set(other);
            }
            size_t self = SIZE_MAX;
            for (size_t id : defs_by_reg_[d]) {
                const Def& def = defs_[id];
                if (!def.is_param && def.block == b && def.index == i) {
                    self = id;
                    break;
                }
            }
            PIBE_ASSERT(self != SIZE_MAX, "def site not indexed");
            t.gen.set(self);
            t.kill.clear(self);
        }
    }

    BitVector boundary(universe);
    for (uint32_t p = 0; p < func.num_params; ++p)
        boundary.set(p); // param pseudo-defs occupy the first ids
    result_ = solveDataflow(cfg, Direction::kForward, Meet::kUnion,
                            universe, transfer, boundary);
}

std::vector<size_t>
ReachingDefs::defsOfRegAt(ir::BlockId b, uint32_t index,
                          ir::Reg reg) const
{
    // Replay the block forward to the instruction, tracking which def
    // of `reg` is current; before any in-block def, fall back to the
    // block-entry fact.
    const auto& insts = func_.blocks[b].insts;
    size_t local_def = SIZE_MAX;
    for (uint32_t i = 0; i < index && i < insts.size(); ++i) {
        if (instrDef(insts[i]) == reg) {
            for (size_t id : defs_by_reg_[reg]) {
                const Def& def = defs_[id];
                if (!def.is_param && def.block == b && def.index == i)
                    local_def = id;
            }
        }
    }
    std::vector<size_t> out;
    if (local_def != SIZE_MAX) {
        out.push_back(local_def);
        return out;
    }
    if (reg < defs_by_reg_.size()) {
        for (size_t id : defs_by_reg_[reg])
            if (result_.in[b].test(id))
                out.push_back(id);
    }
    return out;
}

void
ReachingDefs::Cursor::startBlock(ir::BlockId b)
{
    for (ir::Reg r : touched_)
        local_def_[r] = SIZE_MAX;
    touched_.clear();
    block_ = b;
    next_id_ = rd_.first_def_in_block_[b];
}

void
ReachingDefs::Cursor::advance(const ir::Instruction& inst)
{
    const ir::Reg d = instrDef(inst);
    if (d != ir::kNoReg && d < local_def_.size()) {
        if (local_def_[d] == SIZE_MAX)
            touched_.push_back(d);
        local_def_[d] = next_id_++;
    }
}

void
ReachingDefs::Cursor::defsOf(ir::Reg reg, std::vector<size_t>& out) const
{
    out.clear();
    if (reg >= local_def_.size())
        return;
    if (local_def_[reg] != SIZE_MAX) {
        out.push_back(local_def_[reg]);
        return;
    }
    const BitVector& in = rd_.result_.in[block_];
    for (size_t id : rd_.defs_by_reg_[reg])
        if (in.test(id))
            out.push_back(id);
}

// --- DefiniteAssignment ---------------------------------------------

DefiniteAssignment::DefiniteAssignment(const ir::Function& func,
                                       const Cfg& cfg)
    : func_(func)
{
    const size_t universe = func.num_regs;
    std::vector<GenKill> transfer(func.blocks.size());
    for (ir::BlockId b = 0; b < func.blocks.size(); ++b) {
        GenKill& t = transfer[b];
        t.gen = BitVector(universe);
        t.kill = BitVector(universe);
        for (const ir::Instruction& inst : func.blocks[b].insts) {
            const ir::Reg d = instrDef(inst);
            if (d != ir::kNoReg && d < universe)
                t.gen.set(d);
        }
    }
    BitVector boundary(universe);
    for (uint32_t p = 0; p < func.num_params; ++p)
        boundary.set(p);
    result_ = solveDataflow(cfg, Direction::kForward, Meet::kIntersect,
                            universe, transfer, boundary);
}

BitVector
DefiniteAssignment::assignedBefore(ir::BlockId b, uint32_t index) const
{
    BitVector assigned = result_.in[b];
    const auto& insts = func_.blocks[b].insts;
    for (uint32_t i = 0; i < index && i < insts.size(); ++i) {
        const ir::Reg d = instrDef(insts[i]);
        if (d != ir::kNoReg && d < assigned.size())
            assigned.set(d);
    }
    return assigned;
}

} // namespace pibe::check
