/**
 * @file
 * Structured findings of the checker suite.
 *
 * Every checker emits Diagnostics rather than strings so that
 * consumers can filter by id/severity, attribute findings to pipeline
 * passes, reconcile counts, and render either human-readable text or
 * machine-readable JSON (`pibe check --json`).
 */
#ifndef PIBE_CHECK_DIAGNOSTIC_H_
#define PIBE_CHECK_DIAGNOSTIC_H_

#include <string>
#include <vector>

#include "ir/module.h"

namespace pibe::check {

enum class Severity : uint8_t {
    kNote,    ///< Informational; never fails a check run.
    kWarning, ///< Suspicious but semantically defined (lints).
    kError,   ///< Violated invariant; the image must not ship.
};

const char* severityName(Severity s);

/** One finding. */
struct Diagnostic
{
    /** Stable dotted id, e.g. "coverage.fwd-missing". */
    std::string check_id;
    Severity severity = Severity::kError;

    /** Pipeline pass that introduced the finding ("" outside the
     *  pass sandwich). */
    std::string pass;

    /** Location. func == kInvalidFunc means module scope; inst < 0
     *  means block scope. */
    ir::FuncId func = ir::kInvalidFunc;
    std::string func_name;
    ir::BlockId block = 0;
    int32_t inst = -1;
    ir::SiteId site = ir::kNoSite;

    std::string message;
    /** Optional remediation hint. */
    std::string hint;

    /** "error[coverage.fwd-missing] sys_read bb2[3] (site 17): ..." */
    std::string render() const;

    /** One JSON object (stable key order, escaped strings). */
    std::string renderJson() const;
};

/** Count of diagnostics at exactly `s`. */
size_t countSeverity(const std::vector<Diagnostic>& diags, Severity s);

/**
 * Sort diagnostics into the canonical emission order: (function,
 * block, instruction, check id, site, message), module-scoped
 * findings last. Checkers emit in whatever order they traverse, which
 * differs between serial and sharded parallel runs; sorting at the
 * output boundary makes `pibe check --json` and sandwich reports diff
 * cleanly across `--jobs` settings. Stable, so equal-keyed findings
 * keep their emission order.
 */
void sortDiagnostics(std::vector<Diagnostic>& diags);

/** Render one diagnostic per line. */
std::string renderText(const std::vector<Diagnostic>& diags);

/** Render a JSON array of diagnostic objects. */
std::string renderJson(const std::vector<Diagnostic>& diags);

} // namespace pibe::check

#endif // PIBE_CHECK_DIAGNOSTIC_H_
