#include "check/analysis_manager.h"

namespace pibe::check {

const Cfg&
AnalysisManager::cfg(ir::FuncId f)
{
    Entry& e = entry(f);
    if (!e.cfg) {
        e.cfg = std::make_unique<Cfg>(module_.func(f));
        ++computations_;
    } else {
        ++hits_;
    }
    return *e.cfg;
}

const DomTree&
AnalysisManager::domTree(ir::FuncId f)
{
    Entry& e = entry(f);
    if (!e.dom) {
        e.dom = std::make_unique<DomTree>(cfg(f));
        ++computations_;
    } else {
        ++hits_;
    }
    return *e.dom;
}

const Liveness&
AnalysisManager::liveness(ir::FuncId f)
{
    Entry& e = entry(f);
    if (!e.live) {
        e.live = std::make_unique<Liveness>(module_.func(f), cfg(f));
        ++computations_;
    } else {
        ++hits_;
    }
    return *e.live;
}

const FrameLiveness&
AnalysisManager::frameLiveness(ir::FuncId f)
{
    Entry& e = entry(f);
    if (!e.frame_live) {
        e.frame_live =
            std::make_unique<FrameLiveness>(module_.func(f), cfg(f));
        ++computations_;
    } else {
        ++hits_;
    }
    return *e.frame_live;
}

const ReachingDefs&
AnalysisManager::reachingDefs(ir::FuncId f)
{
    Entry& e = entry(f);
    if (!e.reaching) {
        e.reaching =
            std::make_unique<ReachingDefs>(module_.func(f), cfg(f));
        ++computations_;
    } else {
        ++hits_;
    }
    return *e.reaching;
}

const DefiniteAssignment&
AnalysisManager::definiteAssignment(ir::FuncId f)
{
    Entry& e = entry(f);
    if (!e.assigned) {
        e.assigned = std::make_unique<DefiniteAssignment>(module_.func(f),
                                                          cfg(f));
        ++computations_;
    } else {
        ++hits_;
    }
    return *e.assigned;
}

} // namespace pibe::check
