#include "check/sandwich.h"

#include <algorithm>

namespace pibe::check {

namespace {

/** Stage-independent identity of a finding (no pass field). */
std::string
locationKey(const Diagnostic& d)
{
    return d.check_id + "|" + d.func_name + "|" +
           std::to_string(d.block) + "|" + std::to_string(d.inst) +
           "|" + std::to_string(d.site) + "|" + d.message;
}

} // namespace

const Diagnostic*
StageResult::firstFreshError() const
{
    for (const Diagnostic& d : fresh)
        if (d.severity == Severity::kError)
            return &d;
    return nullptr;
}

const StageResult&
PassSandwich::afterPass(const std::string& pass,
                        const ir::Module& module,
                        const CheckOptions& opts, AnalysisManager* am)
{
    CheckReport report = runChecks(module, opts, am);

    StageResult stage;
    stage.pass = pass;
    stage.errors = report.errors();
    stage.warnings = report.warnings();

    std::vector<std::string> keys;
    keys.reserve(report.diags.size());
    std::map<std::string, size_t> errors_by_check;
    for (const Diagnostic& d : report.diags) {
        keys.push_back(locationKey(d));
        if (d.severity == Severity::kError)
            ++errors_by_check[d.check_id];
    }

    std::vector<std::string> prev_sorted = prev_keys_;
    std::sort(prev_sorted.begin(), prev_sorted.end());
    for (size_t i = 0; i < report.diags.size(); ++i) {
        if (std::binary_search(prev_sorted.begin(), prev_sorted.end(),
                               keys[i]))
            continue;
        Diagnostic d = report.diags[i];
        d.pass = pass;
        stage.fresh.push_back(std::move(d));
    }

    if (have_baseline_) {
        for (const auto& [check, count] : errors_by_check) {
            auto it = prev_errors_.find(check);
            const size_t prev = it == prev_errors_.end() ? 0 : it->second;
            if (count > prev)
                stage.regressed_checks.push_back(check);
        }
    }

    prev_keys_ = std::move(keys);
    prev_errors_ = std::move(errors_by_check);
    have_baseline_ = true;

    stages_.push_back(std::move(stage));
    return stages_.back();
}

std::vector<Diagnostic>
PassSandwich::allFresh() const
{
    std::vector<Diagnostic> out;
    for (const StageResult& s : stages_)
        out.insert(out.end(), s.fresh.begin(), s.fresh.end());
    return out;
}

} // namespace pibe::check
