/**
 * @file
 * Bit-vector dataflow over PIR CFGs.
 *
 * One generic worklist solver (forward/backward direction x union/
 * intersect meet, gen/kill transfer functions) instantiated four ways:
 *
 *  - Liveness        : backward/union over registers;
 *  - FrameLiveness   : backward/union over frame slots;
 *  - ReachingDefs    : forward/union over definition sites;
 *  - DefiniteAssignment : forward/intersect over registers.
 *
 * All block-level results are computed eagerly at construction (PIR
 * functions are small); instruction-granularity views are derived by
 * replaying one block from its boundary fact.
 *
 * Two instruction-granularity APIs coexist:
 *
 *  - the original per-query forms (assignedBefore, defsOfRegAt,
 *    perInstLiveOut returning a fresh vector) replay the block on
 *    every call — O(block²) when queried per instruction. They are
 *    kept as the oracle for differential tests;
 *  - streaming cursors (DefiniteAssignment::Cursor,
 *    ReachingDefs::Cursor) and the reusable FactMatrix overloads of
 *    perInstLiveOut advance through a block once, amortizing each
 *    query to O(1)/O(words). The checkers use these.
 */
#ifndef PIBE_CHECK_DATAFLOW_H_
#define PIBE_CHECK_DATAFLOW_H_

#include <cstdint>
#include <vector>

#include "check/cfg.h"
#include "ir/module.h"

namespace pibe::check {

/** Fixed-width bit set; the lattice element of every solver below. */
class BitVector
{
  public:
    BitVector() = default;
    explicit BitVector(size_t bits, bool ones = false)
        : bits_(bits), words_(wordCount(bits), ones ? ~uint64_t{0} : 0)
    {
        trim();
    }

    size_t size() const { return bits_; }

    void
    set(size_t i)
    {
        bits(i) |= mask(i);
    }
    void
    clear(size_t i)
    {
        bits(i) &= ~mask(i);
    }
    bool
    test(size_t i) const
    {
        return (words_[i >> 6] & mask(i)) != 0;
    }

    /** this |= other. Returns true if any bit changed. */
    bool
    unionWith(const BitVector& other)
    {
        bool changed = false;
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t next = words_[w] | other.words_[w];
            changed |= next != words_[w];
            words_[w] = next;
        }
        return changed;
    }

    /** this &= other. Returns true if any bit changed. */
    bool
    intersectWith(const BitVector& other)
    {
        bool changed = false;
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t next = words_[w] & other.words_[w];
            changed |= next != words_[w];
            words_[w] = next;
        }
        return changed;
    }

    /** this = (this & ~kill) | gen — the gen/kill transfer step. */
    void
    transfer(const BitVector& gen, const BitVector& kill)
    {
        for (size_t w = 0; w < words_.size(); ++w)
            words_[w] = (words_[w] & ~kill.words_[w]) | gen.words_[w];
    }

    bool
    operator==(const BitVector& other) const
    {
        return bits_ == other.bits_ && words_ == other.words_;
    }

    size_t
    count() const
    {
        size_t n = 0;
        for (uint64_t w : words_)
            n += static_cast<size_t>(__builtin_popcountll(w));
        return n;
    }

    /** Raw word storage (bit i lives in word i/64); for bulk copies. */
    const uint64_t* words() const { return words_.data(); }
    size_t numWords() const { return words_.size(); }

  private:
    static size_t wordCount(size_t bits) { return (bits + 63) / 64; }
    static uint64_t mask(size_t i) { return uint64_t{1} << (i & 63); }
    uint64_t&
    bits(size_t i)
    {
        PIBE_ASSERT(i < bits_, "BitVector index ", i, " out of range");
        return words_[i >> 6];
    }

    /** Zero the unused tail bits so operator== stays meaningful. */
    void
    trim()
    {
        if (bits_ % 64 != 0 && !words_.empty())
            words_.back() &= (uint64_t{1} << (bits_ % 64)) - 1;
    }

    size_t bits_ = 0;
    std::vector<uint64_t> words_;
};

/**
 * Dense per-instruction fact matrix: row i is one bit set sized to the
 * analysis universe. One flat allocation, reused across blocks via
 * reset(), so instruction-granularity sweeps do not allocate (or copy
 * a BitVector) per instruction.
 */
class FactMatrix
{
  public:
    void
    reset(size_t rows, size_t bits)
    {
        stride_ = (bits + 63) / 64;
        words_.assign(rows * stride_, 0);
    }

    bool
    test(size_t row, size_t bit) const
    {
        return (words_[row * stride_ + (bit >> 6)] &
                (uint64_t{1} << (bit & 63))) != 0;
    }

    uint64_t* row(size_t r) { return words_.data() + r * stride_; }
    size_t stride() const { return stride_; }

  private:
    size_t stride_ = 0;
    std::vector<uint64_t> words_;
};

/** Solver configuration. */
enum class Direction : uint8_t { kForward, kBackward };
enum class Meet : uint8_t { kUnion, kIntersect };

/** Per-block gen/kill transfer function. */
struct GenKill
{
    BitVector gen;
    BitVector kill;
};

/** Block-level fixpoint of one dataflow problem. */
struct DataflowResult
{
    /** Fact at block entry (forward) resp. block exit (backward). */
    std::vector<BitVector> in;
    /** Fact at block exit (forward) resp. block entry (backward). */
    std::vector<BitVector> out;
    /** Worklist passes until the fixpoint (for tests/telemetry). */
    size_t iterations = 0;
};

/**
 * Run the iterative worklist solver.
 *
 * `boundary` seeds the entry block (forward) or every exit block
 * (backward); unreachable blocks keep the lattice identity (empty for
 * union, full for intersect). `transfer` must have one entry per
 * block, each sized to `universe` bits.
 */
DataflowResult solveDataflow(const Cfg& cfg, Direction dir, Meet meet,
                             size_t universe,
                             const std::vector<GenKill>& transfer,
                             const BitVector& boundary);

// --- Register operand queries (shared by analyses and checkers) -----

/** Register defined by `inst`, or kNoReg. */
ir::Reg instrDef(const ir::Instruction& inst);

/** Append every register `inst` reads to `uses`. */
void appendUses(const ir::Instruction& inst, std::vector<ir::Reg>& uses);

// --- Concrete analyses ---------------------------------------------

/** Backward/union liveness of virtual registers. */
class Liveness
{
  public:
    Liveness(const ir::Function& func, const Cfg& cfg);

    const BitVector& liveIn(ir::BlockId b) const { return result_.out[b]; }
    const BitVector& liveOut(ir::BlockId b) const { return result_.in[b]; }

    /**
     * Live-out fact after each instruction of `b` (index-aligned with
     * the block), derived by replaying the block backward.
     */
    std::vector<BitVector> perInstLiveOut(ir::BlockId b) const;

    /** Allocation-free form: fills `out` (row i = after inst i). */
    void perInstLiveOut(ir::BlockId b, FactMatrix& out) const;

    size_t iterations() const { return result_.iterations; }

  private:
    const ir::Function& func_;
    DataflowResult result_;
};

/** Backward/union liveness of frame slots (kFrameLoad/kFrameStore). */
class FrameLiveness
{
  public:
    FrameLiveness(const ir::Function& func, const Cfg& cfg);

    const BitVector& liveOut(ir::BlockId b) const { return result_.in[b]; }

    /** Live-out fact after each instruction of `b`. */
    std::vector<BitVector> perInstLiveOut(ir::BlockId b) const;

    /** Allocation-free form: fills `out` (row i = after inst i). */
    void perInstLiveOut(ir::BlockId b, FactMatrix& out) const;

  private:
    const ir::Function& func_;
    DataflowResult result_;
};

/** Forward/union reaching definitions. */
class ReachingDefs
{
  public:
    /** One definition site: a parameter or an instruction def. */
    struct Def
    {
        ir::Reg reg = ir::kNoReg;
        bool is_param = false;
        ir::BlockId block = 0; ///< Meaningless for params.
        uint32_t index = 0;    ///< Instruction index; param number.
    };

    ReachingDefs(const ir::Function& func, const Cfg& cfg);

    const std::vector<Def>& defs() const { return defs_; }

    /** Defs reaching the *entry* of block `b`. */
    const BitVector& reachingIn(ir::BlockId b) const
    {
        return result_.in[b];
    }

    /**
     * Ids of defs of `reg` that reach instruction `index` of block `b`
     * (before the instruction executes).
     */
    std::vector<size_t> defsOfRegAt(ir::BlockId b, uint32_t index,
                                    ir::Reg reg) const;

    /**
     * Forward streaming view of defsOfRegAt. startBlock() positions
     * the cursor before the first instruction; query, then advance()
     * past each instruction. Def ids are assigned in block/index
     * order, so the id of the instruction under the cursor is a
     * running counter — no per-query replay.
     */
    class Cursor
    {
      public:
        explicit Cursor(const ReachingDefs& rd)
            : rd_(rd), local_def_(rd.func_.num_regs, SIZE_MAX)
        {
        }

        void startBlock(ir::BlockId b);
        void advance(const ir::Instruction& inst);
        /** Defs of `reg` reaching the current position, into `out`. */
        void defsOf(ir::Reg reg, std::vector<size_t>& out) const;

      private:
        const ReachingDefs& rd_;
        ir::BlockId block_ = 0;
        /** Def id the next defining instruction will occupy. */
        size_t next_id_ = 0;
        /** Latest in-block def id per register; SIZE_MAX = none yet. */
        std::vector<size_t> local_def_;
        std::vector<ir::Reg> touched_;
    };

  private:
    const ir::Function& func_;
    std::vector<Def> defs_;
    /** Def ids grouped by register (kill-set construction). */
    std::vector<std::vector<size_t>> defs_by_reg_;
    /** First def id allocated inside each block (cursor seeding). */
    std::vector<size_t> first_def_in_block_;
    DataflowResult result_;
};

/** Forward/intersect definite assignment of registers. */
class DefiniteAssignment
{
  public:
    DefiniteAssignment(const ir::Function& func, const Cfg& cfg);

    /**
     * Registers definitely assigned on *every* path reaching
     * instruction `index` of block `b` (parameters included).
     */
    BitVector assignedBefore(ir::BlockId b, uint32_t index) const;

    /**
     * Forward streaming view of assignedBefore: one BitVector carried
     * through the block instead of a copy + replay per query.
     */
    class Cursor
    {
      public:
        explicit Cursor(const DefiniteAssignment& da) : da_(da) {}

        void startBlock(ir::BlockId b) { assigned_ = da_.result_.in[b]; }

        void
        advance(const ir::Instruction& inst)
        {
            const ir::Reg d = instrDef(inst);
            if (d != ir::kNoReg && d < assigned_.size())
                assigned_.set(d);
        }

        /** Fact before the instruction the cursor stands on. */
        const BitVector& assigned() const { return assigned_; }

      private:
        const DefiniteAssignment& da_;
        BitVector assigned_;
    };

  private:
    const ir::Function& func_;
    DataflowResult result_;
};

} // namespace pibe::check

#endif // PIBE_CHECK_DATAFLOW_H_
