/**
 * @file
 * Bit-vector dataflow over PIR CFGs.
 *
 * One generic worklist solver (forward/backward direction x union/
 * intersect meet, gen/kill transfer functions) instantiated four ways:
 *
 *  - Liveness        : backward/union over registers;
 *  - FrameLiveness   : backward/union over frame slots;
 *  - ReachingDefs    : forward/union over definition sites;
 *  - DefiniteAssignment : forward/intersect over registers.
 *
 * All block-level results are computed eagerly at construction (PIR
 * functions are small); instruction-granularity views are derived by
 * replaying one block from its boundary fact.
 */
#ifndef PIBE_CHECK_DATAFLOW_H_
#define PIBE_CHECK_DATAFLOW_H_

#include <cstdint>
#include <vector>

#include "check/cfg.h"
#include "ir/module.h"

namespace pibe::check {

/** Fixed-width bit set; the lattice element of every solver below. */
class BitVector
{
  public:
    BitVector() = default;
    explicit BitVector(size_t bits, bool ones = false)
        : bits_(bits), words_(wordCount(bits), ones ? ~uint64_t{0} : 0)
    {
        trim();
    }

    size_t size() const { return bits_; }

    void
    set(size_t i)
    {
        bits(i) |= mask(i);
    }
    void
    clear(size_t i)
    {
        bits(i) &= ~mask(i);
    }
    bool
    test(size_t i) const
    {
        return (words_[i >> 6] & mask(i)) != 0;
    }

    /** this |= other. Returns true if any bit changed. */
    bool
    unionWith(const BitVector& other)
    {
        bool changed = false;
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t next = words_[w] | other.words_[w];
            changed |= next != words_[w];
            words_[w] = next;
        }
        return changed;
    }

    /** this &= other. Returns true if any bit changed. */
    bool
    intersectWith(const BitVector& other)
    {
        bool changed = false;
        for (size_t w = 0; w < words_.size(); ++w) {
            uint64_t next = words_[w] & other.words_[w];
            changed |= next != words_[w];
            words_[w] = next;
        }
        return changed;
    }

    /** this = (this & ~kill) | gen — the gen/kill transfer step. */
    void
    transfer(const BitVector& gen, const BitVector& kill)
    {
        for (size_t w = 0; w < words_.size(); ++w)
            words_[w] = (words_[w] & ~kill.words_[w]) | gen.words_[w];
    }

    bool
    operator==(const BitVector& other) const
    {
        return bits_ == other.bits_ && words_ == other.words_;
    }

    size_t
    count() const
    {
        size_t n = 0;
        for (uint64_t w : words_)
            n += static_cast<size_t>(__builtin_popcountll(w));
        return n;
    }

  private:
    static size_t wordCount(size_t bits) { return (bits + 63) / 64; }
    static uint64_t mask(size_t i) { return uint64_t{1} << (i & 63); }
    uint64_t&
    bits(size_t i)
    {
        PIBE_ASSERT(i < bits_, "BitVector index ", i, " out of range");
        return words_[i >> 6];
    }

    /** Zero the unused tail bits so operator== stays meaningful. */
    void
    trim()
    {
        if (bits_ % 64 != 0 && !words_.empty())
            words_.back() &= (uint64_t{1} << (bits_ % 64)) - 1;
    }

    size_t bits_ = 0;
    std::vector<uint64_t> words_;
};

/** Solver configuration. */
enum class Direction : uint8_t { kForward, kBackward };
enum class Meet : uint8_t { kUnion, kIntersect };

/** Per-block gen/kill transfer function. */
struct GenKill
{
    BitVector gen;
    BitVector kill;
};

/** Block-level fixpoint of one dataflow problem. */
struct DataflowResult
{
    /** Fact at block entry (forward) resp. block exit (backward). */
    std::vector<BitVector> in;
    /** Fact at block exit (forward) resp. block entry (backward). */
    std::vector<BitVector> out;
    /** Worklist passes until the fixpoint (for tests/telemetry). */
    size_t iterations = 0;
};

/**
 * Run the iterative worklist solver.
 *
 * `boundary` seeds the entry block (forward) or every exit block
 * (backward); unreachable blocks keep the lattice identity (empty for
 * union, full for intersect). `transfer` must have one entry per
 * block, each sized to `universe` bits.
 */
DataflowResult solveDataflow(const Cfg& cfg, Direction dir, Meet meet,
                             size_t universe,
                             const std::vector<GenKill>& transfer,
                             const BitVector& boundary);

// --- Register operand queries (shared by analyses and checkers) -----

/** Register defined by `inst`, or kNoReg. */
ir::Reg instrDef(const ir::Instruction& inst);

/** Append every register `inst` reads to `uses`. */
void appendUses(const ir::Instruction& inst, std::vector<ir::Reg>& uses);

// --- Concrete analyses ---------------------------------------------

/** Backward/union liveness of virtual registers. */
class Liveness
{
  public:
    Liveness(const ir::Function& func, const Cfg& cfg);

    const BitVector& liveIn(ir::BlockId b) const { return result_.out[b]; }
    const BitVector& liveOut(ir::BlockId b) const { return result_.in[b]; }

    /**
     * Live-out fact after each instruction of `b` (index-aligned with
     * the block), derived by replaying the block backward.
     */
    std::vector<BitVector> perInstLiveOut(ir::BlockId b) const;

    size_t iterations() const { return result_.iterations; }

  private:
    const ir::Function& func_;
    DataflowResult result_;
};

/** Backward/union liveness of frame slots (kFrameLoad/kFrameStore). */
class FrameLiveness
{
  public:
    FrameLiveness(const ir::Function& func, const Cfg& cfg);

    const BitVector& liveOut(ir::BlockId b) const { return result_.in[b]; }

    /** Live-out fact after each instruction of `b`. */
    std::vector<BitVector> perInstLiveOut(ir::BlockId b) const;

  private:
    const ir::Function& func_;
    DataflowResult result_;
};

/** Forward/union reaching definitions. */
class ReachingDefs
{
  public:
    /** One definition site: a parameter or an instruction def. */
    struct Def
    {
        ir::Reg reg = ir::kNoReg;
        bool is_param = false;
        ir::BlockId block = 0; ///< Meaningless for params.
        uint32_t index = 0;    ///< Instruction index; param number.
    };

    ReachingDefs(const ir::Function& func, const Cfg& cfg);

    const std::vector<Def>& defs() const { return defs_; }

    /** Defs reaching the *entry* of block `b`. */
    const BitVector& reachingIn(ir::BlockId b) const
    {
        return result_.in[b];
    }

    /**
     * Ids of defs of `reg` that reach instruction `index` of block `b`
     * (before the instruction executes).
     */
    std::vector<size_t> defsOfRegAt(ir::BlockId b, uint32_t index,
                                    ir::Reg reg) const;

  private:
    const ir::Function& func_;
    std::vector<Def> defs_;
    /** Def ids grouped by register (kill-set construction). */
    std::vector<std::vector<size_t>> defs_by_reg_;
    DataflowResult result_;
};

/** Forward/intersect definite assignment of registers. */
class DefiniteAssignment
{
  public:
    DefiniteAssignment(const ir::Function& func, const Cfg& cfg);

    /**
     * Registers definitely assigned on *every* path reaching
     * instruction `index` of block `b` (parameters included).
     */
    BitVector assignedBefore(ir::BlockId b, uint32_t index) const;

  private:
    const ir::Function& func_;
    DataflowResult result_;
};

} // namespace pibe::check

#endif // PIBE_CHECK_DATAFLOW_H_
