/**
 * @file
 * Dominator tree over a Cfg, via the Cooper–Harvey–Kennedy "engineered
 * iterative" algorithm: iterate idom updates in reverse post-order,
 * meeting predecessors with a two-finger walk up the current tree,
 * until a fixpoint. Simpler than Lengauer–Tarjan and faster in
 * practice on the small CFGs PIR functions have.
 */
#ifndef PIBE_CHECK_DOMINATORS_H_
#define PIBE_CHECK_DOMINATORS_H_

#include <vector>

#include "check/cfg.h"

namespace pibe::check {

/** Immediate-dominator tree of the reachable part of a Cfg. */
class DomTree
{
  public:
    explicit DomTree(const Cfg& cfg);

    /**
     * Immediate dominator of `b`. The entry block is its own idom;
     * unreachable blocks report kNoIdom.
     */
    static constexpr ir::BlockId kNoIdom = 0xffffffffu;
    ir::BlockId idom(ir::BlockId b) const { return idom_[b]; }

    /** True if `a` dominates `b` (reflexive). False if either block is
     *  unreachable. */
    bool dominates(ir::BlockId a, ir::BlockId b) const;

    /** Children of `b` in the dominator tree. */
    const std::vector<ir::BlockId>& children(ir::BlockId b) const
    {
        return children_[b];
    }

    /** Depth of `b` in the tree (entry = 0; unreachable = SIZE_MAX). */
    size_t depth(ir::BlockId b) const { return depth_[b]; }

  private:
    const Cfg& cfg_;
    std::vector<ir::BlockId> idom_;
    std::vector<std::vector<ir::BlockId>> children_;
    std::vector<size_t> depth_;
};

} // namespace pibe::check

#endif // PIBE_CHECK_DOMINATORS_H_
