#include "check/cfg.h"

#include <algorithm>

namespace pibe::check {

std::vector<ir::BlockId>
terminatorSuccessors(const ir::Instruction& term)
{
    switch (term.op) {
      case ir::Opcode::kBr:
        return {term.t0};
      case ir::Opcode::kCondBr:
        return {term.t0, term.t1};
      case ir::Opcode::kSwitch: {
        std::vector<ir::BlockId> out{term.t0};
        out.insert(out.end(), term.case_targets.begin(),
                   term.case_targets.end());
        return out;
      }
      case ir::Opcode::kRet:
        return {};
      default:
        PIBE_PANIC("terminatorSuccessors on non-terminator");
    }
}

Cfg::Cfg(const ir::Function& func)
{
    const size_t n = func.blocks.size();
    PIBE_ASSERT(n > 0, "Cfg over a declaration: ", func.name);
    succs_.resize(n);
    preds_.resize(n);
    reachable_.assign(n, false);
    in_cycle_.assign(n, false);
    rpo_index_.assign(n, SIZE_MAX);

    for (ir::BlockId b = 0; b < n; ++b) {
        for (ir::BlockId s :
             terminatorSuccessors(func.blocks[b].terminator())) {
            PIBE_ASSERT(s < n, "Cfg: out-of-range successor in ",
                        func.name);
            succs_[b].push_back(s);
        }
        // Deduplicate (a condbr may have t0 == t1; switches repeat
        // targets) so preds/succs are genuine edge sets.
        std::sort(succs_[b].begin(), succs_[b].end());
        succs_[b].erase(std::unique(succs_[b].begin(), succs_[b].end()),
                        succs_[b].end());
    }
    for (ir::BlockId b = 0; b < n; ++b)
        for (ir::BlockId s : succs_[b])
            preds_[s].push_back(b);

    // Iterative DFS from the entry block: reachability + post-order.
    std::vector<ir::BlockId> post;
    post.reserve(n);
    // Frame: (block, next successor index to visit).
    std::vector<std::pair<ir::BlockId, size_t>> stack;
    stack.emplace_back(0, 0);
    reachable_[0] = true;
    while (!stack.empty()) {
        auto& [b, next] = stack.back();
        if (next < succs_[b].size()) {
            ir::BlockId s = succs_[b][next++];
            if (!reachable_[s]) {
                reachable_[s] = true;
                stack.emplace_back(s, 0);
            }
        } else {
            post.push_back(b);
            stack.pop_back();
        }
    }
    rpo_.assign(post.rbegin(), post.rend());
    for (size_t i = 0; i < rpo_.size(); ++i)
        rpo_index_[rpo_[i]] = i;

    // Cycle membership via iterative Tarjan SCC over reachable blocks:
    // a block is on a cycle iff its SCC has >1 member or it has a
    // self-edge.
    std::vector<uint32_t> index(n, 0), lowlink(n, 0);
    std::vector<bool> on_stack(n, false), visited(n, false);
    std::vector<ir::BlockId> scc_stack;
    uint32_t next_index = 1;
    struct TFrame
    {
        ir::BlockId b;
        size_t next;
    };
    std::vector<TFrame> tstack;
    for (ir::BlockId root = 0; root < n; ++root) {
        if (visited[root] || !reachable_[root])
            continue;
        tstack.push_back({root, 0});
        visited[root] = true;
        index[root] = lowlink[root] = next_index++;
        scc_stack.push_back(root);
        on_stack[root] = true;
        while (!tstack.empty()) {
            TFrame& fr = tstack.back();
            if (fr.next < succs_[fr.b].size()) {
                ir::BlockId s = succs_[fr.b][fr.next++];
                if (!visited[s]) {
                    visited[s] = true;
                    index[s] = lowlink[s] = next_index++;
                    scc_stack.push_back(s);
                    on_stack[s] = true;
                    tstack.push_back({s, 0});
                } else if (on_stack[s]) {
                    lowlink[fr.b] = std::min(lowlink[fr.b], index[s]);
                }
            } else {
                const ir::BlockId b = fr.b;
                tstack.pop_back();
                if (!tstack.empty()) {
                    ir::BlockId parent = tstack.back().b;
                    lowlink[parent] =
                        std::min(lowlink[parent], lowlink[b]);
                }
                if (lowlink[b] == index[b]) {
                    // Pop one SCC.
                    std::vector<ir::BlockId> members;
                    for (;;) {
                        ir::BlockId m = scc_stack.back();
                        scc_stack.pop_back();
                        on_stack[m] = false;
                        members.push_back(m);
                        if (m == b)
                            break;
                    }
                    const bool cyclic =
                        members.size() > 1 ||
                        std::find(succs_[b].begin(), succs_[b].end(),
                                  b) != succs_[b].end();
                    if (cyclic)
                        for (ir::BlockId m : members)
                            in_cycle_[m] = true;
                }
            }
        }
    }
}

} // namespace pibe::check
