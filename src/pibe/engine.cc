#include "pibe/engine.h"

#include <bit>
#include <chrono>
#include <memory>
#include <sstream>

#include "ir/parser.h"
#include "ir/printer.h"
#include "profile/serialize.h"
#include "runtime/digest.h"
#include "runtime/thread_pool.h"
#include "support/logging.h"
#include "support/stats.h"
#include "workload/workload.h"

namespace pibe::core {

namespace {

using Clock = std::chrono::steady_clock;

// ---------------------------------------------------------------------
// Cache keys. Every configuration field that can change an artifact is
// hashed explicitly; bump the stage salt when a format changes.

void
hashKernelConfig(runtime::Digest& d, const kernel::KernelConfig& cfg)
{
    d.add("pibe-kernel-v1")
        .add(cfg.seed)
        .add(cfg.num_drivers)
        .add(cfg.helpers_per_driver)
        .add(cfg.kmem_slots);
}

void
hashOptConfig(runtime::Digest& d, const OptConfig& opt)
{
    d.add(opt.enable_icp)
        .add(opt.icp_budget)
        .add(static_cast<int64_t>(opt.inliner))
        .add(opt.inline_budget)
        .add(opt.lax_heuristics)
        .add(opt.lax_budget)
        .add(opt.rule2_caller_threshold)
        .add(opt.rule3_callee_threshold);
}

void
hashDefenseConfig(runtime::Digest& d, const harden::DefenseConfig& def)
{
    d.add(def.retpoline)
        .add(def.lvi_cfi)
        .add(def.ret_retpoline)
        .add(def.jump_switches);
}

void
hashCostParams(runtime::Digest& d, const uarch::CostParams& p)
{
    d.add(p.cost_simple)
        .add(p.cost_free)
        .add(p.cost_mem)
        .add(p.cost_dcall)
        .add(p.cost_arg)
        .add(p.cost_br)
        .add(p.cost_ret_predicted)
        .add(p.cost_ret_mispredict)
        .add(p.cost_icall_predicted)
        .add(p.cost_icall_mispredict)
        .add(p.cost_condbr_predicted)
        .add(p.cost_condbr_mispredict)
        .add(p.cost_retpoline)
        .add(p.cost_lvi_fwd)
        .add(p.cost_fenced_retpoline)
        .add(p.cost_ret_retpoline)
        .add(p.cost_lvi_ret)
        .add(p.cost_fenced_ret)
        .add(p.cost_js_check)
        .add(p.cost_js_patch)
        .add(p.js_max_inline_targets)
        .add(p.js_learn_period)
        .add(p.js_learn_duration)
        .add(p.cost_external)
        .add(p.icache_bytes)
        .add(p.icache_assoc)
        .add(p.icache_line)
        .add(p.icache_miss_penalty)
        .add(p.btb_entries)
        .add(p.rsb_entries)
        .add(p.pht_entries)
        .add(p.eibrs)
        .add(p.cost_eibrs_branch)
        .add(p.rsb_refill_on_entry)
        .add(p.cost_rsb_refill)
        .add(p.cycles_per_us);
}

void
hashMeasureConfig(runtime::Digest& d, const MeasureConfig& cfg)
{
    d.add(cfg.warmup_iters).add(cfg.measure_iters);
    hashCostParams(d, cfg.params);
}

// ---------------------------------------------------------------------
// Measurement artifacts. Doubles are stored as bit patterns so the
// cache-hit path reproduces the computed values exactly.

std::string
serializeMeasurement(const Measurement& m)
{
    std::ostringstream os;
    os << "pibe-measurement v2\n";
    os << "latency_bits " << std::bit_cast<uint64_t>(m.latency_us)
       << "\n";
    os << "ops_bits " << std::bit_cast<uint64_t>(m.ops_per_sec) << "\n";
    const uarch::RunStats& s = m.stats;
    os << "stats " << s.cycles << " " << s.instructions << " "
       << s.direct_calls << " " << s.indirect_calls << " " << s.returns
       << " " << s.cond_branches << " " << s.switches << " "
       << s.icache_misses << " " << s.btb_mispredicts << " "
       << s.rsb_mispredicts << " " << s.pht_mispredicts << " "
       << s.thunk_execs << " " << s.js_hits << " " << s.js_misses << " "
       << s.js_patches << " " << s.js_learning << " "
       << s.max_call_depth << " " << s.peak_frame_slots << "\n";
    // v2: per-family superinstruction execution counts (decoded-path
    // fusion coverage; zero when the measurement ran unfused).
    os << "fused";
    for (const uint64_t f : s.fused)
        os << " " << f;
    os << "\n";
    return os.str();
}

Measurement
parseMeasurement(const std::string& text)
{
    std::istringstream is(text);
    std::string header;
    std::getline(is, header);
    if (header != "pibe-measurement v2")
        PIBE_FATAL("bad measurement artifact header: '", header, "'");
    Measurement m;
    std::string tag;
    uint64_t bits = 0;
    if (!(is >> tag >> bits) || tag != "latency_bits")
        PIBE_FATAL("bad measurement artifact (latency)");
    m.latency_us = std::bit_cast<double>(bits);
    if (!(is >> tag >> bits) || tag != "ops_bits")
        PIBE_FATAL("bad measurement artifact (ops)");
    m.ops_per_sec = std::bit_cast<double>(bits);
    uarch::RunStats& s = m.stats;
    if (!(is >> tag >> s.cycles >> s.instructions >> s.direct_calls >>
          s.indirect_calls >> s.returns >> s.cond_branches >>
          s.switches >> s.icache_misses >> s.btb_mispredicts >>
          s.rsb_mispredicts >> s.pht_mispredicts >> s.thunk_execs >>
          s.js_hits >> s.js_misses >> s.js_patches >> s.js_learning >>
          s.max_call_depth >> s.peak_frame_slots) ||
        tag != "stats")
        PIBE_FATAL("bad measurement artifact (stats)");
    if (!(is >> tag) || tag != "fused")
        PIBE_FATAL("bad measurement artifact (fused)");
    for (uint64_t& f : s.fused) {
        if (!(is >> f))
            PIBE_FATAL("bad measurement artifact (fused counts)");
    }
    return m;
}

std::unique_ptr<workload::Workload>
makeWorkloadByName(const std::string& name)
{
    if (name == "nginx")
        return workload::makeNginxWorkload();
    if (name == "apache")
        return workload::makeApacheWorkload();
    if (name == "dbench")
        return workload::makeDbenchWorkload();
    return workload::makeLmbenchTest(name);
}

} // namespace

// ---------------------------------------------------------------------
// Plan / results helpers.

const std::string&
ExperimentPlan::addImage(std::string name, const OptConfig& opt,
                         const harden::DefenseConfig& defense)
{
    images.push_back({std::move(name), opt, defense});
    return images.back().name;
}

void
ExperimentPlan::measureOn(const std::string& image,
                          const std::string& workload)
{
    runs.push_back({image, workload});
}

void
ExperimentPlan::measureLmbenchOn(const std::string& image)
{
    for (const auto& wl : workload::makeLmbenchSuite())
        runs.push_back({image, wl->name()});
}

const Measurement&
ExperimentResults::at(const std::string& image,
                      const std::string& workload) const
{
    auto img = measurements.find(image);
    PIBE_ASSERT(img != measurements.end(), "no image '", image, "'");
    auto run = img->second.find(workload);
    PIBE_ASSERT(run != img->second.end(), "no measurement '", workload,
                "' on image '", image, "'");
    return run->second;
}

std::map<std::string, double>
ExperimentResults::latencies(const std::string& image) const
{
    auto img = measurements.find(image);
    PIBE_ASSERT(img != measurements.end(), "no image '", image, "'");
    std::map<std::string, double> out;
    for (const auto& [name, m] : img->second)
        out[name] = m.latency_us;
    return out;
}

// ---------------------------------------------------------------------
// The canonical training profile (previously bench-local).

profile::EdgeProfile
collectLmbenchProfile(const ir::Module& kernel,
                      const kernel::KernelInfo& info,
                      uint32_t base_iters)
{
    // LMBench runs each test for a fixed wall time, so cheap tests
    // accumulate far more iterations; the multipliers reproduce that
    // skew (roughly inverse to each test's latency).
    static const std::map<std::string, double> kItersScale = {
        {"null", 16},        {"read", 8},       {"write", 8},
        {"open", 4},         {"stat", 6},       {"fstat", 10},
        {"af_unix", 4},      {"fork/exit", 1},  {"fork/exec", 0.6},
        {"fork/shell", 0.4}, {"pipe", 4},       {"select_file", 3},
        {"select_tcp", 2},   {"tcp_conn", 1.5}, {"udp", 4},
        {"tcp", 4},          {"mmap", 3},       {"page_fault", 8},
        {"sig_install", 12}, {"sig_dispatch", 8},
    };
    profile::EdgeProfile merged;
    for (auto& wl : workload::makeLmbenchSuite()) {
        std::vector<std::unique_ptr<workload::Workload>> one;
        one.push_back(workload::makeLmbenchTest(wl->name()));
        const uint32_t iters = std::max<uint32_t>(
            1, static_cast<uint32_t>(base_iters *
                                     kItersScale.at(wl->name())));
        merged.merge(collectProfile(kernel, info, one, iters));
    }
    return merged;
}

std::string
kernelTextCached(const kernel::KernelConfig& cfg,
                 runtime::ArtifactCache* cache)
{
    runtime::Digest d;
    hashKernelConfig(d, cfg);
    if (cache) {
        if (std::optional<std::string> text = cache->get(d.hex()))
            return *text;
    }
    kernel::KernelImage k = kernel::buildKernel(cfg);
    std::string text = ir::printModule(k.module);
    if (cache)
        cache->put(d.hex(), text);
    return text;
}

std::string
profileTextCached(const std::string& kernel_text,
                  const ir::Module& kernel,
                  const kernel::KernelInfo& info, uint32_t base_iters,
                  runtime::ArtifactCache* cache)
{
    runtime::Digest d;
    d.add("pibe-profile-v1").add(kernel_text).add(base_iters);
    if (cache) {
        if (std::optional<std::string> text = cache->get(d.hex()))
            return *text;
    }
    profile::EdgeProfile p =
        collectLmbenchProfile(kernel, info, base_iters);
    std::string text = profile::serializeProfile(kernel, p);
    if (cache)
        cache->put(d.hex(), text);
    return text;
}

std::string
imageCacheKey(const std::string& kernel_text,
              const std::string& profile_text, const OptConfig& opt,
              const harden::DefenseConfig& defense)
{
    runtime::Digest d;
    d.add("pibe-image-v1").add(kernel_text).add(profile_text);
    hashOptConfig(d, opt);
    hashDefenseConfig(d, defense);
    return d.hex();
}

std::string
imageTextCached(const std::string& kernel_text,
                const ir::Module& kernel,
                const std::string& profile_text,
                const profile::EdgeProfile& profile,
                const OptConfig& opt,
                const harden::DefenseConfig& defense,
                runtime::ArtifactCache* cache)
{
    const std::string key =
        imageCacheKey(kernel_text, profile_text, opt, defense);
    if (cache) {
        if (std::optional<std::string> text = cache->get(key))
            return *text;
    }
    ir::Module img = buildImage(kernel, profile, opt, defense);
    std::string text = ir::printModule(img);
    if (cache)
        cache->put(key, text);
    return text;
}

Measurement
measureWorkloadCached(const std::string& image_text,
                      std::shared_ptr<const uarch::DecodedModule> decoded,
                      const kernel::KernelInfo& info,
                      const std::string& workload_name,
                      const MeasureConfig& config,
                      runtime::ArtifactCache* cache)
{
    runtime::Digest d;
    // v2: measurements run on the pre-decoded stream; its format
    // version invalidates cached results if the encoding ever changes
    // observable stats.
    d.add("pibe-measure-v2")
        .add(uarch::DecodedModule::kFormatVersion)
        .add(image_text)
        .add(workload_name);
    hashMeasureConfig(d, config);
    if (cache) {
        if (std::optional<std::string> text = cache->get(d.hex()))
            return parseMeasurement(*text);
    }
    auto wl = makeWorkloadByName(workload_name);
    Measurement m =
        measureWorkload(std::move(decoded), info, *wl, config);
    if (cache)
        cache->put(d.hex(), serializeMeasurement(m));
    return m;
}

// ---------------------------------------------------------------------
// The engine.

ExperimentResults
runExperiments(const ExperimentPlan& plan, const EngineOptions& opts)
{
    const Clock::time_point t0 = Clock::now();

    runtime::ArtifactCache cache;
    if (opts.use_cache && !opts.cache_dir.empty())
        cache.setDiskDir(opts.cache_dir);
    runtime::ArtifactCache* cachep = opts.use_cache ? &cache : nullptr;

    // Shared pipeline state. Each field is written by exactly one job
    // and read only by its dependents (the graph publishes writes).
    struct Shared
    {
        std::string kernel_text;
        std::unique_ptr<ir::Module> kernel;
        kernel::KernelInfo info;
        std::string profile_text;
        profile::EdgeProfile profile;
    } shared;

    struct BuiltImage
    {
        std::string text;
        std::unique_ptr<ir::Module> module;
        kernel::KernelInfo info;
        /** Decoded once in the image job, shared by every measurement
         *  job on this image (decode cost is per image, not per run). */
        std::shared_ptr<const uarch::DecodedModule> decoded;
    };
    // Pre-create every slot so parallel jobs never mutate map
    // structure, only their own entries.
    std::map<std::string, BuiltImage> images;
    for (const auto& spec : plan.images) {
        PIBE_ASSERT(images.find(spec.name) == images.end(),
                    "duplicate image name '", spec.name, "'");
        images[spec.name];
    }

    ExperimentResults results;
    for (const auto& run : plan.runs) {
        PIBE_ASSERT(images.find(run.image) != images.end(),
                    "measurement references unknown image '", run.image,
                    "'");
        auto [it, inserted] =
            results.measurements[run.image].try_emplace(run.workload);
        (void)it;
        PIBE_ASSERT(inserted, "duplicate measurement '", run.workload,
                    "' on image '", run.image, "'");
    }

    runtime::JobGraph graph;

    const runtime::JobId kernel_job = graph.add(
        "kernel", [&](const runtime::JobContext&) {
            // Always run from the parsed canonical text so cache hits
            // and misses execute the exact same module.
            shared.kernel_text = kernelTextCached(plan.kernel, cachep);
            shared.kernel = std::make_unique<ir::Module>(
                ir::parseModule(shared.kernel_text));
            shared.info = kernel::kernelInfoFromModule(*shared.kernel);
        });

    const runtime::JobId profile_job = graph.add(
        "profile",
        [&](const runtime::JobContext&) {
            shared.profile_text = profileTextCached(
                shared.kernel_text, *shared.kernel, shared.info,
                plan.profile_base_iters, cachep);
            shared.profile =
                profile::liftProfile(*shared.kernel,
                                     shared.profile_text);
        },
        {kernel_job});

    std::map<std::string, runtime::JobId> image_jobs;
    for (const auto& spec : plan.images) {
        image_jobs[spec.name] = graph.add(
            "image:" + spec.name,
            [&, spec, slot = &images[spec.name]](
                const runtime::JobContext&) {
                slot->text = imageTextCached(
                    shared.kernel_text, *shared.kernel,
                    shared.profile_text, shared.profile, spec.opt,
                    spec.defense, cachep);
                slot->module = std::make_unique<ir::Module>(
                    ir::parseModule(slot->text));
                slot->info =
                    kernel::kernelInfoFromModule(*slot->module);
                slot->decoded =
                    std::make_shared<const uarch::DecodedModule>(
                        *slot->module);
            },
            {profile_job});
    }

    for (const auto& run : plan.runs) {
        graph.add(
            "measure:" + run.image + "/" + run.workload,
            [&, run, img = &images.at(run.image),
             out = &results.measurements.at(run.image).at(run.workload)](
                const runtime::JobContext&) {
                *out = measureWorkloadCached(
                    img->text, img->decoded, img->info, run.workload,
                    plan.measure, opts.use_cache ? &cache : nullptr);
            },
            {image_jobs.at(run.image)});
    }

    runtime::ThreadPool pool(std::max(1u, opts.jobs));
    graph.run(pool);
    pool.shutdown();

    results.cache = cache.stats();
    results.jobs = graph.metrics();
    results.wall_ms =
        std::chrono::duration<double, std::milli>(Clock::now() - t0)
            .count();
    return results;
}

Table
engineMetricsTable(const ExperimentResults& results)
{
    Table t({"Job", "queue wait (ms)", "run (ms)"});
    for (const auto& job : results.jobs) {
        t.addRow({job.name,
                  job.ran ? fixedStr(job.queue_wait_ms, 2) : "-",
                  job.ran ? fixedStr(job.run_ms, 2) : "skipped"});
    }
    t.addSeparator();
    t.addRow({"cache: hits (mem+disk)",
              std::to_string(results.cache.mem_hits) + "+" +
                  std::to_string(results.cache.disk_hits),
              percent(results.cache.hitRate())});
    t.addRow({"cache: misses / puts",
              std::to_string(results.cache.misses),
              std::to_string(results.cache.puts)});
    t.addRow({"wall clock", "-", fixedStr(results.wall_ms, 1)});
    return t;
}

} // namespace pibe::core
