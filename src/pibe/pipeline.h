/**
 * @file
 * The PIBE pipeline — the paper's §4 overview as an API.
 *
 * Phase 1 (profiling): collectProfile() runs a workload on the linked
 * module with the edge profiler attached and returns the call-graph
 * edge profile.
 *
 * Phase 2 (production build): buildImage() takes the linked module and
 * a profile and derives a production image by running, in order,
 * profile-guided indirect call promotion, profile-guided inlining
 * (PIBE's or the LLVM-like comparator), and the hardening pass for the
 * requested defense combination. A BuildReport captures every audit
 * the evaluation tables need.
 */
#ifndef PIBE_PIBE_PIPELINE_H_
#define PIBE_PIBE_PIPELINE_H_

#include "check/diagnostic.h"
#include "harden/harden.h"
#include "ir/module.h"
#include "opt/icp.h"
#include "opt/inliner.h"
#include "profile/edge_profile.h"

namespace pibe::core {

/** Which inlining algorithm to run. */
enum class InlinerKind {
    kPibe,        ///< §5.2 greedy weight-ordered inliner.
    kDefaultLlvm, ///< §8.4 bottom-up size-based comparator.
    kNone,        ///< Skip inlining.
};

/** Optimization configuration for one production image. */
struct OptConfig
{
    bool enable_icp = true;
    /** ICP cumulative-weight budget (§5.3). */
    double icp_budget = 0.99999;
    /** Per-site promotion cap (0 = unlimited). When a cap truncates a
     *  guard chain the residual fallback icall is counted in
     *  CoverageReport::capped_residual_icalls. */
    uint32_t icp_max_targets = 0;
    /**
     * Total promotion: compute the interprocedural feasible-target
     * sets (check/target_sets.h), and at sites whose set is complete
     * and small, promote every feasible target and drop the fallback
     * indirect call (Switchpoline precondition). The eliminated sites
     * are counted in CoverageReport::elided_icalls.
     */
    bool icp_total_promotion = false;
    /** Feasible-set size bound for total promotion. */
    uint32_t icp_total_promotion_max_targets = 8;

    InlinerKind inliner = InlinerKind::kPibe;
    /** Inlining cumulative-weight budget (§5.2 Rule 1). */
    double inline_budget = 0.999;
    /** §8.3 "lax heuristics": drop Rules 2-3 inside `lax_budget`. */
    bool lax_heuristics = false;
    double lax_budget = 0.99;
    /** Rule 2 caller-complexity threshold. */
    int64_t rule2_caller_threshold = 12000;
    /** Rule 3 callee-complexity threshold. */
    int64_t rule3_callee_threshold = 3000;

    /** Run the scalar/CFG cleanup pass after inlining. Off by default
     *  so the evaluation's golden image statistics stay comparable. */
    bool module_cleanup = false;

    /**
     * Pass-sandwich mode: run the `src/check` audit suite on the
     * pipeline input and again after every pass, record fresh findings
     * in BuildReport::sandwich, and abort the build if a pass
     * *introduces* error-severity findings (see check::PassSandwich).
     * The input module's own pre-existing lint findings never abort.
     */
    bool sandwich = true;

    /** Convenience: no optimization at all (the LTO baseline). */
    static OptConfig
    none()
    {
        OptConfig c;
        c.enable_icp = false;
        c.inliner = InlinerKind::kNone;
        return c;
    }

    /** ICP only, at `budget` (Table 3 configurations). */
    static OptConfig
    icpOnly(double budget)
    {
        OptConfig c;
        c.enable_icp = true;
        c.icp_budget = budget;
        c.inliner = InlinerKind::kNone;
        return c;
    }

    /** ICP at 99.999% plus PIBE inlining at `budget` (Table 5). */
    static OptConfig
    icpAndInline(double inline_budget, bool lax = false)
    {
        OptConfig c;
        c.icp_budget = 0.99999;
        c.inline_budget = inline_budget;
        c.lax_heuristics = lax;
        return c;
    }
};

/** Everything the evaluation tables read out of one image build. */
struct BuildReport
{
    opt::IcpAudit icp;
    opt::InlineAudit inlining;
    harden::CoverageReport coverage;
    uint64_t image_size = 0;          ///< Bytes after all passes.
    uint64_t baseline_image_size = 0; ///< Bytes of the input module.
    /**
     * Incremental-audit effectiveness (sandwich mode only): analyses
     * recomputed vs. served from cache across all sandwich stages. The
     * pipeline keeps one check::AnalysisManager alive for the whole
     * pass sequence and invalidates exactly the functions each pass
     * reports as touched, so functions no pass mutated are audited
     * from cache at every stage.
     */
    size_t analyses_computed = 0;
    size_t analyses_reused = 0;
    /** The profile as transformed by the passes (promoted weights
     *  moved to direct edges, inherited sites added). */
    profile::EdgeProfile final_profile;
    /** Fresh audit findings per pipeline stage (sandwich mode only),
     *  each Diagnostic::pass naming the stage that introduced it. */
    std::vector<check::Diagnostic> sandwich;
};

/**
 * Derive a production image from `linked` using `profile`. The input
 * module is copied; the profile is copied and transformed internally.
 */
ir::Module buildImage(const ir::Module& linked,
                      const profile::EdgeProfile& profile,
                      const OptConfig& opt,
                      const harden::DefenseConfig& defenses,
                      BuildReport* report = nullptr);

} // namespace pibe::core

#endif // PIBE_PIBE_PIPELINE_H_
