/**
 * @file
 * Measurement harness shared by the benchmark binaries and examples:
 * profiling runs, latency/throughput measurement, and overhead math.
 */
#ifndef PIBE_PIBE_EXPERIMENT_H_
#define PIBE_PIBE_EXPERIMENT_H_

#include <map>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "kernel/kernel.h"
#include "profile/edge_profile.h"
#include "uarch/cost_model.h"
#include "uarch/simulator.h"
#include "workload/workload.h"

namespace pibe::core {

/** Knobs of one latency/throughput measurement. */
struct MeasureConfig
{
    uint32_t warmup_iters = 150; ///< Train predictors and i-cache.
    uint32_t measure_iters = 400;
    uarch::CostParams params;
};

/** Result of measuring one workload on one image. */
struct Measurement
{
    double latency_us = 0;       ///< Cycles per iteration / 1000.
    double ops_per_sec = 0;      ///< Iterations per simulated second.
    uarch::RunStats stats;       ///< Counters over the measured phase.
};

/**
 * Boot the kernel image, run the workload's setup and warmup, then
 * measure `measure_iters` iterations.
 */
Measurement measureWorkload(const ir::Module& image,
                            const kernel::KernelInfo& info,
                            workload::Workload& wl,
                            const MeasureConfig& config = {});

/**
 * Same, on a pre-decoded image: decoding is paid by the caller, once,
 * and shared across every simulator built from it (the engine decodes
 * each image a single time for all of its measurement jobs).
 */
Measurement
measureWorkload(std::shared_ptr<const uarch::DecodedModule> decoded,
                const kernel::KernelInfo& info, workload::Workload& wl,
                const MeasureConfig& config = {});

/**
 * Measure a whole suite; returns test name -> measurement.
 *
 * Workloads that declare no cross-test state (see
 * Workload::hasCrossTestState) share a single booted image — the
 * microarchitectural state is reset between tests, but boot and code
 * layout are paid once. Stateful workloads get a fresh boot each.
 */
std::map<std::string, Measurement>
measureSuite(const ir::Module& image, const kernel::KernelInfo& info,
             std::span<const std::unique_ptr<workload::Workload>> suite,
             const MeasureConfig& config = {});

/**
 * Phase-1 profiling run: execute every workload (setup + iterations)
 * with the edge profiler attached; timing is irrelevant and disabled.
 * `repeats` models the paper's 11 profiling rounds (counts merge).
 */
profile::EdgeProfile
collectProfile(const ir::Module& linked, const kernel::KernelInfo& info,
               const std::vector<std::unique_ptr<workload::Workload>>& suite,
               uint32_t iters_per_test = 300, uint32_t repeats = 1);

} // namespace pibe::core

#endif // PIBE_PIBE_EXPERIMENT_H_
