#include "pibe/experiment.h"

namespace pibe::core {

namespace {

/** Setup + warmup + measured phase on an already-booted simulator. */
Measurement
measureOnBooted(uarch::Simulator& sim, const kernel::KernelInfo& info,
                workload::Workload& wl, const MeasureConfig& config)
{
    workload::KernelHandle handle(sim, info);
    wl.setup(handle);
    for (uint32_t i = 0; i < config.warmup_iters; ++i)
        wl.iteration(handle, i);

    sim.clearStats();
    for (uint32_t i = 0; i < config.measure_iters; ++i)
        wl.iteration(handle, config.warmup_iters + i);

    Measurement m;
    m.stats = sim.stats();
    const double cycles_per_iter =
        static_cast<double>(m.stats.cycles) /
        static_cast<double>(config.measure_iters);
    m.latency_us =
        cycles_per_iter / static_cast<double>(config.params.cycles_per_us);
    // Simulated clock: cycles_per_us * 1e6 cycles per second.
    m.ops_per_sec =
        cycles_per_iter > 0
            ? static_cast<double>(config.params.cycles_per_us) * 1e6 /
                  cycles_per_iter
            : 0;
    return m;
}

} // namespace

Measurement
measureWorkload(const ir::Module& image, const kernel::KernelInfo& info,
                workload::Workload& wl, const MeasureConfig& config)
{
    return measureWorkload(
        std::make_shared<const uarch::DecodedModule>(image), info, wl,
        config);
}

Measurement
measureWorkload(std::shared_ptr<const uarch::DecodedModule> decoded,
                const kernel::KernelInfo& info, workload::Workload& wl,
                const MeasureConfig& config)
{
    uarch::Simulator sim(std::move(decoded), config.params);
    workload::KernelHandle handle(sim, info);
    handle.boot();
    return measureOnBooted(sim, info, wl, config);
}

std::map<std::string, Measurement>
measureSuite(const ir::Module& image, const kernel::KernelInfo& info,
             std::span<const std::unique_ptr<workload::Workload>> suite,
             const MeasureConfig& config)
{
    std::map<std::string, Measurement> results;
    // Decode once for the whole suite: stateful workloads get a fresh
    // boot on the shared decoded image, stateless ones also share one
    // booted simulator.
    const auto decoded =
        std::make_shared<const uarch::DecodedModule>(image);
    std::unique_ptr<uarch::Simulator> shared;
    for (const auto& wl : suite) {
        if (wl->hasCrossTestState()) {
            results[wl->name()] =
                measureWorkload(decoded, info, *wl, config);
            continue;
        }
        if (!shared) {
            shared = std::make_unique<uarch::Simulator>(decoded,
                                                        config.params);
            workload::KernelHandle handle(*shared, info);
            handle.boot();
        } else {
            // Comparable starting conditions without a re-boot.
            shared->resetMicroarch();
        }
        results[wl->name()] =
            measureOnBooted(*shared, info, *wl, config);
    }
    return results;
}

profile::EdgeProfile
collectProfile(const ir::Module& linked, const kernel::KernelInfo& info,
               const std::vector<std::unique_ptr<workload::Workload>>& suite,
               uint32_t iters_per_test, uint32_t repeats)
{
    profile::EdgeProfile profile;
    // One decode serves every profiling simulator below.
    const auto decoded =
        std::make_shared<const uarch::DecodedModule>(linked);
    for (uint32_t round = 0; round < repeats; ++round) {
        // Fresh kernel state per test so descriptor/socket tables do
        // not leak across setups (each LMBench binary is a process).
        for (const auto& wl : suite) {
            profile::EdgeProfile test_profile;
            uarch::Simulator sim(decoded);
            sim.setTimingEnabled(false);
            sim.setProfiler(&test_profile);
            workload::KernelHandle handle(sim, info);
            handle.boot();
            wl->setup(handle);
            for (uint32_t i = 0; i < iters_per_test; ++i)
                wl->iteration(handle, i);
            profile.merge(test_profile);
        }
    }
    return profile;
}

} // namespace pibe::core
