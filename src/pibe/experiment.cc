#include "pibe/experiment.h"

namespace pibe::core {

Measurement
measureWorkload(const ir::Module& image, const kernel::KernelInfo& info,
                workload::Workload& wl, const MeasureConfig& config)
{
    uarch::Simulator sim(image, config.params);
    workload::KernelHandle handle(sim, info);

    handle.boot();
    wl.setup(handle);
    for (uint32_t i = 0; i < config.warmup_iters; ++i)
        wl.iteration(handle, i);

    sim.clearStats();
    for (uint32_t i = 0; i < config.measure_iters; ++i)
        wl.iteration(handle, config.warmup_iters + i);

    Measurement m;
    m.stats = sim.stats();
    const double cycles_per_iter =
        static_cast<double>(m.stats.cycles) /
        static_cast<double>(config.measure_iters);
    m.latency_us =
        cycles_per_iter / static_cast<double>(config.params.cycles_per_us);
    // Simulated clock: cycles_per_us * 1e6 cycles per second.
    m.ops_per_sec =
        cycles_per_iter > 0
            ? static_cast<double>(config.params.cycles_per_us) * 1e6 /
                  cycles_per_iter
            : 0;
    return m;
}

std::map<std::string, Measurement>
measureSuite(const ir::Module& image, const kernel::KernelInfo& info,
             const std::vector<std::unique_ptr<workload::Workload>>& suite,
             const MeasureConfig& config)
{
    std::map<std::string, Measurement> results;
    for (const auto& wl : suite)
        results[wl->name()] = measureWorkload(image, info, *wl, config);
    return results;
}

profile::EdgeProfile
collectProfile(const ir::Module& linked, const kernel::KernelInfo& info,
               const std::vector<std::unique_ptr<workload::Workload>>& suite,
               uint32_t iters_per_test, uint32_t repeats)
{
    profile::EdgeProfile profile;
    for (uint32_t round = 0; round < repeats; ++round) {
        // Fresh kernel state per test so descriptor/socket tables do
        // not leak across setups (each LMBench binary is a process).
        for (const auto& wl : suite) {
            profile::EdgeProfile test_profile;
            uarch::Simulator sim(linked);
            sim.setTimingEnabled(false);
            sim.setProfiler(&test_profile);
            workload::KernelHandle handle(sim, info);
            handle.boot();
            wl->setup(handle);
            for (uint32_t i = 0; i < iters_per_test; ++i)
                wl->iteration(handle, i);
            profile.merge(test_profile);
        }
    }
    return profile;
}

} // namespace pibe::core
