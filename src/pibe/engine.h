/**
 * @file
 * The parallel experiment-execution engine.
 *
 * Every evaluation table runs the same pipeline: build the synthetic
 * kernel, collect the LMBench profile, derive production images for a
 * set of (OptConfig, DefenseConfig) points, and measure workloads on
 * each image. runExperiments() expresses one such plan as a DAG of
 * jobs on a thread pool (src/runtime), with every stage memoized in a
 * content-addressed artifact cache:
 *
 *   kernel ──> profile ──> image(c1) ──> measure(c1, wl1..wlN)
 *                     └──> image(c2) ──> measure(c2, wl1..wlN)  ...
 *
 * Artifacts are canonical texts (module print, profile serialization,
 * measurement dump) keyed by the digest of everything that produced
 * them, so re-runs and cross-table runs sharing a cache directory skip
 * the expensive stages entirely.
 *
 * Determinism: every stage consumes the *parsed canonical text* of its
 * inputs (never the in-memory object that produced the text), and each
 * job's stochastic state is seeded from its job key — so results are
 * bit-identical across serial/parallel and cold/warm-cache runs.
 */
#ifndef PIBE_PIBE_ENGINE_H_
#define PIBE_PIBE_ENGINE_H_

#include <map>
#include <string>
#include <vector>

#include "harden/harden.h"
#include "pibe/experiment.h"
#include "pibe/pipeline.h"
#include "runtime/artifact_cache.h"
#include "runtime/job_graph.h"
#include "support/table.h"

namespace pibe::core {

/** One table's worth of work: images to build, measurements to take. */
struct ExperimentPlan
{
    kernel::KernelConfig kernel;
    /** Base iteration count of the skewed LMBench training profile. */
    uint32_t profile_base_iters = 120;
    MeasureConfig measure;

    /** One production image: a named (OptConfig, DefenseConfig) point. */
    struct ImageSpec
    {
        std::string name;
        OptConfig opt;
        harden::DefenseConfig defense;
    };
    std::vector<ImageSpec> images;

    /** One measurement: a workload (LMBench test name, or "nginx" /
     *  "apache" / "dbench") on a named image. */
    struct MeasureSpec
    {
        std::string image;
        std::string workload;
    };
    std::vector<MeasureSpec> runs;

    /** Add an image spec (returns its name for chaining). */
    const std::string& addImage(std::string name, const OptConfig& opt,
                                const harden::DefenseConfig& defense);

    /** Schedule one workload on `image`. */
    void measureOn(const std::string& image, const std::string& workload);

    /** Schedule every LMBench test of the suite on `image`. */
    void measureLmbenchOn(const std::string& image);
};

/** Execution knobs of runExperiments(). */
struct EngineOptions
{
    /** Worker threads for the job graph (1 = serial). */
    unsigned jobs = 1;
    /** Memoize artifacts (in-memory; plus disk when cache_dir set). */
    bool use_cache = true;
    /** On-disk cache directory; empty = in-memory only. */
    std::string cache_dir;
};

/** Everything a table formatter needs after the graph has drained. */
struct ExperimentResults
{
    /** image name -> workload name -> measurement. */
    std::map<std::string, std::map<std::string, Measurement>>
        measurements;

    runtime::CacheStats cache;
    std::vector<runtime::JobMetrics> jobs;
    double wall_ms = 0;

    const Measurement& at(const std::string& image,
                          const std::string& workload) const;

    /** latency_us per workload for one image (bench table input). */
    std::map<std::string, double>
    latencies(const std::string& image) const;
};

/**
 * Execute `plan` on a pool of `opts.jobs` workers. Parallel results
 * are bit-identical to `jobs = 1`.
 */
ExperimentResults runExperiments(const ExperimentPlan& plan,
                                 const EngineOptions& opts = {});

// ---------------------------------------------------------------------
// Staged entry points. Each pipeline stage is exposed as a cached
// function over *canonical artifact text* so any caller — the
// runExperiments() job graph, the CLI, or a long-running `pibe serve`
// daemon — computes bit-identical artifacts through the same code and
// the same cache keys. `cache` may be null (no memoization).

/** Canonical kernel module text for `cfg`, memoized in `cache`. */
std::string kernelTextCached(const kernel::KernelConfig& cfg,
                             runtime::ArtifactCache* cache);

/**
 * Canonical serialized LMBench training profile for `kernel` (which
 * must be the parse of `kernel_text` — the text is the cache key, the
 * module is the execution input).
 */
std::string profileTextCached(const std::string& kernel_text,
                              const ir::Module& kernel,
                              const kernel::KernelInfo& info,
                              uint32_t base_iters,
                              runtime::ArtifactCache* cache);

/** Cache key of the production image for one (opt, defense) point. */
std::string imageCacheKey(const std::string& kernel_text,
                          const std::string& profile_text,
                          const OptConfig& opt,
                          const harden::DefenseConfig& defense);

/**
 * Canonical production-image text for one (opt, defense) point.
 * `kernel`/`profile` must be the parses of the two texts.
 */
std::string imageTextCached(const std::string& kernel_text,
                            const ir::Module& kernel,
                            const std::string& profile_text,
                            const profile::EdgeProfile& profile,
                            const OptConfig& opt,
                            const harden::DefenseConfig& defense,
                            runtime::ArtifactCache* cache);

/**
 * One cached measurement. Key = (canonical image text, decoded-stream
 * format version, workload name, MeasureConfig incl. cost params);
 * value = the serialized Measurement, doubles stored as bit patterns
 * so a hit reproduces the computed result exactly. `decoded` is the
 * pre-decoded image (decode once, pass to every measurement of the
 * same image). `workload_name` is an LMBench test name or "nginx" /
 * "apache" / "dbench". `cache` may be null (no memoization). Shared by
 * runExperiments() and `pibe measure --jobs`.
 */
Measurement
measureWorkloadCached(const std::string& image_text,
                      std::shared_ptr<const uarch::DecodedModule> decoded,
                      const kernel::KernelInfo& info,
                      const std::string& workload_name,
                      const MeasureConfig& config,
                      runtime::ArtifactCache* cache);

/**
 * The canonical LMBench training profile: each test contributes
 * iterations scaled like LMBench's fixed-wall-time loops (cheap tests
 * run many more iterations), which produces the orders-of-magnitude
 * weight spread PIBE's budgets rely on.
 */
profile::EdgeProfile
collectLmbenchProfile(const ir::Module& kernel,
                      const kernel::KernelInfo& info,
                      uint32_t base_iters = 120);

/** Per-job metrics + cache counters as a printable table. */
Table engineMetricsTable(const ExperimentResults& results);

} // namespace pibe::core

#endif // PIBE_PIBE_ENGINE_H_
