#include "pibe/pipeline.h"

#include "analysis/layout.h"
#include "ir/verifier.h"

namespace pibe::core {

ir::Module
buildImage(const ir::Module& linked, const profile::EdgeProfile& profile,
           const OptConfig& opt, const harden::DefenseConfig& defenses,
           BuildReport* report)
{
    ir::Module image = linked; // snapshot
    profile::EdgeProfile working = profile;
    BuildReport local;
    BuildReport& rep = report ? *report : local;

    rep.baseline_image_size = analysis::CodeLayout(linked).imageSize();

    // Promotion first: it turns hot indirect edges into direct ones,
    // creating inlining candidates (§5.3).
    if (opt.enable_icp) {
        opt::IcpConfig cfg;
        cfg.budget = opt.icp_budget;
        rep.icp = opt::runIcp(image, working, cfg);
    }

    switch (opt.inliner) {
      case InlinerKind::kPibe: {
        opt::PibeInlinerConfig cfg;
        cfg.budget = opt.inline_budget;
        cfg.lax_heuristics = opt.lax_heuristics;
        cfg.lax_budget = opt.lax_budget;
        cfg.rule2_caller_threshold = opt.rule2_caller_threshold;
        cfg.rule3_callee_threshold = opt.rule3_callee_threshold;
        rep.inlining = opt::runPibeInliner(image, working, cfg);
        break;
      }
      case InlinerKind::kDefaultLlvm: {
        opt::DefaultInlinerConfig cfg;
        cfg.budget = opt.inline_budget;
        rep.inlining = opt::runDefaultInliner(image, working, cfg);
        break;
      }
      case InlinerKind::kNone:
        break;
    }

    rep.coverage = harden::applyDefenses(image, defenses);
    rep.image_size = analysis::CodeLayout(image).imageSize();
    rep.final_profile = std::move(working);

    ir::verifyOrDie(image, "buildImage(" + defenses.name() + ")");
    return image;
}

} // namespace pibe::core
