#include "pibe/pipeline.h"

#include "analysis/layout.h"
#include "check/sandwich.h"
#include "check/target_sets.h"
#include "ir/verifier.h"
#include "opt/cleanup.h"

namespace pibe::core {

namespace {

/**
 * One sandwich stage: audit `image` after `pass` and die if the pass
 * regressed the module. Structural (verify.*) errors are always fatal
 * — they were before this suite existed, via verifyOrDie — while
 * lint/coverage findings only abort when a pass *introduced* them, so
 * modules that enter the pipeline with pre-existing lint findings
 * still build.
 */
void
auditStage(check::PassSandwich& sandwich, const std::string& pass,
           const ir::Module& image, const check::CheckOptions& opts,
           BuildReport& rep, check::AnalysisManager* am)
{
    const check::StageResult& stage =
        sandwich.afterPass(pass, image, opts, am);
    rep.sandwich.insert(rep.sandwich.end(), stage.fresh.begin(),
                        stage.fresh.end());
    for (const check::Diagnostic& d : stage.fresh) {
        if (d.severity == check::Severity::kError &&
            d.check_id.rfind("verify.", 0) == 0) {
            PIBE_FATAL("pass sandwich: structural verification failed ",
                       "at stage '", pass, "': ", d.render());
        }
    }
    if (stage.regressed()) {
        const check::Diagnostic* first = stage.firstFreshError();
        PIBE_FATAL("pass sandwich: pass '", pass, "' introduced ",
                   stage.regressed_checks.size(),
                   " regressed check(s), first: ",
                   first ? first->render()
                         : "(error counts rose without a fresh "
                           "location; likely a duplicated finding)");
    }
}

} // namespace

ir::Module
buildImage(const ir::Module& linked, const profile::EdgeProfile& profile,
           const OptConfig& opt, const harden::DefenseConfig& defenses,
           BuildReport* report)
{
    ir::Module image = linked; // snapshot
    profile::EdgeProfile working = profile;
    BuildReport local;
    BuildReport& rep = report ? *report : local;

    rep.baseline_image_size = analysis::imageSizeOf(linked);

    // One analysis cache spans the whole pass sequence. Each pass
    // reports the functions it mutated; only those are invalidated
    // before the next audit, so the sandwich re-derives analyses for
    // exactly the code that changed.
    check::PassSandwich sandwich;
    check::AnalysisManager am(image);
    auto audit = [&](const std::string& pass, bool coverage,
                     bool profile_flow) {
        if (!opt.sandwich)
            return;
        check::CheckOptions copts;
        copts.coverage = coverage;
        copts.defense = defenses;
        // Feasible-target validation at every stage: ICP guard chains
        // and op-table entries must stay inside the statically
        // feasible sets (fresh verify.targets errors are fatal).
        copts.targets = true;
        // Flow conservation only holds for the profile as collected;
        // the inliners inherit edge weights into cloned sites without
        // subtracting them from the originals, so the invariants are
        // checked once, against the unmodified pipeline input.
        copts.profile_flow = profile_flow;
        copts.profile = &profile;
        auditStage(sandwich, pass, image, copts, rep, &am);
    };
    auto invalidateTouched = [&](const std::vector<ir::FuncId>& touched) {
        for (ir::FuncId f : touched)
            am.invalidate(f);
    };

    audit("input", /*coverage=*/false, /*profile_flow=*/true);

    // Promotion first: it turns hot indirect edges into direct ones,
    // creating inlining candidates (§5.3).
    if (opt.enable_icp) {
        opt::IcpConfig cfg;
        cfg.budget = opt.icp_budget;
        cfg.max_targets_per_site = opt.icp_max_targets;
        opt::FeasibilityMap feas;
        if (opt.icp_total_promotion) {
            // Snapshot the pre-ICP feasible sets; the planner drops
            // fallback icalls only where the set is complete and
            // fully covered by guarded direct calls.
            feas = check::feasibilityMap(am.targetSets());
            cfg.feasibility = &feas;
            cfg.total_promotion = true;
            cfg.total_promotion_max_targets =
                opt.icp_total_promotion_max_targets;
        }
        rep.icp = opt::runIcp(image, working, cfg);
        invalidateTouched(rep.icp.touched);
        audit("icp", false, false);
    }

    switch (opt.inliner) {
      case InlinerKind::kPibe: {
        opt::PibeInlinerConfig cfg;
        cfg.budget = opt.inline_budget;
        cfg.lax_heuristics = opt.lax_heuristics;
        cfg.lax_budget = opt.lax_budget;
        cfg.rule2_caller_threshold = opt.rule2_caller_threshold;
        cfg.rule3_callee_threshold = opt.rule3_callee_threshold;
        rep.inlining = opt::runPibeInliner(image, working, cfg);
        invalidateTouched(rep.inlining.touched);
        audit("inline", false, false);
        break;
      }
      case InlinerKind::kDefaultLlvm: {
        opt::DefaultInlinerConfig cfg;
        cfg.budget = opt.inline_budget;
        rep.inlining = opt::runDefaultInliner(image, working, cfg);
        invalidateTouched(rep.inlining.touched);
        audit("inline", false, false);
        break;
      }
      case InlinerKind::kNone:
        break;
    }

    if (opt.module_cleanup) {
        opt::cleanupModule(image);
        am.invalidateAll(); // module-wide pass: everything changed
        audit("cleanup", false, false);
    }

    std::vector<ir::FuncId> harden_touched;
    rep.coverage = harden::applyDefenses(image, defenses, &harden_touched);
    // ICP residue accounting: analyzeCoverage cannot recover these
    // from the module alone, so the pipeline fills them from the
    // promotion audit (satisfying Table 6/11's surface columns).
    rep.coverage.capped_residual_icalls = rep.icp.capped_sites;
    rep.coverage.elided_icalls = rep.icp.fallbacks_dropped;
    invalidateTouched(harden_touched);
    audit("harden", /*coverage=*/true, /*profile_flow=*/false);

    rep.analyses_computed = am.computations();
    rep.analyses_reused = am.hits();
    rep.image_size = analysis::imageSizeOf(image);
    rep.final_profile = std::move(working);

    if (!opt.sandwich)
        ir::verifyOrDie(image, "buildImage(" + defenses.name() + ")");
    return image;
}

} // namespace pibe::core
