/**
 * @file
 * Parallel incremental optimization pipeline for Linux-scale modules.
 *
 * buildImageParallel() derives a production image the way
 * core::buildImage() does — ICP, profile-guided inlining, hardening,
 * audit — but schedules the per-function work of every stage as jobs
 * over the runtime ThreadPool/JobGraph, with the invariant that the
 * resulting module is *bit-identical* (moduleDigest()) for any worker
 * count, including --jobs 1. Determinism comes from three rules:
 *
 *  1. Decisions are serial, mutations are parallel. Every stage plans
 *     on one thread (ICP site selection, inline round selection,
 *     shard assignment) and only fans out function-local rewrites
 *     whose inputs are frozen for the duration of the fan-out.
 *  2. No allocator contention: fresh SiteIds are pre-assigned at plan
 *     time in the order the serial algorithm would have drawn them
 *     (opt::planIcp, opt::inlineCallSiteWithIds), so ids never depend
 *     on scheduling.
 *  3. Merges are ordered: profile updates happen serially in plan
 *     order, shard results (coverage counts, diagnostics) concatenate
 *     in FuncId order.
 *
 * Stage-level pipelining: the stages are not globally barriered.
 * Before any rewrite, the pipeline partitions functions into
 * *participants* — any function that ICP or the inliner could read or
 * write (callers and callees of profiled direct call sites, callers
 * and profiled targets of profiled indirect sites) — and the *quiet*
 * remainder, which no optimization pass will touch. Quiet functions
 * are hardened and audited in the same JobGraph as the ICP rewrites,
 * so for a typical kernel-shaped profile (a hot minority of
 * functions) most of the hardening/audit work overlaps the ICP stage
 * instead of waiting behind the inliner. Participants are hardened
 * and audited after the inliner finishes, and the module-wide audit
 * tail itself fans out via check::runChecksParallel. The schedule is
 * the same at every worker count, so bit-identity is preserved.
 *
 * The inliner here is the round-based parallel formulation of PIBE's
 * greedy weight-ordered inliner (§5.2): each round selects, in weight
 * order, a maximal set of candidates whose callers are pairwise
 * distinct and whose callees are not mutated in the same round
 * (callers are written, callees only read), applies them concurrently,
 * then serially propagates constant-ratio inherited weights and
 * re-queues inherited candidates. Rules 1–3 and the constant-ratio
 * heuristic are unchanged; only the interleaving differs from the
 * strictly-serial greedy order, and it differs deterministically.
 * Hardening a quiet function early cannot change an inline decision:
 * hardening is function-local, inserts no call instructions, and
 * allocates no SiteIds, so the call graph, the cost cache, and the
 * candidate set the inliner sees are those of the un-hardened module.
 *
 * The audit stage runs check::runFunctionChecks per shard with one
 * private AnalysisManager per job, then the module-wide obligations
 * (site-id uniqueness, coverage reconciliation, feasible-target
 * validation) through runChecksParallel on the same pool. Each
 * shard's audit is scheduled as a JobGraph dependent of that shard's
 * hardening job, so auditing overlaps hardening across shards.
 *
 * Small-module regime: JobGraph admission and pool wake-ups cost more
 * than they save below a few thousand instructions. When the module
 * is smaller than `serial_below_insts` (or jobs <= 1), every fan-out
 * point executes its job bodies inline, in add order — exactly the
 * serial schedule, so the digest is unchanged — and no pool is
 * created or touched. Callers that build many images (scalebench)
 * can also inject a pre-warmed pool via `pool` so thread start-up is
 * paid once per process instead of once per build.
 */
#ifndef PIBE_SCALE_PARALLEL_PIPELINE_H_
#define PIBE_SCALE_PARALLEL_PIPELINE_H_

#include <cstdint>
#include <string>

#include "check/checks.h"
#include "harden/harden.h"
#include "ir/module.h"
#include "opt/icp.h"
#include "opt/inliner.h"
#include "profile/edge_profile.h"

namespace pibe::runtime {
class ThreadPool;
}

namespace pibe::scale {

/** Knobs for buildImageParallel(). */
struct ParallelPipelineConfig
{
    /** Worker threads. 1 runs the identical algorithm serially. */
    size_t jobs = 1;
    /** Functions per harden/check shard job. */
    size_t shard_size = 64;

    /**
     * Pre-warmed pool to run on instead of creating one per build.
     * The pool's thread count wins over `jobs` for scheduling; `jobs`
     * still gates the serial bypass (jobs <= 1 always runs inline).
     */
    runtime::ThreadPool* pool = nullptr;

    /**
     * Below this many instructions the JobGraph/pool machinery costs
     * more than it saves: run every fan-out inline (same schedule,
     * same digest) and leave the pool untouched. 0 disables the
     * bypass.
     */
    uint64_t serial_below_insts = 4096;

    bool enable_icp = true;
    opt::IcpConfig icp;

    bool enable_inline = true;
    opt::PibeInlinerConfig inline_cfg;

    harden::DefenseConfig defenses;

    /** Run the parallel audit stage after hardening. */
    bool run_checks = true;
};

/**
 * Per-stage timing, for BENCH_scale.json curves. Stages overlap —
 * quiet-function hardening/audit runs inside the ICP fan-out — so
 * the wall fields are observable boundaries, not a partition:
 * icp_ms covers serial planning plus the fused ICP+quiet graph,
 * harden_ms the post-inline participant graph plus coverage
 * analysis, and check_ms the span from the first audit job to the
 * end of the module-wide tail.
 */
struct StageTiming
{
    double plan_ms = 0; ///< Serial ICP planning (incl. feasibility).
    double icp_ms = 0;
    double inline_ms = 0;
    double harden_ms = 0;
    double check_ms = 0;
    double total_ms = 0; ///< Whole build, wall.
    double cpu_ms = 0;   ///< Whole build, process CPU (user+sys).
};

/** Everything one parallel build reports. */
struct ParallelPipelineReport
{
    opt::IcpAudit icp;
    opt::InlineAudit inlining;
    uint32_t inline_rounds = 0; ///< Rounds of the parallel inliner.
    harden::CoverageReport coverage;
    uint64_t baseline_image_size = 0;
    uint64_t image_size = 0;

    /** Audit stage (diags in FuncId order, module-wide last). */
    check::CheckReport checks;
    /** Analyses computed / served from cache across all audit shards. */
    size_t analyses_computed = 0;
    size_t analyses_reused = 0;

    /** True if the small-module bypass ran everything inline. */
    bool serial_bypass = false;
    /** Worker threads actually scheduling jobs (1 under the bypass). */
    size_t jobs_used = 1;
    /** Functions the optimization passes can touch / cannot touch. */
    size_t participant_funcs = 0;
    size_t quiet_funcs = 0;

    StageTiming timing;
    /** The profile as transformed by the passes. */
    profile::EdgeProfile final_profile;
};

/**
 * Derive a production image from `linked` using `profile` with
 * `config.jobs` workers. The input module is copied; the profile is
 * copied and transformed internally. The returned module's
 * moduleDigest() is independent of `config.jobs`.
 */
ir::Module buildImageParallel(const ir::Module& linked,
                              const profile::EdgeProfile& profile,
                              const ParallelPipelineConfig& config,
                              ParallelPipelineReport* report = nullptr);

/**
 * Content digest of a module (32 hex chars): every function header,
 * instruction operand, global, and the site-id bound, streamed through
 * runtime::Digest in one walk — O(1) extra memory. Two modules with
 * equal digests are structurally identical for all pipeline purposes;
 * scalebench uses this to prove serial/parallel bit-identity.
 */
std::string moduleDigest(const ir::Module& module);

} // namespace pibe::scale

#endif // PIBE_SCALE_PARALLEL_PIPELINE_H_
