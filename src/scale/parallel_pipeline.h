/**
 * @file
 * Parallel incremental optimization pipeline for Linux-scale modules.
 *
 * buildImageParallel() derives a production image the way
 * core::buildImage() does — ICP, profile-guided inlining, hardening,
 * audit — but schedules the per-function work of every stage as jobs
 * over the runtime ThreadPool/JobGraph, with the invariant that the
 * resulting module is *bit-identical* (moduleDigest()) for any worker
 * count, including --jobs 1. Determinism comes from three rules:
 *
 *  1. Decisions are serial, mutations are parallel. Every stage plans
 *     on one thread (ICP site selection, inline round selection,
 *     shard assignment) and only fans out function-local rewrites
 *     whose inputs are frozen for the duration of the fan-out.
 *  2. No allocator contention: fresh SiteIds are pre-assigned at plan
 *     time in the order the serial algorithm would have drawn them
 *     (opt::planIcp, opt::inlineCallSiteWithIds), so ids never depend
 *     on scheduling.
 *  3. Merges are ordered: profile updates happen serially in plan
 *     order, shard results (coverage counts, diagnostics) concatenate
 *     in FuncId order.
 *
 * The inliner here is the round-based parallel formulation of PIBE's
 * greedy weight-ordered inliner (§5.2): each round selects, in weight
 * order, a maximal set of candidates whose callers are pairwise
 * distinct and whose callees are not mutated in the same round
 * (callers are written, callees only read), applies them concurrently,
 * then serially propagates constant-ratio inherited weights and
 * re-queues inherited candidates. Rules 1–3 and the constant-ratio
 * heuristic are unchanged; only the interleaving differs from the
 * strictly-serial greedy order, and it differs deterministically.
 *
 * The audit stage runs check::runFunctionChecks per shard with one
 * private AnalysisManager per job, then the module-wide obligations
 * (site-id uniqueness, coverage reconciliation) serially. Each shard's
 * audit is scheduled as a JobGraph dependent of that shard's hardening
 * job, so auditing overlaps hardening across shards.
 */
#ifndef PIBE_SCALE_PARALLEL_PIPELINE_H_
#define PIBE_SCALE_PARALLEL_PIPELINE_H_

#include <cstdint>
#include <string>

#include "check/checks.h"
#include "harden/harden.h"
#include "ir/module.h"
#include "opt/icp.h"
#include "opt/inliner.h"
#include "profile/edge_profile.h"

namespace pibe::scale {

/** Knobs for buildImageParallel(). */
struct ParallelPipelineConfig
{
    /** Worker threads. 1 runs the identical algorithm serially. */
    size_t jobs = 1;
    /** Functions per harden/check shard job. */
    size_t shard_size = 64;

    bool enable_icp = true;
    opt::IcpConfig icp;

    bool enable_inline = true;
    opt::PibeInlinerConfig inline_cfg;

    harden::DefenseConfig defenses;

    /** Run the parallel audit stage after hardening. */
    bool run_checks = true;
};

/** Wall-clock per stage, for BENCH_scale.json curves. */
struct StageTiming
{
    double icp_ms = 0;
    double inline_ms = 0;
    double harden_ms = 0;
    double check_ms = 0;
};

/** Everything one parallel build reports. */
struct ParallelPipelineReport
{
    opt::IcpAudit icp;
    opt::InlineAudit inlining;
    uint32_t inline_rounds = 0; ///< Rounds of the parallel inliner.
    harden::CoverageReport coverage;
    uint64_t baseline_image_size = 0;
    uint64_t image_size = 0;

    /** Audit stage (diags in FuncId order, module-wide last). */
    check::CheckReport checks;
    /** Analyses computed / served from cache across all audit shards. */
    size_t analyses_computed = 0;
    size_t analyses_reused = 0;

    StageTiming timing;
    /** The profile as transformed by the passes. */
    profile::EdgeProfile final_profile;
};

/**
 * Derive a production image from `linked` using `profile` with
 * `config.jobs` workers. The input module is copied; the profile is
 * copied and transformed internally. The returned module's
 * moduleDigest() is independent of `config.jobs`.
 */
ir::Module buildImageParallel(const ir::Module& linked,
                              const profile::EdgeProfile& profile,
                              const ParallelPipelineConfig& config,
                              ParallelPipelineReport* report = nullptr);

/**
 * Content digest of a module (32 hex chars): every function header,
 * instruction operand, global, and the site-id bound, streamed through
 * runtime::Digest in one walk — O(1) extra memory. Two modules with
 * equal digests are structurally identical for all pipeline purposes;
 * scalebench uses this to prove serial/parallel bit-identity.
 */
std::string moduleDigest(const ir::Module& module);

} // namespace pibe::scale

#endif // PIBE_SCALE_PARALLEL_PIPELINE_H_
