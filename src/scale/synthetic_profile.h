/**
 * @file
 * Synthetic edge-profile generator for generated (or any) PIR modules.
 *
 * The scale generator gives the pipeline a Linux-sized *module*; this
 * gives it a Linux-shaped *profile*: per-site execution counts with
 * Zipfian hotness (a small fraction of sites carries most weight, a
 * long cold tail carries almost none) and per-icall-site value
 * profiles whose target distribution is Zipf-skewed, the shape
 * LBR-derived kernel profiles exhibit (§4 of the paper; most indirect
 * sites are dominated by one or two hot targets).
 *
 * The synthesized profile is *flow-conserving* by construction on
 * acyclic call graphs: counts are propagated top-down in a
 * topological order of the direct call graph, every function's
 * invocation count equals the sum of its incoming edge counts, and
 * each site's count never exceeds its function's invocation count —
 * so `pibe check --profile` passes with zero findings on generator
 * output. On cyclic graphs, back edges get zero weight (graceful
 * degradation). Roots use the conventional names: kernel_init gets
 * one boot invocation, sys_dispatch (and main, if present) gets
 * `root_invocations`.
 *
 * Icall target selection prefers the *actual* op table: when an icall
 * operand is reachably defined by a kLoad from a global, the value
 * profile draws from that global's function-pointer entries, exactly
 * like a value profiler observing real dispatches would.
 */
#ifndef PIBE_SCALE_SYNTHETIC_PROFILE_H_
#define PIBE_SCALE_SYNTHETIC_PROFILE_H_

#include <cstdint>

#include "ir/module.h"
#include "profile/edge_profile.h"

namespace pibe::scale {

/** Hotness-shape parameters of a synthesized profile. */
struct SyntheticProfileConfig
{
    uint64_t seed = 42;
    /** Invocations of the dispatch root (sys_dispatch / main). */
    uint64_t root_invocations = 1u << 20;
    /** Zipf skew of per-site target distributions (1 = classic). */
    double zipf_alpha = 1.0;
    /** Cap on distinct targets recorded per indirect site. */
    uint32_t max_targets_per_site = 8;
    /** Fraction of call sites that are hot (count ~= invocations). */
    double hot_site_fraction = 0.2;
};

/**
 * Synthesize a flow-conserving edge profile for `module`.
 * Deterministic in (module, config).
 */
profile::EdgeProfile
synthesizeProfile(const ir::Module& module,
                  const SyntheticProfileConfig& config = {});

} // namespace pibe::scale

#endif // PIBE_SCALE_SYNTHETIC_PROFILE_H_
