#include "scale/scale_builder.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "kernel/kernel.h"
#include "support/logging.h"
#include "support/rng.h"

namespace pibe::scale {

namespace {

constexpr uint32_t kNumSubsys = 4;
const char* const kSubsysName[kNumSubsys] = {"core", "fs", "net", "drv"};

uint64_t
nextPow2(uint64_t v)
{
    uint64_t p = 1;
    while (p < v)
        p <<= 1;
    return p;
}

/** One function-pointer op table (file_operations analogue). */
struct TablePlan
{
    uint32_t arity = 1;
    std::vector<ir::FuncId> handlers;
    ir::GlobalId global = 0;
    uint64_t mask = 0; ///< Padded-size-minus-one (power of two).
};

/** Everything decided about a function before its body is emitted. */
struct FuncPlan
{
    uint32_t subsys = 0;
    uint32_t layer = 0;
    uint32_t params = 1;
    uint32_t budget = 0; ///< Instruction count to aim for.
    uint32_t attrs = ir::kAttrNone;
    bool has_switch = false;
    std::vector<ir::FuncId> callees;
    std::vector<uint32_t> tables; ///< Op-table index per icall site.
};

/**
 * Builds the module in two phases: plan (sizes, layers, call edges,
 * tables — pure bookkeeping) and emit (function bodies). All
 * randomness flows through one Rng, so the result is a pure function
 * of the config.
 */
class Builder
{
  public:
    explicit Builder(const ScaleConfig& config)
        : cfg_(config), rng_(config.seed)
    {
    }

    ir::Module
    build(ScaleStats* stats)
    {
        plan();
        emit();
        if (stats)
            *stats = stats_;
        return std::move(module_);
    }

  private:
    // --- planning ---------------------------------------------------

    void
    plan()
    {
        const uint32_t mean_body =
            (cfg_.body_insts_min + cfg_.body_insts_max) / 2;
        const uint64_t n64 =
            std::max<uint64_t>(8, cfg_.target_insts / mean_body);
        const uint32_t n = static_cast<uint32_t>(
            std::min<uint64_t>(n64, 1u << 24));
        const uint32_t depth =
            std::max<uint32_t>(2, std::min(cfg_.depth, n / 2));

        // Layer populations grow geometrically toward the leaves.
        std::vector<double> weights(depth);
        double w = 1.0;
        for (uint32_t l = 0; l < depth; ++l, w *= cfg_.layer_growth)
            weights[l] = w;
        const double total =
            std::accumulate(weights.begin(), weights.end(), 0.0);
        layer_count_.assign(depth, 1);
        uint32_t assigned = depth;
        for (uint32_t l = 0; l < depth && assigned < n; ++l) {
            const uint32_t extra = std::min<uint32_t>(
                n - assigned,
                static_cast<uint32_t>(weights[l] / total * (n - depth)));
            layer_count_[l] += extra;
            assigned += extra;
        }
        layer_count_.back() += n - assigned;

        // Ids: 0 = kernel_init, 1 = sys_dispatch, then layers in order
        // (so ascending id is a topological order of the call graph).
        layer_start_.resize(depth + 1);
        layer_start_[0] = 2;
        for (uint32_t l = 0; l < depth; ++l)
            layer_start_[l + 1] = layer_start_[l] + layer_count_[l];
        const uint32_t num_funcs = layer_start_[depth];

        plans_.resize(num_funcs);
        const std::vector<double> mix = {cfg_.frac_core, cfg_.frac_fs,
                                         cfg_.frac_net,
                                         cfg_.frac_drivers};
        for (uint32_t l = 0; l < depth; ++l) {
            for (ir::FuncId f = layer_start_[l]; f < layer_start_[l + 1];
                 ++f) {
                FuncPlan& p = plans_[f];
                p.layer = l;
                p.subsys = static_cast<uint32_t>(rng_.weightedIndex(mix));
                p.params = static_cast<uint32_t>(rng_.range(1, 3));
                p.budget = static_cast<uint32_t>(rng_.range(
                    cfg_.body_insts_min, cfg_.body_insts_max));
                if (rng_.chance(cfg_.boot_fraction))
                    p.attrs |= ir::kAttrBootSection;
                p.has_switch = rng_.chance(cfg_.switch_fraction);
            }
        }

        planTables(depth);
        planEntries();
        planEdges(depth);
    }

    /** Deepest-layer functions become op-table handlers. */
    void
    planTables(uint32_t depth)
    {
        const ir::FuncId lo = layer_start_[depth - 1];
        const ir::FuncId hi = layer_start_[depth];
        const uint32_t per = std::max<uint32_t>(2, cfg_.ops_per_table);
        const uint32_t num_tables =
            std::max<uint32_t>(1, (hi - lo) / per);
        tables_.resize(num_tables);
        for (uint32_t t = 0; t < num_tables; ++t) {
            TablePlan& tab = tables_[t];
            tab.arity = 1 + (t % 3);
            for (uint32_t k = 0; k < per; ++k) {
                const ir::FuncId h = lo + t * per + k;
                if (h >= hi)
                    break;
                tab.handlers.push_back(h);
                FuncPlan& p = plans_[h];
                p.params = tab.arity;
                p.attrs &= ~ir::kAttrBootSection; // handlers stay hot
                p.has_switch = false;             // leaves stay simple
            }
        }
    }

    /** First layer-0 functions are the syscall-table entry points. */
    void
    planEntries()
    {
        const uint32_t n = std::min<uint32_t>(
            std::max<uint32_t>(1, cfg_.num_entry_points),
            layer_count_[0]);
        for (uint32_t i = 0; i < n; ++i) {
            const ir::FuncId f = layer_start_[0] + i;
            entries_.push_back(f);
            plans_[f].params = 3;
            plans_[f].attrs &= ~ir::kAttrBootSection;
        }
    }

    /** Direct call edges (strictly deeper) and icall site tables. */
    void
    planEdges(uint32_t depth)
    {
        // Per-subsystem id lists, ascending (== ascending layer).
        std::vector<std::vector<ir::FuncId>> by_subsys(kNumSubsys);
        for (ir::FuncId f = 2; f < plans_.size(); ++f)
            by_subsys[plans_[f].subsys].push_back(f);

        // Expected icall count drives a per-function site rate.
        const uint64_t icall_budget = static_cast<uint64_t>(
            static_cast<double>(cfg_.target_insts) *
            cfg_.icalls_per_kinst / 1000.0);
        const uint32_t eligible =
            layer_start_[depth - 1] - layer_start_[0];
        const double lambda =
            eligible ? static_cast<double>(icall_budget) / eligible : 0;

        const uint32_t fan_hi = std::max<uint32_t>(
            1, static_cast<uint32_t>(2.0 * cfg_.fanout) - 1);

        for (ir::FuncId f = 2; f < plans_.size(); ++f) {
            FuncPlan& p = plans_[f];
            if (p.layer + 1 >= depth)
                continue; // leaves: no outgoing edges

            const ir::FuncId deeper = layer_start_[p.layer + 1];
            const uint32_t n_callees =
                static_cast<uint32_t>(rng_.range(1, fan_hi));
            for (uint32_t i = 0; i < n_callees; ++i) {
                // Subsystem locality: prefer callees of the same
                // subsystem when any exist in deeper layers.
                ir::FuncId callee = ir::kInvalidFunc;
                if (rng_.chance(0.7)) {
                    const auto& pool = by_subsys[p.subsys];
                    auto it = std::lower_bound(pool.begin(), pool.end(),
                                               deeper);
                    if (it != pool.end()) {
                        const size_t k = static_cast<size_t>(
                            it - pool.begin());
                        callee =
                            pool[k + rng_.below(pool.size() - k)];
                    }
                }
                if (callee == ir::kInvalidFunc) {
                    callee = deeper +
                             static_cast<ir::FuncId>(rng_.below(
                                 plans_.size() - deeper));
                }
                p.callees.push_back(callee);
            }

            uint32_t n_icalls =
                static_cast<uint32_t>(std::floor(lambda));
            if (rng_.chance(lambda - std::floor(lambda)))
                ++n_icalls;
            for (uint32_t i = 0; i < n_icalls; ++i)
                p.tables.push_back(static_cast<uint32_t>(
                    rng_.below(tables_.size())));
        }
    }

    // --- emission ---------------------------------------------------

    void
    emit()
    {
        const ir::FuncId init = module_.addFunction(
            kernel::kKernelInitName, 0, ir::kAttrBootSection);
        const ir::FuncId dispatch =
            module_.addFunction(kernel::kSysDispatchName, 4);
        PIBE_ASSERT(init == 0 && dispatch == 1,
                    "scale: root ids must be 0/1");

        for (ir::FuncId f = 2; f < plans_.size(); ++f) {
            const FuncPlan& p = plans_[f];
            std::string name = std::string(kSubsysName[p.subsys]) +
                               "_l" + std::to_string(p.layer) + "_f" +
                               std::to_string(f);
            const ir::FuncId got =
                module_.addFunction(std::move(name), p.params, p.attrs);
            PIBE_ASSERT(got == f, "scale: id mismatch");
        }

        emitGlobals();

        emitInit();
        emitDispatch();
        for (ir::FuncId f = 2; f < plans_.size(); ++f)
            emitBody(f);

        stats_.num_functions = module_.numFunctions();
        stats_.num_tables = tables_.size();
        stats_.num_globals = module_.numGlobals();
    }

    void
    emitGlobals()
    {
        mem_ = module_.addGlobal(
            "scale_mem", std::vector<int64_t>(kMemSlots, 0));

        {
            const uint64_t size = nextPow2(entries_.size());
            std::vector<int64_t> init(size,
                                      ir::funcAddrValue(entries_[0]));
            for (size_t i = 0; i < entries_.size(); ++i)
                init[i] = ir::funcAddrValue(entries_[i]);
            systable_ = module_.addGlobal("scale_syscall_table",
                                          std::move(init));
            systable_mask_ = size - 1;
        }

        for (size_t t = 0; t < tables_.size(); ++t) {
            TablePlan& tab = tables_[t];
            const uint64_t size = nextPow2(tab.handlers.size());
            std::vector<int64_t> init(
                size, ir::funcAddrValue(tab.handlers[0]));
            for (size_t i = 0; i < tab.handlers.size(); ++i)
                init[i] = ir::funcAddrValue(tab.handlers[i]);
            tab.global = module_.addGlobal(
                "scale_ops_" + std::to_string(t), std::move(init));
            tab.mask = size - 1;
        }
    }

    // Small instruction helpers. `fb` state below tracks the function
    // being emitted; registers follow a fixed scheme: params, then
    // acc / cst / scratch0 / scratch1 / fptr.

    struct FuncState
    {
        ir::Function* f = nullptr;
        ir::BlockId cur = 0; ///< Spine block under construction.
        ir::Reg acc = 0;
        ir::Reg cst = 0;
        ir::Reg s0 = 0;
        ir::Reg s1 = 0;
        ir::Reg fptr = 0;
        uint32_t emitted = 0; ///< Instructions emitted so far.
    };

    void
    push(FuncState& fs, const ir::Instruction& inst)
    {
        fs.f->blocks[fs.cur].insts.push_back(inst);
        ++fs.emitted;
        ++stats_.num_insts;
    }

    void
    emitConst(FuncState& fs, ir::Reg dst, int64_t imm)
    {
        ir::Instruction i;
        i.op = ir::Opcode::kConst;
        i.dst = dst;
        i.imm = imm;
        push(fs, i);
    }

    void
    emitBin(FuncState& fs, ir::BinKind kind, ir::Reg dst, ir::Reg a,
            ir::Reg b)
    {
        ir::Instruction i;
        i.op = ir::Opcode::kBinOp;
        i.bin = kind;
        i.dst = dst;
        i.a = a;
        i.b = b;
        push(fs, i);
    }

    void
    emitSink(FuncState& fs, ir::Reg a)
    {
        ir::Instruction i;
        i.op = ir::Opcode::kSink;
        i.a = a;
        push(fs, i);
    }

    void
    emitBr(FuncState& fs, ir::BlockId t)
    {
        ir::Instruction i;
        i.op = ir::Opcode::kBr;
        i.t0 = t;
        push(fs, i);
    }

    ir::BlockId
    newBlock(FuncState& fs)
    {
        fs.f->blocks.emplace_back();
        return static_cast<ir::BlockId>(fs.f->blocks.size() - 1);
    }

    /** acc = acc <op> small-constant (2 instructions). */
    void
    emitFiller(FuncState& fs)
    {
        static const ir::BinKind kOps[] = {
            ir::BinKind::kAdd, ir::BinKind::kXor, ir::BinKind::kSub,
            ir::BinKind::kMul, ir::BinKind::kOr};
        emitConst(fs, fs.cst,
                  static_cast<int64_t>(rng_.range(1, 255)));
        emitBin(fs, kOps[rng_.below(5)], fs.acc, fs.acc, fs.cst);
    }

    /** Frame round-trip: store acc, load it back, fold (3 insts). */
    void
    emitFrameOps(FuncState& fs)
    {
        if (cfg_.frame_slots == 0) {
            emitFiller(fs);
            return;
        }
        const int64_t slot =
            static_cast<int64_t>(rng_.below(cfg_.frame_slots));
        ir::Instruction st;
        st.op = ir::Opcode::kFrameStore;
        st.a = fs.acc;
        st.imm = slot;
        push(fs, st);
        ir::Instruction ld;
        ld.op = ir::Opcode::kFrameLoad;
        ld.dst = fs.s0;
        ld.imm = slot;
        push(fs, ld);
        emitBin(fs, ir::BinKind::kAdd, fs.acc, fs.acc, fs.s0);
    }

    /** Masked load/store against the shared data global (4 insts). */
    void
    emitMemOps(FuncState& fs)
    {
        emitConst(fs, fs.cst, kMemSlots - 1);
        emitBin(fs, ir::BinKind::kAnd, fs.s0, fs.acc, fs.cst);
        if (rng_.chance(0.5)) {
            ir::Instruction ld;
            ld.op = ir::Opcode::kLoad;
            ld.dst = fs.s1;
            ld.a = fs.s0;
            ld.global = mem_;
            push(fs, ld);
            emitBin(fs, ir::BinKind::kXor, fs.acc, fs.acc, fs.s1);
        } else {
            ir::Instruction st;
            st.op = ir::Opcode::kStore;
            st.a = fs.s0;
            st.b = fs.acc;
            st.global = mem_;
            push(fs, st);
            emitFiller(fs);
        }
    }

    /** Side-exit arm: compute something, sink it, branch to join. */
    void
    emitArm(FuncState& fs, ir::BlockId arm, ir::BlockId join)
    {
        const ir::BlockId saved = fs.cur;
        fs.cur = arm;
        emitConst(fs, fs.s0, static_cast<int64_t>(rng_.range(1, 999)));
        emitBin(fs, ir::BinKind::kAdd, fs.s1, fs.s0, fs.acc);
        emitSink(fs, fs.s1);
        emitBr(fs, join);
        fs.cur = saved;
    }

    /** Two-arm diamond; the spine continues at the join block. */
    void
    emitDiamond(FuncState& fs)
    {
        const ir::BlockId a = newBlock(fs);
        const ir::BlockId b = newBlock(fs);
        const ir::BlockId join = newBlock(fs);
        emitConst(fs, fs.cst, 1);
        emitBin(fs, ir::BinKind::kAnd, fs.s0, fs.acc, fs.cst);
        ir::Instruction br;
        br.op = ir::Opcode::kCondBr;
        br.a = fs.s0;
        br.t0 = a;
        br.t1 = b;
        push(fs, br);
        emitArm(fs, a, join);
        emitArm(fs, b, join);
        fs.cur = join;
    }

    /** Multiway dispatch lowered from a masked accumulator value. */
    void
    emitSwitch(FuncState& fs)
    {
        const uint32_t cases = std::max<uint32_t>(2, cfg_.switch_cases);
        const int64_t mask =
            static_cast<int64_t>(nextPow2(cases) - 1);
        emitConst(fs, fs.cst, mask);
        emitBin(fs, ir::BinKind::kAnd, fs.s0, fs.acc, fs.cst);

        std::vector<ir::BlockId> arms(cases);
        for (uint32_t c = 0; c < cases; ++c)
            arms[c] = newBlock(fs);
        const ir::BlockId join = newBlock(fs);

        ir::Instruction sw;
        sw.op = ir::Opcode::kSwitch;
        sw.a = fs.s0;
        sw.t0 = join; // default
        for (uint32_t c = 0; c < cases; ++c) {
            sw.case_values.push_back(c);
            sw.case_targets.push_back(arms[c]);
        }
        push(fs, sw);
        ++stats_.switch_sites;

        for (uint32_t c = 0; c < cases; ++c)
            emitArm(fs, arms[c], join);
        fs.cur = join;
    }

    /** Direct call to a planned deeper callee (1 instruction). */
    void
    emitCall(FuncState& fs, ir::FuncId callee)
    {
        const ir::Function& target = module_.func(callee);
        ir::Instruction call;
        call.op = ir::Opcode::kCall;
        call.dst = fs.s1;
        call.callee = callee;
        // First arg carries the accumulator; the rest reuse the
        // caller's own parameters where it has enough.
        for (uint32_t p = 0; p < target.num_params; ++p)
            call.args.push_back(p == 0 || p > fs.f->num_params
                                    ? fs.acc
                                    : static_cast<ir::Reg>(p - 1));
        call.site_id = module_.allocSiteId();
        push(fs, call);
        emitBin(fs, ir::BinKind::kXor, fs.acc, fs.acc, fs.s1);
        ++stats_.call_sites;
    }

    /** Indirect call through an op table (5 instructions). */
    void
    emitICall(FuncState& fs, const TablePlan& tab)
    {
        emitConst(fs, fs.cst, static_cast<int64_t>(tab.mask));
        emitBin(fs, ir::BinKind::kAnd, fs.s0, fs.acc, fs.cst);
        ir::Instruction ld;
        ld.op = ir::Opcode::kLoad;
        ld.dst = fs.fptr;
        ld.a = fs.s0;
        ld.global = tab.global;
        push(fs, ld);

        ir::Instruction icall;
        icall.op = ir::Opcode::kICall;
        icall.dst = fs.s1;
        icall.a = fs.fptr;
        for (uint32_t p = 0; p < tab.arity; ++p)
            icall.args.push_back(fs.acc);
        icall.site_id = module_.allocSiteId();
        icall.is_asm = rng_.chance(cfg_.asm_site_fraction);
        if (icall.is_asm)
            ++stats_.asm_icall_sites;
        push(fs, icall);
        emitBin(fs, ir::BinKind::kXor, fs.acc, fs.acc, fs.s1);
        ++stats_.icall_sites;
    }

    void
    emitRet(FuncState& fs)
    {
        emitSink(fs, fs.acc);
        ir::Instruction ret;
        ret.op = ir::Opcode::kRet;
        ret.a = fs.acc;
        ret.site_id = module_.allocSiteId();
        push(fs, ret);
        ++stats_.ret_sites;
    }

    FuncState
    openFunction(ir::FuncId id)
    {
        FuncState fs;
        fs.f = &module_.func(id);
        fs.f->blocks.emplace_back();
        fs.cur = 0;
        const uint32_t p = fs.f->num_params;
        fs.acc = p;
        fs.cst = p + 1;
        fs.s0 = p + 2;
        fs.s1 = p + 3;
        fs.fptr = p + 4;
        fs.f->num_regs = p + 5;
        fs.f->frame_size = cfg_.frame_slots;
        // Seed the accumulator from the parameters (or a constant for
        // parameterless functions) so every later read is defined.
        if (p == 0) {
            emitConst(fs, fs.acc, 0x5eed);
        } else {
            ir::Instruction mv;
            mv.op = ir::Opcode::kMove;
            mv.dst = fs.acc;
            mv.a = 0;
            push(fs, mv);
            for (uint32_t i = 1; i < p; ++i)
                emitBin(fs, ir::BinKind::kAdd, fs.acc, fs.acc, i);
        }
        return fs;
    }

    void
    emitInit()
    {
        FuncState fs = openFunction(0);
        const uint32_t n =
            std::min<uint32_t>(4, layer_count_.empty()
                                      ? 0
                                      : layer_count_[0]);
        for (uint32_t i = 0; i < n; ++i)
            emitCall(fs, layer_start_[0] + i);
        emitRet(fs);
    }

    void
    emitDispatch()
    {
        FuncState fs = openFunction(1);
        emitConst(fs, fs.cst, static_cast<int64_t>(systable_mask_));
        emitBin(fs, ir::BinKind::kAnd, fs.s0, 0, fs.cst);
        ir::Instruction ld;
        ld.op = ir::Opcode::kLoad;
        ld.dst = fs.fptr;
        ld.a = fs.s0;
        ld.global = systable_;
        push(fs, ld);
        ir::Instruction icall;
        icall.op = ir::Opcode::kICall;
        icall.dst = fs.s1;
        icall.a = fs.fptr;
        icall.args = {1, 2, 3}; // entry arity is 3 by construction
        icall.site_id = module_.allocSiteId();
        push(fs, icall);
        ++stats_.icall_sites;
        emitBin(fs, ir::BinKind::kXor, fs.acc, fs.acc, fs.s1);
        emitRet(fs);
    }

    void
    emitBody(ir::FuncId id)
    {
        const FuncPlan& p = plans_[id];
        FuncState fs = openFunction(id);

        // Required features first, interleaved with filler so call
        // sites spread through the body, then pad to the budget.
        size_t next_callee = 0;
        size_t next_table = 0;
        bool switch_done = !p.has_switch;
        while (next_callee < p.callees.size() ||
               next_table < p.tables.size() || !switch_done) {
            emitFiller(fs);
            if (next_callee < p.callees.size()) {
                emitCall(fs, p.callees[next_callee++]);
                continue;
            }
            if (next_table < p.tables.size()) {
                emitICall(fs, tables_[p.tables[next_table++]]);
                continue;
            }
            emitSwitch(fs);
            switch_done = true;
        }

        // Structural variety plus padding up to the planned budget.
        while (fs.emitted + 2 < p.budget) {
            const uint32_t remaining = p.budget - fs.emitted;
            const uint64_t pick = rng_.below(10);
            if (pick == 0 && remaining >= 12) {
                emitDiamond(fs);
            } else if (pick < 3 && remaining >= 5) {
                emitFrameOps(fs);
            } else if (pick < 5 && remaining >= 6) {
                emitMemOps(fs);
            } else {
                emitFiller(fs);
            }
        }
        emitRet(fs);
    }

    static constexpr int64_t kMemSlots = 4096;

    const ScaleConfig& cfg_;
    Rng rng_;
    ir::Module module_;
    ScaleStats stats_;

    std::vector<uint32_t> layer_count_;
    std::vector<ir::FuncId> layer_start_;
    std::vector<FuncPlan> plans_;
    std::vector<TablePlan> tables_;
    std::vector<ir::FuncId> entries_;

    ir::GlobalId mem_ = 0;
    ir::GlobalId systable_ = 0;
    uint64_t systable_mask_ = 0;
};

} // namespace

ir::Module
buildScaleModule(const ScaleConfig& config, ScaleStats* stats)
{
    return Builder(config).build(stats);
}

} // namespace pibe::scale
