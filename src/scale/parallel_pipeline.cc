#include "scale/parallel_pipeline.h"

#include <algorithm>
#include <chrono>
#include <mutex>
#include <vector>

#include "analysis/call_graph.h"
#include "analysis/inline_cost.h"
#include "analysis/layout.h"
#include "ir/verifier.h"
#include "opt/cleanup.h"
#include "opt/inline_core.h"
#include "opt/jump_tables.h"
#include "runtime/digest.h"
#include "runtime/job_graph.h"
#include "runtime/thread_pool.h"
#include "support/logging.h"

namespace pibe::scale {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

// --- ICP stage ------------------------------------------------------

void
runIcpStage(ir::Module& image, profile::EdgeProfile& working,
            const ParallelPipelineConfig& config,
            runtime::ThreadPool& pool, ParallelPipelineReport& rep)
{
    // Total promotion needs the feasible-target sets; compute them
    // here (serially, pre-ICP) when the caller did not supply a map.
    opt::IcpConfig icfg = config.icp;
    opt::FeasibilityMap feas;
    if (icfg.total_promotion && !icfg.feasibility) {
        check::TargetSetAnalysis tsa(image);
        feas = check::feasibilityMap(tsa);
        icfg.feasibility = &feas;
    }
    opt::IcpPlan plan = opt::planIcp(image, working, icfg);

    // All fresh ids were pre-assigned at plan time; reserve them
    // before any rewrite so concurrent applications never allocate.
    image.reserveSiteIds(plan.site_id_bound);

    runtime::JobGraph graph;
    for (const auto& [func, indices] : plan.by_func) {
        (void)indices;
        const ir::FuncId f = func;
        graph.add("icp/" + image.func(f).name,
                  [&image, &plan, f](const runtime::JobContext&) {
                      opt::applyIcpFunction(image, f, plan);
                  });
    }
    graph.run(pool);

    rep.icp = opt::finalizeIcp(plan, working);
}

// --- inline stage ---------------------------------------------------

/** One candidate of the round-based parallel inliner. */
struct Candidate
{
    uint64_t weight = 0;
    uint64_t seq = 0; ///< Insertion order; breaks weight ties (FIFO).
    ir::SiteId site = ir::kNoSite;
    ir::FuncId caller = ir::kInvalidFunc;
    ir::FuncId callee = ir::kInvalidFunc;
};

bool
hotterFirst(const Candidate& a, const Candidate& b)
{
    if (a.weight != b.weight)
        return a.weight > b.weight;
    return a.seq < b.seq;
}

/** Attribute-level refusal (the inst-independent subset of
 *  opt::inlineRefusalReason; the rest is re-checked at apply time). */
bool
refusedByAttrs(const ir::Module& module, ir::FuncId caller,
               ir::FuncId callee)
{
    const ir::Function& caller_f = module.func(caller);
    const ir::Function& callee_f = module.func(callee);
    return callee_f.isDeclaration() || callee == caller ||
           callee_f.hasAttr(ir::kAttrNoInline) ||
           callee_f.hasAttr(ir::kAttrExternal) ||
           callee_f.hasAttr(ir::kAttrOptNone) ||
           caller_f.hasAttr(ir::kAttrOptNone);
}

/** Number of call/icall sites in `f` (ids an inline of it consumes). */
uint32_t
callSiteCount(const ir::Function& f)
{
    uint32_t n = 0;
    for (const auto& bb : f.blocks) {
        for (const auto& inst : bb.insts) {
            if (inst.op == ir::Opcode::kCall ||
                inst.op == ir::Opcode::kICall)
                ++n;
        }
    }
    return n;
}

void
runInlineStage(ir::Module& image, profile::EdgeProfile& working,
               const ParallelPipelineConfig& config,
               runtime::ThreadPool& pool, ParallelPipelineReport& rep)
{
    const opt::PibeInlinerConfig& cfg = config.inline_cfg;
    opt::InlineAudit& audit = rep.inlining;
    analysis::CallGraph callgraph(image);
    analysis::InlineCostCache costs(image);

    // Snapshot profiling-time invocation counts for the constant-ratio
    // heuristic (fixed during the run, §5.2).
    std::vector<uint64_t> orig_invocations(image.numFunctions());
    for (ir::FuncId f = 0; f < image.numFunctions(); ++f)
        orig_invocations[f] = working.invocations(f);

    // Rule 1: gather profiled direct call sites, in code order.
    std::vector<Candidate> pending;
    uint64_t seq = 0;
    for (const ir::Function& f : image.functions()) {
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                if (inst.op != ir::Opcode::kCall)
                    continue;
                const uint64_t w = working.directCount(inst.site_id);
                if (w == 0)
                    continue;
                pending.push_back(
                    {w, seq++, inst.site_id, f.id, inst.callee});
                audit.total_weight += w;
            }
        }
    }
    audit.candidate_sites = static_cast<uint32_t>(pending.size());
    if (pending.empty())
        return;

    // Weight cutoffs (identical to the serial inliner's Rule 1).
    uint64_t weight_cut = 1;
    uint64_t lax_weight_cut = UINT64_MAX;
    {
        std::vector<Candidate> sorted = pending;
        std::sort(sorted.begin(), sorted.end(), hotterFirst);
        const double budget_target =
            cfg.budget * static_cast<double>(audit.total_weight);
        const double lax_target =
            cfg.lax_budget * static_cast<double>(audit.total_weight);
        double cum = 0;
        for (const auto& c : sorted) {
            const bool in_budget = cum < budget_target;
            if (in_budget) {
                weight_cut = c.weight;
                audit.eligible_weight += c.weight;
            }
            if (cfg.lax_heuristics && cum < lax_target)
                lax_weight_cut = c.weight;
            cum += static_cast<double>(c.weight);
            if (!in_budget &&
                (!cfg.lax_heuristics || cum >= lax_target))
                break;
        }
    }
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [&](const Candidate& c) {
                                     return c.weight < weight_cut;
                                 }),
                  pending.end());

    uint64_t steps = 0;
    while (!pending.empty()) {
        ++rep.inline_rounds;
        std::sort(pending.begin(), pending.end(), hotterFirst);

        // Select, in weight order, a conflict-free batch: a caller is
        // written at most once per round and never doubles as a callee
        // (callees must stay frozen while copies are taken from them).
        std::vector<Candidate> selected;
        std::vector<Candidate> deferred;
        std::vector<char> written(image.numFunctions(), 0);
        std::vector<char> read(image.numFunctions(), 0);
        bool hit_step_limit = false;
        for (const Candidate& c : pending) {
            if (steps >= cfg.max_steps) {
                hit_step_limit = true;
                break;
            }
            if (written[c.caller] || read[c.caller] ||
                written[c.callee]) {
                deferred.push_back(c); // retry next round
                continue;
            }
            ++steps;
            ++audit.attempted_sites;
            if (refusedByAttrs(image, c.caller, c.callee) ||
                callgraph.isRecursive(c.callee)) {
                audit.blocked_other_weight += c.weight;
                continue;
            }
            const bool lax_exempt =
                cfg.lax_heuristics && c.weight >= lax_weight_cut;
            const int64_t callee_cost = costs.cost(c.callee);
            if (!lax_exempt) {
                // Rule 3 first, then Rule 2 (§5.2, Figure 1). Costs
                // are as of the round start — callers mutate only
                // between rounds, so the order candidates are tested
                // in within a round cannot change the outcome.
                if (callee_cost > cfg.rule3_callee_threshold) {
                    audit.blocked_rule3_weight += c.weight;
                    continue;
                }
                if (costs.cost(c.caller) + callee_cost >
                    cfg.rule2_caller_threshold) {
                    audit.blocked_rule2_weight += c.weight;
                    continue;
                }
            }
            written[c.caller] = 1;
            read[c.callee] = 1;
            selected.push_back(c);
        }
        if (hit_step_limit) {
            warn("parallel inliner: step limit reached, "
                 "stopping early");
            pending.clear();
        } else {
            pending = std::move(deferred);
        }
        if (selected.empty())
            continue;

        // Pre-assign inherited site ids in selection order — exactly
        // the ids a serial walk of the same batch would allocate.
        std::vector<ir::SiteId> id_base(selected.size());
        ir::SiteId bound = image.siteIdBound();
        for (size_t i = 0; i < selected.size(); ++i) {
            id_base[i] = bound;
            bound += callSiteCount(image.func(selected[i].callee));
        }
        image.reserveSiteIds(bound);

        // Parallel apply: distinct callers, frozen callees. Cleanup
        // runs in-job (it is caller-local); unused pre-assigned ids of
        // failed applications stay unused, deterministically.
        std::vector<opt::InlineOutcome> outcomes(selected.size());
        runtime::JobGraph graph;
        for (size_t i = 0; i < selected.size(); ++i) {
            const Candidate& c = selected[i];
            graph.add(
                "inline/" + image.func(c.caller).name + "/" +
                    std::to_string(c.site),
                [&image, &outcomes, &selected, &id_base, &cfg,
                 i](const runtime::JobContext&) {
                    const Candidate& sc = selected[i];
                    outcomes[i] = opt::inlineCallSiteWithIds(
                        image, sc.caller, sc.site, id_base[i]);
                    if (outcomes[i].ok && cfg.cleanup_callers)
                        opt::cleanupFunction(image.func(sc.caller));
                });
        }
        graph.run(pool);

        // Serial merge in selection order: audit accounting, the
        // constant-ratio heuristic, and inherited re-queueing.
        for (size_t i = 0; i < selected.size(); ++i) {
            const Candidate& c = selected[i];
            const opt::InlineOutcome& outcome = outcomes[i];
            if (!outcome.ok) {
                // Site vanished (an earlier round's cleanup removed
                // an unreachable copy) or a racing attribute change;
                // same accounting as the serial inliner.
                audit.blocked_other_weight += c.weight;
                continue;
            }
            ++audit.inlined_sites;
            audit.inlined_weight += c.weight;
            audit.touched.push_back(c.caller);

            const uint64_t callee_inv =
                cfg.propagate_inherited_counts
                    ? orig_invocations[c.callee]
                    : 0;
            for (const opt::InheritedSite& inh : outcome.inherited) {
                if (callee_inv == 0)
                    break;
                if (inh.indirect) {
                    for (const auto& tc :
                         working.indirectTargets(inh.callee_site)) {
                        const uint64_t scaled = static_cast<uint64_t>(
                            static_cast<double>(tc.count) *
                            static_cast<double>(c.weight) /
                            static_cast<double>(callee_inv));
                        if (scaled > 0)
                            working.addIndirect(inh.new_site,
                                                tc.target, scaled);
                    }
                    continue;
                }
                const uint64_t base =
                    working.directCount(inh.callee_site);
                if (base == 0)
                    continue;
                const uint64_t scaled = static_cast<uint64_t>(
                    static_cast<double>(base) *
                    static_cast<double>(c.weight) /
                    static_cast<double>(callee_inv));
                if (scaled == 0)
                    continue;
                working.addDirect(inh.new_site, scaled);
                if (scaled >= weight_cut) {
                    pending.push_back({scaled, seq++, inh.new_site,
                                       c.caller, inh.callee});
                }
            }
            costs.invalidate(c.caller);
        }
    }

    std::sort(audit.touched.begin(), audit.touched.end());
    audit.touched.erase(
        std::unique(audit.touched.begin(), audit.touched.end()),
        audit.touched.end());
}

// --- harden + audit stage -------------------------------------------

/** [begin, end) function range of one shard job. */
struct Shard
{
    ir::FuncId begin = 0;
    ir::FuncId end = 0;
};

std::vector<Shard>
makeShards(const ir::Module& module, size_t shard_size)
{
    std::vector<Shard> shards;
    const ir::FuncId n = module.numFunctions();
    const ir::FuncId step =
        static_cast<ir::FuncId>(std::max<size_t>(1, shard_size));
    for (ir::FuncId b = 0; b < n; b += step)
        shards.push_back({b, std::min<ir::FuncId>(b + step, n)});
    return shards;
}

void
runHardenAndCheckStage(ir::Module& image,
                       const ParallelPipelineConfig& config,
                       runtime::ThreadPool& pool,
                       ParallelPipelineReport& rep,
                       Clock::time_point harden_start)
{
    const std::vector<Shard> shards =
        makeShards(image, config.shard_size);
    const uint32_t switches_before = opt::countSwitches(image);

    check::CheckOptions copts;
    copts.coverage = false; // module-wide groups run serially below
    copts.profile_flow = false;

    // One report per shard, merged in shard (= FuncId) order.
    std::vector<check::CheckReport> shard_reports(shards.size());
    std::vector<size_t> shard_computed(shards.size(), 0);
    std::vector<size_t> shard_hits(shards.size(), 0);

    // Each shard's audit depends only on its own hardening job, so
    // auditing one shard overlaps hardening the next.
    runtime::JobGraph graph;
    auto check_once = std::make_shared<std::once_flag>();
    auto check_start = std::make_shared<Clock::time_point>();
    for (size_t s = 0; s < shards.size(); ++s) {
        const Shard shard = shards[s];
        const runtime::JobId hj = graph.add(
            "harden/" + std::to_string(s),
            [&image, &config, shard](const runtime::JobContext&) {
                for (ir::FuncId f = shard.begin; f < shard.end; ++f)
                    harden::applyDefensesToFunction(image, f,
                                                    config.defenses);
            });
        if (!config.run_checks)
            continue;
        graph.add(
            "check/" + std::to_string(s),
            [&image, &copts, &shard_reports, &shard_computed,
             &shard_hits, check_once, check_start, shard,
             s](const runtime::JobContext&) {
                // First audit job to start stamps the stage clock
                // (stages overlap; this is the observable boundary).
                std::call_once(*check_once, [&check_start] {
                    *check_start = Clock::now();
                });
                check::AnalysisManager am(image);
                check::CheckReport& out = shard_reports[s];
                for (ir::FuncId f = shard.begin; f < shard.end; ++f) {
                    check::CheckReport r = check::runFunctionChecks(
                        image, f, copts, &am);
                    out.diags.insert(out.diags.end(),
                                     r.diags.begin(), r.diags.end());
                }
                shard_computed[s] = am.computations();
                shard_hits[s] = am.hits();
            },
            {hj});
    }
    graph.run(pool);
    rep.timing.harden_ms = msSince(harden_start);

    rep.coverage = harden::analyzeCoverage(image);
    rep.coverage.lowered_switches =
        switches_before - opt::countSwitches(image);
    // ICP residue accounting, recovered from the promotion audit
    // (mirrors core::buildImage).
    rep.coverage.capped_residual_icalls = rep.icp.capped_sites;
    rep.coverage.elided_icalls = rep.icp.fallbacks_dropped;

    if (!config.run_checks)
        return;
    std::call_once(*check_once,
                   [&check_start] { *check_start = Clock::now(); });

    for (size_t s = 0; s < shards.size(); ++s) {
        rep.checks.diags.insert(rep.checks.diags.end(),
                                shard_reports[s].diags.begin(),
                                shard_reports[s].diags.end());
        rep.analyses_computed += shard_computed[s];
        rep.analyses_reused += shard_hits[s];
    }

    // Module-wide obligations, serial: cross-function site-id
    // uniqueness and hardening-coverage reconciliation.
    for (const std::string& p : ir::verifyModuleSiteIds(image)) {
        check::Diagnostic d;
        d.check_id = "verify.sites";
        d.severity = check::Severity::kError;
        d.message = p;
        rep.checks.diags.push_back(std::move(d));
    }
    check::CheckOptions mopts;
    mopts.verify = false;
    mopts.lint = false;
    mopts.coverage = true;
    mopts.targets = true; // Feasible-target validation (module-wide).
    mopts.defense = config.defenses;
    check::CheckReport mod = check::runChecks(image, mopts);
    rep.checks.diags.insert(rep.checks.diags.end(),
                            mod.diags.begin(), mod.diags.end());
    // Canonical order: shard fan-out merges findings in shard order,
    // which depends on shard_size; sorting makes serial and --jobs N
    // reports diff cleanly.
    check::sortDiagnostics(rep.checks.diags);
    rep.timing.check_ms = msSince(*check_start);
}

} // namespace

ir::Module
buildImageParallel(const ir::Module& linked,
                   const profile::EdgeProfile& profile,
                   const ParallelPipelineConfig& config,
                   ParallelPipelineReport* report)
{
    ir::Module image = linked; // snapshot
    profile::EdgeProfile working = profile;
    ParallelPipelineReport local;
    ParallelPipelineReport& rep = report ? *report : local;

    rep.baseline_image_size = analysis::imageSizeOf(linked);

    runtime::ThreadPool pool(std::max<size_t>(1, config.jobs));

    if (config.enable_icp) {
        const auto start = Clock::now();
        runIcpStage(image, working, config, pool, rep);
        rep.timing.icp_ms = msSince(start);
    }
    if (config.enable_inline) {
        const auto start = Clock::now();
        runInlineStage(image, working, config, pool, rep);
        rep.timing.inline_ms = msSince(start);
    }
    runHardenAndCheckStage(image, config, pool, rep, Clock::now());

    rep.image_size = analysis::imageSizeOf(image);
    rep.final_profile = std::move(working);
    return image;
}

std::string
moduleDigest(const ir::Module& module)
{
    runtime::Digest d;
    d.add(static_cast<uint64_t>(module.numFunctions()));
    for (const ir::Function& f : module.functions()) {
        d.add(f.name);
        d.add(f.num_params);
        d.add(f.num_regs);
        d.add(f.frame_size);
        d.add(f.attrs);
        d.add(static_cast<uint64_t>(f.blocks.size()));
        for (const ir::BasicBlock& bb : f.blocks) {
            d.add(static_cast<uint64_t>(bb.insts.size()));
            for (const ir::Instruction& inst : bb.insts) {
                d.add(static_cast<uint32_t>(inst.op));
                d.add(static_cast<uint32_t>(inst.bin));
                d.add(inst.dst);
                d.add(inst.a);
                d.add(inst.b);
                d.add(inst.imm);
                d.add(inst.callee);
                d.add(inst.global);
                d.add(inst.t0);
                d.add(inst.t1);
                d.add(static_cast<uint64_t>(inst.args.size()));
                for (ir::Reg r : inst.args)
                    d.add(r);
                d.add(static_cast<uint64_t>(inst.case_values.size()));
                for (int64_t v : inst.case_values)
                    d.add(v);
                for (ir::BlockId t : inst.case_targets)
                    d.add(t);
                d.add(inst.site_id);
                d.add(static_cast<uint32_t>(inst.fwd_scheme));
                d.add(static_cast<uint32_t>(inst.ret_scheme));
                d.add(inst.is_asm);
            }
        }
    }
    d.add(static_cast<uint64_t>(module.globals().size()));
    for (const ir::Global& g : module.globals()) {
        d.add(g.name);
        d.add(static_cast<uint64_t>(g.init.size()));
        for (int64_t v : g.init)
            d.add(v);
    }
    d.add(module.siteIdBound());
    return d.hex();
}

} // namespace pibe::scale
