#include "scale/parallel_pipeline.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <mutex>
#include <vector>

#include <sys/resource.h>

#include "analysis/call_graph.h"
#include "analysis/inline_cost.h"
#include "analysis/layout.h"
#include "ir/verifier.h"
#include "opt/cleanup.h"
#include "opt/inline_core.h"
#include "opt/jump_tables.h"
#include "runtime/digest.h"
#include "runtime/job_graph.h"
#include "runtime/thread_pool.h"
#include "support/logging.h"

namespace pibe::scale {

namespace {

using Clock = std::chrono::steady_clock;

double
msSince(Clock::time_point start)
{
    return std::chrono::duration<double, std::milli>(Clock::now() -
                                                     start)
        .count();
}

double
processCpuMs()
{
    struct rusage ru;
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    auto tv_ms = [](const timeval& tv) {
        return static_cast<double>(tv.tv_sec) * 1e3 +
               static_cast<double>(tv.tv_usec) / 1e3;
    };
    return tv_ms(ru.ru_utime) + tv_ms(ru.ru_stime);
}

uint64_t
instructionCount(const ir::Module& module)
{
    uint64_t n = 0;
    for (const ir::Function& f : module.functions())
        for (const ir::BasicBlock& bb : f.blocks)
            n += bb.insts.size();
    return n;
}

/**
 * A stage's fan-out point: a JobGraph when a pool is available, or —
 * under the small-module bypass — inline execution at add() time.
 * Inline execution runs job bodies in add order, which is exactly the
 * serial schedule the graph's determinism rules guarantee equivalence
 * to, so the produced module is identical either way. Dependencies
 * are honored trivially inline: a dep must be add()ed first, so it
 * has already run.
 */
class StageExec
{
  public:
    explicit StageExec(runtime::ThreadPool* pool) : pool_(pool) {}

    runtime::JobId
    add(std::string name, std::function<void(const runtime::JobContext&)> fn,
        const std::vector<runtime::JobId>& deps = {})
    {
        if (!pool_) {
            runtime::JobContext ctx;
            ctx.id = next_inline_id_++;
            fn(ctx);
            return ctx.id;
        }
        return graph_.add(std::move(name), std::move(fn), deps);
    }

    /** No-op under the bypass (everything already ran in add()). */
    void
    run()
    {
        if (pool_)
            graph_.run(*pool_);
    }

  private:
    runtime::ThreadPool* pool_;
    runtime::JobGraph graph_;
    runtime::JobId next_inline_id_ = 0;
};

// --- participant / quiet partition ----------------------------------

/**
 * Mark every function ICP or the inliner could read or write, from
 * the pre-rewrite module and profile:
 *
 *  - callers and callees of profiled direct call sites (inline
 *    candidates, including inherited ones: an inherited candidate's
 *    callee is the callee of a profiled site inside the original
 *    callee body, so it is marked by the same rule);
 *  - callers of profiled indirect sites and every profiled target
 *    (ICP rewrites the caller; promotion — and the inliner, after
 *    finalizeIcp drains counts onto the promoted direct sites —
 *    reads the targets).
 *
 * Unprofiled feasible targets appended by total promotion are only
 * ever named by a kCall operand, never read or written, so they stay
 * quiet. Everything unmarked is untouched by both passes and can be
 * hardened/audited while ICP rewrites run.
 */
std::vector<char>
markParticipants(const ir::Module& module,
                 const profile::EdgeProfile& working)
{
    std::vector<char> part(module.numFunctions(), 0);
    auto mark = [&part](ir::FuncId f) {
        if (f < part.size())
            part[f] = 1;
    };
    for (const ir::Function& f : module.functions()) {
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                if (inst.op == ir::Opcode::kCall) {
                    if (working.directCount(inst.site_id) == 0)
                        continue;
                    mark(f.id);
                    mark(inst.callee);
                } else if (inst.op == ir::Opcode::kICall) {
                    const auto& targets =
                        working.indirectTargets(inst.site_id);
                    if (targets.empty())
                        continue;
                    mark(f.id);
                    for (const auto& tc : targets)
                        mark(tc.target);
                }
            }
        }
    }
    return part;
}

// --- ICP stage ------------------------------------------------------

/**
 * Serial ICP planning: feasibility (when total promotion needs it),
 * site selection, and the SiteId reservation that lets the rewrites
 * run without an allocator. The caller fans the per-function
 * applications out and then runs opt::finalizeIcp.
 */
opt::IcpPlan
planIcpStage(ir::Module& image, const profile::EdgeProfile& working,
             const ParallelPipelineConfig& config)
{
    opt::IcpConfig icfg = config.icp;
    opt::FeasibilityMap feas;
    if (icfg.total_promotion && !icfg.feasibility) {
        check::TargetSetAnalysis tsa(image);
        feas = check::feasibilityMap(tsa);
        icfg.feasibility = &feas;
    }
    opt::IcpPlan plan = opt::planIcp(image, working, icfg);

    // All fresh ids were pre-assigned at plan time; reserve them
    // before any rewrite so concurrent applications never allocate.
    image.reserveSiteIds(plan.site_id_bound);
    return plan;
}

// --- harden + audit shards ------------------------------------------

/** Results of one harden+check shard job. */
struct ShardResult
{
    check::CheckReport report;
    size_t computed = 0;
    size_t hits = 0;
};

/** FuncId-ordered chunks of `funcs`, `shard_size` functions each. */
std::vector<std::vector<ir::FuncId>>
chunkFuncs(const std::vector<ir::FuncId>& funcs, size_t shard_size)
{
    const size_t step = std::max<size_t>(1, shard_size);
    std::vector<std::vector<ir::FuncId>> chunks;
    for (size_t b = 0; b < funcs.size(); b += step)
        chunks.emplace_back(funcs.begin() + b,
                            funcs.begin() +
                                std::min(b + step, funcs.size()));
    return chunks;
}

/**
 * Add one harden job per chunk of `funcs` to `exec`, plus (when
 * checks are on) a dependent audit job running runFunctionChecks with
 * a chunk-private AnalysisManager. `results` must outlive exec.run()
 * and have one slot per chunk starting at `result_base`.
 */
void
addHardenCheckJobs(StageExec& exec, ir::Module& image,
                   const ParallelPipelineConfig& config,
                   const check::CheckOptions& copts,
                   const std::vector<std::vector<ir::FuncId>>& chunks,
                   std::vector<ShardResult>& results, size_t result_base,
                   const std::shared_ptr<std::once_flag>& check_once,
                   const std::shared_ptr<Clock::time_point>& check_start)
{
    for (size_t s = 0; s < chunks.size(); ++s) {
        const std::vector<ir::FuncId>& chunk = chunks[s];
        const runtime::JobId hj = exec.add(
            "harden/" + std::to_string(result_base + s),
            [&image, &config, &chunk](const runtime::JobContext&) {
                for (ir::FuncId f : chunk)
                    harden::applyDefensesToFunction(image, f,
                                                    config.defenses);
            });
        if (!config.run_checks)
            continue;
        ShardResult& slot = results[result_base + s];
        exec.add(
            "check/" + std::to_string(result_base + s),
            [&image, &copts, &chunk, &slot, check_once,
             check_start](const runtime::JobContext&) {
                // First audit job to start stamps the stage clock
                // (stages overlap; this is the observable boundary).
                std::call_once(*check_once, [&check_start] {
                    *check_start = Clock::now();
                });
                check::AnalysisManager am(image);
                for (ir::FuncId f : chunk) {
                    check::CheckReport r = check::runFunctionChecks(
                        image, f, copts, &am);
                    slot.report.diags.insert(slot.report.diags.end(),
                                             r.diags.begin(),
                                             r.diags.end());
                }
                slot.computed = am.computations();
                slot.hits = am.hits();
            },
            {hj});
    }
}

// --- inline stage ---------------------------------------------------

/** One candidate of the round-based parallel inliner. */
struct Candidate
{
    uint64_t weight = 0;
    uint64_t seq = 0; ///< Insertion order; breaks weight ties (FIFO).
    ir::SiteId site = ir::kNoSite;
    ir::FuncId caller = ir::kInvalidFunc;
    ir::FuncId callee = ir::kInvalidFunc;
};

bool
hotterFirst(const Candidate& a, const Candidate& b)
{
    if (a.weight != b.weight)
        return a.weight > b.weight;
    return a.seq < b.seq;
}

/** Attribute-level refusal (the inst-independent subset of
 *  opt::inlineRefusalReason; the rest is re-checked at apply time). */
bool
refusedByAttrs(const ir::Module& module, ir::FuncId caller,
               ir::FuncId callee)
{
    const ir::Function& caller_f = module.func(caller);
    const ir::Function& callee_f = module.func(callee);
    return callee_f.isDeclaration() || callee == caller ||
           callee_f.hasAttr(ir::kAttrNoInline) ||
           callee_f.hasAttr(ir::kAttrExternal) ||
           callee_f.hasAttr(ir::kAttrOptNone) ||
           caller_f.hasAttr(ir::kAttrOptNone);
}

/** Number of call/icall sites in `f` (ids an inline of it consumes). */
uint32_t
callSiteCount(const ir::Function& f)
{
    uint32_t n = 0;
    for (const auto& bb : f.blocks) {
        for (const auto& inst : bb.insts) {
            if (inst.op == ir::Opcode::kCall ||
                inst.op == ir::Opcode::kICall)
                ++n;
        }
    }
    return n;
}

void
runInlineStage(ir::Module& image, profile::EdgeProfile& working,
               const ParallelPipelineConfig& config,
               runtime::ThreadPool* pool, ParallelPipelineReport& rep)
{
    const opt::PibeInlinerConfig& cfg = config.inline_cfg;
    opt::InlineAudit& audit = rep.inlining;
    analysis::CallGraph callgraph(image);
    analysis::InlineCostCache costs(image);

    // Snapshot profiling-time invocation counts for the constant-ratio
    // heuristic (fixed during the run, §5.2).
    std::vector<uint64_t> orig_invocations(image.numFunctions());
    for (ir::FuncId f = 0; f < image.numFunctions(); ++f)
        orig_invocations[f] = working.invocations(f);

    // Rule 1: gather profiled direct call sites, in code order.
    std::vector<Candidate> pending;
    uint64_t seq = 0;
    for (const ir::Function& f : image.functions()) {
        for (const auto& bb : f.blocks) {
            for (const auto& inst : bb.insts) {
                if (inst.op != ir::Opcode::kCall)
                    continue;
                const uint64_t w = working.directCount(inst.site_id);
                if (w == 0)
                    continue;
                pending.push_back(
                    {w, seq++, inst.site_id, f.id, inst.callee});
                audit.total_weight += w;
            }
        }
    }
    audit.candidate_sites = static_cast<uint32_t>(pending.size());
    if (pending.empty())
        return;

    // Weight cutoffs (identical to the serial inliner's Rule 1).
    uint64_t weight_cut = 1;
    uint64_t lax_weight_cut = UINT64_MAX;
    {
        std::vector<Candidate> sorted = pending;
        std::sort(sorted.begin(), sorted.end(), hotterFirst);
        const double budget_target =
            cfg.budget * static_cast<double>(audit.total_weight);
        const double lax_target =
            cfg.lax_budget * static_cast<double>(audit.total_weight);
        double cum = 0;
        for (const auto& c : sorted) {
            const bool in_budget = cum < budget_target;
            if (in_budget) {
                weight_cut = c.weight;
                audit.eligible_weight += c.weight;
            }
            if (cfg.lax_heuristics && cum < lax_target)
                lax_weight_cut = c.weight;
            cum += static_cast<double>(c.weight);
            if (!in_budget &&
                (!cfg.lax_heuristics || cum >= lax_target))
                break;
        }
    }
    pending.erase(std::remove_if(pending.begin(), pending.end(),
                                 [&](const Candidate& c) {
                                     return c.weight < weight_cut;
                                 }),
                  pending.end());

    uint64_t steps = 0;
    while (!pending.empty()) {
        ++rep.inline_rounds;
        std::sort(pending.begin(), pending.end(), hotterFirst);

        // Select, in weight order, a conflict-free batch: a caller is
        // written at most once per round and never doubles as a callee
        // (callees must stay frozen while copies are taken from them).
        std::vector<Candidate> selected;
        std::vector<Candidate> deferred;
        std::vector<char> written(image.numFunctions(), 0);
        std::vector<char> read(image.numFunctions(), 0);
        bool hit_step_limit = false;
        for (const Candidate& c : pending) {
            if (steps >= cfg.max_steps) {
                hit_step_limit = true;
                break;
            }
            if (written[c.caller] || read[c.caller] ||
                written[c.callee]) {
                deferred.push_back(c); // retry next round
                continue;
            }
            ++steps;
            ++audit.attempted_sites;
            if (refusedByAttrs(image, c.caller, c.callee) ||
                callgraph.isRecursive(c.callee)) {
                audit.blocked_other_weight += c.weight;
                continue;
            }
            const bool lax_exempt =
                cfg.lax_heuristics && c.weight >= lax_weight_cut;
            const int64_t callee_cost = costs.cost(c.callee);
            if (!lax_exempt) {
                // Rule 3 first, then Rule 2 (§5.2, Figure 1). Costs
                // are as of the round start — callers mutate only
                // between rounds, so the order candidates are tested
                // in within a round cannot change the outcome.
                if (callee_cost > cfg.rule3_callee_threshold) {
                    audit.blocked_rule3_weight += c.weight;
                    continue;
                }
                if (costs.cost(c.caller) + callee_cost >
                    cfg.rule2_caller_threshold) {
                    audit.blocked_rule2_weight += c.weight;
                    continue;
                }
            }
            written[c.caller] = 1;
            read[c.callee] = 1;
            selected.push_back(c);
        }
        if (hit_step_limit) {
            warn("parallel inliner: step limit reached, "
                 "stopping early");
            pending.clear();
        } else {
            pending = std::move(deferred);
        }
        if (selected.empty())
            continue;

        // Pre-assign inherited site ids in selection order — exactly
        // the ids a serial walk of the same batch would allocate.
        std::vector<ir::SiteId> id_base(selected.size());
        ir::SiteId bound = image.siteIdBound();
        for (size_t i = 0; i < selected.size(); ++i) {
            id_base[i] = bound;
            bound += callSiteCount(image.func(selected[i].callee));
        }
        image.reserveSiteIds(bound);

        // Parallel apply: distinct callers, frozen callees. Cleanup
        // runs in-job (it is caller-local); unused pre-assigned ids of
        // failed applications stay unused, deterministically.
        std::vector<opt::InlineOutcome> outcomes(selected.size());
        StageExec exec(pool);
        for (size_t i = 0; i < selected.size(); ++i) {
            const Candidate& c = selected[i];
            exec.add(
                "inline/" + image.func(c.caller).name + "/" +
                    std::to_string(c.site),
                [&image, &outcomes, &selected, &id_base, &cfg,
                 i](const runtime::JobContext&) {
                    const Candidate& sc = selected[i];
                    outcomes[i] = opt::inlineCallSiteWithIds(
                        image, sc.caller, sc.site, id_base[i]);
                    if (outcomes[i].ok && cfg.cleanup_callers)
                        opt::cleanupFunction(image.func(sc.caller));
                });
        }
        exec.run();

        // Serial merge in selection order: audit accounting, the
        // constant-ratio heuristic, and inherited re-queueing.
        for (size_t i = 0; i < selected.size(); ++i) {
            const Candidate& c = selected[i];
            const opt::InlineOutcome& outcome = outcomes[i];
            if (!outcome.ok) {
                // Site vanished (an earlier round's cleanup removed
                // an unreachable copy) or a racing attribute change;
                // same accounting as the serial inliner.
                audit.blocked_other_weight += c.weight;
                continue;
            }
            ++audit.inlined_sites;
            audit.inlined_weight += c.weight;
            audit.touched.push_back(c.caller);

            const uint64_t callee_inv =
                cfg.propagate_inherited_counts
                    ? orig_invocations[c.callee]
                    : 0;
            for (const opt::InheritedSite& inh : outcome.inherited) {
                if (callee_inv == 0)
                    break;
                if (inh.indirect) {
                    for (const auto& tc :
                         working.indirectTargets(inh.callee_site)) {
                        const uint64_t scaled = static_cast<uint64_t>(
                            static_cast<double>(tc.count) *
                            static_cast<double>(c.weight) /
                            static_cast<double>(callee_inv));
                        if (scaled > 0)
                            working.addIndirect(inh.new_site,
                                                tc.target, scaled);
                    }
                    continue;
                }
                const uint64_t base =
                    working.directCount(inh.callee_site);
                if (base == 0)
                    continue;
                const uint64_t scaled = static_cast<uint64_t>(
                    static_cast<double>(base) *
                    static_cast<double>(c.weight) /
                    static_cast<double>(callee_inv));
                if (scaled == 0)
                    continue;
                working.addDirect(inh.new_site, scaled);
                if (scaled >= weight_cut) {
                    pending.push_back({scaled, seq++, inh.new_site,
                                       c.caller, inh.callee});
                }
            }
            costs.invalidate(c.caller);
        }
    }

    std::sort(audit.touched.begin(), audit.touched.end());
    audit.touched.erase(
        std::unique(audit.touched.begin(), audit.touched.end()),
        audit.touched.end());
}

} // namespace

ir::Module
buildImageParallel(const ir::Module& linked,
                   const profile::EdgeProfile& profile,
                   const ParallelPipelineConfig& config,
                   ParallelPipelineReport* report)
{
    ir::Module image = linked; // snapshot
    profile::EdgeProfile working = profile;
    ParallelPipelineReport local;
    ParallelPipelineReport& rep = report ? *report : local;

    const auto build_start = Clock::now();
    const double cpu_start = processCpuMs();
    rep.baseline_image_size = analysis::imageSizeOf(linked);

    // Small-module bypass: below the threshold (or serially), skip the
    // graph/pool machinery entirely — StageExec runs every job body
    // inline in add order, the serial schedule.
    const bool bypass =
        config.jobs <= 1 ||
        instructionCount(linked) < config.serial_below_insts;
    std::unique_ptr<runtime::ThreadPool> owned_pool;
    runtime::ThreadPool* pool = nullptr;
    if (!bypass) {
        pool = config.pool;
        if (!pool) {
            owned_pool = std::make_unique<runtime::ThreadPool>(
                std::max<size_t>(1, config.jobs));
            pool = owned_pool.get();
        }
    }
    rep.serial_bypass = bypass;
    rep.jobs_used = bypass ? 1 : pool->size();

    // Captured before any rewrite: hardening of quiet functions (which
    // lowers their switches) starts inside the ICP fan-out below.
    const uint32_t switches_before = opt::countSwitches(image);

    check::CheckOptions copts;
    copts.coverage = false; // module-wide groups run at the tail
    copts.profile_flow = false;

    auto check_once = std::make_shared<std::once_flag>();
    auto check_start = std::make_shared<Clock::time_point>();

    // --- phase 1: ICP plan, then ICP rewrites fused with the quiet
    // partition's harden+check shards in one graph. -------------------
    const auto icp_stage_start = Clock::now();
    opt::IcpPlan plan;
    if (config.enable_icp) {
        plan = planIcpStage(image, working, config);
        rep.timing.plan_ms = msSince(icp_stage_start);
    }

    // Partition functions: participants are everything ICP/inline can
    // read or write; the quiet rest hardens and audits right away.
    std::vector<char> participant(image.numFunctions(), 0);
    if (config.enable_icp || config.enable_inline)
        participant = markParticipants(image, working);
    for (const auto& [func, indices] : plan.by_func) {
        (void)indices;
        if (func < participant.size())
            participant[func] = 1; // defensive; planned sites qualify
    }
    std::vector<ir::FuncId> quiet_funcs;
    std::vector<ir::FuncId> participant_funcs;
    for (ir::FuncId f = 0; f < image.numFunctions(); ++f)
        (participant[f] ? participant_funcs : quiet_funcs)
            .push_back(f);
    rep.participant_funcs = participant_funcs.size();
    rep.quiet_funcs = quiet_funcs.size();

    const auto quiet_chunks = chunkFuncs(quiet_funcs, config.shard_size);
    const auto part_chunks =
        chunkFuncs(participant_funcs, config.shard_size);
    std::vector<ShardResult> shard_results(quiet_chunks.size() +
                                           part_chunks.size());

    {
        StageExec exec(pool);
        if (config.enable_icp) {
            for (const auto& [func, indices] : plan.by_func) {
                (void)indices;
                const ir::FuncId f = func;
                exec.add("icp/" + image.func(f).name,
                         [&image, &plan, f](const runtime::JobContext&) {
                             opt::applyIcpFunction(image, f, plan);
                         });
            }
        }
        addHardenCheckJobs(exec, image, config, copts, quiet_chunks,
                           shard_results, 0, check_once, check_start);
        exec.run();
    }
    if (config.enable_icp) {
        rep.icp = opt::finalizeIcp(plan, working);
        rep.timing.icp_ms = msSince(icp_stage_start);
    }

    // --- phase 2: round-based parallel inlining ----------------------
    if (config.enable_inline) {
        const auto start = Clock::now();
        runInlineStage(image, working, config, pool, rep);
        rep.timing.inline_ms = msSince(start);
    }

    // --- phase 3: participants' harden+check shards, then the
    // module-wide audit tail. -----------------------------------------
    const auto harden_start = Clock::now();
    {
        StageExec exec(pool);
        addHardenCheckJobs(exec, image, config, copts, part_chunks,
                           shard_results, quiet_chunks.size(),
                           check_once, check_start);
        exec.run();
    }

    rep.coverage = harden::analyzeCoverage(image);
    rep.coverage.lowered_switches =
        switches_before - opt::countSwitches(image);
    // ICP residue accounting, recovered from the promotion audit
    // (mirrors core::buildImage).
    rep.coverage.capped_residual_icalls = rep.icp.capped_sites;
    rep.coverage.elided_icalls = rep.icp.fallbacks_dropped;
    rep.timing.harden_ms = msSince(harden_start);

    if (config.run_checks) {
        std::call_once(*check_once,
                       [&check_start] { *check_start = Clock::now(); });

        // Merge in chunk (= FuncId) order: quiet chunks first, then
        // participant chunks — sortDiagnostics below canonicalizes.
        for (const ShardResult& sr : shard_results) {
            rep.checks.diags.insert(rep.checks.diags.end(),
                                    sr.report.diags.begin(),
                                    sr.report.diags.end());
            rep.analyses_computed += sr.computed;
            rep.analyses_reused += sr.hits;
        }

        // Module-wide obligations: cross-function site-id uniqueness,
        // hardening-coverage reconciliation, feasible-target
        // validation. The per-function portions (coverage audit, ICP
        // guard-chain scan) fan out over the same pool.
        for (const std::string& p : ir::verifyModuleSiteIds(image)) {
            check::Diagnostic d;
            d.check_id = "verify.sites";
            d.severity = check::Severity::kError;
            d.message = p;
            rep.checks.diags.push_back(std::move(d));
        }
        check::CheckOptions mopts;
        mopts.verify = false;
        mopts.lint = false;
        mopts.coverage = true;
        mopts.targets = true;
        mopts.defense = config.defenses;
        check::CheckReport mod =
            pool ? check::runChecksParallel(image, mopts, *pool,
                                            config.shard_size)
                 : check::runChecks(image, mopts);
        rep.checks.diags.insert(rep.checks.diags.end(),
                                mod.diags.begin(), mod.diags.end());
        // Canonical order: the fan-out merges findings in chunk order,
        // which depends on shard_size and the quiet partition; sorting
        // makes serial and --jobs N reports diff cleanly.
        check::sortDiagnostics(rep.checks.diags);
        rep.timing.check_ms = msSince(*check_start);
    }

    rep.timing.total_ms = msSince(build_start);
    rep.timing.cpu_ms = processCpuMs() - cpu_start;
    rep.image_size = analysis::imageSizeOf(image);
    rep.final_profile = std::move(working);
    return image;
}

std::string
moduleDigest(const ir::Module& module)
{
    runtime::Digest d;
    d.add(static_cast<uint64_t>(module.numFunctions()));
    for (const ir::Function& f : module.functions()) {
        d.add(f.name);
        d.add(f.num_params);
        d.add(f.num_regs);
        d.add(f.frame_size);
        d.add(f.attrs);
        d.add(static_cast<uint64_t>(f.blocks.size()));
        for (const ir::BasicBlock& bb : f.blocks) {
            d.add(static_cast<uint64_t>(bb.insts.size()));
            for (const ir::Instruction& inst : bb.insts) {
                d.add(static_cast<uint32_t>(inst.op));
                d.add(static_cast<uint32_t>(inst.bin));
                d.add(inst.dst);
                d.add(inst.a);
                d.add(inst.b);
                d.add(inst.imm);
                d.add(inst.callee);
                d.add(inst.global);
                d.add(inst.t0);
                d.add(inst.t1);
                d.add(static_cast<uint64_t>(inst.args.size()));
                for (ir::Reg r : inst.args)
                    d.add(r);
                d.add(static_cast<uint64_t>(inst.case_values.size()));
                for (int64_t v : inst.case_values)
                    d.add(v);
                for (ir::BlockId t : inst.case_targets)
                    d.add(t);
                d.add(inst.site_id);
                d.add(static_cast<uint32_t>(inst.fwd_scheme));
                d.add(static_cast<uint32_t>(inst.ret_scheme));
                d.add(inst.is_asm);
            }
        }
    }
    d.add(static_cast<uint64_t>(module.globals().size()));
    for (const ir::Global& g : module.globals()) {
        d.add(g.name);
        d.add(static_cast<uint64_t>(g.init.size()));
        for (int64_t v : g.init)
            d.add(v);
    }
    d.add(module.siteIdBound());
    return d.hex();
}

} // namespace pibe::scale
