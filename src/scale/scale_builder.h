/**
 * @file
 * Linux-scale synthetic module generator (`pibe genkernel`).
 *
 * The hand-built synthetic kernel (src/kernel) is faithful in *shape*
 * but three orders of magnitude smaller than the Linux text the paper
 * optimizes, so none of the pipeline's scaling behaviour is ever
 * exercised by it. ScaleBuilder closes that gap: it emits PIR modules
 * of 10^5..10^6 instructions whose aggregate statistics track published
 * Linux text measurements —
 *
 *  - subsystem mix: functions are partitioned into core/fs/net/driver
 *    groups with configurable fractions (defaults follow the rough
 *    text-size split of a distro kernel: drivers dominate, then fs/net);
 *  - call-graph depth and fan-out: functions live in layers and call
 *    only into strictly deeper layers (the call graph is acyclic by
 *    construction, like the hot syscall paths PIBE profiles), with a
 *    configurable mean number of direct call sites per function;
 *  - indirect-branch surface: icall sites are emitted at a configurable
 *    density per 1000 instructions (Linux 5.1 has ~20k icall sites over
 *    a few million text instructions, i.e. high-single-digit sites per
 *    kinst) and each loads its target from a function-pointer op table
 *    (file_operations/proto_ops analogues) whose handlers all share the
 *    table's arity, so promoted calls always verify;
 *  - per-site target counts: op-table width is configurable
 *    (default 7, the file_operations-like middle of Linux's 1..64
 *    spread); the syscall-table analogue at the root is much wider;
 *  - hardening exemptions: a small fraction of icall sites is flagged
 *    `is_asm` (paravirt analogues) and a fraction of functions is
 *    boot-section, so coverage audits see the Table 11 categories.
 *
 * Generation is single-threaded and deterministic: the same ScaleConfig
 * (including seed) produces a bit-identical module.
 */
#ifndef PIBE_SCALE_SCALE_BUILDER_H_
#define PIBE_SCALE_SCALE_BUILDER_H_

#include <cstdint>

#include "ir/module.h"

namespace pibe::scale {

/** Shape parameters of one generated module (see file comment). */
struct ScaleConfig
{
    uint64_t seed = 42;
    /** Approximate total instruction count to emit. */
    uint64_t target_insts = 100000;

    // --- subsystem mix (fractions of generated functions) -----------
    double frac_core = 0.15;
    double frac_fs = 0.25;
    double frac_net = 0.20;
    double frac_drivers = 0.40;

    // --- call graph -------------------------------------------------
    /** Call-graph layers; calls go only into strictly deeper layers. */
    uint32_t depth = 10;
    /** Mean direct call sites per non-leaf function. */
    double fanout = 2.5;
    /** Per-layer growth of the function count (leaves dominate). */
    double layer_growth = 1.4;

    // --- indirect-branch surface ------------------------------------
    /** Indirect call sites per 1000 emitted instructions. */
    double icalls_per_kinst = 7.0;
    /** Handlers per op table (also the table's target-count bound). */
    uint32_t ops_per_table = 7;
    /** Syscall-table analogue width at the dispatch root. */
    uint32_t num_entry_points = 32;
    /** Fraction of icall sites flagged is_asm (paravirt analogues). */
    double asm_site_fraction = 0.002;
    /** Fraction of functions placed in the boot section. */
    double boot_fraction = 0.01;
    /** Fraction of functions containing a kSwitch dispatcher. */
    double switch_fraction = 0.02;
    /** Cases per generated switch. */
    uint32_t switch_cases = 6;

    // --- function bodies --------------------------------------------
    uint32_t body_insts_min = 24;
    uint32_t body_insts_max = 88;
    uint32_t frame_slots = 6;
};

/** Aggregate statistics of one generated module. */
struct ScaleStats
{
    uint64_t num_functions = 0;
    uint64_t num_insts = 0;
    uint64_t call_sites = 0;
    uint64_t icall_sites = 0;
    uint64_t asm_icall_sites = 0;
    uint64_t ret_sites = 0;
    uint64_t switch_sites = 0;
    uint64_t num_tables = 0;
    uint64_t num_globals = 0;
};

/**
 * Generate a module from `config`. Deterministic in the config. The
 * module passes `pibe check` with no error-severity findings and uses
 * the conventional root names (kernel_init, sys_dispatch), so the
 * default profile-flow roots apply.
 */
ir::Module buildScaleModule(const ScaleConfig& config,
                            ScaleStats* stats = nullptr);

} // namespace pibe::scale

#endif // PIBE_SCALE_SCALE_BUILDER_H_
